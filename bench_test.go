// Benchmark harness: one testing.B target per table/figure of the paper's
// evaluation (see DESIGN.md's per-experiment index). The benches run the
// experiments at a laptop-sized configuration and report the headline
// numbers as custom benchmark metrics; `zsdb <experiment> -scale full`
// runs the paper-sized version.
package zeroshotdb_test

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/zeroshot-db/zeroshot/internal/baselines"
	"github.com/zeroshot-db/zeroshot/internal/collect"
	"github.com/zeroshot-db/zeroshot/internal/costmodel"
	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/experiments"
	"github.com/zeroshot-db/zeroshot/internal/optimizer"
	"github.com/zeroshot-db/zeroshot/internal/serving"
	"github.com/zeroshot-db/zeroshot/internal/sqlparse"
	"github.com/zeroshot-db/zeroshot/internal/stats"
	"github.com/zeroshot-db/zeroshot/internal/storage"
	"github.com/zeroshot-db/zeroshot/internal/zeroshot"
)

// benchConfig is the calibrated laptop-scale configuration (matches the
// committed numbers in EXPERIMENTS.md).
func benchConfig() experiments.Config {
	model := zeroshot.DefaultConfig()
	model.Hidden = 24
	model.Epochs = 12
	mscn := baselines.DefaultMSCNConfig()
	mscn.Epochs = 12
	e2e := baselines.DefaultE2EConfig()
	e2e.Epochs = 12
	dg := datagen.DefaultConfig()
	dg.MaxRows = 15000
	return experiments.Config{
		TrainDBs:      4,
		QueriesPerDB:  100,
		EvalQueries:   50,
		BaselineSizes: []int{50, 200, 500},
		Seed:          2,
		IMDBScale:     0.08,
		Model:         model,
		MSCN:          mscn,
		E2E:           e2e,
		DatagenCfg:    dg,
	}
}

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
	benchEnvErr  error
)

func sharedBenchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		benchEnv, benchEnvErr = experiments.Prepare(benchConfig())
	})
	if benchEnvErr != nil {
		b.Fatal(benchEnvErr)
	}
	return benchEnv
}

var (
	fig3Once sync.Once
	fig3Res  *experiments.Figure3Result
	fig3Err  error
)

func sharedFigure3(b *testing.B) *experiments.Figure3Result {
	b.Helper()
	env := sharedBenchEnv(b)
	fig3Once.Do(func() {
		fig3Res, fig3Err = experiments.Figure3(env)
	})
	if fig3Err != nil {
		b.Fatal(fig3Err)
	}
	return fig3Res
}

// benchFigure3Panel reports one workload panel of Figure 3 (E1): the
// workload-driven error curve and the zero-shot lines.
func benchFigure3Panel(b *testing.B, workload string) {
	for i := 0; i < b.N; i++ {
		res := sharedFigure3(b)
		curve := res.Curves[workload]
		last := curve[len(curve)-1]
		b.ReportMetric(res.ZeroShotExact[workload], "zs-exact-median")
		b.ReportMetric(res.ZeroShotEst[workload], "zs-est-median")
		b.ReportMetric(last.Median[costmodel.NameMSCN], "mscn-maxtrain-median")
		b.ReportMetric(last.Median[costmodel.NameE2E], "e2e-maxtrain-median")
		b.ReportMetric(last.Median[costmodel.NameScaledCost], "scaledcost-median")
	}
}

func BenchmarkFigure3_Scale(b *testing.B)     { benchFigure3Panel(b, experiments.WorkloadScale) }
func BenchmarkFigure3_Synthetic(b *testing.B) { benchFigure3Panel(b, experiments.WorkloadSynthetic) }
func BenchmarkFigure3_JOBLight(b *testing.B)  { benchFigure3Panel(b, experiments.WorkloadJOBLight) }

// BenchmarkFigure3_CollectionTime reproduces panel 4 of Figure 3 (E2): the
// hours of executed workload required to collect the baselines' training
// data on the unseen database (zero for zero-shot models).
func BenchmarkFigure3_CollectionTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := sharedFigure3(b)
		maxN := 0
		for n := range res.CollectionHours {
			if n > maxN {
				maxN = n
			}
		}
		b.ReportMetric(res.CollectionHours[maxN], "hours-at-max-trainset")
		b.ReportMetric(0, "hours-zero-shot")
	}
}

var (
	table1Once sync.Once
	table1Res  *experiments.Table1Result
	table1Err  error
)

func sharedTable1(b *testing.B) *experiments.Table1Result {
	b.Helper()
	env := sharedBenchEnv(b)
	table1Once.Do(func() {
		table1Res, table1Err = experiments.Table1(env)
	})
	if table1Err != nil {
		b.Fatal(table1Err)
	}
	return table1Res
}

// BenchmarkTable1 reproduces rows 1-3 of Table 1 (E3): zero-shot Q-errors
// with exact vs estimated cardinalities on the three workloads.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := sharedTable1(b)
		for _, row := range res.Rows[:3] {
			b.ReportMetric(row.Exact.Median, row.Workload+"-exact-median")
			b.ReportMetric(row.Est.Median, row.Workload+"-est-median")
		}
	}
}

// BenchmarkTable1_Index reproduces the last row of Table 1 (E4): the
// what-if index-tuning Q-errors.
func BenchmarkTable1_Index(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := sharedTable1(b)
		row := res.Rows[3]
		b.ReportMetric(row.Exact.Median, "exact-median")
		b.ReportMetric(row.Exact.Max, "exact-max")
		b.ReportMetric(row.Est.Median, "est-median")
		b.ReportMetric(row.Est.Max, "est-max")
	}
}

// BenchmarkDBCountSweep reproduces E5: holdout error vs number of training
// databases (Section 3.2's "after 19 databases the performance stagnated").
func BenchmarkDBCountSweep(b *testing.B) {
	env := sharedBenchEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.DBCountSweep(env, []int{1, 2, 4})
		if err != nil {
			b.Fatal(err)
		}
		first := res.Points[0]
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(first.Median, "median-1db")
		b.ReportMetric(last.Median, "median-alldbs")
	}
}

// BenchmarkFewShot reproduces E6: few-shot fine-tuning vs training a
// workload-driven model from scratch on the same target queries.
func BenchmarkFewShot(b *testing.B) {
	env := sharedBenchEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.FewShot(env, []int{10, 50})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ZeroShotBaseline, "zeroshot-median")
		b.ReportMetric(res.Points[0].FewShot, "fewshot10-median")
		b.ReportMetric(res.Points[0].FromScratch, "scratch10-median")
	}
}

// BenchmarkOnlineAdaptation runs E7: an unseen database's workload
// streamed through a serving Session with feedback, the adaptation loop
// fine-tuning and hot-swapping in the background of every chunk. The
// first/last chunk medians are the online analogue of E6's few-shot
// curve.
func BenchmarkOnlineAdaptation(b *testing.B) {
	env := sharedBenchEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.OnlineAdaptation(env, 60, 20)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.First(), "first-chunk-median")
		b.ReportMetric(res.Last(), "last-chunk-median")
		b.ReportMetric(float64(res.SwapsAccepted), "swaps-accepted")
		b.ReportMetric(float64(res.SwapsRejected), "swaps-rejected")
	}
}

// BenchmarkWhatIfAdvisor runs E10: a full what-if sweep on the unseen
// database — enumerated candidates, the whole (variant × statement)
// cross product priced through one fused batch — verified against the
// executed ground truth of the same variants. sweep-ns/item is directly
// comparable to E9's fused per-item rate.
func BenchmarkWhatIfAdvisor(b *testing.B) {
	env := sharedBenchEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.WhatIfAdvisor(env, 32)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.NsPerItem, "sweep-ns/item")
		b.ReportMetric(float64(res.Items), "items")
		b.ReportMetric(res.RankCorr, "rank-corr")
		top1 := 0.0
		if res.Top1Agrees {
			top1 = 1
		}
		b.ReportMetric(top1, "top1-agrees")
	}
}

var (
	ablOnce sync.Once
	ablRes  *experiments.AblationResult
	ablErr  error
)

func sharedAblations(b *testing.B) *experiments.AblationResult {
	b.Helper()
	env := sharedBenchEnv(b)
	ablOnce.Do(func() {
		ablRes, ablErr = experiments.Ablations(env)
	})
	if ablErr != nil {
		b.Fatal(ablErr)
	}
	return ablRes
}

// BenchmarkAblation_OneHot reproduces A1: the transferable encoding vs a
// one-hot encoding trained on the same multi-database corpus.
func BenchmarkAblation_OneHot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := sharedAblations(b)
		b.ReportMetric(res.ZeroShot.Median, "zeroshot-median")
		b.ReportMetric(res.OneHot.Median, "onehot-median")
	}
}

// BenchmarkAblation_FlatSum reproduces A2: DAG message passing vs a flat
// sum of node encodings.
func BenchmarkAblation_FlatSum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := sharedAblations(b)
		b.ReportMetric(res.ZeroShot.Median, "zeroshot-median")
		b.ReportMetric(res.FlatSum.Median, "flatsum-median")
	}
}

// BenchmarkAblation_Cardinalities reproduces A3: exact vs estimated vs no
// cardinality inputs.
func BenchmarkAblation_Cardinalities(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := sharedAblations(b)
		b.ReportMetric(res.ZeroShot.Median, "exact-median")
		b.ReportMetric(res.EstCard.Median, "est-median")
		b.ReportMetric(res.NoCard.Median, "nocard-median")
		b.ReportMetric(res.NoCard.P95, "nocard-p95")
		b.ReportMetric(res.ZeroShot.P95, "exact-p95")
	}
}

// --- batched inference: the serving hot path ---

var (
	pbOnce sync.Once
	pbEst  costmodel.Estimator
	pbIns  []costmodel.PlanInput
	pbErr  error
)

// predictBatchSetup trains one zero-shot estimator on an IMDB-like
// database and prepares a batch of prediction inputs — the shape of one
// /v1/predict_batch request against `zsdb serve`.
func predictBatchSetup(b *testing.B) (costmodel.Estimator, []costmodel.PlanInput) {
	b.Helper()
	pbOnce.Do(func() {
		db, err := datagen.IMDBLike(0.08)
		if err != nil {
			pbErr = err
			return
		}
		recs, err := collect.Run(db, collect.Options{Queries: 256, Seed: 7})
		if err != nil {
			pbErr = err
			return
		}
		samples := costmodel.FromRecords(db, recs)
		est, err := costmodel.New(costmodel.NameZeroShot,
			costmodel.Options{Hidden: 24, Epochs: 4, Card: encoding.CardExact})
		if err != nil {
			pbErr = err
			return
		}
		if _, err := est.Fit(context.Background(), samples[:128]); err != nil {
			pbErr = err
			return
		}
		pbEst = est
		pbIns = costmodel.Inputs(samples)
	})
	if pbErr != nil {
		b.Fatal(pbErr)
	}
	return pbEst, pbIns
}

// BenchmarkPredictBatch_Serial predicts a 256-plan batch one input at a
// time — the pre-costmodel inference path.
func BenchmarkPredictBatch_Serial(b *testing.B) {
	est, ins := predictBatchSetup(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, in := range ins {
			if _, err := est.Predict(ctx, in); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(ins))*float64(b.N)/b.Elapsed().Seconds(), "preds/s")
}

// BenchmarkPredictBatch_Parallel predicts the same batch through
// PredictBatch; since the fused-inference refactor this is one fused
// forward pass per batch, and the preds/s ratio over the serial
// benchmark is the speedup of the new hot path.
func BenchmarkPredictBatch_Parallel(b *testing.B) {
	est, ins := predictBatchSetup(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.PredictBatch(ctx, ins); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(ins))*float64(b.N)/b.Elapsed().Seconds(), "preds/s")
}

// fanoutPredict reproduces the pre-fusion PredictBatch: per-item tape
// forward passes fanned over a GOMAXPROCS worker pool — the E9 baseline
// the fused path is measured against.
func fanoutPredict(ctx context.Context, est costmodel.Estimator, ins []costmodel.PlanInput) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(ins) {
		workers = len(ins)
	}
	var next atomic.Int64
	next.Store(-1)
	errs := make([]error, len(ins))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(ins) {
					return
				}
				_, errs[i] = est.Predict(ctx, ins[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// BenchmarkFusedVsFanout is the E9 batched-inference curve: the same
// zero-shot batch priced through the goroutine fan-out over per-item
// tape forwards ("fanout") and through the fused single forward pass
// ("fused"), at batch sizes 1/8/64/256. ReportAllocs makes the
// steady-state allocation story part of the measurement.
func BenchmarkFusedVsFanout(b *testing.B) {
	est, ins := predictBatchSetup(b)
	ctx := context.Background()
	for _, size := range []int{1, 8, 64, 256} {
		batch := ins[:size]
		b.Run(fmt.Sprintf("fanout/b%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := fanoutPredict(ctx, est, batch); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(b.Elapsed().Seconds()/float64(b.N*size)*1e9, "ns/item")
		})
		b.Run(fmt.Sprintf("fused/b%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := est.PredictBatch(ctx, batch); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(b.Elapsed().Seconds()/float64(b.N*size)*1e9, "ns/item")
		})
	}
}

// --- serving pipeline: coalesced singles vs per-request prediction ---

var (
	ssOnce sync.Once
	ssEst  costmodel.Estimator
	ssDB   *storage.Database
	ssSQLs []string
	ssErr  error
)

// serveSinglesSetup trains one estimated-cardinality zero-shot estimator
// (serve-time plans are never executed) and prepares a pool of SQL texts
// — the shape of independent /v1/predict clients hitting `zsdb serve`.
func serveSinglesSetup(b *testing.B) (costmodel.Estimator, *storage.Database, []string) {
	b.Helper()
	ssOnce.Do(func() {
		db, err := datagen.IMDBLike(0.08)
		if err != nil {
			ssErr = err
			return
		}
		recs, err := collect.Run(db, collect.Options{Queries: 96, Seed: 17})
		if err != nil {
			ssErr = err
			return
		}
		samples := costmodel.FromRecords(db, recs)
		est, err := costmodel.New(costmodel.NameZeroShot,
			costmodel.Options{Hidden: 24, Epochs: 4, Card: encoding.CardEstimated})
		if err != nil {
			ssErr = err
			return
		}
		if _, err := est.Fit(context.Background(), samples); err != nil {
			ssErr = err
			return
		}
		ssEst = est
		ssDB = db
		for _, r := range recs[:32] {
			ssSQLs = append(ssSQLs, r.Query.SQL())
		}
	})
	if ssErr != nil {
		b.Fatal(ssErr)
	}
	return ssEst, ssDB, ssSQLs
}

// serveSinglesClients is the minimum concurrent-client count both
// serving benchmarks run at (the acceptance bar is coalesced >
// per-request at >= 8 clients).
const serveSinglesClients = 8

// runServeSingles drives concurrent clients round-robining over the SQL
// pool, each predicting one statement per iteration. SetParallelism
// rounds up to a GOMAXPROCS multiple, so the client count is exactly
// serveSinglesClients when GOMAXPROCS divides it and slightly above
// otherwise — never below.
func runServeSingles(b *testing.B, sqls []string, predict func(sql string) error) {
	b.SetParallelism((serveSinglesClients + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if err := predict(sqls[i%len(sqls)]); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "preds/s")
}

// BenchmarkServeSingles_PerRequest is the pre-serving path: every
// request pays the full parse→optimize→featurize pipeline and predicts
// alone — what the old one-database server did per /v1/predict.
func BenchmarkServeSingles_PerRequest(b *testing.B) {
	est, db, sqls := serveSinglesSetup(b)
	st := stats.Collect(db, stats.DefaultBuckets, stats.DefaultMCVs)
	opt := optimizer.New(db.Schema, st, nil, optimizer.DefaultCostParams())
	ctx := context.Background()
	runServeSingles(b, sqls, func(sql string) error {
		q, err := sqlparse.Parse(sql, db.Schema)
		if err != nil {
			return err
		}
		p, err := opt.Plan(q)
		if err != nil {
			return err
		}
		_, err = est.Predict(ctx, costmodel.PlanInput{
			DB: db, Query: q, Plan: p, OptimizerCost: optimizer.TotalCost(p),
		})
		return err
	})
}

// BenchmarkServeSingles_Coalesced is the serving pipeline: the session's
// plan cache absorbs repeated query shapes and the scheduler coalesces
// the concurrent singles into micro-batches draining through
// PredictBatch. The preds/s ratio over PerRequest is the win of the
// serving layer for p50 single-request traffic.
func BenchmarkServeSingles_Coalesced(b *testing.B) {
	est, db, sqls := serveSinglesSetup(b)
	sess := serving.NewSession(serving.Config{})
	defer sess.Close()
	if err := sess.AttachDatabase("imdb", db); err != nil {
		b.Fatal(err)
	}
	if err := sess.AttachModel(est); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	runServeSingles(b, sqls, func(sql string) error {
		_, err := sess.Predict(ctx, "imdb", "", sql)
		return err
	})
	st := sess.Stats()
	if st.Scheduler.Batches > 0 {
		b.ReportMetric(st.Scheduler.MeanBatchSize, "batch-size")
	}
}
