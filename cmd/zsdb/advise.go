package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/zeroshot-db/zeroshot/internal/engine"
	"github.com/zeroshot-db/zeroshot/internal/hwsim"
	"github.com/zeroshot-db/zeroshot/internal/optimizer"
	"github.com/zeroshot-db/zeroshot/internal/query"
	"github.com/zeroshot-db/zeroshot/internal/serving"
	"github.com/zeroshot-db/zeroshot/internal/sqlparse"
	"github.com/zeroshot-db/zeroshot/internal/stats"
	"github.com/zeroshot-db/zeroshot/internal/storage"
	"github.com/zeroshot-db/zeroshot/internal/whatif"
)

// runAdvise is the CLI form of POST /v1/whatif: build the serving
// database, load the model, run one what-if sweep over the workload,
// and print the candidates ranked by predicted workload runtime. It
// drives the exact serving path the HTTP endpoint uses
// (serving.Session.WhatIf), so the two surfaces cannot diverge.
func runAdvise(args []string) error {
	fs := flag.NewFlagSet("advise", flag.ContinueOnError)
	modelPath := fs.String("model", "", "saved cost model (required; train with estimated cardinalities)")
	dbKind := fs.String("db", "imdb", "database to advise: imdb, ssb or tpch")
	dbScale := fs.Float64("dbscale", 0.1, "database scale")
	workload := fs.String("workload", "", "workload file: one SQL statement per line, # and -- comments ignored (default: a generated synthetic workload)")
	candidates := fs.String("candidates", "", "comma-separated explicit index candidates (table.column); default: enumerate from foreign keys and workload filters")
	maxCand := fs.Int("max-candidates", 0, fmt.Sprintf("candidate cap (default %d)", whatif.DefaultMaxCandidates))
	genQueries := fs.Int("gen-queries", 40, "generated workload size when -workload is not given")
	seed := fs.Int64("seed", 777, "generated workload seed")
	verify := fs.Bool("verify", false, "execute the workload under each recommended variant and print actual simulated runtimes next to the predictions")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" {
		return fmt.Errorf("advise: -model is required")
	}
	models, err := loadModels(*modelPath)
	if err != nil {
		return err
	}
	db, err := buildDatabase(*dbKind, *dbScale)
	if err != nil {
		return err
	}
	sess, err := assembleSession(serving.Config{}, []string{*dbKind}, []*storage.Database{db}, models)
	if err != nil {
		return err
	}
	defer sess.Close()

	var sqls []string
	if *workload != "" {
		sqls, err = readWorkload(*workload)
	} else {
		sqls, err = generateWorkload(db, *genQueries, *seed)
	}
	if err != nil {
		return err
	}

	req := whatif.Request{SQL: sqls, MaxCandidates: *maxCand}
	for _, c := range strings.Split(*candidates, ",") {
		if c = strings.TrimSpace(c); c != "" {
			req.Candidates = append(req.Candidates, c)
		}
	}

	rep, err := sess.WhatIf(context.Background(), *dbKind, "", req)
	if err != nil {
		return err
	}

	actuals := map[string]float64{}
	if *verify {
		actuals, err = verifyVariants(db, sqls, rep)
		if err != nil {
			return err
		}
	}

	fmt.Printf("what-if sweep on %s: %d statements x %d candidates (%d plans priced in one fused batch)\n\n",
		rep.Database, len(sqls), len(rep.Candidates), rep.Items)
	printVariant := func(v whatif.VariantResult) {
		line := fmt.Sprintf("  %-36s predicted %9.3fs", v.Name, v.TotalSec)
		if v.SpeedupX > 0 && v.Name != "baseline" {
			line += fmt.Sprintf("   speedup %5.2fx", v.SpeedupX)
		}
		if *verify {
			line += fmt.Sprintf("   actual %9.3fs", actuals[v.Name])
		}
		if v.Errors > 0 {
			line += fmt.Sprintf("   (%d statement error(s))", v.Errors)
		}
		fmt.Println(line)
	}
	printVariant(rep.Baseline)
	for _, v := range rep.Variants {
		printVariant(v)
	}
	if rep.Recommendation != "" {
		fmt.Printf("\nadvisor recommends: CREATE INDEX ON %s\n", rep.Recommendation)
	} else {
		fmt.Println("\nadvisor recommends: keep the baseline (no candidate beats it)")
	}
	return nil
}

// readWorkload loads a workload file: one statement per line, blank
// lines and #/-- comments skipped, trailing semicolons stripped.
func readWorkload(path string) ([]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "--") {
			continue
		}
		out = append(out, strings.TrimSuffix(line, ";"))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("advise: workload file %s contains no statements", path)
	}
	return out, nil
}

// generateWorkload draws a synthetic tuning workload against the
// database.
func generateWorkload(db *storage.Database, n int, seed int64) ([]string, error) {
	qs, err := query.Synthetic(db, n, seed)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(qs))
	for i, q := range qs {
		out[i] = q.SQL()
	}
	return out, nil
}

// verifyVariants executes the workload under the baseline and each
// recommended variant (hypothetical indexes actually materialized) and
// returns each variant's simulated actual runtime — the advisor's
// ground truth.
func verifyVariants(db *storage.Database, sqls []string, rep *whatif.Report) (map[string]float64, error) {
	qs := make([]*query.Query, len(sqls))
	for i, sql := range sqls {
		q, err := sqlparse.Parse(sql, db.Schema)
		if err != nil {
			return nil, fmt.Errorf("advise: verify statement %d: %w", i, err)
		}
		qs[i] = q
	}
	st := stats.Collect(db, stats.DefaultBuckets, stats.DefaultMCVs)
	sim := hwsim.New(hwsim.DefaultProfile(), 1)
	execute := func(indexes []string) (float64, error) {
		idx := optimizer.IndexSet{}
		for _, k := range indexes {
			idx[k] = true
		}
		opt := optimizer.New(db.Schema, st, idx, optimizer.DefaultCostParams())
		ex := engine.New(db, engine.Config{})
		total := 0.0
		for _, q := range qs {
			p, err := opt.Plan(q)
			if err != nil {
				return 0, err
			}
			if _, err := ex.Execute(p); err != nil {
				return 0, err
			}
			total += sim.RuntimeNoiseless(p)
		}
		return total, nil
	}
	out := map[string]float64{}
	base, err := execute(nil)
	if err != nil {
		return nil, err
	}
	out[rep.Baseline.Name] = base
	for _, v := range rep.Variants {
		actual, err := execute(v.Indexes)
		if err != nil {
			return nil, err
		}
		out[v.Name] = actual
	}
	return out, nil
}
