package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"time"

	"github.com/zeroshot-db/zeroshot/internal/adapt"
	"github.com/zeroshot-db/zeroshot/internal/bundle"
	"github.com/zeroshot-db/zeroshot/internal/costmodel"
	"github.com/zeroshot-db/zeroshot/internal/obs"
	"github.com/zeroshot-db/zeroshot/internal/serving"
)

// bundleFlags carries the -bundle* flag values into session assembly.
// An empty dir means bundle distribution is off.
type bundleFlags struct {
	dir    string
	poll   time.Duration
	retain int
	model  string
}

// resolveModel picks which loaded estimator the bundle tier distributes:
// the -bundle-model name, or the sole loaded model.
func (bf bundleFlags) resolveModel(models []costmodel.Estimator) (string, error) {
	if bf.model != "" {
		for _, est := range models {
			if est.Name() == bf.model {
				return bf.model, nil
			}
		}
		return "", fmt.Errorf("serve: -bundle-model %q is not among the loaded models", bf.model)
	}
	if len(models) == 1 {
		return models[0].Name(), nil
	}
	names := make([]string, len(models))
	for i, est := range models {
		names[i] = est.Name()
	}
	return "", fmt.Errorf("serve: several models loaded (%v); pick the distributed one with -bundle-model", names)
}

// bundleControl owns one serve process's bundle plumbing: the shared
// store and publisher, plus each replica's distributor. It backs
// GET/POST /v1/bundles on both the single-session and cluster servers,
// and the bundles section of /v1/stats.
type bundleControl struct {
	estimator string
	store     *bundle.DirStore
	pub       *bundle.Publisher
	dists     map[string]*bundle.Distributor // keyed by replica name
	// events is the process-wide control-plane log every publish,
	// activation and rollback records into (nil disables).
	events *obs.Log
}

// newControl opens the store and publisher. Distributors attach per
// replica afterwards. events, when non-nil, receives every bundle
// publish/activate/rollback.
func (bf bundleFlags) newControl(models []costmodel.Estimator, events *obs.Log) (*bundleControl, error) {
	if bf.dir == "" {
		return nil, nil
	}
	estName, err := bf.resolveModel(models)
	if err != nil {
		return nil, err
	}
	store, err := bundle.NewDirStore(bf.dir)
	if err != nil {
		return nil, err
	}
	return &bundleControl{
		estimator: estName,
		store:     store,
		pub:       bundle.NewPublisher(store, bf.retain).WithEvents(events),
		dists:     map[string]*bundle.Distributor{},
		events:    events,
	}, nil
}

// attach wires one replica's distributor onto its session and starts
// its poll loop.
func (bc *bundleControl) attach(replica string, sess *serving.Session, poll time.Duration) (*bundle.Distributor, error) {
	d, err := bundle.NewDistributor(bundle.DistConfig{
		Store:     bc.store,
		Target:    sess,
		Estimator: bc.estimator,
		Interval:  poll,
		Events:    bc.events,
		Origin:    replica,
	})
	if err != nil {
		return nil, err
	}
	bc.dists[replica] = d
	d.Start()
	return d, nil
}

// seed publishes the boot model as the first revision when the store is
// empty — so a later rollback always has a "prior generation" to land
// on, and replicas joining a fresh fleet converge on exactly the model
// the process booted with. Every attached distributor is marked: the
// boot model is already serving, re-downloading it would bump the
// generation for nothing. With a non-empty store the head is NEWER than
// the boot model (a previous fleet's adaptations) and the distributors
// are left to converge onto it by polling.
func (bc *bundleControl) seed(ctx context.Context, models []costmodel.Estimator) error {
	if _, err := bc.store.Latest(ctx); !errors.Is(err, bundle.ErrNotFound) {
		return err // nil when revisions exist
	}
	for _, est := range models {
		if est.Name() != bc.estimator {
			continue
		}
		man, err := bc.pub.Publish(ctx, est, bundle.Meta{Fingerprint: "boot"})
		if err != nil {
			return fmt.Errorf("serve: seed bundle store: %w", err)
		}
		for _, d := range bc.dists {
			d.MarkActivated(man)
		}
		fmt.Fprintf(os.Stderr, "seeded bundle store with boot %s as revision %d\n", bc.estimator, man.Revision)
		return nil
	}
	return fmt.Errorf("serve: bundle model %q not among the loaded models", bc.estimator)
}

// onAccept bridges one replica's adaptation loop into the publisher: an
// accepted hot-swap becomes the next fleet-wide bundle revision, and
// the publishing replica's own distributor is marked so it does not
// re-download what it already serves. Publish failures are logged, not
// fatal — the swap is already live locally; the next accept retries.
func (bc *bundleControl) onAccept(dist *bundle.Distributor) func(context.Context, costmodel.Estimator, adapt.ShadowEval, int) {
	if bc == nil {
		return nil
	}
	return func(ctx context.Context, est costmodel.Estimator, eval adapt.ShadowEval, samples int) {
		man, err := bc.pub.Publish(ctx, est, bundle.Meta{
			Fingerprint: "adapt:" + eval.Database,
			Samples:     samples,
			Shadow: &bundle.ShadowMetrics{
				Database:   eval.Database,
				OldMedianQ: eval.OldMedian,
				NewMedianQ: eval.NewMedian,
				Holdout:    eval.Holdout,
				At:         eval.At,
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "zsdb: bundle publish after accepted swap failed: %v\n", err)
			return
		}
		if dist != nil {
			dist.MarkActivated(man)
		}
	}
}

// statuses snapshots every replica's distributor, keyed by replica name.
func (bc *bundleControl) statuses() map[string]bundle.Status {
	out := make(map[string]bundle.Status, len(bc.dists))
	for name, d := range bc.dists {
		out[name] = d.Status()
	}
	return out
}

// refresh polls every distributor once, returning the first error.
func (bc *bundleControl) refresh(ctx context.Context) error {
	names := make([]string, 0, len(bc.dists))
	for name := range bc.dists {
		names = append(names, name)
	}
	sort.Strings(names)
	var firstErr error
	for _, name := range names {
		if _, err := bc.dists[name].PollOnce(ctx); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("%s: %w", name, err)
		}
	}
	return firstErr
}

// rollback republishes a retained revision as the new head (durable,
// fleet-wide: pollers everywhere converge onto it) and immediately
// polls the local distributors so this process does not wait out an
// interval.
func (bc *bundleControl) rollback(ctx context.Context, revision int64) (bundle.Manifest, error) {
	man, err := bc.pub.Rollback(ctx, revision)
	if err != nil {
		return bundle.Manifest{}, err
	}
	if err := bc.refresh(ctx); err != nil {
		return man, fmt.Errorf("rolled back to revision %d as %d, but re-poll failed: %w", man.RollbackOf, man.Revision, err)
	}
	return man, nil
}

// close stops every distributor's poll loop.
func (bc *bundleControl) close() {
	if bc == nil {
		return
	}
	for _, d := range bc.dists {
		d.Close()
	}
}

// bundlesRequest is the POST /v1/bundles body.
type bundlesRequest struct {
	// Action is "refresh" (poll every replica's distributor now) or
	// "rollback" (republish a retained revision as the new head).
	Action string `json:"action"`
	// Revision is the rollback target; 0 means the revision before the
	// current head.
	Revision int64 `json:"revision"`
}

// handleBundles serves GET/POST /v1/bundles for both the single-session
// and cluster servers — the bundleControl is the same shape either way,
// single-session just has one distributor under the "local" key.
func handleBundles(bc *bundleControl) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if bc == nil {
			httpError(w, http.StatusNotFound, "bundle distribution is disabled (restart with -bundle-dir)")
			return
		}
		switch r.Method {
		case http.MethodGet:
			revs, err := bundle.List(r.Context(), bc.store)
			body := map[string]any{
				"estimator": bc.estimator,
				"retain":    bc.pub.Retain(),
				"revisions": revs,
				"replicas":  bc.statuses(),
			}
			if err != nil {
				// Corrupt retained revisions are worth surfacing, but the
				// listing itself still answers.
				body["error"] = err.Error()
			}
			writeJSON(w, body)
		case http.MethodPost:
			var req bundlesRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				httpError(w, http.StatusBadRequest, "bad request body: %v", err)
				return
			}
			switch req.Action {
			case "refresh":
				if err := bc.refresh(r.Context()); err != nil {
					httpError(w, http.StatusBadGateway, "refresh: %v", err)
					return
				}
				writeJSON(w, map[string]any{"status": "refreshed", "replicas": bc.statuses()})
			case "rollback":
				man, err := bc.rollback(r.Context(), req.Revision)
				if err != nil {
					code := http.StatusInternalServerError
					if errors.Is(err, bundle.ErrNotFound) {
						code = http.StatusNotFound
					}
					httpError(w, code, "rollback: %v", err)
					return
				}
				writeJSON(w, map[string]any{"status": "rolled_back", "manifest": man, "replicas": bc.statuses()})
			default:
				httpError(w, http.StatusBadRequest, "unknown action %q (want refresh or rollback)", req.Action)
			}
		default:
			httpError(w, http.StatusMethodNotAllowed, "GET or POST only")
		}
	}
}

// runBundle dispatches the zsdb bundle subcommands: offline builds and
// inspections, plus store-level push/list/rollback against the same
// directory a serve fleet polls.
func runBundle(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("bundle: want a subcommand: build, inspect, push, list or rollback")
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "build":
		return runBundleBuild(rest)
	case "inspect":
		return runBundleInspect(rest)
	case "push":
		return runBundlePush(rest)
	case "list":
		return runBundleList(rest)
	case "rollback":
		return runBundleRollback(rest)
	default:
		return fmt.Errorf("bundle: unknown subcommand %q (want build, inspect, push, list or rollback)", sub)
	}
}

// runBundleBuild wraps a saved model file into a standalone bundle
// archive — the artifact form for copying between environments; use
// push to enter it into a store's revision sequence.
func runBundleBuild(args []string) error {
	fs := flag.NewFlagSet("bundle build", flag.ContinueOnError)
	modelPath := fs.String("model", "", "saved model file to wrap (required)")
	out := fs.String("out", "model-bundle.tgz", "output bundle path")
	revision := fs.Int64("revision", 1, "manifest revision")
	fingerprint := fs.String("fingerprint", "", "training fingerprint (default: file:<model path>)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" {
		return fmt.Errorf("bundle build: -model is required")
	}
	est, err := loadModelFile(*modelPath)
	if err != nil {
		return err
	}
	fp := *fingerprint
	if fp == "" {
		fp = "file:" + *modelPath
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	man, err := bundle.Build(f, est, *revision, bundle.Meta{Fingerprint: fp})
	if closeErr := f.Close(); err == nil {
		err = closeErr
	}
	if err != nil {
		os.Remove(*out)
		return err
	}
	fmt.Printf("built %s revision %d (%s) -> %s\n", man.Estimator, man.Revision, shortDigest(man.SHA256), *out)
	return nil
}

// runBundleInspect verifies a bundle archive and prints its manifest.
func runBundleInspect(args []string) error {
	fs := flag.NewFlagSet("bundle inspect", flag.ContinueOnError)
	path := fs.String("bundle", "", "bundle archive to inspect (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		return fmt.Errorf("bundle inspect: -bundle is required")
	}
	f, err := os.Open(*path)
	if err != nil {
		return err
	}
	defer f.Close()
	man, err := bundle.Inspect(f)
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

// runBundlePush publishes a saved model file into a store as the next
// revision — the manual counterpart of the adaptation loop's automatic
// publish; serve fleets polling the store pick it up within a poll.
func runBundlePush(args []string) error {
	fs := flag.NewFlagSet("bundle push", flag.ContinueOnError)
	modelPath := fs.String("model", "", "saved model file to publish (required)")
	dir := fs.String("store", "", "bundle store directory (required)")
	retain := fs.Int("retain", bundle.DefaultRetain, "revisions to retain after pruning")
	fingerprint := fs.String("fingerprint", "", "training fingerprint (default: file:<model path>)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" || *dir == "" {
		return fmt.Errorf("bundle push: -model and -store are required")
	}
	est, err := loadModelFile(*modelPath)
	if err != nil {
		return err
	}
	store, err := bundle.NewDirStore(*dir)
	if err != nil {
		return err
	}
	fp := *fingerprint
	if fp == "" {
		fp = "file:" + *modelPath
	}
	man, err := bundle.NewPublisher(store, *retain).Publish(context.Background(), est, bundle.Meta{Fingerprint: fp})
	if err != nil {
		return err
	}
	fmt.Printf("pushed %s revision %d (%s) to %s\n", man.Estimator, man.Revision, shortDigest(man.SHA256), *dir)
	return nil
}

// runBundleList prints every retained revision's manifest summary.
func runBundleList(args []string) error {
	fs := flag.NewFlagSet("bundle list", flag.ContinueOnError)
	dir := fs.String("store", "", "bundle store directory (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("bundle list: -store is required")
	}
	store, err := bundle.NewDirStore(*dir)
	if err != nil {
		return err
	}
	mans, listErr := bundle.List(context.Background(), store)
	for _, man := range mans {
		if man.Estimator == "" {
			fmt.Printf("rev %-4d UNVERIFIABLE\n", man.Revision)
			continue
		}
		line := fmt.Sprintf("rev %-4d %-10s %s  %s  %s", man.Revision, man.Estimator,
			shortDigest(man.SHA256), man.CreatedAt.Format(time.RFC3339), man.Fingerprint)
		if man.RollbackOf != 0 {
			line += fmt.Sprintf("  (rollback of %d, superseding %d)", man.RollbackOf, man.RolledBackFrom)
		}
		if man.Shadow != nil {
			line += fmt.Sprintf("  shadow %s: %.3f -> %.3f", man.Shadow.Database, man.Shadow.OldMedianQ, man.Shadow.NewMedianQ)
		}
		fmt.Println(line)
	}
	return listErr
}

// runBundleRollback republishes a retained revision as the new head —
// every serve node polling the store converges onto the restored model
// within one poll interval.
func runBundleRollback(args []string) error {
	fs := flag.NewFlagSet("bundle rollback", flag.ContinueOnError)
	dir := fs.String("store", "", "bundle store directory (required)")
	to := fs.Int64("to", 0, "revision to restore (0 = the one before the current head)")
	retain := fs.Int("retain", bundle.DefaultRetain, "revisions to retain after pruning")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("bundle rollback: -store is required")
	}
	store, err := bundle.NewDirStore(*dir)
	if err != nil {
		return err
	}
	man, err := bundle.NewPublisher(store, *retain).Rollback(context.Background(), *to)
	if err != nil {
		return err
	}
	fmt.Printf("rolled back to revision %d, republished as head revision %d (%s)\n",
		man.RollbackOf, man.Revision, shortDigest(man.SHA256))
	return nil
}

// shortDigest truncates a checksum for human output.
func shortDigest(s string) string {
	if len(s) > 12 {
		return s[:12]
	}
	return s
}
