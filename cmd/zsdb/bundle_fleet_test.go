package main

import (
	"context"
	"testing"
	"time"

	"github.com/zeroshot-db/zeroshot/internal/adapt"
	"github.com/zeroshot-db/zeroshot/internal/bundle"
	"github.com/zeroshot-db/zeroshot/internal/cluster"
	"github.com/zeroshot-db/zeroshot/internal/cluster/sim"
	"github.com/zeroshot-db/zeroshot/internal/costmodel"
	"github.com/zeroshot-db/zeroshot/internal/serving"
)

// TestBundleFleetAdaptConvergeFailoverRollback is E11: three real
// serving replicas behind the deterministic fault harness, adaptation
// accepted on the owning replica, and the bundle tier carrying the
// result fleet-wide. It pins, in order:
//
//  1. an accepted fine-tune on the owner publishes a new store revision,
//  2. every replica converges onto it within one poll round,
//  3. a failover after convergence serves the ADAPTED generation
//     (bitwise — the harness's consistency invariant does the check),
//  4. `zsdb bundle rollback` restores the prior generation fleet-wide,
//
// with zero lost requests and zero invariant violations end to end.
func TestBundleFleetAdaptConvergeFailoverRollback(t *testing.T) {
	f := sharedServeFixture(t)
	ctx := context.Background()
	storeDir := t.TempDir()
	bf := bundleFlags{dir: storeDir, poll: time.Hour, retain: bundle.DefaultRetain}

	boot := &cmdScaleEstimator{Scale: 1}
	bc, err := bf.newControl([]costmodel.Estimator{boot}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bc.close)

	sessions := map[string]*serving.Session{}
	loops := map[string]*adapt.Loop{}
	cfg := sim.Config{
		Replicas:  3,
		Databases: []string{"imdb"},
		Model:     cmdScaleName,
		Requests:  90,
		Seed:      11,
		// Every 2nd success reports an actual runtime 1.5× the prediction
		// (the harness's drift injection) — the owner's window trips.
		FeedbackEvery: 2,
		CallTimeout:   2 * time.Second, // real parse/plan/predict per call
		Workload: []string{
			"SELECT COUNT(*) FROM title",
			"SELECT COUNT(*) FROM movie_companies",
			"SELECT COUNT(*) FROM movie_companies, title WHERE movie_companies.movie_id = title.id",
			"SELECT SUM(title.production_year) FROM title WHERE title.production_year > 20",
		},
		NewBackend: func(name string) (sim.Backend, error) {
			sess := serving.NewSession(serving.Config{})
			if err := sess.AttachDatabase("imdb", f.imdb); err != nil {
				return nil, err
			}
			if err := sess.AttachModel(&cmdScaleEstimator{Scale: 1}); err != nil {
				return nil, err
			}
			dist, err := bc.attach(name, sess, bf.poll)
			if err != nil {
				return nil, err
			}
			loop, err := adapt.New(sess, adapt.Config{
				Model:        cmdScaleName,
				WindowSize:   64,
				MinSamples:   8,
				DriftMedian:  1.2,
				HoldoutEvery: 2,
				Epochs:       1,
				OnAccept:     bc.onAccept(dist),
			})
			if err != nil {
				return nil, err
			}
			b, err := cluster.NewInProcess(name, sess, loop)
			if err != nil {
				return nil, err
			}
			sessions[name] = sess
			loops[name] = loop
			return sim.WrapFaulty(b, 5*time.Second), nil
		},
	}
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Finish(ctx)
	if err := bc.seed(ctx, []costmodel.Estimator{boot}); err != nil {
		t.Fatal(err)
	}

	// Phase 1: clean traffic on the boot generation; drifting feedback
	// accumulates on the replica owning imdb.
	s.Step(ctx, 30)
	owner := s.Router().Owner("imdb")
	if owner == "" {
		t.Fatal("no owner for imdb")
	}

	// The owner's sweep accepts a recalibrated clone and — through the
	// OnAccept hook — publishes it as store revision 2.
	accepted, rejected := loops[owner].Sweep(ctx)
	if accepted != 1 || rejected != 0 {
		t.Fatalf("owner sweep: accepted=%d rejected=%d (status %+v)", accepted, rejected, loops[owner].Status())
	}
	if head, err := bc.store.Latest(ctx); err != nil || head != 2 {
		t.Fatalf("store head after accepted swap = %d (%v), want 2", head, err)
	}
	if got := bc.dists[owner].Revision(); got != 2 {
		t.Fatalf("publishing replica's distributor at revision %d, want 2 (marked, not re-downloaded)", got)
	}
	adaptedScale := mustModelScale(t, sessions[owner])
	if adaptedScale == 1 {
		t.Fatal("owner still serves the boot scale after an accepted swap")
	}

	// Phase 2: one poll round converges every replica onto revision 2,
	// serving the identical adapted parameters.
	s.ResetExpectations() // the generation legitimately changed
	if err := bc.refresh(ctx); err != nil {
		t.Fatalf("refresh: %v", err)
	}
	for name, d := range bc.dists {
		if d.Revision() != 2 {
			t.Fatalf("replica %s at revision %d after one poll, want 2", name, d.Revision())
		}
	}
	for name, sess := range sessions {
		if got := mustModelScale(t, sess); got != adaptedScale {
			t.Fatalf("replica %s serves scale %v, owner published %v", name, got, adaptedScale)
		}
	}

	// Phase 3: traffic on the adapted generation — all replicas answer,
	// bitwise-consistently.
	s.Step(ctx, 30)

	// Phase 4: crash the owner. Failover must serve the ADAPTED
	// generation — the expectations pinned in phase 3 came from the
	// owner, so any stale answer from a successor is a violation.
	if err := s.Fault(ctx, owner, sim.Crash); err != nil {
		t.Fatal(err)
	}
	s.Step(ctx, 15)

	// Phase 5: recover, then roll the whole fleet back with the CLI the
	// operator would use. One poll round restores the boot generation
	// everywhere.
	if err := s.Fault(ctx, owner, sim.Recover); err != nil {
		t.Fatal(err)
	}
	if err := runBundle([]string{"rollback", "-store", storeDir}); err != nil {
		t.Fatalf("zsdb bundle rollback: %v", err)
	}
	if err := bc.refresh(ctx); err != nil {
		t.Fatalf("refresh after rollback: %v", err)
	}
	for name, d := range bc.dists {
		if d.Revision() != 3 {
			t.Fatalf("replica %s at revision %d after rollback, want 3", name, d.Revision())
		}
		man := d.Status().Manifest
		if man == nil || man.RollbackOf != 1 {
			t.Fatalf("replica %s rollback manifest = %+v, want rollback_of 1", name, man)
		}
	}
	for name, sess := range sessions {
		if got := mustModelScale(t, sess); got != 1 {
			t.Fatalf("replica %s serves scale %v after rollback, want the boot scale 1", name, got)
		}
	}

	// Phase 6: traffic on the restored generation, then the verdict:
	// every one of the 90 requests succeeded, nothing was lost, no
	// invariant broke anywhere along the way.
	s.ResetExpectations()
	s.Step(ctx, 15)
	res := s.Finish(ctx)
	for _, v := range res.Violations {
		t.Errorf("invariant violated: %s", v)
	}
	if res.FailedLost != 0 || res.FailedExpected != 0 || res.Succeeded != 90 {
		t.Fatalf("succeeded=%d lost=%d expected-failures=%d, want 90/0/0",
			res.Succeeded, res.FailedLost, res.FailedExpected)
	}
	if res.FeedbackSent == 0 {
		t.Fatal("no feedback flowed — the adaptation path was not exercised")
	}
}

// mustModelScale reads the serving scale of the test estimator — the
// one float that identifies a generation bitwise.
func mustModelScale(t *testing.T, sess *serving.Session) float64 {
	t.Helper()
	est, err := sess.Model(cmdScaleName)
	if err != nil {
		t.Fatal(err)
	}
	se, ok := est.(*cmdScaleEstimator)
	if !ok {
		t.Fatalf("model %s is %T, want *cmdScaleEstimator", cmdScaleName, est)
	}
	return se.Scale
}
