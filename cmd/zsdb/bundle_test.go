package main

import (
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/zeroshot-db/zeroshot/internal/bundle"
	"github.com/zeroshot-db/zeroshot/internal/cluster"
	"github.com/zeroshot-db/zeroshot/internal/costmodel"
	"github.com/zeroshot-db/zeroshot/internal/serving"
)

// cmdScaleEstimator pins serving behaviour to one float so activations
// and rollbacks are bitwise-checkable through /v1/predict: it predicts
// Scale·1e-6·(cost+1). Registered so costmodel.Load — and with it
// bundle.Open and the distributor — can reconstruct it from a payload.
type cmdScaleEstimator struct {
	Scale float64
}

const cmdScaleName = "cmdbundle"

func init() {
	costmodel.Register(cmdScaleName, costmodel.Factory{
		New: func(costmodel.Options) (costmodel.Estimator, error) {
			return &cmdScaleEstimator{Scale: 1}, nil
		},
		Load: func(r io.Reader) (costmodel.Estimator, error) {
			var e cmdScaleEstimator
			if err := gob.NewDecoder(r).Decode(&e); err != nil {
				return nil, err
			}
			return &e, nil
		},
	})
}

func (e *cmdScaleEstimator) Name() string { return cmdScaleName }

func (e *cmdScaleEstimator) Fit(ctx context.Context, samples []costmodel.Sample) (*costmodel.FitReport, error) {
	return &costmodel.FitReport{Samples: len(samples)}, nil
}

func (e *cmdScaleEstimator) Predict(ctx context.Context, in costmodel.PlanInput) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return e.Scale * 1e-6 * (in.OptimizerCost + 1), nil
}

func (e *cmdScaleEstimator) PredictBatch(ctx context.Context, ins []costmodel.PlanInput) ([]float64, error) {
	out := make([]float64, len(ins))
	for i, in := range ins {
		v, err := e.Predict(ctx, in)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func (e *cmdScaleEstimator) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(e)
}

func (e *cmdScaleEstimator) Clone() (costmodel.Estimator, error) {
	return &cmdScaleEstimator{Scale: e.Scale}, nil
}

func (e *cmdScaleEstimator) FineTune(ctx context.Context, samples []costmodel.Sample, epochs int, lr float64) (*costmodel.FitReport, error) {
	// Recalibrate exactly from the first sample: enough for a
	// deterministic adaptation whose accept verdict is forced.
	if len(samples) > 0 {
		s := samples[0]
		e.Scale = s.RuntimeSec / (1e-6 * (s.OptimizerCost + 1))
	}
	return &costmodel.FitReport{Samples: len(samples)}, nil
}

// newBundleFixture assembles a session serving the scale estimator over
// the shared imdb fixture, wired to a bundle store in a temp dir and
// seeded with the boot model as revision 1 — the single-replica shape
// `zsdb serve -bundle-dir` builds.
func newBundleFixture(t *testing.T, scale float64) (*serving.Session, *bundleControl, *bundle.Distributor) {
	t.Helper()
	f := sharedServeFixture(t)
	sess := serving.NewSession(serving.Config{})
	if err := sess.AttachDatabase("imdb", f.imdb); err != nil {
		t.Fatal(err)
	}
	est := &cmdScaleEstimator{Scale: scale}
	if err := sess.AttachModel(est); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sess.Close() })

	bf := bundleFlags{dir: t.TempDir(), poll: time.Hour, retain: bundle.DefaultRetain}
	bc, err := bf.newControl([]costmodel.Estimator{est}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bc.close)
	dist, err := bc.attach("local", sess, bf.poll)
	if err != nil {
		t.Fatal(err)
	}
	if err := bc.seed(context.Background(), []costmodel.Estimator{est}); err != nil {
		t.Fatal(err)
	}
	return sess, bc, dist
}

const bundleTestSQL = "SELECT COUNT(*) FROM title"

// predictRuntime runs one prediction through the full serving path.
func predictRuntime(t *testing.T, sess *serving.Session, sql string) float64 {
	t.Helper()
	pred, err := sess.Predict(context.Background(), "imdb", cmdScaleName, sql)
	if err != nil {
		t.Fatal(err)
	}
	return pred.RuntimeSec
}

// TestServeBundleLifecycle drives the full single-replica loop over the
// HTTP surface: seeded store, publish, refresh-activate, generation and
// stats visibility, durable rollback restoring the prior generation
// bitwise, and a corrupt head refusing activation without touching the
// serving generation.
func TestServeBundleLifecycle(t *testing.T) {
	sess, bc, dist := newBundleFixture(t, 1)
	srv := newServer(sess)
	srv.bundles = bc
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()
	ctx := context.Background()

	baseline := predictRuntime(t, sess, bundleTestSQL)
	gen0, _, err := sess.ModelGeneration(cmdScaleName)
	if err != nil {
		t.Fatal(err)
	}

	// The seeded store answers GET /v1/bundles with one revision and the
	// local replica's distributor already at it.
	var view struct {
		Estimator string                   `json:"estimator"`
		Retain    int                      `json:"retain"`
		Revisions []bundle.Manifest        `json:"revisions"`
		Replicas  map[string]bundle.Status `json:"replicas"`
	}
	resp := getJSON(t, ts.URL+"/v1/bundles", &view)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/bundles: %d", resp.StatusCode)
	}
	if view.Estimator != cmdScaleName || len(view.Revisions) != 1 || view.Revisions[0].Fingerprint != "boot" {
		t.Fatalf("unexpected bundle view: %+v", view)
	}
	if st, ok := view.Replicas["local"]; !ok || st.Revision != 1 {
		t.Fatalf("local replica status = %+v, want revision 1", view.Replicas)
	}

	// /v1/models carries the serving generation and swap time (satellite:
	// generation observability).
	var models struct {
		Models []struct {
			Name       string    `json:"name"`
			Generation int64     `json:"generation"`
			Swapped    time.Time `json:"swapped"`
		} `json:"models"`
	}
	getJSON(t, ts.URL+"/v1/models", &models)
	found := false
	for _, m := range models.Models {
		if m.Name == cmdScaleName {
			found = true
			if m.Generation != gen0 || m.Swapped.IsZero() {
				t.Fatalf("model info %+v, want generation %d and a swap time", m, gen0)
			}
		}
	}
	if !found {
		t.Fatalf("%s missing from /v1/models: %+v", cmdScaleName, models)
	}

	// Publish revision 2 with doubled scale; a refresh activates it.
	if _, err := bc.pub.Publish(ctx, &cmdScaleEstimator{Scale: 2}, bundle.Meta{Fingerprint: "test:v2"}); err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/v1/bundles", bundlesRequest{Action: "refresh"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("refresh: %d %v", resp.StatusCode, body)
	}
	if got := predictRuntime(t, sess, bundleTestSQL); got != 2*baseline {
		t.Fatalf("after activating scale-2 revision: prediction %v, want %v", got, 2*baseline)
	}
	gen1, _, _ := sess.ModelGeneration(cmdScaleName)
	if gen1 <= gen0 {
		t.Fatalf("generation did not advance on activation: %d -> %d", gen0, gen1)
	}

	// The distributor's counters ride along in /v1/stats.
	var stats struct {
		Bundles map[string]bundle.Status `json:"bundles"`
	}
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if st, ok := stats.Bundles["local"]; !ok || st.Revision != 2 || st.Activations != 1 {
		t.Fatalf("stats bundles = %+v, want local at revision 2 with 1 activation", stats.Bundles)
	}

	// Durable rollback: revision 1's payload republishes as revision 3
	// and the restored generation predicts bitwise-identically to the
	// pre-swap baseline.
	resp, body = postJSON(t, ts.URL+"/v1/bundles", bundlesRequest{Action: "rollback"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rollback: %d %v", resp.StatusCode, body)
	}
	if dist.Revision() != 3 {
		t.Fatalf("distributor at revision %d after rollback, want 3", dist.Revision())
	}
	man := dist.Status().Manifest
	if man == nil || man.RollbackOf != 1 || man.RolledBackFrom != 2 {
		t.Fatalf("rollback manifest = %+v, want rollback_of 1 superseding 2", man)
	}
	restored := predictRuntime(t, sess, bundleTestSQL)
	if math.Float64bits(restored) != math.Float64bits(baseline) {
		t.Fatalf("rolled-back prediction %v is not bitwise-equal to baseline %v", restored, baseline)
	}
	gen2, _, _ := sess.ModelGeneration(cmdScaleName)
	if gen2 <= gen1 {
		t.Fatalf("rollback must land as a NEW generation, got %d after %d", gen2, gen1)
	}

	// A corrupt head refuses activation: refresh fails, the serving
	// generation and predictions stay on the rolled-back revision.
	if err := bc.store.Put(ctx, 4, []byte("not a bundle archive")); err != nil {
		t.Fatal(err)
	}
	resp, body = postJSON(t, ts.URL+"/v1/bundles", bundlesRequest{Action: "refresh"})
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("refresh over corrupt head: %d %v, want 502", resp.StatusCode, body)
	}
	if dist.Revision() != 3 {
		t.Fatalf("corrupt head moved the distributor to revision %d", dist.Revision())
	}
	if gen3, _, _ := sess.ModelGeneration(cmdScaleName); gen3 != gen2 {
		t.Fatalf("corrupt head bumped the serving generation: %d -> %d", gen2, gen3)
	}
	if got := predictRuntime(t, sess, bundleTestSQL); math.Float64bits(got) != math.Float64bits(baseline) {
		t.Fatalf("prediction drifted after refused activation: %v vs %v", got, baseline)
	}
	getJSON(t, ts.URL+"/v1/bundles", &view)
	if st := view.Replicas["local"]; st.LastError == "" || st.Failures == 0 {
		t.Fatalf("refused activation left no trace in status: %+v", st)
	}

	// Unknown actions are 400, and other methods 405.
	resp, _ = postJSON(t, ts.URL+"/v1/bundles", bundlesRequest{Action: "explode"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown action: %d, want 400", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/bundles", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE /v1/bundles: %d, want 405", dresp.StatusCode)
	}
}

// TestBundleActivationUnderLoad hammers one session with concurrent
// predictions while the distributor activates alternating revisions.
// Every answer must come from exactly one generation — scale 1 or
// scale 2, never a torn mix — and the scheduler's flush-time generation
// lookup must hold up under the race detector.
func TestBundleActivationUnderLoad(t *testing.T) {
	sess, bc, dist := newBundleFixture(t, 1)
	ctx := context.Background()

	baseline := predictRuntime(t, sess, bundleTestSQL)
	doubled := 2 * baseline // exact: scaling by a power of two

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var torn atomic.Int64
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				pred, err := sess.Predict(ctx, "imdb", cmdScaleName, bundleTestSQL)
				if err != nil {
					t.Error(err)
					return
				}
				if b := math.Float64bits(pred.RuntimeSec); b != math.Float64bits(baseline) && b != math.Float64bits(doubled) {
					torn.Add(1)
				}
			}
		}()
	}
	for rev := int64(2); rev <= 9; rev++ {
		scale := float64(1 + rev%2) // alternate 2, 1, 2, ...
		if _, err := bc.pub.Publish(ctx, &cmdScaleEstimator{Scale: scale}, bundle.Meta{}); err != nil {
			t.Fatal(err)
		}
		if activated, err := dist.PollOnce(ctx); err != nil || !activated {
			t.Fatalf("poll for revision %d: activated=%v err=%v", rev, activated, err)
		}
	}
	close(stop)
	wg.Wait()
	if n := torn.Load(); n != 0 {
		t.Fatalf("%d prediction(s) came from a half-swapped generation", n)
	}
}

// TestServeBundlesDisabled pins the off-by-default behaviour: without
// -bundle-dir the endpoint is 404 on both server flavours.
func TestServeBundlesDisabled(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/bundles")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /v1/bundles without -bundle-dir: %d, want 404", resp.StatusCode)
	}

	router, _ := newTestRouter(t, 2, false)
	cts := httptest.NewServer(newClusterServer(router).mux())
	defer cts.Close()
	resp, err = http.Get(cts.URL + "/v1/bundles")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cluster GET /v1/bundles without -bundle-dir: %d, want 404", resp.StatusCode)
	}
}

// TestClusterBundleConvergence wires three replica sessions to one
// store behind the cluster front end and checks the fleet-wide story: a
// published revision reaches every replica on refresh, and per-replica
// status is visible in both /v1/bundles and /v1/stats.
func TestClusterBundleConvergence(t *testing.T) {
	f := sharedServeFixture(t)
	ctx := context.Background()
	bf := bundleFlags{dir: t.TempDir(), poll: time.Hour, retain: bundle.DefaultRetain}

	boot := &cmdScaleEstimator{Scale: 1}
	bc, err := bf.newControl([]costmodel.Estimator{boot}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bc.close)

	router := cluster.NewRouter(cluster.Config{})
	t.Cleanup(func() { router.Close() })
	sessions := map[string]*serving.Session{}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("r%d", i)
		sess := serving.NewSession(serving.Config{})
		if err := sess.AttachDatabase("imdb", f.imdb); err != nil {
			t.Fatal(err)
		}
		if err := sess.AttachModel(&cmdScaleEstimator{Scale: 1}); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sess.Close() })
		if _, err := bc.attach(name, sess, bf.poll); err != nil {
			t.Fatal(err)
		}
		b, err := cluster.NewInProcess(name, sess, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := router.Register(b); err != nil {
			t.Fatal(err)
		}
		sessions[name] = sess
	}
	if err := bc.seed(ctx, []costmodel.Estimator{boot}); err != nil {
		t.Fatal(err)
	}

	srv := newClusterServer(router)
	srv.bundles = bc
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	var view struct {
		Replicas map[string]bundle.Status `json:"replicas"`
	}
	getJSON(t, ts.URL+"/v1/bundles", &view)
	if len(view.Replicas) != 3 {
		t.Fatalf("want 3 replica statuses, got %+v", view.Replicas)
	}
	for name, st := range view.Replicas {
		if st.Revision != 1 {
			t.Fatalf("replica %s at revision %d after seeding, want 1", name, st.Revision)
		}
	}

	// Publish revision 2 and refresh through the cluster endpoint: every
	// replica must converge, and its serving session actually swap.
	if _, err := bc.pub.Publish(ctx, &cmdScaleEstimator{Scale: 3}, bundle.Meta{Fingerprint: "test:v2"}); err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/v1/bundles", bundlesRequest{Action: "refresh"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster refresh: %d %v", resp.StatusCode, body)
	}
	for name, sess := range sessions {
		est, err := sess.Model(cmdScaleName)
		if err != nil {
			t.Fatal(err)
		}
		if got := est.(*cmdScaleEstimator).Scale; got != 3 {
			t.Fatalf("replica %s serves scale %v after refresh, want 3", name, got)
		}
	}

	// Generation skew is observable: the aggregated stats carry each
	// replica's distributor revision.
	var stats struct {
		Bundles map[string]bundle.Status `json:"bundles"`
	}
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if len(stats.Bundles) != 3 {
		t.Fatalf("cluster /v1/stats bundles = %+v, want 3 replicas", stats.Bundles)
	}
	for name, st := range stats.Bundles {
		if st.Revision != 2 {
			t.Fatalf("replica %s stats at revision %d, want 2", name, st.Revision)
		}
	}
}

// TestBundleCLI drives the operator loop end to end: build a standalone
// archive from a saved model, inspect it, push two revisions into a
// store, list them, and roll back — each subcommand through the same
// dispatch `zsdb bundle` uses.
func TestBundleCLI(t *testing.T) {
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.gob")
	f, err := os.Create(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := costmodel.Save(f, &cmdScaleEstimator{Scale: 1.5}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	bundlePath := filepath.Join(dir, "model-bundle.tgz")
	if err := runBundle([]string{"build", "-model", modelPath, "-out", bundlePath, "-revision", "7"}); err != nil {
		t.Fatalf("bundle build: %v", err)
	}
	bf, err := os.Open(bundlePath)
	if err != nil {
		t.Fatal(err)
	}
	man, err := bundle.Inspect(bf)
	bf.Close()
	if err != nil {
		t.Fatalf("built archive does not verify: %v", err)
	}
	if man.Estimator != cmdScaleName || man.Revision != 7 || man.Fingerprint != "file:"+modelPath {
		t.Fatalf("built manifest = %+v", man)
	}
	if err := runBundle([]string{"inspect", "-bundle", bundlePath}); err != nil {
		t.Fatalf("bundle inspect: %v", err)
	}

	store := filepath.Join(dir, "store")
	for i := 0; i < 2; i++ {
		if err := runBundle([]string{"push", "-model", modelPath, "-store", store}); err != nil {
			t.Fatalf("bundle push #%d: %v", i+1, err)
		}
	}
	if err := runBundle([]string{"list", "-store", store}); err != nil {
		t.Fatalf("bundle list: %v", err)
	}
	if err := runBundle([]string{"rollback", "-store", store}); err != nil {
		t.Fatalf("bundle rollback: %v", err)
	}

	ds, err := bundle.NewDirStore(store)
	if err != nil {
		t.Fatal(err)
	}
	head, err := ds.Latest(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if head != 3 {
		t.Fatalf("store head after push,push,rollback = %d, want 3", head)
	}
	hman, err := bundle.FetchManifest(context.Background(), ds, head)
	if err != nil {
		t.Fatal(err)
	}
	if hman.RollbackOf != 1 || hman.RolledBackFrom != 2 {
		t.Fatalf("rollback head manifest = %+v, want rollback_of 1 superseding 2", hman)
	}

	// Dispatch hygiene: unknown and missing subcommands fail with usage.
	if err := runBundle(nil); err == nil {
		t.Fatal("bundle with no subcommand must fail")
	}
	if err := runBundle([]string{"frobnicate"}); err == nil {
		t.Fatal("unknown bundle subcommand must fail")
	}
	if err := run("bundle", []string{"inspect", "-bundle", bundlePath}); err != nil {
		t.Fatalf("top-level bundle dispatch: %v", err)
	}
}
