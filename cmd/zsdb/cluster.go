package main

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync"

	"github.com/zeroshot-db/zeroshot/internal/adapt"
	"github.com/zeroshot-db/zeroshot/internal/bundle"
	"github.com/zeroshot-db/zeroshot/internal/cluster"
	"github.com/zeroshot-db/zeroshot/internal/costmodel"
	"github.com/zeroshot-db/zeroshot/internal/obs"
	"github.com/zeroshot-db/zeroshot/internal/whatif"
)

// clusterServer is the HTTP shim over a cluster.Router — the cluster
// analogue of server: same endpoints, same request/response bodies, so
// clients cannot tell one replica from many. Requests route to the
// replica owning their database (with failover); the read endpoints
// aggregate across replicas. /v1/cluster is the one addition: the ring
// and per-replica health view an operator watches during an outage.
type clusterServer struct {
	router *cluster.Router
	// adaptStatus returns per-replica adaptation snapshots. nil when
	// adaptation is off — and in route mode, where each remote node owns
	// its own /v1/adapt/status.
	adaptStatus func() map[string]adapt.Status
	// bundles is the bundle-distribution control plane. nil when bundle
	// distribution is off — and in route mode, where each serve node owns
	// its own store.
	bundles *bundleControl
	// tracer and events are the process-wide observability surfaces
	// behind /v1/debug/traces and /v1/events (404 when unwired).
	tracer *obs.Tracer
	events *obs.Log
}

func newClusterServer(router *cluster.Router) *clusterServer {
	return &clusterServer{router: router}
}

// mux wires the JSON API.
func (s *clusterServer) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/models", s.handleModels)
	mux.HandleFunc("/v1/databases", s.handleDatabases)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/cluster", s.handleCluster)
	mux.HandleFunc("/v1/predict", s.handlePredict)
	mux.HandleFunc("/v1/predict_batch", s.handlePredictBatch)
	mux.HandleFunc("/v1/whatif", s.handleWhatIf)
	mux.HandleFunc("/v1/feedback", s.handleFeedback)
	mux.HandleFunc("/v1/adapt/status", s.handleAdaptStatus)
	mux.HandleFunc("/v1/bundles", s.handleBundles)
	mux.HandleFunc("/v1/debug/traces", s.handleTraces)
	mux.HandleFunc("/v1/events", s.handleEvents)
	return mux
}

// handleTraces and handleEvents defer to the shared handlers — the
// fields are read per request so tests can wire them after mux().
func (s *clusterServer) handleTraces(w http.ResponseWriter, r *http.Request) {
	handleTraces(s.tracer)(w, r)
}

func (s *clusterServer) handleEvents(w http.ResponseWriter, r *http.Request) {
	handleEvents(s.events)(w, r)
}

// handleBundles delegates to the shared bundle handler — the same body
// the single-replica server serves, since the control plane is one
// store either way. Read per request so tests can inject after mux().
func (s *clusterServer) handleBundles(w http.ResponseWriter, r *http.Request) {
	handleBundles(s.bundles)(w, r)
}

// handleAdaptStatus aggregates every replica's adaptation snapshot —
// the cluster analogue of the single-session endpoint, keyed by replica
// name since each replica runs its own loop over its own windows.
func (s *clusterServer) handleAdaptStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.adaptStatus == nil {
		httpErrorCode(w, http.StatusNotFound, cluster.CodeAdaptDisabled,
			"online adaptation is disabled (restart with -adapt; in route mode, query the serve nodes directly)")
		return
	}
	writeJSON(w, map[string]any{"replicas": s.adaptStatus()})
}

// clusterError maps routing failures onto status codes, falling back to
// the serving-error mapping for request-level kinds.
func clusterError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, cluster.ErrNoReplica):
		httpError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, cluster.ErrNoFeedback):
		// Carry the machine-readable code so a router stacked on this
		// router classifies the condition the same way.
		httpErrorCode(w, http.StatusNotFound, cluster.CodeAdaptDisabled, "%v", err)
	case errors.Is(err, adapt.ErrNoPlan):
		httpError(w, http.StatusNotFound, "%v", err)
	default:
		sessionError(w, err)
	}
}

func (s *clusterServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	health := s.router.Healthy()
	up := 0
	for _, ok := range health {
		if ok {
			up++
		}
	}
	body := map[string]any{
		"status":   "ok",
		"replicas": len(health),
		"healthy":  up,
	}
	if up == 0 {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		body["status"] = "unavailable"
		json.NewEncoder(w).Encode(body)
		return
	}
	writeJSON(w, body)
}

func (s *clusterServer) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	// Two independent cluster-wide reads; overlap them so the endpoint
	// costs one fan-out of latency, not two.
	var (
		names   []string
		dbs     []cluster.DatabaseView
		nameErr error
		dbErr   error
		wg      sync.WaitGroup
	)
	wg.Add(2)
	go func() { defer wg.Done(); names, nameErr = s.router.Models(r.Context()) }()
	go func() { defer wg.Done(); dbs, dbErr = s.router.Databases(r.Context()) }()
	wg.Wait()
	if nameErr != nil {
		clusterError(w, nameErr)
		return
	}
	if dbErr != nil {
		clusterError(w, dbErr)
		return
	}
	models := make([]modelInfo, 0, len(names))
	for _, name := range names {
		models = append(models, modelInfo{Name: name})
	}
	dbNames := make([]string, len(dbs))
	for i, d := range dbs {
		dbNames[i] = d.Name
	}
	writeJSON(w, map[string]any{"models": models, "databases": dbNames})
}

func (s *clusterServer) handleDatabases(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	dbs, err := s.router.Databases(r.Context())
	if err != nil {
		clusterError(w, err)
		return
	}
	writeJSON(w, map[string]any{"databases": dbs})
}

func (s *clusterServer) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	st, err := s.router.Stats(r.Context())
	if err != nil {
		clusterError(w, err)
		return
	}
	if s.bundles != nil {
		// Per-replica distributor counters ride along so generation skew
		// (one replica stuck behind on a revision) shows in one read.
		writeJSON(w, struct {
			cluster.ClusterStats
			Bundles map[string]bundle.Status `json:"bundles"`
		}{st, s.bundles.statuses()})
		return
	}
	writeJSON(w, st)
}

// clusterView is the /v1/cluster body: the ring assignment and health
// per replica.
type clusterView struct {
	Replicas []string            `json:"replicas"`
	Healthy  map[string]bool     `json:"healthy"`
	Owners   map[string]string   `json:"owners"`
	Routes   map[string][]string `json:"routes"`
}

func (s *clusterServer) handleCluster(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	view := clusterView{
		Replicas: s.router.Replicas(),
		Healthy:  s.router.Healthy(),
		Owners:   map[string]string{},
		Routes:   map[string][]string{},
	}
	dbs, err := s.router.Databases(r.Context())
	if err != nil {
		clusterError(w, err)
		return
	}
	for _, d := range dbs {
		view.Owners[d.Name] = d.Owner
		view.Routes[d.Name] = s.router.Route(d.Name)
	}
	writeJSON(w, view)
}

func (s *clusterServer) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req predictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.SQL == "" {
		httpError(w, http.StatusBadRequest, "sql is required")
		return
	}
	pred, err := s.router.Predict(r.Context(), req.DB, req.Model, req.SQL)
	if err != nil {
		clusterError(w, err)
		return
	}
	writeJSON(w, predictResponse{
		DB:            pred.Database,
		Model:         pred.Model,
		RuntimeSec:    pred.RuntimeSec,
		OptimizerCost: pred.OptimizerCost,
		EstRows:       pred.EstRows,
		Fingerprint:   pred.Fingerprint,
		PlanCached:    pred.PlanCached,
	})
}

func (s *clusterServer) handlePredictBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req predictBatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.SQL) == 0 {
		httpError(w, http.StatusBadRequest, "sql array is required")
		return
	}
	if len(req.SQL) > maxBatch {
		httpError(w, http.StatusBadRequest, "batch of %d exceeds limit %d", len(req.SQL), maxBatch)
		return
	}
	res, err := s.router.PredictBatch(r.Context(), req.DB, req.Model, req.SQL)
	if err != nil {
		clusterError(w, err)
		return
	}
	resp := predictBatchResponse{Model: res.Model, DB: res.Database, Results: make([]batchItemResult, len(res.Items)), Count: len(res.Items)}
	for i, item := range res.Items {
		if item.Err != nil {
			resp.Results[i].Error = item.Err.Error()
			resp.Errors++
		} else {
			resp.Results[i].RuntimeSec = item.RuntimeSec
		}
	}
	writeJSON(w, resp)
}

// handleWhatIf routes a what-if sweep to the replica owning the
// database, like a predict — the owner's what-if caches stay hot.
func (s *clusterServer) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req whatIfRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.SQL) == 0 {
		httpError(w, http.StatusBadRequest, "sql array is required")
		return
	}
	if len(req.SQL) > maxBatch {
		httpError(w, http.StatusBadRequest, "workload of %d exceeds limit %d", len(req.SQL), maxBatch)
		return
	}
	rep, err := s.router.WhatIf(r.Context(), req.DB, req.Model, whatif.Request{
		SQL:           req.SQL,
		Candidates:    req.Candidates,
		MaxCandidates: req.MaxCandidates,
	})
	if err != nil {
		clusterError(w, err)
		return
	}
	writeJSON(w, rep)
}

func (s *clusterServer) handleFeedback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req feedbackRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	fp := req.Fingerprint
	if fp == "" && req.SQL != "" {
		fp = costmodel.Fingerprint(req.SQL)
	}
	if fp == "" {
		httpError(w, http.StatusBadRequest, "fingerprint or sql is required")
		return
	}
	if req.ActualRuntimeSec <= 0 {
		httpError(w, http.StatusBadRequest, "actual_runtime_sec must be positive")
		return
	}
	if err := s.router.Feedback(r.Context(), req.DB, fp, req.ActualRuntimeSec); err != nil {
		clusterError(w, err)
		return
	}
	writeJSON(w, map[string]any{"status": "accepted", "fingerprint": fp})
}

// checkStartupHealth probes every backend once so a route command fails
// fast (with a named offender) when no backend is reachable at start.
func checkStartupHealth(ctx context.Context, router *cluster.Router) (up int, report map[string]error) {
	report = router.CheckHealth(ctx)
	for _, err := range report {
		if err == nil {
			up++
		}
	}
	return up, report
}
