package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/zeroshot-db/zeroshot/internal/adapt"
	"github.com/zeroshot-db/zeroshot/internal/cluster"
	"github.com/zeroshot-db/zeroshot/internal/costmodel"
	"github.com/zeroshot-db/zeroshot/internal/serving"
	"github.com/zeroshot-db/zeroshot/internal/storage"
)

// newTestRouter assembles an n-replica mirrored in-process cluster over
// the shared serve fixture — the same shape `zsdb serve -replicas n`
// builds, minus the model-file loading. The returned map holds each
// replica's adaptation loop when withAdapt is set.
func newTestRouter(t *testing.T, n int, withAdapt bool) (*cluster.Router, map[string]*adapt.Loop) {
	t.Helper()
	f := sharedServeFixture(t)
	router := cluster.NewRouter(cluster.Config{})
	t.Cleanup(func() { router.Close() })
	loops := map[string]*adapt.Loop{}
	for i := 0; i < n; i++ {
		sess, err := assembleSession(serving.Config{},
			[]string{"imdb", "ssb"}, []*storage.Database{f.imdb, f.ssb}, f.models)
		if err != nil {
			t.Fatal(err)
		}
		var loop *adapt.Loop
		if withAdapt {
			var err error
			loop, err = adapt.New(sess, adapt.Config{Model: costmodel.NameZeroShot})
			if err != nil {
				t.Fatal(err)
			}
			loops[fmt.Sprintf("r%d", i)] = loop
		}
		b, err := cluster.NewInProcess(fmt.Sprintf("r%d", i), sess, loop)
		if err != nil {
			t.Fatal(err)
		}
		if err := router.Register(b); err != nil {
			t.Fatal(err)
		}
	}
	return router, loops
}

// fixedWorkload is the deterministic statement set the equivalence test
// replays against every topology.
var fixedWorkload = []struct{ db, sql string }{
	{"imdb", testSQL},
	{"imdb", "SELECT COUNT(*) FROM movie_companies"},
	{"imdb", "SELECT COUNT(*) FROM movie_companies, title WHERE movie_companies.movie_id = title.id"},
	{"ssb", "SELECT COUNT(*) FROM lineorder"},
	{"imdb", "SELECT SUM(title.production_year) FROM title WHERE title.production_year > 20"},
}

// TestClusterEquivalentToSingleReplica is the acceptance bar: a
// 4-replica sharded cluster must serve bitwise-identical predictions to
// a single session for a fixed workload — partitioning is a pure
// routing concern, never a numeric one.
func TestClusterEquivalentToSingleReplica(t *testing.T) {
	single := httptest.NewServer(newServer(newTestSession(t, serving.Config{})).mux())
	defer single.Close()
	router4, _ := newTestRouter(t, 4, false)
	clustered := httptest.NewServer(newClusterServer(router4).mux())
	defer clustered.Close()

	for _, q := range fixedWorkload {
		req := predictRequest{DB: q.db, Model: costmodel.NameZeroShot, SQL: q.sql}
		respS, bodyS := postJSON(t, single.URL+"/v1/predict", req)
		respC, bodyC := postJSON(t, clustered.URL+"/v1/predict", req)
		if respS.StatusCode != http.StatusOK || respC.StatusCode != http.StatusOK {
			t.Fatalf("%s on %s: single=%d cluster=%d (%v / %v)", q.sql, q.db, respS.StatusCode, respC.StatusCode, bodyS, bodyC)
		}
		var runtimeS, runtimeC, costS, costC float64
		mustUnmarshal(t, bodyS["runtime_sec"], &runtimeS)
		mustUnmarshal(t, bodyC["runtime_sec"], &runtimeC)
		mustUnmarshal(t, bodyS["optimizer_cost"], &costS)
		mustUnmarshal(t, bodyC["optimizer_cost"], &costC)
		if runtimeS != runtimeC || costS != costC {
			t.Fatalf("%s on %s: single (%v, %v) != cluster (%v, %v); replicas must be bitwise-equivalent",
				q.sql, q.db, runtimeS, costS, runtimeC, costC)
		}
		var fpS, fpC string
		mustUnmarshal(t, bodyS["fingerprint"], &fpS)
		mustUnmarshal(t, bodyC["fingerprint"], &fpC)
		if fpS != fpC {
			t.Fatalf("fingerprints diverge: %q vs %q", fpS, fpC)
		}
	}
}

func mustUnmarshal(t *testing.T, raw json.RawMessage, v any) {
	t.Helper()
	if raw == nil {
		t.Fatalf("missing field in reply (want %T)", v)
	}
	if err := json.Unmarshal(raw, v); err != nil {
		t.Fatal(err)
	}
}

// TestClusterServerEndpoints exercises the aggregating read endpoints
// and routed feedback of the cluster front end over real sessions.
func TestClusterServerEndpoints(t *testing.T) {
	router, loops := newTestRouter(t, 3, true)
	srv := newClusterServer(router)
	srv.adaptStatus = func() map[string]adapt.Status {
		out := make(map[string]adapt.Status, len(loops))
		for name, loop := range loops {
			out[name] = loop.Status()
		}
		return out
	}
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	var health struct {
		Status   string `json:"status"`
		Replicas int    `json:"replicas"`
		Healthy  int    `json:"healthy"`
	}
	if resp := getJSON(t, ts.URL+"/healthz", &health); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	if health.Replicas != 3 || health.Healthy != 3 || health.Status != "ok" {
		t.Fatalf("healthz body = %+v", health)
	}

	var dbs struct {
		Databases []cluster.DatabaseView `json:"databases"`
	}
	getJSON(t, ts.URL+"/v1/databases", &dbs)
	if len(dbs.Databases) != 2 {
		t.Fatalf("aggregated databases = %+v, want imdb+ssb deduped", dbs.Databases)
	}
	for _, d := range dbs.Databases {
		if len(d.Replicas) != 3 {
			t.Fatalf("db %s on %v, want all 3 replicas (mirrored)", d.Name, d.Replicas)
		}
		if d.Owner != router.Owner(d.Name) {
			t.Fatalf("db %s owner %s, ring says %s", d.Name, d.Owner, router.Owner(d.Name))
		}
	}

	var view struct {
		Replicas []string            `json:"replicas"`
		Owners   map[string]string   `json:"owners"`
		Routes   map[string][]string `json:"routes"`
	}
	getJSON(t, ts.URL+"/v1/cluster", &view)
	if len(view.Replicas) != 3 || len(view.Owners) != 2 {
		t.Fatalf("cluster view = %+v", view)
	}
	if len(view.Routes["imdb"]) != 3 {
		t.Fatalf("imdb route = %v, want full failover sequence", view.Routes["imdb"])
	}

	// Predict, then feed the observed runtime back: it must reach the
	// adaptation loop on the replica owning imdb.
	resp, body := postJSON(t, ts.URL+"/v1/predict", predictRequest{DB: "imdb", Model: costmodel.NameZeroShot, SQL: testSQL})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict = %d %v", resp.StatusCode, body)
	}
	var fp string
	mustUnmarshal(t, body["fingerprint"], &fp)
	resp, body = postJSON(t, ts.URL+"/v1/feedback", feedbackRequest{DB: "imdb", Fingerprint: fp, ActualRuntimeSec: 0.42})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("feedback = %d %v", resp.StatusCode, body)
	}
	// The aggregated adaptation view: one snapshot per replica, and the
	// imdb owner's loop shows the ingested feedback.
	var adaptView struct {
		Replicas map[string]adapt.Status `json:"replicas"`
	}
	if resp := getJSON(t, ts.URL+"/v1/adapt/status", &adaptView); resp.StatusCode != http.StatusOK {
		t.Fatalf("adapt/status = %d", resp.StatusCode)
	}
	if len(adaptView.Replicas) != 3 {
		t.Fatalf("adapt/status replicas = %d, want 3", len(adaptView.Replicas))
	}
	if got := adaptView.Replicas[router.Owner("imdb")].Feedback; got != 1 {
		t.Fatalf("imdb owner's loop ingested %d feedbacks, want 1", got)
	}

	var st cluster.ClusterStats
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Requests < 2 {
		t.Fatalf("cluster stats requests = %d, want >= 2", st.Requests)
	}
	owner := router.Owner("imdb")
	var ownerServed bool
	for _, rs := range st.Replicas {
		if rs.Name == owner && rs.Served >= 2 {
			ownerServed = true
		}
	}
	if !ownerServed {
		t.Fatalf("imdb owner %s did not serve the predict+feedback: %+v", owner, st.Replicas)
	}
}

// TestRouteModeFailoverOverHTTP is the multi-process path end to end:
// two real serve processes (httptest) behind HTTP backends and a
// routing front end. Killing one backend mid-run must cost no request.
func TestRouteModeFailoverOverHTTP(t *testing.T) {
	backendA := httptest.NewServer(newServer(newTestSession(t, serving.Config{})).mux())
	defer backendA.Close()
	backendB := httptest.NewServer(newServer(newTestSession(t, serving.Config{})).mux())
	// no defer for B: the test closes it deliberately

	router := cluster.NewRouter(cluster.Config{CallTimeout: 5 * time.Second})
	defer router.Close()
	for name, url := range map[string]string{"a": backendA.URL, "b": backendB.URL} {
		hb, err := cluster.NewHTTPBackend(name, url, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := router.Register(hb); err != nil {
			t.Fatal(err)
		}
	}
	front := httptest.NewServer(newClusterServer(router).mux())
	defer front.Close()

	predict := func() (int, map[string]json.RawMessage) {
		resp, body := postJSON(t, front.URL+"/v1/predict",
			predictRequest{DB: "imdb", Model: costmodel.NameZeroShot, SQL: testSQL})
		return resp.StatusCode, body
	}
	code, body := predict()
	if code != http.StatusOK {
		t.Fatalf("routed predict = %d %v", code, body)
	}
	var before float64
	mustUnmarshal(t, body["runtime_sec"], &before)

	// Kill one backend. Whichever replica owned imdb, the request must
	// keep succeeding — served by the survivor — with the same answer.
	backendB.Close()
	for i := 0; i < 3; i++ {
		code, body = predict()
		if code != http.StatusOK {
			t.Fatalf("predict after backend kill (try %d) = %d %v", i, code, body)
		}
	}
	var after float64
	mustUnmarshal(t, body["runtime_sec"], &after)
	if before != after {
		t.Fatalf("failover changed the prediction: %v -> %v", before, after)
	}
	if errs := router.CheckHealth(context.Background()); errs["b"] == nil {
		t.Fatal("killed backend still passes health probes")
	}
	var health struct {
		Healthy int `json:"healthy"`
	}
	getJSON(t, front.URL+"/healthz", &health)
	if health.Healthy != 1 {
		t.Fatalf("healthy = %d after killing one of two backends", health.Healthy)
	}
	// Remote request-level errors keep their class through the HTTP
	// backend: a bad statement is 400, an unknown database 404 — not a
	// failover storm.
	resp, _ := postJSON(t, front.URL+"/v1/predict",
		predictRequest{DB: "imdb", Model: costmodel.NameZeroShot, SQL: "DROP TABLE title"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad SQL through router = %d, want 400", resp.StatusCode)
	}
	// Pick an unknown database whose ring owner is the SURVIVOR: its
	// authoritative not-found must come back 404 even though the other
	// replica is dead. (An unknown db owned by the dead replica is a 503
	// by design — it may live exactly there.)
	unknown := ""
	for i := 0; i < 32; i++ {
		cand := fmt.Sprintf("nope%d", i)
		if router.Owner(cand) == "a" {
			unknown = cand
			break
		}
	}
	if unknown == "" {
		t.Fatal("no candidate name hashed onto the survivor")
	}
	resp, _ = postJSON(t, front.URL+"/v1/predict",
		predictRequest{DB: unknown, Model: costmodel.NameZeroShot, SQL: testSQL})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown db through router = %d, want 404", resp.StatusCode)
	}
}

// TestRouteFlagValidation covers the route command's argument errors.
func TestRouteFlagValidation(t *testing.T) {
	if err := runRoute([]string{}); err == nil {
		t.Fatal("route without -backends succeeded")
	}
	if err := runRoute([]string{"-backends", "h1:1,h2:2", "-names", "only-one"}); err == nil {
		t.Fatal("route with mismatched -names succeeded")
	}
	// All backends unreachable: the startup probe must fail fast.
	if err := runRoute([]string{"-backends", "127.0.0.1:1", "-call-timeout", "200ms"}); err == nil {
		t.Fatal("route with unreachable backend succeeded")
	}
}
