package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/zeroshot-db/zeroshot/internal/obs/doctor"
)

// runDoctor dispatches the zsdb doctor subcommands. The bare form
// collects a support bundle from one or more running servers and runs
// the analyzers on it; `doctor analyze` re-runs the same analyzers
// offline against a saved bundle — the diagnosis is a pure function of
// the archive, so both paths print the same verdict for the same data.
func runDoctor(args []string) error {
	if len(args) > 0 && args[0] == "analyze" {
		return runDoctorAnalyze(args[1:])
	}
	return runDoctorCollect(args)
}

// runDoctorCollect snapshots every diagnostic endpoint of each target
// into one support bundle, optionally archives it, and prints the
// analyzer verdict table. Unreachable endpoints are recorded, not
// fatal — "the server is down" is itself a finding.
func runDoctorCollect(args []string) error {
	fs := flag.NewFlagSet("doctor", flag.ContinueOnError)
	addrs := fs.String("addr", "http://localhost:8080", "comma-separated server base URLs to diagnose")
	names := fs.String("names", "", "comma-separated target names aligned with -addr (default: the URLs)")
	out := fs.String("o", "", "also write the collected support bundle to this .tgz path")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request collection timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var targets []doctor.Target
	for _, u := range strings.Split(*addrs, ",") {
		if u = strings.TrimSpace(u); u != "" {
			targets = append(targets, doctor.Target{Name: u, BaseURL: u})
		}
	}
	if *names != "" {
		nameList := strings.Split(*names, ",")
		if len(nameList) != len(targets) {
			return fmt.Errorf("doctor: -names has %d entries for %d targets", len(nameList), len(targets))
		}
		for i, n := range nameList {
			targets[i].Name = strings.TrimSpace(n)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout*time.Duration(1+len(targets)*len(doctor.Endpoints)))
	defer cancel()
	b, err := doctor.Collect(ctx, &http.Client{Timeout: *timeout}, targets)
	if err != nil {
		return err
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		err = doctor.WriteArchive(f, b)
		if closeErr := f.Close(); err == nil {
			err = closeErr
		}
		if err != nil {
			os.Remove(*out)
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote support bundle to %s\n", *out)
	}
	return renderDiagnosis(b)
}

// runDoctorAnalyze re-runs the analyzers against a saved support
// bundle — offline triage of an archive someone else collected.
func runDoctorAnalyze(args []string) error {
	fs := flag.NewFlagSet("doctor analyze", flag.ContinueOnError)
	path := fs.String("bundle", "", "support bundle archive to analyze (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		return fmt.Errorf("doctor analyze: -bundle is required")
	}
	f, err := os.Open(*path)
	if err != nil {
		return err
	}
	defer f.Close()
	b, err := doctor.ReadArchive(f)
	if err != nil {
		return fmt.Errorf("doctor analyze: %s: %w", *path, err)
	}
	return renderDiagnosis(b)
}

// renderDiagnosis runs the analyzers, prints the verdict table, and
// maps a fail verdict onto a non-zero exit so scripts can gate on it.
func renderDiagnosis(b *doctor.Bundle) error {
	findings := doctor.AnalyzeAll(b, doctor.DefaultLimits())
	fmt.Print(doctor.RenderTable(findings))
	if doctor.Verdict(findings) == doctor.Fail {
		return fmt.Errorf("doctor: diagnosis failed (see findings above)")
	}
	return nil
}
