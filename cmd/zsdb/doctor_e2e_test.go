package main

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/zeroshot-db/zeroshot/internal/cluster"
	"github.com/zeroshot-db/zeroshot/internal/costmodel"
	"github.com/zeroshot-db/zeroshot/internal/obs"
	"github.com/zeroshot-db/zeroshot/internal/obs/doctor"
	"github.com/zeroshot-db/zeroshot/internal/serving"
	"github.com/zeroshot-db/zeroshot/internal/storage"
)

// doctorFixture is a 3-replica in-process cluster behind its HTTP front
// end with tracing and the event log wired — the full surface zsdb
// doctor collects from, minus a network.
type doctorFixture struct {
	srv      *httptest.Server
	router   *cluster.Router
	sessions []*serving.Session
}

func newDoctorFixture(t *testing.T) doctorFixture {
	t.Helper()
	f := sharedServeFixture(t)
	tracer := obs.NewTracer(obs.TraceConfig{SampleEvery: 1, SlowThreshold: time.Second})
	events := obs.NewLog(0)
	router := cluster.NewRouter(cluster.Config{Tracer: tracer, Events: events})
	t.Cleanup(func() { router.Close() })
	var sessions []*serving.Session
	for i := 0; i < 3; i++ {
		sess, err := assembleSession(serving.Config{Tracer: tracer},
			[]string{"imdb", "ssb"}, []*storage.Database{f.imdb, f.ssb}, f.models)
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, sess)
		b, err := cluster.NewInProcess(fmt.Sprintf("r%d", i), sess, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := router.Register(b); err != nil {
			t.Fatal(err)
		}
	}
	srv := newClusterServer(router)
	srv.tracer, srv.events = tracer, events
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)
	return doctorFixture{srv: ts, router: router, sessions: sessions}
}

// collect runs the same collection path the CLI runs, against the
// fixture's front end.
func (f doctorFixture) collect(t *testing.T) *doctor.Bundle {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	b, err := doctor.Collect(ctx, f.srv.Client(), []doctor.Target{{Name: "cluster", BaseURL: f.srv.URL}})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDoctorEndToEndHealthyCluster drives traffic through a healthy
// 3-replica cluster over HTTP, collects a support bundle exactly as the
// CLI does, and expects an all-pass verdict — and the same verdict from
// the archived bundle analyzed offline.
func TestDoctorEndToEndHealthyCluster(t *testing.T) {
	f := newDoctorFixture(t)
	for _, q := range fixedWorkload {
		resp, body := postJSON(t, f.srv.URL+"/v1/predict",
			predictRequest{DB: q.db, Model: costmodel.NameZeroShot, SQL: q.sql})
		if resp.StatusCode != 200 {
			t.Fatalf("predict %s on %s: %d (%v)", q.sql, q.db, resp.StatusCode, body)
		}
	}
	b := f.collect(t)
	cap := b.Capture("cluster")
	if cap == nil {
		t.Fatal("no capture for the cluster target")
	}
	for _, doc := range []string{"stats", "cluster", "traces", "events"} {
		if d := cap.Doc(doc); d == nil || !d.OK() {
			t.Fatalf("doc %s not collected cleanly: %+v", doc, d)
		}
	}
	findings := doctor.AnalyzeAll(b, doctor.DefaultLimits())
	if v := doctor.Verdict(findings); v != doctor.Pass {
		t.Fatalf("healthy cluster verdict = %s, want pass\n%s", v, doctor.RenderTable(findings))
	}

	// The saved archive must reproduce the diagnosis byte for byte.
	var buf bytes.Buffer
	if err := doctor.WriteArchive(&buf, b); err != nil {
		t.Fatal(err)
	}
	b2, err := doctor.ReadArchive(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	offline := doctor.AnalyzeAll(b2, doctor.DefaultLimits())
	if doctor.RenderTable(offline) != doctor.RenderTable(findings) {
		t.Fatalf("offline analysis diverges from live:\nlive:\n%s\noffline:\n%s",
			doctor.RenderTable(findings), doctor.RenderTable(offline))
	}
}

// TestDoctorEndToEndCrashedReplica closes one replica's session, forces
// a probe round, and expects the collected bundle to fail diagnosis
// with a replica-health finding naming the dead replica.
func TestDoctorEndToEndCrashedReplica(t *testing.T) {
	f := newDoctorFixture(t)
	f.sessions[1].Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	f.router.CheckHealth(ctx)
	cancel()

	b := f.collect(t)
	findings := doctor.AnalyzeAll(b, doctor.DefaultLimits())
	if v := doctor.Verdict(findings); v != doctor.Fail {
		t.Fatalf("crashed-replica verdict = %s, want fail\n%s", v, doctor.RenderTable(findings))
	}
	found := false
	for _, fd := range findings {
		if fd.Check == "replica-health" && fd.Status == doctor.Fail && strings.Contains(fd.Detail, "r1") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no replica-health fail naming r1:\n%s", doctor.RenderTable(findings))
	}
}
