// Command zsdb is the experiment driver for the zero-shot cost estimation
// reproduction. It regenerates every table and figure of the paper's
// evaluation and provides train/eval plumbing around saved models.
//
// Usage:
//
//	zsdb figure3  [-scale small|full]   reproduce Figure 3 (E1+E2)
//	zsdb table1   [-scale small|full]   reproduce Table 1 (E3+E4)
//	zsdb dbsweep  [-scale small|full]   training-database-count sweep (E5)
//	zsdb fewshot  [-scale small|full]   few-shot vs from-scratch (E6)
//	zsdb ablation [-scale small|full]   ablations A1-A3
//	zsdb all      [-scale small|full]   everything above, in order
//	zsdb train    -out model.gob        train a zero-shot model and save it
//	zsdb eval     -model model.gob      evaluate a saved model on the unseen db
//	zsdb explain  -sql "SELECT ..."     plan, execute and explain a query
//	zsdb gendata  [-seed N]             print a generated schema (debugging)
//
// The small scale finishes in CPU-minutes; full approaches the paper's
// setup (19 databases x 5000 queries) and takes hours.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/zeroshot-db/zeroshot/internal/collect"
	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/engine"
	"github.com/zeroshot-db/zeroshot/internal/experiments"
	"github.com/zeroshot-db/zeroshot/internal/hwsim"
	"github.com/zeroshot-db/zeroshot/internal/metrics"
	"github.com/zeroshot-db/zeroshot/internal/optimizer"
	"github.com/zeroshot-db/zeroshot/internal/sqlparse"
	"github.com/zeroshot-db/zeroshot/internal/stats"
	"github.com/zeroshot-db/zeroshot/internal/zeroshot"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "figure3":
		err = withEnv(args, func(env *experiments.Env) error {
			res, err := experiments.Figure3(env)
			if err != nil {
				return err
			}
			fmt.Print(res.Render())
			return nil
		})
	case "table1":
		err = withEnv(args, func(env *experiments.Env) error {
			res, err := experiments.Table1(env)
			if err != nil {
				return err
			}
			fmt.Print(res.Render())
			return nil
		})
	case "dbsweep":
		err = withEnv(args, func(env *experiments.Env) error {
			res, err := experiments.DBCountSweep(env, nil)
			if err != nil {
				return err
			}
			fmt.Print(res.Render())
			return nil
		})
	case "fewshot":
		err = withEnv(args, func(env *experiments.Env) error {
			res, err := experiments.FewShot(env, nil)
			if err != nil {
				return err
			}
			fmt.Print(res.Render())
			return nil
		})
	case "ablation":
		err = withEnv(args, func(env *experiments.Env) error {
			res, err := experiments.Ablations(env)
			if err != nil {
				return err
			}
			fmt.Print(res.Render())
			return nil
		})
	case "all":
		err = withEnv(args, runAll)
	case "train":
		err = runTrain(args)
	case "eval":
		err = runEval(args)
	case "explain":
		err = runExplain(args)
	case "gendata":
		err = runGendata(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "zsdb:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: zsdb <figure3|table1|dbsweep|fewshot|ablation|all|train|eval|explain|gendata> [flags]`)
}

// scaleConfig resolves -scale and -seed flags into an experiment config.
func scaleConfig(fs *flag.FlagSet, args []string) (experiments.Config, error) {
	scale := fs.String("scale", "small", "experiment scale: small or full")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return experiments.Config{}, err
	}
	var cfg experiments.Config
	switch *scale {
	case "small":
		cfg = experiments.SmallConfig()
	case "full":
		cfg = experiments.FullConfig()
	default:
		return cfg, fmt.Errorf("unknown scale %q", *scale)
	}
	cfg.Seed = *seed
	return cfg, nil
}

func withEnv(args []string, run func(*experiments.Env) error) error {
	fs := flag.NewFlagSet("experiment", flag.ContinueOnError)
	cfg, err := scaleConfig(fs, args)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "preparing environment: %d train dbs x %d queries, eval %d queries/workload...\n",
		cfg.TrainDBs, cfg.QueriesPerDB, cfg.EvalQueries)
	env, err := experiments.Prepare(cfg)
	if err != nil {
		return err
	}
	return run(env)
}

func runAll(env *experiments.Env) error {
	f3, err := experiments.Figure3(env)
	if err != nil {
		return err
	}
	fmt.Print(f3.Render())
	fmt.Println()
	t1, err := experiments.Table1(env)
	if err != nil {
		return err
	}
	fmt.Print(t1.Render())
	fmt.Println()
	sw, err := experiments.DBCountSweep(env, nil)
	if err != nil {
		return err
	}
	fmt.Print(sw.Render())
	fmt.Println()
	fsr, err := experiments.FewShot(env, nil)
	if err != nil {
		return err
	}
	fmt.Print(fsr.Render())
	fmt.Println()
	ab, err := experiments.Ablations(env)
	if err != nil {
		return err
	}
	fmt.Print(ab.Render())
	return nil
}

func runTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ContinueOnError)
	out := fs.String("out", "zeroshot-model.gob", "output model path")
	dbs := fs.Int("dbs", 8, "number of training databases")
	queries := fs.Int("queries", 300, "training queries per database")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	corpus, err := datagen.TrainingCorpus(*dbs, *seed, datagen.DefaultConfig())
	if err != nil {
		return err
	}
	var samples []zeroshot.Sample
	for i, db := range corpus {
		recs, err := collect.Run(db, collect.Options{Queries: *queries, Seed: *seed + int64(i*1000)})
		if err != nil {
			return err
		}
		enc := encoding.NewPlanEncoder(db.Schema, encoding.CardExact)
		for _, r := range recs {
			g, err := enc.Encode(r.Plan)
			if err != nil {
				return err
			}
			samples = append(samples, zeroshot.Sample{Graph: g, RuntimeSec: r.RuntimeSec})
		}
		fmt.Fprintf(os.Stderr, "collected %s (%d/%d)\n", db.Schema.Name, i+1, *dbs)
	}
	m := zeroshot.New(zeroshot.DefaultConfig())
	res, err := m.Train(samples)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "trained on %d samples; loss %.4f -> %.4f\n",
		len(samples), res.EpochLoss[0], res.EpochLoss[len(res.EpochLoss)-1])
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		return err
	}
	fmt.Printf("saved zero-shot model to %s\n", *out)
	return nil
}

func runEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ContinueOnError)
	modelPath := fs.String("model", "zeroshot-model.gob", "saved model path")
	n := fs.Int("queries", 200, "evaluation queries")
	scale := fs.Float64("dbscale", 0.1, "IMDB-like database scale")
	seed := fs.Int64("seed", 99, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	defer f.Close()
	m, err := zeroshot.Load(f, zeroshot.DefaultConfig())
	if err != nil {
		return err
	}
	db, err := datagen.IMDBLike(*scale)
	if err != nil {
		return err
	}
	recs, err := collect.Run(db, collect.Options{Queries: *n, Seed: *seed})
	if err != nil {
		return err
	}
	enc := encoding.NewPlanEncoder(db.Schema, encoding.CardExact)
	preds := make([]float64, len(recs))
	actuals := make([]float64, len(recs))
	for i, r := range recs {
		g, err := enc.Encode(r.Plan)
		if err != nil {
			return err
		}
		preds[i] = m.Predict(g)
		actuals[i] = r.RuntimeSec
	}
	sum, err := metrics.Summarize(preds, actuals)
	if err != nil {
		return err
	}
	fmt.Printf("zero-shot on unseen %s (%d queries): %v\n", db.Schema.Name, len(recs), sum)
	return nil
}

// runExplain parses a SQL query against the IMDB-like database, plans it
// (optionally under hypothetical indexes), executes it, and prints the
// annotated plan with the simulated runtime — like EXPLAIN ANALYZE.
func runExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ContinueOnError)
	sqlText := fs.String("sql", "", "query to explain (required)")
	dbScale := fs.Float64("dbscale", 0.1, "IMDB-like database scale")
	indexes := fs.String("indexes", "", "comma-separated hypothetical indexes, e.g. movie_companies.movie_id,title.production_year")
	modelPath := fs.String("model", "", "optional saved zero-shot model for a runtime prediction")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sqlText == "" {
		return fmt.Errorf("explain: -sql is required")
	}
	db, err := datagen.IMDBLike(*dbScale)
	if err != nil {
		return err
	}
	q, err := sqlparse.Parse(*sqlText, db.Schema)
	if err != nil {
		return err
	}
	idx := optimizer.IndexSet{}
	if *indexes != "" {
		for _, k := range strings.Split(*indexes, ",") {
			idx[strings.TrimSpace(k)] = true
		}
	}
	st := stats.Collect(db, stats.DefaultBuckets, stats.DefaultMCVs)
	opt := optimizer.New(db.Schema, st, idx, optimizer.DefaultCostParams())
	p, err := opt.Plan(q)
	if err != nil {
		return err
	}
	res, err := engine.New(db, engine.Config{}).Execute(p)
	if err != nil {
		return err
	}
	sim := hwsim.New(hwsim.DefaultProfile(), 1)
	fmt.Println(q.SQL())
	fmt.Print(p.Explain())
	fmt.Printf("rows: %d   optimizer cost: %.1f   simulated runtime: %.3fs\n",
		res.Rows, optimizer.TotalCost(p), sim.RuntimeNoiseless(p))
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			return err
		}
		defer f.Close()
		m, err := zeroshot.Load(f, zeroshot.DefaultConfig())
		if err != nil {
			return err
		}
		enc := encoding.NewPlanEncoder(db.Schema, encoding.CardEstimated)
		g, err := enc.Encode(p)
		if err != nil {
			return err
		}
		fmt.Printf("zero-shot predicted runtime: %.3fs\n", m.Predict(g))
	}
	return nil
}

func runGendata(args []string) error {
	fs := flag.NewFlagSet("gendata", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	db, err := datagen.Generate(fmt.Sprintf("gen%d", *seed), *seed, datagen.DefaultConfig())
	if err != nil {
		return err
	}
	fmt.Print(db.Schema.String())
	return nil
}
