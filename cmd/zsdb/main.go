// Command zsdb is the experiment driver and model server for the
// zero-shot cost estimation reproduction. It regenerates every table and
// figure of the paper's evaluation, trains and evaluates any estimator in
// the costmodel registry, and serves saved models over HTTP.
//
// Usage:
//
//	zsdb figure3  [-scale small|full]      reproduce Figure 3 (E1+E2)
//	zsdb table1   [-scale small|full]      reproduce Table 1 (E3+E4)
//	zsdb dbsweep  [-scale small|full]      training-database-count sweep (E5)
//	zsdb fewshot  [-scale small|full]      few-shot vs from-scratch (E6)
//	zsdb ablation [-scale small|full]      ablations A1-A3
//	zsdb online   [-scale small|full]      online adaptation q-error curve (E7)
//	zsdb whatif   [-scale small|full]      advisor sweep vs executed truth (E10)
//	zsdb all      [-scale small|full]      everything above, in order
//	zsdb train    [-estimator zeroshot] [-card estimated] -out model.gob
//	                                       train a registry estimator and save it
//	zsdb eval     -model model.gob         evaluate a saved model on the unseen db
//	zsdb serve    -models m1.gob,m2.gob    HTTP prediction service (see below)
//	zsdb route    -backends h1:8080,h2:8080  consistent-hash router over serve nodes
//	zsdb bundle   <build|inspect|push|list|rollback>  model-bundle store operations
//	zsdb explain  -sql "SELECT ..."        plan, execute and explain a query
//	zsdb advise   -model m.gob -workload f what-if index advisor over a workload
//	zsdb doctor   [-addr url1,url2] [-o b.tgz]  collect a support bundle and diagnose it
//	zsdb doctor analyze -bundle b.tgz      re-run the diagnosis offline on a saved bundle
//	zsdb trace    [-addr url]              render sampled pipeline traces and the slow-query log
//	zsdb gendata  [-seed N]                print a generated schema (debugging)
//
// Saved model files are self-describing: eval, serve and explain
// reconstruct the right estimator from the file header via the costmodel
// registry — no architecture flags needed.
//
// zsdb serve hosts a serving.Session — a set of simulated databases
// behind one SQL→cost pipeline (parse → optimize → featurize → predict)
// with per-database plan caches and a scheduler that coalesces concurrent
// single predictions into adaptive micro-batches — over a JSON API:
//
//	GET  /healthz           liveness + model/database counts
//	GET  /v1/models         loaded models and attached databases
//	GET  /v1/databases      per-database schema + plan cache stats
//	GET  /v1/stats          uptime, stage latencies, hit rates, batching, generations
//	POST /v1/predict        {"db":"imdb","model":"zeroshot","sql":"SELECT ..."}
//	POST /v1/predict_batch  {"db":"imdb","model":"zeroshot","sql":["...", ...]}
//	POST /v1/whatif         {"db":"imdb","sql":["..."],"candidates":["t.col", ...]}
//	POST /v1/feedback       {"db":"imdb","fingerprint":"...","actual_runtime_sec":0.25}
//	GET  /v1/adapt/status   feedback windows, drift, swap counters (-adapt only)
//	GET  /v1/bundles        store revisions + per-replica distributor status (-bundle-dir only)
//	POST /v1/bundles        {"action":"refresh"} or {"action":"rollback","revision":N}
//	GET  /v1/debug/traces   sampled pipeline traces + the always-on slow-query log
//	GET  /v1/events?since=N control-plane event log (swaps, bundles, health, failovers)
//
// -trace-sample N records a full per-stage span trace (parse, optimize,
// featurize, encode, predict, plus scheduler batch attribution and
// router failover hops) for every Nth request; with sampling off the
// request path allocates nothing extra. -trace-slow keeps an always-on
// slow-query log regardless of sampling. -debug-addr starts
// net/http/pprof on a separate listener, never on the serving port.
// zsdb trace renders the trace rings; zsdb doctor snapshots every
// diagnostic endpoint into a gzip'd support bundle and runs pass/warn/
// fail analyzers over it (zsdb doctor analyze re-runs them offline).
//
// "db" and "model" may be omitted when exactly one is attached. Batch
// replies carry structured per-item errors: one malformed statement does
// not fail its batch. -databases imdb,ssb,tpch attaches several serving
// databases; -batch-max/-batch-wait tune the micro-batcher. SIGINT or
// SIGTERM drains in-flight requests and queued micro-batches before
// exiting.
//
// -adapt closes the loop between serving and training: observed
// runtimes POSTed to /v1/feedback join against the plan cache, a drift
// monitor watches the q-error, and a background worker fine-tunes a
// clone of the model on the feedback window — hot-swapping it in only
// when a shadow evaluation on held-out feedback improves. Predictions
// return a "fingerprint" field clients echo back with the runtime.
//
// -bundle-dir closes the remaining gap: an accepted fine-tune is local
// to the replica that ran it. With a bundle directory configured, every
// accepted swap is also published to a versioned model-bundle store
// (manifest + checksummed costmodel payload in one archive), and a
// per-replica distributor polls the store, verifies each new revision,
// and hot-swaps it in — so the whole fleet converges on the adapted
// model and a failover never serves a stale generation. POST
// /v1/bundles {"action":"rollback"} republishes a retained revision as
// the new head, rolling the fleet back durably; zsdb bundle exposes the
// same store operations offline (build, inspect, push, list, rollback).
//
// The serving layer scales out two ways, both powered by the same
// internal/cluster router. -replicas N turns one zsdb serve process
// into a sharded cluster of N mirrored in-process replicas: databases
// partition across replicas by consistent hashing (virtual nodes keep
// assignments stable as replicas come and go), each request lands on
// the replica owning its database — plan caches and adaptation windows
// stay replica-local — and a downed or slow replica's requests fail
// over along the ring with no request lost. zsdb route is the
// multi-process form of the same thing: a thin routing tier over
// remote zsdb serve backends (-backends host1:8080,host2:8080) with
// per-backend health probes, bounded-fanout aggregation of /v1/stats
// and /v1/databases, and GET /v1/cluster exposing ring ownership and
// replica health.
//
// Models destined for serving should be trained with estimated
// cardinalities (the train default): at serving time queries are planned
// but not executed, so exact cardinalities do not exist.
//
// The small scale finishes in CPU-minutes; full approaches the paper's
// setup (19 databases x 5000 queries) and takes hours.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/zeroshot-db/zeroshot/internal/collect"
	"github.com/zeroshot-db/zeroshot/internal/costmodel"
	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/engine"
	"github.com/zeroshot-db/zeroshot/internal/experiments"
	"github.com/zeroshot-db/zeroshot/internal/hwsim"
	"github.com/zeroshot-db/zeroshot/internal/metrics"
	"github.com/zeroshot-db/zeroshot/internal/nn"
	"github.com/zeroshot-db/zeroshot/internal/optimizer"
	"github.com/zeroshot-db/zeroshot/internal/sqlparse"
	"github.com/zeroshot-db/zeroshot/internal/stats"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	if err := run(os.Args[1], os.Args[2:]); err != nil {
		if err == errUnknownCommand {
			usage()
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "zsdb:", err)
		os.Exit(1)
	}
}

// errUnknownCommand signals a dispatch failure (exit code 2, with usage).
var errUnknownCommand = fmt.Errorf("unknown command")

// run dispatches one CLI invocation; it is the testable entry point.
func run(cmd string, args []string) error {
	switch cmd {
	case "figure3":
		return withEnv(args, func(env *experiments.Env) error {
			res, err := experiments.Figure3(env)
			if err != nil {
				return err
			}
			fmt.Print(res.Render())
			return nil
		})
	case "table1":
		return withEnv(args, func(env *experiments.Env) error {
			res, err := experiments.Table1(env)
			if err != nil {
				return err
			}
			fmt.Print(res.Render())
			return nil
		})
	case "dbsweep":
		return withEnv(args, func(env *experiments.Env) error {
			res, err := experiments.DBCountSweep(env, nil)
			if err != nil {
				return err
			}
			fmt.Print(res.Render())
			return nil
		})
	case "fewshot":
		return withEnv(args, func(env *experiments.Env) error {
			res, err := experiments.FewShot(env, nil)
			if err != nil {
				return err
			}
			fmt.Print(res.Render())
			return nil
		})
	case "ablation":
		return withEnv(args, func(env *experiments.Env) error {
			res, err := experiments.Ablations(env)
			if err != nil {
				return err
			}
			fmt.Print(res.Render())
			return nil
		})
	case "online":
		return withEnv(args, func(env *experiments.Env) error {
			res, err := experiments.OnlineAdaptation(env, 0, 0)
			if err != nil {
				return err
			}
			fmt.Print(res.Render())
			return nil
		})
	case "whatif":
		return withEnv(args, func(env *experiments.Env) error {
			res, err := experiments.WhatIfAdvisor(env, 0)
			if err != nil {
				return err
			}
			fmt.Print(res.Render())
			return nil
		})
	case "all":
		return withEnv(args, runAll)
	case "train":
		return runTrain(args)
	case "eval":
		return runEval(args)
	case "serve":
		return runServe(args)
	case "route":
		return runRoute(args)
	case "bundle":
		return runBundle(args)
	case "explain":
		return runExplain(args)
	case "advise":
		return runAdvise(args)
	case "doctor":
		return runDoctor(args)
	case "trace":
		return runTrace(args)
	case "gendata":
		return runGendata(args)
	default:
		return errUnknownCommand
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: zsdb <figure3|table1|dbsweep|fewshot|ablation|online|whatif|all|train|eval|serve|route|bundle|explain|advise|doctor|trace|gendata> [flags]`)
}

// scaleConfig resolves -scale and -seed flags into an experiment config.
func scaleConfig(fs *flag.FlagSet, args []string) (experiments.Config, error) {
	scale := fs.String("scale", "small", "experiment scale: small or full")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return experiments.Config{}, err
	}
	var cfg experiments.Config
	switch *scale {
	case "small":
		cfg = experiments.SmallConfig()
	case "full":
		cfg = experiments.FullConfig()
	default:
		return cfg, fmt.Errorf("unknown scale %q", *scale)
	}
	cfg.Seed = *seed
	return cfg, nil
}

// parseCard resolves a -card flag value into a cardinality source.
func parseCard(s string) (encoding.CardSource, error) {
	switch s {
	case "estimated":
		return encoding.CardEstimated, nil
	case "exact":
		return encoding.CardExact, nil
	case "none":
		return encoding.CardNone, nil
	default:
		return 0, fmt.Errorf("unknown cardinality source %q (want estimated, exact or none)", s)
	}
}

func withEnv(args []string, run func(*experiments.Env) error) error {
	fs := flag.NewFlagSet("experiment", flag.ContinueOnError)
	cfg, err := scaleConfig(fs, args)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "preparing environment: %d train dbs x %d queries, eval %d queries/workload...\n",
		cfg.TrainDBs, cfg.QueriesPerDB, cfg.EvalQueries)
	env, err := experiments.Prepare(cfg)
	if err != nil {
		return err
	}
	return run(env)
}

func runAll(env *experiments.Env) error {
	f3, err := experiments.Figure3(env)
	if err != nil {
		return err
	}
	fmt.Print(f3.Render())
	fmt.Println()
	t1, err := experiments.Table1(env)
	if err != nil {
		return err
	}
	fmt.Print(t1.Render())
	fmt.Println()
	sw, err := experiments.DBCountSweep(env, nil)
	if err != nil {
		return err
	}
	fmt.Print(sw.Render())
	fmt.Println()
	fsr, err := experiments.FewShot(env, nil)
	if err != nil {
		return err
	}
	fmt.Print(fsr.Render())
	fmt.Println()
	ab, err := experiments.Ablations(env)
	if err != nil {
		return err
	}
	fmt.Print(ab.Render())
	return nil
}

func runTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ContinueOnError)
	name := fs.String("estimator", costmodel.NameZeroShot,
		fmt.Sprintf("registry estimator to train (one of %v)", costmodel.Names()))
	card := fs.String("card", "estimated", "cardinality source for the graph encoding: estimated, exact or none")
	out := fs.String("out", "zeroshot-model.gob", "output model path")
	dbs := fs.Int("dbs", 8, "number of training databases")
	queries := fs.Int("queries", 300, "training queries per database")
	seed := fs.Int64("seed", 1, "random seed")
	workers := fs.Int("train-workers", 0,
		"cap the data-parallel training worker pool (0 = one per core, 1 = serial); any cap trains to bitwise-identical weights")
	if err := fs.Parse(args); err != nil {
		return err
	}
	defer nn.SetMaxWorkers(nn.SetMaxWorkers(*workers))
	cardSrc, err := parseCard(*card)
	if err != nil {
		return err
	}
	est, err := costmodel.New(*name, costmodel.Options{Seed: *seed, Card: cardSrc})
	if err != nil {
		return err
	}
	corpus, err := datagen.TrainingCorpus(*dbs, *seed, datagen.DefaultConfig())
	if err != nil {
		return err
	}
	var samples []costmodel.Sample
	for i, db := range corpus {
		recs, err := collect.Run(db, collect.Options{Queries: *queries, Seed: *seed + int64(i*1000)})
		if err != nil {
			return err
		}
		samples = append(samples, costmodel.FromRecords(db, recs)...)
		fmt.Fprintf(os.Stderr, "collected %s (%d/%d)\n", db.Schema.Name, i+1, *dbs)
	}
	report, err := est.Fit(context.Background(), samples)
	if err != nil {
		return err
	}
	if len(report.EpochLoss) > 0 {
		fmt.Fprintf(os.Stderr, "trained %s on %d samples; loss %.4f -> %.4f\n",
			est.Name(), report.Samples, report.EpochLoss[0], report.EpochLoss[len(report.EpochLoss)-1])
	} else {
		fmt.Fprintf(os.Stderr, "fitted %s on %d samples\n", est.Name(), report.Samples)
	}
	if report.WallTime > 0 {
		fmt.Fprintf(os.Stderr, "training wall-time %s (%.0f samples/s)\n",
			report.WallTime.Round(time.Millisecond), report.SamplesPerSec)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := costmodel.Save(f, est); err != nil {
		return err
	}
	fmt.Printf("saved %s model to %s\n", est.Name(), *out)
	return nil
}

func runEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ContinueOnError)
	modelPath := fs.String("model", "zeroshot-model.gob", "saved model path")
	n := fs.Int("queries", 200, "evaluation queries")
	scale := fs.Float64("dbscale", 0.1, "IMDB-like database scale")
	seed := fs.Int64("seed", 99, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	est, err := loadModelFile(*modelPath)
	if err != nil {
		return err
	}
	db, err := datagen.IMDBLike(*scale)
	if err != nil {
		return err
	}
	recs, err := collect.Run(db, collect.Options{Queries: *n, Seed: *seed})
	if err != nil {
		return err
	}
	samples := costmodel.FromRecords(db, recs)
	preds, err := est.PredictBatch(context.Background(), costmodel.Inputs(samples))
	if err != nil {
		return err
	}
	actuals := make([]float64, len(recs))
	for i, r := range recs {
		actuals[i] = r.RuntimeSec
	}
	sum, err := metrics.Summarize(preds, actuals)
	if err != nil {
		return err
	}
	fmt.Printf("%s on unseen %s (%d queries): %v\n", est.Name(), db.Schema.Name, len(recs), sum)
	return nil
}

// loadModelFile opens and reconstructs one self-describing model file.
func loadModelFile(path string) (costmodel.Estimator, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	est, err := costmodel.Load(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return est, nil
}

// runExplain parses a SQL query against the IMDB-like database, plans it
// (optionally under hypothetical indexes), executes it, and prints the
// annotated plan with the simulated runtime — like EXPLAIN ANALYZE.
func runExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ContinueOnError)
	sqlText := fs.String("sql", "", "query to explain (required)")
	dbScale := fs.Float64("dbscale", 0.1, "IMDB-like database scale")
	indexes := fs.String("indexes", "", "comma-separated hypothetical indexes, e.g. movie_companies.movie_id,title.production_year")
	modelPath := fs.String("model", "", "optional saved cost model for a runtime prediction")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sqlText == "" {
		return fmt.Errorf("explain: -sql is required")
	}
	db, err := datagen.IMDBLike(*dbScale)
	if err != nil {
		return err
	}
	q, err := sqlparse.Parse(*sqlText, db.Schema)
	if err != nil {
		return err
	}
	idx := optimizer.IndexSet{}
	if *indexes != "" {
		for _, k := range strings.Split(*indexes, ",") {
			idx[strings.TrimSpace(k)] = true
		}
	}
	st := stats.Collect(db, stats.DefaultBuckets, stats.DefaultMCVs)
	opt := optimizer.New(db.Schema, st, idx, optimizer.DefaultCostParams())
	p, err := opt.Plan(q)
	if err != nil {
		return err
	}
	res, err := engine.New(db, engine.Config{}).Execute(p)
	if err != nil {
		return err
	}
	sim := hwsim.New(hwsim.DefaultProfile(), 1)
	fmt.Println(q.SQL())
	fmt.Print(p.Explain())
	fmt.Printf("rows: %d   optimizer cost: %.1f   simulated runtime: %.3fs\n",
		res.Rows, optimizer.TotalCost(p), sim.RuntimeNoiseless(p))
	if *modelPath != "" {
		est, err := loadModelFile(*modelPath)
		if err != nil {
			return err
		}
		pred, err := est.Predict(context.Background(), costmodel.PlanInput{
			DB: db, Query: q, Plan: p, OptimizerCost: optimizer.TotalCost(p),
		})
		if err != nil {
			return err
		}
		fmt.Printf("%s predicted runtime: %.3fs\n", est.Name(), pred)
	}
	return nil
}

func runGendata(args []string) error {
	fs := flag.NewFlagSet("gendata", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	db, err := datagen.Generate(fmt.Sprintf("gen%d", *seed), *seed, datagen.DefaultConfig())
	if err != nil {
		return err
	}
	fmt.Print(db.Schema.String())
	return nil
}
