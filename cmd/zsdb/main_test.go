package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/zeroshot-db/zeroshot/internal/costmodel"
	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/experiments"
)

func TestScaleConfig(t *testing.T) {
	tests := []struct {
		name     string
		args     []string
		wantErr  bool
		wantDBs  int
		wantSeed int64
	}{
		{name: "default small", args: nil, wantDBs: experiments.SmallConfig().TrainDBs, wantSeed: 1},
		{name: "explicit small", args: []string{"-scale", "small"}, wantDBs: experiments.SmallConfig().TrainDBs, wantSeed: 1},
		{name: "full", args: []string{"-scale", "full"}, wantDBs: experiments.FullConfig().TrainDBs, wantSeed: 1},
		{name: "seed override", args: []string{"-seed", "42"}, wantDBs: experiments.SmallConfig().TrainDBs, wantSeed: 42},
		{name: "bad scale", args: []string{"-scale", "huge"}, wantErr: true},
		{name: "bad flag", args: []string{"-nope"}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			fs := flag.NewFlagSet("test", flag.ContinueOnError)
			fs.SetOutput(os.NewFile(0, os.DevNull))
			cfg, err := scaleConfig(fs, tt.args)
			if tt.wantErr {
				if err == nil {
					t.Fatal("expected an error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if cfg.TrainDBs != tt.wantDBs || cfg.Seed != tt.wantSeed {
				t.Fatalf("got TrainDBs=%d Seed=%d, want %d/%d", cfg.TrainDBs, cfg.Seed, tt.wantDBs, tt.wantSeed)
			}
		})
	}
}

func TestParseCard(t *testing.T) {
	tests := []struct {
		in      string
		want    encoding.CardSource
		wantErr bool
	}{
		{in: "estimated", want: encoding.CardEstimated},
		{in: "exact", want: encoding.CardExact},
		{in: "none", want: encoding.CardNone},
		{in: "bogus", wantErr: true},
		{in: "", wantErr: true},
	}
	for _, tt := range tests {
		got, err := parseCard(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Errorf("parseCard(%q) accepted", tt.in)
			}
			continue
		}
		if err != nil || got != tt.want {
			t.Errorf("parseCard(%q) = (%v, %v), want %v", tt.in, got, err, tt.want)
		}
	}
}

func TestRunDispatch(t *testing.T) {
	if err := run("no-such-command", nil); err != errUnknownCommand {
		t.Fatalf("unknown command returned %v, want errUnknownCommand", err)
	}
	// Commands must reject bad flags rather than fall through.
	for _, cmd := range []string{"train", "eval", "serve", "explain", "gendata"} {
		if err := run(cmd, []string{"-definitely-not-a-flag"}); err == nil {
			t.Errorf("%s accepted a bogus flag", cmd)
		}
	}
	if err := run("explain", nil); err == nil {
		t.Error("explain without -sql should fail")
	}
	if err := run("serve", nil); err == nil {
		t.Error("serve without -models should fail")
	}
	if err := run("train", []string{"-estimator", "nope", "-out", filepath.Join(t.TempDir(), "m.gob")}); err == nil {
		t.Error("train accepted an unknown estimator")
	}
	if err := run("train", []string{"-card", "nope"}); err == nil {
		t.Error("train accepted an unknown cardinality source")
	}
}

func TestRunGendata(t *testing.T) {
	if err := run("gendata", []string{"-seed", "3"}); err != nil {
		t.Fatal(err)
	}
}

// TestTrainEvalRoundTrip drives the CLI end to end with the cheapest
// registry estimator: train writes a self-describing model file, eval
// reconstructs it from the header alone.
func TestTrainEvalRoundTrip(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sc.gob")
	if err := run("train", []string{
		"-estimator", costmodel.NameScaledCost,
		"-dbs", "1", "-queries", "40", "-out", out,
	}); err != nil {
		t.Fatal(err)
	}
	est, err := loadModelFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if est.Name() != costmodel.NameScaledCost {
		t.Fatalf("loaded %q, want %q", est.Name(), costmodel.NameScaledCost)
	}
	if err := run("eval", []string{"-model", out, "-queries", "25", "-dbscale", "0.08"}); err != nil {
		t.Fatal(err)
	}
}
