package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"time"

	"github.com/zeroshot-db/zeroshot/internal/obs"
)

// obsFlags carries the shared observability flag values for zsdb serve
// and zsdb route: trace sampling, the always-on slow-query threshold,
// and the optional pprof debug listener.
type obsFlags struct {
	sample    int
	slow      time.Duration
	debugAddr string
}

// register wires the observability flags onto a command's flag set.
func (o *obsFlags) register(fs *flag.FlagSet) {
	fs.IntVar(&o.sample, "trace-sample", 0, "record a full pipeline trace for every Nth request (0 = sampling off; the slow-query log stays on)")
	fs.DurationVar(&o.slow, "trace-slow", 250*time.Millisecond, "always-on slow-query threshold: requests slower than this are logged even unsampled (0 = off)")
	fs.StringVar(&o.debugAddr, "debug-addr", "", "separate listen address for net/http/pprof profiling endpoints (empty = off)")
}

// build constructs the process-wide tracer and control-plane event log.
// One of each per process: in-process replicas, the router, adaptation
// loops and bundle distributors all share them, distinguished by the
// trace DB / event origin fields.
func (o *obsFlags) build() (*obs.Tracer, *obs.Log) {
	return obs.NewTracer(obs.TraceConfig{
		SampleEvery:   o.sample,
		SlowThreshold: o.slow,
	}), obs.NewLog(0)
}

// startDebug starts the pprof listener when -debug-addr is set. The
// profiling surface stays off the serving mux on purpose: it must never
// be reachable through a port an operator exposed for predictions.
func (o *obsFlags) startDebug() (func(), error) {
	if o.debugAddr == "" {
		return func() {}, nil
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", o.debugAddr)
	if err != nil {
		return nil, fmt.Errorf("debug listener: %w", err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	fmt.Fprintf(os.Stderr, "pprof debug server on %s\n", ln.Addr())
	return func() { srv.Close() }, nil
}

// handleTraces serves GET /v1/debug/traces: the sampled recent ring and
// the always-on slow-query ring, newest first. ?n= caps each list.
func handleTraces(tr *obs.Tracer) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		if tr == nil {
			httpError(w, http.StatusNotFound, "tracing is not wired on this server")
			return
		}
		n := 0
		if v := r.URL.Query().Get("n"); v != "" {
			parsed, err := strconv.Atoi(v)
			if err != nil || parsed < 0 {
				httpError(w, http.StatusBadRequest, "n must be a non-negative integer")
				return
			}
			n = parsed
		}
		writeJSON(w, tr.Snapshot(n))
	}
}

// handleEvents serves GET /v1/events?since=N: the control-plane event
// ring forward from (exclusive) sequence N. Pollers resume from the
// last seq they saw; a response whose first event jumps past since+1
// tells them the ring evicted history in between.
func handleEvents(l *obs.Log) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		if l == nil {
			httpError(w, http.StatusNotFound, "the event log is not wired on this server")
			return
		}
		q := r.URL.Query()
		var since int64
		if v := q.Get("since"); v != "" {
			parsed, err := strconv.ParseInt(v, 10, 64)
			if err != nil || parsed < 0 {
				httpError(w, http.StatusBadRequest, "since must be a non-negative integer")
				return
			}
			since = parsed
		}
		max := 256
		if v := q.Get("max"); v != "" {
			parsed, err := strconv.Atoi(v)
			if err != nil || parsed <= 0 {
				httpError(w, http.StatusBadRequest, "max must be a positive integer")
				return
			}
			max = parsed
		}
		events := l.Since(since, max)
		if events == nil {
			events = []obs.Event{}
		}
		writeJSON(w, map[string]any{"head": l.Head(), "events": events})
	}
}
