package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/zeroshot-db/zeroshot/internal/cluster"
)

// runRoute fronts remote `zsdb serve` processes with the cluster
// router: the multi-process deployment where each backend owns its
// shard of the attached databases (or mirrors all of them) and this
// process only routes, health-checks, fails over, and aggregates.
func runRoute(args []string) error {
	fs := flag.NewFlagSet("route", flag.ContinueOnError)
	backends := fs.String("backends", "", "comma-separated zsdb serve base URLs, e.g. http://h1:8080,http://h2:8080 (required)")
	names := fs.String("names", "", "comma-separated replica names aligned with -backends (default: the URLs themselves); names are the ring identity, keep them stable")
	addr := fs.String("addr", ":8090", "listen address")
	callTimeout := fs.Duration("call-timeout", 5*time.Second, "per-attempt backend call timeout; a slower backend fails over")
	healthEvery := fs.Duration("health-interval", 2*time.Second, "background health probe period")
	maxAttempts := fs.Int("max-attempts", 0, "failover candidates per request (0 = all backends)")
	drain := fs.Duration("drain-timeout", 10*time.Second, "graceful shutdown timeout")
	var of obsFlags
	of.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *backends == "" {
		return fmt.Errorf("route: -backends is required")
	}
	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	var nameList []string
	if *names != "" {
		for _, n := range strings.Split(*names, ",") {
			nameList = append(nameList, strings.TrimSpace(n))
		}
		if len(nameList) != len(urls) {
			return fmt.Errorf("route: -names has %d entries for %d backends", len(nameList), len(urls))
		}
	}
	tracer, events := of.build()
	stopDebug, err := of.startDebug()
	if err != nil {
		return err
	}
	defer stopDebug()
	router := cluster.NewRouter(cluster.Config{
		CallTimeout:    *callTimeout,
		HealthInterval: *healthEvery,
		MaxAttempts:    *maxAttempts,
		Tracer:         tracer,
		Events:         events,
	})
	for i, u := range urls {
		name := ""
		if nameList != nil {
			name = nameList[i]
		}
		b, err := cluster.NewHTTPBackend(name, u, nil)
		if err != nil {
			router.Close()
			return err
		}
		if err := router.Register(b); err != nil {
			router.Close()
			return err
		}
	}
	// One synchronous probe round: starting a router with every backend
	// unreachable is almost always a typo in -backends — name the
	// offenders and keep going only if someone answered.
	ctx, cancel := context.WithTimeout(context.Background(), *callTimeout)
	up, report := checkStartupHealth(ctx, router)
	cancel()
	for name, err := range report {
		if err != nil {
			fmt.Fprintf(os.Stderr, "route: backend %s unreachable at startup: %v\n", name, err)
		}
	}
	if up == 0 {
		router.Close()
		return fmt.Errorf("route: none of the %d backend(s) answered a health probe", len(urls))
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		router.Close()
		return err
	}
	srv := newClusterServer(router)
	srv.tracer, srv.events = tracer, events
	httpSrv := &http.Server{
		Handler:           srv.mux(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	fmt.Fprintf(os.Stderr, "routing over %d backend(s) (%d healthy) on %s\n", len(urls), up, ln.Addr())
	err = serveUntilSignal(httpSrv, ln, router, sigs, *drain)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}
