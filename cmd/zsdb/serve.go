package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/zeroshot-db/zeroshot/internal/costmodel"
	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/optimizer"
	"github.com/zeroshot-db/zeroshot/internal/sqlparse"
	"github.com/zeroshot-db/zeroshot/internal/stats"
	"github.com/zeroshot-db/zeroshot/internal/storage"
)

// server is the HTTP prediction service: it plans incoming SQL against one
// database and serves runtime predictions from loaded cost models. All
// state is read-only after construction, so handlers run concurrently
// without locking; batched predictions fan out through the estimators'
// worker pools.
type server struct {
	db     *storage.Database
	opt    *optimizer.Optimizer
	models map[string]costmodel.Estimator
}

// newServer builds a server planning against db and serving the models.
func newServer(db *storage.Database, models map[string]costmodel.Estimator) *server {
	st := stats.Collect(db, stats.DefaultBuckets, stats.DefaultMCVs)
	return &server{
		db:     db,
		opt:    optimizer.New(db.Schema, st, nil, optimizer.DefaultCostParams()),
		models: models,
	}
}

// mux wires the JSON API.
func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/models", s.handleModels)
	mux.HandleFunc("/v1/predict", s.handlePredict)
	mux.HandleFunc("/v1/predict_batch", s.handlePredictBatch)
	return mux
}

// httpError is the uniform JSON error envelope.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, map[string]any{"status": "ok", "models": len(s.models)})
}

// modelInfo describes one loaded model in /v1/models.
type modelInfo struct {
	Name string `json:"name"`
}

func (s *server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	names := make([]modelInfo, 0, len(s.models))
	for name := range s.models {
		names = append(names, modelInfo{Name: name})
	}
	writeJSON(w, map[string]any{
		"models":   names,
		"database": s.db.Schema.Name,
		"tables":   len(s.db.Schema.Tables),
	})
}

// estimator resolves a request's model name; an empty name selects the
// only loaded model when unambiguous.
func (s *server) estimator(name string) (costmodel.Estimator, error) {
	if name == "" {
		if len(s.models) == 1 {
			for _, est := range s.models {
				return est, nil
			}
		}
		return nil, fmt.Errorf("request must name a model (loaded: %s)", strings.Join(s.modelNames(), ", "))
	}
	est, ok := s.models[name]
	if !ok {
		return nil, fmt.Errorf("model %q not loaded (loaded: %s)", name, strings.Join(s.modelNames(), ", "))
	}
	return est, nil
}

func (s *server) modelNames() []string {
	out := make([]string, 0, len(s.models))
	for name := range s.models {
		out = append(out, name)
	}
	return out
}

// planInput parses and plans one SQL text into a prediction input. The
// plan is NOT executed: predictions see exactly what a database would know
// before running the query.
func (s *server) planInput(sql string) (costmodel.PlanInput, error) {
	q, err := sqlparse.Parse(sql, s.db.Schema)
	if err != nil {
		return costmodel.PlanInput{}, fmt.Errorf("parse: %w", err)
	}
	p, err := s.opt.Plan(q)
	if err != nil {
		return costmodel.PlanInput{}, fmt.Errorf("plan: %w", err)
	}
	return costmodel.PlanInput{
		DB:            s.db,
		Query:         q,
		Plan:          p,
		OptimizerCost: optimizer.TotalCost(p),
	}, nil
}

// predictRequest is the /v1/predict body.
type predictRequest struct {
	Model string `json:"model"`
	SQL   string `json:"sql"`
}

// predictResponse is the /v1/predict reply.
type predictResponse struct {
	Model         string  `json:"model"`
	RuntimeSec    float64 `json:"runtime_sec"`
	OptimizerCost float64 `json:"optimizer_cost"`
	EstRows       float64 `json:"est_rows"`
}

func (s *server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req predictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.SQL == "" {
		httpError(w, http.StatusBadRequest, "sql is required")
		return
	}
	est, err := s.estimator(req.Model)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	in, err := s.planInput(req.SQL)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	pred, err := est.Predict(r.Context(), in)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "predict: %v", err)
		return
	}
	writeJSON(w, predictResponse{
		Model:         est.Name(),
		RuntimeSec:    pred,
		OptimizerCost: in.OptimizerCost,
		EstRows:       in.Plan.EstRows,
	})
}

// predictBatchRequest is the /v1/predict_batch body.
type predictBatchRequest struct {
	Model string   `json:"model"`
	SQL   []string `json:"sql"`
}

// predictBatchResponse is the /v1/predict_batch reply; predictions align
// with the request's sql array.
type predictBatchResponse struct {
	Model      string    `json:"model"`
	RuntimeSec []float64 `json:"runtime_sec"`
	Count      int       `json:"count"`
}

// maxBatch bounds one batch request; bigger workloads should be paged.
const maxBatch = 4096

func (s *server) handlePredictBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req predictBatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.SQL) == 0 {
		httpError(w, http.StatusBadRequest, "sql array is required")
		return
	}
	if len(req.SQL) > maxBatch {
		httpError(w, http.StatusBadRequest, "batch of %d exceeds limit %d", len(req.SQL), maxBatch)
		return
	}
	est, err := s.estimator(req.Model)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	ins := make([]costmodel.PlanInput, len(req.SQL))
	for i, sql := range req.SQL {
		if ins[i], err = s.planInput(sql); err != nil {
			httpError(w, http.StatusBadRequest, "sql[%d]: %v", i, err)
			return
		}
	}
	preds, err := est.PredictBatch(r.Context(), ins)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "predict: %v", err)
		return
	}
	writeJSON(w, predictBatchResponse{Model: est.Name(), RuntimeSec: preds, Count: len(preds)})
}

// runServe loads the model files and serves the prediction API.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	modelPaths := fs.String("models", "", "comma-separated saved model files (required)")
	addr := fs.String("addr", ":8080", "listen address")
	dbScale := fs.Float64("dbscale", 0.1, "IMDB-like serving database scale")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPaths == "" {
		return fmt.Errorf("serve: -models is required")
	}
	models := map[string]costmodel.Estimator{}
	for _, path := range strings.Split(*modelPaths, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		est, err := loadModelFile(path)
		if err != nil {
			return err
		}
		// Serve-time plans are never executed, so a model encoding exact
		// cardinalities would fail every prediction — reject it at startup.
		if zs, ok := est.(*costmodel.ZeroShot); ok && zs.Card() == encoding.CardExact {
			return fmt.Errorf("serve: %s was trained with exact cardinalities, which do not exist for unexecuted plans; retrain with -card estimated", path)
		}
		if _, dup := models[est.Name()]; dup {
			return fmt.Errorf("serve: two models named %q; serve one file per estimator kind", est.Name())
		}
		models[est.Name()] = est
		fmt.Fprintf(os.Stderr, "loaded %s from %s\n", est.Name(), path)
	}
	db, err := datagen.IMDBLike(*dbScale)
	if err != nil {
		return err
	}
	srv := newServer(db, models)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.mux(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Fprintf(os.Stderr, "serving %d model(s) over %s on %s\n",
		len(models), db.Schema.Name, *addr)
	return httpSrv.ListenAndServe()
}
