package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/zeroshot-db/zeroshot/internal/adapt"
	"github.com/zeroshot-db/zeroshot/internal/bundle"
	"github.com/zeroshot-db/zeroshot/internal/cluster"
	"github.com/zeroshot-db/zeroshot/internal/costmodel"
	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/obs"
	"github.com/zeroshot-db/zeroshot/internal/serving"
	"github.com/zeroshot-db/zeroshot/internal/storage"
	"github.com/zeroshot-db/zeroshot/internal/whatif"
)

// server is the HTTP shim over a serving.Session: handlers decode JSON,
// call the session, and map its error kinds onto status codes. All
// serving logic — multi-database pipelines, plan caching, micro-batch
// coalescing, metrics — lives in internal/serving; the optional online
// adaptation loop (feedback → drift → fine-tune → hot-swap) lives in
// internal/adapt.
type server struct {
	sess *serving.Session
	// loop is the online adaptation controller; nil unless -adapt.
	loop *adapt.Loop
	// bundles is the model-bundle plumbing (store, publisher, this
	// session's distributor); nil unless -bundle-dir.
	bundles *bundleControl
	// tracer and events are the process-wide observability surfaces
	// behind /v1/debug/traces and /v1/events (nil-safe when unwired).
	tracer *obs.Tracer
	events *obs.Log
}

func newServer(sess *serving.Session) *server { return &server{sess: sess} }

// mux wires the JSON API.
func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/models", s.handleModels)
	mux.HandleFunc("/v1/databases", s.handleDatabases)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/predict", s.handlePredict)
	mux.HandleFunc("/v1/predict_batch", s.handlePredictBatch)
	mux.HandleFunc("/v1/whatif", s.handleWhatIf)
	mux.HandleFunc("/v1/feedback", s.handleFeedback)
	mux.HandleFunc("/v1/adapt/status", s.handleAdaptStatus)
	mux.HandleFunc("/v1/bundles", s.handleBundles)
	mux.HandleFunc("/v1/debug/traces", s.handleTraces)
	mux.HandleFunc("/v1/events", s.handleEvents)
	return mux
}

// handleTraces and handleEvents defer to the shared handlers — the
// fields are read per request so tests can wire them after mux().
func (s *server) handleTraces(w http.ResponseWriter, r *http.Request) {
	handleTraces(s.tracer)(w, r)
}

func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	handleEvents(s.events)(w, r)
}

// handleBundles defers to the shared bundle handler — s.bundles is read
// per request so tests can wire it after mux().
func (s *server) handleBundles(w http.ResponseWriter, r *http.Request) {
	handleBundles(s.bundles)(w, r)
}

// httpError is the uniform JSON error envelope.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// httpErrorCode is httpError plus a machine-readable "code" field, for
// conditions remote routers must classify without parsing prose (the
// cluster HTTP backend keys on it).
func httpErrorCode(w http.ResponseWriter, status int, errCode, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...), "code": errCode})
}

// sessionError maps a serving error kind onto its status code.
func sessionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, serving.ErrNotFound):
		httpError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, serving.ErrBadQuery):
		httpError(w, http.StatusBadRequest, "%v", err)
	case errors.Is(err, serving.ErrClosed):
		httpError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client gave up, not the server — keep it off the 5xx rate.
		httpError(w, http.StatusRequestTimeout, "%v", err)
	default:
		httpError(w, http.StatusInternalServerError, "%v", err)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	models, databases := s.sess.Counts()
	writeJSON(w, map[string]any{
		"status":    "ok",
		"models":    models,
		"databases": databases,
	})
}

// modelInfo describes one loaded model in /v1/models. Fused reports
// whether the model's PredictBatch executes as one fused forward pass
// (costmodel.BatchFuser). Generation and Swapped expose the hot-swap
// state (each AttachModel bumps the generation), so a client can detect
// a stale replica from this endpoint alone. All three are omitted by
// the cluster aggregation, which only sees model names.
type modelInfo struct {
	Name       string    `json:"name"`
	Fused      bool      `json:"fused,omitempty"`
	Generation int64     `json:"generation,omitempty"`
	Swapped    time.Time `json:"swapped,omitzero"`
}

func (s *server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	models := make([]modelInfo, 0, 4)
	for _, name := range s.sess.Models() {
		info := modelInfo{Name: name}
		if est, err := s.sess.Model(name); err == nil {
			info.Fused = costmodel.Fused(est)
		}
		if gen, swapped, err := s.sess.ModelGeneration(name); err == nil {
			info.Generation = gen
			info.Swapped = swapped
		}
		models = append(models, info)
	}
	dbs := s.sess.Databases()
	names := make([]string, len(dbs))
	for i, d := range dbs {
		names[i] = d.Name
	}
	writeJSON(w, map[string]any{"models": models, "databases": names})
}

func (s *server) handleDatabases(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, map[string]any{"databases": s.sess.Databases()})
}

// statsResponse is the /v1/stats body: the session snapshot (uptime,
// counters, latencies, per-model generations) plus the adaptation
// counters when -adapt is on and the bundle distributor counters (polls,
// activations, failures, last error) when -bundle-dir is set.
type statsResponse struct {
	serving.Stats
	Adaptation *adapt.Status            `json:"adaptation,omitempty"`
	Bundles    map[string]bundle.Status `json:"bundles,omitempty"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	resp := statsResponse{Stats: s.sess.Stats()}
	if s.loop != nil {
		st := s.loop.Status()
		resp.Adaptation = &st
	}
	if s.bundles != nil {
		resp.Bundles = s.bundles.statuses()
	}
	writeJSON(w, resp)
}

// feedbackRequest is the /v1/feedback body: the observed runtime of an
// earlier prediction, identified by the fingerprint that prediction
// returned (or by the statement text, which fingerprints identically).
type feedbackRequest struct {
	DB               string  `json:"db"`
	Fingerprint      string  `json:"fingerprint"`
	SQL              string  `json:"sql"`
	ActualRuntimeSec float64 `json:"actual_runtime_sec"`
}

func (s *server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.loop == nil {
		httpErrorCode(w, http.StatusNotFound, cluster.CodeAdaptDisabled, "online adaptation is disabled (restart with -adapt)")
		return
	}
	var req feedbackRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	fp := req.Fingerprint
	if fp == "" && req.SQL != "" {
		fp = costmodel.Fingerprint(req.SQL)
	}
	if fp == "" {
		httpError(w, http.StatusBadRequest, "fingerprint or sql is required")
		return
	}
	if req.ActualRuntimeSec <= 0 {
		httpError(w, http.StatusBadRequest, "actual_runtime_sec must be positive")
		return
	}
	if err := s.loop.Feedback(r.Context(), req.DB, fp, req.ActualRuntimeSec); err != nil {
		switch {
		case errors.Is(err, adapt.ErrNoPlan):
			httpError(w, http.StatusNotFound, "%v", err)
		default:
			sessionError(w, err)
		}
		return
	}
	writeJSON(w, map[string]any{"status": "accepted", "fingerprint": fp})
}

func (s *server) handleAdaptStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.loop == nil {
		httpError(w, http.StatusNotFound, "online adaptation is disabled (restart with -adapt)")
		return
	}
	writeJSON(w, s.loop.Status())
}

// predictRequest is the /v1/predict body. DB and Model may be omitted
// when the server hosts exactly one database / model.
type predictRequest struct {
	DB    string `json:"db"`
	Model string `json:"model"`
	SQL   string `json:"sql"`
}

// predictResponse is the /v1/predict reply. Fingerprint is the handle a
// client hands back to /v1/feedback once it observes the query's actual
// runtime.
type predictResponse struct {
	DB            string  `json:"db"`
	Model         string  `json:"model"`
	RuntimeSec    float64 `json:"runtime_sec"`
	OptimizerCost float64 `json:"optimizer_cost"`
	EstRows       float64 `json:"est_rows"`
	Fingerprint   string  `json:"fingerprint"`
	PlanCached    bool    `json:"plan_cached"`
}

func (s *server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req predictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.SQL == "" {
		httpError(w, http.StatusBadRequest, "sql is required")
		return
	}
	pred, err := s.sess.Predict(r.Context(), req.DB, req.Model, req.SQL)
	if err != nil {
		sessionError(w, err)
		return
	}
	writeJSON(w, predictResponse{
		DB:            pred.Database,
		Model:         pred.Model,
		RuntimeSec:    pred.RuntimeSec,
		OptimizerCost: pred.OptimizerCost,
		EstRows:       pred.EstRows,
		Fingerprint:   pred.Fingerprint,
		PlanCached:    pred.PlanCached,
	})
}

// predictBatchRequest is the /v1/predict_batch body.
type predictBatchRequest struct {
	DB    string   `json:"db"`
	Model string   `json:"model"`
	SQL   []string `json:"sql"`
}

// batchItemResult is one statement's outcome: a prediction or that
// statement's own error. One malformed statement no longer fails the
// whole batch.
type batchItemResult struct {
	RuntimeSec float64 `json:"runtime_sec,omitempty"`
	Error      string  `json:"error,omitempty"`
}

// predictBatchResponse is the /v1/predict_batch reply; results align
// with the request's sql array.
type predictBatchResponse struct {
	DB      string            `json:"db"`
	Model   string            `json:"model"`
	Results []batchItemResult `json:"results"`
	Count   int               `json:"count"`
	Errors  int               `json:"errors"`
}

// maxBatch bounds one batch request; bigger workloads should be paged.
const maxBatch = 4096

func (s *server) handlePredictBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req predictBatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.SQL) == 0 {
		httpError(w, http.StatusBadRequest, "sql array is required")
		return
	}
	if len(req.SQL) > maxBatch {
		httpError(w, http.StatusBadRequest, "batch of %d exceeds limit %d", len(req.SQL), maxBatch)
		return
	}
	res, err := s.sess.PredictBatch(r.Context(), req.DB, req.Model, req.SQL)
	if err != nil {
		sessionError(w, err)
		return
	}
	items := res.Items
	resp := predictBatchResponse{Model: res.Model, DB: res.Database, Results: make([]batchItemResult, len(items)), Count: len(items)}
	for i, item := range items {
		if item.Err != nil {
			resp.Results[i].Error = item.Err.Error()
			resp.Errors++
		} else {
			resp.Results[i].RuntimeSec = item.RuntimeSec
		}
	}
	writeJSON(w, resp)
}

// whatIfRequest is the /v1/whatif body: the workload to sweep and
// optional explicit index candidates ("table.column"); with none, the
// server enumerates candidates from the schema's foreign keys and the
// workload's filter columns.
type whatIfRequest struct {
	DB            string   `json:"db"`
	Model         string   `json:"model"`
	SQL           []string `json:"sql"`
	Candidates    []string `json:"candidates"`
	MaxCandidates int      `json:"max_candidates"`
}

func (s *server) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req whatIfRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.SQL) == 0 {
		httpError(w, http.StatusBadRequest, "sql array is required")
		return
	}
	if len(req.SQL) > maxBatch {
		httpError(w, http.StatusBadRequest, "workload of %d exceeds limit %d", len(req.SQL), maxBatch)
		return
	}
	rep, err := s.sess.WhatIf(r.Context(), req.DB, req.Model, whatif.Request{
		SQL:           req.SQL,
		Candidates:    req.Candidates,
		MaxCandidates: req.MaxCandidates,
	})
	if err != nil {
		sessionError(w, err)
		return
	}
	writeJSON(w, rep)
}

// buildDatabase constructs one named serving database kind.
func buildDatabase(kind string, scale float64) (*storage.Database, error) {
	switch kind {
	case "imdb":
		return datagen.IMDBLike(scale)
	case "ssb":
		return datagen.SSBLike(scale)
	case "tpch":
		return datagen.TPCHLike(scale)
	default:
		return nil, fmt.Errorf("serve: unknown database kind %q (want imdb, ssb or tpch)", kind)
	}
}

// loadModels loads and validates every model file. Models load before
// databases build — they fail cheaply, while each database costs
// seconds of data generation.
func loadModels(modelPaths string) ([]costmodel.Estimator, error) {
	var models []costmodel.Estimator
	seen := map[string]bool{}
	for _, path := range strings.Split(modelPaths, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		est, err := loadModelFile(path)
		if err != nil {
			return nil, err
		}
		// Serve-time plans are never executed, so a model encoding exact
		// cardinalities would fail every prediction — reject it at startup.
		if zs, ok := est.(*costmodel.ZeroShot); ok && zs.Card() == encoding.CardExact {
			return nil, fmt.Errorf("serve: %s was trained with exact cardinalities, which do not exist for unexecuted plans; retrain with -card estimated", path)
		}
		if seen[est.Name()] {
			return nil, fmt.Errorf("serve: two models named %q; serve one file per estimator kind", est.Name())
		}
		seen[est.Name()] = true
		models = append(models, est)
		fmt.Fprintf(os.Stderr, "loaded %s from %s\n", est.Name(), path)
	}
	return models, nil
}

// buildDatabases constructs the named serving databases concurrently
// (each costs seconds of data generation), returning them in flag
// order.
func buildDatabases(dbSpec string, dbScale float64) ([]string, []*storage.Database, error) {
	var kinds []string
	for _, kind := range strings.Split(dbSpec, ",") {
		if kind = strings.TrimSpace(kind); kind != "" {
			kinds = append(kinds, kind)
		}
	}
	if len(kinds) == 0 {
		return nil, nil, fmt.Errorf("serve: no databases attached (check -databases)")
	}
	dbs := make([]*storage.Database, len(kinds))
	errs := make([]error, len(kinds))
	var wg sync.WaitGroup
	for i, kind := range kinds {
		wg.Add(1)
		go func(i int, kind string) {
			defer wg.Done()
			dbs[i], errs[i] = buildDatabase(kind, dbScale)
		}(i, kind)
	}
	wg.Wait()
	for i := range kinds {
		if errs[i] != nil {
			return nil, nil, errs[i]
		}
	}
	return kinds, dbs, nil
}

// assembleSession attaches pre-built databases and loaded models to a
// fresh session. Replicated cluster mode calls this once per replica
// over the same databases — the storage is shared, only the
// per-session pipeline state (statistics, plan caches, scheduler) is
// per-replica.
func assembleSession(cfg serving.Config, kinds []string, dbs []*storage.Database, models []costmodel.Estimator) (*serving.Session, error) {
	sess := serving.NewSession(cfg)
	for _, est := range models {
		if err := sess.AttachModel(est); err != nil {
			return nil, err
		}
	}
	for i, kind := range kinds {
		if err := sess.AttachDatabase(kind, dbs[i]); err != nil {
			return nil, err
		}
	}
	return sess, nil
}

// adaptableModel resolves which attached model the adaptation loop
// should own: the named one, or — when the flag is empty — the single
// attached model that supports online adaptation (Clone + FineTune).
func adaptableModel(sess *serving.Session, name string) (string, error) {
	if name != "" {
		return name, nil
	}
	var candidates []string
	for _, n := range sess.Models() {
		est, err := sess.Model(n)
		if err != nil {
			return "", err
		}
		_, canClone := est.(costmodel.Cloner)
		_, canTune := est.(costmodel.FineTuner)
		if canClone && canTune {
			candidates = append(candidates, n)
		}
	}
	switch len(candidates) {
	case 0:
		return "", fmt.Errorf("serve: -adapt needs a model supporting Clone and FineTune; none of %v does", sess.Models())
	case 1:
		return candidates[0], nil
	default:
		return "", fmt.Errorf("serve: several models support adaptation (%v); pick one with -adapt-model", candidates)
	}
}

// serveUntilSignal runs the HTTP server until a shutdown signal arrives,
// then drains: stop accepting connections, let in-flight handlers finish
// (bounded by drainTimeout), and close the backing session — or, in
// cluster mode, the router and every replica behind it — so queued
// micro-batches still answer before the process exits.
func serveUntilSignal(httpSrv *http.Server, ln net.Listener, backing interface{ Close() error }, sigs <-chan os.Signal, drainTimeout time.Duration) error {
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	select {
	case err := <-serveErr:
		backing.Close()
		return err
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "zsdb serve: %v received, draining...\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		shutdownErr := httpSrv.Shutdown(ctx)
		backing.Close()
		<-serveErr // http.ErrServerClosed once Shutdown completes
		return shutdownErr
	}
}

// adaptFlags carries the -adapt* flag values into session assembly.
type adaptFlags struct {
	on         bool
	model      string
	windowSize int
	minSamples int
	// events, when non-nil, receives the loop's control-plane decisions
	// (drift triggers, swap verdicts) in the process-wide event log.
	events *obs.Log
}

// newLoopFor builds and starts one session's adaptation loop per the
// flags (nil when -adapt is off). onAccept, when non-nil, hooks the
// accept path — the bundle publisher's entry point. origin names this
// session in recorded events (the replica name, or "local").
func (a adaptFlags) newLoopFor(sess *serving.Session, onAccept func(context.Context, costmodel.Estimator, adapt.ShadowEval, int), origin string) (*adapt.Loop, error) {
	if !a.on {
		return nil, nil
	}
	model, err := adaptableModel(sess, a.model)
	if err != nil {
		return nil, err
	}
	loop, err := adapt.New(sess, adapt.Config{
		Model:      model,
		WindowSize: a.windowSize,
		MinSamples: a.minSamples,
		OnAccept:   onAccept,
		Events:     a.events,
		Origin:     origin,
	})
	if err != nil {
		return nil, err
	}
	loop.Start()
	return loop, nil
}

// buildReplicatedCluster assembles N mirrored in-process replicas —
// each a full serving session over the SAME storage (per-replica
// statistics, plan caches and schedulers; shared column data) — behind
// a consistent-hash router. Requests for one database always land on
// its owning replica, so plan-cache and adaptation-window locality
// survives the fan-in, and any replica can rescue any database on
// failover because the mirrored attachment is total.
func buildReplicatedCluster(cfg serving.Config, dbSpec string, dbScale float64, modelPaths string, replicas int, af adaptFlags, bf bundleFlags, rcfg cluster.Config) (*cluster.Router, map[string]*adapt.Loop, *bundleControl, error) {
	models, err := loadModels(modelPaths)
	if err != nil {
		return nil, nil, nil, err
	}
	// The publisher and distributors share the router's event log, so
	// one /v1/events read shows swaps, publishes and health transitions
	// interleaved in sequence order.
	bc, err := bf.newControl(models, rcfg.Events)
	if err != nil {
		return nil, nil, nil, err
	}
	kinds, dbs, err := buildDatabases(dbSpec, dbScale)
	if err != nil {
		return nil, nil, nil, err
	}
	router := cluster.NewRouter(rcfg)
	loops := map[string]*adapt.Loop{}
	fail := func(err error) (*cluster.Router, map[string]*adapt.Loop, *bundleControl, error) {
		bc.close()
		router.Close()
		return nil, nil, nil, err
	}
	for i := 0; i < replicas; i++ {
		name := fmt.Sprintf("r%d", i)
		sess, err := assembleSession(cfg, kinds, dbs, models)
		if err != nil {
			return fail(err)
		}
		// The distributor attaches before the loop so an accepted
		// adaptation can mark its own replica as already activated.
		var dist *bundle.Distributor
		if bc != nil {
			if dist, err = bc.attach(name, sess, bf.poll); err != nil {
				return fail(err)
			}
		}
		loop, err := af.newLoopFor(sess, bc.onAccept(dist), name)
		if err != nil {
			return fail(err)
		}
		if loop != nil {
			loops[name] = loop
		}
		b, err := cluster.NewInProcess(name, sess, loop)
		if err != nil {
			return fail(err)
		}
		if err := router.Register(b); err != nil {
			return fail(err)
		}
	}
	if bc != nil {
		if err := bc.seed(context.Background(), models); err != nil {
			return fail(err)
		}
	}
	for i, kind := range kinds {
		fmt.Fprintf(os.Stderr, "attached database %s (%s, scale %g) to %d replica(s); owner %s\n",
			kind, dbs[i].Schema.Name, dbScale, replicas, router.Owner(kind))
	}
	return router, loops, bc, nil
}

// runServe loads the model files, attaches the serving databases, and
// serves the prediction API until SIGINT/SIGTERM. With -replicas N > 1
// the same binary runs a sharded cluster: N mirrored in-process
// replicas behind the consistent-hash router, one HTTP front end.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	modelPaths := fs.String("models", "", "comma-separated saved model files (required)")
	addr := fs.String("addr", ":8080", "listen address")
	databases := fs.String("databases", "imdb", "comma-separated serving databases to attach: imdb, ssb, tpch")
	dbScale := fs.Float64("dbscale", 0.1, "serving database scale")
	replicas := fs.Int("replicas", 1, "in-process replica count; >1 serves a sharded cluster behind the consistent-hash router")
	callTimeout := fs.Duration("call-timeout", 10*time.Second, "cluster mode: per-attempt replica call timeout; a slower replica fails over (-replicas > 1 only)")
	maxAttempts := fs.Int("max-attempts", 0, "cluster mode: failover candidates per request, 0 = all replicas (-replicas > 1 only)")
	batchMax := fs.Int("batch-max", serving.DefaultMaxBatch, "micro-batch size cap for coalesced single predictions")
	batchWait := fs.Duration("batch-wait", serving.DefaultMaxWait, "micro-batch max-wait deadline")
	planCache := fs.Int("plancache", costmodel.DefaultPlanCacheSize, "per-database plan cache entries")
	drain := fs.Duration("drain-timeout", 10*time.Second, "graceful shutdown timeout")
	adaptOn := fs.Bool("adapt", false, "enable online adaptation: /v1/feedback runtimes fine-tune the model in the background and hot-swap improved generations")
	adaptModel := fs.String("adapt-model", "", "model to adapt (default: the sole attached model supporting Clone+FineTune)")
	adaptWindow := fs.Int("adapt-window", 0, "per-database feedback window size (0 = adapt default)")
	adaptMin := fs.Int("adapt-min-samples", 0, "fewest buffered samples a fine-tune runs on (0 = adapt default)")
	bundleDir := fs.String("bundle-dir", "", "bundle store directory: replicas poll it for new model revisions, and accepted adaptations publish into it (empty = bundles off)")
	bundlePoll := fs.Duration("bundle-poll", bundle.DefaultInterval, "bundle distributor poll interval (jittered per replica)")
	bundleRetain := fs.Int("bundle-retain", bundle.DefaultRetain, "bundle revisions to retain for rollback")
	bundleModel := fs.String("bundle-model", "", "model the bundle tier distributes (default: the sole loaded model)")
	var of obsFlags
	of.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPaths == "" {
		return fmt.Errorf("serve: -models is required")
	}
	if *replicas < 1 {
		return fmt.Errorf("serve: -replicas must be >= 1, got %d", *replicas)
	}
	tracer, events := of.build()
	stopDebug, err := of.startDebug()
	if err != nil {
		return err
	}
	defer stopDebug()
	cfg := serving.Config{
		MaxBatch:      *batchMax,
		MaxWait:       *batchWait,
		PlanCacheSize: *planCache,
		Tracer:        tracer,
	}
	af := adaptFlags{on: *adaptOn, model: *adaptModel, windowSize: *adaptWindow, minSamples: *adaptMin, events: events}
	bf := bundleFlags{dir: *bundleDir, poll: *bundlePoll, retain: *bundleRetain, model: *bundleModel}

	var handler http.Handler
	var backing interface{ Close() error }
	var banner string
	if *replicas > 1 {
		router, loops, bc, err := buildReplicatedCluster(cfg, *databases, *dbScale, *modelPaths, *replicas, af, bf, cluster.Config{
			CallTimeout:    *callTimeout,
			MaxAttempts:    *maxAttempts,
			HealthInterval: 2 * time.Second,
			Tracer:         tracer,
			Events:         events,
		})
		if err != nil {
			return err
		}
		defer bc.close()
		srv := newClusterServer(router)
		srv.bundles = bc
		srv.tracer, srv.events = tracer, events
		if len(loops) > 0 {
			srv.adaptStatus = func() map[string]adapt.Status {
				out := make(map[string]adapt.Status, len(loops))
				for name, loop := range loops {
					out[name] = loop.Status()
				}
				return out
			}
			fmt.Fprintf(os.Stderr, "online adaptation enabled on %d replica(s) (POST /v1/feedback)\n", len(loops))
		}
		if bc != nil {
			fmt.Fprintf(os.Stderr, "bundle distribution enabled: %s polled every %v by %d replica(s)\n", *bundleDir, *bundlePoll, *replicas)
		}
		handler = srv.mux()
		backing = router
		banner = fmt.Sprintf("serving %d replica(s)", *replicas)
	} else {
		models, err := loadModels(*modelPaths)
		if err != nil {
			return err
		}
		kinds, dbs, err := buildDatabases(*databases, *dbScale)
		if err != nil {
			return err
		}
		sess, err := assembleSession(cfg, kinds, dbs, models)
		if err != nil {
			return err
		}
		for i, kind := range kinds {
			fmt.Fprintf(os.Stderr, "attached database %s (%s, scale %g)\n", kind, dbs[i].Schema.Name, *dbScale)
		}
		srv := newServer(sess)
		srv.tracer, srv.events = tracer, events
		bc, err := bf.newControl(models, events)
		if err != nil {
			return err
		}
		var dist *bundle.Distributor
		if bc != nil {
			if dist, err = bc.attach("local", sess, bf.poll); err != nil {
				return err
			}
			if err := bc.seed(context.Background(), models); err != nil {
				bc.close()
				return err
			}
			defer bc.close()
			srv.bundles = bc
			fmt.Fprintf(os.Stderr, "bundle distribution enabled: %s polled every %v\n", *bundleDir, *bundlePoll)
		}
		loop, err := af.newLoopFor(sess, bc.onAccept(dist), "local")
		if err != nil {
			return err
		}
		if loop != nil {
			// Closed after the serve loop drains; a sweep racing the session
			// shutdown fails its AttachModel with ErrClosed and is discarded.
			defer loop.Close()
			srv.loop = loop
			fmt.Fprintf(os.Stderr, "online adaptation enabled for %s (POST /v1/feedback)\n", adaptName(loop))
		}
		handler = srv.mux()
		backing = sess
		banner = fmt.Sprintf("serving %d model(s) over %d database(s)", len(sess.Models()), len(sess.Databases()))
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	fmt.Fprintf(os.Stderr, "%s on %s\n", banner, ln.Addr())
	err = serveUntilSignal(httpSrv, ln, backing, sigs, *drain)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// adaptName reports the adapted model's name for the startup banner.
func adaptName(loop *adapt.Loop) string { return loop.Status().Model }
