package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/zeroshot-db/zeroshot/internal/collect"
	"github.com/zeroshot-db/zeroshot/internal/costmodel"
	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/storage"
)

// serveFixture is one serving database with two trained estimators — the
// zero-shot model (estimated cardinalities, so unexecuted plans predict)
// and the scaled-cost regression.
type serveFixture struct {
	db     *storage.Database
	models map[string]costmodel.Estimator
}

var (
	serveOnce sync.Once
	serveFix  serveFixture
	serveErr  error
)

func sharedServeFixture(t *testing.T) serveFixture {
	t.Helper()
	serveOnce.Do(func() {
		db, err := datagen.IMDBLike(0.08)
		if err != nil {
			serveErr = err
			return
		}
		recs, err := collect.Run(db, collect.Options{Queries: 60, Seed: 5})
		if err != nil {
			serveErr = err
			return
		}
		samples := costmodel.FromRecords(db, recs)
		models := map[string]costmodel.Estimator{}
		zs, err := costmodel.New(costmodel.NameZeroShot,
			costmodel.Options{Hidden: 12, Epochs: 2, Card: encoding.CardEstimated})
		if err == nil {
			_, err = zs.Fit(context.Background(), samples)
		}
		if err != nil {
			serveErr = err
			return
		}
		models[zs.Name()] = zs
		sc, err := costmodel.New(costmodel.NameScaledCost, costmodel.Options{})
		if err == nil {
			_, err = sc.Fit(context.Background(), samples)
		}
		if err != nil {
			serveErr = err
			return
		}
		models[sc.Name()] = sc
		serveFix = serveFixture{db: db, models: models}
	})
	if serveErr != nil {
		t.Fatal(serveErr)
	}
	return serveFix
}

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	f := sharedServeFixture(t)
	ts := httptest.NewServer(newServer(f.db, f.models).mux())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]json.RawMessage) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("non-JSON response: %v", err)
	}
	return resp, out
}

const testSQL = "SELECT COUNT(*) FROM title WHERE production_year > 50"

func TestServeHealthzAndModels(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d", resp.StatusCode)
	}
	var health struct {
		Status string `json:"status"`
		Models int    `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Models != 2 {
		t.Fatalf("health = %+v", health)
	}

	resp2, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var models struct {
		Models   []modelInfo `json:"models"`
		Database string      `json:"database"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	if len(models.Models) != 2 || models.Database == "" {
		t.Fatalf("models = %+v", models)
	}
}

func TestServePredict(t *testing.T) {
	ts := newTestServer(t)
	for _, model := range []string{costmodel.NameZeroShot, costmodel.NameScaledCost} {
		resp, body := postJSON(t, ts.URL+"/v1/predict", predictRequest{Model: model, SQL: testSQL})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d body %v", model, resp.StatusCode, body)
		}
		var rt float64
		if err := json.Unmarshal(body["runtime_sec"], &rt); err != nil || rt <= 0 {
			t.Fatalf("%s: runtime_sec = %s (err %v)", model, body["runtime_sec"], err)
		}
	}
}

func TestServePredictErrors(t *testing.T) {
	ts := newTestServer(t)
	tests := []struct {
		name string
		body any
		want int
	}{
		{name: "missing sql", body: predictRequest{Model: costmodel.NameZeroShot}, want: http.StatusBadRequest},
		{name: "bad sql", body: predictRequest{Model: costmodel.NameZeroShot, SQL: "DROP TABLE title"}, want: http.StatusBadRequest},
		{name: "unknown table", body: predictRequest{Model: costmodel.NameZeroShot, SQL: "SELECT COUNT(*) FROM nope"}, want: http.StatusBadRequest},
		{name: "unknown model", body: predictRequest{Model: "nope", SQL: testSQL}, want: http.StatusNotFound},
		{name: "ambiguous empty model", body: predictRequest{SQL: testSQL}, want: http.StatusNotFound},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/predict", tt.body)
			if resp.StatusCode != tt.want {
				t.Fatalf("status %d, want %d (body %v)", resp.StatusCode, tt.want, body)
			}
			if _, ok := body["error"]; !ok {
				t.Fatal("error response missing error field")
			}
		})
	}
	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/predict = %d, want 405", resp.StatusCode)
	}
}

func TestServePredictBatch(t *testing.T) {
	ts := newTestServer(t)
	sqls := []string{
		testSQL,
		"SELECT COUNT(*) FROM movie_companies",
		"SELECT COUNT(*) FROM movie_companies, title WHERE movie_companies.movie_id = title.id",
	}
	resp, body := postJSON(t, ts.URL+"/v1/predict_batch",
		predictBatchRequest{Model: costmodel.NameZeroShot, SQL: sqls})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d body %v", resp.StatusCode, body)
	}
	var preds []float64
	if err := json.Unmarshal(body["runtime_sec"], &preds); err != nil {
		t.Fatal(err)
	}
	if len(preds) != len(sqls) {
		t.Fatalf("%d predictions for %d queries", len(preds), len(sqls))
	}
	for i, p := range preds {
		if p <= 0 {
			t.Fatalf("prediction %d not positive: %v", i, p)
		}
	}

	// Batch-level validation.
	resp, _ = postJSON(t, ts.URL+"/v1/predict_batch", predictBatchRequest{Model: costmodel.NameZeroShot})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch = %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/predict_batch",
		predictBatchRequest{Model: costmodel.NameZeroShot, SQL: []string{testSQL, "garbage"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("batch with bad sql = %d, want 400", resp.StatusCode)
	}
}

// TestServeRejectsExactCardModel checks the startup guard: serve-time
// plans are never executed, so a zero-shot model encoding exact
// cardinalities must be rejected when loading, not fail per-request.
func TestServeRejectsExactCardModel(t *testing.T) {
	path := filepath.Join(t.TempDir(), "exact.gob")
	zs, err := costmodel.New(costmodel.NameZeroShot,
		costmodel.Options{Hidden: 8, Card: encoding.CardExact})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := costmodel.Save(f, zs); err != nil {
		t.Fatal(err)
	}
	f.Close()
	err = runServe([]string{"-models", path, "-addr", "127.0.0.1:0"})
	if err == nil || !strings.Contains(err.Error(), "exact cardinalities") {
		t.Fatalf("serve accepted an exact-cardinality model (err: %v)", err)
	}
}

// TestServeConcurrentBatch hammers /v1/predict_batch from several clients
// at once; run under -race this covers the serving hot path end to end.
func TestServeConcurrentBatch(t *testing.T) {
	ts := newTestServer(t)
	sqls := make([]string, 16)
	for i := range sqls {
		sqls[i] = fmt.Sprintf("SELECT COUNT(*) FROM title WHERE production_year > %d", i*7)
	}
	const clients = 8
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			model := costmodel.NameZeroShot
			if c%2 == 1 {
				model = costmodel.NameScaledCost
			}
			buf, _ := json.Marshal(predictBatchRequest{Model: model, SQL: sqls})
			resp, err := http.Post(ts.URL+"/v1/predict_batch", "application/json", bytes.NewReader(buf))
			if err != nil {
				errCh <- err
				return
			}
			defer resp.Body.Close()
			var out predictBatchResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errCh <- err
				return
			}
			if resp.StatusCode != http.StatusOK || out.Count != len(sqls) {
				errCh <- fmt.Errorf("client %d: status %d count %d", c, resp.StatusCode, out.Count)
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
