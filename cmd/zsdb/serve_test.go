package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/zeroshot-db/zeroshot/internal/adapt"
	"github.com/zeroshot-db/zeroshot/internal/collect"
	"github.com/zeroshot-db/zeroshot/internal/costmodel"
	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/serving"
	"github.com/zeroshot-db/zeroshot/internal/storage"
)

// serveFixture is two serving databases (the zero-shot model has never
// trained on either schema's workload beyond imdb) with two trained
// estimators — the zero-shot model (estimated cardinalities, so
// unexecuted plans predict) and the scaled-cost regression.
type serveFixture struct {
	imdb   *storage.Database
	ssb    *storage.Database
	models []costmodel.Estimator
}

var (
	serveOnce sync.Once
	serveFix  serveFixture
	serveErr  error
)

func sharedServeFixture(t *testing.T) serveFixture {
	t.Helper()
	serveOnce.Do(func() {
		imdb, err := datagen.IMDBLike(0.08)
		if err != nil {
			serveErr = err
			return
		}
		ssb, err := datagen.SSBLike(0.05)
		if err != nil {
			serveErr = err
			return
		}
		recs, err := collect.Run(imdb, collect.Options{Queries: 60, Seed: 5})
		if err != nil {
			serveErr = err
			return
		}
		samples := costmodel.FromRecords(imdb, recs)
		var models []costmodel.Estimator
		zs, err := costmodel.New(costmodel.NameZeroShot,
			costmodel.Options{Hidden: 12, Epochs: 2, Card: encoding.CardEstimated})
		if err == nil {
			_, err = zs.Fit(context.Background(), samples)
		}
		if err != nil {
			serveErr = err
			return
		}
		models = append(models, zs)
		sc, err := costmodel.New(costmodel.NameScaledCost, costmodel.Options{})
		if err == nil {
			_, err = sc.Fit(context.Background(), samples)
		}
		if err != nil {
			serveErr = err
			return
		}
		models = append(models, sc)
		serveFix = serveFixture{imdb: imdb, ssb: ssb, models: models}
	})
	if serveErr != nil {
		t.Fatal(serveErr)
	}
	return serveFix
}

// newTestSession assembles a multi-database session over the shared
// fixture. Each test gets its own session so stats and caches start
// empty.
func newTestSession(t *testing.T, cfg serving.Config) *serving.Session {
	t.Helper()
	f := sharedServeFixture(t)
	sess := serving.NewSession(cfg)
	if err := sess.AttachDatabase("imdb", f.imdb); err != nil {
		t.Fatal(err)
	}
	if err := sess.AttachDatabase("ssb", f.ssb); err != nil {
		t.Fatal(err)
	}
	for _, est := range f.models {
		if err := sess.AttachModel(est); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() { sess.Close() })
	return sess
}

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(newServer(newTestSession(t, serving.Config{})).mux())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]json.RawMessage) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("non-JSON response: %v", err)
	}
	return resp, out
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("non-JSON response from %s: %v", url, err)
	}
	return resp
}

const testSQL = "SELECT COUNT(*) FROM title WHERE production_year > 50"

func TestServeHealthzAndModels(t *testing.T) {
	ts := newTestServer(t)
	var health struct {
		Status    string `json:"status"`
		Models    int    `json:"models"`
		Databases int    `json:"databases"`
	}
	if resp := getJSON(t, ts.URL+"/healthz", &health); resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d", resp.StatusCode)
	}
	if health.Status != "ok" || health.Models != 2 || health.Databases != 2 {
		t.Fatalf("health = %+v", health)
	}

	var models struct {
		Models    []modelInfo `json:"models"`
		Databases []string    `json:"databases"`
	}
	if resp := getJSON(t, ts.URL+"/v1/models", &models); resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/models = %d", resp.StatusCode)
	}
	if len(models.Models) != 2 || len(models.Databases) != 2 {
		t.Fatalf("models = %+v", models)
	}
	for _, m := range models.Models {
		if want := m.Name == costmodel.NameZeroShot; m.Fused != want {
			t.Fatalf("model %s fused = %v, want %v (only the zero-shot adapter fuses batches)", m.Name, m.Fused, want)
		}
	}
}

func TestServeDatabases(t *testing.T) {
	ts := newTestServer(t)
	var out struct {
		Databases []serving.DatabaseInfo `json:"databases"`
	}
	if resp := getJSON(t, ts.URL+"/v1/databases", &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/databases = %d", resp.StatusCode)
	}
	if len(out.Databases) != 2 {
		t.Fatalf("databases = %+v", out.Databases)
	}
	if out.Databases[0].Name != "imdb" || out.Databases[1].Name != "ssb" {
		t.Fatalf("databases = %+v, want sorted imdb, ssb", out.Databases)
	}
	for _, d := range out.Databases {
		if d.Tables == 0 || d.Schema == "" {
			t.Fatalf("database %+v missing schema info", d)
		}
	}
}

func TestServePredict(t *testing.T) {
	ts := newTestServer(t)
	for _, model := range []string{costmodel.NameZeroShot, costmodel.NameScaledCost} {
		resp, body := postJSON(t, ts.URL+"/v1/predict", predictRequest{DB: "imdb", Model: model, SQL: testSQL})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d body %v", model, resp.StatusCode, body)
		}
		var rt float64
		if err := json.Unmarshal(body["runtime_sec"], &rt); err != nil || rt <= 0 {
			t.Fatalf("%s: runtime_sec = %s (err %v)", model, body["runtime_sec"], err)
		}
	}
	// Repeated statement: the second call must be served from the plan
	// cache (db field in reply confirms routing).
	resp, body := postJSON(t, ts.URL+"/v1/predict",
		predictRequest{DB: "imdb", Model: costmodel.NameZeroShot, SQL: "  " + testSQL + "  "})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat: status %d body %v", resp.StatusCode, body)
	}
	var cached bool
	if err := json.Unmarshal(body["plan_cached"], &cached); err != nil || !cached {
		t.Fatalf("plan_cached = %s (err %v), want true", body["plan_cached"], err)
	}
}

// TestServePredictMultiDB routes the same model against both attached
// databases — the zero-shot promise over one serving process.
func TestServePredictMultiDB(t *testing.T) {
	ts := newTestServer(t)
	queries := map[string]string{
		"imdb": testSQL,
		"ssb":  "SELECT COUNT(*) FROM lineorder",
	}
	for db, sql := range queries {
		resp, body := postJSON(t, ts.URL+"/v1/predict",
			predictRequest{DB: db, Model: costmodel.NameZeroShot, SQL: sql})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d body %v", db, resp.StatusCode, body)
		}
		var gotDB string
		if err := json.Unmarshal(body["db"], &gotDB); err != nil || gotDB != db {
			t.Fatalf("reply db = %s, want %s", body["db"], db)
		}
	}
}

func TestServePredictErrors(t *testing.T) {
	ts := newTestServer(t)
	tests := []struct {
		name string
		body any
		want int
	}{
		{name: "missing sql", body: predictRequest{DB: "imdb", Model: costmodel.NameZeroShot}, want: http.StatusBadRequest},
		{name: "bad sql", body: predictRequest{DB: "imdb", Model: costmodel.NameZeroShot, SQL: "DROP TABLE title"}, want: http.StatusBadRequest},
		{name: "unknown table", body: predictRequest{DB: "imdb", Model: costmodel.NameZeroShot, SQL: "SELECT COUNT(*) FROM nope"}, want: http.StatusBadRequest},
		{name: "table of other db", body: predictRequest{DB: "ssb", Model: costmodel.NameZeroShot, SQL: testSQL}, want: http.StatusBadRequest},
		{name: "unknown model", body: predictRequest{DB: "imdb", Model: "nope", SQL: testSQL}, want: http.StatusNotFound},
		{name: "ambiguous empty model", body: predictRequest{DB: "imdb", SQL: testSQL}, want: http.StatusNotFound},
		{name: "unknown db", body: predictRequest{DB: "nope", Model: costmodel.NameZeroShot, SQL: testSQL}, want: http.StatusNotFound},
		{name: "ambiguous empty db", body: predictRequest{Model: costmodel.NameZeroShot, SQL: testSQL}, want: http.StatusNotFound},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/predict", tt.body)
			if resp.StatusCode != tt.want {
				t.Fatalf("status %d, want %d (body %v)", resp.StatusCode, tt.want, body)
			}
			if _, ok := body["error"]; !ok {
				t.Fatal("error response missing error field")
			}
		})
	}
	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/predict = %d, want 405", resp.StatusCode)
	}
}

func TestServePredictBatch(t *testing.T) {
	ts := newTestServer(t)
	sqls := []string{
		testSQL,
		"SELECT COUNT(*) FROM movie_companies",
		"SELECT COUNT(*) FROM movie_companies, title WHERE movie_companies.movie_id = title.id",
	}
	resp, body := postJSON(t, ts.URL+"/v1/predict_batch",
		predictBatchRequest{DB: "imdb", Model: costmodel.NameZeroShot, SQL: sqls})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d body %v", resp.StatusCode, body)
	}
	var results []batchItemResult
	if err := json.Unmarshal(body["results"], &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != len(sqls) {
		t.Fatalf("%d results for %d queries", len(results), len(sqls))
	}
	for i, res := range results {
		if res.Error != "" || res.RuntimeSec <= 0 {
			t.Fatalf("result %d = %+v", i, res)
		}
	}

	// Batch-level validation.
	resp, _ = postJSON(t, ts.URL+"/v1/predict_batch", predictBatchRequest{DB: "imdb", Model: costmodel.NameZeroShot})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch = %d, want 400", resp.StatusCode)
	}
}

// TestServePredictBatchPerItemErrors checks the structured error
// contract end to end: malformed SQL and unknown tables error item by
// item while the healthy statements still predict.
func TestServePredictBatchPerItemErrors(t *testing.T) {
	ts := newTestServer(t)
	sqls := []string{
		testSQL,
		"garbage",
		"SELECT COUNT(*) FROM no_such_table",
		"SELECT COUNT(*) FROM movie_companies",
	}
	resp, body := postJSON(t, ts.URL+"/v1/predict_batch",
		predictBatchRequest{DB: "imdb", Model: costmodel.NameZeroShot, SQL: sqls})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d body %v (mixed batches should answer per item)", resp.StatusCode, body)
	}
	var results []batchItemResult
	if err := json.Unmarshal(body["results"], &results); err != nil {
		t.Fatal(err)
	}
	var nerr int
	if err := json.Unmarshal(body["errors"], &nerr); err != nil || nerr != 2 {
		t.Fatalf("errors = %s, want 2", body["errors"])
	}
	for i, wantOK := range []bool{true, false, false, true} {
		switch {
		case wantOK && (results[i].Error != "" || results[i].RuntimeSec <= 0):
			t.Fatalf("result %d should have predicted: %+v", i, results[i])
		case !wantOK && results[i].Error == "":
			t.Fatalf("result %d should carry an error: %+v", i, results[i])
		}
	}
	// The statement-level errors name the failing stage.
	if !strings.Contains(results[1].Error, "parse") {
		t.Fatalf("malformed-SQL error %q should name the parse stage", results[1].Error)
	}
}

// TestServeStats checks /v1/stats reflects traffic: request counters,
// plan-cache hit rates and scheduler drains.
func TestServeStats(t *testing.T) {
	ts := newTestServer(t)
	for i := 0; i < 3; i++ {
		resp, _ := postJSON(t, ts.URL+"/v1/predict",
			predictRequest{DB: "imdb", Model: costmodel.NameZeroShot, SQL: testSQL})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict %d failed", i)
		}
	}
	var st serving.Stats
	if resp := getJSON(t, ts.URL+"/v1/stats", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/stats = %d", resp.StatusCode)
	}
	if st.Requests != 3 || st.Errors != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.UptimeSec <= 0 {
		t.Fatalf("uptime_sec = %v, want > 0", st.UptimeSec)
	}
	if len(st.Models) != 2 {
		t.Fatalf("models = %+v, want 2 generation entries", st.Models)
	}
	for _, m := range st.Models {
		if m.Generation != 1 || m.LastSwap.IsZero() {
			t.Fatalf("model stats = %+v, want generation 1 with a swap time", m)
		}
	}
	if st.Scheduler.Items != 3 || st.Predict.Count != 3 {
		t.Fatalf("scheduler/predict stats = %+v / %+v", st.Scheduler, st.Predict)
	}
	var imdbStats *serving.DatabaseStats
	for i := range st.Databases {
		if st.Databases[i].Database == "imdb" {
			imdbStats = &st.Databases[i]
		}
	}
	if imdbStats == nil {
		t.Fatalf("no imdb stats in %+v", st.Databases)
	}
	if imdbStats.PlanCache.Hits != 2 || imdbStats.PlanCache.Misses != 1 {
		t.Fatalf("plan cache = %+v, want 2 hits / 1 miss", imdbStats.PlanCache)
	}
	if imdbStats.Stages["parse"].Count != 1 {
		t.Fatalf("parse stage = %+v, want exactly one run", imdbStats.Stages)
	}
}

// newAdaptTestServer is a test server with the online adaptation loop
// attached to the zero-shot model (no background worker — tests drive
// sweeps explicitly when they need one).
func newAdaptTestServer(t *testing.T) (*httptest.Server, *adapt.Loop) {
	t.Helper()
	sess := newTestSession(t, serving.Config{})
	loop, err := adapt.New(sess, adapt.Config{Model: costmodel.NameZeroShot})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(loop.Close)
	srv := newServer(sess)
	srv.loop = loop
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)
	return ts, loop
}

// TestServeFeedbackAndAdaptStatus drives the feedback surface end to
// end: predictions return fingerprints, feedback joins against them (or
// against the raw SQL), bad feedback is rejected with the right codes,
// and /v1/adapt/status plus /v1/stats expose the loop's counters.
func TestServeFeedbackAndAdaptStatus(t *testing.T) {
	ts, _ := newAdaptTestServer(t)

	// Feedback for a never-predicted statement cannot join.
	resp, body := postJSON(t, ts.URL+"/v1/feedback",
		feedbackRequest{DB: "imdb", SQL: "SELECT COUNT(*) FROM movie_companies", ActualRuntimeSec: 0.5})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unjoined feedback = %d body %v, want 404", resp.StatusCode, body)
	}

	resp, body = postJSON(t, ts.URL+"/v1/predict",
		predictRequest{DB: "imdb", Model: costmodel.NameZeroShot, SQL: testSQL})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict = %d body %v", resp.StatusCode, body)
	}
	var fp string
	if err := json.Unmarshal(body["fingerprint"], &fp); err != nil || fp == "" {
		t.Fatalf("fingerprint = %s (err %v)", body["fingerprint"], err)
	}

	// Feedback by fingerprint, then by SQL text (same statement: the
	// fingerprints must agree).
	resp, body = postJSON(t, ts.URL+"/v1/feedback",
		feedbackRequest{DB: "imdb", Fingerprint: fp, ActualRuntimeSec: 0.25})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("feedback by fingerprint = %d body %v", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/feedback",
		feedbackRequest{DB: "imdb", SQL: "  select COUNT(*) from title WHERE production_year > 50", ActualRuntimeSec: 0.25})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("feedback by SQL = %d body %v (keyword-case variants must join)", resp.StatusCode, body)
	}

	// Validation.
	for name, req := range map[string]feedbackRequest{
		"no fingerprint or sql": {DB: "imdb", ActualRuntimeSec: 0.5},
		"non-positive runtime":  {DB: "imdb", Fingerprint: fp},
		"unknown db":            {DB: "nope", Fingerprint: fp, ActualRuntimeSec: 0.5},
	} {
		resp, body := postJSON(t, ts.URL+"/v1/feedback", req)
		if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d body %v", name, resp.StatusCode, body)
		}
	}

	var st adapt.Status
	if resp := getJSON(t, ts.URL+"/v1/adapt/status", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/adapt/status = %d", resp.StatusCode)
	}
	if st.Model != costmodel.NameZeroShot || st.Feedback != 2 || st.JoinMisses != 1 {
		t.Fatalf("adapt status = %+v, want 2 feedbacks / 1 join miss on zeroshot", st)
	}
	if len(st.Windows) != 1 || st.Windows[0].Database != "imdb" || st.Windows[0].Pending != 2 {
		t.Fatalf("windows = %+v", st.Windows)
	}

	// /v1/stats carries the adaptation block alongside the session stats.
	var full statsResponse
	if resp := getJSON(t, ts.URL+"/v1/stats", &full); resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/stats = %d", resp.StatusCode)
	}
	if full.Adaptation == nil || full.Adaptation.Feedback != 2 {
		t.Fatalf("stats adaptation = %+v", full.Adaptation)
	}
}

// TestServeAdaptDisabled checks the surface degrades cleanly without
// -adapt: feedback and status 404, stats has no adaptation block.
func TestServeAdaptDisabled(t *testing.T) {
	ts := newTestServer(t)
	resp, _ := postJSON(t, ts.URL+"/v1/feedback",
		feedbackRequest{DB: "imdb", SQL: testSQL, ActualRuntimeSec: 0.5})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/v1/feedback without -adapt = %d, want 404", resp.StatusCode)
	}
	var st map[string]json.RawMessage
	if resp := getJSON(t, ts.URL+"/v1/adapt/status", &st); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/v1/adapt/status without -adapt = %d, want 404", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/stats", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/stats = %d", resp.StatusCode)
	}
	if _, ok := st["adaptation"]; ok {
		t.Fatal("stats carries an adaptation block without -adapt")
	}
}

// TestAdaptableModel checks the -adapt-model default resolution: the
// zero-shot model is the only adaptable one in the fixture.
func TestAdaptableModel(t *testing.T) {
	sess := newTestSession(t, serving.Config{})
	name, err := adaptableModel(sess, "")
	if err != nil || name != costmodel.NameZeroShot {
		t.Fatalf("adaptableModel = %q (err %v), want zeroshot", name, err)
	}
	if name, err = adaptableModel(sess, "anything"); err != nil || name != "anything" {
		t.Fatalf("explicit name not honored: %q (err %v)", name, err)
	}
}

// TestServeRejectsExactCardModel checks the startup guard: serve-time
// plans are never executed, so a zero-shot model encoding exact
// cardinalities must be rejected when loading, not fail per-request.
func TestServeRejectsExactCardModel(t *testing.T) {
	path := filepath.Join(t.TempDir(), "exact.gob")
	zs, err := costmodel.New(costmodel.NameZeroShot,
		costmodel.Options{Hidden: 8, Card: encoding.CardExact})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := costmodel.Save(f, zs); err != nil {
		t.Fatal(err)
	}
	f.Close()
	err = runServe([]string{"-models", path, "-addr", "127.0.0.1:0", "-dbscale", "0.05"})
	if err == nil || !strings.Contains(err.Error(), "exact cardinalities") {
		t.Fatalf("serve accepted an exact-cardinality model (err: %v)", err)
	}
}

// TestServeGracefulShutdown drives the real serve loop: requests succeed,
// then a SIGTERM drains the server and the loop returns cleanly.
func TestServeGracefulShutdown(t *testing.T) {
	sess := newTestSession(t, serving.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: newServer(sess).mux()}
	sigs := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- serveUntilSignal(httpSrv, ln, sess, sigs, 5*time.Second) }()

	url := "http://" + ln.Addr().String()
	resp, body := postJSON(t, url+"/v1/predict",
		predictRequest{DB: "imdb", Model: costmodel.NameZeroShot, SQL: testSQL})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict before shutdown: %d %v", resp.StatusCode, body)
	}

	sigs <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve loop did not drain within 10s")
	}
	// The listener is closed and the session rejects new work.
	if _, err := http.Post(url+"/v1/predict", "application/json", strings.NewReader("{}")); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}

// TestServeConcurrentBatch hammers /v1/predict and /v1/predict_batch
// from several clients at once across both databases; run under -race
// this covers the serving hot path end to end.
func TestServeConcurrentBatch(t *testing.T) {
	ts := newTestServer(t)
	sqls := make([]string, 16)
	for i := range sqls {
		sqls[i] = fmt.Sprintf("SELECT COUNT(*) FROM title WHERE production_year > %d", i*7)
	}
	const clients = 8
	var wg sync.WaitGroup
	errCh := make(chan error, 2*clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			model := costmodel.NameZeroShot
			if c%2 == 1 {
				model = costmodel.NameScaledCost
			}
			buf, _ := json.Marshal(predictBatchRequest{DB: "imdb", Model: model, SQL: sqls})
			resp, err := http.Post(ts.URL+"/v1/predict_batch", "application/json", bytes.NewReader(buf))
			if err != nil {
				errCh <- err
				return
			}
			defer resp.Body.Close()
			var out predictBatchResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errCh <- err
				return
			}
			if resp.StatusCode != http.StatusOK || out.Count != len(sqls) || out.Errors != 0 {
				errCh <- fmt.Errorf("client %d: status %d count %d errors %d", c, resp.StatusCode, out.Count, out.Errors)
			}
		}(c)
		// Singles in parallel with batches: these coalesce in the scheduler.
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			buf, _ := json.Marshal(predictRequest{DB: "imdb", Model: costmodel.NameZeroShot, SQL: sqls[c%len(sqls)]})
			resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(buf))
			if err != nil {
				errCh <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errCh <- fmt.Errorf("single client %d: status %d", c, resp.StatusCode)
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
