package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"github.com/zeroshot-db/zeroshot/internal/obs"
)

// runTrace fetches /v1/debug/traces from a running server and renders
// both rings — the sampled recent traces with their full per-stage
// span breakdown, and the always-on slow-query log.
func runTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	addr := fs.String("addr", "http://localhost:8080", "server base URL")
	n := fs.Int("n", 10, "traces to show from each ring (0 = everything retained)")
	spans := fs.Bool("spans", true, "print the per-stage span breakdown under each sampled trace")
	timeout := fs.Duration("timeout", 10*time.Second, "request timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	url := fmt.Sprintf("%s/v1/debug/traces?n=%d", strings.TrimRight(*addr, "/"), *n)
	client := &http.Client{Timeout: *timeout}
	resp, err := client.Get(url)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("trace: %s returned %d: %s", url, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var snap obs.TraceSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Errorf("trace: decode %s: %w", url, err)
	}
	fmt.Print(renderTraces(snap, *spans))
	return nil
}

// renderTraces formats a trace snapshot for a terminal: the tracer
// config line, then each ring newest-first.
func renderTraces(snap obs.TraceSnapshot, spans bool) string {
	var b strings.Builder
	switch {
	case snap.SampleEvery > 0:
		fmt.Fprintf(&b, "sampling 1/%d (%d sampled", snap.SampleEvery, snap.Sampled)
	default:
		fmt.Fprintf(&b, "sampling off (%d sampled", snap.Sampled)
	}
	if snap.SlowThresholdMs > 0 {
		fmt.Fprintf(&b, ", %d slow over %.0fms)\n", snap.Slow, snap.SlowThresholdMs)
	} else {
		fmt.Fprintf(&b, ", slow log off)\n")
	}
	writeRing := func(title string, traces []*obs.Trace) {
		fmt.Fprintf(&b, "\n%s (%d):\n", title, len(traces))
		if len(traces) == 0 {
			fmt.Fprintln(&b, "  (none)")
			return
		}
		for _, tr := range traces {
			fmt.Fprintf(&b, "  #%-4d %s  %-7s %-10s %8.2fms", tr.ID,
				tr.Time.Format("15:04:05.000"), tr.Op, orDash(tr.DB), float64(tr.TotalUs)/1e3)
			if tr.BatchSize > 0 {
				fmt.Fprintf(&b, "  batch=%d wait=%.2fms", tr.BatchSize, float64(tr.CoalesceUs)/1e3)
			}
			if tr.PlanCached {
				b.WriteString("  plan-cached")
			}
			if tr.Err != "" {
				fmt.Fprintf(&b, "  ERR %s", tr.Err)
			}
			b.WriteByte('\n')
			if spans {
				for _, sp := range tr.Spans {
					fmt.Fprintf(&b, "        %-12s %8.2fms @ +%.2fms\n",
						sp.Name, float64(sp.DurUs)/1e3, float64(sp.StartUs)/1e3)
				}
			}
		}
	}
	writeRing("recent sampled traces", snap.Recent)
	writeRing("slow queries", snap.SlowQueries)
	return b.String()
}

// orDash substitutes a dash for an empty column value.
func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
