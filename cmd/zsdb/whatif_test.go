package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/zeroshot-db/zeroshot/internal/costmodel"
	"github.com/zeroshot-db/zeroshot/internal/serving"
	"github.com/zeroshot-db/zeroshot/internal/whatif"
)

// whatIfWorkload is the deterministic advise workload replayed against
// every topology.
var whatIfWorkload = []string{
	testSQL,
	"SELECT COUNT(*) FROM movie_companies, title WHERE movie_companies.movie_id = title.id",
	"SELECT SUM(title.production_year) FROM title WHERE title.production_year > 20",
}

func postWhatIf(t *testing.T, url string, req whatIfRequest) (*http.Response, *whatif.Report) {
	t.Helper()
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/whatif", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var body map[string]any
		json.NewDecoder(resp.Body).Decode(&body)
		t.Fatalf("POST /v1/whatif: status %d, body %v", resp.StatusCode, body)
	}
	var rep whatif.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	return resp, &rep
}

// TestServeWhatIf drives the advisor end to end over HTTP against the
// real zero-shot model, and holds the single-session and sharded-cluster
// topologies to identical rankings — a sweep is a pure function of
// (database, model, workload), never of where it ran.
func TestServeWhatIf(t *testing.T) {
	single := httptest.NewServer(newServer(newTestSession(t, serving.Config{})).mux())
	defer single.Close()
	router, _ := newTestRouter(t, 3, false)
	clustered := httptest.NewServer(newClusterServer(router).mux())
	defer clustered.Close()

	req := whatIfRequest{DB: "imdb", Model: costmodel.NameZeroShot, SQL: whatIfWorkload}
	_, repS := postWhatIf(t, single.URL, req)
	_, repC := postWhatIf(t, clustered.URL, req)

	if repS.Database != "imdb" || repS.Model != costmodel.NameZeroShot {
		t.Fatalf("report names = (%q, %q)", repS.Database, repS.Model)
	}
	if len(repS.Candidates) == 0 || len(repS.Variants) != len(repS.Candidates) {
		t.Fatalf("candidates/variants = %d/%d", len(repS.Candidates), len(repS.Variants))
	}
	if repS.Baseline.TotalSec <= 0 || len(repS.Baseline.Queries) != len(whatIfWorkload) {
		t.Fatalf("baseline = %+v", repS.Baseline)
	}
	for i, v := range repS.Variants {
		if len(v.Queries) != len(whatIfWorkload) {
			t.Fatalf("variant %s has %d query results", v.Name, len(v.Queries))
		}
		if i > 0 && repS.Variants[i-1].TotalSec > v.TotalSec {
			t.Fatal("variants not ranked by predicted runtime")
		}
	}

	// Topologies agree: same candidates, same ranking, same totals.
	if len(repC.Variants) != len(repS.Variants) {
		t.Fatalf("cluster returned %d variants, single %d", len(repC.Variants), len(repS.Variants))
	}
	for i := range repS.Variants {
		s, c := repS.Variants[i], repC.Variants[i]
		if s.Name != c.Name || s.TotalSec != c.TotalSec {
			t.Fatalf("rank %d diverges: single (%s, %v), cluster (%s, %v)", i, s.Name, s.TotalSec, c.Name, c.TotalSec)
		}
	}
	if repS.Recommendation != repC.Recommendation {
		t.Fatalf("recommendations diverge: %q vs %q", repS.Recommendation, repC.Recommendation)
	}

	// The sweep surfaced in /v1/stats.
	var st serving.Stats
	getJSON(t, single.URL+"/v1/stats", &st)
	if st.WhatIf.Sweeps != 1 || st.WhatIf.Latency.Count != 1 {
		t.Fatalf("whatif stats = %+v", st.WhatIf)
	}
	if st.WhatIf.BatchSizes.Max != float64(repS.Items) {
		t.Fatalf("batch size max %v, want %v", st.WhatIf.BatchSizes.Max, repS.Items)
	}
}

func TestServeWhatIfErrors(t *testing.T) {
	ts := newTestServer(t)

	post := func(body any) (*http.Response, map[string]json.RawMessage) {
		t.Helper()
		return postJSON(t, ts.URL+"/v1/whatif", body)
	}
	wantStatus := func(resp *http.Response, body map[string]json.RawMessage, want int) {
		t.Helper()
		if resp.StatusCode != want {
			t.Fatalf("status %d, want %d (body %v)", resp.StatusCode, want, body)
		}
		if body["error"] == nil {
			t.Fatalf("error body missing structured error field: %v", body)
		}
	}

	// GET is rejected.
	resp, err := http.Get(ts.URL + "/v1/whatif")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d, want 405", resp.StatusCode)
	}

	// Empty workload.
	r, b := post(whatIfRequest{DB: "imdb"})
	wantStatus(r, b, http.StatusBadRequest)

	// Unknown database.
	r, b = post(whatIfRequest{DB: "nosuch", SQL: whatIfWorkload[:1]})
	wantStatus(r, b, http.StatusNotFound)

	// Malformed candidate (no table.column form).
	r, b = post(whatIfRequest{DB: "imdb", Model: costmodel.NameZeroShot, SQL: whatIfWorkload[:1], Candidates: []string{"no_dot"}})
	wantStatus(r, b, http.StatusBadRequest)

	// Unknown candidate column.
	r, b = post(whatIfRequest{DB: "imdb", Model: costmodel.NameZeroShot, SQL: whatIfWorkload[:1], Candidates: []string{"title.nope"}})
	wantStatus(r, b, http.StatusBadRequest)

	// Unparseable workload statement.
	r, b = post(whatIfRequest{DB: "imdb", Model: costmodel.NameZeroShot, SQL: []string{"SELECT nonsense FROM nowhere"}})
	wantStatus(r, b, http.StatusBadRequest)

	// Oversized workload is refused before any planning.
	big := whatIfRequest{DB: "imdb", SQL: make([]string, maxBatch+1)}
	for i := range big.SQL {
		big.SQL[i] = testSQL
	}
	r, b = post(big)
	wantStatus(r, b, http.StatusBadRequest)
}
