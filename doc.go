// Package zeroshotdb is a from-scratch Go reproduction of "One Model to
// Rule them All: Towards Zero-Shot Learning for Databases" (Hilprecht and
// Binnig, CIDR 2022).
//
// The repository implements the paper's zero-shot cost model — a graph
// neural network over a transferable query-plan encoding, trained on query
// executions from many databases and able to predict query runtimes on
// databases it has never seen — together with every substrate the paper's
// prototype depends on: a synthetic database generator, an in-memory
// columnar execution engine, a cost-based query optimizer with what-if
// index support, a statistics subsystem, a hardware/runtime simulator, a
// tape-based autodiff library, and the workload-driven baselines (MSCN,
// E2E, Scaled Optimizer Cost) it is evaluated against.
//
// Entry points:
//
//   - internal/costmodel — the unified Estimator API: one contract
//     (Fit / Predict / PredictBatch / Save) over the zero-shot model and
//     every baseline, and a self-describing model registry. Batched
//     inference is fused where the model allows it: the zero-shot
//     adapter packs the whole batch into one encoding.BatchGraph and
//     runs a single tape-free forward pass on pooled nn buffers
//     (bitwise-equal to per-item Predict), while the baselines fall
//     back to a worker-pool fan-out — see DESIGN.md's "The inference
//     engine"
//   - internal/zeroshot — the zero-shot cost model (train / predict /
//     fine-tune / save / load). Training runs a data-parallel engine:
//     minibatches shard across the shared nn worker pool with pooled
//     tapes and a deterministic gradient reduce, so any worker count
//     trains to bitwise-identical weights — see DESIGN.md's "The
//     training engine"
//   - internal/adapt — online adaptation: serve-time feedback joined
//     against retained plans, q-error drift detection, and a background
//     worker that fine-tunes a clone of the serving model and hot-swaps
//     it when a shadow evaluation improves (the few-shot mode, closed
//     into a serving loop)
//   - internal/cluster — scale-out: a consistent-hash router (virtual
//     nodes, health-checked failover, bounded fan-out aggregation) over
//     replica backends, in-process or remote HTTP, plus a deterministic
//     fault-injection simulation harness (internal/cluster/sim)
//   - internal/bundle — fleet-wide model distribution: a versioned,
//     checksummed bundle format over the self-describing model files, a
//     publisher hooked into the adaptation loop's accept path, and a
//     per-replica poll/verify/activate distributor with durable
//     rollback — see DESIGN.md's "Model distribution"
//   - internal/whatif — the Section 4.1 what-if index advisor as a
//     subsystem: candidate enumeration, a copy-on-write hypothetical
//     catalog, and a sweep executor that prices every (variant × query)
//     pair in one fused batch — served as POST /v1/whatif and
//     `zsdb advise` (see DESIGN.md's "The what-if sweep layer")
//   - internal/experiments — regenerates every table and figure of the
//     paper's evaluation by iterating over registry estimators
//   - cmd/zsdb — the experiment driver CLI and the `zsdb serve` HTTP
//     prediction service (POST /v1/predict, /v1/predict_batch,
//     /v1/whatif, the -adapt feedback loop via /v1/feedback, and
//     -replicas N for the single-binary cluster), with `zsdb route` as
//     the multi-process routing tier over remote serve nodes and
//     `zsdb bundle` for offline model-bundle store operations
//   - examples/ — runnable walkthroughs (quickstart, index advisor,
//     few-shot adaptation, learned join ordering)
//
// See DESIGN.md for the system inventory and the per-experiment index, and
// EXPERIMENTS.md for paper-vs-measured results.
package zeroshotdb
