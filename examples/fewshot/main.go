// Few-shot adaptation (Section 4.3 of the paper): a pretrained zero-shot
// model already predicts well on an unseen database; fine-tuning it with a
// handful of queries from that database makes it better — with far fewer
// queries than a workload-driven model trained from scratch would need.
//
// Run with: go run ./examples/fewshot
package main

import (
	"fmt"
	"log"

	"github.com/zeroshot-db/zeroshot/internal/collect"
	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/metrics"
	"github.com/zeroshot-db/zeroshot/internal/storage"
	"github.com/zeroshot-db/zeroshot/internal/zeroshot"
)

func main() {
	// Pretrain across other databases.
	corpus, err := datagen.TrainingCorpus(4, 13, datagen.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	var samples []zeroshot.Sample
	for i, db := range corpus {
		samples = append(samples, gather(db, 140, int64(500*(i+1)))...)
	}
	cfg := zeroshot.DefaultConfig()
	cfg.Hidden = 24
	cfg.Epochs = 14
	model := zeroshot.New(cfg)
	if _, err := model.Train(samples); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pretrained zero-shot model on %d plans from %d databases\n", len(samples), len(corpus))

	// The unseen target database.
	imdb, err := datagen.IMDBLike(0.08)
	if err != nil {
		log.Fatal(err)
	}
	target := gather(imdb, 90, 31337)
	fewShotSet, testSet := target[:30], target[30:]

	eval := func(label string) {
		var preds, actuals []float64
		for _, s := range testSet {
			preds = append(preds, model.Predict(s.Graph))
			actuals = append(actuals, s.RuntimeSec)
		}
		sum, err := metrics.Summarize(preds, actuals)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-42s %v\n", label, sum)
	}

	eval("zero-shot (no queries on target db):")
	if _, err := model.FineTune(fewShotSet, 10, 0); err != nil {
		log.Fatal(err)
	}
	eval("few-shot  (30 queries on target db):")
	fmt.Println("\na workload-driven model would need thousands of queries for this accuracy")
}

func gather(db *storage.Database, n int, seed int64) []zeroshot.Sample {
	recs, err := collect.Run(db, collect.Options{Queries: n, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	enc := encoding.NewPlanEncoder(db.Schema, encoding.CardExact)
	out := make([]zeroshot.Sample, 0, len(recs))
	for _, r := range recs {
		g, err := enc.Encode(r.Plan)
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, zeroshot.Sample{Graph: g, RuntimeSec: r.RuntimeSec})
	}
	return out
}
