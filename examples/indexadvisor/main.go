// Index advisor: the paper's Section 4.1 "What-If" mode. A zero-shot cost
// model trained on other databases (with and without random indexes)
// predicts how a workload's runtime on an UNSEEN database would change if
// a candidate index existed — and ranks the candidates without executing
// anything. The example then verifies the ranking by actually building the
// indexes and executing the workload.
//
// Run with: go run ./examples/indexadvisor
package main

import (
	"fmt"
	"log"
	"sort"

	"github.com/zeroshot-db/zeroshot/internal/collect"
	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/engine"
	"github.com/zeroshot-db/zeroshot/internal/hwsim"
	"github.com/zeroshot-db/zeroshot/internal/optimizer"
	"github.com/zeroshot-db/zeroshot/internal/query"
	"github.com/zeroshot-db/zeroshot/internal/stats"
	"github.com/zeroshot-db/zeroshot/internal/storage"
	"github.com/zeroshot-db/zeroshot/internal/zeroshot"
)

func main() {
	model := trainWhatIfModel()

	// The unseen database and a workload we want to speed up.
	db, err := datagen.IMDBLike(0.08)
	if err != nil {
		log.Fatal(err)
	}

	// Candidate indexes: FK join columns plus frequently filtered columns.
	candidates := []string{
		"movie_companies.movie_id",
		"cast_info.movie_id",
		"movie_info.movie_id",
		"movie_keyword.movie_id",
		"title.production_year",
		"movie_info_idx.rating",
	}

	// A tuning workload that actually touches the candidate columns: keep
	// generated queries that filter at least one candidate (an advisor is
	// always tuned for a concrete workload).
	workload := targetedWorkload(db, candidates, 40)

	fmt.Println("predicted workload runtime under each hypothetical index (what-if):")
	type ranked struct {
		index     string
		predicted float64
		actual    float64
	}
	baselinePred := predictWorkload(model, db, workload, nil)
	baselineActual := executeWorkload(db, workload, nil)
	fmt.Printf("  %-32s predicted %8.2fs   actual %8.2fs\n", "(no index)", baselinePred, baselineActual)

	var results []ranked
	for _, cand := range candidates {
		idx := optimizer.IndexSet{cand: true}
		results = append(results, ranked{
			index:     cand,
			predicted: predictWorkload(model, db, workload, idx),
			actual:    executeWorkload(db, workload, idx),
		})
	}
	sort.Slice(results, func(a, b int) bool { return results[a].predicted < results[b].predicted })
	for _, r := range results {
		fmt.Printf("  %-32s predicted %8.2fs   actual %8.2fs\n", r.index, r.predicted, r.actual)
	}
	fmt.Printf("\nadvisor recommends: CREATE INDEX ON %s\n", results[0].index)
	fmt.Println("(predictions come from a model that never saw this database)")
}

// targetedWorkload draws synthetic queries and keeps those filtering at
// least one candidate column.
func targetedWorkload(db *storage.Database, candidates []string, n int) []*query.Query {
	isCandidate := map[string]bool{}
	for _, c := range candidates {
		isCandidate[c] = true
	}
	gen := query.NewGenerator(db, query.GenConfig{
		MaxTables: 3, MaxFilters: 3, MaxAggregates: 1, RangeProb: 0.5,
	}, 777)
	var out []*query.Query
	for len(out) < n {
		qs, err := gen.Generate(50)
		if err != nil {
			log.Fatal(err)
		}
		for _, q := range qs {
			if len(out) >= n {
				break
			}
			for _, f := range q.Filters {
				if isCandidate[f.Col.String()] {
					out = append(out, q)
					break
				}
			}
		}
	}
	return out
}

// trainWhatIfModel trains a zero-shot model on plain and index workloads of
// three synthetic databases, so it learns how index scans change runtimes.
func trainWhatIfModel() *zeroshot.Model {
	corpus, err := datagen.TrainingCorpus(3, 21, datagen.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	var samples []zeroshot.Sample
	for i, db := range corpus {
		enc := encoding.NewPlanEncoder(db.Schema, encoding.CardEstimated)
		for variant, idx := range map[int64]optimizer.IndexSet{
			0: nil,
			1: collect.RandomIndexes(db, int64(i+50), 0.8, 0.3),
		} {
			recs, err := collect.Run(db, collect.Options{
				Queries: 120,
				Seed:    int64(1000*(i+1)) + variant,
				Indexes: idx,
			})
			if err != nil {
				log.Fatal(err)
			}
			for _, r := range recs {
				g, err := enc.Encode(r.Plan)
				if err != nil {
					log.Fatal(err)
				}
				samples = append(samples, zeroshot.Sample{Graph: g, RuntimeSec: r.RuntimeSec})
			}
		}
	}
	cfg := zeroshot.DefaultConfig()
	cfg.Hidden = 24
	cfg.Epochs = 14
	m := zeroshot.New(cfg)
	if _, err := m.Train(samples); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained what-if model on %d plans from 3 other databases\n\n", len(samples))
	return m
}

// predictWorkload sums the model's predicted runtimes of the workload
// planned under the hypothetical index set — no execution involved.
func predictWorkload(m *zeroshot.Model, db *storage.Database, qs []*query.Query, idx optimizer.IndexSet) float64 {
	st := stats.Collect(db, stats.DefaultBuckets, stats.DefaultMCVs)
	opt := optimizer.New(db.Schema, st, idx, optimizer.DefaultCostParams())
	enc := encoding.NewPlanEncoder(db.Schema, encoding.CardEstimated)
	total := 0.0
	for _, q := range qs {
		p, err := opt.Plan(q)
		if err != nil {
			log.Fatal(err)
		}
		g, err := enc.Encode(p)
		if err != nil {
			log.Fatal(err)
		}
		total += m.Predict(g)
	}
	return total
}

// executeWorkload measures the simulated runtime of the workload with the
// index set actually materialized.
func executeWorkload(db *storage.Database, qs []*query.Query, idx optimizer.IndexSet) float64 {
	st := stats.Collect(db, stats.DefaultBuckets, stats.DefaultMCVs)
	opt := optimizer.New(db.Schema, st, idx, optimizer.DefaultCostParams())
	ex := engine.New(db, engine.Config{})
	sim := hwsim.New(hwsim.DefaultProfile(), 1)
	total := 0.0
	for _, q := range qs {
		p, err := opt.Plan(q)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := ex.Execute(p); err != nil {
			log.Fatal(err)
		}
		total += sim.RuntimeNoiseless(p)
	}
	return total
}
