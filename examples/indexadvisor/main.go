// Index advisor: the paper's Section 4.1 "What-If" mode. A zero-shot cost
// model trained on other databases (with and without random indexes)
// predicts how a workload's runtime on an UNSEEN database would change if
// a candidate index existed — and ranks the candidates without executing
// anything. The prediction side runs through the internal/whatif
// subsystem (the same sweep `zsdb advise` and POST /v1/whatif serve): the
// whole (candidate × query) cross product is priced in ONE fused batch.
// The example then verifies the ranking by actually building the indexes
// and executing the workload.
//
// Run with: go run ./examples/indexadvisor
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/zeroshot-db/zeroshot/internal/collect"
	"github.com/zeroshot-db/zeroshot/internal/costmodel"
	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/engine"
	"github.com/zeroshot-db/zeroshot/internal/hwsim"
	"github.com/zeroshot-db/zeroshot/internal/optimizer"
	"github.com/zeroshot-db/zeroshot/internal/query"
	"github.com/zeroshot-db/zeroshot/internal/stats"
	"github.com/zeroshot-db/zeroshot/internal/storage"
	"github.com/zeroshot-db/zeroshot/internal/whatif"
)

func main() {
	model := trainWhatIfModel()

	// The unseen database and a workload we want to speed up.
	db, err := datagen.IMDBLike(0.08)
	if err != nil {
		log.Fatal(err)
	}

	// Candidate indexes: FK join columns plus frequently filtered columns.
	candidates := []string{
		"movie_companies.movie_id",
		"cast_info.movie_id",
		"movie_info.movie_id",
		"movie_keyword.movie_id",
		"title.production_year",
		"movie_info_idx.rating",
	}

	// A tuning workload that actually touches the candidate columns: keep
	// generated queries that filter at least one candidate (an advisor is
	// always tuned for a concrete workload).
	workload := targetedWorkload(db, candidates, 40)

	// The what-if sweep: validate the candidates, overlay each as a
	// hypothetical variant on a copy-on-write catalog, and price every
	// (variant × query) pair in one fused prediction batch. Nothing here
	// executes a query or mutates the database.
	cands, err := whatif.Enumerate(db.Schema, workload, candidates, 0)
	if err != nil {
		log.Fatal(err)
	}
	variants := make([]whatif.Variant, len(cands))
	for i, c := range cands {
		variants[i] = whatif.Variant{Name: c.Index, Indexes: []string{c.Index}}
	}
	cat := whatif.NewCatalog(db, nil, optimizer.DefaultCostParams(), 0)
	rep, err := cat.Sweep(context.Background(), model, whatif.Statements(workload), variants)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("predicted workload runtime under each hypothetical index (what-if):")
	fmt.Printf("  %-32s predicted %8.2fs   actual %8.2fs\n",
		"(no index)", rep.Baseline.TotalSec, executeWorkload(db, workload, nil))
	for _, v := range rep.Variants {
		idx := optimizer.IndexSet{}
		for _, k := range v.Indexes {
			idx[k] = true
		}
		fmt.Printf("  %-32s predicted %8.2fs   actual %8.2fs\n",
			v.Name, v.TotalSec, executeWorkload(db, workload, idx))
	}
	if rep.Recommendation != "" {
		fmt.Printf("\nadvisor recommends: CREATE INDEX ON %s\n", rep.Recommendation)
	} else {
		fmt.Println("\nadvisor recommends: keep the baseline (no candidate helps)")
	}
	fmt.Println("(predictions come from a model that never saw this database)")
}

// targetedWorkload draws synthetic queries and keeps those filtering at
// least one candidate column.
func targetedWorkload(db *storage.Database, candidates []string, n int) []*query.Query {
	isCandidate := map[string]bool{}
	for _, c := range candidates {
		isCandidate[c] = true
	}
	gen := query.NewGenerator(db, query.GenConfig{
		MaxTables: 3, MaxFilters: 3, MaxAggregates: 1, RangeProb: 0.5,
	}, 777)
	var out []*query.Query
	for len(out) < n {
		qs, err := gen.Generate(50)
		if err != nil {
			log.Fatal(err)
		}
		for _, q := range qs {
			if len(out) >= n {
				break
			}
			for _, f := range q.Filters {
				if isCandidate[f.Col.String()] {
					out = append(out, q)
					break
				}
			}
		}
	}
	return out
}

// trainWhatIfModel trains a zero-shot estimator on plain and index
// workloads of three synthetic databases, so it learns how index scans
// change runtimes.
func trainWhatIfModel() costmodel.Estimator {
	corpus, err := datagen.TrainingCorpus(3, 21, datagen.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	var samples []costmodel.Sample
	for i, db := range corpus {
		for variant, idx := range map[int64]optimizer.IndexSet{
			0: nil,
			1: collect.RandomIndexes(db, int64(i+50), 0.8, 0.3),
		} {
			recs, err := collect.Run(db, collect.Options{
				Queries: 120,
				Seed:    int64(1000*(i+1)) + variant,
				Indexes: idx,
			})
			if err != nil {
				log.Fatal(err)
			}
			samples = append(samples, costmodel.FromRecords(db, recs)...)
		}
	}
	est, err := costmodel.New(costmodel.NameZeroShot, costmodel.Options{
		Hidden: 24, Epochs: 14, Seed: 1, Card: encoding.CardEstimated,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := est.Fit(context.Background(), samples); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained what-if model on %d plans from 3 other databases\n\n", len(samples))
	return est
}

// executeWorkload measures the simulated runtime of the workload with the
// index set actually materialized — the ground truth the what-if sweep's
// predictions are checked against.
func executeWorkload(db *storage.Database, qs []*query.Query, idx optimizer.IndexSet) float64 {
	st := stats.Collect(db, stats.DefaultBuckets, stats.DefaultMCVs)
	opt := optimizer.New(db.Schema, st, idx, optimizer.DefaultCostParams())
	ex := engine.New(db, engine.Config{})
	sim := hwsim.New(hwsim.DefaultProfile(), 1)
	total := 0.0
	for _, q := range qs {
		p, err := opt.Plan(q)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := ex.Execute(p); err != nil {
			log.Fatal(err)
		}
		total += sim.RuntimeNoiseless(p)
	}
	return total
}
