// Learned query optimization (Section 4.2 of the paper, the "naïve
// approach"): use the zero-shot cost model — trained on other databases —
// to evaluate candidate join subplans inside the optimizer's dynamic
// programming on an unseen database, and compare the resulting plans
// against the analytical cost model's plans by executing both.
//
// Run with: go run ./examples/joinorder
package main

import (
	"fmt"
	"log"

	"github.com/zeroshot-db/zeroshot/internal/collect"
	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/engine"
	"github.com/zeroshot-db/zeroshot/internal/hwsim"
	"github.com/zeroshot-db/zeroshot/internal/optimizer"
	"github.com/zeroshot-db/zeroshot/internal/plan"
	"github.com/zeroshot-db/zeroshot/internal/query"
	"github.com/zeroshot-db/zeroshot/internal/stats"
	"github.com/zeroshot-db/zeroshot/internal/zeroshot"
)

func main() {
	// Train the zero-shot cost model on other databases.
	corpus, err := datagen.TrainingCorpus(4, 17, datagen.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	var samples []zeroshot.Sample
	for i, db := range corpus {
		recs, err := collect.Run(db, collect.Options{Queries: 140, Seed: int64(900 * (i + 1))})
		if err != nil {
			log.Fatal(err)
		}
		enc := encoding.NewPlanEncoder(db.Schema, encoding.CardEstimated)
		for _, r := range recs {
			g, err := enc.Encode(r.Plan)
			if err != nil {
				log.Fatal(err)
			}
			samples = append(samples, zeroshot.Sample{Graph: g, RuntimeSec: r.RuntimeSec})
		}
	}
	cfg := zeroshot.DefaultConfig()
	cfg.Hidden = 24
	cfg.Epochs = 14
	model := zeroshot.New(cfg)
	if _, err := model.Train(samples); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained zero-shot cost model on %d plans\n\n", len(samples))

	// Unseen database, multi-join workload.
	db, err := datagen.IMDBLike(0.08)
	if err != nil {
		log.Fatal(err)
	}
	st := stats.Collect(db, stats.DefaultBuckets, stats.DefaultMCVs)
	opt := optimizer.New(db.Schema, st, nil, optimizer.DefaultCostParams())
	enc := encoding.NewPlanEncoder(db.Schema, encoding.CardEstimated)
	ex := engine.New(db, engine.Config{})
	sim := hwsim.New(hwsim.DefaultProfile(), 5)

	// Learned cost function for the DP: the model's predicted runtime of
	// the candidate subplan.
	learnedCost := func(n *plan.Node) float64 {
		g, err := enc.Encode(n)
		if err != nil {
			return 1e18
		}
		return model.Predict(g)
	}

	qs, err := query.JOBLight(db, 30, 2024)
	if err != nil {
		log.Fatal(err)
	}
	var analyticalTotal, guidedTotal float64
	differ := 0
	for _, q := range qs {
		if len(q.Tables) < 3 {
			continue // join ordering only matters with 3+ tables
		}
		pAnalytical, err := opt.Plan(q)
		if err != nil {
			log.Fatal(err)
		}
		pGuided, err := opt.PlanWith(q, learnedCost)
		if err != nil {
			log.Fatal(err)
		}
		if pAnalytical.Explain() != pGuided.Explain() {
			differ++
		}
		if _, err := ex.Execute(pAnalytical); err != nil {
			log.Fatal(err)
		}
		if _, err := ex.Execute(pGuided); err != nil {
			log.Fatal(err)
		}
		analyticalTotal += sim.RuntimeNoiseless(pAnalytical)
		guidedTotal += sim.RuntimeNoiseless(pGuided)
	}
	fmt.Printf("plans differing between analytical and learned cost: %d\n", differ)
	fmt.Printf("total workload runtime, analytical optimizer: %8.2fs\n", analyticalTotal)
	fmt.Printf("total workload runtime, zero-shot guided:     %8.2fs\n", guidedTotal)
	fmt.Println("\n(the learned model steers join ordering on a database it never saw;")
	fmt.Println(" with a well-calibrated analytical model both should be close)")
}
