// Quickstart: train a zero-shot cost model on a handful of synthetic
// databases through the costmodel Estimator API, then serve runtime
// predictions for a database the model has never seen — with no training
// queries on that database — through a serving.Session, the same
// pipeline `zsdb serve` hosts over HTTP.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/zeroshot-db/zeroshot/internal/collect"
	"github.com/zeroshot-db/zeroshot/internal/costmodel"
	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/metrics"
	"github.com/zeroshot-db/zeroshot/internal/serving"
)

func main() {
	ctx := context.Background()

	// 1. Training corpus: four synthetic databases with different schemas,
	//    sizes and data distributions (the paper trains on 19 real ones).
	corpus, err := datagen.TrainingCorpus(4, 7, datagen.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// 2. Learning phase: execute a random workload on each database. The
	//    estimator owns the transferable graph encoding — collected records
	//    go in as-is, with their database as featurization context. We
	//    train with estimated cardinalities because served queries are
	//    planned but never executed.
	var samples []costmodel.Sample
	for i, db := range corpus {
		recs, err := collect.Run(db, collect.Options{Queries: 150, Seed: int64(100 * (i + 1))})
		if err != nil {
			log.Fatal(err)
		}
		samples = append(samples, costmodel.FromRecords(db, recs)...)
		fmt.Printf("collected 150 training queries on %s (%d tables)\n",
			db.Schema.Name, len(db.Schema.Tables))
	}

	model, err := costmodel.New(costmodel.NameZeroShot, costmodel.Options{
		Hidden: 24, Epochs: 14, Card: encoding.CardEstimated,
	})
	if err != nil {
		log.Fatal(err)
	}
	report, err := model.Fit(ctx, samples)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained zero-shot model on %d plans; loss %.3f -> %.3f\n\n",
		report.Samples, report.EpochLoss[0], report.EpochLoss[len(report.EpochLoss)-1])

	// 3. Serving phase on an UNSEEN database: the SSB-like star schema was
	//    never part of training. Attach it (and the model) to a Session —
	//    the serving pipeline parses, plans and featurizes each SQL text,
	//    caches the plan by fingerprint, and micro-batches predictions.
	ssb, err := datagen.SSBLike(0.1)
	if err != nil {
		log.Fatal(err)
	}
	sess := serving.NewSession(serving.Config{})
	defer sess.Close()
	if err := sess.AttachDatabase("ssb", ssb); err != nil {
		log.Fatal(err)
	}
	if err := sess.AttachModel(model); err != nil {
		log.Fatal(err)
	}

	// Executed ground truth to compare against (the session itself never
	// executes anything).
	recs, err := collect.Run(ssb, collect.Options{Queries: 50, Seed: 4242})
	if err != nil {
		log.Fatal(err)
	}
	sqls := make([]string, len(recs))
	actuals := make([]float64, len(recs))
	for i, r := range recs {
		sqls[i] = r.Query.SQL()
		actuals[i] = r.RuntimeSec
	}
	res, err := sess.PredictBatch(ctx, "ssb", costmodel.NameZeroShot, sqls)
	if err != nil {
		log.Fatal(err)
	}
	preds := make([]float64, len(res.Items))
	for i, item := range res.Items {
		if item.Err != nil {
			log.Fatalf("statement %d: %v", i, item.Err)
		}
		preds[i] = item.RuntimeSec
		if i < 5 {
			fmt.Printf("  %-70.70s  predicted %7.3fs  actual %7.3fs  q-error %.2f\n",
				sqls[i], preds[i], actuals[i], metrics.QError(preds[i], actuals[i]))
		}
	}
	sum, err := metrics.Summarize(preds, actuals)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nzero-shot on unseen database %q: %v\n", ssb.Schema.Name, sum)
	fmt.Println("(no query was ever executed on this database for training)")

	// 4. Repeat one statement: the plan cache skips parse/optimize and the
	//    session reports the hit in its stats.
	if _, err := sess.Predict(ctx, "ssb", "", sqls[0]); err != nil {
		log.Fatal(err)
	}
	st := sess.Stats()
	for _, d := range st.Databases {
		fmt.Printf("plan cache on %s: %d hits / %d misses after %d requests\n",
			d.Database, d.PlanCache.Hits, d.PlanCache.Misses, st.Requests)
	}
}
