// Quickstart: train a zero-shot cost model on a handful of synthetic
// databases, then predict query runtimes on a database the model has never
// seen — with no training queries on that database.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/zeroshot-db/zeroshot/internal/collect"
	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/metrics"
	"github.com/zeroshot-db/zeroshot/internal/zeroshot"
)

func main() {
	// 1. Training corpus: four synthetic databases with different schemas,
	//    sizes and data distributions (the paper trains on 19 real ones).
	corpus, err := datagen.TrainingCorpus(4, 7, datagen.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// 2. Learning phase: execute a random workload on each database and
	//    encode the executed plans with the transferable graph encoding.
	var samples []zeroshot.Sample
	for i, db := range corpus {
		recs, err := collect.Run(db, collect.Options{Queries: 150, Seed: int64(100 * (i + 1))})
		if err != nil {
			log.Fatal(err)
		}
		enc := encoding.NewPlanEncoder(db.Schema, encoding.CardExact)
		for _, r := range recs {
			g, err := enc.Encode(r.Plan)
			if err != nil {
				log.Fatal(err)
			}
			samples = append(samples, zeroshot.Sample{Graph: g, RuntimeSec: r.RuntimeSec})
		}
		fmt.Printf("collected 150 training queries on %s (%d tables)\n",
			db.Schema.Name, len(db.Schema.Tables))
	}

	cfg := zeroshot.DefaultConfig()
	cfg.Hidden = 24
	cfg.Epochs = 14
	model := zeroshot.New(cfg)
	res, err := model.Train(samples)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained zero-shot model on %d plans; loss %.3f -> %.3f\n\n",
		len(samples), res.EpochLoss[0], res.EpochLoss[len(res.EpochLoss)-1])

	// 3. Zero-shot inference on an UNSEEN database: the SSB-like star
	//    schema was never part of training.
	ssb, err := datagen.SSBLike(0.1)
	if err != nil {
		log.Fatal(err)
	}
	recs, err := collect.Run(ssb, collect.Options{Queries: 50, Seed: 4242})
	if err != nil {
		log.Fatal(err)
	}
	enc := encoding.NewPlanEncoder(ssb.Schema, encoding.CardExact)
	var preds, actuals []float64
	for i, r := range recs {
		g, err := enc.Encode(r.Plan)
		if err != nil {
			log.Fatal(err)
		}
		pred := model.Predict(g)
		preds = append(preds, pred)
		actuals = append(actuals, r.RuntimeSec)
		if i < 5 {
			fmt.Printf("  %-70.70s  predicted %7.3fs  actual %7.3fs  q-error %.2f\n",
				r.Query.SQL(), pred, r.RuntimeSec, metrics.QError(pred, r.RuntimeSec))
		}
	}
	sum, err := metrics.Summarize(preds, actuals)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nzero-shot on unseen database %q: %v\n", ssb.Schema.Name, sum)
	fmt.Println("(no query was ever executed on this database for training)")
}
