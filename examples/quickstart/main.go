// Quickstart: train a zero-shot cost model on a handful of synthetic
// databases through the costmodel Estimator API, then batch-predict query
// runtimes on a database the model has never seen — with no training
// queries on that database.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/zeroshot-db/zeroshot/internal/collect"
	"github.com/zeroshot-db/zeroshot/internal/costmodel"
	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/metrics"
)

func main() {
	ctx := context.Background()

	// 1. Training corpus: four synthetic databases with different schemas,
	//    sizes and data distributions (the paper trains on 19 real ones).
	corpus, err := datagen.TrainingCorpus(4, 7, datagen.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// 2. Learning phase: execute a random workload on each database. The
	//    estimator owns the transferable graph encoding — collected records
	//    go in as-is, with their database as featurization context.
	var samples []costmodel.Sample
	for i, db := range corpus {
		recs, err := collect.Run(db, collect.Options{Queries: 150, Seed: int64(100 * (i + 1))})
		if err != nil {
			log.Fatal(err)
		}
		samples = append(samples, costmodel.FromRecords(db, recs)...)
		fmt.Printf("collected 150 training queries on %s (%d tables)\n",
			db.Schema.Name, len(db.Schema.Tables))
	}

	model, err := costmodel.New(costmodel.NameZeroShot, costmodel.Options{
		Hidden: 24, Epochs: 14, Card: encoding.CardExact,
	})
	if err != nil {
		log.Fatal(err)
	}
	report, err := model.Fit(ctx, samples)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained zero-shot model on %d plans; loss %.3f -> %.3f\n\n",
		report.Samples, report.EpochLoss[0], report.EpochLoss[len(report.EpochLoss)-1])

	// 3. Zero-shot inference on an UNSEEN database: the SSB-like star
	//    schema was never part of training. PredictBatch fans the forward
	//    passes out over all cores.
	ssb, err := datagen.SSBLike(0.1)
	if err != nil {
		log.Fatal(err)
	}
	recs, err := collect.Run(ssb, collect.Options{Queries: 50, Seed: 4242})
	if err != nil {
		log.Fatal(err)
	}
	evalSamples := costmodel.FromRecords(ssb, recs)
	preds, err := model.PredictBatch(ctx, costmodel.Inputs(evalSamples))
	if err != nil {
		log.Fatal(err)
	}
	actuals := make([]float64, len(recs))
	for i, r := range recs {
		actuals[i] = r.RuntimeSec
		if i < 5 {
			fmt.Printf("  %-70.70s  predicted %7.3fs  actual %7.3fs  q-error %.2f\n",
				r.Query.SQL(), preds[i], r.RuntimeSec, metrics.QError(preds[i], r.RuntimeSec))
		}
	}
	sum, err := metrics.Summarize(preds, actuals)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nzero-shot on unseen database %q: %v\n", ssb.Schema.Name, sum)
	fmt.Println("(no query was ever executed on this database for training)")
}
