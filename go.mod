module github.com/zeroshot-db/zeroshot

go 1.22
