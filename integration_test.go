package zeroshotdb_test

import (
	"bytes"
	"testing"

	"github.com/zeroshot-db/zeroshot/internal/collect"
	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/engine"
	"github.com/zeroshot-db/zeroshot/internal/hwsim"
	"github.com/zeroshot-db/zeroshot/internal/metrics"
	"github.com/zeroshot-db/zeroshot/internal/optimizer"
	"github.com/zeroshot-db/zeroshot/internal/sqlparse"
	"github.com/zeroshot-db/zeroshot/internal/stats"
	"github.com/zeroshot-db/zeroshot/internal/zeroshot"
)

// TestEndToEndPipeline drives the whole system through its public surface:
// generate databases, collect executed workloads, train a zero-shot model,
// save/load it, parse a SQL query on a never-seen database, plan it (with
// a hypothetical index), execute it, and compare the model's zero-shot
// prediction with the simulated runtime.
func TestEndToEndPipeline(t *testing.T) {
	// 1. Train across two synthetic databases.
	cfg := datagen.DefaultConfig()
	cfg.MaxRows = 10000
	corpus, err := datagen.TrainingCorpus(2, 5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var samples []zeroshot.Sample
	for i, db := range corpus {
		recs, err := collect.Run(db, collect.Options{Queries: 80, Seed: int64(10 + i)})
		if err != nil {
			t.Fatal(err)
		}
		enc := encoding.NewPlanEncoder(db.Schema, encoding.CardEstimated)
		for _, r := range recs {
			g, err := enc.Encode(r.Plan)
			if err != nil {
				t.Fatal(err)
			}
			samples = append(samples, zeroshot.Sample{Graph: g, RuntimeSec: r.RuntimeSec})
		}
	}
	mcfg := zeroshot.DefaultConfig()
	mcfg.Hidden = 16
	mcfg.Epochs = 8
	model := zeroshot.New(mcfg)
	if _, err := model.Train(samples); err != nil {
		t.Fatal(err)
	}

	// 2. Round-trip the model through serialization.
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	model, err = zeroshot.Load(&buf, mcfg)
	if err != nil {
		t.Fatal(err)
	}

	// 3. SQL on the unseen database, planned under a hypothetical index.
	imdb, err := datagen.IMDBLike(0.03)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sqlparse.Parse(`SELECT MIN(title.production_year) FROM movie_companies, title
		WHERE title.id = movie_companies.movie_id AND title.production_year > 100
		AND movie_companies.company_type_id = 2`, imdb.Schema)
	if err != nil {
		t.Fatal(err)
	}
	st := stats.Collect(imdb, stats.DefaultBuckets, stats.DefaultMCVs)
	idx := optimizer.IndexSet{optimizer.Key("title", "production_year"): true}
	opt := optimizer.New(imdb.Schema, st, idx, optimizer.DefaultCostParams())
	p, err := opt.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.New(imdb, engine.Config{}).Execute(p); err != nil {
		t.Fatal(err)
	}
	actual := hwsim.New(hwsim.DefaultProfile(), 1).RuntimeNoiseless(p)

	enc := encoding.NewPlanEncoder(imdb.Schema, encoding.CardEstimated)
	g, err := enc.Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	pred := model.Predict(g)
	if pred <= 0 {
		t.Fatalf("prediction %v", pred)
	}
	q2 := metrics.QError(pred, actual)
	t.Logf("end-to-end: predicted %.3fs, simulated %.3fs, q-error %.2f", pred, actual, q2)
	// A tiny model on a never-seen database with a what-if index: demand
	// only a sane order of magnitude.
	if q2 > 30 {
		t.Fatalf("end-to-end q-error %.2f out of bounds", q2)
	}
}
