// Package adapt closes the loop between serving and training: it turns
// runtimes observed at serve time into continuously adapted cost models
// with no downtime — the online, production-shaped version of the
// paper's few-shot mode (Section 4.3), which the experiment harness only
// reproduces as an offline sweep.
//
// A Loop sits between a serving.Session and the costmodel estimator
// attached to it, and runs four mechanisms:
//
//  1. Feedback ingestion. POST /v1/feedback hands the Loop a (database,
//     fingerprint, actual runtime) triple. The fingerprint joins against
//     the session plan cache's retained PlanInput, producing a
//     costmodel.Sample that lands in a bounded per-database ring buffer.
//  2. Drift detection. Each feedback's q-error (the serving generation's
//     prediction vs. the observed runtime) feeds a sliding
//     metrics.Window; an adaptation triggers when the window's p50/p95
//     exceed configured thresholds, or when enough fresh samples pile up
//     regardless of drift.
//  3. Background fine-tuning. A triggered database snapshots its buffer
//     (consumed only once the cycle completes — a failed cycle keeps the
//     evidence); the worker clones the serving estimator
//     (costmodel.Cloner — Fit and FineTune must never run concurrently
//     with inference, so the attached generation is never touched),
//     fine-tunes the clone at a reduced learning rate, and
//     shadow-evaluates old vs. new on a holdout slice of the drained
//     window. Only if the clone's median
//     q-error improves is it published through Session.AttachModel —
//     the scheduler resolves generations at flush time, so the swap is
//     a hot one. Otherwise the clone is discarded and the database backs
//     off before retrying.
//  4. Observability. Status snapshots the windows, swap counters and the
//     last shadow-eval verdict — the body of GET /v1/adapt/status.
//
// Feedback may arrive from any number of goroutines; one background
// worker (Start/Close) sweeps the windows, or callers drive Sweep
// synchronously (the online-adaptation experiment does).
package adapt

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/zeroshot-db/zeroshot/internal/costmodel"
	"github.com/zeroshot-db/zeroshot/internal/metrics"
	"github.com/zeroshot-db/zeroshot/internal/obs"
	"github.com/zeroshot-db/zeroshot/internal/serving"
)

// ErrNoPlan marks a feedback whose fingerprint has no retained plan —
// the prediction was never made here, or its cache entry was evicted.
var ErrNoPlan = errors.New("adapt: no cached plan for fingerprint")

// Config sizes a Loop. Zero values select the defaults.
type Config struct {
	// Model names the estimator to adapt. It must be attached to the
	// session and implement costmodel.Cloner and costmodel.FineTuner
	// (checked at New).
	Model string
	// WindowSize bounds each database's feedback ring buffer (default
	// 256). When the buffer is full, the oldest sample is overwritten.
	WindowSize int
	// MinSamples is the fewest buffered samples an adaptation will
	// fine-tune on (default 32): below it, even a drifting window waits
	// for more evidence.
	MinSamples int
	// FreshTrigger forces an adaptation once this many samples are
	// buffered even without drift (default WindowSize) — steady feedback
	// on a well-predicted database still refreshes the model eventually.
	FreshTrigger int
	// DriftMedian and DriftP95 are the sliding-window q-error thresholds
	// that trip an adaptation (defaults 1.5 and 3.0).
	DriftMedian float64
	DriftP95    float64
	// HoldoutEvery holds out every k-th buffered sample from fine-tuning
	// for the shadow evaluation (default 4, i.e. a 25% holdout).
	HoldoutEvery int
	// Epochs and LR shape the fine-tune (defaults 8 epochs; LR 0 keeps
	// the adapter's reduced-rate default).
	Epochs int
	LR     float64
	// Interval is the background worker's sweep period (default 500ms).
	Interval time.Duration
	// Backoff is how long a database sits out after a rejected swap
	// (default 30s) — a fine-tune that made things worse should not
	// immediately burn CPU trying again on similar data.
	Backoff time.Duration
	// OnAccept, when set, fires after every accepted hot-swap with the
	// published clone, the shadow-eval verdict that accepted it, and the
	// size of the drained window it fine-tuned on. This is the bundle
	// publisher's hook: an accepted adaptation becomes a fleet-wide
	// bundle revision. The callback runs on the sweep goroutine after
	// the swap is already live — it must not block for long, and its
	// failures are its own to record (a publish error must not undo a
	// locally accepted swap).
	OnAccept func(ctx context.Context, est costmodel.Estimator, eval ShadowEval, samples int)
	// Events, when non-nil, receives the loop's control-plane decisions
	// (drift triggers, swap accepts/rejects) with Origin as the
	// recording origin (e.g. the replica name). Nil disables.
	Events *obs.Log
	Origin string
}

func (c Config) withDefaults() Config {
	if c.WindowSize <= 0 {
		c.WindowSize = 256
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 32
	}
	if c.MinSamples > c.WindowSize {
		c.MinSamples = c.WindowSize
	}
	if c.FreshTrigger <= 0 || c.FreshTrigger > c.WindowSize {
		c.FreshTrigger = c.WindowSize
	}
	if c.DriftMedian <= 0 {
		c.DriftMedian = 1.5
	}
	if c.DriftP95 <= 0 {
		c.DriftP95 = 3.0
	}
	if c.HoldoutEvery <= 1 {
		c.HoldoutEvery = 4
	}
	// A drained window must always split into a non-empty train and
	// holdout: with n >= HoldoutEvery >= 2, split yields at least one of
	// each.
	if c.MinSamples < c.HoldoutEvery {
		c.MinSamples = c.HoldoutEvery
	}
	if c.Epochs <= 0 {
		c.Epochs = 8
	}
	if c.Interval <= 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.Backoff <= 0 {
		c.Backoff = 30 * time.Second
	}
	return c
}

// dbWindow is one database's bounded feedback buffer plus its drift
// monitor. Samples form a ring (oldest overwritten when full); the
// q-error Window slides alongside and resets on drain so post-swap drift
// is measured against the new generation.
type dbWindow struct {
	samples []costmodel.Sample
	next    int
	filled  int
	total   int64
	qerr    *metrics.Window
	backoff time.Time
	// rejections counts this database's shadow-eval rejections — the
	// signal that separates "no drift" from "drifting but every
	// candidate got rejected".
	rejections int64
}

func (w *dbWindow) add(s costmodel.Sample, q float64) {
	w.samples[w.next] = s
	w.next = (w.next + 1) % len(w.samples)
	if w.filled < len(w.samples) {
		w.filled++
	}
	w.total++
	w.qerr.Observe(q)
}

// contents returns the buffered samples in insertion order, without
// consuming them — the buffer is only consumed (dropOldest) once an
// adaptation cycle over the snapshot completes, so a failed cycle
// cannot evaporate a window of joined feedback.
func (w *dbWindow) contents() []costmodel.Sample {
	out := make([]costmodel.Sample, 0, w.filled)
	start := w.next - w.filled
	for i := 0; i < w.filled; i++ {
		out = append(out, w.samples[(start+i+len(w.samples))%len(w.samples)])
	}
	return out
}

// consume drops the snapshotted samples still buffered after an
// adaptation cycle and resets the drift window — post-cycle drift is
// measured against the current generation. arrived counts the feedback
// ingested since the snapshot: those samples first fill the ring's free
// space and then overwrite the oldest (snapshotted) entries, so only
// the snapshot's survivors are dropped — feedback that raced the
// fine-tune always stays buffered.
func (w *dbWindow) consume(snapLen, arrived int) {
	overwritten := arrived - (len(w.samples) - snapLen)
	if overwritten < 0 {
		overwritten = 0
	}
	if overwritten > snapLen {
		overwritten = snapLen
	}
	n := snapLen - overwritten
	if n > w.filled {
		n = w.filled
	}
	w.filled -= n
	w.qerr.Reset()
}

// Loop is the continuous-adaptation controller for one model over all of
// a session's databases. Safe for concurrent use.
type Loop struct {
	cfg  Config
	sess *serving.Session

	mu      sync.Mutex
	windows map[string]*dbWindow
	lastErr string

	// sweepMu serializes adaptation cycles: the background worker and
	// explicit Sweep callers must not fine-tune concurrently.
	sweepMu sync.Mutex

	feedback   metrics.Counter
	joinMisses metrics.Counter
	sweeps     metrics.Counter
	accepted   metrics.Counter
	rejected   metrics.Counter

	shadowMu   sync.Mutex
	lastShadow *ShadowEval
	// lastRejected survives later accepts: lastShadow always shows the
	// most recent verdict of either kind, lastRejected pins the most
	// recent rejection so an operator can still see what was refused and
	// by how much after a subsequent swap lands.
	lastRejected *ShadowEval
	lastSwap     time.Time
	// Fine-tune telemetry (guarded by shadowMu): when the most recent
	// background fine-tune ran, how long it took, its training
	// throughput, and the tail of its epoch-loss curve.
	lastFineTune time.Time
	ftWall       time.Duration
	ftRate       float64
	ftLossTail   []float64

	// bgCtx cancels the background worker's in-flight adaptation cycle
	// on Close, so a long fine-tune aborts at the next minibatch
	// boundary instead of pinning shutdown.
	bgCtx    context.Context
	bgCancel context.CancelFunc

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// New validates that the configured model is attached and adaptable
// (Cloner + FineTuner) and returns a Loop. The worker is not running
// yet: call Start for the background loop, or drive Sweep directly.
func New(sess *serving.Session, cfg Config) (*Loop, error) {
	if sess == nil {
		return nil, fmt.Errorf("adapt: New needs a session")
	}
	cfg = cfg.withDefaults()
	est, err := sess.Model(cfg.Model)
	if err != nil {
		return nil, fmt.Errorf("adapt: %w", err)
	}
	if _, ok := est.(costmodel.Cloner); !ok {
		return nil, fmt.Errorf("adapt: model %q cannot be adapted online: no Clone support", est.Name())
	}
	if _, ok := est.(costmodel.FineTuner); !ok {
		return nil, fmt.Errorf("adapt: model %q cannot be adapted online: no FineTune support", est.Name())
	}
	if cfg.Model == "" {
		// Pin the resolved name so later lookups stay unambiguous even if
		// more models attach.
		cfg.Model = est.Name()
	}
	bgCtx, bgCancel := context.WithCancel(context.Background())
	return &Loop{
		cfg:      cfg,
		sess:     sess,
		windows:  map[string]*dbWindow{},
		bgCtx:    bgCtx,
		bgCancel: bgCancel,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}, nil
}

// Feedback ingests one observed runtime: the fingerprint joins against
// the database's retained plan, the serving generation's prediction
// yields the q-error for the drift monitor, and the (plan, runtime) pair
// is buffered as a fine-tuning sample.
func (l *Loop) Feedback(ctx context.Context, db, fingerprint string, actualSec float64) error {
	if actualSec <= 0 {
		return fmt.Errorf("adapt: actual runtime must be positive, got %v", actualSec)
	}
	if fingerprint == "" {
		return fmt.Errorf("adapt: feedback needs a fingerprint")
	}
	in, ok, err := l.sess.CachedPlan(db, fingerprint)
	if err != nil {
		return err
	}
	if !ok {
		l.joinMisses.Inc()
		return fmt.Errorf("%w: %q on %q (predict it first, or its cache entry was evicted)", ErrNoPlan, fingerprint, db)
	}
	est, err := l.sess.Model(l.cfg.Model)
	if err != nil {
		return err
	}
	pred, err := est.Predict(ctx, in)
	if err != nil {
		return err
	}
	q := metrics.QError(pred, actualSec)
	l.mu.Lock()
	w := l.windows[db]
	if w == nil {
		w = &dbWindow{
			samples: make([]costmodel.Sample, l.cfg.WindowSize),
			qerr:    metrics.NewWindow(l.cfg.WindowSize),
		}
		l.windows[db] = w
	}
	w.add(costmodel.Sample{PlanInput: in, RuntimeSec: actualSec}, q)
	l.mu.Unlock()
	l.feedback.Inc()
	return nil
}

// triggered reports whether a window should adapt now; callers hold l.mu.
func (l *Loop) triggered(w *dbWindow, now time.Time) bool {
	if now.Before(w.backoff) || w.filled < l.cfg.MinSamples {
		return false
	}
	if w.filled >= l.cfg.FreshTrigger {
		return true
	}
	s := w.qerr.Snapshot()
	return s.P50 >= l.cfg.DriftMedian || s.P95 >= l.cfg.DriftP95
}

// Sweep runs one adaptation cycle: every database whose window has
// tripped drains its buffer and fine-tunes. It returns how many swaps
// were accepted and rejected. Sweeps serialize — concurrent callers
// queue behind the in-flight cycle.
func (l *Loop) Sweep(ctx context.Context) (accepted, rejected int) {
	l.sweepMu.Lock()
	defer l.sweepMu.Unlock()
	l.sweeps.Inc()
	now := time.Now()
	type snapshot struct {
		db      string
		samples []costmodel.Sample
		total   int64 // w.total at snapshot time, to count mid-cycle arrivals
	}
	var work []snapshot
	l.mu.Lock()
	for db, w := range l.windows {
		if l.triggered(w, now) {
			work = append(work, snapshot{db: db, samples: w.contents(), total: w.total})
		}
	}
	l.mu.Unlock()
	for _, d := range work {
		l.cfg.Events.Record(obs.EventDriftTriggered, l.cfg.Origin, map[string]string{
			"db": d.db, "model": l.cfg.Model, "samples": strconv.Itoa(len(d.samples)),
		})
	}
	var sweepErrs []string
	for _, d := range work {
		ok, err := l.adaptOne(ctx, d.db, d.samples)
		l.mu.Lock()
		w := l.windows[d.db]
		switch {
		case err != nil:
			// The cycle failed (not a rejection): the buffer is untouched
			// — the evidence survives — and the database backs off so a
			// persistent failure cannot hot-loop.
			sweepErrs = append(sweepErrs, fmt.Sprintf("%s: %v", d.db, err))
			if w != nil {
				w.backoff = time.Now().Add(l.cfg.Backoff)
			}
		default:
			if w != nil {
				w.consume(len(d.samples), int(w.total-d.total))
				if !ok {
					// Rejected by the shadow eval: similar data would
					// fine-tune to a similar rejection — sit out, and
					// count the rejection against this database.
					w.backoff = time.Now().Add(l.cfg.Backoff)
					w.rejections++
				}
			}
		}
		l.mu.Unlock()
		if err != nil {
			continue
		}
		if ok {
			accepted++
		} else {
			rejected++
		}
	}
	if len(work) > 0 {
		// One verdict per sweep that attempted anything: the joined
		// failures, or a clean slate — a success on one database must not
		// erase another's failure from the same sweep.
		l.mu.Lock()
		l.lastErr = strings.Join(sweepErrs, "; ")
		l.mu.Unlock()
	}
	return accepted, rejected
}

// adaptOne fine-tunes a clone on one database's drained window and
// publishes it only if it beats the serving generation on the holdout.
func (l *Loop) adaptOne(ctx context.Context, db string, samples []costmodel.Sample) (bool, error) {
	est, err := l.sess.Model(l.cfg.Model)
	if err != nil {
		return false, err
	}
	train, holdout := split(samples, l.cfg.HoldoutEvery)
	if len(train) == 0 || len(holdout) == 0 {
		return false, fmt.Errorf("window of %d cannot split train/holdout", len(samples))
	}
	clone, err := est.(costmodel.Cloner).Clone()
	if err != nil {
		return false, err
	}
	l.cfg.Events.Record(obs.EventFineTuneStarted, l.cfg.Origin, map[string]string{
		"db": db, "model": l.cfg.Model, "samples": strconv.Itoa(len(train)),
	})
	ftStart := time.Now()
	report, err := clone.(costmodel.FineTuner).FineTune(ctx, train, l.cfg.Epochs, l.cfg.LR)
	ftWall := time.Since(ftStart)
	if err != nil {
		return false, err
	}
	// Prefer the estimator's own wall-time/throughput (the training loop
	// measured without the encode stage) and fall back to the measured
	// envelope for estimators that don't report it.
	if report.WallTime > 0 {
		ftWall = report.WallTime
	}
	ftRate := report.SamplesPerSec
	if ftRate == 0 && ftWall > 0 {
		ftRate = float64(len(train)*l.cfg.Epochs) / ftWall.Seconds()
	}
	lossTail := report.EpochLoss
	if len(lossTail) > 3 {
		lossTail = lossTail[len(lossTail)-3:]
	}
	ftFields := map[string]string{
		"db":              db,
		"model":           l.cfg.Model,
		"samples":         strconv.Itoa(len(train)),
		"duration_ms":     strconv.FormatInt(ftWall.Milliseconds(), 10),
		"samples_per_sec": strconv.FormatFloat(ftRate, 'f', 0, 64),
	}
	for i, v := range lossTail {
		ftFields[fmt.Sprintf("loss_tail_%d", i)] = strconv.FormatFloat(v, 'g', 4, 64)
	}
	l.cfg.Events.Record(obs.EventFineTuneFinished, l.cfg.Origin, ftFields)
	l.shadowMu.Lock()
	l.lastFineTune = ftStart
	l.ftWall = ftWall
	l.ftRate = ftRate
	l.ftLossTail = append([]float64(nil), lossTail...)
	l.shadowMu.Unlock()
	oldMed, err := medianQError(ctx, est, holdout)
	if err != nil {
		return false, err
	}
	newMed, err := medianQError(ctx, clone, holdout)
	if err != nil {
		return false, err
	}
	eval := &ShadowEval{
		Database:  db,
		OldMedian: oldMed,
		NewMedian: newMed,
		Holdout:   len(holdout),
		Accepted:  newMed < oldMed,
		At:        time.Now(),
	}
	if eval.Accepted {
		if err := l.sess.AttachModel(clone); err != nil {
			return false, err
		}
		l.accepted.Inc()
	} else {
		l.rejected.Inc()
	}
	typ := obs.EventSwapRejected
	if eval.Accepted {
		typ = obs.EventSwapAccepted
	}
	l.cfg.Events.Record(typ, l.cfg.Origin, map[string]string{
		"db":         db,
		"model":      l.cfg.Model,
		"old_median": strconv.FormatFloat(oldMed, 'g', 4, 64),
		"new_median": strconv.FormatFloat(newMed, 'g', 4, 64),
	})
	l.shadowMu.Lock()
	if eval.Accepted {
		l.lastSwap = eval.At
	} else {
		c := *eval
		l.lastRejected = &c
	}
	l.lastShadow = eval
	l.shadowMu.Unlock()
	if eval.Accepted && l.cfg.OnAccept != nil {
		l.cfg.OnAccept(ctx, clone, *eval, len(samples))
	}
	return eval.Accepted, nil
}

// split carves every k-th sample out as the holdout, the rest as the
// fine-tuning set. Deterministic, so a rejected swap and its retry see
// the same partition of identical data.
func split(samples []costmodel.Sample, k int) (train, holdout []costmodel.Sample) {
	for i, s := range samples {
		if (i+1)%k == 0 {
			holdout = append(holdout, s)
		} else {
			train = append(train, s)
		}
	}
	return train, holdout
}

// medianQError shadow-evaluates one estimator on a holdout slice. The
// whole holdout drains through PredictBatch, so a fusing estimator
// (costmodel.Fused) prices it in one fused forward pass — background
// shadow evaluation steals as little serving CPU as possible.
func medianQError(ctx context.Context, est costmodel.Estimator, holdout []costmodel.Sample) (float64, error) {
	preds, err := est.PredictBatch(ctx, costmodel.Inputs(holdout))
	if err != nil {
		return 0, err
	}
	qs := make([]float64, len(preds))
	for i, p := range preds {
		qs[i] = metrics.QError(p, holdout[i].RuntimeSec)
	}
	return metrics.Median(qs), nil
}

// Start launches the background worker that sweeps windows every
// Interval. Idempotent; pair with Close.
func (l *Loop) Start() {
	l.startOnce.Do(func() {
		go func() {
			defer close(l.done)
			t := time.NewTicker(l.cfg.Interval)
			defer t.Stop()
			for {
				select {
				case <-l.stop:
					return
				case <-t.C:
					l.Sweep(l.bgCtx)
				}
			}
		}()
	})
}

// Close stops the background worker and waits for any in-flight
// adaptation cycle to finish; the cycle's fine-tune is canceled and
// aborts at its next minibatch boundary, so a drain never waits out a
// full training run. Safe to call without Start and idempotent.
func (l *Loop) Close() {
	l.stopOnce.Do(func() {
		l.bgCancel()
		close(l.stop)
	})
	l.startOnce.Do(func() { close(l.done) }) // never started: unblock the wait
	<-l.done
}

// ShadowEval is one old-vs-new holdout comparison — the verdict that
// accepted or rejected a fine-tuned clone.
type ShadowEval struct {
	Database  string    `json:"db"`
	OldMedian float64   `json:"old_median_qerror"`
	NewMedian float64   `json:"new_median_qerror"`
	Holdout   int       `json:"holdout"`
	Accepted  bool      `json:"accepted"`
	At        time.Time `json:"at"`
}

// WindowStatus is one database's feedback-window view.
type WindowStatus struct {
	Database string `json:"db"`
	// Total counts every feedback ever ingested for this database;
	// Pending is the currently buffered (not yet drained) sample count.
	Total   int64 `json:"feedback_total"`
	Pending int   `json:"pending"`
	// QError summarizes the sliding drift window (since the last drain).
	QError metrics.WindowSummary `json:"qerror"`
	// Rejections counts shadow-eval rejections for this database: a
	// drifting window with a climbing rejection count means candidates
	// are being produced but none beat the serving generation.
	Rejections int64 `json:"rejections"`
	// InBackoff reports the database is sitting out after a rejected
	// swap.
	InBackoff bool `json:"in_backoff"`
}

// Status is the observability snapshot behind GET /v1/adapt/status.
type Status struct {
	Model         string    `json:"model"`
	Feedback      int64     `json:"feedback"`
	JoinMisses    int64     `json:"join_misses"`
	Sweeps        int64     `json:"sweeps"`
	SwapsAccepted int64     `json:"swaps_accepted"`
	SwapsRejected int64     `json:"swaps_rejected"`
	LastSwap      time.Time `json:"last_swap"`
	// LastFineTune* surface the most recent background fine-tune — when
	// it started, its wall-clock duration, its training throughput, and
	// the tail of its epoch-loss curve — so an operator can see how
	// stale the served model can get during drift without grepping logs.
	LastFineTune          time.Time   `json:"last_finetune,omitempty"`
	LastFineTuneSec       float64     `json:"last_finetune_sec,omitempty"`
	FineTuneSamplesPerSec float64     `json:"finetune_samples_per_sec,omitempty"`
	LastFineTuneLossTail  []float64   `json:"last_finetune_loss_tail,omitempty"`
	LastShadow            *ShadowEval `json:"last_shadow,omitempty"`
	// LastRejected is the most recent rejected verdict, kept even after
	// later accepted swaps overwrite LastShadow.
	LastRejected *ShadowEval    `json:"last_rejected,omitempty"`
	LastError    string         `json:"last_error,omitempty"`
	Windows      []WindowStatus `json:"windows,omitempty"`
}

// Status snapshots the loop.
func (l *Loop) Status() Status {
	st := Status{
		Model:         l.cfg.Model,
		Feedback:      l.feedback.Value(),
		JoinMisses:    l.joinMisses.Value(),
		Sweeps:        l.sweeps.Value(),
		SwapsAccepted: l.accepted.Value(),
		SwapsRejected: l.rejected.Value(),
	}
	l.shadowMu.Lock()
	st.LastSwap = l.lastSwap
	st.LastFineTune = l.lastFineTune
	st.LastFineTuneSec = l.ftWall.Seconds()
	st.FineTuneSamplesPerSec = l.ftRate
	st.LastFineTuneLossTail = append([]float64(nil), l.ftLossTail...)
	if l.lastShadow != nil {
		c := *l.lastShadow
		st.LastShadow = &c
	}
	if l.lastRejected != nil {
		c := *l.lastRejected
		st.LastRejected = &c
	}
	l.shadowMu.Unlock()
	now := time.Now()
	l.mu.Lock()
	st.LastError = l.lastErr
	for db, w := range l.windows {
		st.Windows = append(st.Windows, WindowStatus{
			Database:   db,
			Total:      w.total,
			Pending:    w.filled,
			QError:     w.qerr.Snapshot(),
			Rejections: w.rejections,
			InBackoff:  now.Before(w.backoff),
		})
	}
	l.mu.Unlock()
	sort.Slice(st.Windows, func(i, j int) bool { return st.Windows[i].Database < st.Windows[j].Database })
	return st
}
