package adapt

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/zeroshot-db/zeroshot/internal/collect"
	"github.com/zeroshot-db/zeroshot/internal/costmodel"
	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/metrics"
	"github.com/zeroshot-db/zeroshot/internal/obs"
	"github.com/zeroshot-db/zeroshot/internal/serving"
	"github.com/zeroshot-db/zeroshot/internal/storage"
)

// truthRuntime is the simulated target database's "real" runtime: a
// fixed function of the optimizer cost. Tests feed it back as the
// observed runtime, so an estimator's calibration error is exactly its
// q-error and improvements are deterministic.
func truthRuntime(optimizerCost float64) float64 {
	return 1e-6 * (optimizerCost + 1)
}

// tunableEstimator predicts scale*truthRuntime(cost): a multiplicatively
// miscalibrated model whose q-error is exactly scale (for scale >= 1).
// tune defines what FineTune does to the scale — fit it properly (the
// accepted-swap path) or make it worse (the rejected-swap path).
type tunableEstimator struct {
	name  string
	scale float64
	tune  func(e *tunableEstimator, samples []costmodel.Sample) error
}

func (e *tunableEstimator) Name() string { return e.name }

func (e *tunableEstimator) Fit(ctx context.Context, samples []costmodel.Sample) (*costmodel.FitReport, error) {
	return &costmodel.FitReport{Samples: len(samples)}, nil
}

func (e *tunableEstimator) Predict(ctx context.Context, in costmodel.PlanInput) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return e.scale * truthRuntime(in.OptimizerCost), nil
}

func (e *tunableEstimator) PredictBatch(ctx context.Context, ins []costmodel.PlanInput) ([]float64, error) {
	out := make([]float64, len(ins))
	for i, in := range ins {
		v, err := e.Predict(ctx, in)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func (e *tunableEstimator) Save(w io.Writer) error { return nil }

func (e *tunableEstimator) Clone() (costmodel.Estimator, error) {
	return &tunableEstimator{name: e.name, scale: e.scale, tune: e.tune}, nil
}

func (e *tunableEstimator) FineTune(ctx context.Context, samples []costmodel.Sample, epochs int, lr float64) (*costmodel.FitReport, error) {
	if e.tune != nil {
		if err := e.tune(e, samples); err != nil {
			return nil, err
		}
	}
	return &costmodel.FitReport{Samples: len(samples)}, nil
}

// goodTune recalibrates the scale from the samples: the median ratio of
// observed runtime to the truth function — 1.0 when feedback follows
// truthRuntime, i.e. a genuinely better model.
func goodTune(e *tunableEstimator, samples []costmodel.Sample) error {
	ratios := make([]float64, len(samples))
	for i, s := range samples {
		ratios[i] = s.RuntimeSec / truthRuntime(s.OptimizerCost)
	}
	e.scale = metrics.Median(ratios)
	return nil
}

// badTune makes the clone strictly worse — the shadow eval must catch it.
func badTune(e *tunableEstimator, samples []costmodel.Sample) error {
	e.scale *= 5
	return nil
}

// failTune simulates a broken fine-tune — the cycle must fail without
// losing the window's evidence.
func failTune(e *tunableEstimator, samples []costmodel.Sample) error {
	return fmt.Errorf("injected fine-tune failure")
}

// fixture is one generated "unseen" database plus executable SQL texts.
var (
	fixOnce sync.Once
	fixDB   *storage.Database
	fixSQLs []string
	fixErr  error
)

func fixtures(t *testing.T) (*storage.Database, []string) {
	t.Helper()
	fixOnce.Do(func() {
		db, err := datagen.IMDBLike(0.05)
		if err != nil {
			fixErr = err
			return
		}
		recs, err := collect.Run(db, collect.Options{Queries: 16, Seed: 31})
		if err != nil {
			fixErr = err
			return
		}
		fixDB = db
		for _, r := range recs {
			fixSQLs = append(fixSQLs, r.Query.SQL())
		}
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixDB, fixSQLs
}

// newAdaptSession attaches the fixture database and the given estimator.
func newAdaptSession(t *testing.T, est costmodel.Estimator) *serving.Session {
	t.Helper()
	db, _ := fixtures(t)
	sess := serving.NewSession(serving.Config{})
	if err := sess.AttachDatabase("target", db); err != nil {
		t.Fatal(err)
	}
	if err := sess.AttachModel(est); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sess.Close() })
	return sess
}

// predictAndFeedbackDB runs one statement through the pipeline against
// the named database and feeds its truth runtime back.
func predictAndFeedbackDB(ctx context.Context, sess *serving.Session, loop *Loop, db, sql string) error {
	p, err := sess.Predict(ctx, db, "", sql)
	if err != nil {
		return fmt.Errorf("predict: %w", err)
	}
	if err := loop.Feedback(ctx, db, p.Fingerprint, truthRuntime(p.OptimizerCost)); err != nil {
		return fmt.Errorf("feedback: %w", err)
	}
	return nil
}

func predictAndFeedback(ctx context.Context, sess *serving.Session, loop *Loop, sql string) error {
	return predictAndFeedbackDB(ctx, sess, loop, "target", sql)
}

func TestNewValidatesModelCapabilities(t *testing.T) {
	db, _ := fixtures(t)
	sess := serving.NewSession(serving.Config{})
	defer sess.Close()
	if err := sess.AttachDatabase("target", db); err != nil {
		t.Fatal(err)
	}
	if _, err := New(sess, Config{Model: "nope"}); !errors.Is(err, serving.ErrNotFound) {
		t.Fatalf("unattached model err = %v, want ErrNotFound", err)
	}
	// ScaledCost has neither Clone nor FineTune.
	sc, err := costmodel.New(costmodel.NameScaledCost, costmodel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.AttachModel(sc); err != nil {
		t.Fatal(err)
	}
	if _, err := New(sess, Config{Model: costmodel.NameScaledCost}); err == nil {
		t.Fatal("New accepted an estimator without Clone/FineTune support")
	}
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("New accepted a nil session")
	}
}

func TestNewResolvesUnambiguousModel(t *testing.T) {
	est := &tunableEstimator{name: "tunable", scale: 2, tune: goodTune}
	sess := newAdaptSession(t, est)
	loop, err := New(sess, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := loop.Status().Model; got != "tunable" {
		t.Fatalf("resolved model = %q, want tunable", got)
	}
}

func TestFeedbackJoinAndValidation(t *testing.T) {
	est := &tunableEstimator{name: "tunable", scale: 2, tune: goodTune}
	sess := newAdaptSession(t, est)
	loop, err := New(sess, Config{Model: "tunable"})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	_, sqls := fixtures(t)

	if err := loop.Feedback(ctx, "target", "no-such-fingerprint", 0.5); !errors.Is(err, ErrNoPlan) {
		t.Fatalf("unjoined feedback err = %v, want ErrNoPlan", err)
	}
	if err := loop.Feedback(ctx, "nope", "fp", 0.5); !errors.Is(err, serving.ErrNotFound) {
		t.Fatalf("unknown db err = %v, want ErrNotFound", err)
	}
	if err := loop.Feedback(ctx, "target", "fp", 0); err == nil {
		t.Fatal("non-positive runtime accepted")
	}
	if err := loop.Feedback(ctx, "target", "", 0.5); err == nil {
		t.Fatal("empty fingerprint accepted")
	}
	if err := predictAndFeedback(ctx, sess, loop, sqls[0]); err != nil {
		t.Fatal(err)
	}
	st := loop.Status()
	if st.Feedback != 1 || st.JoinMisses != 1 {
		t.Fatalf("status = %+v, want 1 feedback / 1 join miss", st)
	}
	if len(st.Windows) != 1 || st.Windows[0].Pending != 1 || st.Windows[0].Database != "target" {
		t.Fatalf("windows = %+v", st.Windows)
	}
	// scale 2 ⇒ q-error exactly 2 in the drift window.
	if q := st.Windows[0].QError.P50; q < 1.99 || q > 2.01 {
		t.Fatalf("window p50 q-error = %v, want 2", q)
	}
}

func TestSplit(t *testing.T) {
	samples := make([]costmodel.Sample, 10)
	for i := range samples {
		samples[i].RuntimeSec = float64(i)
	}
	train, holdout := split(samples, 4)
	if len(train) != 8 || len(holdout) != 2 {
		t.Fatalf("split = %d train / %d holdout, want 8/2", len(train), len(holdout))
	}
	if holdout[0].RuntimeSec != 3 || holdout[1].RuntimeSec != 7 {
		t.Fatalf("holdout picked %v/%v, want every 4th sample", holdout[0].RuntimeSec, holdout[1].RuntimeSec)
	}
}

// TestSweepRejectsWorseClone drives the rejected-swap path end to end:
// a fine-tune that makes the model worse must fail its shadow eval, the
// serving generation must not change, and the database must back off.
func TestSweepRejectsWorseClone(t *testing.T) {
	est := &tunableEstimator{name: "tunable", scale: 1, tune: badTune}
	sess := newAdaptSession(t, est)
	loop, err := New(sess, Config{
		Model:        "tunable",
		WindowSize:   16,
		MinSamples:   8,
		FreshTrigger: 16, // perfectly calibrated model: only the fresh-sample trigger fires
		HoldoutEvery: 4,
		Backoff:      time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	_, sqls := fixtures(t)
	feed := func() {
		for i := 0; i < 16; i++ {
			if err := predictAndFeedback(ctx, sess, loop, sqls[i%len(sqls)]); err != nil {
				t.Fatal(err)
			}
		}
	}
	feed()
	accepted, rejected := loop.Sweep(ctx)
	if accepted != 0 || rejected != 1 {
		t.Fatalf("sweep = %d accepted / %d rejected, want 0/1 (status %+v)", accepted, rejected, loop.Status())
	}
	st := loop.Status()
	if st.SwapsRejected != 1 || st.SwapsAccepted != 0 {
		t.Fatalf("status = %+v", st)
	}
	if st.LastShadow == nil || st.LastShadow.Accepted || st.LastShadow.NewMedian <= st.LastShadow.OldMedian {
		t.Fatalf("shadow eval = %+v, want a rejection with worse new median", st.LastShadow)
	}
	if st.LastRejected == nil || st.LastRejected.Accepted || st.LastRejected.Database != "target" {
		t.Fatalf("last rejected = %+v, want the rejected verdict recorded", st.LastRejected)
	}
	if st.Windows[0].Rejections != 1 {
		t.Fatalf("window rejections = %d, want 1", st.Windows[0].Rejections)
	}
	gen, _, err := sess.ModelGeneration("tunable")
	if err != nil || gen != 1 {
		t.Fatalf("generation = %d (err %v), want 1: rejected swap must not publish", gen, err)
	}
	cur, err := sess.Model("tunable")
	if err != nil || cur != costmodel.Estimator(est) {
		t.Fatalf("serving estimator changed despite rejection")
	}
	// The database is in backoff: a full window must not re-trigger.
	feed()
	if a, r := loop.Sweep(ctx); a != 0 || r != 0 {
		t.Fatalf("backed-off database adapted anyway: %d/%d", a, r)
	}
	if !loop.Status().Windows[0].InBackoff {
		t.Fatalf("window not reporting backoff: %+v", loop.Status().Windows)
	}
}

// TestConfigClamps checks the defaulting keeps every configuration
// adaptable: in particular MinSamples can never drop below HoldoutEvery,
// which would make every drained window unsplittable and every
// adaptation fail.
func TestConfigClamps(t *testing.T) {
	c := Config{MinSamples: 2, HoldoutEvery: 4}.withDefaults()
	if c.MinSamples != 4 {
		t.Fatalf("MinSamples = %d, want clamped to HoldoutEvery 4", c.MinSamples)
	}
	c = Config{WindowSize: 8, MinSamples: 99, FreshTrigger: 99}.withDefaults()
	if c.MinSamples != 8 || c.FreshTrigger != 8 {
		t.Fatalf("MinSamples/FreshTrigger = %d/%d, want clamped to window 8", c.MinSamples, c.FreshTrigger)
	}
	c = Config{}.withDefaults()
	if c.WindowSize != 256 || c.MinSamples != 32 || c.HoldoutEvery != 4 || c.DriftMedian != 1.5 {
		t.Fatalf("defaults = %+v", c)
	}
}

// TestSweepFailureKeepsEvidence injects a fine-tune failure: the cycle
// must requeue the drained samples (not discard a window of joined
// feedback), surface the error in Status, back the database off, and —
// once the failure clears — adapt on the preserved evidence and clear
// the error.
func TestSweepFailureKeepsEvidence(t *testing.T) {
	est := &tunableEstimator{name: "tunable", scale: 4, tune: failTune}
	sess := newAdaptSession(t, est)
	loop, err := New(sess, Config{
		Model:      "tunable",
		WindowSize: 64,
		MinSamples: 8,
		Backoff:    time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	_, sqls := fixtures(t)
	for i := 0; i < 12; i++ {
		if err := predictAndFeedback(ctx, sess, loop, sqls[i%len(sqls)]); err != nil {
			t.Fatal(err)
		}
	}
	if a, r := loop.Sweep(ctx); a != 0 || r != 0 {
		t.Fatalf("failed cycle reported %d accepted / %d rejected", a, r)
	}
	st := loop.Status()
	if st.LastError == "" {
		t.Fatal("failed cycle left no LastError")
	}
	if st.Windows[0].Pending != 12 {
		t.Fatalf("pending = %d after failed cycle, want all 12 samples requeued", st.Windows[0].Pending)
	}
	if !st.Windows[0].InBackoff {
		t.Fatal("failed database did not back off")
	}
	// Failure clears: the preserved evidence adapts on the next sweep.
	est.tune = goodTune
	time.Sleep(2 * time.Millisecond) // outlive the backoff
	if a, r := loop.Sweep(ctx); a != 1 || r != 0 {
		t.Fatalf("recovery sweep = %d/%d, want one accepted swap (status %+v)", a, r, loop.Status())
	}
	if st := loop.Status(); st.LastError != "" {
		t.Fatalf("LastError not cleared after success: %q", st.LastError)
	}
}

// TestSweepRecordsFineTuneTelemetry: a sweep that fine-tunes leaves a
// start/finish event pair in the control-plane log and publishes the
// fine-tune wall-time and throughput through Status — the numbers
// /v1/adapt/status serves.
func TestSweepRecordsFineTuneTelemetry(t *testing.T) {
	est := &tunableEstimator{name: "tunable", scale: 4, tune: goodTune}
	sess := newAdaptSession(t, est)
	events := obs.NewLog(32)
	loop, err := New(sess, Config{
		Model:      "tunable",
		WindowSize: 64,
		MinSamples: 8,
		Events:     events,
		Origin:     "test",
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	_, sqls := fixtures(t)
	for i := 0; i < 12; i++ {
		if err := predictAndFeedback(ctx, sess, loop, sqls[i%len(sqls)]); err != nil {
			t.Fatal(err)
		}
	}
	if st := loop.Status(); !st.LastFineTune.IsZero() || st.LastFineTuneSec != 0 {
		t.Fatalf("fine-tune telemetry set before any sweep: %+v", st)
	}
	if a, r := loop.Sweep(ctx); a != 1 || r != 0 {
		t.Fatalf("sweep = %d/%d, want one accepted swap (status %+v)", a, r, loop.Status())
	}
	st := loop.Status()
	if st.LastFineTune.IsZero() {
		t.Fatal("LastFineTune not recorded after a fine-tuning sweep")
	}
	if st.LastFineTuneSec <= 0 {
		t.Fatalf("LastFineTuneSec = %v, want > 0", st.LastFineTuneSec)
	}
	if st.FineTuneSamplesPerSec <= 0 {
		t.Fatalf("FineTuneSamplesPerSec = %v, want > 0", st.FineTuneSamplesPerSec)
	}
	var started, finished *obs.Event
	for _, ev := range events.Since(0, 0) {
		ev := ev
		switch ev.Type {
		case obs.EventFineTuneStarted:
			started = &ev
		case obs.EventFineTuneFinished:
			finished = &ev
		}
	}
	if started == nil || finished == nil {
		t.Fatalf("event log missing fine-tune pair: %+v", events.Since(0, 0))
	}
	if started.Seq >= finished.Seq {
		t.Fatalf("started (seq %d) not before finished (seq %d)", started.Seq, finished.Seq)
	}
	if started.Fields["db"] != "target" || started.Fields["model"] != "tunable" {
		t.Fatalf("started fields = %v", started.Fields)
	}
	if finished.Fields["duration_ms"] == "" || finished.Fields["samples_per_sec"] == "" {
		t.Fatalf("finished fields missing duration/throughput: %v", finished.Fields)
	}
}

// TestConsumeKeepsMidCycleArrivals exercises the full-ring corner of
// the window bookkeeping: feedback that arrives while a cycle fine-tunes
// overwrites the oldest (snapshotted) samples, and consuming the
// snapshot afterwards must keep exactly those fresh arrivals.
func TestConsumeKeepsMidCycleArrivals(t *testing.T) {
	w := &dbWindow{samples: make([]costmodel.Sample, 8), qerr: metrics.NewWindow(8)}
	for i := 0; i < 8; i++ {
		w.add(costmodel.Sample{RuntimeSec: float64(i)}, 1)
	}
	snap := w.contents() // full ring snapshot
	// Three arrivals during the cycle overwrite the three oldest.
	for i := 0; i < 3; i++ {
		w.add(costmodel.Sample{RuntimeSec: float64(100 + i)}, 1)
	}
	w.consume(len(snap), 3)
	if w.filled != 3 {
		t.Fatalf("pending = %d after consume, want the 3 mid-cycle arrivals", w.filled)
	}
	for i, s := range w.contents() {
		if s.RuntimeSec != float64(100+i) {
			t.Fatalf("survivor %d = %v, want the mid-cycle arrival %d", i, s.RuntimeSec, 100+i)
		}
	}
	// Non-full ring: arrivals fit in free space, the whole snapshot drops.
	w2 := &dbWindow{samples: make([]costmodel.Sample, 8), qerr: metrics.NewWindow(8)}
	for i := 0; i < 4; i++ {
		w2.add(costmodel.Sample{RuntimeSec: float64(i)}, 1)
	}
	snap2 := w2.contents()
	w2.add(costmodel.Sample{RuntimeSec: 200}, 1)
	w2.consume(len(snap2), 1)
	if w2.filled != 1 || w2.contents()[0].RuntimeSec != 200 {
		t.Fatalf("pending = %d (%v), want just the arrival", w2.filled, w2.contents())
	}
}

// TestSweepPartialFailureKeepsError runs one sweep over two triggered
// databases where one cycle fails and the other succeeds: the failure
// must stay visible in Status regardless of which ran first.
func TestSweepPartialFailureKeepsError(t *testing.T) {
	var calls atomic.Int32
	est := &tunableEstimator{name: "tunable", scale: 4, tune: func(e *tunableEstimator, s []costmodel.Sample) error {
		if calls.Add(1) == 1 {
			return fmt.Errorf("injected first-cycle failure")
		}
		return goodTune(e, s)
	}}
	db, sqls := fixtures(t)
	sess := serving.NewSession(serving.Config{})
	defer sess.Close()
	for _, name := range []string{"a", "b"} {
		if err := sess.AttachDatabase(name, db); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.AttachModel(est); err != nil {
		t.Fatal(err)
	}
	loop, err := New(sess, Config{Model: "tunable", WindowSize: 64, MinSamples: 8, Backoff: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, name := range []string{"a", "b"} {
		for i := 0; i < 8; i++ {
			if err := predictAndFeedbackDB(ctx, sess, loop, name, sqls[i%len(sqls)]); err != nil {
				t.Fatal(err)
			}
		}
	}
	accepted, rejected := loop.Sweep(ctx)
	if accepted+rejected != 1 {
		t.Fatalf("sweep = %d accepted / %d rejected, want exactly one completed cycle", accepted, rejected)
	}
	st := loop.Status()
	if !strings.Contains(st.LastError, "injected") {
		t.Fatalf("LastError = %q: the failed database's error was erased by the successful one", st.LastError)
	}
}

// TestAdaptE2EAcceptedHotSwap is the -race end-to-end test of the whole
// closed loop: concurrent predict + feedback traffic against an unseen
// database drifts the window (the serving model is 4x miscalibrated),
// the background worker fine-tunes a clone, the shadow eval accepts it,
// and the hot-swap publishes a measurably better generation — post-swap
// median q-error beats the pre-swap model on the same statements.
func TestAdaptE2EAcceptedHotSwap(t *testing.T) {
	orig := &tunableEstimator{name: "tunable", scale: 4, tune: goodTune}
	sess := newAdaptSession(t, orig)
	loop, err := New(sess, Config{
		Model:      "tunable",
		WindowSize: 512, // larger than total traffic: only drift triggers
		MinSamples: 16,
		Interval:   2 * time.Millisecond,
		Backoff:    time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	loop.Start()
	defer loop.Close()

	ctx := context.Background()
	_, sqls := fixtures(t)
	const clients = 4
	const itersPerClient = 60
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < itersPerClient; i++ {
				if err := predictAndFeedback(ctx, sess, loop, sqls[(c+i)%len(sqls)]); err != nil {
					errCh <- fmt.Errorf("client %d: %w", c, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// The background worker usually swaps mid-traffic; if the timing
	// missed, the buffered window still holds plenty of drifted samples.
	deadline := time.Now().Add(10 * time.Second)
	for loop.Status().SwapsAccepted == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if loop.Status().SwapsAccepted == 0 {
		loop.Sweep(ctx)
	}

	st := loop.Status()
	if st.SwapsAccepted < 1 {
		t.Fatalf("no accepted hot-swap: %+v", st)
	}
	if st.LastSwap.IsZero() {
		t.Fatalf("accepted swap left LastSwap zero: %+v", st)
	}
	gen, swapped, err := sess.ModelGeneration("tunable")
	if err != nil || gen < 2 || swapped.IsZero() {
		t.Fatalf("generation = %d swapped %v (err %v), want >= 2", gen, swapped, err)
	}

	// Post-swap vs pre-swap on a holdout of statements: the published
	// generation must beat the original model it replaced.
	var newQ, oldQ []float64
	for _, sql := range sqls {
		p, err := sess.Predict(ctx, "target", "", sql)
		if err != nil {
			t.Fatal(err)
		}
		actual := truthRuntime(p.OptimizerCost)
		newQ = append(newQ, metrics.QError(p.RuntimeSec, actual))
		in, ok, err := sess.CachedPlan("target", p.Fingerprint)
		if err != nil || !ok {
			t.Fatalf("cached plan lookup failed: ok=%v err=%v", ok, err)
		}
		origPred, err := orig.Predict(ctx, in)
		if err != nil {
			t.Fatal(err)
		}
		oldQ = append(oldQ, metrics.QError(origPred, actual))
	}
	newMed, oldMed := metrics.Median(newQ), metrics.Median(oldQ)
	if newMed >= oldMed {
		t.Fatalf("post-swap median q-error %.3f did not improve over pre-swap %.3f", newMed, oldMed)
	}
	if newMed > 1.05 {
		t.Fatalf("post-swap median q-error %.3f, want ~1 (goodTune recalibrates exactly)", newMed)
	}
}

// TestOnAcceptHookAndRejectedSurvival drives a rejection followed by an
// accepted swap: OnAccept must fire exactly once with the published
// clone and its verdict, and the earlier rejection must stay visible in
// Status after the accept overwrites LastShadow.
func TestOnAcceptHookAndRejectedSurvival(t *testing.T) {
	est := &tunableEstimator{name: "tunable", scale: 4, tune: badTune}
	sess := newAdaptSession(t, est)

	type acceptCall struct {
		est     costmodel.Estimator
		eval    ShadowEval
		samples int
	}
	var calls []acceptCall
	loop, err := New(sess, Config{
		Model:      "tunable",
		WindowSize: 64,
		MinSamples: 8,
		Backoff:    time.Millisecond,
		OnAccept: func(ctx context.Context, est costmodel.Estimator, eval ShadowEval, samples int) {
			calls = append(calls, acceptCall{est, eval, samples})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	_, sqls := fixtures(t)
	feed := func() {
		for i := 0; i < 8; i++ {
			if err := predictAndFeedback(ctx, sess, loop, sqls[i%len(sqls)]); err != nil {
				t.Fatal(err)
			}
		}
	}
	feed()
	if a, r := loop.Sweep(ctx); a != 0 || r != 1 {
		t.Fatalf("rejection sweep = %d/%d", a, r)
	}
	if len(calls) != 0 {
		t.Fatalf("OnAccept fired on a rejection: %d calls", len(calls))
	}

	est.tune = goodTune
	time.Sleep(2 * time.Millisecond) // outlive the backoff
	feed()
	if a, r := loop.Sweep(ctx); a != 1 || r != 0 {
		t.Fatalf("accept sweep = %d/%d (status %+v)", a, r, loop.Status())
	}
	if len(calls) != 1 {
		t.Fatalf("OnAccept calls = %d, want 1", len(calls))
	}
	call := calls[0]
	if !call.eval.Accepted || call.eval.Database != "target" || call.samples != 8 {
		t.Fatalf("OnAccept call = %+v", call)
	}
	// The hook hands over the clone that is now serving.
	serving, err := sess.Model("tunable")
	if err != nil || call.est != serving {
		t.Fatalf("OnAccept estimator is not the serving generation (err %v)", err)
	}
	// The old rejection survives the accept.
	st := loop.Status()
	if st.LastShadow == nil || !st.LastShadow.Accepted {
		t.Fatalf("LastShadow = %+v, want the accept", st.LastShadow)
	}
	if st.LastRejected == nil || st.LastRejected.Accepted {
		t.Fatalf("LastRejected = %+v, want the earlier rejection preserved", st.LastRejected)
	}
	if st.Windows[0].Rejections != 1 {
		t.Fatalf("window rejections = %d, want 1", st.Windows[0].Rejections)
	}
}

// TestLoopCloseIdempotent checks Start/Close lifecycle corners.
func TestLoopCloseIdempotent(t *testing.T) {
	est := &tunableEstimator{name: "tunable", scale: 1, tune: goodTune}
	sess := newAdaptSession(t, est)
	loop, err := New(sess, Config{Model: "tunable"})
	if err != nil {
		t.Fatal(err)
	}
	loop.Close() // never started
	loop.Close() // idempotent

	loop2, err := New(sess, Config{Model: "tunable", Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	loop2.Start()
	loop2.Start() // idempotent
	time.Sleep(5 * time.Millisecond)
	loop2.Close()
	loop2.Close()
	if loop2.Status().Sweeps == 0 {
		t.Fatal("background worker never swept")
	}
}
