package adapt

import (
	"context"
	"sync"
	"testing"

	"github.com/zeroshot-db/zeroshot/internal/collect"
	"github.com/zeroshot-db/zeroshot/internal/costmodel"
	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/serving"
	"github.com/zeroshot-db/zeroshot/internal/storage"
)

var (
	benchOnce sync.Once
	benchDB   *storage.Database
	benchEst  costmodel.Estimator
	benchSQL  []string
	benchAct  []float64
	benchErr  error
)

// benchSetup trains a small real zero-shot estimator on one database and
// prepares a feedback stream (SQL texts plus their simulated runtimes).
func benchSetup(b *testing.B) {
	b.Helper()
	benchOnce.Do(func() {
		db, err := datagen.IMDBLike(0.05)
		if err != nil {
			benchErr = err
			return
		}
		recs, err := collect.Run(db, collect.Options{Queries: 48, Seed: 41})
		if err != nil {
			benchErr = err
			return
		}
		est, err := costmodel.New(costmodel.NameZeroShot,
			costmodel.Options{Hidden: 12, Epochs: 2, Card: encoding.CardEstimated})
		if err != nil {
			benchErr = err
			return
		}
		if _, err := est.Fit(context.Background(), costmodel.FromRecords(db, recs)); err != nil {
			benchErr = err
			return
		}
		benchDB = db
		benchEst = est
		for _, r := range recs[:32] {
			benchSQL = append(benchSQL, r.Query.SQL())
			benchAct = append(benchAct, r.RuntimeSec)
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
}

// BenchmarkAdaptCycle measures one full adaptation cycle on the real
// zero-shot model: 32 feedback ingestions (predict + join + drift
// update) followed by a Sweep that clones, fine-tunes, shadow-evaluates
// and possibly hot-swaps. This is the background cost one adaptation
// charges a serving process.
func BenchmarkAdaptCycle(b *testing.B) {
	benchSetup(b)
	sess := serving.NewSession(serving.Config{})
	defer sess.Close()
	if err := sess.AttachDatabase("target", benchDB); err != nil {
		b.Fatal(err)
	}
	if err := sess.AttachModel(benchEst); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	// Warm the plan cache so feedback joins resolve, and keep the
	// fingerprints.
	fps := make([]string, len(benchSQL))
	for i, sql := range benchSQL {
		p, err := sess.Predict(ctx, "target", "", sql)
		if err != nil {
			b.Fatal(err)
		}
		fps[i] = p.Fingerprint
	}
	loop, err := New(sess, Config{
		Model:        costmodel.NameZeroShot,
		WindowSize:   32,
		MinSamples:   16,
		FreshTrigger: 32, // a full window always triggers
		Epochs:       2,
		Backoff:      1, // rejected swaps must not suppress later iterations
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range fps {
			if err := loop.Feedback(ctx, "target", fps[j], benchAct[j]); err != nil {
				b.Fatal(err)
			}
		}
		loop.Sweep(ctx)
	}
	b.StopTimer()
	st := loop.Status()
	b.ReportMetric(float64(st.SwapsAccepted)/float64(b.N), "swaps-accepted/cycle")
	b.ReportMetric(float64(st.SwapsRejected)/float64(b.N), "swaps-rejected/cycle")
}
