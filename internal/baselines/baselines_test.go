package baselines

import (
	"math"
	"testing"

	"github.com/zeroshot-db/zeroshot/internal/collect"
	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/metrics"
	"github.com/zeroshot-db/zeroshot/internal/stats"
	"github.com/zeroshot-db/zeroshot/internal/storage"
)

// imdbRecords collects records plus featurizers for the IMDB-like db.
func imdbRecords(t *testing.T, n int, seed int64) ([]collect.Record, *storage.Database, *encoding.Vocab, *stats.DBStats) {
	t.Helper()
	db, err := datagen.IMDBLike(0.02)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := collect.Run(db, collect.Options{Queries: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	st := stats.Collect(db, stats.DefaultBuckets, stats.DefaultMCVs)
	return recs, db, encoding.NewVocab(db.Schema), st
}

func TestMSCNTrainsAndPredictsInDistribution(t *testing.T) {
	recs, db, vocab, st := imdbRecords(t, 260, 1)
	f := encoding.NewMSCNFeaturizer(vocab, st)
	train, test := recs[:200], recs[200:]
	var samples []MSCNSample
	for _, r := range train {
		samples = append(samples, MSCNSample{Feats: f.Featurize(r.Query), RuntimeSec: r.RuntimeSec})
	}
	cfg := DefaultMSCNConfig()
	cfg.Epochs = 16
	m := NewMSCN(cfg)
	if err := m.Train(samples); err != nil {
		t.Fatal(err)
	}
	preds := make([]float64, len(test))
	actuals := make([]float64, len(test))
	for i, r := range test {
		preds[i] = m.Predict(f.Featurize(r.Query))
		actuals[i] = r.RuntimeSec
	}
	sum, err := metrics.Summarize(preds, actuals)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("MSCN in-distribution: %v", sum)
	if sum.Median > 6 {
		t.Fatalf("MSCN median q-error %.2f way too high in-distribution", sum.Median)
	}
	_ = db
}

func TestE2ETrainsAndPredictsInDistribution(t *testing.T) {
	recs, _, vocab, st := imdbRecords(t, 260, 2)
	f := encoding.NewE2EFeaturizer(vocab, st)
	train, test := recs[:200], recs[200:]
	var samples []E2ESample
	for _, r := range train {
		samples = append(samples, E2ESample{Root: f.Featurize(r.Plan), RuntimeSec: r.RuntimeSec})
	}
	cfg := DefaultE2EConfig()
	cfg.Epochs = 16
	m := NewE2E(cfg)
	if err := m.Train(samples); err != nil {
		t.Fatal(err)
	}
	preds := make([]float64, len(test))
	actuals := make([]float64, len(test))
	for i, r := range test {
		preds[i] = m.Predict(f.Featurize(r.Plan))
		actuals[i] = r.RuntimeSec
	}
	sum, err := metrics.Summarize(preds, actuals)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("E2E in-distribution: %v", sum)
	if sum.Median > 4 {
		t.Fatalf("E2E median q-error %.2f too high in-distribution", sum.Median)
	}
}

// TestMSCNDoesNotTransfer demonstrates the paper's motivation: a model
// trained on one database is useless on another.
func TestMSCNDoesNotTransfer(t *testing.T) {
	// Train on SSB.
	ssb, err := datagen.SSBLike(0.02)
	if err != nil {
		t.Fatal(err)
	}
	ssbRecs, err := collect.Run(ssb, collect.Options{Queries: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ssbStats := stats.Collect(ssb, stats.DefaultBuckets, stats.DefaultMCVs)
	ssbVocab := encoding.NewVocab(ssb.Schema)
	fTrain := encoding.NewMSCNFeaturizer(ssbVocab, ssbStats)
	var samples []MSCNSample
	for _, r := range ssbRecs {
		samples = append(samples, MSCNSample{Feats: fTrain.Featurize(r.Query), RuntimeSec: r.RuntimeSec})
	}
	cfg := DefaultMSCNConfig()
	cfg.Epochs = 16
	m := NewMSCN(cfg)
	if err := m.Train(samples); err != nil {
		t.Fatal(err)
	}
	// In-distribution check on held-out SSB queries.
	holdout, err := collect.Run(ssb, collect.Options{Queries: 50, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	var inPreds, inActs []float64
	for _, r := range holdout {
		inPreds = append(inPreds, m.Predict(fTrain.Featurize(r.Query)))
		inActs = append(inActs, r.RuntimeSec)
	}
	inSum, _ := metrics.Summarize(inPreds, inActs)

	// Apply mechanically to IMDB (the transfer the paper shows fails):
	// same model, the unseen database's own vocabulary positions.
	imdbRecs, imdb, imdbVocab, imdbStats := imdbRecords(t, 50, 4)
	fCross := encoding.NewMSCNFeaturizer(imdbVocab, imdbStats)
	var crossPreds, crossActs []float64
	for _, r := range imdbRecs {
		crossPreds = append(crossPreds, m.Predict(fCross.Featurize(r.Query)))
		crossActs = append(crossActs, r.RuntimeSec)
	}
	crossSum, _ := metrics.Summarize(crossPreds, crossActs)
	t.Logf("MSCN in-distribution: %v; transferred: %v", inSum, crossSum)
	if crossSum.Median < inSum.Median {
		t.Fatalf("one-hot model transferred better than in-distribution (%.2f < %.2f) — transferability failure not reproduced",
			crossSum.Median, inSum.Median)
	}
	_ = imdb
}

func TestScaledCostFitRecoversPowerLaw(t *testing.T) {
	// runtime = 0.002 * cost^0.8 exactly.
	costs := []float64{10, 100, 1000, 10000, 1e5}
	runtimes := make([]float64, len(costs))
	for i, c := range costs {
		runtimes[i] = 0.002 * math.Pow(c, 0.8)
	}
	var s ScaledCost
	if err := s.Fit(costs, runtimes); err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.A-0.8) > 1e-9 {
		t.Fatalf("A = %v, want 0.8", s.A)
	}
	for i, c := range costs {
		if q := metrics.QError(s.Predict(c), runtimes[i]); q > 1.0001 {
			t.Fatalf("q-error %v on exact power law", q)
		}
	}
}

func TestScaledCostDegenerateInput(t *testing.T) {
	var s ScaledCost
	if err := s.Fit([]float64{5, 5, 5}, []float64{1, 2, 4}); err != nil {
		t.Fatal(err)
	}
	// Constant-cost fallback predicts the geometric mean.
	if p := s.Predict(5); math.Abs(p-2) > 1e-9 {
		t.Fatalf("degenerate fit predicts %v, want 2", p)
	}
}

func TestScaledCostRejectsBadInput(t *testing.T) {
	var s ScaledCost
	if err := s.Fit([]float64{1}, []float64{1}); err == nil {
		t.Fatal("accepted single sample")
	}
	if err := s.Fit([]float64{1, -1}, []float64{1, 1}); err == nil {
		t.Fatal("accepted negative cost")
	}
	if err := s.Fit([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("accepted length mismatch")
	}
}

func TestScaledCostOnRealRecords(t *testing.T) {
	recs, _, _, _ := imdbRecords(t, 150, 5)
	costs := make([]float64, len(recs))
	rts := make([]float64, len(recs))
	for i, r := range recs {
		costs[i] = r.OptimizerCost
		rts[i] = r.RuntimeSec
	}
	var s ScaledCost
	if err := s.Fit(costs[:100], rts[:100]); err != nil {
		t.Fatal(err)
	}
	var preds, actuals []float64
	for i := 100; i < len(recs); i++ {
		preds = append(preds, s.Predict(costs[i]))
		actuals = append(actuals, rts[i])
	}
	sum, _ := metrics.Summarize(preds, actuals)
	t.Logf("scaled optimizer cost: %v", sum)
	if sum.Median > 10 {
		t.Fatalf("scaled cost median q-error %.2f absurdly high", sum.Median)
	}
}

func TestMSCNRejectsEmptyAndBad(t *testing.T) {
	m := NewMSCN(DefaultMSCNConfig())
	if err := m.Train(nil); err == nil {
		t.Fatal("accepted empty training set")
	}
	bad := []MSCNSample{{Feats: &encoding.MSCNFeatures{}, RuntimeSec: -1}}
	if err := m.Train(bad); err == nil {
		t.Fatal("accepted negative runtime")
	}
}

func TestE2ERejectsEmptyAndBad(t *testing.T) {
	m := NewE2E(DefaultE2EConfig())
	if err := m.Train(nil); err == nil {
		t.Fatal("accepted empty training set")
	}
}

func TestMSCNEmptySetsHandled(t *testing.T) {
	// Single-table query without filters: joins and predicates are empty.
	m := NewMSCN(DefaultMSCNConfig())
	f := &encoding.MSCNFeatures{Tables: [][]float64{make([]float64, encoding.MaxVocabTables)}}
	p := m.Predict(f)
	if p <= 0 || math.IsNaN(p) {
		t.Fatalf("prediction %v for empty sets", p)
	}
}
