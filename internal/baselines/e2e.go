package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/nn"
)

// E2EConfig holds E2E hyperparameters.
type E2EConfig struct {
	Hidden    int
	Epochs    int
	BatchSize int
	LR        float64
	Seed      int64
}

// DefaultE2EConfig returns CPU-sized hyperparameters.
func DefaultE2EConfig() E2EConfig {
	return E2EConfig{Hidden: 32, Epochs: 24, BatchSize: 16, LR: 3e-3, Seed: 1}
}

// E2ESample is one training example for E2E.
type E2ESample struct {
	Root       *encoding.E2ENode
	RuntimeSec float64
}

// E2E is the tree-structured plan model baseline (Sun & Li). The original
// combines child states with an LSTM cell; this reproduction uses an MLP
// combiner (same information flow, fewer parameters), which DESIGN.md
// records as a reduction.
type E2E struct {
	cfg     E2EConfig
	nodeMLP *nn.MLP
	combMLP *nn.MLP
	outMLP  *nn.MLP
	rng     *rand.Rand
}

// NewE2E creates a randomly initialized E2E model.
func NewE2E(cfg E2EConfig) *E2E {
	if cfg.Hidden <= 0 {
		cfg = DefaultE2EConfig()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	h := cfg.Hidden
	return &E2E{
		cfg:     cfg,
		nodeMLP: nn.NewMLP(rng, encoding.E2ENodeDim, h, h),
		combMLP: nn.NewMLP(rng, 2*h, h, h),
		outMLP:  nn.NewMLP(rng, h, h, 1),
		rng:     rng,
	}
}

// Params returns all trainable parameters.
func (m *E2E) Params() []*nn.Param {
	var ps []*nn.Param
	ps = append(ps, m.nodeMLP.Params()...)
	ps = append(ps, m.combMLP.Params()...)
	ps = append(ps, m.outMLP.Params()...)
	return ps
}

func (m *E2E) encode(tp *nn.Tape, n *encoding.E2ENode) *nn.Var {
	h := m.nodeMLP.Apply(tp, tp.Const(nn.FromSlice(n.Feat)))
	if len(n.Children) == 0 {
		return h
	}
	children := make([]*nn.Var, len(n.Children))
	for i, c := range n.Children {
		children[i] = m.encode(tp, c)
	}
	return m.combMLP.Apply(tp, tp.Concat(h, tp.Sum(children...)))
}

func (m *E2E) forward(tp *nn.Tape, root *encoding.E2ENode) *nn.Var {
	return m.outMLP.Apply(tp, m.encode(tp, root))
}

// Predict returns the predicted runtime in seconds.
func (m *E2E) Predict(root *encoding.E2ENode) float64 {
	tp := nn.NewTape()
	out := m.forward(tp, root)
	return clampExp(out.Val.Data[0])
}

// Train fits the model on log-runtime targets with Huber loss.
func (m *E2E) Train(samples []E2ESample) error {
	if len(samples) == 0 {
		return fmt.Errorf("baselines: E2E has no training samples")
	}
	opt := nn.NewAdam(m.Params(), m.cfg.LR)
	order := make([]int, len(samples))
	for i := range order {
		order[i] = i
	}
	batch := m.cfg.BatchSize
	if batch <= 0 {
		batch = 16
	}
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		m.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		inBatch := 0
		for _, idx := range order {
			s := samples[idx]
			if s.RuntimeSec <= 0 {
				return fmt.Errorf("baselines: E2E sample with runtime %v", s.RuntimeSec)
			}
			tp := nn.NewTape()
			out := m.forward(tp, s.Root)
			loss := tp.HuberLoss(out, nn.FromSlice([]float64{math.Log(s.RuntimeSec)}), 1.0)
			tp.Backward(loss)
			inBatch++
			if inBatch == batch {
				opt.Step(float64(inBatch))
				opt.ZeroGrad()
				inBatch = 0
			}
		}
		if inBatch > 0 {
			opt.Step(float64(inBatch))
			opt.ZeroGrad()
		}
	}
	return nil
}
