// Package baselines implements the workload-driven comparison models of
// the paper's evaluation:
//
//   - MSCN (Kipf et al., CIDR 2019): a multi-set convolutional network over
//     one-hot table/join/predicate sets — no plan structure.
//   - E2E (Sun & Li, VLDB 2019): a tree-structured network over physical
//     plans with one-hot leaf encodings — end-to-end learning of data and
//     system characteristics in one model.
//   - Scaled Optimizer Cost: a log-linear regression from the optimizer's
//     analytical cost estimate to the runtime.
//
// All three keep the non-transferable featurizations of their originals;
// their need for per-database training data is the paper's motivation.
package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/nn"
)

// MSCNConfig holds MSCN hyperparameters.
type MSCNConfig struct {
	Hidden    int
	Epochs    int
	BatchSize int
	LR        float64
	Seed      int64
}

// DefaultMSCNConfig returns CPU-sized hyperparameters.
func DefaultMSCNConfig() MSCNConfig {
	return MSCNConfig{Hidden: 32, Epochs: 24, BatchSize: 16, LR: 3e-3, Seed: 1}
}

// MSCNSample is one training example for MSCN.
type MSCNSample struct {
	Feats      *encoding.MSCNFeatures
	RuntimeSec float64
}

// MSCN is the multi-set convolutional network baseline.
type MSCN struct {
	cfg      MSCNConfig
	tableMLP *nn.MLP
	joinMLP  *nn.MLP
	predMLP  *nn.MLP
	outMLP   *nn.MLP
	rng      *rand.Rand
}

// NewMSCN creates a randomly initialized MSCN model.
func NewMSCN(cfg MSCNConfig) *MSCN {
	if cfg.Hidden <= 0 {
		cfg = DefaultMSCNConfig()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	h := cfg.Hidden
	return &MSCN{
		cfg:      cfg,
		tableMLP: nn.NewMLP(rng, encoding.MaxVocabTables, h, h),
		joinMLP:  nn.NewMLP(rng, encoding.MaxVocabJoins, h, h),
		predMLP:  nn.NewMLP(rng, encoding.MSCNPredDim, h, h),
		outMLP:   nn.NewMLP(rng, 3*h, h, 1),
		rng:      rng,
	}
}

// Params returns all trainable parameters.
func (m *MSCN) Params() []*nn.Param {
	var ps []*nn.Param
	ps = append(ps, m.tableMLP.Params()...)
	ps = append(ps, m.joinMLP.Params()...)
	ps = append(ps, m.predMLP.Params()...)
	ps = append(ps, m.outMLP.Params()...)
	return ps
}

// pool applies the set MLP to each vector and mean-pools; an empty set
// yields a zero vector.
func (m *MSCN) pool(tp *nn.Tape, mlp *nn.MLP, set [][]float64) *nn.Var {
	if len(set) == 0 {
		return tp.Const(nn.NewTensor(1, m.cfg.Hidden))
	}
	hs := make([]*nn.Var, len(set))
	for i, v := range set {
		hs[i] = tp.ReLU(mlp.Apply(tp, tp.Const(nn.FromSlice(v))))
	}
	return tp.ScaleVar(tp.Sum(hs...), 1/float64(len(set)))
}

func (m *MSCN) forward(tp *nn.Tape, f *encoding.MSCNFeatures) *nn.Var {
	t := m.pool(tp, m.tableMLP, f.Tables)
	j := m.pool(tp, m.joinMLP, f.Joins)
	p := m.pool(tp, m.predMLP, f.Preds)
	return m.outMLP.Apply(tp, tp.Concat(t, j, p))
}

// Predict returns the predicted runtime in seconds.
func (m *MSCN) Predict(f *encoding.MSCNFeatures) float64 {
	tp := nn.NewTape()
	out := m.forward(tp, f)
	return clampExp(out.Val.Data[0])
}

// Train fits the model on log-runtime targets with Huber loss.
func (m *MSCN) Train(samples []MSCNSample) error {
	if len(samples) == 0 {
		return fmt.Errorf("baselines: MSCN has no training samples")
	}
	opt := nn.NewAdam(m.Params(), m.cfg.LR)
	order := make([]int, len(samples))
	for i := range order {
		order[i] = i
	}
	batch := m.cfg.BatchSize
	if batch <= 0 {
		batch = 16
	}
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		m.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		inBatch := 0
		for _, idx := range order {
			s := samples[idx]
			if s.RuntimeSec <= 0 {
				return fmt.Errorf("baselines: MSCN sample with runtime %v", s.RuntimeSec)
			}
			tp := nn.NewTape()
			out := m.forward(tp, s.Feats)
			loss := tp.HuberLoss(out, nn.FromSlice([]float64{math.Log(s.RuntimeSec)}), 1.0)
			tp.Backward(loss)
			inBatch++
			if inBatch == batch {
				opt.Step(float64(inBatch))
				opt.ZeroGrad()
				inBatch = 0
			}
		}
		if inBatch > 0 {
			opt.Step(float64(inBatch))
			opt.ZeroGrad()
		}
	}
	return nil
}

// clampExp exponentiates a log-runtime with the same clamp band the
// zero-shot model uses.
func clampExp(logRT float64) float64 {
	if logRT > 9.2 {
		logRT = 9.2
	}
	if logRT < -13.8 {
		logRT = -13.8
	}
	return math.Exp(logRT)
}
