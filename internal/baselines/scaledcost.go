package baselines

import (
	"fmt"
	"math"
)

// ScaledCost is the "Scaled Optimizer Cost" baseline: a least-squares fit
// of log(runtime) = a*log(cost) + b, i.e. a power-law rescaling of the
// optimizer's internal cost metric to wall-clock runtime.
type ScaledCost struct {
	A, B   float64
	fitted bool
}

// Fit estimates the parameters from (optimizer cost, runtime) pairs by
// ordinary least squares in log-log space.
func (s *ScaledCost) Fit(costs, runtimes []float64) error {
	if len(costs) != len(runtimes) {
		return fmt.Errorf("baselines: %d costs vs %d runtimes", len(costs), len(runtimes))
	}
	if len(costs) < 2 {
		return fmt.Errorf("baselines: scaled cost needs at least 2 samples")
	}
	n := 0.0
	var sx, sy, sxx, sxy float64
	for i := range costs {
		if costs[i] <= 0 || runtimes[i] <= 0 {
			return fmt.Errorf("baselines: non-positive cost/runtime at %d", i)
		}
		x, y := math.Log(costs[i]), math.Log(runtimes[i])
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		n++
	}
	den := n*sxx - sx*sx
	if math.Abs(den) < 1e-12 {
		// Degenerate: every cost identical; fall back to constant model.
		s.A = 0
		s.B = sy / n
		s.fitted = true
		return nil
	}
	s.A = (n*sxy - sx*sy) / den
	s.B = (sy - s.A*sx) / n
	s.fitted = true
	return nil
}

// Predict returns the predicted runtime in seconds for an optimizer cost.
func (s *ScaledCost) Predict(cost float64) float64 {
	if !s.fitted {
		return 1
	}
	if cost <= 0 {
		cost = 1e-9
	}
	return clampExp(s.A*math.Log(cost) + s.B)
}
