package baselines

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"

	"github.com/zeroshot-db/zeroshot/internal/nn"
)

// savedNet is the gob header preceding the parameters of the neural
// baselines; the architecture is fully determined by the hidden size.
type savedNet struct {
	Hidden int
}

// byteReader guards stacked gob decoders: gob wraps readers lacking
// ReadByte in an internal bufio.Reader that over-reads past its message,
// corrupting the stream for the next decoder.
func byteReader(r io.Reader) io.Reader {
	if _, ok := r.(io.ByteReader); !ok {
		return bufio.NewReader(r)
	}
	return r
}

// Save writes the MSCN architecture and weights to w.
func (m *MSCN) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(savedNet{Hidden: m.cfg.Hidden}); err != nil {
		return fmt.Errorf("baselines: encode MSCN: %w", err)
	}
	return nn.SaveParams(w, m.Params())
}

// LoadMSCN reads a model saved by (*MSCN).Save. Training hyperparameters
// revert to defaults; the architecture comes from the file.
func LoadMSCN(r io.Reader) (*MSCN, error) {
	r = byteReader(r)
	var hdr savedNet
	if err := gob.NewDecoder(r).Decode(&hdr); err != nil {
		return nil, fmt.Errorf("baselines: decode MSCN: %w", err)
	}
	cfg := DefaultMSCNConfig()
	cfg.Hidden = hdr.Hidden
	m := NewMSCN(cfg)
	if err := nn.LoadParams(r, m.Params()); err != nil {
		return nil, err
	}
	return m, nil
}

// Save writes the E2E architecture and weights to w.
func (m *E2E) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(savedNet{Hidden: m.cfg.Hidden}); err != nil {
		return fmt.Errorf("baselines: encode E2E: %w", err)
	}
	return nn.SaveParams(w, m.Params())
}

// LoadE2E reads a model saved by (*E2E).Save.
func LoadE2E(r io.Reader) (*E2E, error) {
	r = byteReader(r)
	var hdr savedNet
	if err := gob.NewDecoder(r).Decode(&hdr); err != nil {
		return nil, fmt.Errorf("baselines: decode E2E: %w", err)
	}
	cfg := DefaultE2EConfig()
	cfg.Hidden = hdr.Hidden
	m := NewE2E(cfg)
	if err := nn.LoadParams(r, m.Params()); err != nil {
		return nil, err
	}
	return m, nil
}

// savedScaledCost is the gob wire form of the regression baseline.
type savedScaledCost struct {
	A, B   float64
	Fitted bool
}

// Save writes the fitted regression parameters to w.
func (s *ScaledCost) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(savedScaledCost{A: s.A, B: s.B, Fitted: s.fitted}); err != nil {
		return fmt.Errorf("baselines: encode ScaledCost: %w", err)
	}
	return nil
}

// LoadScaledCost reads a model saved by (*ScaledCost).Save.
func LoadScaledCost(r io.Reader) (*ScaledCost, error) {
	var sv savedScaledCost
	if err := gob.NewDecoder(r).Decode(&sv); err != nil {
		return nil, fmt.Errorf("baselines: decode ScaledCost: %w", err)
	}
	return &ScaledCost{A: sv.A, B: sv.B, fitted: sv.Fitted}, nil
}
