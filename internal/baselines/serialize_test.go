package baselines

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/zeroshot-db/zeroshot/internal/encoding"
)

// saveLoadFile round-trips a model through a real file. Files matter:
// *os.File is not an io.ByteReader, so this exercises the stacked-decoder
// guard that a bytes.Buffer round trip would silently skip.
func saveLoadFile(t *testing.T, save func(f *os.File) error, load func(f *os.File) error) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "model.gob")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	if err := load(rf); err != nil {
		t.Fatal(err)
	}
}

func TestMSCNSaveLoadFile(t *testing.T) {
	cfg := DefaultMSCNConfig()
	cfg.Hidden = 8
	m := NewMSCN(cfg)
	feats := &encoding.MSCNFeatures{Tables: [][]float64{make([]float64, encoding.MaxVocabTables)}}
	feats.Tables[0][3] = 1
	want := m.Predict(feats)

	var loaded *MSCN
	saveLoadFile(t,
		func(f *os.File) error { return m.Save(f) },
		func(f *os.File) error { var err error; loaded, err = LoadMSCN(f); return err })
	if got := loaded.Predict(feats); got != want {
		t.Fatalf("loaded MSCN predicts %v, want %v", got, want)
	}
}

func TestE2ESaveLoadFile(t *testing.T) {
	cfg := DefaultE2EConfig()
	cfg.Hidden = 8
	m := NewE2E(cfg)
	root := &encoding.E2ENode{Feat: make([]float64, encoding.E2ENodeDim)}
	root.Feat[0] = 1
	want := m.Predict(root)

	var loaded *E2E
	saveLoadFile(t,
		func(f *os.File) error { return m.Save(f) },
		func(f *os.File) error { var err error; loaded, err = LoadE2E(f); return err })
	if got := loaded.Predict(root); got != want {
		t.Fatalf("loaded E2E predicts %v, want %v", got, want)
	}
}

func TestScaledCostSaveLoadFile(t *testing.T) {
	var m ScaledCost
	if err := m.Fit([]float64{10, 100, 1000}, []float64{0.1, 0.9, 8}); err != nil {
		t.Fatal(err)
	}
	want := m.Predict(500)

	var loaded *ScaledCost
	saveLoadFile(t,
		func(f *os.File) error { return m.Save(f) },
		func(f *os.File) error { var err error; loaded, err = LoadScaledCost(f); return err })
	if got := loaded.Predict(500); got != want {
		t.Fatalf("loaded ScaledCost predicts %v, want %v", got, want)
	}
}
