// Package bundle turns adapted cost models into fleet-wide continuous
// deployment. The adaptation loop (internal/adapt) is replica-local: a
// fine-tune accepted on the replica owning a database never reaches its
// ring successors, so a failover serves a stale generation and silently
// regresses q-error. This package closes that gap with the
// download/activate/rollback loop production policy engines use (OPA's
// bundle plugin is the shape):
//
//   - A bundle is ONE archive (gzip'd tar) wrapping the existing
//     self-describing costmodel.Save payload plus a Manifest: estimator
//     name, monotonically increasing revision, SHA-256 checksum of the
//     payload, training fingerprint, sample count, and the shadow-eval
//     metrics that justified the swap. Open verifies strictly — wrong
//     magic, truncated archive, checksum mismatch, or an estimator whose
//     self-describing header disagrees with the manifest all refuse.
//   - A Publisher (publisher.go) writes bundles to a pluggable Store
//     (local directory now; the interface leaves room for HTTP/object
//     stores), assigns revisions serially, and prunes to a retained
//     history — the accept path of adapt.Loop hooks into it.
//   - A Distributor (distributor.go) runs on every replica: it polls the
//     store with a revision short-circuit (the ETag idiom), verifies,
//     and activates new revisions through the serving session's hot-swap
//     path, with exponential backoff on failure and Rollback reactivating
//     any retained revision.
//
// The archive layout is two entries, manifest first:
//
//	manifest.json   the Manifest, plain JSON
//	model.gob       the costmodel.Save payload (self-describing header +
//	                estimator parameters)
//
// Everything in this file is the format itself: Build, Open, Inspect.
package bundle

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/zeroshot-db/zeroshot/internal/costmodel"
)

// Archive entry names. manifestEntry must come first so Inspect can
// stream; Build always writes that order and Open enforces it.
const (
	manifestEntry = "manifest.json"
	modelEntry    = "model.gob"
)

// ErrBadBundle marks every verification failure on open: truncated or
// malformed archives, checksum mismatches, manifest/payload estimator
// disagreement, and nonsense revisions. Callers gate activation on it
// (errors.Is) — a bundle that fails to open must never reach a session.
var ErrBadBundle = errors.New("bundle: verification failed")

// ShadowMetrics records the shadow evaluation that justified publishing
// a revision: the old-vs-new holdout comparison the adaptation loop ran
// before hot-swapping. It mirrors adapt.ShadowEval without importing it
// (the adapt package is a client of this one, not a dependency).
type ShadowMetrics struct {
	// Database is the feedback window that triggered the fine-tune.
	Database string `json:"db"`
	// OldMedianQ and NewMedianQ are the serving vs. candidate median
	// q-errors on the holdout slice.
	OldMedianQ float64 `json:"old_median_qerror"`
	NewMedianQ float64 `json:"new_median_qerror"`
	// Holdout is how many held-out samples the verdict was computed on.
	Holdout int `json:"holdout"`
	// At is when the shadow evaluation concluded.
	At time.Time `json:"at"`
}

// Manifest is a bundle's self-description — the part an operator (or
// `zsdb bundle inspect`) reads without deserializing the model.
type Manifest struct {
	// Estimator is the costmodel registry name of the wrapped model. It
	// must match the payload's own self-describing header; Open checks.
	Estimator string `json:"estimator"`
	// Revision is the bundle's position in the store's monotonically
	// increasing sequence (>= 1). Distributors refuse regressions: a
	// manifest whose revision is not strictly above the activated one
	// never activates through the poll path.
	Revision int64 `json:"revision"`
	// SHA256 is the hex checksum of the model payload; Open recomputes
	// and compares before the payload is ever decoded.
	SHA256 string `json:"sha256"`
	// Fingerprint identifies the training provenance (e.g. "adapt:imdb"
	// for an accepted fine-tune on the imdb feedback window, or the
	// source file of a CLI-built bundle). Defaults to a payload checksum
	// prefix when the builder supplies none.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Samples counts the training samples behind this revision (the
	// drained feedback window of an adaptation publish; 0 when unknown).
	Samples int `json:"samples,omitempty"`
	// Shadow carries the accept verdict for revisions published by the
	// adaptation loop; nil for hand-built bundles.
	Shadow *ShadowMetrics `json:"shadow,omitempty"`
	// RollbackOf names the retained revision whose payload this bundle
	// re-publishes, when the revision is a rollback; RolledBackFrom is
	// the head revision it supersedes. Both 0 for ordinary revisions.
	RollbackOf     int64 `json:"rollback_of,omitempty"`
	RolledBackFrom int64 `json:"rolled_back_from,omitempty"`
	// CreatedAt is when the bundle was built.
	CreatedAt time.Time `json:"created_at"`
}

// Meta is the caller-supplied slice of a Manifest — what Build and
// Publisher.Publish cannot derive themselves.
type Meta struct {
	Fingerprint string
	Samples     int
	Shadow      *ShadowMetrics
}

// Bundle is one verified, opened bundle: the manifest plus the decoded
// estimator, ready to activate.
type Bundle struct {
	Manifest  Manifest
	Estimator costmodel.Estimator
}

// Build writes est as a bundle with the given revision and metadata and
// returns the completed manifest. The payload is serialized through the
// self-describing costmodel.Save, so Open can cross-check the manifest's
// estimator name against the payload's own header.
func Build(w io.Writer, est costmodel.Estimator, revision int64, meta Meta) (Manifest, error) {
	if est == nil {
		return Manifest{}, fmt.Errorf("bundle: Build needs an estimator")
	}
	if revision < 1 {
		return Manifest{}, fmt.Errorf("bundle: revision must be >= 1, got %d", revision)
	}
	var payload bytes.Buffer
	if err := costmodel.Save(&payload, est); err != nil {
		return Manifest{}, fmt.Errorf("bundle: serialize %s: %w", est.Name(), err)
	}
	man := Manifest{
		Estimator:   est.Name(),
		Revision:    revision,
		SHA256:      checksum(payload.Bytes()),
		Fingerprint: meta.Fingerprint,
		Samples:     meta.Samples,
		Shadow:      meta.Shadow,
		CreatedAt:   time.Now().UTC(),
	}
	if man.Fingerprint == "" {
		man.Fingerprint = "sha256:" + man.SHA256[:16]
	}
	if err := writeArchive(w, man, payload.Bytes()); err != nil {
		return Manifest{}, err
	}
	return man, nil
}

// Rewrap re-publishes an already-verified payload under a new manifest —
// the rollback path: same bytes, fresh revision. The payload checksum is
// recomputed, so a caller cannot rewrap bytes it has not read.
func Rewrap(w io.Writer, man Manifest, payload []byte) error {
	if man.Revision < 1 {
		return fmt.Errorf("bundle: revision must be >= 1, got %d", man.Revision)
	}
	man.SHA256 = checksum(payload)
	return writeArchive(w, man, payload)
}

// writeArchive lays the manifest and payload down as a gzip'd tar.
func writeArchive(w io.Writer, man Manifest, payload []byte) error {
	manJSON, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("bundle: encode manifest: %w", err)
	}
	gz := gzip.NewWriter(w)
	tw := tar.NewWriter(gz)
	for _, entry := range []struct {
		name string
		data []byte
	}{{manifestEntry, manJSON}, {modelEntry, payload}} {
		hdr := &tar.Header{
			Name:    entry.name,
			Mode:    0o644,
			Size:    int64(len(entry.data)),
			ModTime: man.CreatedAt,
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return fmt.Errorf("bundle: write %s header: %w", entry.name, err)
		}
		if _, err := tw.Write(entry.data); err != nil {
			return fmt.Errorf("bundle: write %s: %w", entry.name, err)
		}
	}
	if err := tw.Close(); err != nil {
		return fmt.Errorf("bundle: close archive: %w", err)
	}
	if err := gz.Close(); err != nil {
		return fmt.Errorf("bundle: close gzip: %w", err)
	}
	return nil
}

// checksum returns the hex SHA-256 of data.
func checksum(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// badf wraps a format/verification failure in ErrBadBundle.
func badf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadBundle, fmt.Sprintf(format, args...))
}

// readArchive parses and structurally verifies one archive: both entries
// present in order, manifest well-formed, payload checksum matching. The
// payload is returned raw — Open decodes it, Inspect does not.
func readArchive(r io.Reader) (Manifest, []byte, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return Manifest{}, nil, badf("not a gzip archive: %v", err)
	}
	defer gz.Close()
	tr := tar.NewReader(gz)

	hdr, err := tr.Next()
	if err != nil {
		return Manifest{}, nil, badf("truncated archive: %v", err)
	}
	if hdr.Name != manifestEntry {
		return Manifest{}, nil, badf("first entry is %q, want %q", hdr.Name, manifestEntry)
	}
	var man Manifest
	if err := json.NewDecoder(io.LimitReader(tr, 1<<20)).Decode(&man); err != nil {
		return Manifest{}, nil, badf("malformed manifest: %v", err)
	}
	if man.Estimator == "" {
		return Manifest{}, nil, badf("manifest names no estimator")
	}
	if man.Revision < 1 {
		return Manifest{}, nil, badf("manifest revision %d is not positive", man.Revision)
	}

	hdr, err = tr.Next()
	if err != nil {
		return Manifest{}, nil, badf("truncated archive (no %s): %v", modelEntry, err)
	}
	if hdr.Name != modelEntry {
		return Manifest{}, nil, badf("second entry is %q, want %q", hdr.Name, modelEntry)
	}
	payload, err := io.ReadAll(tr)
	if err != nil {
		return Manifest{}, nil, badf("truncated model payload: %v", err)
	}
	if _, err := tr.Next(); err != io.EOF {
		if err == nil {
			return Manifest{}, nil, badf("unexpected extra archive entry")
		}
		return Manifest{}, nil, badf("corrupt archive trailer: %v", err)
	}
	// Drain the gzip stream: its CRC only verifies on a read reaching the
	// end, and the tar reader stops before the gzip trailer — without
	// this, a truncated trailer passes silently.
	if _, err := io.Copy(io.Discard, gz); err != nil {
		return Manifest{}, nil, badf("truncated archive trailer: %v", err)
	}
	if got := checksum(payload); got != man.SHA256 {
		return Manifest{}, nil, badf("payload checksum %s does not match manifest %s", got[:16], shortSum(man.SHA256))
	}
	return man, payload, nil
}

// shortSum truncates a checksum for error messages.
func shortSum(s string) string {
	if len(s) > 16 {
		return s[:16]
	}
	return s
}

// Inspect verifies a bundle's structure and checksum and returns its
// manifest WITHOUT decoding the model — the cheap read behind listings
// and `zsdb bundle inspect`.
func Inspect(r io.Reader) (Manifest, error) {
	man, _, err := readArchive(r)
	return man, err
}

// Open fully verifies a bundle and decodes its estimator: structure,
// checksum, a loadable self-describing payload, and manifest/payload
// estimator-name agreement. Anything less than all four is ErrBadBundle.
func Open(r io.Reader) (*Bundle, error) {
	man, payload, err := readArchive(r)
	if err != nil {
		return nil, err
	}
	est, err := costmodel.Load(bytes.NewReader(payload))
	if err != nil {
		return nil, badf("payload does not load: %v", err)
	}
	if est.Name() != man.Estimator {
		return nil, badf("manifest says estimator %q but payload is %q", man.Estimator, est.Name())
	}
	return &Bundle{Manifest: man, Estimator: est}, nil
}
