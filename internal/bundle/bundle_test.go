package bundle_test

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"github.com/zeroshot-db/zeroshot/internal/bundle"
	"github.com/zeroshot-db/zeroshot/internal/costmodel"
)

func TestBuildOpenRoundTrip(t *testing.T) {
	est := &scaleEstimator{Scale: 2.5}
	shadow := &bundle.ShadowMetrics{
		Database:   "imdb",
		OldMedianQ: 4.0,
		NewMedianQ: 1.1,
		Holdout:    8,
		At:         time.Now().UTC(),
	}
	data, man := buildBundle(t, est, 7, bundle.Meta{
		Fingerprint: "adapt:imdb",
		Samples:     64,
		Shadow:      shadow,
	})

	if man.Estimator != testEstimatorName || man.Revision != 7 {
		t.Fatalf("manifest = %+v", man)
	}
	if man.Fingerprint != "adapt:imdb" || man.Samples != 64 || man.Shadow == nil {
		t.Fatalf("metadata lost: %+v", man)
	}
	if man.SHA256 == "" || man.CreatedAt.IsZero() {
		t.Fatalf("manifest missing derived fields: %+v", man)
	}

	b, err := bundle.Open(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if b.Manifest.Revision != 7 || b.Manifest.SHA256 != man.SHA256 {
		t.Fatalf("opened manifest = %+v, want %+v", b.Manifest, man)
	}
	if b.Manifest.Shadow == nil || b.Manifest.Shadow.NewMedianQ != 1.1 {
		t.Fatalf("shadow metrics lost: %+v", b.Manifest.Shadow)
	}
	// The decoded estimator predicts bitwise the same as the original.
	in := costmodel.PlanInput{OptimizerCost: 1234}
	want, _ := est.Predict(context.Background(), in)
	got, err := b.Estimator.Predict(context.Background(), in)
	if err != nil || got != want {
		t.Fatalf("decoded estimator predicts %v (err %v), want %v", got, err, want)
	}

	// Inspect agrees without decoding.
	insp, err := bundle.Inspect(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if insp.SHA256 != man.SHA256 || insp.Revision != man.Revision {
		t.Fatalf("Inspect = %+v, want %+v", insp, man)
	}
}

func TestBuildValidates(t *testing.T) {
	var buf bytes.Buffer
	if _, err := bundle.Build(&buf, nil, 1, bundle.Meta{}); err == nil {
		t.Fatal("Build accepted a nil estimator")
	}
	if _, err := bundle.Build(&buf, &scaleEstimator{Scale: 1}, 0, bundle.Meta{}); err == nil {
		t.Fatal("Build accepted revision 0")
	}
}

func TestBuildDefaultFingerprint(t *testing.T) {
	_, man := buildBundle(t, &scaleEstimator{Scale: 1}, 1, bundle.Meta{})
	if man.Fingerprint == "" {
		t.Fatal("no default fingerprint")
	}
	if want := "sha256:" + man.SHA256[:16]; man.Fingerprint != want {
		t.Fatalf("fingerprint = %q, want %q", man.Fingerprint, want)
	}
}

// TestOpenRefusesCorruption drives every malformed-archive class through
// Open: all must return ErrBadBundle, none may panic.
func TestOpenRefusesCorruption(t *testing.T) {
	valid, _ := buildBundle(t, &scaleEstimator{Scale: 3}, 5, bundle.Meta{})
	man, payload := dissect(t, valid)

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"not gzip", []byte("definitely not a gzip archive")},
		{"truncated half", valid[:len(valid)/2]},
		{"truncated tail", valid[:len(valid)-4]},
		{"checksum mismatch", func() []byte {
			bad := append([]byte(nil), payload...)
			bad[len(bad)-1] ^= 0xff
			return rawArchive(t, marshalManifest(t, man), bad)
		}()},
		{"manifest estimator mismatch", func() []byte {
			m := man
			m.Estimator = costmodel.NameScaledCost
			return rawArchive(t, marshalManifest(t, m), payload)
		}()},
		{"manifest names no estimator", func() []byte {
			m := man
			m.Estimator = ""
			return rawArchive(t, marshalManifest(t, m), payload)
		}()},
		{"manifest revision zero", func() []byte {
			m := man
			m.Revision = 0
			return rawArchive(t, marshalManifest(t, m), payload)
		}()},
		{"malformed manifest json", rawArchive(t, []byte("{nope"), payload)},
		{"undecodable payload", func() []byte {
			// Rewrap fixes the checksum over the garbage, so only the
			// load step is left to refuse.
			var buf bytes.Buffer
			if err := bundle.Rewrap(&buf, man, []byte("not a costmodel payload")); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := bundle.Open(bytes.NewReader(tc.data)); !errors.Is(err, bundle.ErrBadBundle) {
				t.Fatalf("Open(%s) err = %v, want ErrBadBundle", tc.name, err)
			}
		})
	}
}

// TestOpenRefusesPayloadNameMismatch covers the subtler mismatch: the
// manifest and checksum are internally consistent but the payload's own
// self-describing header names a different estimator.
func TestOpenRefusesPayloadNameMismatch(t *testing.T) {
	valid, _ := buildBundle(t, &scaleEstimator{Scale: 3}, 5, bundle.Meta{})
	man, payload := dissect(t, valid)

	// Rewrap recomputes the checksum, so the only failing check left is
	// the manifest-vs-payload estimator comparison.
	man.Estimator = costmodel.NameScaledCost
	var buf bytes.Buffer
	if err := bundle.Rewrap(&buf, man, payload); err != nil {
		t.Fatal(err)
	}
	_, err := bundle.Open(bytes.NewReader(buf.Bytes()))
	if !errors.Is(err, bundle.ErrBadBundle) {
		t.Fatalf("err = %v, want ErrBadBundle", err)
	}
}
