package bundle

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"github.com/zeroshot-db/zeroshot/internal/costmodel"
	"github.com/zeroshot-db/zeroshot/internal/obs"
)

// Activator is the activation sink — satisfied by *serving.Session,
// whose AttachModel is the hot-swap path (generation bump, scheduler
// flush-time lookup). Declared here so this package does not import
// serving.
type Activator interface {
	AttachModel(est costmodel.Estimator) error
}

// DistConfig configures one replica's Distributor.
type DistConfig struct {
	// Store is where bundles are fetched from. Required.
	Store Store
	// Target receives verified estimators. Required.
	Target Activator
	// Estimator is the registry name this distributor accepts; bundles
	// wrapping any other estimator refuse activation. Required.
	Estimator string
	// Interval is the base poll period for Start. Each sleep is jittered
	// ±25% so a fleet of replicas does not stampede the store in
	// lockstep. Defaults to DefaultInterval.
	Interval time.Duration
	// MaxBackoff caps the exponential backoff after fetch/verify
	// failures. Defaults to 8× the interval.
	MaxBackoff time.Duration
	// Now and Rand are test seams; they default to time.Now and a
	// process-wide source.
	Now  func() time.Time
	Rand *rand.Rand
	// Events, when non-nil, receives bundle activation and rollback
	// events with Origin as the recording origin (the replica name).
	// Nil disables.
	Events *obs.Log
	Origin string
}

// DefaultInterval is the poll period when DistConfig leaves it zero.
const DefaultInterval = 3 * time.Second

// Status is a distributor's observable state, surfaced per replica in
// /v1/stats and /v1/bundles so generation skew across a ring is visible.
type Status struct {
	// Estimator is the accepted registry name.
	Estimator string `json:"estimator"`
	// Revision is the currently activated revision (0 before the first
	// activation).
	Revision int64 `json:"revision"`
	// Polls counts PollOnce calls; Skips those short-circuited by the
	// revision check; Activations successful hot-swaps; Failures
	// fetch/verify/activate errors; Rollbacks local Rollback calls.
	Polls       int64 `json:"polls"`
	Skips       int64 `json:"skips"`
	Activations int64 `json:"activations"`
	Failures    int64 `json:"failures"`
	Rollbacks   int64 `json:"rollbacks"`
	// LastError is the most recent failure, cleared by the next success.
	LastError string `json:"last_error,omitempty"`
	// LastActivated is when the current revision activated.
	LastActivated time.Time `json:"last_activated,omitzero"`
	// BackoffUntil is non-zero while the poll loop is backing off.
	BackoffUntil time.Time `json:"backoff_until,omitzero"`
	// Manifest describes the activated revision, nil before the first.
	Manifest *Manifest `json:"manifest,omitempty"`
}

// Distributor is the per-replica poll/verify/activate client. PollOnce
// is the whole protocol; Start just runs it on a jittered timer.
type Distributor struct {
	cfg DistConfig

	mu        sync.Mutex
	st        Status
	backoff   time.Duration // current backoff step, 0 when healthy
	nextAfter time.Time     // do not poll before this (backoff gate)

	stop     chan struct{}
	done     chan struct{}
	startErr sync.Once
}

// NewDistributor validates the config and returns an idle distributor —
// call PollOnce directly (tests, deterministic harnesses) or Start for
// the background loop.
func NewDistributor(cfg DistConfig) (*Distributor, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("bundle: distributor needs a store")
	}
	if cfg.Target == nil {
		return nil, fmt.Errorf("bundle: distributor needs an activation target")
	}
	if cfg.Estimator == "" {
		return nil, fmt.Errorf("bundle: distributor needs an estimator name")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 8 * cfg.Interval
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Rand == nil {
		cfg.Rand = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return &Distributor{
		cfg:  cfg,
		st:   Status{Estimator: cfg.Estimator},
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}, nil
}

// Status snapshots the distributor's counters and activated revision.
func (d *Distributor) Status() Status {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.st
	if st.Manifest != nil {
		man := *st.Manifest
		st.Manifest = &man
	}
	st.BackoffUntil = d.nextAfter
	return st
}

// Revision returns the currently activated revision (0 if none).
func (d *Distributor) Revision() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.st.Revision
}

// MarkActivated records that the target already serves revision man —
// the publishing replica's own accept path activated the model locally
// before the bundle existed, so its distributor must not re-download
// and re-attach (which would bump the serving generation for nothing).
func (d *Distributor) MarkActivated(man Manifest) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if man.Revision <= d.st.Revision {
		return
	}
	m := man
	d.st.Revision = man.Revision
	d.st.Manifest = &m
	d.st.LastActivated = d.cfg.Now()
}

// fail records a failure and advances the exponential backoff gate.
func (d *Distributor) fail(err error) {
	d.st.Failures++
	d.st.LastError = err.Error()
	if d.backoff == 0 {
		d.backoff = d.cfg.Interval
	} else {
		d.backoff *= 2
	}
	if d.backoff > d.cfg.MaxBackoff {
		d.backoff = d.cfg.MaxBackoff
	}
	d.nextAfter = d.cfg.Now().Add(d.backoff)
}

// ok clears failure state after any successful poll.
func (d *Distributor) ok() {
	d.st.LastError = ""
	d.backoff = 0
	d.nextAfter = time.Time{}
}

// PollOnce runs one protocol round: check the store head, short-circuit
// if it is not beyond the activated revision, otherwise fetch, verify
// (checksum, loadable payload, estimator-name match, revision match and
// strictly-increasing), and activate via the target's hot-swap.
// Returns whether a new revision activated. While a backoff window from
// a previous failure is open the round is skipped entirely.
func (d *Distributor) PollOnce(ctx context.Context) (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()

	if !d.nextAfter.IsZero() && d.cfg.Now().Before(d.nextAfter) {
		return false, nil
	}
	d.st.Polls++

	head, err := d.cfg.Store.Latest(ctx)
	if errors.Is(err, ErrNotFound) {
		// Empty store: nothing published yet is a healthy state.
		d.st.Skips++
		d.ok()
		return false, nil
	}
	if err != nil {
		err = fmt.Errorf("bundle: poll store: %w", err)
		d.fail(err)
		return false, err
	}
	if head <= d.st.Revision {
		// The ETag idiom: the head has not moved past us, skip the fetch.
		d.st.Skips++
		d.ok()
		return false, nil
	}

	man, err := d.activateLocked(ctx, head)
	if err != nil {
		d.fail(err)
		return false, err
	}
	d.st.Revision = man.Revision
	d.st.Manifest = &man
	d.st.LastActivated = d.cfg.Now()
	d.st.Activations++
	d.ok()
	d.cfg.Events.Record(obs.EventBundleActivated, d.cfg.Origin, map[string]string{
		"revision":  strconv.FormatInt(man.Revision, 10),
		"estimator": man.Estimator,
	})
	return true, nil
}

// activateLocked fetches, verifies, and attaches one revision. The
// caller holds d.mu. Verification failures leave the serving generation
// untouched: AttachModel only runs after every check passes.
func (d *Distributor) activateLocked(ctx context.Context, revision int64) (Manifest, error) {
	rc, err := d.cfg.Store.Fetch(ctx, revision)
	if err != nil {
		return Manifest{}, fmt.Errorf("bundle: fetch revision %d: %w", revision, err)
	}
	b, err := Open(rc)
	closeErr := rc.Close()
	if err != nil {
		return Manifest{}, fmt.Errorf("revision %d: %w", revision, err)
	}
	if closeErr != nil {
		return Manifest{}, fmt.Errorf("bundle: close revision %d: %w", revision, closeErr)
	}
	if b.Manifest.Revision != revision {
		return Manifest{}, badf("store revision %d holds manifest revision %d", revision, b.Manifest.Revision)
	}
	if b.Manifest.Estimator != d.cfg.Estimator {
		return Manifest{}, badf("bundle wraps estimator %q, this replica distributes %q", b.Manifest.Estimator, d.cfg.Estimator)
	}
	if err := d.cfg.Target.AttachModel(b.Estimator); err != nil {
		return Manifest{}, fmt.Errorf("bundle: activate revision %d: %w", revision, err)
	}
	return b.Manifest, nil
}

// Rollback reactivates a retained revision on THIS replica, bypassing
// the strictly-increasing poll rule (the operator asked for it). The
// next poll will re-activate the store head if it is newer — for a
// durable fleet-wide rollback use Publisher.Rollback, which republishes
// the old payload as a new head. revision 0 means "one before current".
func (d *Distributor) Rollback(ctx context.Context, revision int64) (Manifest, error) {
	d.mu.Lock()
	defer d.mu.Unlock()

	if revision == 0 {
		revs, err := d.cfg.Store.Revisions(ctx)
		if err != nil {
			return Manifest{}, err
		}
		for i := len(revs) - 1; i >= 0; i-- {
			if revs[i] < d.st.Revision {
				revision = revs[i]
				break
			}
		}
		if revision == 0 {
			return Manifest{}, fmt.Errorf("bundle: rollback: no retained revision before %d", d.st.Revision)
		}
	}
	man, err := d.activateLocked(ctx, revision)
	if err != nil {
		d.st.Failures++
		d.st.LastError = err.Error()
		return Manifest{}, err
	}
	d.st.Revision = man.Revision
	d.st.Manifest = &man
	d.st.LastActivated = d.cfg.Now()
	d.st.Rollbacks++
	d.st.LastError = ""
	d.cfg.Events.Record(obs.EventBundleRollback, d.cfg.Origin, map[string]string{
		"revision":  strconv.FormatInt(man.Revision, 10),
		"estimator": man.Estimator,
	})
	return man, nil
}

// Start launches the background poll loop; Close stops it. Each sleep
// is the configured interval jittered ±25% (or the remaining backoff,
// whichever is later).
func (d *Distributor) Start() {
	d.startErr.Do(func() {
		go d.loop()
	})
}

func (d *Distributor) loop() {
	defer close(d.done)
	for {
		d.mu.Lock()
		sleep := d.jitteredLocked()
		d.mu.Unlock()
		timer := time.NewTimer(sleep)
		select {
		case <-d.stop:
			timer.Stop()
			return
		case <-timer.C:
		}
		ctx, cancel := context.WithTimeout(context.Background(), d.cfg.Interval)
		_, _ = d.PollOnce(ctx) // errors land in Status.LastError
		cancel()
	}
}

// jitteredLocked computes the next sleep: interval ±25%, extended to
// cover any open backoff window. Caller holds d.mu.
func (d *Distributor) jitteredLocked() time.Duration {
	base := d.cfg.Interval
	jitter := time.Duration((d.cfg.Rand.Float64() - 0.5) * 0.5 * float64(base))
	sleep := base + jitter
	if !d.nextAfter.IsZero() {
		if until := d.nextAfter.Sub(d.cfg.Now()); until > sleep {
			sleep = until
		}
	}
	if sleep < time.Millisecond {
		sleep = time.Millisecond
	}
	return sleep
}

// Close stops the background loop (if started) and waits for it.
func (d *Distributor) Close() {
	select {
	case <-d.stop:
	default:
		close(d.stop)
	}
	d.startErr.Do(func() { close(d.done) }) // never started: unblock the wait
	<-d.done
}
