package bundle_test

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/zeroshot-db/zeroshot/internal/bundle"
	"github.com/zeroshot-db/zeroshot/internal/costmodel"
)

// recordingTarget is a fake Activator counting attachments.
type recordingTarget struct {
	mu       sync.Mutex
	attached []costmodel.Estimator
	fail     error
}

func (r *recordingTarget) AttachModel(est costmodel.Estimator) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.fail != nil {
		return r.fail
	}
	r.attached = append(r.attached, est)
	return nil
}

func (r *recordingTarget) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.attached)
}

func (r *recordingTarget) lastScale() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.attached) == 0 {
		return 0
	}
	return r.attached[len(r.attached)-1].(*scaleEstimator).Scale
}

func newTestDistributor(t *testing.T, st bundle.Store, target bundle.Activator) *bundle.Distributor {
	t.Helper()
	d, err := bundle.NewDistributor(bundle.DistConfig{
		Store:     st,
		Target:    target,
		Estimator: testEstimatorName,
		Interval:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

func TestDistributorValidatesConfig(t *testing.T) {
	st := newDirStore(t)
	target := &recordingTarget{}
	for _, cfg := range []bundle.DistConfig{
		{Target: target, Estimator: "x"},
		{Store: st, Estimator: "x"},
		{Store: st, Target: target},
	} {
		if _, err := bundle.NewDistributor(cfg); err == nil {
			t.Fatalf("NewDistributor(%+v) accepted an incomplete config", cfg)
		}
	}
}

func TestDistributorPollActivatesAndShortCircuits(t *testing.T) {
	ctx := context.Background()
	st := newDirStore(t)
	pub := bundle.NewPublisher(st, 5)
	target := &recordingTarget{}
	d := newTestDistributor(t, st, target)

	// Empty store: healthy no-op.
	if act, err := d.PollOnce(ctx); err != nil || act {
		t.Fatalf("empty poll = %v/%v", act, err)
	}

	if _, err := pub.Publish(ctx, &scaleEstimator{Scale: 2}, bundle.Meta{}); err != nil {
		t.Fatal(err)
	}
	act, err := d.PollOnce(ctx)
	if err != nil || !act {
		t.Fatalf("poll = %v/%v, want activation", act, err)
	}
	if target.count() != 1 || target.lastScale() != 2 {
		t.Fatalf("target saw %d attachments (scale %v), want 1 of scale 2", target.count(), target.lastScale())
	}
	st1 := d.Status()
	if st1.Revision != 1 || st1.Activations != 1 || st1.Manifest == nil {
		t.Fatalf("status = %+v", st1)
	}

	// Head unchanged: the revision short-circuit skips the fetch.
	if act, err := d.PollOnce(ctx); err != nil || act {
		t.Fatalf("repeat poll = %v/%v, want skip", act, err)
	}
	if st2 := d.Status(); st2.Skips < 1 || target.count() != 1 {
		t.Fatalf("short-circuit missing: %+v, %d attachments", st2, target.count())
	}

	// New head: picked up on the next poll.
	if _, err := pub.Publish(ctx, &scaleEstimator{Scale: 3}, bundle.Meta{}); err != nil {
		t.Fatal(err)
	}
	if act, err := d.PollOnce(ctx); err != nil || !act {
		t.Fatalf("poll after publish = %v/%v", act, err)
	}
	if d.Revision() != 2 || target.lastScale() != 3 {
		t.Fatalf("revision %d scale %v, want 2 / 3", d.Revision(), target.lastScale())
	}
}

// TestDistributorRefusals drives every refusal class through the poll
// path and asserts the target is never touched.
func TestDistributorRefusals(t *testing.T) {
	ctx := context.Background()

	t.Run("corrupt archive", func(t *testing.T) {
		st := newDirStore(t)
		target := &recordingTarget{}
		d := newTestDistributor(t, st, target)
		if err := st.Put(ctx, 1, []byte("garbage")); err != nil {
			t.Fatal(err)
		}
		if _, err := d.PollOnce(ctx); err == nil {
			t.Fatal("corrupt bundle activated")
		}
		if target.count() != 0 || d.Revision() != 0 {
			t.Fatalf("corrupt bundle reached the target: %d attachments, rev %d", target.count(), d.Revision())
		}
		if s := d.Status(); s.Failures != 1 || s.LastError == "" {
			t.Fatalf("status = %+v", s)
		}
	})

	t.Run("estimator mismatch", func(t *testing.T) {
		st := newDirStore(t)
		target := &recordingTarget{}
		d, err := bundle.NewDistributor(bundle.DistConfig{
			Store: st, Target: target, Estimator: costmodel.NameScaledCost, Interval: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(d.Close)
		data, _ := buildBundle(t, &scaleEstimator{Scale: 2}, 1, bundle.Meta{})
		if err := st.Put(ctx, 1, data); err != nil {
			t.Fatal(err)
		}
		_, err = d.PollOnce(ctx)
		if err == nil || !strings.Contains(err.Error(), "this replica distributes") {
			t.Fatalf("err = %v, want estimator-mismatch refusal", err)
		}
		if target.count() != 0 {
			t.Fatal("mismatched bundle reached the target")
		}
	})

	t.Run("revision regression", func(t *testing.T) {
		st := newDirStore(t)
		target := &recordingTarget{}
		d := newTestDistributor(t, st, target)
		// Activated revision 5 already (e.g. via the publisher hook).
		d.MarkActivated(bundle.Manifest{Estimator: testEstimatorName, Revision: 5})
		data, _ := buildBundle(t, &scaleEstimator{Scale: 9}, 3, bundle.Meta{})
		if err := st.Put(ctx, 3, data); err != nil {
			t.Fatal(err)
		}
		// Store head 3 < activated 5: a regression, skipped not activated.
		if act, err := d.PollOnce(ctx); err != nil || act {
			t.Fatalf("regressive poll = %v/%v, want skip", act, err)
		}
		if target.count() != 0 || d.Revision() != 5 {
			t.Fatalf("regression activated: %d attachments, rev %d", target.count(), d.Revision())
		}
	})

	t.Run("manifest revision disagrees with store key", func(t *testing.T) {
		st := newDirStore(t)
		target := &recordingTarget{}
		d := newTestDistributor(t, st, target)
		// A bundle claiming revision 1 stored under key 7 — replay of an
		// old artifact at a new position must refuse.
		data, _ := buildBundle(t, &scaleEstimator{Scale: 9}, 1, bundle.Meta{})
		if err := st.Put(ctx, 7, data); err != nil {
			t.Fatal(err)
		}
		_, err := d.PollOnce(ctx)
		if err == nil || !strings.Contains(err.Error(), "holds manifest revision") {
			t.Fatalf("err = %v, want store/manifest revision disagreement", err)
		}
		if target.count() != 0 {
			t.Fatal("replayed bundle reached the target")
		}
	})

	t.Run("activation failure", func(t *testing.T) {
		st := newDirStore(t)
		target := &recordingTarget{fail: context.DeadlineExceeded}
		d := newTestDistributor(t, st, target)
		data, _ := buildBundle(t, &scaleEstimator{Scale: 2}, 1, bundle.Meta{})
		if err := st.Put(ctx, 1, data); err != nil {
			t.Fatal(err)
		}
		if _, err := d.PollOnce(ctx); err == nil {
			t.Fatal("failed activation reported success")
		}
		if d.Revision() != 0 {
			t.Fatalf("revision advanced past a failed activation: %d", d.Revision())
		}
	})
}

// TestDistributorBackoff checks the failure gate: after an error the
// next polls inside the backoff window are no-ops, and the window grows
// exponentially up to the cap.
func TestDistributorBackoff(t *testing.T) {
	ctx := context.Background()
	st := newDirStore(t)
	target := &recordingTarget{}

	now := time.Unix(1000, 0)
	d, err := bundle.NewDistributor(bundle.DistConfig{
		Store:      st,
		Target:     target,
		Estimator:  testEstimatorName,
		Interval:   time.Second,
		MaxBackoff: 4 * time.Second,
		Now:        func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)

	if err := st.Put(ctx, 1, []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	if _, err := d.PollOnce(ctx); err == nil {
		t.Fatal("garbage activated")
	}
	st1 := d.Status()
	if st1.BackoffUntil.IsZero() {
		t.Fatalf("no backoff after failure: %+v", st1)
	}
	// Inside the window: skipped without even counting a poll.
	polls := st1.Polls
	if _, err := d.PollOnce(ctx); err != nil {
		t.Fatalf("in-backoff poll errored: %v", err)
	}
	if d.Status().Polls != polls {
		t.Fatal("in-backoff poll was not gated")
	}
	// Past the window: retried, failed again, backoff doubled.
	now = now.Add(1100 * time.Millisecond)
	if _, err := d.PollOnce(ctx); err == nil {
		t.Fatal("garbage activated on retry")
	}
	if until := d.Status().BackoffUntil.Sub(now); until != 2*time.Second {
		t.Fatalf("second backoff = %v, want 2s", until)
	}
	// Two more failures pin at the cap.
	for i := 0; i < 2; i++ {
		now = now.Add(5 * time.Second)
		d.PollOnce(ctx)
	}
	if until := d.Status().BackoffUntil.Sub(now); until != 4*time.Second {
		t.Fatalf("capped backoff = %v, want 4s", until)
	}

	// Replace the garbage with a real head: success clears the backoff.
	if err := st.Delete(ctx, 1); err != nil {
		t.Fatal(err)
	}
	data, _ := buildBundle(t, &scaleEstimator{Scale: 2}, 2, bundle.Meta{})
	if err := st.Put(ctx, 2, data); err != nil {
		t.Fatal(err)
	}
	now = now.Add(5 * time.Second)
	if act, err := d.PollOnce(ctx); err != nil || !act {
		t.Fatalf("recovery poll = %v/%v", act, err)
	}
	if s := d.Status(); !s.BackoffUntil.IsZero() || s.LastError != "" {
		t.Fatalf("backoff not cleared by success: %+v", s)
	}
}

func TestDistributorMarkActivated(t *testing.T) {
	ctx := context.Background()
	st := newDirStore(t)
	pub := bundle.NewPublisher(st, 5)
	target := &recordingTarget{}
	d := newTestDistributor(t, st, target)

	man, err := pub.Publish(ctx, &scaleEstimator{Scale: 2}, bundle.Meta{})
	if err != nil {
		t.Fatal(err)
	}
	// The publishing replica's accept path already attached the model.
	d.MarkActivated(man)
	if act, err := d.PollOnce(ctx); err != nil || act {
		t.Fatalf("poll after MarkActivated = %v/%v, want skip", act, err)
	}
	if target.count() != 0 {
		t.Fatal("marked revision re-activated")
	}
	// Stale marks are ignored.
	d.MarkActivated(bundle.Manifest{Revision: 1})
	if d.Revision() != man.Revision {
		t.Fatalf("stale mark regressed revision to %d", d.Revision())
	}
}

func TestDistributorRollbackLocal(t *testing.T) {
	ctx := context.Background()
	st := newDirStore(t)
	pub := bundle.NewPublisher(st, 5)
	target := &recordingTarget{}
	d := newTestDistributor(t, st, target)

	for i := 1; i <= 3; i++ {
		if _, err := pub.Publish(ctx, &scaleEstimator{Scale: float64(i)}, bundle.Meta{}); err != nil {
			t.Fatal(err)
		}
		if _, err := d.PollOnce(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if d.Revision() != 3 || target.lastScale() != 3 {
		t.Fatalf("setup: rev %d scale %v", d.Revision(), target.lastScale())
	}

	// revision 0 = one before current.
	man, err := d.Rollback(ctx, 0)
	if err != nil || man.Revision != 2 {
		t.Fatalf("Rollback = %+v (err %v), want rev 2", man, err)
	}
	if target.lastScale() != 2 {
		t.Fatalf("rolled-back scale = %v, want 2", target.lastScale())
	}
	if s := d.Status(); s.Rollbacks != 1 || s.Revision != 2 {
		t.Fatalf("status = %+v", s)
	}

	// Explicit ancient target.
	if man, err := d.Rollback(ctx, 1); err != nil || man.Revision != 1 || target.lastScale() != 1 {
		t.Fatalf("explicit rollback = %+v (err %v), scale %v", man, err, target.lastScale())
	}
	// Nothing older retained.
	if _, err := d.Rollback(ctx, 0); err == nil {
		t.Fatal("rollback below the oldest retained revision accepted")
	}
	// The next poll re-converges onto the store head — local rollback is
	// an override, not a pin.
	if act, err := d.PollOnce(ctx); err != nil || !act {
		t.Fatalf("post-rollback poll = %v/%v, want re-activation of head", act, err)
	}
	if d.Revision() != 3 {
		t.Fatalf("revision after re-poll = %d, want head 3", d.Revision())
	}
}

// TestDistributorBackgroundLoop smoke-tests Start/Close: a published
// revision is picked up without manual polling.
func TestDistributorBackgroundLoop(t *testing.T) {
	ctx := context.Background()
	st := newDirStore(t)
	pub := bundle.NewPublisher(st, 5)
	target := &recordingTarget{}
	d := newTestDistributor(t, st, target)

	if _, err := pub.Publish(ctx, &scaleEstimator{Scale: 2}, bundle.Meta{}); err != nil {
		t.Fatal(err)
	}
	d.Start()
	d.Start() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for d.Revision() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if d.Revision() != 1 {
		t.Fatalf("background loop never activated: %+v", d.Status())
	}
	d.Close()
	d.Close() // idempotent
}
