package bundle_test

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"context"
	"encoding/gob"
	"encoding/json"
	"io"
	"testing"

	"github.com/zeroshot-db/zeroshot/internal/bundle"
	"github.com/zeroshot-db/zeroshot/internal/costmodel"
)

// scaleEstimator is the test model: predicts Scale·truth(cost) where
// truth(cost) = 1e-6·(cost+1), so a bundle's behaviour is pinned by one
// float and two copies are bitwise-comparable through their predictions.
// It registers under "bundletest" so costmodel.Load — and therefore
// bundle.Open — can reconstruct it from the archive payload.
type scaleEstimator struct {
	Scale float64
}

const testEstimatorName = "bundletest"

func init() {
	costmodel.Register(testEstimatorName, costmodel.Factory{
		New: func(costmodel.Options) (costmodel.Estimator, error) {
			return &scaleEstimator{Scale: 1}, nil
		},
		Load: func(r io.Reader) (costmodel.Estimator, error) {
			var e scaleEstimator
			if err := gob.NewDecoder(r).Decode(&e); err != nil {
				return nil, err
			}
			return &e, nil
		},
	})
}

func truth(cost float64) float64 { return 1e-6 * (cost + 1) }

func (e *scaleEstimator) Name() string { return testEstimatorName }

func (e *scaleEstimator) Fit(ctx context.Context, samples []costmodel.Sample) (*costmodel.FitReport, error) {
	return &costmodel.FitReport{Samples: len(samples)}, nil
}

func (e *scaleEstimator) Predict(ctx context.Context, in costmodel.PlanInput) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return e.Scale * truth(in.OptimizerCost), nil
}

func (e *scaleEstimator) PredictBatch(ctx context.Context, ins []costmodel.PlanInput) ([]float64, error) {
	out := make([]float64, len(ins))
	for i, in := range ins {
		v, err := e.Predict(ctx, in)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func (e *scaleEstimator) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(e)
}

func (e *scaleEstimator) Clone() (costmodel.Estimator, error) {
	return &scaleEstimator{Scale: e.Scale}, nil
}

func (e *scaleEstimator) FineTune(ctx context.Context, samples []costmodel.Sample, epochs int, lr float64) (*costmodel.FitReport, error) {
	// Recalibrate exactly: median-free single-ratio fit is enough for a
	// deterministic test model.
	if len(samples) > 0 {
		s := samples[0]
		e.Scale *= s.RuntimeSec / (e.Scale * truth(s.OptimizerCost))
	}
	return &costmodel.FitReport{Samples: len(samples)}, nil
}

// buildBundle builds est into archive bytes at the given revision.
func buildBundle(t *testing.T, est costmodel.Estimator, rev int64, meta bundle.Meta) ([]byte, bundle.Manifest) {
	t.Helper()
	var buf bytes.Buffer
	man, err := bundle.Build(&buf, est, rev, meta)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return buf.Bytes(), man
}

// rawArchive assembles an archive from arbitrary manifest JSON and
// payload bytes WITHOUT any checksum fixup — the corruption-injection
// primitive behind the refusal tests.
func rawArchive(t *testing.T, manJSON, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	tw := tar.NewWriter(gz)
	for _, e := range []struct {
		name string
		data []byte
	}{{"manifest.json", manJSON}, {"model.gob", payload}} {
		if err := tw.WriteHeader(&tar.Header{Name: e.name, Mode: 0o644, Size: int64(len(e.data))}); err != nil {
			t.Fatal(err)
		}
		if _, err := tw.Write(e.data); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// dissect pulls the manifest and payload back out of a valid archive so
// tests can mutate one part and reassemble with rawArchive.
func dissect(t *testing.T, data []byte) (bundle.Manifest, []byte) {
	t.Helper()
	gz, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	tr := tar.NewReader(gz)
	var man bundle.Manifest
	var payload []byte
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(tr)
		if err != nil {
			t.Fatal(err)
		}
		switch hdr.Name {
		case "manifest.json":
			if err := json.Unmarshal(b, &man); err != nil {
				t.Fatal(err)
			}
		case "model.gob":
			payload = b
		}
	}
	return man, payload
}

// marshalManifest JSON-encodes a manifest for rawArchive.
func marshalManifest(t *testing.T, man bundle.Manifest) []byte {
	t.Helper()
	b, err := json.Marshal(man)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
