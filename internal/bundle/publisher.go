package bundle

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"sync"

	"github.com/zeroshot-db/zeroshot/internal/costmodel"
	"github.com/zeroshot-db/zeroshot/internal/obs"
)

// DefaultRetain is how many revisions a Publisher keeps when the caller
// does not say — enough history to roll back past a bad run of
// adaptations without the store growing unboundedly.
const DefaultRetain = 5

// Publisher assigns revisions and writes bundles to a store, pruning to
// a retained history. One Publisher must own a store's revision
// sequence (Publish serializes internally); distributors are read-only
// peers.
type Publisher struct {
	store  Store
	retain int
	events *obs.Log // nil disables; all uses are nil-safe

	mu   sync.Mutex
	last Manifest // most recently published; zero until the first Publish
}

// NewPublisher wraps a store. retain <= 0 selects DefaultRetain.
func NewPublisher(store Store, retain int) *Publisher {
	if retain <= 0 {
		retain = DefaultRetain
	}
	return &Publisher{store: store, retain: retain}
}

// WithEvents attaches a control-plane event log: every publish and
// rollback records one event. Returns p for chaining.
func (p *Publisher) WithEvents(l *obs.Log) *Publisher {
	p.events = l
	return p
}

// Retain reports the configured history depth.
func (p *Publisher) Retain() int { return p.retain }

// Last returns the most recently published manifest and whether one
// exists (this process's publishes only — it does not scan the store).
func (p *Publisher) Last() (Manifest, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.last, p.last.Revision != 0
}

// nextRevision peeks the store head and returns head+1 (1 when empty).
func (p *Publisher) nextRevision(ctx context.Context) (int64, error) {
	head, err := p.store.Latest(ctx)
	switch {
	case err == nil:
		return head + 1, nil
	case errors.Is(err, ErrNotFound):
		return 1, nil
	default:
		return 0, err
	}
}

// Publish builds est into the next revision, writes it to the store,
// and prunes history beyond the retain depth.
func (p *Publisher) Publish(ctx context.Context, est costmodel.Estimator, meta Meta) (Manifest, error) {
	p.mu.Lock()
	defer p.mu.Unlock()

	rev, err := p.nextRevision(ctx)
	if err != nil {
		return Manifest{}, fmt.Errorf("bundle: next revision: %w", err)
	}
	var buf bytes.Buffer
	man, err := Build(&buf, est, rev, meta)
	if err != nil {
		return Manifest{}, err
	}
	if err := p.store.Put(ctx, rev, buf.Bytes()); err != nil {
		return Manifest{}, err
	}
	p.last = man
	p.prune(ctx)
	p.events.Record(obs.EventBundlePublished, "publisher", map[string]string{
		"revision":  strconv.FormatInt(man.Revision, 10),
		"estimator": man.Estimator,
	})
	return man, nil
}

// Rollback re-publishes a retained revision's payload as a NEW head
// revision, so every polling distributor converges onto the restored
// model through the normal download path — a durable, fleet-wide undo
// rather than a local override the next poll would revert. revision 0
// means "the one before the current head". The target must still be
// retained and must verify.
func (p *Publisher) Rollback(ctx context.Context, revision int64) (Manifest, error) {
	p.mu.Lock()
	defer p.mu.Unlock()

	revs, err := p.store.Revisions(ctx)
	if err != nil {
		return Manifest{}, err
	}
	if len(revs) == 0 {
		return Manifest{}, fmt.Errorf("bundle: rollback: %w: store is empty", ErrNotFound)
	}
	head := revs[len(revs)-1]
	if revision == 0 {
		if len(revs) < 2 {
			return Manifest{}, fmt.Errorf("bundle: rollback: no revision before head %d is retained", head)
		}
		revision = revs[len(revs)-2]
	}
	if revision >= head {
		return Manifest{}, fmt.Errorf("bundle: rollback target %d is not before head %d", revision, head)
	}

	rc, err := p.store.Fetch(ctx, revision)
	if err != nil {
		return Manifest{}, err
	}
	data, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		return Manifest{}, fmt.Errorf("bundle: read rollback target %d: %w", revision, err)
	}
	man, payload, err := readArchive(bytes.NewReader(data))
	if err != nil {
		return Manifest{}, fmt.Errorf("rollback target %d: %w", revision, err)
	}

	man.RollbackOf = revision
	man.RolledBackFrom = head
	man.Revision = head + 1
	var buf bytes.Buffer
	if err := Rewrap(&buf, man, payload); err != nil {
		return Manifest{}, err
	}
	if err := p.store.Put(ctx, man.Revision, buf.Bytes()); err != nil {
		return Manifest{}, err
	}
	p.last = man
	p.prune(ctx)
	p.events.Record(obs.EventBundleRollback, "publisher", map[string]string{
		"revision":    strconv.FormatInt(man.Revision, 10),
		"rollback_of": strconv.FormatInt(man.RollbackOf, 10),
		"from":        strconv.FormatInt(man.RolledBackFrom, 10),
		"estimator":   man.Estimator,
	})
	return man, nil
}

// prune drops revisions beyond the retain depth, oldest first. Pruning
// is best-effort: a failed delete never fails the publish that
// triggered it.
func (p *Publisher) prune(ctx context.Context) {
	revs, err := p.store.Revisions(ctx)
	if err != nil || len(revs) <= p.retain {
		return
	}
	for _, rev := range revs[:len(revs)-p.retain] {
		_ = p.store.Delete(ctx, rev)
	}
}
