package bundle_test

import (
	"context"
	"testing"

	"github.com/zeroshot-db/zeroshot/internal/bundle"
)

func TestPublisherSequencesAndPrunes(t *testing.T) {
	ctx := context.Background()
	st := newDirStore(t)
	pub := bundle.NewPublisher(st, 3)

	for i := 1; i <= 5; i++ {
		man, err := pub.Publish(ctx, &scaleEstimator{Scale: float64(i)}, bundle.Meta{Samples: i})
		if err != nil {
			t.Fatalf("Publish %d: %v", i, err)
		}
		if man.Revision != int64(i) {
			t.Fatalf("revision = %d, want %d", man.Revision, i)
		}
	}
	revs, err := st.Revisions(ctx)
	if err != nil || len(revs) != 3 || revs[0] != 3 || revs[2] != 5 {
		t.Fatalf("retained = %v (err %v), want [3 4 5]", revs, err)
	}
	last, ok := pub.Last()
	if !ok || last.Revision != 5 || last.Samples != 5 {
		t.Fatalf("Last = %+v ok=%v", last, ok)
	}
}

func TestPublisherRollbackRepublishes(t *testing.T) {
	ctx := context.Background()
	st := newDirStore(t)
	pub := bundle.NewPublisher(st, 5)

	var wantSHA string
	for i := 1; i <= 3; i++ {
		man, err := pub.Publish(ctx, &scaleEstimator{Scale: float64(i)}, bundle.Meta{})
		if err != nil {
			t.Fatal(err)
		}
		if i == 2 {
			wantSHA = man.SHA256
		}
	}

	// revision 0 = the one before head: rev 2's payload as new head 4.
	man, err := pub.Rollback(ctx, 0)
	if err != nil {
		t.Fatalf("Rollback: %v", err)
	}
	if man.Revision != 4 || man.RollbackOf != 2 || man.RolledBackFrom != 3 {
		t.Fatalf("rollback manifest = %+v, want rev 4 of 2 from 3", man)
	}
	if man.SHA256 != wantSHA {
		t.Fatalf("rollback payload checksum %s != original rev 2 %s", man.SHA256, wantSHA)
	}

	// The republished head verifies and decodes back to rev 2's model.
	rc, err := st.Fetch(ctx, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	b, err := bundle.Open(rc)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Estimator.(*scaleEstimator).Scale; got != 2 {
		t.Fatalf("rolled-back model scale = %v, want 2", got)
	}

	// Explicit target, validation corners.
	if _, err := pub.Rollback(ctx, 4); err == nil {
		t.Fatal("rollback to head accepted")
	}
	if _, err := pub.Rollback(ctx, 99); err == nil {
		t.Fatal("rollback beyond head accepted")
	}
	if man, err := pub.Rollback(ctx, 1); err != nil || man.RollbackOf != 1 || man.Revision != 5 {
		t.Fatalf("explicit rollback = %+v (err %v)", man, err)
	}
}

func TestPublisherRollbackEmptyAndSingle(t *testing.T) {
	ctx := context.Background()
	st := newDirStore(t)
	pub := bundle.NewPublisher(st, 5)
	if _, err := pub.Rollback(ctx, 0); err == nil {
		t.Fatal("rollback on an empty store accepted")
	}
	if _, err := pub.Publish(ctx, &scaleEstimator{Scale: 1}, bundle.Meta{}); err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Rollback(ctx, 0); err == nil {
		t.Fatal("rollback with one retained revision accepted")
	}
}

func TestPublisherResumesFromStoreHead(t *testing.T) {
	// A restarted publisher must continue the sequence, not restart at 1.
	ctx := context.Background()
	st := newDirStore(t)
	if _, err := bundle.NewPublisher(st, 5).Publish(ctx, &scaleEstimator{Scale: 1}, bundle.Meta{}); err != nil {
		t.Fatal(err)
	}
	man, err := bundle.NewPublisher(st, 5).Publish(ctx, &scaleEstimator{Scale: 2}, bundle.Meta{})
	if err != nil || man.Revision != 2 {
		t.Fatalf("second publisher revision = %d (err %v), want 2", man.Revision, err)
	}
}
