package bundle

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// ErrNotFound reports a revision absent from a store — distinct from
// ErrBadBundle (present but unverifiable) so pollers can tell "nothing
// published yet" from "published garbage".
var ErrNotFound = errors.New("bundle: revision not found")

// Store is where bundles live between publisher and distributors. The
// local DirStore is the only implementation today; the interface is
// deliberately the minimal GET/PUT/LIST surface an HTTP or object-store
// backend would also offer (Latest is the ETag analogue — one cheap
// call that lets a poller skip the download entirely).
type Store interface {
	// Latest returns the highest revision in the store, or ErrNotFound
	// when the store is empty.
	Latest(ctx context.Context) (int64, error)
	// Fetch opens the archive for one revision; ErrNotFound if absent.
	Fetch(ctx context.Context, revision int64) (io.ReadCloser, error)
	// Put stores the archive bytes for a revision. Revisions are
	// immutable: overwriting an existing revision is an error.
	Put(ctx context.Context, revision int64, data []byte) error
	// Revisions lists all retained revisions in ascending order.
	Revisions(ctx context.Context) ([]int64, error)
	// Delete removes a retained revision (pruning). Deleting an absent
	// revision is not an error.
	Delete(ctx context.Context, revision int64) error
}

// DirStore keeps bundles as files in one directory, named
// bundle-%012d.tgz so lexical order is revision order. Writes go
// through a temp file + rename, so a concurrent Fetch never sees a
// half-written archive.
type DirStore struct {
	dir string
}

// NewDirStore opens (creating if needed) a directory-backed store.
func NewDirStore(dir string) (*DirStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("bundle: store directory is required")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("bundle: create store dir: %w", err)
	}
	return &DirStore{dir: dir}, nil
}

// Dir returns the backing directory.
func (s *DirStore) Dir() string { return s.dir }

// path returns the archive path for a revision.
func (s *DirStore) path(revision int64) string {
	return filepath.Join(s.dir, fmt.Sprintf("bundle-%012d.tgz", revision))
}

func (s *DirStore) Latest(ctx context.Context) (int64, error) {
	revs, err := s.Revisions(ctx)
	if err != nil {
		return 0, err
	}
	if len(revs) == 0 {
		return 0, ErrNotFound
	}
	return revs[len(revs)-1], nil
}

func (s *DirStore) Fetch(ctx context.Context, revision int64) (io.ReadCloser, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	f, err := os.Open(s.path(revision))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: revision %d", ErrNotFound, revision)
	}
	if err != nil {
		return nil, fmt.Errorf("bundle: open revision %d: %w", revision, err)
	}
	return f, nil
}

func (s *DirStore) Put(ctx context.Context, revision int64, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if revision < 1 {
		return fmt.Errorf("bundle: revision must be >= 1, got %d", revision)
	}
	dst := s.path(revision)
	if _, err := os.Stat(dst); err == nil {
		return fmt.Errorf("bundle: revision %d already exists (revisions are immutable)", revision)
	}
	tmp, err := os.CreateTemp(s.dir, ".bundle-*.tmp")
	if err != nil {
		return fmt.Errorf("bundle: stage revision %d: %w", revision, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("bundle: write revision %d: %w", revision, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("bundle: flush revision %d: %w", revision, err)
	}
	if err := os.Rename(tmpName, dst); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("bundle: commit revision %d: %w", revision, err)
	}
	return nil
}

func (s *DirStore) Revisions(ctx context.Context) ([]int64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("bundle: list store: %w", err)
	}
	var revs []int64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "bundle-") || !strings.HasSuffix(name, ".tgz") {
			continue
		}
		rev, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, "bundle-"), ".tgz"), 10, 64)
		if err != nil || rev < 1 {
			continue
		}
		revs = append(revs, rev)
	}
	sort.Slice(revs, func(i, j int) bool { return revs[i] < revs[j] })
	return revs, nil
}

func (s *DirStore) Delete(ctx context.Context, revision int64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	err := os.Remove(s.path(revision))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("bundle: delete revision %d: %w", revision, err)
	}
	return nil
}

// FetchManifest verifies one stored revision and returns its manifest —
// the listing primitive behind `zsdb bundle list` and GET /v1/bundles.
func FetchManifest(ctx context.Context, store Store, revision int64) (Manifest, error) {
	rc, err := store.Fetch(ctx, revision)
	if err != nil {
		return Manifest{}, err
	}
	defer rc.Close()
	man, err := Inspect(rc)
	if err != nil {
		return Manifest{}, fmt.Errorf("revision %d: %w", revision, err)
	}
	return man, nil
}

// List inspects every retained revision, ascending. A revision that
// fails verification is reported in place with a zero manifest holding
// only the revision, so an operator sees corruption instead of a gap;
// the error from the worst offender is returned alongside the list.
func List(ctx context.Context, store Store) ([]Manifest, error) {
	revs, err := store.Revisions(ctx)
	if err != nil {
		return nil, err
	}
	var firstErr error
	out := make([]Manifest, 0, len(revs))
	for _, rev := range revs {
		man, err := FetchManifest(ctx, store, rev)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			man = Manifest{Revision: rev}
		}
		out = append(out, man)
	}
	return out, firstErr
}
