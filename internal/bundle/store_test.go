package bundle_test

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"github.com/zeroshot-db/zeroshot/internal/bundle"
)

func newDirStore(t *testing.T) *bundle.DirStore {
	t.Helper()
	st, err := bundle.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestDirStoreLifecycle(t *testing.T) {
	ctx := context.Background()
	st := newDirStore(t)

	if _, err := st.Latest(ctx); !errors.Is(err, bundle.ErrNotFound) {
		t.Fatalf("empty Latest err = %v, want ErrNotFound", err)
	}
	if _, err := st.Fetch(ctx, 1); !errors.Is(err, bundle.ErrNotFound) {
		t.Fatalf("empty Fetch err = %v, want ErrNotFound", err)
	}

	for rev, body := range map[int64]string{1: "one", 2: "two", 5: "five"} {
		if err := st.Put(ctx, rev, []byte(body)); err != nil {
			t.Fatalf("Put(%d): %v", rev, err)
		}
	}
	head, err := st.Latest(ctx)
	if err != nil || head != 5 {
		t.Fatalf("Latest = %d (err %v), want 5", head, err)
	}
	revs, err := st.Revisions(ctx)
	if err != nil || len(revs) != 3 || revs[0] != 1 || revs[2] != 5 {
		t.Fatalf("Revisions = %v (err %v), want [1 2 5]", revs, err)
	}
	rc, err := st.Fetch(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(rc)
	rc.Close()
	if err != nil || string(body) != "two" {
		t.Fatalf("Fetch(2) = %q (err %v)", body, err)
	}

	// Revisions are immutable.
	if err := st.Put(ctx, 2, []byte("rewrite")); err == nil {
		t.Fatal("Put overwrote an existing revision")
	}

	if err := st.Delete(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete(ctx, 1); err != nil {
		t.Fatalf("re-delete errored: %v", err)
	}
	revs, _ = st.Revisions(ctx)
	if len(revs) != 2 || revs[0] != 2 {
		t.Fatalf("Revisions after delete = %v", revs)
	}
}

func TestDirStoreIgnoresForeignFiles(t *testing.T) {
	ctx := context.Background()
	st := newDirStore(t)
	if err := st.Put(ctx, 3, []byte("three")); err != nil {
		t.Fatal(err)
	}
	// Debris a real directory accumulates: temp files, notes, bad names.
	for _, name := range []string{"README", ".bundle-123.tmp", "bundle-abc.tgz", "bundle-000000000000.tgz"} {
		if err := os.WriteFile(filepath.Join(st.Dir(), name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	revs, err := st.Revisions(ctx)
	if err != nil || len(revs) != 1 || revs[0] != 3 {
		t.Fatalf("Revisions = %v (err %v), want [3]", revs, err)
	}
}

func TestListSurfacesCorruptRevisions(t *testing.T) {
	ctx := context.Background()
	st := newDirStore(t)
	data, man := buildBundle(t, &scaleEstimator{Scale: 1}, 1, bundle.Meta{})
	if err := st.Put(ctx, 1, data); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(ctx, 2, []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	mans, err := bundle.List(ctx, st)
	if err == nil {
		t.Fatal("List over a corrupt revision returned no error")
	}
	if len(mans) != 2 {
		t.Fatalf("List = %d manifests, want 2", len(mans))
	}
	if mans[0].SHA256 != man.SHA256 {
		t.Fatalf("good revision manifest = %+v", mans[0])
	}
	if mans[1].Revision != 2 || mans[1].SHA256 != "" {
		t.Fatalf("corrupt revision placeholder = %+v, want bare revision 2", mans[1])
	}
}
