// Package cluster scales the serving layer out: a Router partitions the
// attached databases of many replica backends across a consistent-hash
// Ring and fronts them with one prediction API — health-checked,
// failover-capable, and identical in behavior whether the replicas are
// in-process serving.Sessions (zero serialization, the single-binary
// `zsdb serve -replicas N` mode) or remote `zsdb serve` processes
// reached over HTTP (the `zsdb route -backends ...` mode).
//
// The paper's zero-shot promise — one model priced against databases it
// has never seen — pays off operationally when a deployment fronts
// *many* databases; the cluster layer is what lets that set outgrow one
// process while requests still land on the replica holding the target
// database's plan cache and adaptation window.
//
// Routing is by database name: the Ring's virtual nodes spread names
// across replicas and keep assignments stable when replicas join or
// leave (only the ranges adjacent to the changed member move). A
// request whose owner replica is down or unreachable fails over along
// the ring's successor sequence; cross-replica reads (database listing,
// stats) fan out with bounded concurrency and aggregate.
//
// The deterministic simulation harness in cluster/sim drives a Router
// with a seeded workload and a scripted fault schedule to assert the
// invariants failover must keep: no request lost while any candidate
// replica is healthy, minimal key movement on rebalance, and feedback
// landing on the replica that owns the database.
package cluster

import (
	"context"
	"errors"

	"github.com/zeroshot-db/zeroshot/internal/serving"
	"github.com/zeroshot-db/zeroshot/internal/whatif"
)

// ErrBackendDown marks a replica-level failure: the backend crashed,
// the connection failed, the call timed out, or the process is shutting
// down. It is the error class that triggers failover — the request is
// fine, the replica is not. Request-level errors (serving.ErrBadQuery,
// serving.ErrNotFound) are never wrapped in it.
var ErrBackendDown = errors.New("cluster: backend unavailable")

// ErrNoReplica is returned when a request exhausts its failover
// candidates: every replica that could own the database is down or
// unreachable.
var ErrNoReplica = errors.New("cluster: no healthy replica for request")

// ErrNoFeedback marks a backend that cannot ingest feedback (its
// adaptation loop is disabled).
var ErrNoFeedback = errors.New("cluster: backend has no adaptation loop")

// Backend is one replica the Router can route to. The two
// implementations — InProcess over a serving.Session and HTTPBackend
// over a remote `zsdb serve` — expose the same surface, so the Router
// (and the sim harness's fault injectors) never know which kind they
// are driving.
//
// Implementations must be safe for concurrent use. Methods return
// errors wrapping ErrBackendDown for replica-level failures and keep
// request-level failures (serving.ErrBadQuery, serving.ErrNotFound,
// ErrNoFeedback) unwrapped by it, because the Router fails over on the
// former and returns the latter to the caller.
type Backend interface {
	// Name identifies the replica; it is the ring member name, so it
	// must be unique within a Router and stable across health flaps.
	Name() string
	// Predict prices one statement against the backend's copy of db.
	Predict(ctx context.Context, db, model, sql string) (serving.Prediction, error)
	// PredictBatch prices many statements; per-item pipeline errors ride
	// in the result, the error return is request-level.
	PredictBatch(ctx context.Context, db, model string, sqls []string) (serving.BatchResult, error)
	// WhatIf runs one what-if sweep against the backend's copy of db.
	// Like Feedback it wants the owner: the sweep's prepared-plan and
	// encoded-graph caches live on the replica that serves the
	// database's predictions.
	WhatIf(ctx context.Context, db, model string, req whatif.Request) (*whatif.Report, error)
	// Feedback hands an observed runtime to the backend's adaptation
	// loop. It must reach the replica owning db — that replica's plan
	// cache retains the fingerprint's plan and its windows buffer the
	// samples — which is why the Router routes it like a Predict.
	Feedback(ctx context.Context, db, fingerprint string, actualSec float64) error
	// Databases lists the backend's attached databases.
	Databases(ctx context.Context) ([]serving.DatabaseInfo, error)
	// Stats snapshots the backend's serving counters.
	Stats(ctx context.Context) (serving.Stats, error)
	// Health probes liveness cheaply; nil means routable.
	Health(ctx context.Context) error
	// Close releases the backend (in-process: closes the session;
	// HTTP: drops idle connections — the remote process stays up).
	Close() error
}
