package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/zeroshot-db/zeroshot/internal/serving"
)

// inferCost is the simulated per-batch inference latency: the regime
// where replica scaling pays. The zero-shot model's PredictBatch costs
// on the order of a millisecond; 200µs keeps the benchmark quick while
// still dominating routing overhead (~3µs, see replicas=1 vs the
// instant-estimator numbers in EXPERIMENTS.md E8).
const inferCost = 200 * time.Microsecond

// BenchmarkClusterPredict measures routed prediction throughput over
// 1/2/4 mirrored in-process replicas under parallel load — the
// replica-scaling curve recorded as E8 in EXPERIMENTS.md. Each replica
// is a full serving session (own plan caches, own micro-batch
// scheduler, estimator with a simulated per-batch inference cost) over
// the shared fixture databases; the workload cycles both databases so
// requests spread across ring owners. With one replica every request
// funnels through one scheduler draining serialized inference batches;
// added replicas drain in parallel, so throughput climbs until the
// replicas outnumber the load.
func BenchmarkClusterPredict(b *testing.B) {
	f := fixtures(b)
	// Eight ring keys (four aliases per fixture database, same storage)
	// so the ring can spread load across every replica count measured —
	// with only two keys, at most two replicas would ever see traffic.
	type alias struct{ name, base string }
	var aliases []alias
	var dbNames []string
	for base := range f.dbs {
		for i := 0; i < 4; i++ {
			a := alias{name: fmt.Sprintf("%s%d", base, i), base: base}
			aliases = append(aliases, a)
			dbNames = append(dbNames, a.name)
		}
	}
	newBenchReplica := func(b *testing.B, name string) *InProcess {
		b.Helper()
		sess := serving.NewSession(serving.Config{})
		for _, a := range aliases {
			if err := sess.AttachDatabase(a.name, f.dbs[a.base]); err != nil {
				b.Fatal(err)
			}
		}
		if err := sess.AttachModel(&adaptableEstimator{name: "fake", delay: inferCost}); err != nil {
			b.Fatal(err)
		}
		rep, err := NewInProcess(name, sess, nil)
		if err != nil {
			b.Fatal(err)
		}
		return rep
	}
	sqlsFor := func(name string) []string {
		for _, a := range aliases {
			if a.name == name {
				return f.sqls[a.base]
			}
		}
		b.Fatalf("unknown alias %s", name)
		return nil
	}
	for _, replicas := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			router := NewRouter(Config{})
			defer router.Close()
			for i := 0; i < replicas; i++ {
				if err := router.Register(newBenchReplica(b, fmt.Sprintf("r%d", i))); err != nil {
					b.Fatal(err)
				}
			}
			ctx := context.Background()
			// Warm every replica's plan caches so the measured region is
			// routing + predict, not one-time parse/optimize.
			for _, db := range dbNames {
				for _, sql := range sqlsFor(db) {
					if _, err := router.Predict(ctx, db, "fake", sql); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.SetParallelism(4) // enough in-flight load to feed 4 replicas
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					db := dbNames[i%len(dbNames)]
					sqls := sqlsFor(db)
					if _, err := router.Predict(ctx, db, "fake", sqls[i%len(sqls)]); err != nil {
						b.Fatal(err)
					}
					i++
				}
			})
		})
	}
}
