package cluster

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sync"
	"testing"
	"time"

	"github.com/zeroshot-db/zeroshot/internal/adapt"
	"github.com/zeroshot-db/zeroshot/internal/collect"
	"github.com/zeroshot-db/zeroshot/internal/costmodel"
	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/serving"
	"github.com/zeroshot-db/zeroshot/internal/storage"
	"github.com/zeroshot-db/zeroshot/internal/whatif"
)

// ---- scripted fake backend (no serving pipeline) --------------------

// fakeBackend is a scriptable Backend for router unit tests: calls
// answer instantly and deterministically, failures are injected by
// flipping fields, and every call is recorded.
type fakeBackend struct {
	name string

	mu        sync.Mutex
	down      bool          // calls fail with ErrBackendDown
	slow      time.Duration // calls stall this long (checking ctx)
	dbs       map[string]bool
	predicts  int
	whatifs   int
	feedbacks map[string]int // db -> count
}

func newFakeBackend(name string, dbs ...string) *fakeBackend {
	f := &fakeBackend{name: name, dbs: map[string]bool{}, feedbacks: map[string]int{}}
	for _, db := range dbs {
		f.dbs[db] = true
	}
	return f
}

func (f *fakeBackend) setDown(v bool)          { f.mu.Lock(); f.down = v; f.mu.Unlock() }
func (f *fakeBackend) setSlow(d time.Duration) { f.mu.Lock(); f.slow = d; f.mu.Unlock() }
func (f *fakeBackend) predictCount() int       { f.mu.Lock(); defer f.mu.Unlock(); return f.predicts }
func (f *fakeBackend) feedbackCount(db string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.feedbacks[db]
}

func (f *fakeBackend) Name() string { return f.name }

// gate applies the scripted failure modes shared by every call.
func (f *fakeBackend) gate(ctx context.Context, db string, needDB bool) error {
	f.mu.Lock()
	down, slow := f.down, f.slow
	hasDB := !needDB || len(f.dbs) == 0 || f.dbs[db]
	f.mu.Unlock()
	if down {
		return fmt.Errorf("%w: %s scripted down", ErrBackendDown, f.name)
	}
	if slow > 0 {
		select {
		case <-time.After(slow):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if !hasDB {
		return fmt.Errorf("database %q not attached to %s: %w", db, f.name, serving.ErrNotFound)
	}
	return nil
}

// fakePrediction is the deterministic answer: a pure function of
// (db, sql), identical on every replica — which is exactly the property
// the mirrored cluster mode must preserve.
func fakePrediction(db, model, sql string) serving.Prediction {
	h := fnv.New64a()
	io.WriteString(h, db)
	io.WriteString(h, "|")
	io.WriteString(h, sql)
	return serving.Prediction{
		Database:    db,
		Model:       model,
		RuntimeSec:  float64(h.Sum64()%1_000_000) / 1e6,
		Fingerprint: costmodel.Fingerprint(sql),
	}
}

func (f *fakeBackend) Predict(ctx context.Context, db, model, sql string) (serving.Prediction, error) {
	if err := f.gate(ctx, db, true); err != nil {
		return serving.Prediction{}, err
	}
	f.mu.Lock()
	f.predicts++
	f.mu.Unlock()
	return fakePrediction(db, model, sql), nil
}

func (f *fakeBackend) PredictBatch(ctx context.Context, db, model string, sqls []string) (serving.BatchResult, error) {
	if err := f.gate(ctx, db, true); err != nil {
		return serving.BatchResult{}, err
	}
	res := serving.BatchResult{Database: db, Model: model, Items: make([]serving.BatchItem, len(sqls))}
	for i, sql := range sqls {
		res.Items[i].RuntimeSec = fakePrediction(db, model, sql).RuntimeSec
	}
	return res, nil
}

func (f *fakeBackend) WhatIf(ctx context.Context, db, model string, req whatif.Request) (*whatif.Report, error) {
	if err := f.gate(ctx, db, true); err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.whatifs++
	f.mu.Unlock()
	rep := &whatif.Report{Database: db, Model: model, Items: len(req.SQL) * (len(req.Candidates) + 1)}
	for _, sql := range req.SQL {
		rep.Baseline.Queries = append(rep.Baseline.Queries, whatif.QueryResult{SQL: sql})
		rep.Baseline.TotalSec += fakePrediction(db, model, sql).RuntimeSec
	}
	rep.Baseline.Name = "baseline"
	for _, c := range req.Candidates {
		rep.Variants = append(rep.Variants, whatif.VariantResult{Name: c, Indexes: []string{c}, TotalSec: rep.Baseline.TotalSec / 2})
	}
	return rep, nil
}

func (f *fakeBackend) whatifCount() int { f.mu.Lock(); defer f.mu.Unlock(); return f.whatifs }

func (f *fakeBackend) Feedback(ctx context.Context, db, fingerprint string, actualSec float64) error {
	if err := f.gate(ctx, db, true); err != nil {
		return err
	}
	f.mu.Lock()
	f.feedbacks[db]++
	f.mu.Unlock()
	return nil
}

func (f *fakeBackend) Databases(ctx context.Context) ([]serving.DatabaseInfo, error) {
	if err := f.gate(ctx, "", false); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]serving.DatabaseInfo, 0, len(f.dbs))
	for db := range f.dbs {
		out = append(out, serving.DatabaseInfo{Name: db, Schema: db})
	}
	return out, nil
}

func (f *fakeBackend) Stats(ctx context.Context) (serving.Stats, error) {
	if err := f.gate(ctx, "", false); err != nil {
		return serving.Stats{}, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return serving.Stats{
		Requests: int64(f.predicts),
		Models:   []serving.ModelStats{{Name: "fake-" + f.name, Generation: 1}},
	}, nil
}

func (f *fakeBackend) Health(ctx context.Context) error { return f.gate(ctx, "", false) }
func (f *fakeBackend) Close() error                     { return nil }

// ---- real-session fixtures (for in-process backend tests) -----------

// adaptableEstimator is a deterministic costmodel.Estimator that also
// supports Clone + FineTune, so cluster tests can run real adapt.Loops
// without training a neural model. Predictions are a fixed function of
// the optimizer cost; delay models per-batch inference cost (the
// replica-scaling benchmark needs work worth parallelizing).
type adaptableEstimator struct {
	name  string
	bias  float64
	delay time.Duration
}

func (e *adaptableEstimator) Name() string { return e.name }

func (e *adaptableEstimator) Fit(ctx context.Context, samples []costmodel.Sample) (*costmodel.FitReport, error) {
	return &costmodel.FitReport{Samples: len(samples)}, nil
}

func (e *adaptableEstimator) Predict(ctx context.Context, in costmodel.PlanInput) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return 0.001 + e.bias + in.OptimizerCost*1e-9, nil
}

func (e *adaptableEstimator) PredictBatch(ctx context.Context, ins []costmodel.PlanInput) ([]float64, error) {
	if e.delay > 0 {
		time.Sleep(e.delay)
	}
	out := make([]float64, len(ins))
	for i, in := range ins {
		v, err := e.Predict(ctx, in)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func (e *adaptableEstimator) Save(w io.Writer) error { return nil }

func (e *adaptableEstimator) Clone() (costmodel.Estimator, error) {
	return &adaptableEstimator{name: e.name, bias: e.bias}, nil
}

func (e *adaptableEstimator) FineTune(ctx context.Context, samples []costmodel.Sample, epochs int, lr float64) (*costmodel.FitReport, error) {
	return &costmodel.FitReport{Samples: len(samples)}, nil
}

var (
	_ costmodel.Estimator = (*adaptableEstimator)(nil)
	_ costmodel.Cloner    = (*adaptableEstimator)(nil)
	_ costmodel.FineTuner = (*adaptableEstimator)(nil)
)

// clusterFixture is the shared real-database test bed: two small
// generated databases with executable SQL for each.
type clusterFixture struct {
	dbs  map[string]*storage.Database
	sqls map[string][]string
}

var (
	fixOnce sync.Once
	fix     clusterFixture
	fixErr  error
)

// fixtures builds (once) two tiny databases for in-process replica
// tests.
func fixtures(t testing.TB) clusterFixture {
	t.Helper()
	fixOnce.Do(func() {
		fix = clusterFixture{dbs: map[string]*storage.Database{}, sqls: map[string][]string{}}
		build := func(name string, gen func(float64) (*storage.Database, error)) error {
			db, err := gen(0.03)
			if err != nil {
				return err
			}
			recs, err := collect.Run(db, collect.Options{Queries: 8, Seed: 7})
			if err != nil {
				return err
			}
			fix.dbs[name] = db
			for _, r := range recs {
				fix.sqls[name] = append(fix.sqls[name], r.Query.SQL())
			}
			return nil
		}
		if fixErr = build("imdb", datagen.IMDBLike); fixErr != nil {
			return
		}
		fixErr = build("ssb", datagen.SSBLike)
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fix
}

// newReplica builds one in-process replica with every fixture database
// and a fresh adaptable estimator attached, plus an adapt.Loop when
// withLoop is set.
func newReplica(t testing.TB, name string, withLoop bool) *InProcess {
	return newReplicaDelay(t, name, withLoop, 0)
}

// newReplicaDelay is newReplica with a simulated per-batch inference
// cost — the benchmark's knob for the inference-bound regime.
func newReplicaDelay(t testing.TB, name string, withLoop bool, delay time.Duration) *InProcess {
	t.Helper()
	f := fixtures(t)
	sess := serving.NewSession(serving.Config{})
	for db, d := range f.dbs {
		if err := sess.AttachDatabase(db, d); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.AttachModel(&adaptableEstimator{name: "fake", delay: delay}); err != nil {
		t.Fatal(err)
	}
	var loop *adapt.Loop
	if withLoop {
		var err error
		loop, err = adapt.New(sess, adapt.Config{Model: "fake"})
		if err != nil {
			t.Fatal(err)
		}
	}
	b, err := NewInProcess(name, sess, loop)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// errIsAny reports whether err matches any of the targets.
func errIsAny(err error, targets ...error) bool {
	for _, t := range targets {
		if errors.Is(err, t) {
			return true
		}
	}
	return false
}
