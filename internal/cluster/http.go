package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"github.com/zeroshot-db/zeroshot/internal/serving"
	"github.com/zeroshot-db/zeroshot/internal/whatif"
)

// HTTPBackend is a Backend over a remote `zsdb serve` process: the
// router-side client of the same JSON API the serve command exposes.
// Transport failures and 5xx replies wrap ErrBackendDown (the remote is
// unreachable or broken — fail over); 4xx replies reconstruct the
// request-level serving error kind the remote's handler mapped onto the
// status code, so `errors.Is(err, serving.ErrBadQuery)` works the same
// against a remote replica as an in-process one.
type HTTPBackend struct {
	name   string
	base   string
	client *http.Client
}

// DefaultHTTPTimeout bounds one backend call when the caller's context
// carries no deadline of its own.
const DefaultHTTPTimeout = 10 * time.Second

// NewHTTPBackend returns a Backend calling the `zsdb serve` API at
// baseURL (e.g. "http://host:8080"; a bare "host:8080" gets the scheme
// prefixed). name defaults to the baseURL. client may be nil for a
// default with DefaultHTTPTimeout.
func NewHTTPBackend(name, baseURL string, client *http.Client) (*HTTPBackend, error) {
	baseURL = strings.TrimRight(strings.TrimSpace(baseURL), "/")
	if baseURL == "" {
		return nil, fmt.Errorf("cluster: NewHTTPBackend needs a base URL")
	}
	if !strings.Contains(baseURL, "://") {
		baseURL = "http://" + baseURL
	}
	if name == "" {
		name = baseURL
	}
	if client == nil {
		client = &http.Client{Timeout: DefaultHTTPTimeout}
	}
	return &HTTPBackend{name: name, base: baseURL, client: client}, nil
}

// Name implements Backend.
func (b *HTTPBackend) Name() string { return b.name }

// CodeAdaptDisabled is the machine-readable code a serve node puts in
// its 404 error envelope when feedback arrives but online adaptation is
// off. The HTTP backend keys on the code, never on the human-readable
// message, to classify the condition as ErrNoFeedback — rewording the
// prose cannot silently change router behavior.
const CodeAdaptDisabled = "adapt_disabled"

// errorBody is the serve API's uniform JSON error envelope. Code is
// optional and machine-readable (see CodeAdaptDisabled).
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// do performs one JSON round trip. out may be nil for callers that only
// care about success.
func (b *HTTPBackend) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, b.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := b.client.Do(req)
	if err != nil {
		// Connection refused, DNS failure, timeout: the replica is
		// unreachable. A caller-side cancellation stays a ctx error.
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("%w: %s: %v", ErrBackendDown, b.name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		msg := resp.Status
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb); err == nil && eb.Error != "" {
			msg = eb.Error
		}
		return statusError(resp.StatusCode, b.name, msg, eb.Code)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("%w: %s: bad response body: %v", ErrBackendDown, b.name, err)
	}
	return nil
}

// statusError rebuilds the error class the remote handler flattened
// into a status code (and optional machine-readable error code) — the
// inverse of the serve command's sessionError.
func statusError(code int, name, msg, errCode string) error {
	switch code {
	case http.StatusNotFound:
		if errCode == CodeAdaptDisabled {
			return fmt.Errorf("%w: %s: %s", ErrNoFeedback, name, msg)
		}
		return fmt.Errorf("%s: %s: %w", name, msg, serving.ErrNotFound)
	case http.StatusBadRequest:
		return fmt.Errorf("%s: %s: %w", name, msg, serving.ErrBadQuery)
	case http.StatusRequestTimeout:
		return fmt.Errorf("%s: %s: %w", name, msg, context.DeadlineExceeded)
	default:
		// 5xx and everything unexpected: the replica is broken — this is
		// the failover class. 503 in particular is the remote draining.
		return fmt.Errorf("%w: %s: http %d: %s", ErrBackendDown, name, code, msg)
	}
}

// predictRequest mirrors the serve API's /v1/predict body.
type predictRequest struct {
	DB    string `json:"db,omitempty"`
	Model string `json:"model,omitempty"`
	SQL   string `json:"sql"`
}

// Predict implements Backend. serving.Prediction's JSON tags are the
// wire format, so the reply decodes straight into it.
func (b *HTTPBackend) Predict(ctx context.Context, db, model, sql string) (serving.Prediction, error) {
	var out serving.Prediction
	err := b.do(ctx, http.MethodPost, "/v1/predict", predictRequest{DB: db, Model: model, SQL: sql}, &out)
	return out, err
}

// predictBatchRequest mirrors /v1/predict_batch.
type predictBatchRequest struct {
	DB    string   `json:"db,omitempty"`
	Model string   `json:"model,omitempty"`
	SQL   []string `json:"sql"`
}

// predictBatchReply mirrors the /v1/predict_batch reply.
type predictBatchReply struct {
	DB      string `json:"db"`
	Model   string `json:"model"`
	Results []struct {
		RuntimeSec float64 `json:"runtime_sec"`
		Error      string  `json:"error"`
	} `json:"results"`
}

// PredictBatch implements Backend. Remote per-item errors arrive as
// strings; they are rewrapped as ErrBadQuery (the only per-item class
// the serve handler emits) so callers can still errors.Is them.
func (b *HTTPBackend) PredictBatch(ctx context.Context, db, model string, sqls []string) (serving.BatchResult, error) {
	var reply predictBatchReply
	if err := b.do(ctx, http.MethodPost, "/v1/predict_batch", predictBatchRequest{DB: db, Model: model, SQL: sqls}, &reply); err != nil {
		return serving.BatchResult{}, err
	}
	res := serving.BatchResult{
		Database: reply.DB,
		Model:    reply.Model,
		Items:    make([]serving.BatchItem, len(reply.Results)),
	}
	for i, r := range reply.Results {
		if r.Error != "" {
			res.Items[i].Err = fmt.Errorf("%s: %w", r.Error, serving.ErrBadQuery)
		} else {
			res.Items[i].RuntimeSec = r.RuntimeSec
		}
	}
	return res, nil
}

// whatIfRequest mirrors the serve API's /v1/whatif body: the sweep
// request plus the routing fields.
type whatIfRequest struct {
	DB            string   `json:"db,omitempty"`
	Model         string   `json:"model,omitempty"`
	SQL           []string `json:"sql"`
	Candidates    []string `json:"candidates,omitempty"`
	MaxCandidates int      `json:"max_candidates,omitempty"`
}

// WhatIf implements Backend. whatif.Report's JSON tags are the wire
// format, so the reply decodes straight into it.
func (b *HTTPBackend) WhatIf(ctx context.Context, db, model string, req whatif.Request) (*whatif.Report, error) {
	var out whatif.Report
	err := b.do(ctx, http.MethodPost, "/v1/whatif", whatIfRequest{
		DB:            db,
		Model:         model,
		SQL:           req.SQL,
		Candidates:    req.Candidates,
		MaxCandidates: req.MaxCandidates,
	}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// feedbackRequest mirrors /v1/feedback.
type feedbackRequest struct {
	DB               string  `json:"db,omitempty"`
	Fingerprint      string  `json:"fingerprint"`
	ActualRuntimeSec float64 `json:"actual_runtime_sec"`
}

// Feedback implements Backend. A remote without -adapt 404s with the
// CodeAdaptDisabled error code, which statusError has already turned
// into ErrNoFeedback; a fingerprint join miss 404s plain and surfaces
// as serving.ErrNotFound, so the router walks the ring to the replica
// that retained the plan — the same failover the in-process backend
// performs.
func (b *HTTPBackend) Feedback(ctx context.Context, db, fingerprint string, actualSec float64) error {
	return b.do(ctx, http.MethodPost, "/v1/feedback", feedbackRequest{DB: db, Fingerprint: fingerprint, ActualRuntimeSec: actualSec}, nil)
}

// databasesReply mirrors /v1/databases.
type databasesReply struct {
	Databases []serving.DatabaseInfo `json:"databases"`
}

// Databases implements Backend.
func (b *HTTPBackend) Databases(ctx context.Context) ([]serving.DatabaseInfo, error) {
	var reply databasesReply
	if err := b.do(ctx, http.MethodGet, "/v1/databases", nil, &reply); err != nil {
		return nil, err
	}
	return reply.Databases, nil
}

// Stats implements Backend. The reply may carry extra fields (the
// adaptation block); decoding into serving.Stats ignores them.
func (b *HTTPBackend) Stats(ctx context.Context) (serving.Stats, error) {
	var out serving.Stats
	err := b.do(ctx, http.MethodGet, "/v1/stats", nil, &out)
	return out, err
}

// Health implements Backend via GET /healthz.
func (b *HTTPBackend) Health(ctx context.Context) error {
	return b.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Close implements Backend: the remote process is not ours to stop —
// only idle connections are released.
func (b *HTTPBackend) Close() error {
	b.client.CloseIdleConnections()
	return nil
}
