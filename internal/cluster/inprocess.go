package cluster

import (
	"context"
	"errors"
	"fmt"

	"github.com/zeroshot-db/zeroshot/internal/adapt"
	"github.com/zeroshot-db/zeroshot/internal/serving"
	"github.com/zeroshot-db/zeroshot/internal/whatif"
)

// InProcess adapts one serving.Session (and optionally its adapt.Loop)
// to the Backend interface with zero serialization — the replica kind
// behind the single-binary `zsdb serve -replicas N` mode and the
// building block of the deterministic simulation harness. A closed
// session reports ErrBackendDown from every method, which is exactly
// how a crashed remote replica looks to the Router: shutdown and crash
// share one failover path.
type InProcess struct {
	name string
	sess *serving.Session
	loop *adapt.Loop // nil when adaptation is disabled
}

// NewInProcess wraps sess as the replica named name. loop may be nil;
// Feedback then reports ErrNoFeedback.
func NewInProcess(name string, sess *serving.Session, loop *adapt.Loop) (*InProcess, error) {
	if name == "" || sess == nil {
		return nil, fmt.Errorf("cluster: NewInProcess needs a name and a session")
	}
	return &InProcess{name: name, sess: sess, loop: loop}, nil
}

// Name implements Backend.
func (b *InProcess) Name() string { return b.name }

// Session exposes the wrapped session — the sim harness and tests reach
// through to attach databases and models.
func (b *InProcess) Session() *serving.Session { return b.sess }

// Loop exposes the wrapped adaptation loop (nil when disabled).
func (b *InProcess) Loop() *adapt.Loop { return b.loop }

// downgrade turns a session's shutdown error into the backend-failure
// class the Router fails over on; every other error passes through
// untouched (request-level errors must stay distinguishable).
func downgrade(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, serving.ErrClosed) {
		return fmt.Errorf("%w: %w", ErrBackendDown, err)
	}
	return err
}

// Predict implements Backend.
func (b *InProcess) Predict(ctx context.Context, db, model, sql string) (serving.Prediction, error) {
	p, err := b.sess.Predict(ctx, db, model, sql)
	return p, downgrade(err)
}

// PredictBatch implements Backend. The session drains the batch
// through Estimator.PredictBatch, so replicas serving a fusing
// estimator price it as one fused forward pass.
func (b *InProcess) PredictBatch(ctx context.Context, db, model string, sqls []string) (serving.BatchResult, error) {
	r, err := b.sess.PredictBatch(ctx, db, model, sqls)
	return r, downgrade(err)
}

// WhatIf implements Backend: the sweep runs on this replica's session,
// warming (and reusing) its what-if catalog caches.
func (b *InProcess) WhatIf(ctx context.Context, db, model string, req whatif.Request) (*whatif.Report, error) {
	r, err := b.sess.WhatIf(ctx, db, model, req)
	return r, downgrade(err)
}

// Feedback implements Backend: the observed runtime lands in this
// replica's adaptation loop, joining against this replica's plan cache.
// A join miss (adapt.ErrNoPlan) additionally wraps serving.ErrNotFound
// so the router walks the ring instead of giving up: after an owner
// outage the successor that served the database's predictions — and
// retained their plans — is the replica that can still join this
// sample. The HTTP backend reconstructs exactly this class from a
// remote 404, so both backend kinds fail over identically.
func (b *InProcess) Feedback(ctx context.Context, db, fingerprint string, actualSec float64) error {
	if b.loop == nil {
		return fmt.Errorf("%w: replica %s", ErrNoFeedback, b.name)
	}
	err := b.loop.Feedback(ctx, db, fingerprint, actualSec)
	if errors.Is(err, adapt.ErrNoPlan) {
		return fmt.Errorf("%s: %w: %w", b.name, serving.ErrNotFound, err)
	}
	return downgrade(err)
}

// Databases implements Backend.
func (b *InProcess) Databases(ctx context.Context) ([]serving.DatabaseInfo, error) {
	if b.sess.Closed() {
		return nil, fmt.Errorf("%w: replica %s closed", ErrBackendDown, b.name)
	}
	return b.sess.Databases(), nil
}

// Stats implements Backend.
func (b *InProcess) Stats(ctx context.Context) (serving.Stats, error) {
	if b.sess.Closed() {
		return serving.Stats{}, fmt.Errorf("%w: replica %s closed", ErrBackendDown, b.name)
	}
	return b.sess.Stats(), nil
}

// Health implements Backend: an in-process replica is healthy exactly
// while its session accepts requests.
func (b *InProcess) Health(ctx context.Context) error {
	if b.sess.Closed() {
		return fmt.Errorf("%w: replica %s closed", ErrBackendDown, b.name)
	}
	return nil
}

// Close implements Backend: the adaptation loop stops first so no sweep
// races the session teardown.
func (b *InProcess) Close() error {
	if b.loop != nil {
		b.loop.Close()
	}
	return b.sess.Close()
}
