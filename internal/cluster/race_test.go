package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/zeroshot-db/zeroshot/internal/adapt"
	"github.com/zeroshot-db/zeroshot/internal/serving"
)

// TestRouterFailoverUnderConcurrentTraffic is the cluster-layer
// extension of the adaptation subsystem's hot-swap -race e2e: real
// serving sessions as replicas, concurrent predict AND feedback
// traffic, while a chaos goroutine repeatedly crashes one replica
// (closing its live session mid-traffic), deregisters it, rebuilds it,
// and re-registers it. Run under -race in CI. The bar:
//
//   - no predict may fail — the two stable replicas mirror every
//     database, so failover must always find a path;
//   - feedback may only fail with the benign request-level kinds
//     (ErrNoPlan when the plan-cache entry lives on another replica or
//     was evicted) — never with a routing loss;
//   - the router's counters and health marks stay coherent (snapshot
//     races would trip the race detector).
func TestRouterFailoverUnderConcurrentTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	f := fixtures(t)
	router := NewRouter(Config{})
	defer router.Close()
	// Three replicas: v0 and v1 are stable, "chaos" crashes and
	// resurrects throughout the run.
	for _, name := range []string{"v0", "v1"} {
		if err := router.Register(newReplica(t, name, true)); err != nil {
			t.Fatal(err)
		}
	}
	chaos := newReplica(t, "chaos", true)
	if err := router.Register(chaos); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	var stop atomic.Bool
	var predictErrs, feedbackHardErrs atomic.Int64
	var firstErr atomic.Value

	dbNames := make([]string, 0, len(f.dbs))
	for name := range f.dbs {
		dbNames = append(dbNames, name)
	}

	var wg sync.WaitGroup
	// Predict hammer: 6 goroutines cycling through both databases.
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				db := dbNames[(g+i)%len(dbNames)]
				sqls := f.sqls[db]
				_, err := router.Predict(ctx, db, "fake", sqls[i%len(sqls)])
				if err != nil {
					predictErrs.Add(1)
					firstErr.CompareAndSwap(nil, fmt.Errorf("predict %s: %w", db, err))
				}
			}
		}(g)
	}
	// Feedback hammer: 3 goroutines echoing plausible runtimes by raw
	// fingerprint. Join misses (ErrNoPlan) are expected — the plan may
	// be cached on a different replica than the one owning the db this
	// instant, or not predicted yet — but routing-level failures are not.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				db := dbNames[(g+i)%len(dbNames)]
				sqls := f.sqls[db]
				fp := fingerprintOf(sqls[i%len(sqls)])
				err := router.Feedback(ctx, db, fp, 0.05)
				if err != nil && !errIsAny(err, adapt.ErrNoPlan, ErrNoFeedback) {
					feedbackHardErrs.Add(1)
					firstErr.CompareAndSwap(nil, fmt.Errorf("feedback %s: %w", db, err))
				}
			}
		}(g)
	}
	// Stats reader: exercises the aggregation path against the torn-read
	// fix while topology churns.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if st, err := router.Stats(ctx); err == nil {
				for _, rs := range st.Replicas {
					if rs.Serving != nil && len(rs.Serving.Models) > 0 {
						for _, m := range rs.Serving.Models {
							if m.Generation < 1 {
								firstErr.CompareAndSwap(nil,
									fmt.Errorf("replica %s model %s with generation %d", rs.Name, m.Name, m.Generation))
							}
						}
					}
				}
			}
		}
	}()
	// Chaos: crash the replica (Close its session mid-traffic), yank it
	// from the ring, rebuild, re-register, re-probe. 5 cycles.
	for cycle := 0; cycle < 5; cycle++ {
		chaos.Session().Close()
		router.CheckHealth(ctx)
		if _, ok := router.Deregister("chaos"); !ok {
			t.Error("chaos replica vanished from the router")
		}
		chaos = newReplica(t, "chaos", true)
		if err := router.Register(chaos); err != nil {
			t.Errorf("re-register chaos: %v", err)
			break
		}
		router.CheckHealth(ctx)
	}
	stop.Store(true)
	wg.Wait()

	if n := predictErrs.Load(); n > 0 {
		t.Fatalf("%d predicts failed during failover churn; first: %v", n, firstErr.Load())
	}
	if n := feedbackHardErrs.Load(); n > 0 {
		t.Fatalf("%d feedbacks failed with routing-level errors; first: %v", n, firstErr.Load())
	}
	st, err := router.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests == 0 {
		t.Fatal("no requests recorded; the hammers never ran")
	}
}

// fingerprintOf avoids importing costmodel twice in this file's hot
// loop helpers.
func fingerprintOf(sql string) string { return fakePrediction("", "", sql).Fingerprint }

// TestFeedbackFailsOverOnPlanMiss pins the review finding: a feedback
// whose fingerprint misses the owner's plan cache must walk the ring to
// the replica that served (and retained) the plan, exactly as the HTTP
// backend does when a remote 404s the join.
func TestFeedbackFailsOverOnPlanMiss(t *testing.T) {
	f := fixtures(t)
	router := NewRouter(Config{})
	defer router.Close()
	a := newReplica(t, "a", true)
	b := newReplica(t, "b", true)
	for _, rep := range []*InProcess{a, b} {
		if err := router.Register(rep); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	const db = "imdb"
	sql := f.sqls[db][0]
	// Plant the plan on the NON-owner only: predict through that
	// replica's session directly, bypassing the router.
	owner := router.Owner(db)
	holder := a
	if owner == "a" {
		holder = b
	}
	pred, err := holder.Session().Predict(ctx, db, "fake", sql)
	if err != nil {
		t.Fatal(err)
	}
	// Routed feedback goes owner-first; the owner's join misses
	// (ErrNoPlan → not-found class) and the walk reaches the holder.
	if err := router.Feedback(ctx, db, pred.Fingerprint, 0.2); err != nil {
		t.Fatalf("feedback did not fail over past the owner's plan miss: %v", err)
	}
	if got := holder.Loop().Status().Feedback; got != 1 {
		t.Fatalf("holder ingested %d feedbacks, want 1", got)
	}
	// A fingerprint cached nowhere still ends as the not-found class
	// wrapping ErrNoPlan — never a fake outage.
	err = router.Feedback(ctx, db, "no-such-fingerprint", 0.2)
	if !errors.Is(err, adapt.ErrNoPlan) || errors.Is(err, ErrNoReplica) {
		t.Fatalf("nowhere-cached feedback error = %v, want ErrNoPlan without ErrNoReplica", err)
	}
}

// TestInProcessClosedSessionIsBackendDown pins the downgrade contract
// the chaos cycle above relies on: a closed session's errors leave the
// backend looking crashed, not the request looking bad.
func TestInProcessClosedSessionIsBackendDown(t *testing.T) {
	b := newReplica(t, "solo", false)
	b.Session().Close()
	_, err := b.Predict(context.Background(), "imdb", "fake", "SELECT COUNT(*) FROM title")
	if !errors.Is(err, ErrBackendDown) {
		t.Fatalf("predict on closed session = %v, want ErrBackendDown class", err)
	}
	if !errors.Is(err, serving.ErrClosed) {
		t.Fatalf("downgrade lost the underlying cause: %v", err)
	}
	if b.Health(context.Background()) == nil {
		t.Fatal("closed session passes health probe")
	}
}
