package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// DefaultVirtualNodes is how many ring points each member contributes
// when the caller passes a non-positive count. More points smooth the
// key distribution across members at the cost of a larger (still tiny)
// sorted ring; 64 keeps the max/min ownership skew under ~2x for small
// clusters.
const DefaultVirtualNodes = 64

// Ring is a consistent-hash ring with virtual nodes. Keys (database
// names) and members (replica names) hash onto the same 64-bit circle;
// a key is owned by the first member point clockwise from the key's
// hash. Because every member contributes many points, adding or
// removing one member moves only the key ranges adjacent to that
// member's points — ownership of everything else is stable, which is
// what makes replica topology changes cheap for the router's plan
// caches and adaptation windows.
//
// Safe for concurrent use.
type Ring struct {
	vnodes int

	mu      sync.RWMutex
	points  []ringPoint // sorted by hash
	members map[string]bool
}

// ringPoint is one virtual node: a member's i-th position on the circle.
type ringPoint struct {
	hash   uint64
	member string
}

// NewRing returns an empty ring where every member will contribute
// vnodes virtual points (DefaultVirtualNodes if vnodes <= 0).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{vnodes: vnodes, members: map[string]bool{}}
}

// hash64 positions a string on the circle: FNV-1a for the byte walk,
// then a murmur-style finalizer. FNV alone must not be used here — its
// weak avalanche leaves strings differing only in a suffix ("r1#0" …
// "r1#63", exactly what vnode labels look like) clustered in one tiny
// arc, collapsing the ring to effectively one point per member.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Add inserts a member's virtual points. Duplicate registration is an
// error: two replicas under one name would silently halve that name's
// capacity and make Remove ambiguous.
func (r *Ring) Add(member string) error {
	if member == "" {
		return fmt.Errorf("cluster: ring member name must be non-empty")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[member] {
		return fmt.Errorf("cluster: ring member %q already registered", member)
	}
	r.members[member] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{
			hash:   hash64(fmt.Sprintf("%s#%d", member, i)),
			member: member,
		})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Identical hashes (vanishingly rare) order by member so the ring
		// layout is deterministic regardless of insertion order.
		return r.points[i].member < r.points[j].member
	})
	return nil
}

// Remove deletes a member's virtual points; removing an unknown member
// is a no-op so teardown paths can be unconditional.
func (r *Ring) Remove(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.members[member] {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Members returns the registered member names, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Size returns the member count.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Owner returns the member owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if s := r.Successors(key, 1); len(s) > 0 {
		return s[0]
	}
	return ""
}

// Successors returns up to n distinct members in ring order starting at
// the key's owner — the failover sequence: if the owner is down, the
// next member clockwise takes the request, and so on. n <= 0 (or n
// larger than the membership) returns every member, still in ring
// order.
func (r *Ring) Successors(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	if n <= 0 || n > len(r.members) {
		n = len(r.members)
	}
	kh := hash64(key)
	// First point clockwise from the key (wrapping past the top).
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= kh })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		m := r.points[(start+i)%len(r.points)].member
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}
