package cluster

import (
	"fmt"
	"testing"
)

// keysFor returns n distinct synthetic database names.
func keysFor(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("db%03d", i)
	}
	return keys
}

// ownersOf maps every key to its current owner.
func ownersOf(r *Ring, keys []string) map[string]string {
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		out[k] = r.Owner(k)
	}
	return out
}

// TestRingEdgeCases is the table of degenerate topologies the router
// must survive: empty ring, a single replica, duplicate registration,
// removal down to empty, unknown-member removal.
func TestRingEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		build func(t *testing.T) *Ring
		check func(t *testing.T, r *Ring)
	}{
		{
			name:  "empty ring owns nothing",
			build: func(t *testing.T) *Ring { return NewRing(8) },
			check: func(t *testing.T, r *Ring) {
				if got := r.Owner("imdb"); got != "" {
					t.Fatalf("Owner on empty ring = %q, want \"\"", got)
				}
				if s := r.Successors("imdb", 3); s != nil {
					t.Fatalf("Successors on empty ring = %v, want nil", s)
				}
				if n := r.Size(); n != 0 {
					t.Fatalf("Size = %d, want 0", n)
				}
			},
		},
		{
			name: "single replica owns everything",
			build: func(t *testing.T) *Ring {
				r := NewRing(8)
				if err := r.Add("only"); err != nil {
					t.Fatal(err)
				}
				return r
			},
			check: func(t *testing.T, r *Ring) {
				for _, k := range keysFor(50) {
					if got := r.Owner(k); got != "only" {
						t.Fatalf("Owner(%q) = %q, want only", k, got)
					}
				}
				if s := r.Successors("anything", 5); len(s) != 1 || s[0] != "only" {
					t.Fatalf("Successors = %v, want [only]", s)
				}
			},
		},
		{
			name: "duplicate registration rejected without corrupting the ring",
			build: func(t *testing.T) *Ring {
				r := NewRing(8)
				if err := r.Add("a"); err != nil {
					t.Fatal(err)
				}
				return r
			},
			check: func(t *testing.T, r *Ring) {
				before := ownersOf(r, keysFor(50))
				if err := r.Add("a"); err == nil {
					t.Fatal("duplicate Add succeeded, want error")
				}
				if got := ownersOf(r, keysFor(50)); fmt.Sprint(got) != fmt.Sprint(before) {
					t.Fatal("failed duplicate Add changed ownership")
				}
				if n := r.Size(); n != 1 {
					t.Fatalf("Size after duplicate Add = %d, want 1", n)
				}
			},
		},
		{
			name: "empty member name rejected",
			build: func(t *testing.T) *Ring {
				return NewRing(8)
			},
			check: func(t *testing.T, r *Ring) {
				if err := r.Add(""); err == nil {
					t.Fatal(`Add("") succeeded, want error`)
				}
			},
		},
		{
			name: "removing every replica empties the ring",
			build: func(t *testing.T) *Ring {
				r := NewRing(8)
				for _, m := range []string{"a", "b", "c"} {
					if err := r.Add(m); err != nil {
						t.Fatal(err)
					}
				}
				return r
			},
			check: func(t *testing.T, r *Ring) {
				for _, m := range []string{"a", "b", "c"} {
					r.Remove(m)
				}
				if got := r.Owner("imdb"); got != "" {
					t.Fatalf("Owner after removing all = %q, want \"\"", got)
				}
				r.Remove("never-was-here") // unknown member: no-op, no panic
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.check(t, tc.build(t))
		})
	}
}

// TestRingSuccessorsDistinct asserts the failover sequence visits every
// member exactly once, owner first.
func TestRingSuccessorsDistinct(t *testing.T) {
	r := NewRing(16)
	members := []string{"r0", "r1", "r2", "r3"}
	for _, m := range members {
		if err := r.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keysFor(100) {
		s := r.Successors(k, 0)
		if len(s) != len(members) {
			t.Fatalf("Successors(%q) = %v, want all %d members", k, s, len(members))
		}
		if s[0] != r.Owner(k) {
			t.Fatalf("Successors(%q)[0] = %q, owner = %q", k, s[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, m := range s {
			if seen[m] {
				t.Fatalf("Successors(%q) repeats %q: %v", k, m, s)
			}
			seen[m] = true
		}
	}
	// A capped walk returns exactly n members.
	if s := r.Successors("imdb", 2); len(s) != 2 {
		t.Fatalf("Successors(n=2) = %v", s)
	}
}

// TestRingRebalanceMinimality is the structural property consistent
// hashing exists for: adding a member moves ONLY keys that land on the
// new member, and removing it restores the exact previous assignment —
// no innocent key changes hands in either direction.
func TestRingRebalanceMinimality(t *testing.T) {
	r := NewRing(DefaultVirtualNodes)
	for _, m := range []string{"r0", "r1", "r2"} {
		if err := r.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	keys := keysFor(500)
	before := ownersOf(r, keys)
	if err := r.Add("r3"); err != nil {
		t.Fatal(err)
	}
	after := ownersOf(r, keys)
	moved := 0
	for _, k := range keys {
		if before[k] != after[k] {
			moved++
			if after[k] != "r3" {
				t.Fatalf("key %q moved %s -> %s on Add(r3): only moves TO the new member are minimal",
					k, before[k], after[k])
			}
		}
	}
	if moved == 0 {
		t.Fatal("adding r3 moved no keys at all; vnode layout is broken")
	}
	// Roughly 1/4 of keys should move to the 4th member; enforce a loose
	// sanity band rather than an exact split.
	if moved > len(keys)/2 {
		t.Fatalf("adding 1 of 4 members moved %d/%d keys; far more than its fair share", moved, len(keys))
	}
	r.Remove("r3")
	restored := ownersOf(r, keys)
	for _, k := range keys {
		if restored[k] != before[k] {
			t.Fatalf("key %q owner %s != pre-add owner %s after Remove(r3)", k, restored[k], before[k])
		}
	}
}

// TestRingDeterministicLayout asserts the ring is a pure function of
// its membership: insertion order must not affect ownership, or two
// routers in front of the same replicas would disagree.
func TestRingDeterministicLayout(t *testing.T) {
	a := NewRing(32)
	b := NewRing(32)
	for _, m := range []string{"r0", "r1", "r2", "r3"} {
		if err := a.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range []string{"r3", "r1", "r0", "r2"} {
		if err := b.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keysFor(200) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("insertion order changed Owner(%q): %s vs %s", k, a.Owner(k), b.Owner(k))
		}
	}
}

// TestRingSpread sanity-checks the vnode smoothing: with default vnodes
// and 4 members, no member should own a wildly disproportionate share.
func TestRingSpread(t *testing.T) {
	r := NewRing(DefaultVirtualNodes)
	members := []string{"r0", "r1", "r2", "r3"}
	for _, m := range members {
		if err := r.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	counts := map[string]int{}
	keys := keysFor(1000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	for _, m := range members {
		share := float64(counts[m]) / float64(len(keys))
		if share < 0.05 || share > 0.60 {
			t.Fatalf("member %s owns %.0f%% of keys (counts=%v); vnode spread is broken", m, share*100, counts)
		}
	}
}
