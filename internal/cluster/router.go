package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/zeroshot-db/zeroshot/internal/metrics"
	"github.com/zeroshot-db/zeroshot/internal/obs"
	"github.com/zeroshot-db/zeroshot/internal/serving"
	"github.com/zeroshot-db/zeroshot/internal/whatif"
)

// Config sizes a Router. Zero values select the defaults.
type Config struct {
	// VirtualNodes is each replica's ring point count (default
	// DefaultVirtualNodes).
	VirtualNodes int
	// MaxAttempts bounds one request's failover walk: the owner plus up
	// to MaxAttempts-1 ring successors. 0 tries every replica — with a
	// handful of replicas exhaustive failover is the right default; cap
	// it on large clusters to bound worst-case latency.
	MaxAttempts int
	// FanoutLimit bounds how many replicas a cross-replica operation
	// (Databases, Stats, Models, CheckHealth) queries concurrently
	// (default 4).
	FanoutLimit int
	// CallTimeout bounds each routed attempt. When it fires while the
	// caller's own context is still live, the attempt counts as a
	// backend failure and the request fails over — a slow replica must
	// not become a lost request. 0 means attempts inherit only the
	// caller's deadline.
	CallTimeout time.Duration
	// HealthInterval is the background prober's period; 0 disables the
	// prober (callers drive CheckHealth themselves — the deterministic
	// simulation harness does).
	HealthInterval time.Duration
	// HealthTimeout bounds one health probe (default 2s).
	HealthTimeout time.Duration
	// Tracer, when non-nil, records sampled routed requests with one
	// span per failover attempt (see internal/obs). Nil disables.
	Tracer *obs.Tracer
	// Events, when non-nil, receives replica health transitions and
	// failover rescues — the router's control-plane decision log. Nil
	// disables.
	Events *obs.Log
}

// DefaultFanoutLimit bounds cross-replica fan-out concurrency.
const DefaultFanoutLimit = 4

func (c Config) withDefaults() Config {
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = DefaultVirtualNodes
	}
	if c.FanoutLimit <= 0 {
		c.FanoutLimit = DefaultFanoutLimit
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = 2 * time.Second
	}
	return c
}

// replica is one registered backend plus the router's view of it.
type replica struct {
	b       Backend
	healthy atomic.Bool
}

// Router partitions databases across replica backends on a consistent
// hash ring and routes every request to the replica owning its
// database — plan-cache and adaptation-window locality — failing over
// along the ring's successor sequence when the owner is down, slow, or
// (in a sharded deployment) simply doesn't hold the database.
//
// Replicas marked unhealthy (by a failed call or probe) are skipped on
// the fast path but retried as a last resort when every healthy
// candidate has failed, so a stale mark can delay a request yet never
// lose one; CheckHealth (or the background prober) flips recovered
// replicas back. Safe for concurrent use.
type Router struct {
	cfg  Config
	ring *Ring

	mu       sync.RWMutex
	replicas map[string]*replica
	closed   bool

	tracer *obs.Tracer // nil when tracing is off; all uses are nil-safe
	events *obs.Log    // nil when the event log is off; all uses are nil-safe

	requests  metrics.Counter
	failovers metrics.Counter
	// Per-replica counters, labelled by replica name: served counts
	// requests answered, failed counts calls that hit the backend-down
	// class, rescued counts requests this replica answered after
	// another replica's failure.
	served  metrics.LabelledCounter
	failed  metrics.LabelledCounter
	rescued metrics.LabelledCounter

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewRouter returns a Router with no replicas; Register at least one
// before routing. The background health prober starts only when
// cfg.HealthInterval > 0.
func NewRouter(cfg Config) *Router {
	cfg = cfg.withDefaults()
	r := &Router{
		cfg:      cfg,
		ring:     NewRing(cfg.VirtualNodes),
		replicas: map[string]*replica{},
		tracer:   cfg.Tracer,
		events:   cfg.Events,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if cfg.HealthInterval > 0 {
		go r.probeLoop()
	} else {
		close(r.done)
	}
	return r
}

// Register adds a replica to the ring, initially healthy. Duplicate
// names are rejected (the ring would silently merge them).
func (r *Router) Register(b Backend) error {
	if b == nil {
		return fmt.Errorf("cluster: Register needs a backend")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return serving.ErrClosed
	}
	if _, dup := r.replicas[b.Name()]; dup {
		return fmt.Errorf("cluster: replica %q already registered", b.Name())
	}
	if err := r.ring.Add(b.Name()); err != nil {
		return err
	}
	rep := &replica{b: b}
	rep.healthy.Store(true)
	r.replicas[b.Name()] = rep
	return nil
}

// Deregister removes a replica from the ring and returns its backend
// (not closed — the caller may still own it). Ownership of the removed
// replica's key ranges shifts to their ring successors; everything else
// keeps its owner.
func (r *Router) Deregister(name string) (Backend, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep, ok := r.replicas[name]
	if !ok {
		return nil, false
	}
	r.ring.Remove(name)
	delete(r.replicas, name)
	return rep.b, true
}

// Replicas returns the registered replica names, sorted.
func (r *Router) Replicas() []string { return r.ring.Members() }

// Owner returns the replica name owning db's key range ("" when no
// replicas are registered).
func (r *Router) Owner(db string) string { return r.ring.Owner(db) }

// Route returns db's full failover sequence: the owner first, then the
// distinct ring successors a request would try in order.
func (r *Router) Route(db string) []string { return r.ring.Successors(db, r.cfg.MaxAttempts) }

// isDownClass reports whether err means "the replica, not the request,
// failed" — the class that triggers failover.
func isDownClass(err error) bool {
	return errors.Is(err, ErrBackendDown)
}

// markHealth updates a replica's health mark and, on an actual
// transition (the CompareAndSwap filters repeated marks in the same
// state), records a replica_up/replica_down event.
func (r *Router) markHealth(rep *replica, up bool) {
	if !rep.healthy.CompareAndSwap(!up, up) {
		return
	}
	typ := obs.EventReplicaDown
	if up {
		typ = obs.EventReplicaUp
	}
	r.events.Record(typ, "router", map[string]string{"replica": rep.b.Name()})
}

// attempt runs call against db's candidate replicas in failover order:
// healthy candidates first (ring order), then — only if all of those
// failed — the unhealthy ones as a last resort, because a stale
// unhealthy mark must never turn a servable request into an error.
// call's error classes steer the walk: backend-down marks the replica
// unhealthy and moves on; serving.ErrNotFound moves on (a sharded peer
// may hold the database) but is remembered; anything else is the
// request's own failure and returns immediately.
func (r *Router) attempt(ctx context.Context, db string, call func(ctx context.Context, b Backend) error) error {
	tr, begin := r.tracer.Begin()
	err := r.attemptTraced(ctx, db, call, tr)
	r.tracer.Finish(tr, "route", db, "", "", begin, err)
	return err
}

func (r *Router) attemptTraced(ctx context.Context, db string, call func(ctx context.Context, b Backend) error, tr *obs.Trace) error {
	r.mu.RLock()
	if r.closed {
		r.mu.RUnlock()
		return serving.ErrClosed
	}
	names := r.ring.Successors(db, r.cfg.MaxAttempts)
	var healthy, unhealthy []*replica
	for _, n := range names {
		if rep, ok := r.replicas[n]; ok {
			if rep.healthy.Load() {
				healthy = append(healthy, rep)
			} else {
				unhealthy = append(unhealthy, rep)
			}
		}
	}
	r.mu.RUnlock()
	candidates := append(healthy, unhealthy...)
	if len(candidates) == 0 {
		return fmt.Errorf("%w: no replicas registered", ErrNoReplica)
	}
	r.requests.Inc()
	owner := names[0]
	var lastDown, notFound error
	ownerNotFound := false
	failed := 0
	for _, rep := range candidates {
		if err := ctx.Err(); err != nil {
			return err // the caller gave up; stop walking
		}
		actx, cancel := ctx, context.CancelFunc(func() {})
		if r.cfg.CallTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, r.cfg.CallTimeout)
		}
		hopStart := time.Now()
		err := call(actx, rep.b)
		cancel()
		if err != nil && errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
			// The attempt's own deadline fired, not the caller's: a slow
			// replica is a down replica as far as routing is concerned.
			err = fmt.Errorf("%w: %s: %v", ErrBackendDown, rep.b.Name(), err)
		}
		switch {
		case err == nil:
			tr.Span("attempt:"+rep.b.Name(), hopStart)
			r.markHealth(rep, true)
			r.served.Inc(rep.b.Name())
			// A failover is any request its ring owner did not serve —
			// whether an attempt failed in-request or the health marks
			// steered around the owner proactively.
			if failed > 0 || rep.b.Name() != owner {
				r.failovers.Inc()
				r.rescued.Inc(rep.b.Name())
				r.events.Record(obs.EventFailoverRescue, "router", map[string]string{
					"replica": rep.b.Name(), "owner": owner, "db": db,
				})
			}
			return nil
		case isDownClass(err):
			tr.Span("attempt:"+rep.b.Name()+":down", hopStart)
			r.markHealth(rep, false)
			r.failed.Inc(rep.b.Name())
			lastDown = err
			failed++
		case errors.Is(err, serving.ErrNotFound):
			tr.Span("attempt:"+rep.b.Name()+":notfound", hopStart)
			notFound = err
			if rep.b.Name() == owner {
				ownerNotFound = true
			}
			failed++
		default:
			tr.Span("attempt:"+rep.b.Name()+":error", hopStart)
			return err
		}
	}
	if notFound != nil && (lastDown == nil || ownerNotFound) {
		// "Not here" is authoritative when every reachable candidate said
		// it, or when the ring OWNER itself said it — in a well-placed
		// sharded deployment the owner is the holder, so its verdict
		// outranks an unrelated replica being down. Only when the owner
		// was unreachable and a peer said not-found does the outage win:
		// the database may live exactly on the dead shard.
		return notFound
	}
	if lastDown != nil {
		return fmt.Errorf("%w: %d candidate(s) for %q exhausted, last: %v", ErrNoReplica, len(candidates), db, lastDown)
	}
	return fmt.Errorf("%w: %d candidate(s) for %q exhausted", ErrNoReplica, len(candidates), db)
}

// Predict routes one statement to the replica owning db (empty db is
// legal only in degenerate single-database deployments — it hashes as
// its own key) and returns its prediction.
func (r *Router) Predict(ctx context.Context, db, model, sql string) (serving.Prediction, error) {
	var out serving.Prediction
	err := r.attempt(ctx, db, func(ctx context.Context, b Backend) error {
		p, err := b.Predict(ctx, db, model, sql)
		if err == nil {
			out = p
		}
		return err
	})
	return out, err
}

// PredictBatch routes one batch to the replica owning db.
func (r *Router) PredictBatch(ctx context.Context, db, model string, sqls []string) (serving.BatchResult, error) {
	var out serving.BatchResult
	err := r.attempt(ctx, db, func(ctx context.Context, b Backend) error {
		res, err := b.PredictBatch(ctx, db, model, sqls)
		if err == nil {
			out = res
		}
		return err
	})
	return out, err
}

// WhatIf routes one what-if sweep to the replica owning db, exactly
// like Predict: the owner's prepared-plan and encoded-graph caches are
// warm with the database's workload, so repeated sweeps (an advisor
// iterating on candidates) skip planning and encoding entirely.
func (r *Router) WhatIf(ctx context.Context, db, model string, req whatif.Request) (*whatif.Report, error) {
	var out *whatif.Report
	err := r.attempt(ctx, db, func(ctx context.Context, b Backend) error {
		rep, err := b.WhatIf(ctx, db, model, req)
		if err == nil {
			out = rep
		}
		return err
	})
	return out, err
}

// Feedback routes an observed runtime to the replica owning db — the
// one whose plan cache retains the fingerprint and whose adaptation
// windows must buffer the sample. It fails over exactly like Predict:
// if the owner is down, the successor that served the db's predictions
// during the outage also holds their cached plans.
func (r *Router) Feedback(ctx context.Context, db, fingerprint string, actualSec float64) error {
	return r.attempt(ctx, db, func(ctx context.Context, b Backend) error {
		return b.Feedback(ctx, db, fingerprint, actualSec)
	})
}

// fanout runs fn against every registered replica with at most
// FanoutLimit concurrent calls, in sorted-name order per slot, and
// returns per-replica errors (nil entries for successes) aligned with
// the returned names.
func (r *Router) fanout(ctx context.Context, fn func(ctx context.Context, b Backend) error) (names []string, errs []error, err error) {
	r.mu.RLock()
	if r.closed {
		r.mu.RUnlock()
		return nil, nil, serving.ErrClosed
	}
	reps := make([]*replica, 0, len(r.replicas))
	for _, name := range r.ring.Members() {
		reps = append(reps, r.replicas[name])
	}
	r.mu.RUnlock()
	names = make([]string, len(reps))
	errs = make([]error, len(reps))
	sem := make(chan struct{}, r.cfg.FanoutLimit)
	var wg sync.WaitGroup
	for i, rep := range reps {
		names[i] = rep.b.Name()
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, rep *replica) {
			defer wg.Done()
			defer func() { <-sem }()
			cctx := ctx
			cancel := context.CancelFunc(func() {})
			if r.cfg.CallTimeout > 0 {
				cctx, cancel = context.WithTimeout(ctx, r.cfg.CallTimeout)
			}
			e := fn(cctx, rep.b)
			cancel()
			if e != nil && errors.Is(e, context.DeadlineExceeded) && ctx.Err() == nil {
				e = fmt.Errorf("%w: %s: %v", ErrBackendDown, rep.b.Name(), e)
			}
			if isDownClass(e) {
				r.markHealth(rep, false)
				r.failed.Inc(rep.b.Name())
			} else if e == nil {
				r.markHealth(rep, true)
			}
			errs[i] = e
		}(i, rep)
	}
	wg.Wait()
	return names, errs, nil
}

// DatabaseView is one database as the cluster sees it: the owning
// replica's info plus every replica currently holding a copy.
type DatabaseView struct {
	serving.DatabaseInfo
	// Owner is the ring owner; requests for this database land there
	// first. The embedded info is the owner's view when the owner holds
	// the database, else the first (sorted) holder's.
	Owner string `json:"owner"`
	// Replicas lists every replica with the database attached, sorted —
	// one entry in sharded deployments, all replicas in the mirrored
	// single-binary mode.
	Replicas []string `json:"replicas"`
}

// Databases aggregates the database listing across replicas (bounded
// fan-out). Unreachable replicas are skipped — a listing must degrade,
// not fail, during a partial outage.
func (r *Router) Databases(ctx context.Context) ([]DatabaseView, error) {
	views := map[string]*DatabaseView{}
	var mu sync.Mutex
	_, _, err := r.fanoutCollect(ctx, func(name string, infos []serving.DatabaseInfo) {
		mu.Lock()
		defer mu.Unlock()
		for _, info := range infos {
			v, ok := views[info.Name]
			if !ok {
				v = &DatabaseView{DatabaseInfo: info, Owner: r.ring.Owner(info.Name)}
				views[info.Name] = v
			}
			v.Replicas = append(v.Replicas, name)
			if name == v.Owner {
				v.DatabaseInfo = info // prefer the owner's plan-cache stats
			}
		}
	})
	if err != nil {
		return nil, err
	}
	out := make([]DatabaseView, 0, len(views))
	for _, v := range views {
		sort.Strings(v.Replicas)
		out = append(out, *v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// fanoutCollect fans the database listing out and hands each replica's
// result to collect (serialized by the caller's own lock).
func (r *Router) fanoutCollect(ctx context.Context, collect func(name string, infos []serving.DatabaseInfo)) ([]string, []error, error) {
	return r.fanout(ctx, func(ctx context.Context, b Backend) error {
		infos, err := b.Databases(ctx)
		if err != nil {
			return err
		}
		collect(b.Name(), infos)
		return nil
	})
}

// Models aggregates the union of model names served by reachable
// replicas, sorted.
func (r *Router) Models(ctx context.Context) ([]string, error) {
	set := map[string]bool{}
	var mu sync.Mutex
	_, _, err := r.fanout(ctx, func(ctx context.Context, b Backend) error {
		st, err := b.Stats(ctx)
		if err != nil {
			return err
		}
		mu.Lock()
		for _, m := range st.Models {
			set[m.Name] = true
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Strings(out)
	return out, nil
}

// ReplicaStats is one replica's row in the cluster stats: the router's
// view (health, routing counters) plus the replica's own serving
// snapshot when reachable.
type ReplicaStats struct {
	Name    string `json:"name"`
	Healthy bool   `json:"healthy"`
	// Served counts requests this replica answered; Failed counts its
	// backend-level call failures; Rescued counts requests it picked up
	// after another replica failed.
	Served  int64 `json:"served"`
	Failed  int64 `json:"failed"`
	Rescued int64 `json:"rescued"`
	// Error carries the stats-fetch failure for an unreachable replica;
	// Serving is nil in that case.
	Error   string         `json:"error,omitempty"`
	Serving *serving.Stats `json:"serving,omitempty"`
}

// ClusterStats is the aggregated /v1/stats body in cluster mode.
type ClusterStats struct {
	// CollectedAt is the wall-clock instant this aggregate snapshot was
	// assembled (each replica's serving snapshot carries its own).
	CollectedAt time.Time `json:"collected_at"`
	// Requests counts routed requests; Failovers counts the ones that
	// needed at least one failover hop.
	Requests  int64          `json:"requests"`
	Failovers int64          `json:"failovers"`
	Replicas  []ReplicaStats `json:"replicas"`
}

// Stats aggregates router counters with each reachable replica's
// serving snapshot (bounded fan-out; unreachable replicas report their
// error instead of a snapshot).
func (r *Router) Stats(ctx context.Context) (ClusterStats, error) {
	per := make(map[string]*serving.Stats)
	var mu sync.Mutex
	names, errs, err := r.fanout(ctx, func(ctx context.Context, b Backend) error {
		st, err := b.Stats(ctx)
		if err != nil {
			return err
		}
		mu.Lock()
		per[b.Name()] = &st
		mu.Unlock()
		return nil
	})
	if err != nil {
		return ClusterStats{}, err
	}
	out := ClusterStats{
		CollectedAt: time.Now(),
		Requests:    r.requests.Value(),
		Failovers:   r.failovers.Value(),
	}
	r.mu.RLock()
	healthy := map[string]bool{}
	for name, rep := range r.replicas {
		healthy[name] = rep.healthy.Load()
	}
	r.mu.RUnlock()
	for i, name := range names {
		rs := ReplicaStats{
			Name:    name,
			Healthy: healthy[name],
			Served:  r.served.Value(name),
			Failed:  r.failed.Value(name),
			Rescued: r.rescued.Value(name),
		}
		if errs[i] != nil {
			rs.Error = errs[i].Error()
		} else {
			rs.Serving = per[name]
		}
		out.Replicas = append(out.Replicas, rs)
	}
	return out, nil
}

// CheckHealth probes every replica (bounded fan-out), updates the
// health marks, and returns each replica's probe error (nil = healthy).
// The background prober calls this on its interval; deterministic
// callers (the sim harness, tests) call it directly.
func (r *Router) CheckHealth(ctx context.Context) map[string]error {
	out := map[string]error{}
	names, errs, err := r.fanout(ctx, func(ctx context.Context, b Backend) error {
		hctx, cancel := context.WithTimeout(ctx, r.cfg.HealthTimeout)
		defer cancel()
		return b.Health(hctx)
	})
	if err != nil {
		return out
	}
	for i, name := range names {
		out[name] = errs[i]
	}
	return out
}

// Healthy returns the current health mark per replica.
func (r *Router) Healthy() map[string]bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]bool, len(r.replicas))
	for name, rep := range r.replicas {
		out[name] = rep.healthy.Load()
	}
	return out
}

// probeLoop is the background health prober.
func (r *Router) probeLoop() {
	defer close(r.done)
	t := time.NewTicker(r.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.CheckHealth(context.Background())
		}
	}
}

// Close stops the prober and closes every registered backend. Further
// routing returns serving.ErrClosed. Idempotent.
func (r *Router) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	reps := make([]*replica, 0, len(r.replicas))
	for _, rep := range r.replicas {
		reps = append(reps, rep)
	}
	r.mu.Unlock()
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
	var first error
	for _, rep := range reps {
		if err := rep.b.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
