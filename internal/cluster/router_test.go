package cluster

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/zeroshot-db/zeroshot/internal/serving"
)

// newFakeCluster builds a router over n scripted backends r0..r{n-1},
// each claiming every database.
func newFakeCluster(t *testing.T, cfg Config, n int) (*Router, map[string]*fakeBackend) {
	t.Helper()
	r := NewRouter(cfg)
	t.Cleanup(func() { r.Close() })
	backs := map[string]*fakeBackend{}
	for i := 0; i < n; i++ {
		name := string(rune('r'+0)) + string(rune('0'+i))
		b := newFakeBackend(name)
		backs[name] = b
		if err := r.Register(b); err != nil {
			t.Fatal(err)
		}
	}
	return r, backs
}

func TestRouterRoutesToOwner(t *testing.T) {
	r, backs := newFakeCluster(t, Config{}, 3)
	ctx := context.Background()
	for _, db := range []string{"imdb", "ssb", "tpch", "accounts", "web"} {
		owner := r.Owner(db)
		before := backs[owner].predictCount()
		if _, err := r.Predict(ctx, db, "m", "SELECT COUNT(*) FROM t"); err != nil {
			t.Fatalf("Predict(%s): %v", db, err)
		}
		if got := backs[owner].predictCount(); got != before+1 {
			t.Fatalf("db %s: owner %s predict count %d, want %d", db, owner, got, before+1)
		}
	}
}

func TestRouterFailoverOnCrash(t *testing.T) {
	r, backs := newFakeCluster(t, Config{}, 3)
	ctx := context.Background()
	const db = "imdb"
	seq := r.Route(db)
	owner, second := seq[0], seq[1]
	backs[owner].setDown(true)
	p, err := r.Predict(ctx, db, "m", "SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatalf("Predict with downed owner: %v", err)
	}
	// The answer must be identical to what the owner would have served.
	if want := fakePrediction(db, "m", "SELECT COUNT(*) FROM t"); p.RuntimeSec != want.RuntimeSec {
		t.Fatalf("failover changed the prediction: %v vs %v", p.RuntimeSec, want.RuntimeSec)
	}
	if got := backs[second].predictCount(); got != 1 {
		t.Fatalf("successor %s served %d, want 1", second, got)
	}
	if r.Healthy()[owner] {
		t.Fatalf("owner %s still marked healthy after failed call", owner)
	}
	st, err := r.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Failovers != 1 {
		t.Fatalf("Failovers = %d, want 1", st.Failovers)
	}
	for _, rs := range st.Replicas {
		if rs.Name == second && rs.Rescued != 1 {
			t.Fatalf("replica %s Rescued = %d, want 1", second, rs.Rescued)
		}
	}
	// Recovery: heal the owner, re-probe, and the next request goes home.
	backs[owner].setDown(false)
	if errs := r.CheckHealth(ctx); errs[owner] != nil {
		t.Fatalf("health probe after heal: %v", errs[owner])
	}
	if !r.Healthy()[owner] {
		t.Fatalf("owner %s not healthy after successful probe", owner)
	}
	before := backs[owner].predictCount()
	if _, err := r.Predict(ctx, db, "m", "SELECT COUNT(*) FROM t"); err != nil {
		t.Fatal(err)
	}
	if got := backs[owner].predictCount(); got != before+1 {
		t.Fatalf("recovered owner did not serve: %d, want %d", got, before+1)
	}
}

func TestRouterAllReplicasDown(t *testing.T) {
	r, backs := newFakeCluster(t, Config{}, 3)
	for _, b := range backs {
		b.setDown(true)
	}
	_, err := r.Predict(context.Background(), "imdb", "m", "SELECT COUNT(*) FROM t")
	if !errors.Is(err, ErrNoReplica) {
		t.Fatalf("all-down Predict error = %v, want ErrNoReplica", err)
	}
	// An unhealthy mark must not strand the cluster: heal the backends
	// and the very next request succeeds via the last-resort pass, no
	// probe needed.
	for _, b := range backs {
		b.setDown(false)
	}
	if _, err := r.Predict(context.Background(), "imdb", "m", "SELECT COUNT(*) FROM t"); err != nil {
		t.Fatalf("Predict after heal (no probe): %v", err)
	}
}

func TestRouterEmpty(t *testing.T) {
	r := NewRouter(Config{})
	defer r.Close()
	_, err := r.Predict(context.Background(), "imdb", "m", "SELECT 1")
	if !errors.Is(err, ErrNoReplica) {
		t.Fatalf("empty router error = %v, want ErrNoReplica", err)
	}
}

func TestRouterShardedNotFoundWalksRing(t *testing.T) {
	// Shard: each backend holds only its own database. The ring owner of
	// "holderdb" may be a replica that does NOT hold it; the router must
	// walk the ring to the actual holder instead of failing.
	r := NewRouter(Config{})
	defer r.Close()
	holder := newFakeBackend("holder", "holderdb")
	other1 := newFakeBackend("other1", "otherdb1")
	other2 := newFakeBackend("other2", "otherdb2")
	for _, b := range []*fakeBackend{holder, other1, other2} {
		if err := r.Register(b); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Predict(context.Background(), "holderdb", "m", "SELECT COUNT(*) FROM t"); err != nil {
		t.Fatalf("sharded Predict: %v", err)
	}
	if holder.predictCount() != 1 {
		t.Fatalf("holder served %d, want 1", holder.predictCount())
	}
	// A database attached nowhere is a clean not-found, not a
	// no-replica outage.
	_, err := r.Predict(context.Background(), "nosuchdb", "m", "SELECT COUNT(*) FROM t")
	if !errors.Is(err, serving.ErrNotFound) {
		t.Fatalf("unknown db error = %v, want serving.ErrNotFound", err)
	}
	if errors.Is(err, ErrNoReplica) {
		t.Fatalf("unknown db misclassified as outage: %v", err)
	}
}

// TestRouterBadQueryDoesNotFailOver asserts request-level failures
// return immediately: retrying a malformed statement on another replica
// wastes capacity and duplicates errors.
func TestRouterBadQueryDoesNotFailOver(t *testing.T) {
	r := NewRouter(Config{})
	defer r.Close()
	bad := &badQueryBackend{fakeBackend: newFakeBackend("bad")}
	if err := r.Register(bad); err != nil {
		t.Fatal(err)
	}
	spare := newFakeBackend("spare")
	if err := r.Register(spare); err != nil {
		t.Fatal(err)
	}
	// Find a db the bad backend owns so the first attempt hits it.
	var db string
	for _, cand := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		if r.Owner(cand) == "bad" {
			db = cand
			break
		}
	}
	if db == "" {
		t.Skip("no candidate db hashed onto the bad replica")
	}
	_, err := r.Predict(context.Background(), db, "m", "SELEC nonsense")
	if !errors.Is(err, serving.ErrBadQuery) {
		t.Fatalf("error = %v, want ErrBadQuery", err)
	}
	if spare.predictCount() != 0 {
		t.Fatalf("bad query failed over to spare (%d calls); it must not", spare.predictCount())
	}
	if !r.Healthy()["bad"] {
		t.Fatal("request-level error marked the replica unhealthy")
	}
}

// badQueryBackend fails every Predict with ErrBadQuery.
type badQueryBackend struct{ *fakeBackend }

func (b *badQueryBackend) Predict(ctx context.Context, db, model, sql string) (serving.Prediction, error) {
	return serving.Prediction{}, fmt.Errorf("parse: unexpected token: %w", serving.ErrBadQuery)
}

func TestRouterSlowReplicaFailsOver(t *testing.T) {
	r, backs := newFakeCluster(t, Config{CallTimeout: 30 * time.Millisecond}, 3)
	const db = "imdb"
	seq := r.Route(db)
	backs[seq[0]].setSlow(500 * time.Millisecond)
	start := time.Now()
	_, err := r.Predict(context.Background(), db, "m", "SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatalf("Predict with slow owner: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 300*time.Millisecond {
		t.Fatalf("slow owner stalled the request %v; CallTimeout did not cut it off", elapsed)
	}
	if backs[seq[1]].predictCount() != 1 {
		t.Fatalf("successor served %d, want 1", backs[seq[1]].predictCount())
	}
	if r.Healthy()[seq[0]] {
		t.Fatal("slow replica not marked unhealthy")
	}
}

func TestRouterDuplicateRegister(t *testing.T) {
	r := NewRouter(Config{})
	defer r.Close()
	if err := r.Register(newFakeBackend("dup")); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(newFakeBackend("dup")); err == nil {
		t.Fatal("duplicate Register succeeded, want error")
	}
	if got := len(r.Replicas()); got != 1 {
		t.Fatalf("replicas after duplicate Register = %d, want 1", got)
	}
}

func TestRouterFanoutAggregation(t *testing.T) {
	r := NewRouter(Config{FanoutLimit: 2})
	defer r.Close()
	// Mirrored topology: both replicas hold both databases.
	b0 := newFakeBackend("r0", "imdb", "ssb")
	b1 := newFakeBackend("r1", "imdb", "ssb")
	for _, b := range []*fakeBackend{b0, b1} {
		if err := r.Register(b); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	dbs, err := r.Databases(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(dbs) != 2 {
		t.Fatalf("aggregated databases = %+v, want 2 deduped entries", dbs)
	}
	for _, d := range dbs {
		if len(d.Replicas) != 2 {
			t.Fatalf("db %s holders = %v, want both replicas", d.Name, d.Replicas)
		}
		if d.Owner != r.Owner(d.Name) {
			t.Fatalf("db %s owner = %s, ring says %s", d.Name, d.Owner, r.Owner(d.Name))
		}
	}
	models, err := r.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 { // fake-r0, fake-r1
		t.Fatalf("models union = %v", models)
	}
	// A downed replica degrades the listing instead of failing it.
	b1.setDown(true)
	dbs, err = r.Databases(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(dbs) != 2 {
		t.Fatalf("databases with one replica down = %+v", dbs)
	}
	for _, d := range dbs {
		if len(d.Replicas) != 1 || d.Replicas[0] != "r0" {
			t.Fatalf("db %s holders with r1 down = %v", d.Name, d.Replicas)
		}
	}
	st, err := r.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var sawDownRow bool
	for _, rs := range st.Replicas {
		if rs.Name == "r1" {
			sawDownRow = true
			if rs.Error == "" || rs.Serving != nil {
				t.Fatalf("down replica row = %+v, want error and no serving snapshot", rs)
			}
			if rs.Healthy {
				t.Fatal("down replica still marked healthy in stats")
			}
		}
	}
	if !sawDownRow {
		t.Fatalf("stats missing replica r1: %+v", st.Replicas)
	}
}

func TestRouterFeedbackRoutesToOwner(t *testing.T) {
	r, backs := newFakeCluster(t, Config{}, 3)
	ctx := context.Background()
	for _, db := range []string{"imdb", "ssb", "tpch"} {
		owner := r.Owner(db)
		if err := r.Feedback(ctx, db, "fp-"+db, 0.5); err != nil {
			t.Fatalf("Feedback(%s): %v", db, err)
		}
		if got := backs[owner].feedbackCount(db); got != 1 {
			t.Fatalf("db %s feedback landed off-owner (owner %s count %d)", db, owner, got)
		}
	}
}

func TestRouterClosed(t *testing.T) {
	r, _ := newFakeCluster(t, Config{}, 2)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Predict(context.Background(), "imdb", "m", "SELECT 1"); !errors.Is(err, serving.ErrClosed) {
		t.Fatalf("Predict after Close = %v, want ErrClosed", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestRouterDeregisterShiftsOwnership(t *testing.T) {
	r, backs := newFakeCluster(t, Config{}, 3)
	ctx := context.Background()
	const db = "imdb"
	seq := r.Route(db)
	owner, second := seq[0], seq[1]
	if _, ok := r.Deregister(owner); !ok {
		t.Fatalf("Deregister(%s) found nothing", owner)
	}
	if got := r.Owner(db); got != second {
		t.Fatalf("owner after deregister = %s, want ring successor %s", got, second)
	}
	if _, err := r.Predict(ctx, db, "m", "SELECT COUNT(*) FROM t"); err != nil {
		t.Fatal(err)
	}
	if backs[second].predictCount() != 1 {
		t.Fatalf("new owner served %d, want 1", backs[second].predictCount())
	}
}
