package sim

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/zeroshot-db/zeroshot/internal/cluster"
	"github.com/zeroshot-db/zeroshot/internal/serving"
	"github.com/zeroshot-db/zeroshot/internal/whatif"
)

// Faulty gates any real cluster backend behind the harness's fault
// switches: crash and partition fail every call with the backend-down
// class, slow stalls each call past the router's patience. It is how a
// genuine serving stack (cluster.NewInProcess over a serving.Session)
// runs under the deterministic fault schedule — the scripted Replica
// checks routing invariants cheaply, Faulty checks them against real
// parse/plan/predict behaviour.
type Faulty struct {
	inner cluster.Backend
	slow  time.Duration

	mu          sync.Mutex
	crashed     bool
	partitioned bool
	slowed      bool
}

var _ Backend = (*Faulty)(nil)

// WrapFaulty gates inner behind fresh fault switches (all clear). A
// Slow fault stalls calls by slowLatency.
func WrapFaulty(inner cluster.Backend, slowLatency time.Duration) *Faulty {
	return &Faulty{inner: inner, slow: slowLatency}
}

// Apply implements Backend.
func (f *Faulty) Apply(a Action) {
	f.mu.Lock()
	defer f.mu.Unlock()
	switch a {
	case Crash:
		f.crashed = true
	case Partition:
		f.partitioned = true
	case Recover:
		f.crashed, f.partitioned = false, false
	case Slow:
		f.slowed = true
	case Fast:
		f.slowed = false
	}
}

// Up implements Backend.
func (f *Faulty) Up() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return !f.crashed && !f.partitioned && !f.slowed
}

// gate applies the active faults to one incoming call.
func (f *Faulty) gate(ctx context.Context) error {
	f.mu.Lock()
	crashed, partitioned, slowed := f.crashed, f.partitioned, f.slowed
	f.mu.Unlock()
	if crashed {
		return fmt.Errorf("%w: %s crashed", cluster.ErrBackendDown, f.inner.Name())
	}
	if partitioned {
		return fmt.Errorf("%w: %s partitioned", cluster.ErrBackendDown, f.inner.Name())
	}
	if slowed {
		select {
		case <-time.After(f.slow):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// Name implements cluster.Backend.
func (f *Faulty) Name() string { return f.inner.Name() }

// Predict implements cluster.Backend.
func (f *Faulty) Predict(ctx context.Context, db, model, sql string) (serving.Prediction, error) {
	if err := f.gate(ctx); err != nil {
		return serving.Prediction{}, err
	}
	return f.inner.Predict(ctx, db, model, sql)
}

// PredictBatch implements cluster.Backend.
func (f *Faulty) PredictBatch(ctx context.Context, db, model string, sqls []string) (serving.BatchResult, error) {
	if err := f.gate(ctx); err != nil {
		return serving.BatchResult{}, err
	}
	return f.inner.PredictBatch(ctx, db, model, sqls)
}

// WhatIf implements cluster.Backend.
func (f *Faulty) WhatIf(ctx context.Context, db, model string, req whatif.Request) (*whatif.Report, error) {
	if err := f.gate(ctx); err != nil {
		return nil, err
	}
	return f.inner.WhatIf(ctx, db, model, req)
}

// Feedback implements cluster.Backend.
func (f *Faulty) Feedback(ctx context.Context, db, fingerprint string, actualSec float64) error {
	if err := f.gate(ctx); err != nil {
		return err
	}
	return f.inner.Feedback(ctx, db, fingerprint, actualSec)
}

// Databases implements cluster.Backend.
func (f *Faulty) Databases(ctx context.Context) ([]serving.DatabaseInfo, error) {
	if err := f.gate(ctx); err != nil {
		return nil, err
	}
	return f.inner.Databases(ctx)
}

// Stats implements cluster.Backend.
func (f *Faulty) Stats(ctx context.Context) (serving.Stats, error) {
	if err := f.gate(ctx); err != nil {
		return serving.Stats{}, err
	}
	return f.inner.Stats(ctx)
}

// Health implements cluster.Backend: a slowed backend stalls its probe
// too, so a bounded health check marks it unroutable.
func (f *Faulty) Health(ctx context.Context) error {
	if err := f.gate(ctx); err != nil {
		return err
	}
	return f.inner.Health(ctx)
}

// Close implements cluster.Backend.
func (f *Faulty) Close() error { return f.inner.Close() }
