package sim

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"
	"time"

	"github.com/zeroshot-db/zeroshot/internal/cluster"
	"github.com/zeroshot-db/zeroshot/internal/costmodel"
	"github.com/zeroshot-db/zeroshot/internal/serving"
	"github.com/zeroshot-db/zeroshot/internal/whatif"
)

// FeedbackRecord is one feedback a Replica accepted.
type FeedbackRecord struct {
	DB          string
	Fingerprint string
	ActualSec   float64
}

// Replica is the harness's scripted in-process backend: answers are an
// instant, pure function of (database, SQL) — so any two replicas agree
// bitwise, the property the mirrored cluster relies on — and the fault
// schedule flips its crash/slow/partition switches between steps. It
// records what it served so the harness can check where requests and
// feedback actually landed.
type Replica struct {
	name string
	slow time.Duration // stall injected while the Slow fault is active

	mu          sync.Mutex
	crashed     bool
	partitioned bool
	slowed      bool
	predicts    map[string]int // db -> served predictions
	feedbacks   []FeedbackRecord
}

var _ cluster.Backend = (*Replica)(nil)

// NewReplica returns an up replica whose Slow fault stalls calls by
// slowLatency.
func NewReplica(name string, slowLatency time.Duration) *Replica {
	return &Replica{name: name, slow: slowLatency, predicts: map[string]int{}}
}

// Apply flips the fault switch an Event selects.
func (r *Replica) Apply(a Action) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch a {
	case Crash:
		r.crashed = true
	case Partition:
		r.partitioned = true
	case Recover:
		r.crashed, r.partitioned = false, false
	case Slow:
		r.slowed = true
	case Fast:
		r.slowed = false
	}
}

// Up reports whether the replica would answer a call right now: not
// crashed, not partitioned, not slowed past the router's patience.
func (r *Replica) Up() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return !r.crashed && !r.partitioned && !r.slowed
}

// Predicts returns how many predictions this replica served for db.
func (r *Replica) Predicts(db string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.predicts[db]
}

// Feedbacks returns a copy of every feedback accepted, in order.
func (r *Replica) Feedbacks() []FeedbackRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]FeedbackRecord, len(r.feedbacks))
	copy(out, r.feedbacks)
	return out
}

// LastFeedback returns the most recently accepted feedback (zero value
// when none).
func (r *Replica) LastFeedback() FeedbackRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.feedbacks) == 0 {
		return FeedbackRecord{}
	}
	return r.feedbacks[len(r.feedbacks)-1]
}

// gate applies the active faults to one incoming call.
func (r *Replica) gate(ctx context.Context) error {
	r.mu.Lock()
	crashed, partitioned, slowed := r.crashed, r.partitioned, r.slowed
	r.mu.Unlock()
	if crashed {
		return fmt.Errorf("%w: %s crashed", cluster.ErrBackendDown, r.name)
	}
	if partitioned {
		return fmt.Errorf("%w: %s partitioned", cluster.ErrBackendDown, r.name)
	}
	if slowed {
		// Stall until the caller's per-attempt deadline gives up on us;
		// if the deadline somehow outlasts the stall, answer normally —
		// slow is slow, not dead.
		select {
		case <-time.After(r.slow):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// predictValue is the pure deterministic answer function shared by all
// replicas.
func predictValue(db, sql string) float64 {
	h := fnv.New64a()
	io.WriteString(h, db)
	io.WriteString(h, "\x00")
	io.WriteString(h, sql)
	return float64(h.Sum64()%10_000_000) / 1e7
}

// Name implements cluster.Backend.
func (r *Replica) Name() string { return r.name }

// Predict implements cluster.Backend.
func (r *Replica) Predict(ctx context.Context, db, model, sql string) (serving.Prediction, error) {
	if err := r.gate(ctx); err != nil {
		return serving.Prediction{}, err
	}
	r.mu.Lock()
	r.predicts[db]++
	r.mu.Unlock()
	return serving.Prediction{
		Database:    db,
		Model:       model,
		RuntimeSec:  predictValue(db, sql),
		Fingerprint: costmodel.Fingerprint(sql),
	}, nil
}

// PredictBatch implements cluster.Backend.
func (r *Replica) PredictBatch(ctx context.Context, db, model string, sqls []string) (serving.BatchResult, error) {
	if err := r.gate(ctx); err != nil {
		return serving.BatchResult{}, err
	}
	res := serving.BatchResult{Database: db, Model: model, Items: make([]serving.BatchItem, len(sqls))}
	r.mu.Lock()
	r.predicts[db] += len(sqls)
	r.mu.Unlock()
	for i, sql := range sqls {
		res.Items[i].RuntimeSec = predictValue(db, sql)
	}
	return res, nil
}

// WhatIf implements cluster.Backend: a deterministic stub — each
// candidate variant's total is the pure per-statement answer scaled by
// a candidate-derived factor, so any two replicas rank identically and
// the harness can assert where sweeps landed via Predicts.
func (r *Replica) WhatIf(ctx context.Context, db, model string, req whatif.Request) (*whatif.Report, error) {
	if err := r.gate(ctx); err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.predicts[db] += len(req.SQL) * (len(req.Candidates) + 1)
	r.mu.Unlock()
	base := 0.0
	for _, sql := range req.SQL {
		base += predictValue(db, sql)
	}
	rep := &whatif.Report{
		Database: db,
		Model:    model,
		Baseline: whatif.VariantResult{Name: "baseline", TotalSec: base},
		Items:    len(req.SQL) * (len(req.Candidates) + 1),
	}
	for _, c := range req.Candidates {
		scale := 0.5 + float64(fnvHash(c)%50)/100 // deterministic in [0.5, 1)
		rep.Variants = append(rep.Variants, whatif.VariantResult{
			Name:     c,
			Indexes:  []string{c},
			TotalSec: base * scale,
			SpeedupX: 1 / scale,
		})
	}
	sort.Slice(rep.Variants, func(a, b int) bool {
		if rep.Variants[a].TotalSec != rep.Variants[b].TotalSec {
			return rep.Variants[a].TotalSec < rep.Variants[b].TotalSec
		}
		return rep.Variants[a].Name < rep.Variants[b].Name
	})
	if len(rep.Variants) > 0 && rep.Variants[0].TotalSec < base {
		rep.Recommendation = rep.Variants[0].Name
	}
	return rep, nil
}

// fnvHash hashes one string for the scripted what-if answer function.
func fnvHash(s string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, s)
	return h.Sum64()
}

// Feedback implements cluster.Backend.
func (r *Replica) Feedback(ctx context.Context, db, fingerprint string, actualSec float64) error {
	if err := r.gate(ctx); err != nil {
		return err
	}
	r.mu.Lock()
	r.feedbacks = append(r.feedbacks, FeedbackRecord{DB: db, Fingerprint: fingerprint, ActualSec: actualSec})
	r.mu.Unlock()
	return nil
}

// Databases implements cluster.Backend: scripted replicas claim any
// database (the mirrored topology).
func (r *Replica) Databases(ctx context.Context) ([]serving.DatabaseInfo, error) {
	if err := r.gate(ctx); err != nil {
		return nil, err
	}
	return nil, nil
}

// Stats implements cluster.Backend.
func (r *Replica) Stats(ctx context.Context) (serving.Stats, error) {
	if err := r.gate(ctx); err != nil {
		return serving.Stats{}, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	total := int64(0)
	for _, n := range r.predicts {
		total += int64(n)
	}
	return serving.Stats{Requests: total}, nil
}

// Health implements cluster.Backend: a slowed replica stalls its probe
// too, so a health check bounded by the router's timeout marks it
// unroutable — which is the correct operational verdict.
func (r *Replica) Health(ctx context.Context) error { return r.gate(ctx) }

// Close implements cluster.Backend.
func (r *Replica) Close() error { return nil }
