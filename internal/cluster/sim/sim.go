// Package sim is the deterministic simulation harness for the cluster
// router: a seeded workload generator drives a real cluster.Router over
// scriptable in-process backends while a fault schedule crashes,
// slows, partitions, recovers and adds replicas at exact request steps
// — and the harness checks the invariants failover must keep, recording
// every breach as a Violation instead of panicking, so one run reports
// every problem it saw.
//
// The invariants:
//
//  1. No lost requests — a request issued while at least one of its
//     candidate replicas is up must succeed (failover found a path).
//  2. Consistent predictions — the same (database, SQL) pair yields the
//     bitwise-identical prediction no matter which replica served it,
//     before, during, or after a failover.
//  3. Feedback ownership — every feedback lands on the replica that is
//     first up in the database's ring order at send time: the same
//     replica serving that database's predictions, hence the one
//     holding its cached plans and adaptation windows.
//  4. Minimal rebalance — a replica added mid-run takes over only keys
//     that now hash to it; no database moves between two old replicas.
//
// Everything is single-goroutine and seeded: the same Config produces
// the same request sequence, the same fault timings (faults fire at
// request steps, not wall-clock times), and therefore the same Result.
// Real time appears only inside a Slow fault, where the router's
// per-attempt timeout — not the harness — decides the outcome, and the
// margins are wide enough (SlowLatency >> CallTimeout) that the
// decision is effectively deterministic too.
package sim

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"github.com/zeroshot-db/zeroshot/internal/cluster"
)

// Action is one fault-schedule verb.
type Action int

const (
	// Crash makes a replica fail every call with the backend-down class.
	Crash Action = iota
	// Recover heals a crashed or partitioned replica.
	Recover
	// Slow makes a replica stall each call for SlowLatency — long past
	// the router's per-attempt timeout, so calls fail over without the
	// replica ever looking "down" to itself.
	Slow
	// Fast removes a Slow fault.
	Fast
	// Partition makes a replica unreachable (indistinguishable from
	// Crash to the router, kept distinct for schedule readability and
	// per-fault accounting).
	Partition
	// AddReplica registers a brand-new replica mid-run and checks the
	// rebalance-minimality invariant against the ownership map captured
	// just before.
	AddReplica
)

// String names an Action for violation messages.
func (a Action) String() string {
	switch a {
	case Crash:
		return "crash"
	case Recover:
		return "recover"
	case Slow:
		return "slow"
	case Fast:
		return "fast"
	case Partition:
		return "partition"
	case AddReplica:
		return "add-replica"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// Event is one scheduled fault: at the given request step, apply the
// action to the replica.
type Event struct {
	Step    int
	Action  Action
	Replica string
}

// Backend is what the harness drives: a routable cluster backend whose
// fault switches the schedule can flip. The scripted Replica satisfies
// it natively; a real serving session satisfies it through Faulty.
type Backend interface {
	cluster.Backend
	// Apply flips one fault switch.
	Apply(a Action)
	// Up reports whether the backend would answer a call right now.
	Up() bool
}

// feedbackRecorder is the optional probe behind the feedback-ownership
// invariant. Backends that do not record feedback (real sessions behind
// Faulty) skip that check — the router's routing is still exercised,
// only the landed-where assertion needs the probe.
type feedbackRecorder interface {
	LastFeedback() FeedbackRecord
}

// Config sizes one simulation.
type Config struct {
	// Replicas is the starting replica count (named s0..s{n-1}).
	Replicas int
	// Databases are the key population routed over (defaults to 6
	// synthetic names).
	Databases []string
	// Requests is how many prediction requests the workload issues.
	Requests int
	// Seed drives the workload generator; same seed, same run.
	Seed int64
	// Workload, when set, replaces the synthetic SQL generator: step i
	// issues Workload[i % len(Workload)] — real statements for backends
	// that actually parse and plan. Empty keeps the synthetic generator.
	Workload []string
	// Model is the model name every request asks for (default "model";
	// scripted replicas ignore it, real sessions resolve it).
	Model string
	// NewBackend builds one replica (initial and AddReplica alike). Nil
	// selects the scripted Replica — wrap real sessions with Faulty here
	// to run the harness over actual serving stacks.
	NewBackend func(name string) (Backend, error)
	// FeedbackEvery sends a feedback for every k-th successful
	// prediction (0 disables feedback traffic).
	FeedbackEvery int
	// Schedule is the fault script, applied at request-step boundaries.
	Schedule []Event
	// CallTimeout is the router's per-attempt bound (default 5ms) and
	// SlowLatency the stall a Slow fault injects (default 50ms). Keep
	// SlowLatency an order of magnitude above CallTimeout so the
	// slow-replica outcome never races.
	CallTimeout time.Duration
	SlowLatency time.Duration
	// MaxAttempts caps the router's failover walk (0 = every replica).
	MaxAttempts int
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if len(c.Databases) == 0 {
		c.Databases = []string{"imdb", "ssb", "tpch", "accounts", "web", "sensors"}
	}
	if c.Requests <= 0 {
		c.Requests = 200
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 5 * time.Millisecond
	}
	if c.SlowLatency <= 0 {
		c.SlowLatency = 50 * time.Millisecond
	}
	if c.Model == "" {
		c.Model = "model"
	}
	return c
}

// Outcome is one workload request's fate.
type Outcome struct {
	Step        int
	DB          string
	SQL         string
	Err         error
	RuntimeSec  float64
	Fingerprint string
	// UpCandidates is how many of the database's candidate replicas
	// were up when the request was issued — 0 means a failure here is
	// expected, not lost.
	UpCandidates int
}

// Violation is one invariant breach.
type Violation struct {
	Step    int
	Message string
}

func (v Violation) String() string { return fmt.Sprintf("step %d: %s", v.Step, v.Message) }

// Result is a finished run.
type Result struct {
	Outcomes  []Outcome
	Succeeded int
	// FailedExpected counts requests that failed while no candidate was
	// up (all-down windows). FailedLost counts requests that failed
	// with a path available — each one is also a Violation.
	FailedExpected int
	FailedLost     int
	FeedbackSent   int
	// Failovers is the router's count of requests that needed at least
	// one failover hop.
	Failovers  int64
	Violations []Violation
}

// Sim drives one Router through one seeded run. Not safe for concurrent
// use — determinism is the point.
type Sim struct {
	cfg      Config
	router   *cluster.Router
	replicas map[string]Backend
	rng      *rand.Rand
	next     int // suffix for AddReplica names
	step     int // next request step (for incremental driving)
	finished bool

	res Result
	// expectedRuntime pins the first prediction seen per (db|sql) so
	// later answers — possibly from other replicas — can be compared
	// bitwise.
	expectedRuntime map[string]float64
}

// New builds the simulation: a router (no background prober — the
// harness drives health checks at deterministic points) over
// cfg.Replicas scripted replicas.
func New(cfg Config) (*Sim, error) {
	cfg = cfg.withDefaults()
	s := &Sim{
		cfg: cfg,
		router: cluster.NewRouter(cluster.Config{
			CallTimeout:   cfg.CallTimeout,
			HealthTimeout: cfg.CallTimeout,
			MaxAttempts:   cfg.MaxAttempts,
		}),
		replicas:        map[string]Backend{},
		rng:             rand.New(rand.NewSource(cfg.Seed)),
		expectedRuntime: map[string]float64{},
	}
	for i := 0; i < cfg.Replicas; i++ {
		if err := s.addReplica(fmt.Sprintf("s%d", i)); err != nil {
			s.router.Close()
			return nil, err
		}
	}
	s.next = cfg.Replicas
	return s, nil
}

func (s *Sim) addReplica(name string) error {
	var rep Backend
	if s.cfg.NewBackend != nil {
		var err error
		rep, err = s.cfg.NewBackend(name)
		if err != nil {
			return err
		}
	} else {
		rep = NewReplica(name, s.cfg.SlowLatency)
	}
	if err := s.router.Register(rep); err != nil {
		return err
	}
	s.replicas[name] = rep
	return nil
}

// Router exposes the router under test (read-only use in assertions).
func (s *Sim) Router() *cluster.Router { return s.router }

// Replica returns a backend by name (nil if unknown).
func (s *Sim) Replica(name string) Backend { return s.replicas[name] }

// Fault applies one action to a replica outside the schedule — the
// incremental-driving analogue of an Event — then re-probes health so
// the router's marks deterministically reflect the new fault state.
func (s *Sim) Fault(ctx context.Context, name string, a Action) error {
	rep := s.replicas[name]
	if rep == nil {
		return fmt.Errorf("sim: unknown replica %q", name)
	}
	rep.Apply(a)
	s.router.CheckHealth(ctx)
	return nil
}

// ResetExpectations clears the bitwise-consistency map. Call it when
// the fleet's serving generation legitimately changes (a model bundle
// activated or rolled back): predictions after the swap must agree with
// each other, not with the previous generation.
func (s *Sim) ResetExpectations() {
	s.expectedRuntime = map[string]float64{}
}

// violatef records one invariant breach.
func (s *Sim) violatef(step int, format string, args ...any) {
	s.res.Violations = append(s.res.Violations, Violation{Step: step, Message: fmt.Sprintf(format, args...)})
}

// owners snapshots every database's current ring owner.
func (s *Sim) owners() map[string]string {
	out := make(map[string]string, len(s.cfg.Databases))
	for _, db := range s.cfg.Databases {
		out[db] = s.router.Owner(db)
	}
	return out
}

// applyEvents fires every scheduled event for this step, then re-probes
// health once so the router's marks deterministically reflect the new
// fault state before the step's request routes.
func (s *Sim) applyEvents(ctx context.Context, step int) {
	applied := false
	for _, ev := range s.cfg.Schedule {
		if ev.Step != step {
			continue
		}
		applied = true
		switch ev.Action {
		case AddReplica:
			before := s.owners()
			name := ev.Replica
			if name == "" {
				name = fmt.Sprintf("s%d", s.next)
				s.next++
			}
			if err := s.addReplica(name); err != nil {
				s.violatef(step, "add-replica %s failed: %v", name, err)
				continue
			}
			for db, was := range s.owners() {
				if was != before[db] && was != name {
					s.violatef(step, "rebalance moved %q from %s to %s; only moves to new replica %s are minimal",
						db, before[db], was, name)
				}
			}
		default:
			rep := s.replicas[ev.Replica]
			if rep == nil {
				s.violatef(step, "schedule names unknown replica %q", ev.Replica)
				continue
			}
			rep.Apply(ev.Action)
		}
	}
	if applied {
		s.router.CheckHealth(ctx)
	}
}

// upCandidates returns how many of db's candidate replicas are up, and
// the first up candidate in ring (failover) order.
func (s *Sim) upCandidates(db string) (int, string) {
	up, first := 0, ""
	for _, name := range s.router.Route(db) {
		rep := s.replicas[name]
		if rep != nil && rep.Up() {
			up++
			if first == "" {
				first = name
			}
		}
	}
	return up, first
}

// Run executes the whole configured workload and returns the result.
// Call once; the router is closed before returning. Incremental drivers
// use Step and Finish instead.
func (s *Sim) Run(ctx context.Context) Result {
	s.Step(ctx, s.cfg.Requests-s.step)
	return s.Finish(ctx)
}

// Step advances the workload by n request steps (bounded by the
// configured total) and returns the number actually executed. Between
// calls the driver may apply Faults, reset expectations, or mutate the
// backends — the seeded request sequence is unaffected by the pauses.
func (s *Sim) Step(ctx context.Context, n int) int {
	ran := 0
	for ; ran < n && s.step < s.cfg.Requests && !s.finished; ran++ {
		s.runStep(ctx, s.step)
		s.step++
	}
	return ran
}

// Finish closes the router and returns the accumulated result. Further
// Step calls are no-ops.
func (s *Sim) Finish(ctx context.Context) Result {
	if !s.finished {
		if st, err := s.router.Stats(ctx); err == nil {
			s.res.Failovers = st.Failovers
		}
		s.router.Close()
		s.finished = true
	}
	return s.res
}

// runStep issues one workload request and checks the invariants.
func (s *Sim) runStep(ctx context.Context, step int) {
	s.applyEvents(ctx, step)
	db := s.cfg.Databases[s.rng.Intn(len(s.cfg.Databases))]
	var sql string
	if len(s.cfg.Workload) > 0 {
		sql = s.cfg.Workload[step%len(s.cfg.Workload)]
		s.rng.Intn(10_000) // keep the seeded stream aligned across configs
	} else {
		sql = fmt.Sprintf("SELECT COUNT(*) FROM t WHERE x > %d", s.rng.Intn(10_000))
	}
	up, firstUp := s.upCandidates(db)
	p, err := s.router.Predict(ctx, db, s.cfg.Model, sql)
	o := Outcome{Step: step, DB: db, SQL: sql, Err: err, UpCandidates: up}
	if err == nil {
		o.RuntimeSec, o.Fingerprint = p.RuntimeSec, p.Fingerprint
		s.res.Succeeded++
		key := db + "|" + sql
		if want, seen := s.expectedRuntime[key]; !seen {
			s.expectedRuntime[key] = p.RuntimeSec
		} else if want != p.RuntimeSec {
			s.violatef(step, "prediction for %q on %q changed: %v then %v (failover must not change answers)",
				sql, db, want, p.RuntimeSec)
		}
		if s.cfg.FeedbackEvery > 0 && s.res.Succeeded%s.cfg.FeedbackEvery == 0 {
			s.feedback(ctx, step, db, p.Fingerprint, p.RuntimeSec, firstUp)
		}
	} else if up > 0 {
		s.res.FailedLost++
		s.violatef(step, "request for %q LOST: %d candidate(s) up but Predict failed: %v", db, up, err)
	} else {
		s.res.FailedExpected++
	}
	s.res.Outcomes = append(s.res.Outcomes, o)
}

// feedback routes one observed runtime and checks it lands on the
// replica expected to own the database right now.
func (s *Sim) feedback(ctx context.Context, step int, db, fp string, runtime float64, expect string) {
	if err := s.router.Feedback(ctx, db, fp, runtime*1.5); err != nil {
		s.violatef(step, "feedback for %q failed: %v", db, err)
		return
	}
	s.res.FeedbackSent++
	rep, ok := s.replicas[expect].(feedbackRecorder)
	if !ok {
		return
	}
	if got := rep.LastFeedback(); got.DB != db || got.Fingerprint != fp {
		s.violatef(step, "feedback for %q did not reach owning replica %s (its last feedback: %+v)",
			db, expect, got)
	}
}
