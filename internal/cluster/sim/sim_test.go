package sim

import (
	"context"
	"testing"
	"time"
)

// mustRun builds and runs one simulation, failing the test on every
// recorded invariant violation.
func mustRun(t *testing.T, cfg Config) Result {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(context.Background())
	for _, v := range res.Violations {
		t.Errorf("invariant violated: %s", v)
	}
	return res
}

// TestSimCrashRecoveryNoLostRequests is the acceptance scenario: a
// replica crashes mid-run and later recovers, another partitions in an
// overlapping window, and not one request is lost — every prediction
// issued while any candidate was up succeeds, via failover when needed.
func TestSimCrashRecoveryNoLostRequests(t *testing.T) {
	res := mustRun(t, Config{
		Replicas:      4,
		Requests:      400,
		Seed:          42,
		FeedbackEvery: 5,
		Schedule: []Event{
			{Step: 50, Action: Crash, Replica: "s1"},
			{Step: 120, Action: Partition, Replica: "s3"},
			{Step: 180, Action: Recover, Replica: "s3"},
			{Step: 250, Action: Recover, Replica: "s1"},
		},
	})
	if res.Succeeded != 400 {
		t.Fatalf("succeeded %d/400 (lost %d, expected-failures %d)", res.Succeeded, res.FailedLost, res.FailedExpected)
	}
	if res.FailedLost != 0 || res.FailedExpected != 0 {
		t.Fatalf("lost=%d expectedFail=%d, want 0/0", res.FailedLost, res.FailedExpected)
	}
	if res.Failovers == 0 {
		t.Fatal("no failovers recorded; the schedule should have forced some")
	}
	if res.FeedbackSent == 0 {
		t.Fatal("no feedback sent; workload misconfigured")
	}
}

// TestSimDeterminism runs the same seeded scenario twice and demands
// bitwise-identical outcome streams — the property that makes a failure
// report replayable.
func TestSimDeterminism(t *testing.T) {
	cfg := Config{
		Replicas:      3,
		Requests:      150,
		Seed:          7,
		FeedbackEvery: 4,
		Schedule: []Event{
			{Step: 30, Action: Crash, Replica: "s0"},
			{Step: 90, Action: Recover, Replica: "s0"},
		},
	}
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	if len(a.Outcomes) != len(b.Outcomes) {
		t.Fatalf("outcome counts differ: %d vs %d", len(a.Outcomes), len(b.Outcomes))
	}
	for i := range a.Outcomes {
		oa, ob := a.Outcomes[i], b.Outcomes[i]
		if oa.DB != ob.DB || oa.SQL != ob.SQL || oa.RuntimeSec != ob.RuntimeSec ||
			(oa.Err == nil) != (ob.Err == nil) {
			t.Fatalf("run diverged at step %d: %+v vs %+v", i, oa, ob)
		}
	}
	if a.Succeeded != b.Succeeded || a.FeedbackSent != b.FeedbackSent {
		t.Fatalf("summary diverged: %+v vs %+v", a, b)
	}
}

// TestSimTotalOutageIsAccountedNotLost takes every replica down for a
// window: requests in the window fail — and the harness classifies each
// one as expected (no candidate up), never as lost.
func TestSimTotalOutageIsAccountedNotLost(t *testing.T) {
	res := mustRun(t, Config{
		Replicas: 2,
		Requests: 100,
		Seed:     3,
		Schedule: []Event{
			{Step: 40, Action: Crash, Replica: "s0"},
			{Step: 40, Action: Crash, Replica: "s1"},
			{Step: 60, Action: Recover, Replica: "s0"},
			{Step: 60, Action: Recover, Replica: "s1"},
		},
	})
	if res.FailedLost != 0 {
		t.Fatalf("lost %d requests", res.FailedLost)
	}
	if res.FailedExpected != 20 {
		t.Fatalf("expected-failure count = %d, want exactly the 20-step outage window", res.FailedExpected)
	}
	if res.Succeeded != 80 {
		t.Fatalf("succeeded = %d, want 80", res.Succeeded)
	}
}

// TestSimSlowReplicaFailsOver scripts a slow (not dead) replica: the
// router's per-attempt timeout must convert the stall into a failover,
// losing nothing.
func TestSimSlowReplicaFailsOver(t *testing.T) {
	res := mustRun(t, Config{
		Replicas:    3,
		Requests:    120,
		Seed:        11,
		CallTimeout: 5 * time.Millisecond,
		SlowLatency: 60 * time.Millisecond,
		Schedule: []Event{
			{Step: 20, Action: Slow, Replica: "s2"},
			{Step: 80, Action: Fast, Replica: "s2"},
		},
	})
	if res.Succeeded != 120 || res.FailedLost != 0 {
		t.Fatalf("succeeded=%d lost=%d, want 120/0", res.Succeeded, res.FailedLost)
	}
}

// TestSimAddReplicaRebalancesMinimally registers a new replica mid-run;
// the harness itself asserts no database moved between two old
// replicas, and this test additionally demands the run stayed lossless
// through the topology change.
func TestSimAddReplicaRebalancesMinimally(t *testing.T) {
	res := mustRun(t, Config{
		Replicas:      3,
		Requests:      200,
		Seed:          5,
		FeedbackEvery: 6,
		Schedule: []Event{
			{Step: 100, Action: AddReplica},
		},
	})
	if res.Succeeded != 200 {
		t.Fatalf("succeeded = %d, want 200", res.Succeeded)
	}
}

// TestSimFeedbackFollowsFailover crashes a replica and checks — via the
// harness's ownership invariant — that feedback during the outage lands
// on the rescuing replica (which served the predictions and thus holds
// the plans), then returns home after recovery.
func TestSimFeedbackFollowsFailover(t *testing.T) {
	cfg := Config{
		Replicas:      3,
		Requests:      240,
		Seed:          13,
		FeedbackEvery: 3,
		Schedule: []Event{
			{Step: 60, Action: Crash, Replica: "s0"},
			{Step: 160, Action: Recover, Replica: "s0"},
		},
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(context.Background())
	for _, v := range res.Violations {
		t.Errorf("invariant violated: %s", v)
	}
	if res.FeedbackSent == 0 {
		t.Fatal("no feedback sent")
	}
	// The crashed replica must have accepted no feedback while down:
	// every record it holds predates the crash or postdates recovery.
	// (Ownership routing is already asserted per-send by the harness;
	// this checks the flip side — nothing leaked to a dead replica.)
	if n := len(s.Replica("s0").(*Replica).Feedbacks()); n > 0 && res.FeedbackSent == n {
		t.Fatalf("all %d feedbacks landed on s0 despite its 100-step outage", n)
	}
}
