package cluster

import (
	"context"
	"errors"
	"testing"

	"github.com/zeroshot-db/zeroshot/internal/serving"
	"github.com/zeroshot-db/zeroshot/internal/whatif"
)

// TestRouterWhatIfRoutesToOwner: sweeps route owner-first like
// predictions, so the owner's what-if caches stay hot.
func TestRouterWhatIfRoutesToOwner(t *testing.T) {
	r, backs := newFakeCluster(t, Config{}, 3)
	ctx := context.Background()
	req := whatif.Request{SQL: []string{"SELECT COUNT(*) FROM t"}, Candidates: []string{"t.a"}}
	for _, db := range []string{"imdb", "ssb", "tpch"} {
		owner := r.Owner(db)
		before := backs[owner].whatifCount()
		rep, err := r.WhatIf(ctx, db, "m", req)
		if err != nil {
			t.Fatalf("WhatIf(%s): %v", db, err)
		}
		if rep.Database != db || len(rep.Variants) != 1 {
			t.Fatalf("report = %+v", rep)
		}
		if got := backs[owner].whatifCount(); got != before+1 {
			t.Fatalf("db %s: owner %s whatif count %d, want %d", db, owner, got, before+1)
		}
	}
}

func TestRouterWhatIfFailsOver(t *testing.T) {
	r, backs := newFakeCluster(t, Config{}, 3)
	ctx := context.Background()
	const db = "imdb"
	seq := r.Route(db)
	owner, second := seq[0], seq[1]
	backs[owner].setDown(true)

	req := whatif.Request{SQL: []string{"SELECT COUNT(*) FROM t"}, Candidates: []string{"t.a"}}
	rep, err := r.WhatIf(ctx, db, "m", req)
	if err != nil {
		t.Fatalf("WhatIf with downed owner: %v", err)
	}
	// The scripted answer is a pure function of (db, sql), so failover
	// must not change the baseline.
	want := fakePrediction(db, "m", req.SQL[0]).RuntimeSec
	if rep.Baseline.TotalSec != want {
		t.Fatalf("failover changed the sweep: %v vs %v", rep.Baseline.TotalSec, want)
	}
	if got := backs[second].whatifCount(); got != 1 {
		t.Fatalf("successor %s served %d sweeps, want 1", second, got)
	}

	// A database no replica owns walks the ring and surfaces the serving
	// error class intact, so front ends still map it to 404.
	backs[owner].setDown(false)
	if errs := r.CheckHealth(ctx); errs[owner] != nil {
		t.Fatal(errs[owner])
	}
	for _, b := range backs {
		b.dbs["somedb"] = true
	}
	if _, err := r.WhatIf(ctx, "unknown", "m", req); !errors.Is(err, serving.ErrNotFound) {
		t.Fatalf("unknown-db sweep err = %v, want serving.ErrNotFound", err)
	}
}
