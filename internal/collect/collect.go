// Package collect implements the training-data collection pipeline of the
// paper's learning phase: generate a workload against a database, plan
// every query, execute the plans to obtain true cardinalities and work
// counters, and simulate the runtime measurement.
//
// One Record corresponds to one "executed training query" of the paper;
// collecting records across many databases is the one-time effort that
// zero-shot training amortizes.
package collect

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/zeroshot-db/zeroshot/internal/engine"
	"github.com/zeroshot-db/zeroshot/internal/hwsim"
	"github.com/zeroshot-db/zeroshot/internal/optimizer"
	"github.com/zeroshot-db/zeroshot/internal/plan"
	"github.com/zeroshot-db/zeroshot/internal/query"
	"github.com/zeroshot-db/zeroshot/internal/stats"
	"github.com/zeroshot-db/zeroshot/internal/storage"
)

// Record is one executed training/evaluation query.
type Record struct {
	DB         string
	Query      *query.Query
	Plan       *plan.Node // executed: TrueRows and Work filled
	RuntimeSec float64
	// OptimizerCost is the analytical total cost estimate, the input of
	// the Scaled Optimizer Cost baseline.
	OptimizerCost float64
	// PeakMemBytes is the simulated peak working-set size of the
	// execution — the resource-consumption target of Section 4.3.
	PeakMemBytes float64
}

// WorkloadFunc produces n queries against a database (the signatures of
// query.JOBLight / Scale / Synthetic).
type WorkloadFunc func(db *storage.Database, n int, seed int64) ([]*query.Query, error)

// Options configures a collection run.
type Options struct {
	// Queries is the number of records to collect.
	Queries int
	// Seed drives workload generation and runtime noise.
	Seed int64
	// Workload generates the queries; nil means query.Synthetic.
	Workload WorkloadFunc
	// Indexes are the secondary indexes visible to the planner (nil: none).
	Indexes optimizer.IndexSet
	// Profile is the simulated machine; zero value means hwsim.DefaultProfile.
	Profile hwsim.Profile
	// MaxIntermediate caps intermediate result sizes (0: engine default).
	MaxIntermediate int
}

// Run collects records from one database. Queries whose execution exceeds
// the intermediate cap are skipped and replaced (more are generated), so
// the returned slice has exactly opts.Queries records unless generation
// stalls.
func Run(db *storage.Database, opts Options) ([]Record, error) {
	if opts.Queries <= 0 {
		return nil, fmt.Errorf("collect: Queries must be positive")
	}
	workload := opts.Workload
	if workload == nil {
		workload = query.Synthetic
	}
	prof := opts.Profile
	if prof.Name == "" {
		prof = hwsim.DefaultProfile()
	}
	st := stats.Collect(db, stats.DefaultBuckets, stats.DefaultMCVs)
	opt := optimizer.New(db.Schema, st, opts.Indexes, optimizer.DefaultCostParams())
	ex := engine.New(db, engine.Config{MaxIntermediate: opts.MaxIntermediate})
	sim := hwsim.New(prof, opts.Seed+1)

	var out []Record
	// Generate in rounds: some queries are skipped (too-large results), so
	// over-generate until the target count is reached.
	seed := opts.Seed
	const maxRounds = 12
	for round := 0; round < maxRounds && len(out) < opts.Queries; round++ {
		need := opts.Queries - len(out)
		qs, err := workload(db, need+need/4+4, seed)
		if err != nil {
			return nil, fmt.Errorf("collect: workload on %s: %w", db.Schema.Name, err)
		}
		seed += int64(len(qs)) + 7
		for _, q := range qs {
			if len(out) >= opts.Queries {
				break
			}
			p, err := opt.Plan(q)
			if err != nil {
				return nil, fmt.Errorf("collect: plan %q: %w", q.SQL(), err)
			}
			if _, err := ex.Execute(p); err != nil {
				if errors.Is(err, engine.ErrTooLarge) {
					continue
				}
				return nil, fmt.Errorf("collect: execute %q: %w", q.SQL(), err)
			}
			out = append(out, Record{
				DB:            db.Schema.Name,
				Query:         q,
				Plan:          p,
				RuntimeSec:    sim.Runtime(p),
				OptimizerCost: optimizer.TotalCost(p),
				PeakMemBytes:  hwsim.PeakMemoryBytes(p),
			})
		}
	}
	if len(out) < opts.Queries {
		return nil, fmt.Errorf("collect: only %d of %d queries executable on %s", len(out), opts.Queries, db.Schema.Name)
	}
	return out, nil
}

// RandomIndexes builds "a random but fixed set of indexes" for a database,
// as the paper does before running the index-tuning training queries:
// every FK join column is indexed with probability fkProb and every other
// non-PK column with probability colProb.
func RandomIndexes(db *storage.Database, seed int64, fkProb, colProb float64) optimizer.IndexSet {
	rng := rand.New(rand.NewSource(seed))
	set := optimizer.IndexSet{}
	isFK := map[string]bool{}
	for _, fk := range db.Schema.ForeignKeys {
		isFK[fk.FromTable+"."+fk.FromColumn] = true
	}
	for _, tm := range db.Schema.Tables {
		for _, cm := range tm.Columns {
			if cm.PrimaryKey {
				continue
			}
			key := optimizer.Key(tm.Name, cm.Name)
			p := colProb
			if isFK[key] {
				p = fkProb
			}
			if rng.Float64() < p {
				set[key] = true
			}
		}
	}
	return set
}
