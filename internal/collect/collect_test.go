package collect

import (
	"testing"

	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/plan"
	"github.com/zeroshot-db/zeroshot/internal/query"
)

func TestRunCollectsRequestedCount(t *testing.T) {
	db, err := datagen.IMDBLike(0.02)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := Run(db, Options{Queries: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 40 {
		t.Fatalf("got %d records, want 40", len(recs))
	}
	for i, r := range recs {
		if r.DB != "imdb" {
			t.Fatalf("record %d DB = %s", i, r.DB)
		}
		if r.RuntimeSec <= 0 {
			t.Fatalf("record %d runtime = %v", i, r.RuntimeSec)
		}
		if r.OptimizerCost <= 0 {
			t.Fatalf("record %d optimizer cost = %v", i, r.OptimizerCost)
		}
		if r.Plan == nil || r.Plan.TrueRows < 0 {
			t.Fatalf("record %d plan not executed", i)
		}
	}
}

func TestRunDeterministicRuntimes(t *testing.T) {
	db, _ := datagen.IMDBLike(0.02)
	a, err := Run(db, Options{Queries: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(db, Options{Queries: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].RuntimeSec != b[i].RuntimeSec {
			t.Fatalf("record %d runtime differs: %v vs %v", i, a[i].RuntimeSec, b[i].RuntimeSec)
		}
		if a[i].Query.SQL() != b[i].Query.SQL() {
			t.Fatalf("record %d query differs", i)
		}
	}
}

func TestRunWithCustomWorkload(t *testing.T) {
	db, _ := datagen.IMDBLike(0.02)
	recs, err := Run(db, Options{Queries: 15, Seed: 2, Workload: query.JOBLight})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if len(r.Query.Aggregates) != 1 || r.Query.Aggregates[0].Func != query.AggCount {
			t.Fatalf("JOB-light record has aggregates %v", r.Query.Aggregates)
		}
	}
}

func TestRunWithIndexesProducesIndexPlans(t *testing.T) {
	db, _ := datagen.IMDBLike(0.02)
	idx := RandomIndexes(db, 3, 1.0, 0.5)
	if len(idx) == 0 {
		t.Fatal("RandomIndexes produced nothing at high probabilities")
	}
	recs, err := Run(db, Options{Queries: 60, Seed: 3, Indexes: idx})
	if err != nil {
		t.Fatal(err)
	}
	indexScans := 0
	for _, r := range recs {
		r.Plan.Walk(func(n *plan.Node) {
			if n.Op == plan.IndexScan {
				indexScans++
			}
		})
	}
	if indexScans == 0 {
		t.Fatal("no index scans in any collected plan despite indexes everywhere")
	}
}

func TestRunRejectsBadOptions(t *testing.T) {
	db, _ := datagen.IMDBLike(0.02)
	if _, err := Run(db, Options{Queries: 0}); err == nil {
		t.Fatal("accepted zero queries")
	}
}

func TestRandomIndexesDeterministicAndProbabilistic(t *testing.T) {
	db, _ := datagen.IMDBLike(0.02)
	a := RandomIndexes(db, 7, 0.8, 0.3)
	b := RandomIndexes(db, 7, 0.8, 0.3)
	if len(a) != len(b) {
		t.Fatal("not deterministic")
	}
	for k := range a {
		if !b[k] {
			t.Fatal("index sets differ for equal seeds")
		}
	}
	none := RandomIndexes(db, 7, 0, 0)
	if len(none) != 0 {
		t.Fatalf("zero probabilities produced %d indexes", len(none))
	}
	// Primary keys never get secondary indexes.
	all := RandomIndexes(db, 7, 1, 1)
	for k := range all {
		if k == "title.id" {
			t.Fatal("indexed a primary key")
		}
	}
}
