package costmodel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"context"
)

// predictBatch fans predict over a worker pool sized by GOMAXPROCS and
// returns the results aligned with ins. It is the shared PredictBatch
// implementation of every adapter: per-sample tapes make the underlying
// forward passes independent, so the fan-out is embarrassingly parallel.
// The first error (by input index) aborts the batch; context cancellation
// stops workers between items.
func predictBatch(ctx context.Context, ins []PlanInput, predict func(PlanInput) (float64, error)) ([]float64, error) {
	if len(ins) == 0 {
		return nil, nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(ins) {
		workers = len(ins)
	}
	if workers < 1 {
		workers = 1
	}
	out := make([]float64, len(ins))
	errs := make([]error, len(ins))
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(ins) {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					return
				}
				out[i], errs[i] = predict(ins[i])
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("costmodel: batch item %d: %w", i, err)
		}
	}
	return out, nil
}
