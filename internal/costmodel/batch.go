package costmodel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// predictBatch fans predict over a worker pool sized by GOMAXPROCS and
// returns the results aligned with ins. It is the PredictBatch fallback
// for adapters whose models cannot fuse a batch into one forward pass
// (MSCN, E2E, ScaledCost); the zero-shot adapter executes batches as a
// single fused pass instead. The first error (by input index) aborts
// the batch. A context cancellation stops the pool promptly and reports
// ctx.Err() for every unfinished item: the first worker that observes
// the cancellation raises a shared stop flag so no later item starts
// predicting, and a final sweep marks the items no worker reached.
func predictBatch(ctx context.Context, ins []PlanInput, predict func(PlanInput) (float64, error)) ([]float64, error) {
	out, errs := runBatch(ctx, len(ins), runtime.GOMAXPROCS(0), func(_, i int) (float64, error) {
		return predict(ins[i])
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("costmodel: batch item %d: %w", i, err)
		}
	}
	return out, nil
}

// runBatch is the worker-pool core shared by predictBatch and the
// parallel cold-path graph encoder, split out with an explicit worker
// count so tests can pin the concurrency and assert the cancellation
// contract deterministically. fn receives its worker index (stable per
// goroutine, in [0, workers)) so callers can keep per-worker scratch —
// the cold encoder's per-worker arenas — without synchronization. It
// returns per-item results and errors (nil error means item i
// finished).
func runBatch[T any](ctx context.Context, n, workers int, fn func(worker, i int) (T, error)) ([]T, []error) {
	if n == 0 {
		return nil, nil
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	out := make([]T, n)
	errs := make([]error, n)
	done := make([]bool, n)
	var next atomic.Int64
	next.Store(-1)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if ctx.Err() != nil {
					stop.Store(true)
					return
				}
				out[i], errs[i] = fn(w, i)
				done[i] = true
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		for i := range errs {
			if !done[i] && errs[i] == nil {
				errs[i] = err
			}
		}
	}
	return out, errs
}
