package costmodel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// TestRunBatchCancelMidBatch is the cancellation regression test for
// the worker-pool fallback: two workers are parked inside predict calls
// when the context is cancelled, and from that point on (a) no further
// predict starts — the first worker to observe the cancellation raises
// the shared stop flag, and cancellation is visible to every later
// claim — and (b) every unfinished item reports ctx.Err(), including
// the items no worker ever claimed.
func TestRunBatchCancelMidBatch(t *testing.T) {
	const (
		n       = 8
		workers = 2
	)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int32
	var arrived atomic.Int32
	barrier := make(chan struct{})
	predict := func(_, i int) (float64, error) {
		calls.Add(1)
		// Both workers park here; the second to arrive cancels, so the
		// cancellation is strictly ordered before either worker's next
		// claim.
		if arrived.Add(1) == workers {
			cancel()
			close(barrier)
		} else {
			<-barrier
		}
		return float64(i) + 1, nil
	}
	out, errs := runBatch(ctx, n, workers, predict)
	if got := calls.Load(); got != workers {
		t.Fatalf("%d predicts ran, want %d — a predict started after cancellation", got, workers)
	}
	finished := 0
	for i := range errs {
		switch {
		case errs[i] == nil:
			if out[i] != float64(i)+1 {
				t.Fatalf("finished item %d = %v, want %v", i, out[i], float64(i)+1)
			}
			finished++
		case !errors.Is(errs[i], context.Canceled):
			t.Fatalf("unfinished item %d err = %v, want context.Canceled", i, errs[i])
		}
	}
	if finished != workers {
		t.Fatalf("%d items finished, want %d", finished, workers)
	}
}

// TestPredictBatchCancelledReportsContextError checks the public
// aggregation: a cancelled batch surfaces ctx.Err() (wrapped with the
// first unfinished index), never a partial result.
func TestPredictBatchCancelledReportsContextError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ins := make([]PlanInput, 4)
	var once atomic.Bool
	out, err := predictBatch(ctx, ins, func(PlanInput) (float64, error) {
		if once.CompareAndSwap(false, true) {
			cancel()
		}
		return 1, nil
	})
	if out != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch = (%v, %v), want (nil, context.Canceled)", out, err)
	}
}

// TestRunBatchFirstErrorByIndexWins checks a predict failure (not a
// cancellation) does not stop other items, and the aggregate error
// names the lowest failing index.
func TestRunBatchFirstErrorByIndexWins(t *testing.T) {
	boom := errors.New("boom")
	ins := make([]PlanInput, 6)
	_, err := predictBatch(context.Background(), ins, func(in PlanInput) (float64, error) {
		return 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if want := "costmodel: batch item 0: boom"; err.Error() != want {
		t.Fatalf("err = %q, want %q", err.Error(), want)
	}
}
