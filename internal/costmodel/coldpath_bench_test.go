package costmodel

import (
	"context"
	"testing"

	"github.com/zeroshot-db/zeroshot/internal/collect"
	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/nn"
)

// BenchmarkPredictBatchCold measures cold-batch throughput (every item
// encodes, nothing memoized) over 256 distinct plans: the serial
// reference (per-item Encode, then one fused pass) against the parallel
// cold path PredictBatch runs (memo scan → dedup → worker-pool encode
// into pooled arenas → pack → fused pass). Run with -cpu 1,2,4 to see
// the encode fan-out scale.
func BenchmarkPredictBatchCold(b *testing.B) {
	zs, f := fitZeroShot(b)
	const batch = 256
	recs, err := collect.Run(f.db, collect.Options{Queries: batch, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	ins := make([]PlanInput, len(recs))
	for i, s := range FromRecords(f.db, recs) {
		ins[i] = s.PlanInput
		ins[i].Enc = nil // keep every iteration fully cold
	}

	b.Run("serial", func(b *testing.B) {
		// The pre-parallel cold path: per-item heap encode on one core,
		// one single-threaded fused pass.
		defer nn.SetMaxWorkers(nn.SetMaxWorkers(1))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			graphs := make([]*encoding.Graph, len(ins))
			for j, in := range ins {
				g, err := zs.encode(in)
				if err != nil {
					b.Fatal(err)
				}
				graphs[j] = g
			}
			if got := zs.model.PredictBatch(graphs); len(got) != len(ins) {
				b.Fatal("short prediction batch")
			}
		}
		b.ReportMetric(float64(len(ins)*b.N)/b.Elapsed().Seconds(), "preds/s")
	})
	b.Run("parallel", func(b *testing.B) {
		ctx := context.Background()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := zs.PredictBatch(ctx, ins); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(ins)*b.N)/b.Elapsed().Seconds(), "preds/s")
	})
}
