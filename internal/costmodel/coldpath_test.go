package costmodel

import (
	"context"
	"strings"
	"sync"
	"testing"

	"github.com/zeroshot-db/zeroshot/internal/collect"
	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/schema"
	"github.com/zeroshot-db/zeroshot/internal/storage"
)

// fitZeroShot builds and fits a small zero-shot estimator on the shared
// fixture for the cold-path tests.
func fitZeroShot(t testing.TB) (*ZeroShot, fixture) {
	t.Helper()
	f := sharedFixture(t)
	est, err := New(NameZeroShot, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.Fit(context.Background(), f.train); err != nil {
		t.Fatal(err)
	}
	return est.(*ZeroShot), f
}

// TestColdBatchParallelEqualsSerial pins the parallel cold path bitwise
// against a serial encode of the same inputs: encode every item one at
// a time through the single-predict path, run the fused pass over those
// graphs, and require PredictBatch (memo→dedup→parallel encode→pack)
// to produce the identical float64s — cold, and again warm.
func TestColdBatchParallelEqualsSerial(t *testing.T) {
	zs, f := fitZeroShot(t)
	ctx := context.Background()

	ins := make([]PlanInput, len(f.eval))
	for i := range f.eval {
		ins[i] = f.eval[i].PlanInput
		ins[i].Enc = nil // fully cold, no memo
	}

	// Serial reference: per-item encode (the old cold path), one fused
	// forward pass.
	graphs := make([]*encoding.Graph, len(ins))
	for i, in := range ins {
		g, err := zs.encode(in)
		if err != nil {
			t.Fatal(err)
		}
		graphs[i] = g
	}
	want := zs.model.PredictBatch(graphs)

	got, err := zs.PredictBatch(ctx, ins)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("cold item %d: parallel %v != serial %v", i, got[i], want[i])
		}
	}

	// Memoized inputs take the warm path and must agree bitwise too.
	for i := range ins {
		ins[i].Enc = NewEncodedPlan()
	}
	for _, pass := range []string{"cold-into-memo", "warm"} {
		got, err := zs.PredictBatch(ctx, ins)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s item %d: %v != serial %v", pass, i, got[i], want[i])
			}
		}
	}
}

// TestColdBatchDedup pins the dedup stage: N cold items sharing one
// plan (and one memo) must encode exactly once — every item's memo
// entry is the SAME graph pointer, proving a single Encode produced the
// batch's graph — and the scan must report exactly one distinct shape.
func TestColdBatchDedup(t *testing.T) {
	zs, f := fitZeroShot(t)
	ctx := context.Background()

	const n = 64
	base := f.eval[0].PlanInput
	enc := zs.encoderFor(base.DB.Schema)

	// Each duplicate carries its OWN memo: if the batch encoded the
	// shape more than once, different memos would end up holding
	// different graph pointers.
	ins := make([]PlanInput, n)
	memos := make([]*EncodedPlan, n)
	for i := range ins {
		ins[i] = base
		memos[i] = NewEncodedPlan()
		ins[i].Enc = memos[i]
	}
	if _, err := zs.PredictBatch(ctx, ins); err != nil {
		t.Fatal(err)
	}
	g0, ok := memos[0].Lookup(enc)
	if !ok {
		t.Fatal("cold batch did not populate the memo")
	}
	for i, m := range memos {
		g, ok := m.Lookup(enc)
		if !ok {
			t.Fatalf("item %d memo not populated", i)
		}
		if g != g0 {
			t.Fatalf("item %d got a different graph than item 0 — shape encoded more than once", i)
		}
	}

	// The scan itself: one distinct shape carrying all n items, marked
	// escaping (memos hold it beyond the batch).
	for i := range ins {
		ins[i].Enc = NewEncodedPlan()
	}
	graphs, release, err := zs.encodeBatch(ctx, ins, false)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	for i := 1; i < n; i++ {
		if graphs[i] != graphs[0] {
			t.Fatalf("item %d graph differs from item 0 after dedup", i)
		}
	}
}

// TestColdBatchConcurrentSharedMemo hammers the parallel cold path from
// many goroutines over inputs sharing ONE memo (the serving plan-cache
// shape: concurrent cold batches racing to warm the same entry). Run
// under -race in CI; results must match the serial reference bitwise.
func TestColdBatchConcurrentSharedMemo(t *testing.T) {
	zs, f := fitZeroShot(t)
	ctx := context.Background()

	ins := make([]PlanInput, len(f.eval))
	for i := range f.eval {
		ins[i] = f.eval[i].PlanInput
		ins[i].Enc = nil
	}
	want, err := zs.PredictBatch(ctx, ins)
	if err != nil {
		t.Fatal(err)
	}

	// One shared memo per item, shared across every goroutine's batch.
	shared := make([]PlanInput, len(ins))
	copy(shared, ins)
	for i := range shared {
		shared[i].Enc = NewEncodedPlan()
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := zs.PredictBatch(ctx, shared)
			if err != nil {
				errCh <- err
				return
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("concurrent cold batch item %d: %v != %v", i, got[i], want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestColdBatchErrorNamesFirstItem pins the parallel path's error
// contract: the lowest failing input index is the one reported, even
// when the failure is discovered on a worker.
func TestColdBatchErrorNamesFirstItem(t *testing.T) {
	zs, f := fitZeroShot(t)
	ctx := context.Background()

	// An input whose plan references a table missing from its schema
	// fails inside Encode (not in the pre-scan validation).
	broken := f.eval[0].PlanInput
	broken.DB = storage.NewDatabase(&schema.Schema{Name: "empty"})
	broken.Enc = nil

	ins := []PlanInput{f.eval[1].PlanInput, broken, f.eval[2].PlanInput, broken}
	for i := range ins {
		ins[i].Enc = nil
	}
	_, err := zs.PredictBatch(ctx, ins)
	if err == nil {
		t.Fatal("batch with an unencodable input did not fail")
	}
	if want := "costmodel: batch item 1: "; !strings.HasPrefix(err.Error(), want) {
		t.Fatalf("err = %q, want prefix %q", err, want)
	}
}

// TestPredictBatchWarmAllocsPinned pins the warm path unchanged by the
// parallel cold machinery: an all-memoized batch must stay at a small
// constant allocation count — nothing per item, no dedup map, no
// arenas, no worker pool. A per-item regression would show up as ≥ one
// alloc per input (64 here).
func TestPredictBatchWarmAllocsPinned(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop items; alloc bounds only hold unraced")
	}
	zs, f := fitZeroShot(t)
	ctx := context.Background()

	n := len(f.eval)
	ins := make([]PlanInput, n)
	for i := range f.eval {
		ins[i] = f.eval[i].PlanInput
		ins[i].Enc = NewEncodedPlan()
	}
	// Warm every memo and the fused pass's pooled buffers.
	if _, err := zs.PredictBatch(ctx, ins); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := zs.PredictBatch(ctx, ins); err != nil {
			t.Fatal(err)
		}
	})
	// Steady-state warm batch: the graphs slice, the predictions slice,
	// and a few pooled-buffer slot headers — nothing proportional to
	// the batch. The bound is deliberately far below one alloc/item
	// (n = 30+) so any per-item regression trips it.
	if allocs > 16 {
		t.Fatalf("warm PredictBatch allocates %.0f/op over %d items — warm path no longer allocation-pinned", allocs, n)
	}
}

// TestZeroShotEncoderReattach is the encoder-leak regression test: two
// independently built copies of the SAME database (a re-attach/reload
// rebuilds *schema.Schema) must share one live encoder. Pointer-keyed
// caching stranded one encoder per reload, forever.
func TestZeroShotEncoderReattach(t *testing.T) {
	zs, _ := fitZeroShot(t)
	ctx := context.Background()

	cfg := datagen.DefaultConfig()
	cfg.MaxRows = 2000
	dbA, err := datagen.Generate("reattach", 23, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dbB, err := datagen.Generate("reattach", 23, cfg) // the "reload": same content, fresh pointers
	if err != nil {
		t.Fatal(err)
	}
	if dbA.Schema == dbB.Schema {
		t.Fatal("fixture broken: reload shares the schema pointer")
	}
	if dbA.Schema.Fingerprint() != dbB.Schema.Fingerprint() {
		t.Fatal("identical schemas disagree on fingerprint")
	}

	recs, err := collect.Run(dbA, collect.Options{Queries: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	before := zs.numEncoders()
	inA := PlanInput{DB: dbA, Query: recs[0].Query, Plan: recs[0].Plan}
	inB := inA
	inB.DB = dbB
	a, err := zs.Predict(ctx, inA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := zs.Predict(ctx, inB)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same plan on re-attached database predicts differently: %v != %v", a, b)
	}
	if got := zs.numEncoders(); got != before+1 {
		t.Fatalf("%d new encoders after attaching the same database twice, want 1", got-before)
	}
	if zs.encoderFor(dbA.Schema) != zs.encoderFor(dbB.Schema) {
		t.Fatal("re-attached database got a second encoder — stale encoders leak per reload")
	}
}
