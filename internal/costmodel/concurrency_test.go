package costmodel

import (
	"context"
	"math"
	"sync"
	"testing"
)

// TestConcurrentInference hammers Predict and PredictBatch from many
// goroutines on every adapter at once. Run under -race (CI does), this is
// the regression test for the goroutine-safety contract: inference after
// Fit must be safe from any number of goroutines, including the lazy
// featurization caches warming up concurrently.
func TestConcurrentInference(t *testing.T) {
	f := sharedFixture(t)
	ctx := context.Background()
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			est, err := New(name, smallOpts())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := est.Fit(ctx, f.train); err != nil {
				t.Fatal(err)
			}
			ins := Inputs(f.eval)
			// Reference predictions, computed serially.
			want := make([]float64, len(ins))
			for i, in := range ins {
				if want[i], err = est.Predict(ctx, in); err != nil {
					t.Fatal(err)
				}
			}

			const goroutines = 16
			var wg sync.WaitGroup
			errCh := make(chan error, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					// Half the goroutines hammer batches, half single
					// predictions, to interleave both paths.
					if g%2 == 0 {
						got, err := est.PredictBatch(ctx, ins)
						if err != nil {
							errCh <- err
							return
						}
						for i := range got {
							if math.Abs(got[i]-want[i]) > 1e-12 {
								t.Errorf("goroutine %d: batch[%d] = %v, want %v", g, i, got[i], want[i])
								return
							}
						}
					} else {
						for i := len(ins) - 1; i >= 0; i-- {
							got, err := est.Predict(ctx, ins[i])
							if err != nil {
								errCh <- err
								return
							}
							if math.Abs(got-want[i]) > 1e-12 {
								t.Errorf("goroutine %d: predict[%d] = %v, want %v", g, i, got, want[i])
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}
		})
	}
}
