// Package costmodel defines the one estimator contract every runtime
// predictor of this repository is served through — the paper's "one model
// to rule them all" claim, turned into an API.
//
// Before this package, the zero-shot model and the three workload-driven
// baselines each invented their own sample type, train/predict signatures
// and save/load story, and every experiment hand-wired all four. Now a
// single interface covers them:
//
//   - Estimator: Fit on []Sample, Predict one PlanInput, PredictBatch many
//     (the serving hot path: the batch is the first-class unit of
//     inference), Save to an io.Writer.
//   - Adapters whose models can fuse a batch into one forward pass do so
//     and advertise it through the optional BatchFuser capability: the
//     zero-shot adapter packs the whole batch into one super-graph and
//     runs a single tape-free pass. The rest (MSCN, E2E, ScaledCost)
//     fall back to the shared worker-pool fan-out sized by GOMAXPROCS.
//     Either way PredictBatch is bitwise-equal to a sequential Predict
//     loop over the same inputs.
//   - A registry keyed by model name makes saved models self-describing:
//     Load reads the header and reconstructs the right estimator without
//     the caller re-supplying a Config.
//   - Adapters own their featurization (transferable graph, MSCN sets,
//     E2E tree, optimizer cost), so callers deal only in PlanInput —
//     an executed-or-planned query with its database context.
//
// Inference is goroutine-safe on every adapter: after Fit (or Load),
// Predict and PredictBatch may be called from any number of goroutines
// concurrently. Fit and FineTune mutate the estimator and must not run
// concurrently with inference.
package costmodel

import (
	"context"
	"io"
	"time"

	"github.com/zeroshot-db/zeroshot/internal/collect"
	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/plan"
	"github.com/zeroshot-db/zeroshot/internal/query"
	"github.com/zeroshot-db/zeroshot/internal/storage"
)

// PlanInput is one featurizable prediction request: a query against a
// database, with its physical plan and the optimizer's cost estimate.
// Which parts an estimator reads is its own business — the zero-shot model
// encodes Plan against DB's schema, MSCN featurizes Query, E2E featurizes
// Plan with DB's one-hot vocabulary, and ScaledCost reads OptimizerCost.
type PlanInput struct {
	// DB is the database the query runs on; adapters derive (and cache)
	// schema statistics and vocabularies from it.
	DB *storage.Database
	// Query is the logical query (required by MSCN).
	Query *query.Query
	// Plan is the physical plan. Estimators trained with exact
	// cardinalities need an executed plan (TrueRows filled); estimators
	// trained with estimated cardinalities work on optimizer output alone.
	Plan *plan.Node
	// OptimizerCost is the analytical total cost estimate (required by
	// ScaledCost).
	OptimizerCost float64
	// Enc optionally memoizes this plan's graph encodings per encoder.
	// Callers that retain inputs (plan caches, what-if sweeps) attach one
	// so repeated predictions of the same shape skip re-encoding; nil
	// disables memoization. The pointer is shared by every value copy of
	// the PlanInput, so a hit anywhere warms all holders.
	Enc *EncodedPlan
}

// Sample is one training example: a PlanInput and its measured runtime.
type Sample struct {
	PlanInput
	RuntimeSec float64
}

// FromRecord converts one collected execution record into a Sample.
func FromRecord(db *storage.Database, r collect.Record) Sample {
	return Sample{
		PlanInput: PlanInput{
			DB:            db,
			Query:         r.Query,
			Plan:          r.Plan,
			OptimizerCost: r.OptimizerCost,
		},
		RuntimeSec: r.RuntimeSec,
	}
}

// FromRecords converts a collected record slice into Samples.
func FromRecords(db *storage.Database, recs []collect.Record) []Sample {
	out := make([]Sample, len(recs))
	for i, r := range recs {
		out[i] = FromRecord(db, r)
	}
	return out
}

// Inputs strips the runtime targets off a sample slice.
func Inputs(samples []Sample) []PlanInput {
	out := make([]PlanInput, len(samples))
	for i, s := range samples {
		out[i] = s.PlanInput
	}
	return out
}

// FitReport summarizes a completed Fit.
type FitReport struct {
	// Samples is the number of training examples consumed.
	Samples int
	// EpochLoss is the per-epoch mean training loss for iterative
	// estimators (nil for closed-form fits such as ScaledCost).
	EpochLoss []float64
	// WallTime is the wall-clock duration of the training run, when the
	// estimator reports it (zero otherwise).
	WallTime time.Duration
	// SamplesPerSec is the end-to-end training throughput (samples x
	// epochs / WallTime), when the estimator reports it.
	SamplesPerSec float64
}

// Estimator is the one contract every runtime predictor implements.
type Estimator interface {
	// Name returns the registry name the estimator was registered under.
	Name() string
	// Fit trains the estimator on the samples. Fit must not run
	// concurrently with inference.
	Fit(ctx context.Context, samples []Sample) (*FitReport, error)
	// Predict returns the predicted runtime in seconds for one input.
	// Safe for concurrent use after Fit or Load.
	Predict(ctx context.Context, in PlanInput) (float64, error)
	// PredictBatch predicts many inputs as one batch — a single fused
	// forward pass when the adapter supports it (see BatchFuser), a
	// GOMAXPROCS worker-pool fan-out otherwise. Results align with the
	// input slice and are bitwise-equal to calling Predict per input.
	// Safe for concurrent use after Fit or Load.
	PredictBatch(ctx context.Context, ins []PlanInput) ([]float64, error)
	// Save writes the estimator's payload to w. Use the package-level
	// Save to produce a self-describing file that Load can reconstruct.
	Save(w io.Writer) error
}

// FineTuner is the optional capability of estimators that can continue
// training on samples from a new database — the paper's few-shot mode.
type FineTuner interface {
	FineTune(ctx context.Context, samples []Sample, epochs int, lr float64) (*FitReport, error)
}

// BatchFuser is the optional capability of estimators whose
// PredictBatch executes the whole batch as one fused forward pass
// (shared buffers, no per-item tape or goroutine) rather than fanning
// out per-item predictions over a worker pool.
type BatchFuser interface {
	FusesBatches() bool
}

// Fused reports whether est's PredictBatch runs as one fused pass.
func Fused(est Estimator) bool {
	f, ok := est.(BatchFuser)
	return ok && f.FusesBatches()
}

// EncodeWarmer is the optional capability of estimators that can
// pre-populate a PlanInput's encoded-graph memo ahead of inference.
// The serving pipeline uses it when a request is trace-sampled: warming
// the memo under an explicit "encode" span attributes graph encoding
// separately from the forward pass without changing what the later
// prediction computes — the memo guarantees the graph is built exactly
// once either way.
type EncodeWarmer interface {
	WarmEncode(in PlanInput) error
}

// Cloner is the optional capability of estimators that can produce a
// deep, independently trainable copy of themselves. The online
// adaptation subsystem depends on it: Fit and FineTune must not run
// concurrently with inference, so background fine-tuning clones the
// serving generation, trains the clone, and hot-swaps it in — the
// attached estimator is never mutated while it predicts.
type Cloner interface {
	Clone() (Estimator, error)
}

// Options sizes a fresh estimator from the registry. Each adapter reads
// the fields it understands and ignores the rest; zero values select the
// adapter's defaults.
type Options struct {
	// Hidden, Epochs, BatchSize, LR and Seed are the shared neural
	// hyperparameters (zeroshot, mscn, e2e).
	Hidden    int
	Epochs    int
	BatchSize int
	LR        float64
	Seed      int64
	// HuberDelta is the robust-loss threshold (zeroshot).
	HuberDelta float64
	// Card selects the cardinality annotation of the transferable graph
	// encoding (zeroshot).
	Card encoding.CardSource
	// FlatSum disables message passing — ablation A2 (zeroshot).
	FlatSum bool
}

// overrideNeural applies the shared neural hyperparameters onto an
// adapter's default config fields; zero values keep the defaults.
func (o Options) overrideNeural(hidden, epochs, batchSize *int, lr *float64, seed *int64) {
	if o.Hidden > 0 {
		*hidden = o.Hidden
	}
	if o.Epochs > 0 {
		*epochs = o.Epochs
	}
	if o.BatchSize > 0 {
		*batchSize = o.BatchSize
	}
	if o.LR > 0 {
		*lr = o.LR
	}
	if o.Seed != 0 {
		*seed = o.Seed
	}
}
