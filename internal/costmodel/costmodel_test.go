package costmodel

import (
	"bytes"
	"context"
	"math"
	"sync"
	"testing"

	"github.com/zeroshot-db/zeroshot/internal/collect"
	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/storage"
)

// fixture is the shared tiny training/eval corpus for the adapter tests:
// one small database with collected executions split into train and eval.
type fixture struct {
	db    *storage.Database
	train []Sample
	eval  []Sample
}

var (
	fixOnce sync.Once
	fix     fixture
	fixErr  error
)

func sharedFixture(t testing.TB) fixture {
	t.Helper()
	fixOnce.Do(func() {
		cfg := datagen.DefaultConfig()
		cfg.MaxRows = 6000
		db, err := datagen.Generate("cmtest", 11, cfg)
		if err != nil {
			fixErr = err
			return
		}
		recs, err := collect.Run(db, collect.Options{Queries: 120, Seed: 3})
		if err != nil {
			fixErr = err
			return
		}
		samples := FromRecords(db, recs)
		fix = fixture{db: db, train: samples[:90], eval: samples[90:]}
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fix
}

// smallOpts keeps neural adapters in test-time budgets.
func smallOpts() Options {
	return Options{Hidden: 16, Epochs: 4, Seed: 1, Card: encoding.CardExact}
}

func TestNamesListsAllBuiltins(t *testing.T) {
	names := Names()
	want := []string{NameE2E, NameMSCN, NameScaledCost, NameZeroShot}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
}

func TestNewUnknownEstimator(t *testing.T) {
	if _, err := New("no-such-model", Options{}); err == nil {
		t.Fatal("New accepted an unknown name")
	}
}

// TestAllEstimatorsFitPredictRoundTrip drives the whole contract for every
// registered estimator: construct by name, Fit, Predict, PredictBatch
// (equal to serial predictions), then Save/Load through the registry and
// check the reconstructed estimator predicts identically.
func TestAllEstimatorsFitPredictRoundTrip(t *testing.T) {
	f := sharedFixture(t)
	ctx := context.Background()
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			est, err := New(name, smallOpts())
			if err != nil {
				t.Fatal(err)
			}
			if est.Name() != name {
				t.Fatalf("Name() = %q, want %q", est.Name(), name)
			}
			report, err := est.Fit(ctx, f.train)
			if err != nil {
				t.Fatal(err)
			}
			if report.Samples != len(f.train) {
				t.Fatalf("report.Samples = %d, want %d", report.Samples, len(f.train))
			}
			ins := Inputs(f.eval)
			batch, err := est.PredictBatch(ctx, ins)
			if err != nil {
				t.Fatal(err)
			}
			if len(batch) != len(ins) {
				t.Fatalf("batch returned %d predictions for %d inputs", len(batch), len(ins))
			}
			for i, in := range ins {
				p, err := est.Predict(ctx, in)
				if err != nil {
					t.Fatal(err)
				}
				if p <= 0 || math.IsNaN(p) || math.IsInf(p, 0) {
					t.Fatalf("prediction %d not a positive runtime: %v", i, p)
				}
				if p != batch[i] {
					t.Fatalf("batch[%d] = %v differs from serial predict %v", i, batch[i], p)
				}
			}

			var buf bytes.Buffer
			if err := Save(&buf, est); err != nil {
				t.Fatal(err)
			}
			loaded, err := Load(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if loaded.Name() != name {
				t.Fatalf("loaded Name() = %q, want %q", loaded.Name(), name)
			}
			reBatch, err := loaded.PredictBatch(ctx, ins)
			if err != nil {
				t.Fatal(err)
			}
			for i := range batch {
				if math.Abs(reBatch[i]-batch[i]) > 1e-12 {
					t.Fatalf("loaded model diverges at %d: %v vs %v", i, reBatch[i], batch[i])
				}
			}
		})
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("Load accepted garbage")
	}
	var buf bytes.Buffer
	buf.WriteString("\x00\x00\x00")
	if _, err := Load(&buf); err == nil {
		t.Fatal("Load accepted truncated input")
	}
}

func TestPredictValidatesInputs(t *testing.T) {
	f := sharedFixture(t)
	ctx := context.Background()
	zs, err := New(NameZeroShot, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := zs.Predict(ctx, PlanInput{}); err == nil {
		t.Fatal("zeroshot accepted an empty input")
	}
	mscn, err := New(NameMSCN, Options{Hidden: 8, Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mscn.Predict(ctx, PlanInput{DB: f.db}); err == nil {
		t.Fatal("mscn accepted an input without a query")
	}
	sc, err := New(NameScaledCost, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Fit(ctx, []Sample{{PlanInput: PlanInput{OptimizerCost: 0}, RuntimeSec: 1}}); err == nil {
		t.Fatal("scaledcost accepted a zero-cost sample")
	}
}

func TestPredictBatchEmptyAndCancelled(t *testing.T) {
	f := sharedFixture(t)
	sc, err := New(NameScaledCost, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Fit(context.Background(), f.train); err != nil {
		t.Fatal(err)
	}
	out, err := sc.PredictBatch(context.Background(), nil)
	if err != nil || out != nil {
		t.Fatalf("empty batch = (%v, %v), want (nil, nil)", out, err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sc.PredictBatch(cancelled, Inputs(f.eval)); err == nil {
		t.Fatal("PredictBatch ignored a cancelled context")
	}
}

// TestFineTuneCapability checks the optional FineTuner interface: only the
// zero-shot adapter supports the paper's few-shot mode, and fine-tuning on
// a new database's samples runs through the same Sample type.
func TestFineTuneCapability(t *testing.T) {
	f := sharedFixture(t)
	ctx := context.Background()
	zs, err := New(NameZeroShot, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	ft, ok := zs.(FineTuner)
	if !ok {
		t.Fatal("zeroshot does not implement FineTuner")
	}
	if _, err := zs.Fit(ctx, f.train); err != nil {
		t.Fatal(err)
	}
	if _, err := ft.FineTune(ctx, f.eval, 2, 0); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{NameMSCN, NameE2E, NameScaledCost} {
		est, err := New(name, smallOpts())
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := est.(FineTuner); ok {
			t.Fatalf("%s unexpectedly implements FineTuner", name)
		}
	}
}

// TestCloneCapability checks the optional Cloner interface the adaptation
// subsystem depends on: the clone predicts identically to the original,
// and fine-tuning the clone never moves the original's predictions —
// that independence is what makes background fine-tuning safe while the
// original keeps serving.
func TestCloneCapability(t *testing.T) {
	f := sharedFixture(t)
	ctx := context.Background()
	zs, err := New(NameZeroShot, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := zs.Fit(ctx, f.train); err != nil {
		t.Fatal(err)
	}
	cloner, ok := zs.(Cloner)
	if !ok {
		t.Fatal("zeroshot does not implement Cloner")
	}
	clone, err := cloner.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if clone.Name() != zs.Name() {
		t.Fatalf("clone name %q, want %q", clone.Name(), zs.Name())
	}
	if zsClone, ok := clone.(*ZeroShot); !ok || zsClone.Card() != zs.(*ZeroShot).Card() {
		t.Fatalf("clone lost the cardinality source")
	}
	in := f.eval[0].PlanInput
	before, err := zs.Predict(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	clonePred, err := clone.Predict(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(before-clonePred) > 1e-12 {
		t.Fatalf("clone predicts %v, original %v", clonePred, before)
	}
	if _, err := clone.(FineTuner).FineTune(ctx, f.eval, 3, 0.01); err != nil {
		t.Fatal(err)
	}
	after, err := zs.Predict(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Fatalf("fine-tuning the clone moved the original: %v -> %v", before, after)
	}
	tuned, err := clone.Predict(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	if tuned == clonePred {
		t.Fatal("fine-tuning did not change the clone's prediction (suspicious for a shared-weights bug)")
	}
}
