package costmodel

import (
	"context"
	"fmt"
	"io"

	"github.com/zeroshot-db/zeroshot/internal/baselines"
	"github.com/zeroshot-db/zeroshot/internal/encoding"
)

func init() {
	Register(NameE2E, Factory{
		New: func(opts Options) (Estimator, error) {
			cfg := baselines.DefaultE2EConfig()
			opts.overrideNeural(&cfg.Hidden, &cfg.Epochs, &cfg.BatchSize, &cfg.LR, &cfg.Seed)
			return &E2E{model: baselines.NewE2E(cfg)}, nil
		},
		Load: func(r io.Reader) (Estimator, error) {
			m, err := baselines.LoadE2E(r)
			if err != nil {
				return nil, err
			}
			return &E2E{model: m}, nil
		},
	})
}

// E2E adapts the tree-structured plan baseline (Sun & Li). It owns the
// one-hot plan featurization: each input's Plan is featurized with the
// input database's vocabulary and statistics (cached per database). When
// fit on samples from several databases, every sample uses its own
// database's vocabulary — the "mechanical" cross-database application of
// ablation A1.
type E2E struct {
	model *baselines.E2E
	feats featCache
}

// Name implements Estimator.
func (m *E2E) Name() string { return NameE2E }

func (m *E2E) featurize(in PlanInput) (*encoding.E2ENode, error) {
	if in.DB == nil || in.Plan == nil {
		return nil, fmt.Errorf("e2e estimator needs DB and Plan inputs")
	}
	vocab, st := m.feats.get(in.DB)
	return encoding.NewE2EFeaturizer(vocab, st).Featurize(in.Plan), nil
}

// Fit implements Estimator.
func (m *E2E) Fit(ctx context.Context, samples []Sample) (*FitReport, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	es := make([]baselines.E2ESample, len(samples))
	for i, s := range samples {
		root, err := m.featurize(s.PlanInput)
		if err != nil {
			return nil, fmt.Errorf("sample %d: %w", i, err)
		}
		es[i] = baselines.E2ESample{Root: root, RuntimeSec: s.RuntimeSec}
	}
	if err := m.model.Train(es); err != nil {
		return nil, err
	}
	return &FitReport{Samples: len(es)}, nil
}

// Predict implements Estimator.
func (m *E2E) Predict(ctx context.Context, in PlanInput) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	root, err := m.featurize(in)
	if err != nil {
		return 0, err
	}
	return m.model.Predict(root), nil
}

// PredictBatch implements Estimator.
func (m *E2E) PredictBatch(ctx context.Context, ins []PlanInput) ([]float64, error) {
	return predictBatch(ctx, ins, func(in PlanInput) (float64, error) {
		root, err := m.featurize(in)
		if err != nil {
			return 0, err
		}
		return m.model.Predict(root), nil
	})
}

// Save implements Estimator.
func (m *E2E) Save(w io.Writer) error { return m.model.Save(w) }
