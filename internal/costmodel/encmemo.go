package costmodel

import (
	"sync"

	"github.com/zeroshot-db/zeroshot/internal/encoding"
)

// EncodedPlan memoizes the graph encodings of one physical plan, keyed by
// the encoder that produced them. It rides along inside a PlanInput: the
// serving pipeline attaches one to every input it retains in a plan
// cache, so a repeated query shape pays PlanEncoder.Encode once and every
// later prediction — single, batched, or fused — reuses the graph. The
// key is the encoder pointer, not the schema: two estimators with
// different cardinality sources encode the same plan differently and
// must not share entries.
//
// Entries live exactly as long as the PlanInput that carries them (plan
// caches are bounded LRUs), so the memo needs no eviction of its own.
// Graphs are treated as immutable by every consumer — the fused batch
// packer and the tape forward both only read them — which is what makes
// sharing one graph across concurrent predictions safe.
type EncodedPlan struct {
	mu     sync.Mutex
	graphs map[*encoding.PlanEncoder]*encoding.Graph
}

// NewEncodedPlan returns an empty memo ready to attach to a PlanInput.
func NewEncodedPlan() *EncodedPlan { return &EncodedPlan{} }

// Lookup returns the memoized graph for the encoder, if present.
func (m *EncodedPlan) Lookup(enc *encoding.PlanEncoder) (*encoding.Graph, bool) {
	if m == nil {
		return nil, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.graphs[enc]
	return g, ok
}

// Store records the encoder's graph for the plan. Concurrent stores for
// the same encoder are benign: both graphs encode the same plan, and
// last-write-wins keeps exactly one alive.
func (m *EncodedPlan) Store(enc *encoding.PlanEncoder, g *encoding.Graph) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.graphs == nil {
		m.graphs = map[*encoding.PlanEncoder]*encoding.Graph{}
	}
	m.graphs[enc] = g
}
