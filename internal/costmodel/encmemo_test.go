package costmodel

import (
	"context"
	"testing"

	"github.com/zeroshot-db/zeroshot/internal/encoding"
)

// TestEncodedPlanMemo pins the encoded-graph reuse contract: a PlanInput
// carrying an EncodedPlan memo is encoded exactly once per encoder, and
// estimators with different cardinality sources never share an entry.
func TestEncodedPlanMemo(t *testing.T) {
	f := sharedFixture(t)
	est, err := New(NameZeroShot, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	zs := est.(*ZeroShot)

	in := f.train[0].PlanInput
	in.Enc = NewEncodedPlan()

	g1, err := zs.encode(in)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := zs.encode(in)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Fatal("memoized input re-encoded: second encode returned a new graph")
	}

	// Without a memo every encode builds a fresh graph.
	bare := in
	bare.Enc = nil
	b1, err := zs.encode(bare)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := zs.encode(bare)
	if err != nil {
		t.Fatal(err)
	}
	if b1 == b2 {
		t.Fatal("memo-less encodes unexpectedly shared a graph")
	}

	// A second estimator with a different cardinality source keys its own
	// entry in the same memo: the graphs differ, and each is stable.
	other, err := New(NameZeroShot, Options{Hidden: 16, Epochs: 4, Seed: 1, Card: encoding.CardEstimated})
	if err != nil {
		t.Fatal(err)
	}
	o1, err := other.(*ZeroShot).encode(in)
	if err != nil {
		t.Fatal(err)
	}
	if o1 == g1 {
		t.Fatal("estimators with different cardinality sources shared a graph")
	}
	o2, err := other.(*ZeroShot).encode(in)
	if err != nil {
		t.Fatal(err)
	}
	if o1 != o2 {
		t.Fatal("second estimator's memo entry is not stable")
	}

	// Nil memos are inert, not panics.
	var nilMemo *EncodedPlan
	if _, ok := nilMemo.Lookup(nil); ok {
		t.Fatal("nil memo claims a hit")
	}
	nilMemo.Store(nil, g1)
}

// TestEncodedPlanMemoAllocs pins the hot-path payoff: a steady-state
// prediction over a memoized input skips graph encoding entirely, so it
// must allocate strictly less than one that encodes every time.
func TestEncodedPlanMemoAllocs(t *testing.T) {
	f := sharedFixture(t)
	est, err := New(NameZeroShot, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	warmIn := f.eval[0].PlanInput
	warmIn.Enc = NewEncodedPlan()
	if _, err := est.Predict(ctx, warmIn); err != nil {
		t.Fatal(err)
	}
	warm := testing.AllocsPerRun(50, func() {
		if _, err := est.Predict(ctx, warmIn); err != nil {
			t.Fatal(err)
		}
	})

	coldIn := f.eval[0].PlanInput
	cold := testing.AllocsPerRun(50, func() {
		coldIn.Enc = NewEncodedPlan()
		if _, err := est.Predict(ctx, coldIn); err != nil {
			t.Fatal(err)
		}
	})

	if warm >= cold {
		t.Fatalf("memoized predict allocates %.0f/op, fresh-encode predict %.0f/op — graph reuse is not engaged", warm, cold)
	}
}
