package costmodel

import (
	"sync"

	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/stats"
	"github.com/zeroshot-db/zeroshot/internal/storage"
)

// featEntry lazily materializes the per-database featurization context the
// one-hot baselines need: the database's vocabulary and its statistics.
type featEntry struct {
	once  sync.Once
	vocab *encoding.Vocab
	st    *stats.DBStats
}

// featCache caches featurization contexts per database so that concurrent
// PredictBatch calls collect statistics at most once per database. Keys
// are database pointers: the experiment harness and the serving layer both
// hold databases for the lifetime of the estimator.
type featCache struct {
	m sync.Map // *storage.Database -> *featEntry
}

// get returns the (possibly freshly built) context for db.
func (c *featCache) get(db *storage.Database) (*encoding.Vocab, *stats.DBStats) {
	e, _ := c.m.LoadOrStore(db, &featEntry{})
	en := e.(*featEntry)
	en.once.Do(func() {
		en.vocab = encoding.NewVocab(db.Schema)
		en.st = stats.Collect(db, stats.DefaultBuckets, stats.DefaultMCVs)
	})
	return en.vocab, en.st
}
