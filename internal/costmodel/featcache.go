package costmodel

import (
	"container/list"
	"strings"
	"sync"

	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/stats"
	"github.com/zeroshot-db/zeroshot/internal/storage"
)

// featEntry lazily materializes the per-database featurization context the
// one-hot baselines need: the database's vocabulary and its statistics.
type featEntry struct {
	once  sync.Once
	vocab *encoding.Vocab
	st    *stats.DBStats
}

// featCache caches featurization contexts per database so that concurrent
// PredictBatch calls collect statistics at most once per database. Keys
// are database pointers: the experiment harness and the serving layer both
// hold databases for the lifetime of the estimator.
type featCache struct {
	m sync.Map // *storage.Database -> *featEntry
}

// get returns the (possibly freshly built) context for db.
func (c *featCache) get(db *storage.Database) (*encoding.Vocab, *stats.DBStats) {
	e, _ := c.m.LoadOrStore(db, &featEntry{})
	en := e.(*featEntry)
	en.once.Do(func() {
		en.vocab = encoding.NewVocab(db.Schema)
		en.st = stats.Collect(db, stats.DefaultBuckets, stats.DefaultMCVs)
	})
	return en.vocab, en.st
}

// sqlKeywords are the words Fingerprint case-normalizes (the SQL subset
// this repository parses plus the usual neighbors, so harmless
// reformattings of future grammar share entries too). Lowercase keys.
var sqlKeywords = map[string]bool{
	"select": true, "distinct": true, "from": true, "where": true,
	"and": true, "or": true, "not": true, "in": true, "between": true,
	"like": true, "as": true, "on": true, "join": true, "inner": true,
	"left": true, "right": true, "outer": true, "group": true, "by": true,
	"having": true, "order": true, "asc": true, "desc": true, "limit": true,
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
	"null": true, "is": true,
}

// Fingerprint canonicalizes one SQL text into a plan-cache key: outside
// string literals it collapses whitespace runs to single spaces, trims
// the ends, and uppercases SQL keywords — so reformattings and
// keyword-case variants (`SELECT …` vs `select …`) of the same statement
// share a cache entry. Everything else is preserved: identifiers keep
// their case (the parser lowercases them itself, so distinct statements
// stay distinct), and quoted literals are copied verbatim — whitespace
// included — because cached plans embed literal-dependent selectivity
// and cost estimates, so `'a b'` and `'a  b'` (or `'abc'` and `'ABC'`)
// must never collide.
func Fingerprint(sql string) string {
	var b strings.Builder
	b.Grow(len(sql))
	// A whitespace run becomes one pending space, written only when a
	// further token follows (and only after the first token): leading
	// and trailing runs vanish without any post-hoc trimming, which
	// must not exist — a final TrimSuffix used to eat a space that was
	// literal *content* when the input ended inside an unterminated
	// literal, breaking Fingerprint(Fingerprint(x)) == Fingerprint(x)
	// (found by fuzzing).
	pendingSpace := false
	writePending := func() {
		if pendingSpace {
			if b.Len() > 0 {
				b.WriteByte(' ')
			}
			pendingSpace = false
		}
	}
	for i := 0; i < len(sql); {
		c := sql[i]
		switch {
		case c == '\'':
			// String literal: copy through the closing quote untouched.
			writePending()
			j := i + 1
			for j < len(sql) && sql[j] != '\'' {
				j++
			}
			if j < len(sql) {
				j++
			}
			b.WriteString(sql[i:j])
			i = j
		case isSpaceByte(c):
			for i < len(sql) && isSpaceByte(sql[i]) {
				i++
			}
			pendingSpace = true
		case isWordByte(c):
			writePending()
			j := i
			for j < len(sql) && isWordByte(sql[j]) {
				j++
			}
			word := sql[i:j]
			if sqlKeywords[strings.ToLower(word)] {
				b.WriteString(strings.ToUpper(word))
			} else {
				b.WriteString(word)
			}
			i = j
		default:
			writePending()
			b.WriteByte(c)
			i++
		}
	}
	return b.String()
}

// isWordByte reports whether b can be part of a SQL word (keyword or
// identifier).
func isWordByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9' || b == '_'
}

// isSpaceByte matches the whitespace strings.Fields would split on.
func isSpaceByte(b byte) bool {
	return b == ' ' || b == '\t' || b == '\n' || b == '\r' || b == '\v' || b == '\f'
}

// PlanCacheStats is a point-in-time view of one PlanCache.
type PlanCacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Size      int   `json:"size"`
	Capacity  int   `json:"capacity"`
}

// planCacheEntry is one cached prepared input keyed by its fingerprint.
type planCacheEntry struct {
	fp string
	in PlanInput
}

// PlanCache is a bounded LRU of prepared prediction inputs keyed by SQL
// fingerprint. It is the serving layer's complement to featCache: where
// featCache memoizes per-*database* featurization context inside the
// adapters, PlanCache memoizes the per-*statement* parse→optimize work
// (the PlanInput) so repeated query shapes skip straight to prediction.
// One PlanCache serves one database; cached PlanInputs carry that
// database's pointer and must not outlive it. Safe for concurrent use.
type PlanCache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List               // front = most recently used
	entries   map[string]*list.Element // fingerprint -> *planCacheEntry
	hits      int64
	misses    int64
	evictions int64
}

// DefaultPlanCacheSize bounds a PlanCache when the caller passes a
// non-positive capacity.
const DefaultPlanCacheSize = 4096

// NewPlanCache returns an empty cache holding at most capacity entries
// (DefaultPlanCacheSize if capacity <= 0).
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		capacity = DefaultPlanCacheSize
	}
	return &PlanCache{
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached input for a fingerprint, marking it most
// recently used.
func (c *PlanCache) Get(fp string) (PlanInput, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[fp]
	if !ok {
		c.misses++
		return PlanInput{}, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*planCacheEntry).in, true
}

// Peek returns the cached input for a fingerprint without promoting it
// in the LRU order or touching the hit/miss counters. The feedback path
// of the adaptation subsystem joins observed runtimes against retained
// plans this way — a feedback lookup is bookkeeping, not traffic, and
// must not distort the cache's stats or eviction behavior.
func (c *PlanCache) Peek(fp string) (PlanInput, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[fp]
	if !ok {
		return PlanInput{}, false
	}
	return el.Value.(*planCacheEntry).in, true
}

// Put inserts (or refreshes) the input under a fingerprint, evicting the
// least recently used entry when full.
func (c *PlanCache) Put(fp string, in PlanInput) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[fp]; ok {
		el.Value.(*planCacheEntry).in = in
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*planCacheEntry).fp)
		c.evictions++
	}
	c.entries[fp] = c.ll.PushFront(&planCacheEntry{fp: fp, in: in})
}

// Stats reports the cache's lifetime hit/miss/eviction counts and its
// current occupancy.
func (c *PlanCache) Stats() PlanCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return PlanCacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Size:      c.ll.Len(),
		Capacity:  c.cap,
	}
}
