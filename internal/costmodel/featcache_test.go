package costmodel

import (
	"fmt"
	"sync"
	"testing"
)

func TestFingerprint(t *testing.T) {
	tests := []struct {
		name string
		a, b string
		same bool
	}{
		{
			name: "whitespace reformatting collapses",
			a:    "SELECT COUNT(*)   FROM title\n\tWHERE production_year > 50",
			b:    "  SELECT COUNT(*) FROM title WHERE production_year > 50 ",
			same: true,
		},
		{
			// Different literals must not collide: cached plans embed
			// literal-dependent cost estimates.
			name: "different numeric literals stay distinct",
			a:    "SELECT COUNT(*) FROM title WHERE production_year > 50",
			b:    "SELECT COUNT(*) FROM title WHERE production_year > 51",
			same: false,
		},
		{
			name: "keyword case normalizes",
			a:    "select count(*) from title where production_year > 50",
			b:    "SELECT COUNT(*) FROM title WHERE production_year > 50",
			same: true,
		},
		{
			name: "mixed keyword case normalizes",
			a:    "Select Count(*) From title Where production_year > 50 And id < 9",
			b:    "SELECT COUNT(*) FROM title WHERE production_year > 50 AND id < 9",
			same: true,
		},
		{
			name: "identifier case is preserved",
			a:    "SELECT COUNT(*) FROM Title",
			b:    "SELECT COUNT(*) FROM title",
			same: false,
		},
		{
			// A keyword inside a quoted literal is data, not syntax:
			// its case must survive so distinct literals never share a
			// cached plan.
			name: "quoted literal stays case-sensitive",
			a:    "SELECT COUNT(*) FROM title WHERE kind = 'select'",
			b:    "SELECT COUNT(*) FROM title WHERE kind = 'SELECT'",
			same: false,
		},
		{
			name: "keyword case outside literal still normalizes around quotes",
			a:    "select count(*) from title where kind = 'Movie'",
			b:    "SELECT COUNT(*) FROM title WHERE kind = 'Movie'",
			same: true,
		},
		{
			// Whitespace collapsing must also stop at the quote: two
			// literals differing only in internal spacing are different
			// values.
			name: "whitespace inside literal is preserved",
			a:    "SELECT COUNT(*) FROM title WHERE kind = 'a  b'",
			b:    "SELECT COUNT(*) FROM title WHERE kind = 'a b'",
			same: false,
		},
		{
			name: "whitespace around literal still collapses",
			a:    "SELECT COUNT(*) FROM title  WHERE kind =  'a b'  ",
			b:    "SELECT COUNT(*) FROM title WHERE kind = 'a b'",
			same: true,
		},
		{
			name: "unterminated literal is copied verbatim",
			a:    "SELECT COUNT(*) FROM title WHERE kind = 'sel",
			b:    "SELECT COUNT(*) FROM title WHERE kind = 'SEL",
			same: false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			fa, fb := Fingerprint(tt.a), Fingerprint(tt.b)
			if tt.same && fa != fb {
				t.Fatalf("fingerprints differ:\n%q\n%q", fa, fb)
			}
			if !tt.same && fa == fb {
				t.Fatalf("fingerprints collide: %q", fa)
			}
		})
	}
}

func TestPlanCacheLRU(t *testing.T) {
	c := NewPlanCache(2)
	in := func(cost float64) PlanInput { return PlanInput{OptimizerCost: cost} }

	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", in(1))
	c.Put("b", in(2))
	if got, ok := c.Get("a"); !ok || got.OptimizerCost != 1 {
		t.Fatalf("a = %+v ok=%v", got, ok)
	}
	// a is now most recent; inserting c evicts b.
	c.Put("c", in(3))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a (recently used) was evicted")
	}
	st := c.Stats()
	if st.Size != 2 || st.Capacity != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 2 hits / 2 misses", st)
	}

	// Refreshing an existing key must not grow the cache.
	c.Put("a", in(10))
	if got, _ := c.Get("a"); got.OptimizerCost != 10 {
		t.Fatalf("refresh lost: %+v", got)
	}
	if st := c.Stats(); st.Size != 2 {
		t.Fatalf("refresh grew cache: %+v", st)
	}
}

// TestPlanCachePeek checks Peek neither promotes an entry nor counts as
// traffic — the feedback join must be invisible to cache stats and LRU
// eviction order.
func TestPlanCachePeek(t *testing.T) {
	c := NewPlanCache(2)
	c.Put("a", PlanInput{OptimizerCost: 1})
	c.Put("b", PlanInput{OptimizerCost: 2})
	if in, ok := c.Peek("a"); !ok || in.OptimizerCost != 1 {
		t.Fatalf("peek a = %+v ok=%v", in, ok)
	}
	if _, ok := c.Peek("missing"); ok {
		t.Fatal("peek hit a missing entry")
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("peek counted as traffic: %+v", st)
	}
	// a was peeked but not promoted: inserting c must evict a (the LRU),
	// not b.
	c.Put("c", PlanInput{OptimizerCost: 3})
	if _, ok := c.Peek("a"); ok {
		t.Fatal("peek promoted entry a in LRU order")
	}
	if _, ok := c.Peek("b"); !ok {
		t.Fatal("b evicted instead of un-promoted a")
	}
}

func TestPlanCacheDefaultCapacity(t *testing.T) {
	if st := NewPlanCache(0).Stats(); st.Capacity != DefaultPlanCacheSize {
		t.Fatalf("capacity = %d, want %d", st.Capacity, DefaultPlanCacheSize)
	}
}

func TestPlanCacheConcurrent(t *testing.T) {
	c := NewPlanCache(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				fp := fmt.Sprintf("q%d", (g*300+i)%100)
				if _, ok := c.Get(fp); !ok {
					c.Put(fp, PlanInput{OptimizerCost: float64(i)})
				}
				_ = c.Stats()
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Size > 64 {
		t.Fatalf("cache exceeded capacity: %+v", st)
	}
}
