package costmodel

import (
	"fmt"
	"sync"
	"testing"
)

func TestFingerprint(t *testing.T) {
	a := Fingerprint("SELECT COUNT(*)   FROM title\n\tWHERE production_year > 50")
	b := Fingerprint("  SELECT COUNT(*) FROM title WHERE production_year > 50 ")
	if a != b {
		t.Fatalf("reformatted statements fingerprint differently:\n%q\n%q", a, b)
	}
	// Different literals must not collide: cached plans embed
	// literal-dependent cost estimates.
	c := Fingerprint("SELECT COUNT(*) FROM title WHERE production_year > 51")
	if a == c {
		t.Fatal("statements with different literals share a fingerprint")
	}
}

func TestPlanCacheLRU(t *testing.T) {
	c := NewPlanCache(2)
	in := func(cost float64) PlanInput { return PlanInput{OptimizerCost: cost} }

	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", in(1))
	c.Put("b", in(2))
	if got, ok := c.Get("a"); !ok || got.OptimizerCost != 1 {
		t.Fatalf("a = %+v ok=%v", got, ok)
	}
	// a is now most recent; inserting c evicts b.
	c.Put("c", in(3))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a (recently used) was evicted")
	}
	st := c.Stats()
	if st.Size != 2 || st.Capacity != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 2 hits / 2 misses", st)
	}

	// Refreshing an existing key must not grow the cache.
	c.Put("a", in(10))
	if got, _ := c.Get("a"); got.OptimizerCost != 10 {
		t.Fatalf("refresh lost: %+v", got)
	}
	if st := c.Stats(); st.Size != 2 {
		t.Fatalf("refresh grew cache: %+v", st)
	}
}

func TestPlanCacheDefaultCapacity(t *testing.T) {
	if st := NewPlanCache(0).Stats(); st.Capacity != DefaultPlanCacheSize {
		t.Fatalf("capacity = %d, want %d", st.Capacity, DefaultPlanCacheSize)
	}
}

func TestPlanCacheConcurrent(t *testing.T) {
	c := NewPlanCache(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				fp := fmt.Sprintf("q%d", (g*300+i)%100)
				if _, ok := c.Get(fp); !ok {
					c.Put(fp, PlanInput{OptimizerCost: float64(i)})
				}
				_ = c.Stats()
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Size > 64 {
		t.Fatalf("cache exceeded capacity: %+v", st)
	}
}
