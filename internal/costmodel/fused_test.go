package costmodel

import (
	"context"
	"errors"
	"testing"
)

// TestFusedBatchBitwiseEqualsSequential pins PredictBatch to the
// sequential Predict loop for EVERY registry estimator: same inputs,
// identical float64 outputs — whether the adapter fuses the batch into
// one forward pass (zeroshot) or falls back to the worker-pool fan-out
// (mscn, e2e, scaledcost). A second batch pass guards the fused path's
// recycled pack/inference buffers against cross-batch state leaks.
func TestFusedBatchBitwiseEqualsSequential(t *testing.T) {
	f := sharedFixture(t)
	ctx := context.Background()
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			est, err := New(name, smallOpts())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := est.Fit(ctx, f.train); err != nil {
				t.Fatal(err)
			}
			wantFused := name == NameZeroShot
			if Fused(est) != wantFused {
				t.Fatalf("Fused(%s) = %v, want %v", name, Fused(est), wantFused)
			}
			ins := Inputs(f.eval)
			want := make([]float64, len(ins))
			for i, in := range ins {
				if want[i], err = est.Predict(ctx, in); err != nil {
					t.Fatal(err)
				}
			}
			for _, size := range []int{1, 5, len(ins)} {
				got, err := est.PredictBatch(ctx, ins[:size])
				if err != nil {
					t.Fatal(err)
				}
				for i, p := range got {
					if p != want[i] {
						t.Fatalf("batch %d item %d: %v != sequential %v", size, i, p, want[i])
					}
				}
			}
			again, err := est.PredictBatch(ctx, ins)
			if err != nil {
				t.Fatal(err)
			}
			for i, p := range again {
				if p != want[i] {
					t.Fatalf("repeat batch item %d: %v != %v", i, p, want[i])
				}
			}
		})
	}
}

// TestZeroShotBatchItemErrorNamesIndex checks the fused adapter keeps
// the fan-out path's error contract: the first bad input (by index)
// aborts the batch with a per-item error message.
func TestZeroShotBatchItemErrorNamesIndex(t *testing.T) {
	f := sharedFixture(t)
	ctx := context.Background()
	zs, err := New(NameZeroShot, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := zs.Fit(ctx, f.train); err != nil {
		t.Fatal(err)
	}
	ins := []PlanInput{f.eval[0].PlanInput, {}, f.eval[1].PlanInput}
	if _, err := zs.PredictBatch(ctx, ins); err == nil {
		t.Fatal("batch with an invalid input did not fail")
	} else if want := "costmodel: batch item 1: "; len(err.Error()) < len(want) || err.Error()[:len(want)] != want {
		t.Fatalf("err = %q, want prefix %q", err, want)
	}

	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := zs.PredictBatch(cancelled, ins); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled fused batch err = %v, want context.Canceled", err)
	}
}
