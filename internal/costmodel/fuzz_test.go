package costmodel

import (
	"testing"
)

// FuzzFingerprint fuzzes the plan-cache key canonicalizer. Two
// properties must hold for arbitrary byte soup, not just SQL:
//
//  1. No panic — the function lexes raw request bodies.
//  2. Idempotence — Fingerprint(Fingerprint(x)) == Fingerprint(x). The
//     fingerprint IS the normalized text, so feeding a normalized
//     statement back (a client echoing the fingerprint as SQL, the
//     feedback path's by-SQL join) must land on the same cache entry.
//
// Plus two shape invariants of the normal form: no leading/trailing
// whitespace, and no whitespace runs outside string literals.
//
// Seed corpus: f.Add cases below plus testdata/fuzz/FuzzFingerprint.
func FuzzFingerprint(f *testing.F) {
	seeds := []string{
		"",
		"SELECT COUNT(*) FROM title",
		"  select\tcount(*)\nFROM title  WHERE x > 5 ",
		"SELECT * FROM t WHERE name = 'a  b'",
		"SELECT * FROM t WHERE name = 'unterminated",
		"select sum(a.b) from a, b where a.x = b.y and a.z between 1 and 2",
		"'lone literal'",
		"SELECT '' FROM ''",
		"sElEcT DISTINCT x FROM y GROUP BY z HAVING COUNT(*) > 3 ORDER BY x DESC LIMIT 5",
		"\x00\xff' \t'\x00",
		"WHERE IS NOT NULL LIKE '%_%'",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		fp := Fingerprint(sql)
		if again := Fingerprint(fp); again != fp {
			t.Fatalf("not idempotent:\n input %q\n once  %q\n twice %q", sql, fp, again)
		}
		// Leading whitespace can never survive (a literal starts at its
		// quote); trailing whitespace may — but only inside an
		// unterminated literal, which copies verbatim to end of input.
		if fp != "" && isSpaceByte(fp[0]) {
			t.Fatalf("normal form has leading whitespace: %q (from %q)", fp, sql)
		}
		endsInLiteral := assertNoSpaceRunsOutsideLiterals(t, sql, fp)
		if !endsInLiteral && fp != "" && isSpaceByte(fp[len(fp)-1]) {
			t.Fatalf("normal form has trailing whitespace outside a literal: %q (from %q)", fp, sql)
		}
	})
}

// assertNoSpaceRunsOutsideLiterals walks the normal form with the same
// literal rules as the fingerprinter: outside single-quoted literals,
// the only whitespace byte is a single ' '. It reports whether the
// normal form ends inside an (unterminated) literal.
func assertNoSpaceRunsOutsideLiterals(t *testing.T, input, fp string) (endsInLiteral bool) {
	t.Helper()
	inLiteral := false
	prevSpace := false
	for i := 0; i < len(fp); i++ {
		c := fp[i]
		if c == '\'' {
			inLiteral = !inLiteral
			prevSpace = false
			continue
		}
		if inLiteral {
			continue
		}
		switch c {
		case ' ':
			if prevSpace {
				t.Fatalf("whitespace run survived at %d in %q (from %q)", i, fp, input)
			}
			prevSpace = true
		case '\t', '\n', '\r', '\v', '\f':
			t.Fatalf("raw whitespace byte %q survived outside literal in %q (from %q)", c, fp, input)
		default:
			prevSpace = false
		}
	}
	return inLiteral
}

// TestFingerprintIdempotenceSeeds pins the fuzz property on the seed
// corpus even in plain `go test` runs (fuzz engines only execute seeds
// by default, but this keeps the property visible as a named test).
func TestFingerprintIdempotenceSeeds(t *testing.T) {
	seeds := []string{
		"SELECT COUNT(*) FROM title WHERE production_year > 1990",
		"  select  COUNT(*)  from  title  ",
		"SELECT * FROM t WHERE s = 'A  \t B' AND u = 'unterminated",
	}
	for _, s := range seeds {
		fp := Fingerprint(s)
		if Fingerprint(fp) != fp {
			t.Errorf("Fingerprint not idempotent on %q", s)
		}
	}
}
