package costmodel

import (
	"context"
	"fmt"
	"io"

	"github.com/zeroshot-db/zeroshot/internal/baselines"
	"github.com/zeroshot-db/zeroshot/internal/encoding"
)

func init() {
	Register(NameMSCN, Factory{
		New: func(opts Options) (Estimator, error) {
			cfg := baselines.DefaultMSCNConfig()
			opts.overrideNeural(&cfg.Hidden, &cfg.Epochs, &cfg.BatchSize, &cfg.LR, &cfg.Seed)
			return &MSCN{model: baselines.NewMSCN(cfg)}, nil
		},
		Load: func(r io.Reader) (Estimator, error) {
			m, err := baselines.LoadMSCN(r)
			if err != nil {
				return nil, err
			}
			return &MSCN{model: m}, nil
		},
	})
}

// MSCN adapts the multi-set convolutional baseline. It owns the set-based
// featurization: each input's Query is featurized with the input
// database's one-hot vocabulary and statistics (cached per database) —
// the non-transferable encoding whose failure to generalize across
// databases the paper demonstrates.
type MSCN struct {
	model *baselines.MSCN
	feats featCache
}

// Name implements Estimator.
func (m *MSCN) Name() string { return NameMSCN }

func (m *MSCN) featurize(in PlanInput) (*encoding.MSCNFeatures, error) {
	if in.DB == nil || in.Query == nil {
		return nil, fmt.Errorf("mscn estimator needs DB and Query inputs")
	}
	vocab, st := m.feats.get(in.DB)
	return encoding.NewMSCNFeaturizer(vocab, st).Featurize(in.Query), nil
}

// Fit implements Estimator.
func (m *MSCN) Fit(ctx context.Context, samples []Sample) (*FitReport, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ms := make([]baselines.MSCNSample, len(samples))
	for i, s := range samples {
		f, err := m.featurize(s.PlanInput)
		if err != nil {
			return nil, fmt.Errorf("sample %d: %w", i, err)
		}
		ms[i] = baselines.MSCNSample{Feats: f, RuntimeSec: s.RuntimeSec}
	}
	if err := m.model.Train(ms); err != nil {
		return nil, err
	}
	return &FitReport{Samples: len(ms)}, nil
}

// Predict implements Estimator.
func (m *MSCN) Predict(ctx context.Context, in PlanInput) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	f, err := m.featurize(in)
	if err != nil {
		return 0, err
	}
	return m.model.Predict(f), nil
}

// PredictBatch implements Estimator.
func (m *MSCN) PredictBatch(ctx context.Context, ins []PlanInput) ([]float64, error) {
	return predictBatch(ctx, ins, func(in PlanInput) (float64, error) {
		f, err := m.featurize(in)
		if err != nil {
			return 0, err
		}
		return m.model.Predict(f), nil
	})
}

// Save implements Estimator.
func (m *MSCN) Save(w io.Writer) error { return m.model.Save(w) }
