//go:build race

package costmodel

// raceEnabled reports whether the race detector is instrumenting this
// build. Alloc-pinning assertions skip under -race: the detector makes
// sync.Pool drop items deliberately, so pooled paths allocate there by
// design.
const raceEnabled = true
