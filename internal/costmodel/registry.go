package costmodel

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Canonical registry names of the built-in estimators.
const (
	NameZeroShot   = "zeroshot"
	NameMSCN       = "mscn"
	NameE2E        = "e2e"
	NameScaledCost = "scaledcost"
)

// Factory constructs and reconstructs one estimator kind.
type Factory struct {
	// New builds a fresh, untrained estimator from options.
	New func(opts Options) (Estimator, error)
	// Load reconstructs a trained estimator from a payload written by
	// Estimator.Save.
	Load func(r io.Reader) (Estimator, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Register adds an estimator factory under a unique name. It panics on a
// duplicate or incomplete registration — registration happens in package
// init, where a bad registry is a programming error.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if name == "" || f.New == nil || f.Load == nil {
		panic("costmodel: Register requires a name and New/Load functions")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("costmodel: estimator %q registered twice", name))
	}
	registry[name] = f
}

// New builds a fresh estimator by registry name.
func New(name string, opts Options) (Estimator, error) {
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("costmodel: unknown estimator %q (have %v)", name, Names())
	}
	return f.New(opts)
}

// Names lists the registered estimator names in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// fileMagic guards against feeding arbitrary gob streams into Load.
const fileMagic = "zsdb-costmodel/v1"

// fileHeader is the self-describing prefix of every saved estimator.
type fileHeader struct {
	Magic string
	Name  string
}

// Save writes a self-describing model file: a header naming the estimator,
// followed by the estimator's own payload. Files written by Save are
// reconstructed by Load with no further caller input.
func Save(w io.Writer, est Estimator) error {
	hdr := fileHeader{Magic: fileMagic, Name: est.Name()}
	if err := gob.NewEncoder(w).Encode(hdr); err != nil {
		return fmt.Errorf("costmodel: encode header: %w", err)
	}
	return est.Save(w)
}

// Load reads a model file written by Save, dispatching to the registered
// factory named in the header.
func Load(r io.Reader) (Estimator, error) {
	// Model files stack several gob streams (header, adapter header,
	// parameters), each read by its own decoder. gob wraps readers that
	// lack ReadByte in an internal bufio.Reader which over-reads past its
	// message — so share one ByteReader across all decoders.
	if _, ok := r.(io.ByteReader); !ok {
		r = bufio.NewReader(r)
	}
	var hdr fileHeader
	if err := gob.NewDecoder(r).Decode(&hdr); err != nil {
		return nil, fmt.Errorf("costmodel: decode header: %w", err)
	}
	if hdr.Magic != fileMagic {
		return nil, fmt.Errorf("costmodel: not a model file (magic %q)", hdr.Magic)
	}
	regMu.RLock()
	f, ok := registry[hdr.Name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("costmodel: file names unknown estimator %q (have %v)", hdr.Name, Names())
	}
	est, err := f.Load(r)
	if err != nil {
		return nil, fmt.Errorf("costmodel: load %s: %w", hdr.Name, err)
	}
	return est, nil
}
