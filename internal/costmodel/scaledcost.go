package costmodel

import (
	"context"
	"fmt"
	"io"

	"github.com/zeroshot-db/zeroshot/internal/baselines"
)

func init() {
	Register(NameScaledCost, Factory{
		New: func(Options) (Estimator, error) {
			return &ScaledCost{model: &baselines.ScaledCost{}}, nil
		},
		Load: func(r io.Reader) (Estimator, error) {
			m, err := baselines.LoadScaledCost(r)
			if err != nil {
				return nil, err
			}
			return &ScaledCost{model: m}, nil
		},
	})
}

// ScaledCost adapts the log-log regression from the optimizer's analytical
// cost estimate to wall-clock runtime. Its featurization is the
// OptimizerCost field of PlanInput.
type ScaledCost struct {
	model *baselines.ScaledCost
}

// Name implements Estimator.
func (s *ScaledCost) Name() string { return NameScaledCost }

// Fit implements Estimator: a closed-form least-squares fit.
func (s *ScaledCost) Fit(ctx context.Context, samples []Sample) (*FitReport, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	costs := make([]float64, len(samples))
	runtimes := make([]float64, len(samples))
	for i, smp := range samples {
		if smp.OptimizerCost <= 0 {
			return nil, fmt.Errorf("sample %d: scaledcost estimator needs a positive OptimizerCost", i)
		}
		costs[i] = smp.OptimizerCost
		runtimes[i] = smp.RuntimeSec
	}
	if err := s.model.Fit(costs, runtimes); err != nil {
		return nil, err
	}
	return &FitReport{Samples: len(samples)}, nil
}

// Predict implements Estimator.
func (s *ScaledCost) Predict(ctx context.Context, in PlanInput) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return s.model.Predict(in.OptimizerCost), nil
}

// PredictBatch implements Estimator.
func (s *ScaledCost) PredictBatch(ctx context.Context, ins []PlanInput) ([]float64, error) {
	return predictBatch(ctx, ins, func(in PlanInput) (float64, error) {
		return s.model.Predict(in.OptimizerCost), nil
	})
}

// Save implements Estimator.
func (s *ScaledCost) Save(w io.Writer) error { return s.model.Save(w) }
