package costmodel

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
)

// countdownCtx reports Canceled after Err has been consulted n times —
// a deterministic way to cancel mid-training without timing games.
type countdownCtx struct {
	context.Context
	left atomic.Int64
}

func (c *countdownCtx) Err() error {
	if c.left.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// TestFitCancelPropagatesToTraining: the ctx handed to ZeroShot.Fit
// reaches the epoch/minibatch boundaries of the training loop, so a
// cancellation aborts a long fit instead of running it to completion.
func TestFitCancelPropagatesToTraining(t *testing.T) {
	f := sharedFixture(t)
	opts := smallOpts()
	opts.Epochs = 200 // would take a while if cancellation were ignored
	zs, err := New(NameZeroShot, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &countdownCtx{Context: context.Background()}
	ctx.left.Store(5) // survives encoding, aborts a few minibatches in
	if _, err := zs.Fit(ctx, f.train); !errors.Is(err, context.Canceled) {
		t.Fatalf("Fit with mid-training cancel returned %v, want context.Canceled", err)
	}

	// FineTune shares the loop and the contract.
	zs2, err := New(NameZeroShot, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := zs2.Fit(context.Background(), f.train); err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := zs2.(FineTuner).FineTune(cancelled, f.eval, 50, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("FineTune with pre-canceled ctx returned %v, want context.Canceled", err)
	}
}

// TestFitReportCarriesThroughput: Fit and FineTune surface the training
// engine's wall-time and samples/s in the FitReport — the numbers the
// adapt status endpoint republishes.
func TestFitReportCarriesThroughput(t *testing.T) {
	f := sharedFixture(t)
	zs, err := New(NameZeroShot, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	report, err := zs.Fit(context.Background(), f.train)
	if err != nil {
		t.Fatal(err)
	}
	if report.WallTime <= 0 || report.SamplesPerSec <= 0 {
		t.Fatalf("Fit report missing throughput: wall=%v rate=%v", report.WallTime, report.SamplesPerSec)
	}
	ftReport, err := zs.(FineTuner).FineTune(context.Background(), f.eval, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ftReport.WallTime <= 0 || ftReport.SamplesPerSec <= 0 {
		t.Fatalf("FineTune report missing throughput: wall=%v rate=%v", ftReport.WallTime, ftReport.SamplesPerSec)
	}
}

// TestFineTuneCloneWhileServing is the adaptation loop's safety story
// under -race: the original estimator keeps serving single and batch
// predictions — unchanged outputs throughout — while its clone
// fine-tunes on the shared worker pool. Training and inference share
// nn.RowParallel, so this also exercises pool contention.
func TestFineTuneCloneWhileServing(t *testing.T) {
	f := sharedFixture(t)
	ctx := context.Background()
	zs, err := New(NameZeroShot, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := zs.Fit(ctx, f.train); err != nil {
		t.Fatal(err)
	}
	ins := Inputs(f.eval)
	want, err := zs.PredictBatch(ctx, ins)
	if err != nil {
		t.Fatal(err)
	}
	clone, err := zs.(Cloner).Clone()
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := clone.(FineTuner).FineTune(ctx, f.eval, 6, 0.01); err != nil {
			errCh <- err
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 5; round++ {
				if g%2 == 0 {
					got, err := zs.PredictBatch(ctx, ins)
					if err != nil {
						errCh <- err
						return
					}
					for i := range got {
						if got[i] != want[i] {
							t.Errorf("goroutine %d: batch[%d] = %v, want %v (training moved the serving model)",
								g, i, got[i], want[i])
							return
						}
					}
				} else {
					for i, in := range ins {
						got, err := zs.Predict(ctx, in)
						if err != nil {
							errCh <- err
							return
						}
						if math.Abs(got-want[i]) > 1e-12 {
							t.Errorf("goroutine %d: predict[%d] = %v, want %v", g, i, got, want[i])
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// The clone actually trained.
	tuned, err := clone.PredictBatch(ctx, ins)
	if err != nil {
		t.Fatal(err)
	}
	moved := false
	for i := range tuned {
		if tuned[i] != want[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("concurrent fine-tune left the clone's predictions unchanged")
	}
}
