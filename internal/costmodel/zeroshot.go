package costmodel

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"runtime"
	"sync"

	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/plan"
	"github.com/zeroshot-db/zeroshot/internal/schema"
	"github.com/zeroshot-db/zeroshot/internal/zeroshot"
)

func init() {
	Register(NameZeroShot, Factory{
		New: func(opts Options) (Estimator, error) {
			cfg := zeroshot.DefaultConfig()
			opts.overrideNeural(&cfg.Hidden, &cfg.Epochs, &cfg.BatchSize, &cfg.LR, &cfg.Seed)
			if opts.HuberDelta > 0 {
				cfg.HuberDelta = opts.HuberDelta
			}
			cfg.FlatSum = opts.FlatSum
			return &ZeroShot{model: zeroshot.New(cfg), card: opts.Card}, nil
		},
		Load: loadZeroShot,
	})
}

// ZeroShot adapts the paper's zero-shot graph model to the Estimator
// contract. It owns the transferable plan encoding: inputs carry raw
// executed plans, and the adapter encodes them against the input
// database's schema with its configured cardinality source, caching one
// encoder per schema.
type ZeroShot struct {
	model *zeroshot.Model
	card  encoding.CardSource

	// encoders is keyed by schema content fingerprint, not schema
	// pointer: a database re-attach (or a bundle reload) rebuilds its
	// *schema.Schema, and pointer keys would strand one stale encoder —
	// and everything it pins — per reload, forever. Content identity
	// also means structurally identical schemas share one encoder,
	// which is semantically exact: the encoder reads only schema
	// statistics.
	encoders sync.Map // schema.Fingerprint() -> *encoding.PlanEncoder
}

// Name implements Estimator.
func (z *ZeroShot) Name() string { return NameZeroShot }

// Card returns the cardinality source the adapter encodes plans with.
func (z *ZeroShot) Card() encoding.CardSource { return z.card }

// Model exposes the underlying graph model for callers that need
// zeroshot-specific surface (e.g. the learned join-ordering example).
func (z *ZeroShot) Model() *zeroshot.Model { return z.model }

func (z *ZeroShot) encoderFor(sch *schema.Schema) *encoding.PlanEncoder {
	key := sch.Fingerprint()
	if e, ok := z.encoders.Load(key); ok {
		return e.(*encoding.PlanEncoder)
	}
	e, _ := z.encoders.LoadOrStore(key, encoding.NewPlanEncoder(sch, z.card))
	return e.(*encoding.PlanEncoder)
}

// numEncoders counts live per-schema encoders (test hook for the
// re-attach leak regression).
func (z *ZeroShot) numEncoders() int {
	n := 0
	z.encoders.Range(func(_, _ any) bool { n++; return true })
	return n
}

func (z *ZeroShot) encode(in PlanInput) (*encoding.Graph, error) {
	if in.DB == nil || in.Plan == nil {
		return nil, fmt.Errorf("zeroshot estimator needs DB and Plan inputs")
	}
	enc := z.encoderFor(in.DB.Schema)
	if g, ok := in.Enc.Lookup(enc); ok {
		return g, nil
	}
	g, err := enc.Encode(in.Plan)
	if err != nil {
		return nil, err
	}
	in.Enc.Store(enc, g)
	return g, nil
}

// WarmEncode implements EncodeWarmer: encode the input's plan into its
// memo (a no-op when the shape was already encoded for this adapter's
// encoder).
func (z *ZeroShot) WarmEncode(in PlanInput) error {
	_, err := z.encode(in)
	return err
}

func (z *ZeroShot) samples(ctx context.Context, samples []Sample) ([]zeroshot.Sample, error) {
	ins := Inputs(samples)
	// Training graphs live for the whole Train/FineTune loop, so they
	// must escape — no arena. The memo→dedup→parallel pipeline still
	// applies: duplicate shapes encode once and cores share the work.
	graphs, _, err := z.encodeBatch(ctx, ins, true)
	if err != nil {
		return nil, err
	}
	out := make([]zeroshot.Sample, len(samples))
	for i, s := range samples {
		out[i] = zeroshot.Sample{Graph: graphs[i], RuntimeSec: s.RuntimeSec}
	}
	return out, nil
}

// coldShape is one distinct plan shape awaiting a cold encode: the
// (encoder, plan) identity, the batch positions that need its graph,
// and whether the graph escapes into any item's memo (escaping graphs
// must not come from an arena).
type coldShape struct {
	enc    *encoding.PlanEncoder
	plan   *plan.Node
	items  []int
	escape bool
}

// coldKey identifies a distinct shape within one batch: items sharing
// the encoder and the plan (plan caches and what-if sweeps hand the
// same *plan.Node — and usually the same memo — to every duplicate)
// encode exactly once.
type coldKey struct {
	enc  *encoding.PlanEncoder
	plan *plan.Node
}

// encodeBatch resolves every input's plan graph: memo hits first, then
// the remaining cold items deduped to distinct shapes and fanned over a
// GOMAXPROCS worker pool (runBatch, so the batch cancellation contract
// — no item starts after cancel, unfinished items report ctx.Err() —
// carries over). Graphs that stay private to the batch are built from
// per-worker pooled arenas; the returned release func recycles those
// arenas and must be called only after the graphs are dead (packed into
// a BatchGraph and the forward pass done). Graphs that escape — into an
// item's memo, or unconditionally when escapeAll is set (training) —
// are heap-built and live as long as their holders.
//
// The warm path (every input memoized) allocates only the result slice
// and returns a shared no-op release.
func (z *ZeroShot) encodeBatch(ctx context.Context, ins []PlanInput, escapeAll bool) ([]*encoding.Graph, func(), error) {
	graphs := make([]*encoding.Graph, len(ins))
	var (
		cold   []*coldShape // distinct cold shapes, first-occurrence order
		shapes map[coldKey]*coldShape
	)
	for i, in := range ins {
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("costmodel: batch item %d: %w", i, err)
		}
		if in.DB == nil || in.Plan == nil {
			return nil, nil, fmt.Errorf("costmodel: batch item %d: zeroshot estimator needs DB and Plan inputs", i)
		}
		enc := z.encoderFor(in.DB.Schema)
		if g, ok := in.Enc.Lookup(enc); ok {
			graphs[i] = g
			continue
		}
		k := coldKey{enc: enc, plan: in.Plan}
		if shapes == nil {
			shapes = map[coldKey]*coldShape{}
		}
		s, ok := shapes[k]
		if !ok {
			s = &coldShape{enc: enc, plan: in.Plan}
			shapes[k] = s
			cold = append(cold, s)
		}
		s.items = append(s.items, i)
		if escapeAll || in.Enc != nil {
			s.escape = true
		}
	}
	if len(cold) == 0 {
		return graphs, noopRelease, nil
	}

	arenas := make([]*encoding.Arena, runtime.GOMAXPROCS(0))
	release := func() {
		for _, a := range arenas {
			if a != nil {
				a.Release()
			}
		}
	}
	encoded, errs := runBatch(ctx, len(cold), len(arenas), func(w, j int) (*encoding.Graph, error) {
		s := cold[j]
		if s.escape {
			return s.enc.Encode(s.plan)
		}
		if arenas[w] == nil {
			arenas[w] = encoding.GetArena()
		}
		return s.enc.EncodeArena(arenas[w], s.plan)
	})
	// cold is in first-occurrence order, so the first failing shape's
	// first item is the lowest failing input index — the same item a
	// serial scan would have reported.
	for j, err := range errs {
		if err != nil {
			release()
			return nil, nil, fmt.Errorf("costmodel: batch item %d: %w", cold[j].items[0], err)
		}
	}
	for j, s := range cold {
		g := encoded[j]
		for _, i := range s.items {
			graphs[i] = g
			ins[i].Enc.Store(s.enc, g)
		}
	}
	return graphs, release, nil
}

// noopRelease is the warm path's release: no arenas were taken, nothing
// to recycle. Shared so the all-memoized path allocates no closure.
func noopRelease() {}

// Fit implements Estimator. ctx cancellation propagates into the
// training loop itself (checked at epoch and minibatch boundaries), not
// just the encode stage.
func (z *ZeroShot) Fit(ctx context.Context, samples []Sample) (*FitReport, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	zs, err := z.samples(ctx, samples)
	if err != nil {
		return nil, err
	}
	res, err := z.model.TrainCtx(ctx, zs)
	if err != nil {
		return nil, err
	}
	return &FitReport{Samples: len(zs), EpochLoss: res.EpochLoss,
		WallTime: res.WallTime, SamplesPerSec: res.SamplesPerSec}, nil
}

// FineTune implements FineTuner: continue training on samples from a new
// database at a reduced learning rate (the paper's few-shot mode). ctx
// cancellation propagates into the training loop, so the adaptation
// worker's background fine-tune stops promptly on drain.
func (z *ZeroShot) FineTune(ctx context.Context, samples []Sample, epochs int, lr float64) (*FitReport, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	zs, err := z.samples(ctx, samples)
	if err != nil {
		return nil, err
	}
	res, err := z.model.FineTuneCtx(ctx, zs, epochs, lr)
	if err != nil {
		return nil, err
	}
	return &FitReport{Samples: len(zs), EpochLoss: res.EpochLoss,
		WallTime: res.WallTime, SamplesPerSec: res.SamplesPerSec}, nil
}

// Clone implements Cloner: a deep copy via a save/load round trip, so
// the clone shares no weights (or optimizer state) with the original and
// can fine-tune while the original keeps serving. The clone keeps the
// architecture and cardinality source; training hyperparameters revert
// to defaults, which FineTune's explicit epochs/lr arguments override.
func (z *ZeroShot) Clone() (Estimator, error) {
	var buf bytes.Buffer
	if err := z.Save(&buf); err != nil {
		return nil, fmt.Errorf("zeroshot clone: %w", err)
	}
	est, err := loadZeroShot(&buf)
	if err != nil {
		return nil, fmt.Errorf("zeroshot clone: %w", err)
	}
	return est, nil
}

// Predict implements Estimator.
func (z *ZeroShot) Predict(ctx context.Context, in PlanInput) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	g, err := z.encode(in)
	if err != nil {
		return 0, err
	}
	return z.model.Predict(g), nil
}

// PredictBatch implements Estimator: the whole batch executes as ONE
// fused forward pass. The encode stage runs the cold-path pipeline —
// memo hits resolve first, remaining cold items dedupe to distinct
// shapes, and the distinct shapes encode in parallel over a GOMAXPROCS
// worker pool with pooled arena scratch (see encodeBatch) — then the
// graphs are packed into an encoding.BatchGraph and run through the
// model's tape-free batched inference. The result is bitwise identical
// to predicting each input alone: encoding is deterministic per shape,
// duplicates share one graph with identical features, and the packed
// pass is the exact per-row operation sequence of Predict. Inputs may
// span databases: each is encoded against its own schema, and the
// packed pass never reads schema state.
func (z *ZeroShot) PredictBatch(ctx context.Context, ins []PlanInput) ([]float64, error) {
	if len(ins) == 0 {
		return nil, nil
	}
	graphs, release, err := z.encodeBatch(ctx, ins, false)
	if err != nil {
		return nil, err
	}
	// PredictBatch packs (copying features and topology) before the
	// forward pass, so arena graphs are dead once it returns.
	preds := z.model.PredictBatch(graphs)
	release()
	return preds, nil
}

// FusesBatches implements BatchFuser: zero-shot batches run as one
// fused forward pass.
func (z *ZeroShot) FusesBatches() bool { return true }

// zeroShotHeader precedes the model weights in the save payload.
type zeroShotHeader struct {
	Card int
}

// Save implements Estimator.
func (z *ZeroShot) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(zeroShotHeader{Card: int(z.card)}); err != nil {
		return fmt.Errorf("encode zeroshot header: %w", err)
	}
	return z.model.Save(w)
}

func loadZeroShot(r io.Reader) (Estimator, error) {
	var hdr zeroShotHeader
	if err := gob.NewDecoder(r).Decode(&hdr); err != nil {
		return nil, fmt.Errorf("decode zeroshot header: %w", err)
	}
	m, err := zeroshot.Load(r, zeroshot.DefaultConfig())
	if err != nil {
		return nil, err
	}
	return &ZeroShot{model: m, card: encoding.CardSource(hdr.Card)}, nil
}
