package costmodel

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"sync"

	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/schema"
	"github.com/zeroshot-db/zeroshot/internal/zeroshot"
)

func init() {
	Register(NameZeroShot, Factory{
		New: func(opts Options) (Estimator, error) {
			cfg := zeroshot.DefaultConfig()
			opts.overrideNeural(&cfg.Hidden, &cfg.Epochs, &cfg.BatchSize, &cfg.LR, &cfg.Seed)
			if opts.HuberDelta > 0 {
				cfg.HuberDelta = opts.HuberDelta
			}
			cfg.FlatSum = opts.FlatSum
			return &ZeroShot{model: zeroshot.New(cfg), card: opts.Card}, nil
		},
		Load: loadZeroShot,
	})
}

// ZeroShot adapts the paper's zero-shot graph model to the Estimator
// contract. It owns the transferable plan encoding: inputs carry raw
// executed plans, and the adapter encodes them against the input
// database's schema with its configured cardinality source, caching one
// encoder per schema.
type ZeroShot struct {
	model *zeroshot.Model
	card  encoding.CardSource

	encoders sync.Map // *schema.Schema -> *encoding.PlanEncoder
}

// Name implements Estimator.
func (z *ZeroShot) Name() string { return NameZeroShot }

// Card returns the cardinality source the adapter encodes plans with.
func (z *ZeroShot) Card() encoding.CardSource { return z.card }

// Model exposes the underlying graph model for callers that need
// zeroshot-specific surface (e.g. the learned join-ordering example).
func (z *ZeroShot) Model() *zeroshot.Model { return z.model }

func (z *ZeroShot) encoderFor(sch *schema.Schema) *encoding.PlanEncoder {
	if e, ok := z.encoders.Load(sch); ok {
		return e.(*encoding.PlanEncoder)
	}
	e, _ := z.encoders.LoadOrStore(sch, encoding.NewPlanEncoder(sch, z.card))
	return e.(*encoding.PlanEncoder)
}

func (z *ZeroShot) encode(in PlanInput) (*encoding.Graph, error) {
	if in.DB == nil || in.Plan == nil {
		return nil, fmt.Errorf("zeroshot estimator needs DB and Plan inputs")
	}
	enc := z.encoderFor(in.DB.Schema)
	if g, ok := in.Enc.Lookup(enc); ok {
		return g, nil
	}
	g, err := enc.Encode(in.Plan)
	if err != nil {
		return nil, err
	}
	in.Enc.Store(enc, g)
	return g, nil
}

// WarmEncode implements EncodeWarmer: encode the input's plan into its
// memo (a no-op when the shape was already encoded for this adapter's
// encoder).
func (z *ZeroShot) WarmEncode(in PlanInput) error {
	_, err := z.encode(in)
	return err
}

func (z *ZeroShot) samples(samples []Sample) ([]zeroshot.Sample, error) {
	out := make([]zeroshot.Sample, len(samples))
	for i, s := range samples {
		g, err := z.encode(s.PlanInput)
		if err != nil {
			return nil, fmt.Errorf("sample %d: %w", i, err)
		}
		out[i] = zeroshot.Sample{Graph: g, RuntimeSec: s.RuntimeSec}
	}
	return out, nil
}

// Fit implements Estimator.
func (z *ZeroShot) Fit(ctx context.Context, samples []Sample) (*FitReport, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	zs, err := z.samples(samples)
	if err != nil {
		return nil, err
	}
	res, err := z.model.Train(zs)
	if err != nil {
		return nil, err
	}
	return &FitReport{Samples: len(zs), EpochLoss: res.EpochLoss}, nil
}

// FineTune implements FineTuner: continue training on samples from a new
// database at a reduced learning rate (the paper's few-shot mode).
func (z *ZeroShot) FineTune(ctx context.Context, samples []Sample, epochs int, lr float64) (*FitReport, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	zs, err := z.samples(samples)
	if err != nil {
		return nil, err
	}
	res, err := z.model.FineTune(zs, epochs, lr)
	if err != nil {
		return nil, err
	}
	return &FitReport{Samples: len(zs), EpochLoss: res.EpochLoss}, nil
}

// Clone implements Cloner: a deep copy via a save/load round trip, so
// the clone shares no weights (or optimizer state) with the original and
// can fine-tune while the original keeps serving. The clone keeps the
// architecture and cardinality source; training hyperparameters revert
// to defaults, which FineTune's explicit epochs/lr arguments override.
func (z *ZeroShot) Clone() (Estimator, error) {
	var buf bytes.Buffer
	if err := z.Save(&buf); err != nil {
		return nil, fmt.Errorf("zeroshot clone: %w", err)
	}
	est, err := loadZeroShot(&buf)
	if err != nil {
		return nil, fmt.Errorf("zeroshot clone: %w", err)
	}
	return est, nil
}

// Predict implements Estimator.
func (z *ZeroShot) Predict(ctx context.Context, in PlanInput) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	g, err := z.encode(in)
	if err != nil {
		return 0, err
	}
	return z.model.Predict(g), nil
}

// PredictBatch implements Estimator: the whole batch executes as ONE
// fused forward pass. Inputs are encoded into plan graphs (with a
// cancellation check between items), packed into an encoding.BatchGraph
// and run through the model's tape-free batched inference — bitwise
// identical to predicting each input alone, minus the per-item tape,
// gradient and goroutine overhead. Inputs may span databases: each is
// encoded against its own schema, and the packed pass never reads
// schema state.
func (z *ZeroShot) PredictBatch(ctx context.Context, ins []PlanInput) ([]float64, error) {
	if len(ins) == 0 {
		return nil, nil
	}
	graphs := make([]*encoding.Graph, len(ins))
	for i, in := range ins {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("costmodel: batch item %d: %w", i, err)
		}
		g, err := z.encode(in)
		if err != nil {
			return nil, fmt.Errorf("costmodel: batch item %d: %w", i, err)
		}
		graphs[i] = g
	}
	return z.model.PredictBatch(graphs), nil
}

// FusesBatches implements BatchFuser: zero-shot batches run as one
// fused forward pass.
func (z *ZeroShot) FusesBatches() bool { return true }

// zeroShotHeader precedes the model weights in the save payload.
type zeroShotHeader struct {
	Card int
}

// Save implements Estimator.
func (z *ZeroShot) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(zeroShotHeader{Card: int(z.card)}); err != nil {
		return fmt.Errorf("encode zeroshot header: %w", err)
	}
	return z.model.Save(w)
}

func loadZeroShot(r io.Reader) (Estimator, error) {
	var hdr zeroShotHeader
	if err := gob.NewDecoder(r).Decode(&hdr); err != nil {
		return nil, fmt.Errorf("decode zeroshot header: %w", err)
	}
	m, err := zeroshot.Load(r, zeroshot.DefaultConfig())
	if err != nil {
		return nil, err
	}
	return &ZeroShot{model: m, card: encoding.CardSource(hdr.Card)}, nil
}
