package datagen

import (
	"fmt"
	"math/rand"

	"github.com/zeroshot-db/zeroshot/internal/schema"
	"github.com/zeroshot-db/zeroshot/internal/storage"
)

// IMDBLike builds the held-out evaluation database: a fixed snowflake schema
// modelled on the IMDB subset used by the JOB-light benchmark (title at the
// center, satellite fact tables referencing it). scale multiplies every
// row count; scale=1 gives ~100k total rows, which executes thousands of
// evaluation queries in seconds.
//
// This database is never included in zero-shot training corpora — it plays
// the role of the paper's unseen IMDB database.
func IMDBLike(scale float64) (*storage.Database, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("datagen: IMDBLike scale must be positive, got %v", scale)
	}
	n := func(base int) int {
		v := int(float64(base) * scale)
		if v < 10 {
			v = 10
		}
		return v
	}
	title := &schema.Table{
		Name: "title",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TypeInt, PrimaryKey: true},
			{Name: "production_year", Type: schema.TypeInt},
			{Name: "kind_id", Type: schema.TypeCategorical},
			{Name: "season_nr", Type: schema.TypeInt, NullFrac: 0.08},
			{Name: "episode_nr", Type: schema.TypeInt, NullFrac: 0.08},
		},
		RowCount: n(25000),
	}
	movieCompanies := &schema.Table{
		Name: "movie_companies",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TypeInt, PrimaryKey: true},
			{Name: "movie_id", Type: schema.TypeInt},
			{Name: "company_type_id", Type: schema.TypeCategorical},
			{Name: "note_len", Type: schema.TypeInt},
		},
		RowCount: n(40000),
	}
	castInfo := &schema.Table{
		Name: "cast_info",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TypeInt, PrimaryKey: true},
			{Name: "movie_id", Type: schema.TypeInt},
			{Name: "role_id", Type: schema.TypeCategorical},
			{Name: "nr_order", Type: schema.TypeInt, NullFrac: 0.05},
		},
		RowCount: n(60000),
	}
	movieInfo := &schema.Table{
		Name: "movie_info",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TypeInt, PrimaryKey: true},
			{Name: "movie_id", Type: schema.TypeInt},
			{Name: "info_type_id", Type: schema.TypeCategorical},
			{Name: "info_len", Type: schema.TypeFloat},
		},
		RowCount: n(50000),
	}
	movieKeyword := &schema.Table{
		Name: "movie_keyword",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TypeInt, PrimaryKey: true},
			{Name: "movie_id", Type: schema.TypeInt},
			{Name: "keyword_id", Type: schema.TypeInt},
		},
		RowCount: n(45000),
	}
	movieInfoIdx := &schema.Table{
		Name: "movie_info_idx",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TypeInt, PrimaryKey: true},
			{Name: "movie_id", Type: schema.TypeInt},
			{Name: "info_type_id", Type: schema.TypeCategorical},
			{Name: "rating", Type: schema.TypeFloat},
		},
		RowCount: n(15000),
	}
	s := &schema.Schema{
		Name:   "imdb",
		Tables: []*schema.Table{title, movieCompanies, castInfo, movieInfo, movieKeyword, movieInfoIdx},
	}
	for _, fact := range []string{"movie_companies", "cast_info", "movie_info", "movie_keyword", "movie_info_idx"} {
		s.ForeignKeys = append(s.ForeignKeys, schema.ForeignKey{
			FromTable: fact, FromColumn: "movie_id", ToTable: "title", ToColumn: "id",
		})
	}
	for _, t := range s.Tables {
		t.ComputePages()
	}
	return populateFixed(s, 424242)
}

// SSBLike builds a star-schema database modelled on the Star Schema
// Benchmark: one lineorder fact table with four dimensions. Used as one of
// the fixed "other databases" in examples and tests.
func SSBLike(scale float64) (*storage.Database, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("datagen: SSBLike scale must be positive, got %v", scale)
	}
	n := func(base int) int {
		v := int(float64(base) * scale)
		if v < 10 {
			v = 10
		}
		return v
	}
	customer := &schema.Table{
		Name: "customer",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TypeInt, PrimaryKey: true},
			{Name: "region", Type: schema.TypeCategorical},
			{Name: "mktsegment", Type: schema.TypeCategorical},
		},
		RowCount: n(3000),
	}
	part := &schema.Table{
		Name: "part",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TypeInt, PrimaryKey: true},
			{Name: "category", Type: schema.TypeCategorical},
			{Name: "size", Type: schema.TypeInt},
		},
		RowCount: n(2000),
	}
	supplier := &schema.Table{
		Name: "supplier",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TypeInt, PrimaryKey: true},
			{Name: "nation", Type: schema.TypeCategorical},
		},
		RowCount: n(500),
	}
	date := &schema.Table{
		Name: "ddate",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TypeInt, PrimaryKey: true},
			{Name: "year", Type: schema.TypeInt},
			{Name: "month", Type: schema.TypeInt},
		},
		RowCount: n(2500),
	}
	lineorder := &schema.Table{
		Name: "lineorder",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TypeInt, PrimaryKey: true},
			{Name: "customer_id", Type: schema.TypeInt},
			{Name: "part_id", Type: schema.TypeInt},
			{Name: "supplier_id", Type: schema.TypeInt},
			{Name: "ddate_id", Type: schema.TypeInt},
			{Name: "quantity", Type: schema.TypeInt},
			{Name: "revenue", Type: schema.TypeFloat},
			{Name: "discount", Type: schema.TypeFloat},
		},
		RowCount: n(80000),
	}
	s := &schema.Schema{
		Name:   "ssb",
		Tables: []*schema.Table{customer, part, supplier, date, lineorder},
		ForeignKeys: []schema.ForeignKey{
			{FromTable: "lineorder", FromColumn: "customer_id", ToTable: "customer", ToColumn: "id"},
			{FromTable: "lineorder", FromColumn: "part_id", ToTable: "part", ToColumn: "id"},
			{FromTable: "lineorder", FromColumn: "supplier_id", ToTable: "supplier", ToColumn: "id"},
			{FromTable: "lineorder", FromColumn: "ddate_id", ToTable: "ddate", ToColumn: "id"},
		},
	}
	for _, t := range s.Tables {
		t.ComputePages()
	}
	return populateFixed(s, 171717)
}

// TPCHLike builds a small chain-schema database loosely modelled on TPC-H
// (region -> nation -> customer -> orders -> lineitem).
func TPCHLike(scale float64) (*storage.Database, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("datagen: TPCHLike scale must be positive, got %v", scale)
	}
	n := func(base int) int {
		v := int(float64(base) * scale)
		if v < 5 {
			v = 5
		}
		return v
	}
	region := &schema.Table{
		Name: "region",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TypeInt, PrimaryKey: true},
			{Name: "name_len", Type: schema.TypeInt},
		},
		RowCount: n(5),
	}
	nation := &schema.Table{
		Name: "nation",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TypeInt, PrimaryKey: true},
			{Name: "region_id", Type: schema.TypeInt},
		},
		RowCount: n(25),
	}
	customer := &schema.Table{
		Name: "customer",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TypeInt, PrimaryKey: true},
			{Name: "nation_id", Type: schema.TypeInt},
			{Name: "acctbal", Type: schema.TypeFloat},
			{Name: "mktsegment", Type: schema.TypeCategorical},
		},
		RowCount: n(5000),
	}
	orders := &schema.Table{
		Name: "orders",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TypeInt, PrimaryKey: true},
			{Name: "customer_id", Type: schema.TypeInt},
			{Name: "totalprice", Type: schema.TypeFloat},
			{Name: "status", Type: schema.TypeCategorical},
		},
		RowCount: n(30000),
	}
	lineitem := &schema.Table{
		Name: "lineitem",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TypeInt, PrimaryKey: true},
			{Name: "orders_id", Type: schema.TypeInt},
			{Name: "quantity", Type: schema.TypeInt},
			{Name: "extendedprice", Type: schema.TypeFloat},
			{Name: "returnflag", Type: schema.TypeCategorical},
		},
		RowCount: n(90000),
	}
	s := &schema.Schema{
		Name:   "tpch",
		Tables: []*schema.Table{region, nation, customer, orders, lineitem},
		ForeignKeys: []schema.ForeignKey{
			{FromTable: "nation", FromColumn: "region_id", ToTable: "region", ToColumn: "id"},
			{FromTable: "customer", FromColumn: "nation_id", ToTable: "nation", ToColumn: "id"},
			{FromTable: "orders", FromColumn: "customer_id", ToTable: "customer", ToColumn: "id"},
			{FromTable: "lineitem", FromColumn: "orders_id", ToTable: "orders", ToColumn: "id"},
		},
	}
	for _, t := range s.Tables {
		t.ComputePages()
	}
	return populateFixed(s, 99991)
}

// populateFixed fills a hand-written schema deterministically. It reuses
// populate with a fixed correlated-column probability so fixed benchmark
// databases also exhibit cross-column correlation.
func populateFixed(s *schema.Schema, seed int64) (*storage.Database, error) {
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("datagen: fixed schema %s invalid: %w", s.Name, err)
	}
	rng := rand.New(rand.NewSource(seed))
	cfg := DefaultConfig()
	cfg.CorrelatedFrac = 0.35
	return populate(s, rng, cfg)
}
