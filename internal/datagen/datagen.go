// Package datagen generates synthetic relational databases: random schemas
// with foreign-key topologies, and column data drawn from a mix of uniform,
// Zipf, normal and correlated distributions.
//
// This substitutes for the paper's corpus of ~20 real-world databases
// (IMDB, SSB, ...). The zero-shot training recipe needs *diversity* — many
// schemas with different table counts, sizes, types, skew and correlation —
// so that the model learns system behaviour rather than one database's data
// distribution. Seeded generation keeps every experiment reproducible.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/zeroshot-db/zeroshot/internal/schema"
	"github.com/zeroshot-db/zeroshot/internal/storage"
)

// Config controls random database generation. The zero value is not valid;
// use DefaultConfig.
type Config struct {
	// MinTables and MaxTables bound the number of tables.
	MinTables, MaxTables int
	// MinRows and MaxRows bound per-table row counts. Fact tables (tables
	// with outgoing foreign keys) draw from the upper half of the range.
	MinRows, MaxRows int
	// MinCols and MaxCols bound the number of non-key columns per table.
	MinCols, MaxCols int
	// NullFracMax is the maximum NULL fraction assigned to nullable columns.
	NullFracMax float64
	// CorrelatedFrac is the probability that a numeric column is generated
	// as a noisy function of another column of the same table, which breaks
	// the optimizer's independence assumption (as real data does).
	CorrelatedFrac float64
}

// DefaultConfig returns generation bounds sized so that a corpus of a few
// dozen databases builds and executes in seconds on a laptop while still
// spanning two orders of magnitude in table size.
func DefaultConfig() Config {
	return Config{
		MinTables: 3, MaxTables: 8,
		MinRows: 500, MaxRows: 40000,
		MinCols: 2, MaxCols: 6,
		NullFracMax:    0.1,
		CorrelatedFrac: 0.3,
	}
}

// Generate builds a random database with the given name and seed.
func Generate(name string, seed int64, cfg Config) (*storage.Database, error) {
	rng := rand.New(rand.NewSource(seed))
	sch := randomSchema(name, rng, cfg)
	if err := sch.Validate(); err != nil {
		return nil, fmt.Errorf("datagen: generated invalid schema: %w", err)
	}
	return populate(sch, rng, cfg)
}

// randomSchema draws a schema with a random FK forest: table i>0 references
// one random earlier table, yielding a connected, acyclic join graph like
// the snowflake schemas of the paper's benchmark databases.
func randomSchema(name string, rng *rand.Rand, cfg Config) *schema.Schema {
	nTables := cfg.MinTables + rng.Intn(cfg.MaxTables-cfg.MinTables+1)
	s := &schema.Schema{Name: name}
	for ti := 0; ti < nTables; ti++ {
		tname := fmt.Sprintf("t%d", ti)
		tab := &schema.Table{Name: tname}
		tab.Columns = append(tab.Columns, schema.Column{
			Name: "id", Type: schema.TypeInt, PrimaryKey: true,
		})
		if ti > 0 {
			parent := rng.Intn(ti)
			fkCol := fmt.Sprintf("t%d_id", parent)
			tab.Columns = append(tab.Columns, schema.Column{Name: fkCol, Type: schema.TypeInt})
			s.ForeignKeys = append(s.ForeignKeys, schema.ForeignKey{
				FromTable: tname, FromColumn: fkCol,
				ToTable: fmt.Sprintf("t%d", parent), ToColumn: "id",
			})
		}
		nCols := cfg.MinCols + rng.Intn(cfg.MaxCols-cfg.MinCols+1)
		for ci := 0; ci < nCols; ci++ {
			col := schema.Column{Name: fmt.Sprintf("c%d", ci)}
			switch rng.Intn(3) {
			case 0:
				col.Type = schema.TypeInt
			case 1:
				col.Type = schema.TypeFloat
			case 2:
				col.Type = schema.TypeCategorical
			}
			if rng.Float64() < 0.3 {
				col.NullFrac = rng.Float64() * cfg.NullFracMax
			}
			tab.Columns = append(tab.Columns, col)
		}
		// Row counts: referenced (dimension) tables stay small, leaf (fact)
		// tables grow; log-uniform draw spans the configured range.
		logMin, logMax := math.Log(float64(cfg.MinRows)), math.Log(float64(cfg.MaxRows))
		tab.RowCount = int(math.Exp(logMin + rng.Float64()*(logMax-logMin)))
		tab.ComputePages()
		s.Tables = append(s.Tables, tab)
	}
	return s
}

// distKind enumerates value distributions for generated columns.
type distKind int

const (
	distUniform distKind = iota
	distZipf
	distNormal
)

// populate fills every table of the schema with data. Tables must be filled
// parents-first so that foreign keys can reference existing primary keys;
// randomSchema guarantees parents precede children.
func populate(s *schema.Schema, rng *rand.Rand, cfg Config) (*storage.Database, error) {
	db := storage.NewDatabase(s)
	for _, tm := range s.Tables {
		tab := storage.NewTable(tm)
		n := tm.RowCount
		for ci := range tm.Columns {
			col := &tm.Columns[ci]
			data := tab.Cols[ci]
			switch {
			case col.PrimaryKey:
				fillPrimaryKey(data, n)
				col.DistinctCount = n
			case isForeignKey(s, tm.Name, col.Name):
				parent := fkParent(s, tm.Name, col.Name)
				parentRows := s.Table(parent).RowCount
				fillForeignKey(data, n, parentRows, rng)
				col.DistinctCount = countDistinctInts(data.Ints)
			default:
				fillValueColumn(data, col, n, rng, cfg, tab)
				switch col.Type {
				case schema.TypeFloat:
					col.DistinctCount = countDistinctFloats(data.Floats)
				default:
					col.DistinctCount = countDistinctInts(data.Ints)
				}
			}
		}
		db.AddTable(tab)
	}
	return db, nil
}

func isForeignKey(s *schema.Schema, table, column string) bool {
	for _, fk := range s.ForeignKeys {
		if fk.FromTable == table && fk.FromColumn == column {
			return true
		}
	}
	return false
}

func fkParent(s *schema.Schema, table, column string) string {
	for _, fk := range s.ForeignKeys {
		if fk.FromTable == table && fk.FromColumn == column {
			return fk.ToTable
		}
	}
	return ""
}

func fillPrimaryKey(data *storage.ColumnData, n int) {
	data.Ints = make([]int64, n)
	for i := range data.Ints {
		data.Ints[i] = int64(i)
	}
}

// fillForeignKey draws child FK values referencing parent ids with a mild
// power-law skew (u^1.5 mapping), so that join fan-outs vary across parents
// as in real datasets without the head-of-Zipf blowup that would make
// unfiltered five-way star joins explode.
func fillForeignKey(data *storage.ColumnData, n, parentRows int, rng *rand.Rand) {
	data.Ints = make([]int64, n)
	if parentRows <= 0 {
		return
	}
	for i := range data.Ints {
		u := rng.Float64()
		v := int64(math.Pow(u, 1.7) * float64(parentRows))
		if v >= int64(parentRows) {
			v = int64(parentRows) - 1
		}
		data.Ints[i] = v
	}
}

func fillValueColumn(data *storage.ColumnData, col *schema.Column, n int, rng *rand.Rand, cfg Config, tab *storage.Table) {
	kind := distKind(rng.Intn(3))
	// Optionally correlate a numeric column with a previously generated
	// numeric column of the same table.
	var base *storage.ColumnData
	if col.Type.Numeric() && rng.Float64() < cfg.CorrelatedFrac {
		base = pickNumericColumn(tab, rng)
	}
	switch col.Type {
	case schema.TypeInt:
		data.Ints = make([]int64, n)
		domain := 10 + rng.Intn(2000)
		zipf := rand.NewZipf(rng, 1.2, 1.0, uint64(domain-1))
		for i := range data.Ints {
			switch {
			case base != nil:
				data.Ints[i] = int64(base.AsFloat(i)*0.5) + int64(rng.Intn(10))
			case kind == distZipf:
				data.Ints[i] = int64(zipf.Uint64())
			case kind == distNormal:
				data.Ints[i] = int64(rng.NormFloat64()*float64(domain)/6 + float64(domain)/2)
			default:
				data.Ints[i] = int64(rng.Intn(domain))
			}
		}
	case schema.TypeFloat:
		data.Floats = make([]float64, n)
		scale := math.Exp(rng.Float64() * 8) // spans ~1..3000
		for i := range data.Floats {
			switch {
			case base != nil:
				data.Floats[i] = base.AsFloat(i)*1.5 + rng.NormFloat64()*scale*0.05
			case kind == distNormal:
				data.Floats[i] = rng.NormFloat64()*scale + scale*2
			default:
				data.Floats[i] = rng.Float64() * scale
			}
		}
	case schema.TypeCategorical:
		data.Ints = make([]int64, n)
		domain := 2 + rng.Intn(40)
		zipf := rand.NewZipf(rng, 1.5, 1.0, uint64(domain-1))
		for i := range data.Ints {
			if kind == distUniform {
				data.Ints[i] = int64(rng.Intn(domain))
			} else {
				data.Ints[i] = int64(zipf.Uint64())
			}
		}
	}
	if col.NullFrac > 0 {
		data.Nulls = make([]bool, n)
		for i := range data.Nulls {
			if rng.Float64() < col.NullFrac {
				data.Nulls[i] = true
			}
		}
	}
}

func pickNumericColumn(tab *storage.Table, rng *rand.Rand) *storage.ColumnData {
	var candidates []*storage.ColumnData
	for i, c := range tab.Meta.Columns {
		if !c.Type.Numeric() || c.PrimaryKey {
			continue
		}
		if tab.Cols[i].Len() == 0 {
			continue // not yet generated
		}
		candidates = append(candidates, tab.Cols[i])
	}
	if len(candidates) == 0 {
		return nil
	}
	return candidates[rng.Intn(len(candidates))]
}

func countDistinctInts(vals []int64) int {
	set := make(map[int64]struct{}, 1024)
	for _, v := range vals {
		set[v] = struct{}{}
	}
	return len(set)
}

func countDistinctFloats(vals []float64) int {
	set := make(map[float64]struct{}, 1024)
	for _, v := range vals {
		set[v] = struct{}{}
	}
	return len(set)
}

// TrainingCorpus generates n databases with distinct seeds and names
// ("train00", "train01", ...). These play the role of the paper's 19
// training databases.
func TrainingCorpus(n int, seed int64, cfg Config) ([]*storage.Database, error) {
	dbs := make([]*storage.Database, 0, n)
	for i := 0; i < n; i++ {
		db, err := Generate(fmt.Sprintf("train%02d", i), seed+int64(i)*7919, cfg)
		if err != nil {
			return nil, err
		}
		dbs = append(dbs, db)
	}
	return dbs, nil
}
