package datagen

import (
	"math"
	"testing"

	"github.com/zeroshot-db/zeroshot/internal/schema"
	"github.com/zeroshot-db/zeroshot/internal/storage"
)

func TestGenerateProducesValidPopulatedDatabase(t *testing.T) {
	db, err := Generate("g1", 42, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Schema.Validate(); err != nil {
		t.Fatalf("generated schema invalid: %v", err)
	}
	for _, tm := range db.Schema.Tables {
		tab := db.Table(tm.Name)
		if tab == nil {
			t.Fatalf("table %s has no data", tm.Name)
		}
		if tab.Rows() != tm.RowCount {
			t.Fatalf("table %s: stored %d rows, schema says %d", tm.Name, tab.Rows(), tm.RowCount)
		}
		for ci, cm := range tm.Columns {
			if got := tab.Cols[ci].Len(); got != tm.RowCount {
				t.Fatalf("%s.%s: column length %d != rows %d", tm.Name, cm.Name, got, tm.RowCount)
			}
			if cm.DistinctCount <= 0 && tm.RowCount > 0 {
				t.Fatalf("%s.%s: DistinctCount = %d", tm.Name, cm.Name, cm.DistinctCount)
			}
		}
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	a, err := Generate("d", 7, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate("d", 7, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Schema.Tables) != len(b.Schema.Tables) {
		t.Fatalf("table counts differ: %d vs %d", len(a.Schema.Tables), len(b.Schema.Tables))
	}
	for i, tm := range a.Schema.Tables {
		ta, tb := a.Table(tm.Name), b.Table(tm.Name)
		if ta.Rows() != tb.Rows() {
			t.Fatalf("table %s row counts differ", tm.Name)
		}
		for ci := range tm.Columns {
			ca, cb := ta.Cols[ci], tb.Cols[ci]
			for r := 0; r < ta.Rows(); r++ {
				if ca.IsNull(r) != cb.IsNull(r) {
					t.Fatalf("table %d col %d row %d null mismatch", i, ci, r)
				}
				if !ca.IsNull(r) && ca.AsFloat(r) != cb.AsFloat(r) {
					t.Fatalf("table %d col %d row %d value mismatch", i, ci, r)
				}
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := Generate("x", 1, DefaultConfig())
	b, _ := Generate("x", 2, DefaultConfig())
	// Different seeds should (overwhelmingly) produce different schemas or
	// data; compare a cheap fingerprint.
	fp := func(db *storage.Database) int {
		sum := 0
		for _, tm := range db.Schema.Tables {
			sum = sum*31 + tm.RowCount + len(tm.Columns)
		}
		return sum
	}
	if fp(a) == fp(b) {
		t.Fatal("different seeds produced identical schema fingerprints")
	}
}

func TestForeignKeysReferenceExistingParents(t *testing.T) {
	db, err := Generate("fk", 11, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, fk := range db.Schema.ForeignKeys {
		child := db.Table(fk.FromTable)
		parentRows := db.Schema.Table(fk.ToTable).RowCount
		col := child.Col(fk.FromColumn)
		for r := 0; r < child.Rows(); r++ {
			if col.IsNull(r) {
				continue
			}
			v := col.Int(r)
			if v < 0 || v >= int64(parentRows) {
				t.Fatalf("%s.%s row %d references %d outside parent %s (%d rows)",
					fk.FromTable, fk.FromColumn, r, v, fk.ToTable, parentRows)
			}
		}
	}
}

func TestNullFracRespected(t *testing.T) {
	db, err := IMDBLike(0.2)
	if err != nil {
		t.Fatal(err)
	}
	tab := db.Table("title")
	ci := tab.Meta.ColumnIndex("season_nr")
	col := tab.Cols[ci]
	nulls := 0
	for r := 0; r < tab.Rows(); r++ {
		if col.IsNull(r) {
			nulls++
		}
	}
	frac := float64(nulls) / float64(tab.Rows())
	want := tab.Meta.Columns[ci].NullFrac
	if math.Abs(frac-want) > 0.05 {
		t.Fatalf("null fraction %v, want about %v", frac, want)
	}
}

func TestBenchmarkDatabases(t *testing.T) {
	cases := []struct {
		name  string
		build func(float64) (*storage.Database, error)
		want  []string
	}{
		{"imdb", IMDBLike, []string{"title", "movie_companies", "cast_info", "movie_info", "movie_keyword", "movie_info_idx"}},
		{"ssb", SSBLike, []string{"lineorder", "customer", "part", "supplier", "ddate"}},
		{"tpch", TPCHLike, []string{"region", "nation", "customer", "orders", "lineitem"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			db, err := c.build(0.1)
			if err != nil {
				t.Fatal(err)
			}
			if err := db.Schema.Validate(); err != nil {
				t.Fatal(err)
			}
			if db.Schema.Name != c.name {
				t.Fatalf("schema name = %s, want %s", db.Schema.Name, c.name)
			}
			for _, name := range c.want {
				if db.Table(name) == nil {
					t.Fatalf("missing table %s", name)
				}
			}
		})
	}
}

func TestBenchmarkDatabasesRejectBadScale(t *testing.T) {
	if _, err := IMDBLike(0); err == nil {
		t.Fatal("IMDBLike(0) succeeded")
	}
	if _, err := SSBLike(-1); err == nil {
		t.Fatal("SSBLike(-1) succeeded")
	}
	if _, err := TPCHLike(0); err == nil {
		t.Fatal("TPCHLike(0) succeeded")
	}
}

func TestTrainingCorpus(t *testing.T) {
	dbs, err := TrainingCorpus(4, 100, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(dbs) != 4 {
		t.Fatalf("got %d databases, want 4", len(dbs))
	}
	seen := map[string]bool{}
	for _, db := range dbs {
		if seen[db.Schema.Name] {
			t.Fatalf("duplicate database name %s", db.Schema.Name)
		}
		seen[db.Schema.Name] = true
	}
}

func TestScaleChangesRowCounts(t *testing.T) {
	small, _ := IMDBLike(0.1)
	big, _ := IMDBLike(0.5)
	if small.Table("title").Rows() >= big.Table("title").Rows() {
		t.Fatalf("scale not applied: %d >= %d", small.Table("title").Rows(), big.Table("title").Rows())
	}
}

func TestCategoricalDomainsBounded(t *testing.T) {
	db, err := Generate("cat", 33, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range db.Schema.Tables {
		tab := db.Table(tm.Name)
		for ci, cm := range tm.Columns {
			if cm.Type != schema.TypeCategorical {
				continue
			}
			if cm.DistinctCount > 64 {
				t.Fatalf("%s.%s: categorical distinct count %d too large", tm.Name, cm.Name, cm.DistinctCount)
			}
			col := tab.Cols[ci]
			for r := 0; r < tab.Rows(); r++ {
				if col.Int(r) < 0 {
					t.Fatalf("%s.%s: negative categorical code", tm.Name, cm.Name)
				}
			}
		}
	}
}
