package encoding

import "sync"

// Arena is the pooled graph-build scratch of the cold encoding path:
// nodes, feature vectors, child slices and graph headers are carved out
// of reusable chunked slabs instead of individual heap allocations, so
// a cold batch's transient graphs cost near-zero allocations at steady
// state. An Arena serves any number of EncodeArena calls; Release
// resets the carve cursors (retaining the slabs) and returns the arena
// to a package pool.
//
// The lifetime contract is strict: every Graph built through an arena
// — including all of its nodes and feature slices — is INVALID after
// Release, because the next holder of the arena will overwrite the
// slabs. Callers must therefore only arena-encode graphs that die with
// the batch (packed into an encoding.BatchGraph, which copies what it
// needs, then dropped). Graphs that escape — into an EncodedPlan memo,
// a training sample set, any cache — must use PlanEncoder.Encode,
// which heap-allocates as usual.
//
// An Arena is not safe for concurrent use; parallel encoders take one
// arena per worker.
type Arena struct {
	nodes  arenaSlab[GNode]
	feats  arenaSlab[float64]
	kids   arenaSlab[*GNode]
	graphs []*Graph // recycled headers; their Nodes backings are reused
	ng     int      // headers handed out since the last reset
	cols   map[string]*GNode
}

// Chunk sizes: one chunk comfortably holds a typical plan graph
// (tens of nodes, a few hundred features), so most encodes carve from
// already-allocated slabs.
const (
	arenaNodeChunk = 512
	arenaFeatChunk = 8192
	arenaKidChunk  = 1024
)

var arenaPool = sync.Pool{New: func() any {
	return &Arena{
		nodes: arenaSlab[GNode]{chunk: arenaNodeChunk},
		feats: arenaSlab[float64]{chunk: arenaFeatChunk},
		kids:  arenaSlab[*GNode]{chunk: arenaKidChunk},
		cols:  map[string]*GNode{},
	}
}}

// GetArena takes an arena from the package pool. Pair with Release.
func GetArena() *Arena { return arenaPool.Get().(*Arena) }

// Release resets the arena (keeping its slabs warm) and returns it to
// the pool. Every graph built through the arena is invalid afterwards.
func (a *Arena) Release() {
	a.nodes.reset()
	a.feats.reset()
	a.kids.reset()
	a.ng = 0
	clear(a.cols)
	arenaPool.Put(a)
}

// newGraph hands out a recycled Graph header with an empty node list.
func (a *Arena) newGraph() *Graph {
	if a.ng < len(a.graphs) {
		g := a.graphs[a.ng]
		a.ng++
		g.Root = nil
		g.Nodes = g.Nodes[:0]
		return g
	}
	g := &Graph{}
	a.graphs = append(a.graphs, g)
	a.ng++
	return g
}

// newNode carves one GNode with a zeroed featDim-wide feature vector
// and an empty child slice of capacity childCap. The child slice has a
// hard capacity bound (full-slice expression), so an append past
// childCap cannot bleed into a neighboring node's children.
func (a *Arena) newNode(t NodeType, featDim, childCap int) *GNode {
	n := &a.nodes.alloc(1)[0]
	feat := a.feats.alloc(featDim)
	clear(feat) // slabs are recycled; one-hot features rely on zeros
	n.Type = t
	n.Feat = feat
	if childCap > 0 {
		n.Children = a.kids.alloc(childCap)[:0]
	} else {
		n.Children = nil
	}
	return n
}

// colCache returns the arena's reusable column-node cache, cleared for
// a fresh encode.
func (a *Arena) colCache() map[string]*GNode {
	clear(a.cols)
	return a.cols
}

// arenaSlab carves fixed-size allocations out of a list of reusable
// chunks. reset rewinds the carve cursor without freeing chunks, so a
// warm slab allocates nothing.
type arenaSlab[T any] struct {
	bufs  [][]T
	cur   int // chunk currently being carved
	used  int // elements carved from bufs[cur]
	chunk int // preferred new-chunk size
}

// alloc returns a length-n, capacity-n slice backed by slab memory.
// Addresses are stable for the life of the slab (chunks never move).
func (s *arenaSlab[T]) alloc(n int) []T {
	for s.cur < len(s.bufs) {
		if len(s.bufs[s.cur])-s.used >= n {
			out := s.bufs[s.cur][s.used : s.used+n : s.used+n]
			s.used += n
			return out
		}
		s.cur++
		s.used = 0
	}
	size := s.chunk
	if n > size {
		size = n
	}
	s.bufs = append(s.bufs, make([]T, size))
	s.used = n
	return s.bufs[s.cur][:n:n]
}

func (s *arenaSlab[T]) reset() {
	s.cur = 0
	s.used = 0
}
