package encoding

import (
	"testing"

	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/query"
)

// graphsEqual compares two graphs structurally and bitwise: same node
// count, same topological order of node types, identical feature
// vectors, and identical child wiring (by node index).
func graphsEqual(t *testing.T, a, b *Graph) {
	t.Helper()
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatalf("node counts differ: %d vs %d", len(a.Nodes), len(b.Nodes))
	}
	aIdx := make(map[*GNode]int, len(a.Nodes))
	bIdx := make(map[*GNode]int, len(b.Nodes))
	for i := range a.Nodes {
		aIdx[a.Nodes[i]] = i
		bIdx[b.Nodes[i]] = i
	}
	for i := range a.Nodes {
		an, bn := a.Nodes[i], b.Nodes[i]
		if an.Type != bn.Type {
			t.Fatalf("node %d type %d vs %d", i, an.Type, bn.Type)
		}
		if len(an.Feat) != len(bn.Feat) {
			t.Fatalf("node %d feat dims %d vs %d", i, len(an.Feat), len(bn.Feat))
		}
		for j := range an.Feat {
			if an.Feat[j] != bn.Feat[j] {
				t.Fatalf("node %d feat[%d]: %v vs %v", i, j, an.Feat[j], bn.Feat[j])
			}
		}
		if len(an.Children) != len(bn.Children) {
			t.Fatalf("node %d children %d vs %d", i, len(an.Children), len(bn.Children))
		}
		for j := range an.Children {
			if aIdx[an.Children[j]] != bIdx[bn.Children[j]] {
				t.Fatalf("node %d child %d wired to %d vs %d", i, j, aIdx[an.Children[j]], bIdx[bn.Children[j]])
			}
		}
	}
	if aIdx[a.Root] != bIdx[b.Root] {
		t.Fatalf("roots differ: node %d vs %d", aIdx[a.Root], bIdx[b.Root])
	}
}

// TestEncodeArenaMatchesHeap pins the arena encode path bitwise against
// the heap path for a plan exercising every node type (scans, a join,
// predicates, an aggregate, shared column nodes).
func TestEncodeArenaMatchesHeap(t *testing.T) {
	db, err := datagen.IMDBLike(0.02)
	if err != nil {
		t.Fatal(err)
	}
	p := planFor(t, db, joinQuery(), false)
	enc := NewPlanEncoder(db.Schema, CardEstimated)

	heap, err := enc.Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	a := GetArena()
	defer a.Release()
	arena, err := enc.EncodeArena(a, p)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, heap, arena)
}

// TestArenaReuseAfterRelease checks the pool contract: an arena released
// and reacquired produces correct graphs again, and graphs built in the
// same arena before a Release never alias each other's features.
func TestArenaReuseAfterRelease(t *testing.T) {
	db, err := datagen.IMDBLike(0.02)
	if err != nil {
		t.Fatal(err)
	}
	q2 := &query.Query{
		Tables: []string{"title"},
		Filters: []query.Filter{
			{Col: query.ColumnRef{Table: "title", Column: "production_year"}, Op: query.OpLt, Value: 80},
		},
	}
	p1 := planFor(t, db, joinQuery(), false)
	p2 := planFor(t, db, q2, false)
	enc := NewPlanEncoder(db.Schema, CardEstimated)
	ref1, err := enc.Encode(p1)
	if err != nil {
		t.Fatal(err)
	}
	ref2, err := enc.Encode(p2)
	if err != nil {
		t.Fatal(err)
	}

	a := GetArena()
	// Two graphs in one arena: building the second must not disturb the
	// first (slab carving, column-cache reset between graphs).
	g1, err := enc.EncodeArena(a, p1)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := enc.EncodeArena(a, p2)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, ref1, g1)
	graphsEqual(t, ref2, g2)

	// Release and reacquire until we observe reuse of the same arena,
	// then re-encode and require the same bits — stale slab contents
	// from the previous cycle must never leak into new graphs.
	a.Release()
	b := GetArena()
	defer b.Release()
	g1, err = enc.EncodeArena(b, p1)
	if err != nil {
		t.Fatal(err)
	}
	g2, err = enc.EncodeArena(b, p2)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, ref1, g1)
	graphsEqual(t, ref2, g2)
}

// TestArenaSlabGrowth forces slab overflow (more nodes than one chunk)
// and checks pointers stay valid — chunked slabs must never reallocate
// memory already handed out.
func TestArenaSlabGrowth(t *testing.T) {
	db, err := datagen.IMDBLike(0.02)
	if err != nil {
		t.Fatal(err)
	}
	p := planFor(t, db, joinQuery(), false)
	enc := NewPlanEncoder(db.Schema, CardEstimated)
	ref, err := enc.Encode(p)
	if err != nil {
		t.Fatal(err)
	}

	a := GetArena()
	defer a.Release()
	// Encode enough copies to spill every slab across chunk boundaries.
	var graphs []*Graph
	for i := 0; i < 200; i++ {
		g, err := enc.EncodeArena(a, p)
		if err != nil {
			t.Fatal(err)
		}
		graphs = append(graphs, g)
	}
	for _, g := range graphs {
		graphsEqual(t, ref, g)
	}
}
