package encoding

import "fmt"

// BatchGraph packs N encoded query graphs into one disjoint super-graph
// so a graph network can run message passing and the per-graph readout
// vectorized over the whole batch — one fused forward pass instead of N.
//
// The packing layout:
//
//   - Node features concatenate per node type: Feats[t] is the row-major
//     (TypeCount[t] x FeatDim(t)) matrix of every type-t node across all
//     graphs, so each node-type encoder MLP runs once on its whole slab.
//   - Nodes get global indices in graph-major order, preserving each
//     graph's topological order (children before parents). Types[i] and
//     TypeRow[i] locate node i's feature row; edges are offset-shifted
//     into these global indices and stored in CSR form
//     (ChildStart/Children).
//   - GraphStart is the per-graph segment index: graph g owns global
//     nodes [GraphStart[g], GraphStart[g+1]), and Roots[g] is its root —
//     what the readout (or a flat-sum pooling) gathers per graph.
//   - Combine steps are grouped by topological level (leaves are level
//     0; a parent sits one above its deepest child), so every node of a
//     level runs through the combine MLP in one fused call. LevelOrder
//     lists the nodes with children, level by level ascending, with
//     LevelStart marking the segments; within a level nodes keep global
//     order, which makes the fused execution order deterministic.
//
// Because all rows of a slab go through the exact same per-row tensor
// operations, a packed forward pass is bitwise identical to running the
// member graphs one at a time.
type BatchGraph struct {
	NumGraphs int
	NumNodes  int

	// Feats[t] holds TypeCount[t] rows of FeatDim(t) features.
	Feats     [NumNodeTypes][]float64
	TypeCount [NumNodeTypes]int

	// Per global node: type, row within the type slab.
	Types   []NodeType
	TypeRow []int32

	// CSR edges in global indices: children of node i are
	// Children[ChildStart[i]:ChildStart[i+1]].
	ChildStart []int32
	Children   []int32

	// Per-graph segments and roots.
	GraphStart []int32 // len NumGraphs+1
	Roots      []int32 // len NumGraphs

	// Level grouping of nodes that have children (level >= 1).
	LevelOrder []int32
	LevelStart []int32 // level k's segment is [LevelStart[k-1], LevelStart[k])

	// scratch reused across repacks
	levels []int32
	counts []int32
	index  map[*GNode]int32
}

// Pack packs graphs into a fresh BatchGraph. Use the method form on a
// retained BatchGraph to reuse its buffers across batches.
func Pack(gs []*Graph) *BatchGraph {
	bg := new(BatchGraph)
	bg.Pack(gs)
	return bg
}

// Pack repacks bg from the graphs, reusing previously grown buffers so
// steady-state packing allocates nothing. Graphs must come from
// PlanEncoder.Encode (topological node order, root set); violations are
// programming errors and panic.
func (bg *BatchGraph) Pack(gs []*Graph) {
	bg.NumGraphs = len(gs)
	bg.Types = bg.Types[:0]
	bg.TypeRow = bg.TypeRow[:0]
	bg.ChildStart = bg.ChildStart[:0]
	bg.Children = bg.Children[:0]
	bg.GraphStart = append(bg.GraphStart[:0], 0)
	bg.Roots = bg.Roots[:0]
	bg.levels = bg.levels[:0]
	for t := range bg.Feats {
		bg.Feats[t] = bg.Feats[t][:0]
		bg.TypeCount[t] = 0
	}
	if bg.index == nil {
		bg.index = map[*GNode]int32{}
	}
	maxLevel := int32(0)
	for gi, g := range gs {
		if g == nil || g.Root == nil || len(g.Nodes) == 0 {
			panic(fmt.Sprintf("encoding: Pack: graph %d has no nodes", gi))
		}
		clear(bg.index)
		for _, n := range g.Nodes {
			dim := FeatDim(n.Type)
			if len(n.Feat) != dim {
				panic(fmt.Sprintf("encoding: Pack: node feature width %d, want %d", len(n.Feat), dim))
			}
			i := int32(len(bg.Types))
			bg.index[n] = i
			bg.Types = append(bg.Types, n.Type)
			bg.TypeRow = append(bg.TypeRow, int32(bg.TypeCount[n.Type]))
			bg.TypeCount[n.Type]++
			bg.Feats[n.Type] = append(bg.Feats[n.Type], n.Feat...)
			bg.ChildStart = append(bg.ChildStart, int32(len(bg.Children)))
			lvl := int32(0)
			for _, c := range n.Children {
				ci, ok := bg.index[c]
				if !ok {
					panic(fmt.Sprintf("encoding: Pack: graph %d is not in topological order", gi))
				}
				bg.Children = append(bg.Children, ci)
				if l := bg.levels[ci] + 1; l > lvl {
					lvl = l
				}
			}
			bg.levels = append(bg.levels, lvl)
			if lvl > maxLevel {
				maxLevel = lvl
			}
		}
		root, ok := bg.index[g.Root]
		if !ok {
			panic(fmt.Sprintf("encoding: Pack: graph %d root missing from Nodes", gi))
		}
		bg.Roots = append(bg.Roots, root)
		bg.GraphStart = append(bg.GraphStart, int32(len(bg.Types)))
	}
	// Drop the last graph's node pointers so a pooled BatchGraph does
	// not pin its final plan graph between batches.
	clear(bg.index)
	bg.NumNodes = len(bg.Types)
	bg.ChildStart = append(bg.ChildStart, int32(len(bg.Children)))

	// Counting sort of level>=1 nodes into LevelOrder, stable in global
	// order within a level.
	bg.counts = bg.counts[:0]
	for k := int32(0); k <= maxLevel; k++ {
		bg.counts = append(bg.counts, 0)
	}
	for _, l := range bg.levels {
		bg.counts[l]++
	}
	bg.LevelStart = append(bg.LevelStart[:0], 0)
	run := int32(0)
	for k := int32(1); k <= maxLevel; k++ {
		n := bg.counts[k]
		bg.counts[k] = run // repurpose as the level's write cursor
		run += n
		bg.LevelStart = append(bg.LevelStart, run)
	}
	if cap(bg.LevelOrder) < int(run) {
		bg.LevelOrder = make([]int32, run)
	} else {
		bg.LevelOrder = bg.LevelOrder[:run]
	}
	for i, l := range bg.levels {
		if l > 0 {
			bg.LevelOrder[bg.counts[l]] = int32(i)
			bg.counts[l]++
		}
	}
}

// NumLevels returns the number of combine levels (0 when no node has
// children).
func (bg *BatchGraph) NumLevels() int { return len(bg.LevelStart) - 1 }

// Level returns the global indices of level-k nodes (k in
// [1, NumLevels()]), every one of which has at least one child.
func (bg *BatchGraph) Level(k int) []int32 {
	return bg.LevelOrder[bg.LevelStart[k-1]:bg.LevelStart[k]]
}

// ChildrenOf returns node i's children as global indices, in the
// original per-graph child order.
func (bg *BatchGraph) ChildrenOf(i int32) []int32 {
	return bg.Children[bg.ChildStart[i]:bg.ChildStart[i+1]]
}
