package encoding

import (
	"reflect"
	"testing"
)

// bgLeaf builds a childless node of type tp with every feature set to
// fill, so slab rows are recognizable after packing.
func bgLeaf(tp NodeType, fill float64) *GNode {
	f := make([]float64, FeatDim(tp))
	for i := range f {
		f[i] = fill
	}
	return &GNode{Type: tp, Feat: f}
}

// bgNode builds a node with children (already in some graph's Nodes).
func bgNode(tp NodeType, fill float64, children ...*GNode) *GNode {
	n := bgLeaf(tp, fill)
	n.Children = children
	return n
}

// twoTestGraphs returns a shallow graph (op over a table) and a deeper
// one (op over op over table+pred, pred over a shared column).
func twoTestGraphs() (*Graph, *Graph) {
	t1 := bgLeaf(TableNode, 1)
	o1 := bgNode(OpNode, 2, t1)
	g1 := &Graph{Root: o1, Nodes: []*GNode{t1, o1}}

	t2 := bgLeaf(TableNode, 3)
	c2 := bgLeaf(ColumnNode, 4)
	p2 := bgNode(PredNode, 5, c2)
	o2 := bgNode(OpNode, 6, t2, p2)
	o3 := bgNode(OpNode, 7, o2)
	g2 := &Graph{Root: o3, Nodes: []*GNode{t2, c2, p2, o2, o3}}
	return g1, g2
}

func TestPackLayout(t *testing.T) {
	g1, g2 := twoTestGraphs()
	bg := Pack([]*Graph{g1, g2})

	if bg.NumGraphs != 2 || bg.NumNodes != 7 {
		t.Fatalf("packed %d graphs / %d nodes, want 2 / 7", bg.NumGraphs, bg.NumNodes)
	}
	if got := bg.TypeCount; got[TableNode] != 2 || got[OpNode] != 3 || got[ColumnNode] != 1 || got[PredNode] != 1 || got[AggNode] != 0 {
		t.Fatalf("type counts = %v", got)
	}
	if !reflect.DeepEqual(bg.GraphStart, []int32{0, 2, 7}) {
		t.Fatalf("GraphStart = %v", bg.GraphStart)
	}
	if !reflect.DeepEqual(bg.Roots, []int32{1, 6}) {
		t.Fatalf("Roots = %v", bg.Roots)
	}
	// Every node's slab row must hold exactly its feature vector.
	for i := 0; i < bg.NumNodes; i++ {
		tp := bg.Types[i]
		dim := FeatDim(tp)
		row := bg.Feats[tp][int(bg.TypeRow[i])*dim : (int(bg.TypeRow[i])+1)*dim]
		var want *GNode
		if i < 2 {
			want = g1.Nodes[i]
		} else {
			want = g2.Nodes[i-2]
		}
		if !reflect.DeepEqual(row, want.Feat) {
			t.Fatalf("node %d slab row = %v, want %v", i, row, want.Feat)
		}
	}
	// Edges are offset-shifted into global indices: g2's root (global 6)
	// points at g2's inner op (global 5), which points at table 2 and
	// pred 4.
	if !reflect.DeepEqual(bg.ChildrenOf(6), []int32{5}) {
		t.Fatalf("children of 6 = %v", bg.ChildrenOf(6))
	}
	if !reflect.DeepEqual(bg.ChildrenOf(5), []int32{2, 4}) {
		t.Fatalf("children of 5 = %v", bg.ChildrenOf(5))
	}
	if len(bg.ChildrenOf(0)) != 0 {
		t.Fatalf("leaf 0 has children %v", bg.ChildrenOf(0))
	}
}

func TestPackLevels(t *testing.T) {
	g1, g2 := twoTestGraphs()
	bg := Pack([]*Graph{g1, g2})

	// Levels: g1 op = 1; g2 pred = 1, inner op = 2, root op = 3.
	if bg.NumLevels() != 3 {
		t.Fatalf("NumLevels = %d, want 3", bg.NumLevels())
	}
	seen := map[int32]int{}
	for lvl := 1; lvl <= bg.NumLevels(); lvl++ {
		for _, i := range bg.Level(lvl) {
			if len(bg.ChildrenOf(i)) == 0 {
				t.Fatalf("level %d node %d has no children", lvl, i)
			}
			seen[i] = lvl
			for _, c := range bg.ChildrenOf(i) {
				if cl, ok := seen[c]; ok && cl >= lvl {
					t.Fatalf("child %d (level %d) not below parent %d (level %d)", c, cl, i, lvl)
				}
			}
		}
	}
	if !reflect.DeepEqual(bg.Level(1), []int32{1, 4}) { // within-level global order
		t.Fatalf("Level(1) = %v", bg.Level(1))
	}
	if !reflect.DeepEqual(bg.Level(2), []int32{5}) || !reflect.DeepEqual(bg.Level(3), []int32{6}) {
		t.Fatalf("Level(2)/Level(3) = %v / %v", bg.Level(2), bg.Level(3))
	}
	// Exactly the nodes with children are level-ordered.
	withChildren := 0
	for i := int32(0); i < int32(bg.NumNodes); i++ {
		if len(bg.ChildrenOf(i)) > 0 {
			withChildren++
		}
	}
	if len(bg.LevelOrder) != withChildren {
		t.Fatalf("LevelOrder holds %d nodes, want %d", len(bg.LevelOrder), withChildren)
	}
}

// TestPackReusesBuffers repacks one BatchGraph across batches of
// different shapes and checks every repack matches a fresh Pack — the
// slab-reuse path must not leak state between batches.
func TestPackReusesBuffers(t *testing.T) {
	g1, g2 := twoTestGraphs()
	batches := [][]*Graph{
		{g1, g2},
		{g2},
		{g1},
		{g2, g2, g1},
	}
	// sameVals compares content, treating a truncated reused slab and a
	// fresh nil slab as equal.
	sameVals := func(a, b []float64) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	reused := new(BatchGraph)
	for bi, gs := range batches {
		reused.Pack(gs)
		fresh := Pack(gs)
		got, want := *reused, *fresh
		for tp := range got.Feats {
			if !sameVals(got.Feats[tp], want.Feats[tp]) {
				t.Fatalf("repack %d type %d slab = %v, want %v", bi, tp, got.Feats[tp], want.Feats[tp])
			}
		}
		// Scratch fields are private state; compare the packed layout.
		if got.NumGraphs != want.NumGraphs || got.NumNodes != want.NumNodes ||
			got.TypeCount != want.TypeCount ||
			!reflect.DeepEqual(got.Types, want.Types) ||
			!reflect.DeepEqual(got.TypeRow, want.TypeRow) ||
			!reflect.DeepEqual(got.ChildStart, want.ChildStart) ||
			!reflect.DeepEqual(got.Children, want.Children) ||
			!reflect.DeepEqual(got.GraphStart, want.GraphStart) ||
			!reflect.DeepEqual(got.Roots, want.Roots) ||
			!reflect.DeepEqual(got.LevelOrder, want.LevelOrder) ||
			!reflect.DeepEqual(got.LevelStart, want.LevelStart) {
			t.Fatalf("repack %d diverges from fresh pack:\n got %+v\nwant %+v", bi, got, want)
		}
	}
}

func TestPackPanics(t *testing.T) {
	mustPanic := func(name string, gs []*Graph) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("Pack(%s) did not panic", name)
			}
		}()
		Pack(gs)
	}
	mustPanic("empty graph", []*Graph{{}})

	// Parent listed before its child violates topological order.
	leaf := bgLeaf(TableNode, 1)
	root := bgNode(OpNode, 2, leaf)
	mustPanic("non-topological", []*Graph{{Root: root, Nodes: []*GNode{root, leaf}}})

	// Feature width must match the node type.
	bad := &GNode{Type: TableNode, Feat: make([]float64, 1)}
	mustPanic("bad feature width", []*Graph{{Root: bad, Nodes: []*GNode{bad}}})
}
