package encoding

import (
	"testing"

	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/optimizer"
	"github.com/zeroshot-db/zeroshot/internal/plan"
	"github.com/zeroshot-db/zeroshot/internal/query"
	"github.com/zeroshot-db/zeroshot/internal/stats"
)

// BenchmarkEncodePlan measures graph-encoding latency per plan.
func BenchmarkEncodePlan(b *testing.B) {
	db, err := datagen.IMDBLike(0.02)
	if err != nil {
		b.Fatal(err)
	}
	st := stats.Collect(db, stats.DefaultBuckets, stats.DefaultMCVs)
	opt := optimizer.New(db.Schema, st, nil, optimizer.DefaultCostParams())
	qs, err := query.Synthetic(db, 20, 3)
	if err != nil {
		b.Fatal(err)
	}
	plans := make([]*plan.Node, 0, len(qs))
	for _, q := range qs {
		p, err := opt.Plan(q)
		if err != nil {
			b.Fatal(err)
		}
		plans = append(plans, p)
	}
	enc := NewPlanEncoder(db.Schema, CardEstimated)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(plans[i%len(plans)]); err != nil {
			b.Fatal(err)
		}
	}
}
