package encoding

import (
	"testing"

	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/engine"
	"github.com/zeroshot-db/zeroshot/internal/optimizer"
	"github.com/zeroshot-db/zeroshot/internal/plan"
	"github.com/zeroshot-db/zeroshot/internal/query"
	"github.com/zeroshot-db/zeroshot/internal/stats"
	"github.com/zeroshot-db/zeroshot/internal/storage"
)

func planFor(t *testing.T, db *storage.Database, q *query.Query, exec bool) *plan.Node {
	t.Helper()
	st := stats.Collect(db, stats.DefaultBuckets, stats.DefaultMCVs)
	opt := optimizer.New(db.Schema, st, nil, optimizer.DefaultCostParams())
	p, err := opt.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if exec {
		if _, err := engine.New(db, engine.Config{}).Execute(p); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func joinQuery() *query.Query {
	return &query.Query{
		Tables: []string{"title", "movie_companies"},
		Joins: []query.Join{{
			Left:  query.ColumnRef{Table: "movie_companies", Column: "movie_id"},
			Right: query.ColumnRef{Table: "title", Column: "id"},
		}},
		Filters: []query.Filter{
			{Col: query.ColumnRef{Table: "title", Column: "production_year"}, Op: query.OpGt, Value: 50},
			{Col: query.ColumnRef{Table: "movie_companies", Column: "company_type_id"}, Op: query.OpEq, Value: 1},
		},
		Aggregates: []query.Aggregate{
			{Func: query.AggMin, Col: query.ColumnRef{Table: "title", Column: "production_year"}},
		},
	}
}

func TestEncodeProducesAllNodeTypes(t *testing.T) {
	db, err := datagen.IMDBLike(0.02)
	if err != nil {
		t.Fatal(err)
	}
	p := planFor(t, db, joinQuery(), false)
	g, err := NewPlanEncoder(db.Schema, CardEstimated).Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[NodeType]int{}
	for _, n := range g.Nodes {
		counts[n.Type]++
		if len(n.Feat) != FeatDim(n.Type) {
			t.Fatalf("node type %d has %d features, want %d", n.Type, len(n.Feat), FeatDim(n.Type))
		}
	}
	if counts[OpNode] < 4 { // 2 scans, 1 join, 1 agg
		t.Fatalf("op nodes = %d, want >= 4", counts[OpNode])
	}
	if counts[TableNode] != 2 {
		t.Fatalf("table nodes = %d, want 2", counts[TableNode])
	}
	if counts[PredNode] != 2 {
		t.Fatalf("pred nodes = %d, want 2", counts[PredNode])
	}
	if counts[AggNode] != 1 {
		t.Fatalf("agg nodes = %d, want 1", counts[AggNode])
	}
	if counts[ColumnNode] == 0 {
		t.Fatal("no column nodes")
	}
	if g.Root == nil || g.Root.Type != OpNode {
		t.Fatal("root is not an operator node")
	}
}

func TestTopologicalOrder(t *testing.T) {
	db, _ := datagen.IMDBLike(0.02)
	p := planFor(t, db, joinQuery(), false)
	g, err := NewPlanEncoder(db.Schema, CardEstimated).Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[*GNode]bool{}
	for _, n := range g.Nodes {
		for _, c := range n.Children {
			if !seen[c] {
				t.Fatal("child appears after parent in Nodes order")
			}
		}
		if seen[n] {
			t.Fatal("node listed twice")
		}
		seen[n] = true
	}
	if g.Nodes[len(g.Nodes)-1] != g.Root {
		t.Fatal("root is not last in topological order")
	}
}

func TestColumnNodesShared(t *testing.T) {
	// Two predicates on the same column must share one column node (DAG).
	db, _ := datagen.IMDBLike(0.02)
	q := &query.Query{
		Tables: []string{"title"},
		Filters: []query.Filter{
			{Col: query.ColumnRef{Table: "title", Column: "production_year"}, Op: query.OpGt, Value: 10},
			{Col: query.ColumnRef{Table: "title", Column: "production_year"}, Op: query.OpLt, Value: 90},
		},
		Aggregates: []query.Aggregate{
			{Func: query.AggMax, Col: query.ColumnRef{Table: "title", Column: "production_year"}},
		},
	}
	p := planFor(t, db, q, false)
	g, err := NewPlanEncoder(db.Schema, CardEstimated).Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	colCount := 0
	for _, n := range g.Nodes {
		if n.Type == ColumnNode {
			colCount++
		}
	}
	if colCount != 1 {
		t.Fatalf("column nodes = %d, want 1 (shared)", colCount)
	}
}

func TestCardSources(t *testing.T) {
	db, _ := datagen.IMDBLike(0.02)
	p := planFor(t, db, joinQuery(), true)

	gEst, err := NewPlanEncoder(db.Schema, CardEstimated).Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	gExact, err := NewPlanEncoder(db.Schema, CardExact).Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	gNone, err := NewPlanEncoder(db.Schema, CardNone).Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	cardAt := plan.NumOperators + 1
	anyDiffer := false
	for i := range gEst.Nodes {
		if gEst.Nodes[i].Type != OpNode {
			continue
		}
		if gNone.Nodes[i].Feat[cardAt] != 0 {
			t.Fatal("CardNone left a cardinality feature set")
		}
		if gEst.Nodes[i].Feat[cardAt] != gExact.Nodes[i].Feat[cardAt] {
			anyDiffer = true
		}
	}
	if !anyDiffer {
		t.Fatal("estimated and exact cardinality features identical everywhere — estimates suspiciously perfect")
	}
}

func TestCardExactRequiresExecution(t *testing.T) {
	db, _ := datagen.IMDBLike(0.02)
	p := planFor(t, db, joinQuery(), false)
	if _, err := NewPlanEncoder(db.Schema, CardExact).Encode(p); err == nil {
		t.Fatal("CardExact accepted an unexecuted plan")
	}
}

// TestTransferability is the core property of the paper: encoding the
// "same-shaped" query on two different databases yields features with
// identical dimensions and identical semantics per position.
func TestTransferability(t *testing.T) {
	imdb, _ := datagen.IMDBLike(0.02)
	ssb, _ := datagen.SSBLike(0.02)

	qImdb := &query.Query{
		Tables:     []string{"title"},
		Filters:    []query.Filter{{Col: query.ColumnRef{Table: "title", Column: "production_year"}, Op: query.OpGt, Value: 10}},
		Aggregates: []query.Aggregate{{Func: query.AggCount}},
	}
	qSsb := &query.Query{
		Tables:     []string{"lineorder"},
		Filters:    []query.Filter{{Col: query.ColumnRef{Table: "lineorder", Column: "quantity"}, Op: query.OpGt, Value: 10}},
		Aggregates: []query.Aggregate{{Func: query.AggCount}},
	}
	p1 := planFor(t, imdb, qImdb, false)
	p2 := planFor(t, ssb, qSsb, false)
	g1, err := NewPlanEncoder(imdb.Schema, CardEstimated).Encode(p1)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewPlanEncoder(ssb.Schema, CardEstimated).Encode(p2)
	if err != nil {
		t.Fatal(err)
	}
	if len(g1.Nodes) != len(g2.Nodes) {
		t.Fatalf("structurally identical queries produced %d vs %d nodes", len(g1.Nodes), len(g2.Nodes))
	}
	for i := range g1.Nodes {
		if g1.Nodes[i].Type != g2.Nodes[i].Type {
			t.Fatalf("node %d type differs", i)
		}
		if len(g1.Nodes[i].Feat) != len(g2.Nodes[i].Feat) {
			t.Fatalf("node %d feature dim differs", i)
		}
	}
	// Same one-hot segments (operator identity, predicate op, data type)
	// must match; magnitude features (row counts) may differ.
	for i := range g1.Nodes {
		n1, n2 := g1.Nodes[i], g2.Nodes[i]
		if n1.Type == OpNode {
			for j := 0; j < plan.NumOperators; j++ {
				if n1.Feat[j] != n2.Feat[j] {
					t.Fatalf("op one-hot differs at node %d", i)
				}
			}
		}
		if n1.Type == PredNode {
			for j := range n1.Feat {
				if n1.Feat[j] != n2.Feat[j] {
					t.Fatalf("predicate features differ at node %d", i)
				}
			}
		}
	}
}

func TestVocabDeterministicAndBounded(t *testing.T) {
	db, _ := datagen.IMDBLike(0.02)
	v1 := NewVocab(db.Schema)
	v2 := NewVocab(db.Schema)
	for _, tm := range db.Schema.Tables {
		if v1.TableSlot(tm.Name) != v2.TableSlot(tm.Name) {
			t.Fatal("vocab not deterministic")
		}
		if v1.TableSlot(tm.Name) >= MaxVocabTables {
			t.Fatal("table slot out of range")
		}
		for _, cm := range tm.Columns {
			if v1.ColumnSlot(tm.Name, cm.Name) >= MaxVocabColumns {
				t.Fatal("column slot out of range")
			}
		}
	}
}

func TestMSCNFeaturization(t *testing.T) {
	db, _ := datagen.IMDBLike(0.02)
	st := stats.Collect(db, stats.DefaultBuckets, stats.DefaultMCVs)
	f := NewMSCNFeaturizer(NewVocab(db.Schema), st)
	q := joinQuery()
	feats := f.Featurize(q)
	if len(feats.Tables) != 2 || len(feats.Joins) != 1 || len(feats.Preds) != 2 {
		t.Fatalf("set sizes: tables=%d joins=%d preds=%d", len(feats.Tables), len(feats.Joins), len(feats.Preds))
	}
	for _, v := range feats.Preds {
		if len(v) != MSCNPredDim {
			t.Fatalf("pred dim %d, want %d", len(v), MSCNPredDim)
		}
		lit := v[MSCNPredDim-1]
		if lit < 0 || lit > 1 {
			t.Fatalf("literal not normalized: %v", lit)
		}
	}
	// One-hot sanity: exactly one table bit set per vector.
	for _, v := range feats.Tables {
		ones := 0
		for _, x := range v {
			if x == 1 {
				ones++
			}
		}
		if ones != 1 {
			t.Fatalf("table vector has %d ones", ones)
		}
	}
}

func TestE2EFeaturizationTreeShape(t *testing.T) {
	db, _ := datagen.IMDBLike(0.02)
	st := stats.Collect(db, stats.DefaultBuckets, stats.DefaultMCVs)
	p := planFor(t, db, joinQuery(), false)
	f := NewE2EFeaturizer(NewVocab(db.Schema), st)
	root := f.Featurize(p)
	var count func(*E2ENode) int
	count = func(n *E2ENode) int {
		c := 1
		for _, ch := range n.Children {
			c += count(ch)
		}
		return c
	}
	if got, want := count(root), p.Count(); got != want {
		t.Fatalf("E2E tree has %d nodes, plan has %d", got, want)
	}
	if len(root.Feat) != E2ENodeDim {
		t.Fatalf("E2E node dim %d, want %d", len(root.Feat), E2ENodeDim)
	}
}

// TestOneHotNotTransferable documents the failure mode the paper fixes:
// the same vocabulary applied to a different database maps different
// tables onto the same one-hot slots.
func TestOneHotNotTransferable(t *testing.T) {
	imdb, _ := datagen.IMDBLike(0.02)
	ssb, _ := datagen.SSBLike(0.02)
	vImdb := NewVocab(imdb.Schema)
	vSsb := NewVocab(ssb.Schema)
	// Slot 0 means "cast_info" on IMDB but "customer" on SSB.
	if vImdb.TableSlot("cast_info") != vSsb.TableSlot("customer") {
		t.Skip("sorted orders happen to differ; the collision below still demonstrates the point")
	}
	if vImdb.TableSlot("cast_info") != 0 || vSsb.TableSlot("customer") != 0 {
		t.Fatalf("expected slot 0 collisions, got %d and %d",
			vImdb.TableSlot("cast_info"), vSsb.TableSlot("customer"))
	}
}

func TestWithHardwareDoesNotMutateOriginal(t *testing.T) {
	db, _ := datagen.IMDBLike(0.02)
	p := planFor(t, db, joinQuery(), false)
	base := NewPlanEncoder(db.Schema, CardEstimated)
	hw := base.WithHardware(Hardware{RelCPU: 2, RelSeqIO: 2, RelRandIO: 2, CacheMB: 4, BufferPoolPages: 512})

	gBase, err := base.Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	gHW, err := hw.Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	hwStart := plan.NumOperators + 4
	for i, n := range gBase.Nodes {
		if n.Type != OpNode {
			continue
		}
		for j := hwStart; j < OpFeatDim; j++ {
			if n.Feat[j] != 0 {
				t.Fatalf("base encoder has hardware feature set at node %d", i)
			}
		}
		set := false
		for j := hwStart; j < OpFeatDim; j++ {
			if gHW.Nodes[i].Feat[j] != 0 {
				set = true
			}
		}
		if !set {
			t.Fatalf("hardware encoder left features zero at node %d", i)
		}
	}
}

func TestHardwareZeroValueIsAllZeros(t *testing.T) {
	db, _ := datagen.IMDBLike(0.02)
	p := planFor(t, db, joinQuery(), false)
	a, err := NewPlanEncoder(db.Schema, CardEstimated).Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPlanEncoder(db.Schema, CardEstimated).WithHardware(Hardware{}).Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Nodes {
		for j := range a.Nodes[i].Feat {
			if a.Nodes[i].Feat[j] != b.Nodes[i].Feat[j] {
				t.Fatal("zero Hardware changed features")
			}
		}
	}
}
