// Package encoding implements query featurization:
//
//   - the paper's transferable graph encoding (Figure 2): the entire query
//     is a graph of plan-operator, table, column, predicate and aggregate
//     nodes, each annotated with features that keep their meaning on any
//     database (data types, row/page counts, cardinalities) — never names
//     or one-hot column identities;
//   - the non-transferable one-hot featurizations used by the
//     workload-driven baselines (MSCN and E2E), kept faithful to their
//     originals precisely because their failure to transfer is the paper's
//     motivation.
package encoding

import (
	"fmt"
	"math"
	"sync"

	"github.com/zeroshot-db/zeroshot/internal/plan"
	"github.com/zeroshot-db/zeroshot/internal/query"
	"github.com/zeroshot-db/zeroshot/internal/schema"
)

// NodeType enumerates graph node kinds of the zero-shot encoding.
type NodeType int

const (
	// OpNode is a physical plan operator.
	OpNode NodeType = iota
	// TableNode is a base table with transferable statistics features.
	TableNode
	// ColumnNode is a column with data-type features.
	ColumnNode
	// PredNode is a filter predicate (structure only — no literal values,
	// per the separation-of-concerns principle of Section 2.2).
	PredNode
	// AggNode is one aggregate expression.
	AggNode
)

// NumNodeTypes is the number of graph node kinds.
const NumNodeTypes = 5

// HWFeatDim is the width of the optional hardware descriptor appended to
// every operator node (zero when no hardware is specified), enabling the
// Section 4.3 extension: predicting runtimes on unseen hardware.
const HWFeatDim = 5

// Feature vector dimensions per node type.
const (
	// OpFeatDim: operator one-hot, lookup-join flag, log cardinality,
	// log width, log index height, hardware descriptor.
	OpFeatDim = plan.NumOperators + 4 + HWFeatDim
	// TableFeatDim: log rows, log pages, log row width.
	TableFeatDim = 3
	// ColumnFeatDim: data-type one-hot, log distinct, null fraction,
	// width/16.
	ColumnFeatDim = schema.NumDataTypes + 3
	// PredFeatDim: comparison-operator one-hot.
	PredFeatDim = query.NumCmpOps
	// AggFeatDim: aggregate-function one-hot.
	AggFeatDim = query.NumAggFuncs
)

// FeatDim returns the feature dimensionality of a node type.
func FeatDim(t NodeType) int {
	switch t {
	case OpNode:
		return OpFeatDim
	case TableNode:
		return TableFeatDim
	case ColumnNode:
		return ColumnFeatDim
	case PredNode:
		return PredFeatDim
	case AggNode:
		return AggFeatDim
	default:
		panic(fmt.Sprintf("encoding: unknown node type %d", int(t)))
	}
}

// GNode is one node of the encoded query graph. Children point *into* the
// node: hidden states flow child -> parent, and the plan root is the graph
// root (the paper's bottom-up message passing on the DAG).
type GNode struct {
	Type     NodeType
	Feat     []float64
	Children []*GNode
}

// Graph is an encoded query: a DAG rooted at the plan's root operator.
// Column nodes are shared between the predicates and aggregates that
// reference them, so the structure is a DAG, not a tree.
type Graph struct {
	Root *GNode
	// Nodes lists every node exactly once, children before parents
	// (topological order), which the model uses for message passing.
	Nodes []*GNode
}

// CardSource selects which cardinality annotation feeds the operator
// features — the paper's exact vs estimated variants, plus an ablation
// without cardinalities.
type CardSource int

const (
	// CardEstimated uses the optimizer's estimates (plan.Node.EstRows).
	CardEstimated CardSource = iota
	// CardExact uses true cardinalities from execution (plan.Node.TrueRows).
	CardExact
	// CardNone zeroes the cardinality feature (ablation A3).
	CardNone
)

// log1p compresses counts into model-friendly magnitude.
func logScale(x float64) float64 {
	if x < 0 {
		x = 0
	}
	return math.Log1p(x) / 10 // keep features roughly in [0, 2]
}

// Hardware describes the target machine with transferable relative
// features (speeds relative to a reference machine, capacities in absolute
// units). The zero value means "hardware unspecified" and yields all-zero
// hardware features, so hardware-agnostic models and datasets remain
// well-defined.
type Hardware struct {
	// RelCPU, RelSeqIO and RelRandIO are the machine's CPU, sequential-IO
	// and random-IO speeds relative to the reference machine (1 = equal,
	// 2 = twice as fast).
	RelCPU    float64
	RelSeqIO  float64
	RelRandIO float64
	// CacheMB is the effective cache size in MiB.
	CacheMB float64
	// BufferPoolPages is the buffer pool size in pages.
	BufferPoolPages float64
}

// features renders the descriptor as model inputs. Speeds enter as log
// time-multipliers (-log(rel)): the model predicts log-runtime, so a
// machine twice as fast shifts the target by a constant the network can
// combine additively. The zero value yields all-zero features.
func (h Hardware) features() [HWFeatDim]float64 {
	logInv := func(rel float64) float64 {
		if rel <= 0 {
			return 0
		}
		return -math.Log(rel)
	}
	return [HWFeatDim]float64{
		logInv(h.RelCPU),
		logInv(h.RelSeqIO),
		logInv(h.RelRandIO),
		logScale(h.CacheMB),
		logScale(h.BufferPoolPages),
	}
}

// PlanEncoder encodes annotated physical plans into transferable graphs
// for one schema. The encoder itself holds no learned state; two encoders
// over different schemas produce features with identical semantics — the
// transferability property.
type PlanEncoder struct {
	sch  *schema.Schema
	card CardSource
	hw   Hardware
}

// NewPlanEncoder creates an encoder for the schema using the cardinality
// source.
func NewPlanEncoder(sch *schema.Schema, card CardSource) *PlanEncoder {
	return &PlanEncoder{sch: sch, card: card}
}

// WithHardware returns a copy of the encoder that annotates every operator
// node with the hardware descriptor, enabling cross-hardware what-if
// predictions (Section 4.3).
func (e *PlanEncoder) WithHardware(hw Hardware) *PlanEncoder {
	c := *e
	c.hw = hw
	return &c
}

// colCachePool recycles the transient per-encode column-node cache of
// the heap path. The graph itself escapes (memos, training sets retain
// it), so only this build scratch is poolable.
var colCachePool = sync.Pool{New: func() any { return map[string]*GNode{} }}

// encBuild is the per-encode build state: the graph under construction,
// the column-node dedup cache, and the optional arena every allocation
// is drawn from (nil means plain heap allocation).
type encBuild struct {
	g     *Graph
	cols  map[string]*GNode
	arena *Arena
}

// newNode allocates one node with a zeroed featDim-wide feature vector
// and room for childCap children, from the arena when present.
func (b *encBuild) newNode(t NodeType, featDim, childCap int) *GNode {
	if b.arena != nil {
		return b.arena.newNode(t, featDim, childCap)
	}
	n := &GNode{Type: t, Feat: make([]float64, featDim)}
	if childCap > 0 {
		n.Children = make([]*GNode, 0, childCap)
	}
	return n
}

// Encode builds the query graph for an optimizer-produced plan. With
// CardExact the plan must have been executed (TrueRows filled). The
// graph is heap-allocated and may be retained indefinitely (encoded-
// plan memos, training samples).
func (e *PlanEncoder) Encode(root *plan.Node) (*Graph, error) {
	cols := colCachePool.Get().(map[string]*GNode)
	clear(cols)
	b := encBuild{g: &Graph{}, cols: cols}
	g, err := e.encode(root, &b)
	colCachePool.Put(cols)
	return g, err
}

// EncodeArena is Encode with every allocation — nodes, feature vectors,
// child slices, the graph header — carved from the arena. The result is
// bitwise identical to Encode but valid only until the arena's Release;
// use it for transient graphs that are packed into a BatchGraph and
// dropped (the parallel cold batch path), never for graphs that escape
// into a memo or cache.
func (e *PlanEncoder) EncodeArena(a *Arena, root *plan.Node) (*Graph, error) {
	b := encBuild{g: a.newGraph(), cols: a.colCache(), arena: a}
	return e.encode(root, &b)
}

func (e *PlanEncoder) encode(root *plan.Node, b *encBuild) (*Graph, error) {
	rootNode, err := e.encodeOp(root, b)
	if err != nil {
		return nil, err
	}
	b.g.Root = rootNode
	return b.g, nil
}

// add appends the node to the topological order (children must already be
// added) and returns it.
func (g *Graph) add(n *GNode) *GNode {
	g.Nodes = append(g.Nodes, n)
	return n
}

func (e *PlanEncoder) cardOf(n *plan.Node) (float64, error) {
	switch e.card {
	case CardEstimated:
		return n.EstRows, nil
	case CardExact:
		if n.TrueRows < 0 {
			return 0, fmt.Errorf("encoding: exact cardinalities requested but plan not executed")
		}
		return n.TrueRows, nil
	case CardNone:
		return 0, nil
	default:
		return 0, fmt.Errorf("encoding: unknown cardinality source %d", int(e.card))
	}
}

func (e *PlanEncoder) encodeOp(n *plan.Node, b *encBuild) (*GNode, error) {
	// The child count is fully determined before recursion, so arena
	// child slices can be carved exactly once at exact capacity.
	childCap := len(n.Children) + len(n.Filters) + len(n.Aggregates) + len(n.GroupBy)
	if n.Op == plan.SeqScan || n.Op == plan.IndexScan {
		childCap++
	}
	if n.Join != nil {
		childCap += 2
	}
	node := b.newNode(OpNode, OpFeatDim, childCap)
	node.Feat[int(n.Op)] = 1
	if n.LookupJoin {
		node.Feat[plan.NumOperators] = 1
	}
	card, err := e.cardOf(n)
	if err != nil {
		return nil, err
	}
	if e.card != CardNone {
		node.Feat[plan.NumOperators+1] = logScale(card)
	}
	node.Feat[plan.NumOperators+2] = logScale(n.Width)
	if n.Op == plan.IndexScan {
		tm := e.sch.Table(n.Table)
		if tm != nil {
			height := math.Ceil(math.Log(math.Max(float64(tm.RowCount), 2)) / math.Log(256))
			node.Feat[plan.NumOperators+3] = height / 4
		}
	}
	hwf := e.hw.features()
	copy(node.Feat[plan.NumOperators+4:], hwf[:])

	// Children: plan inputs first.
	for _, c := range n.Children {
		child, err := e.encodeOp(c, b)
		if err != nil {
			return nil, err
		}
		node.Children = append(node.Children, child)
	}
	// Scans attach their table node and predicate nodes.
	if n.Op == plan.SeqScan || n.Op == plan.IndexScan {
		tn, err := e.tableNode(n.Table, b)
		if err != nil {
			return nil, err
		}
		node.Children = append(node.Children, tn)
	}
	for _, f := range n.Filters {
		pn, err := e.predNode(f, b)
		if err != nil {
			return nil, err
		}
		node.Children = append(node.Children, pn)
	}
	// Join conditions attach the joined column nodes.
	if n.Join != nil {
		for _, side := range []query.ColumnRef{n.Join.Left, n.Join.Right} {
			cn, err := e.columnNode(side, b)
			if err != nil {
				return nil, err
			}
			node.Children = append(node.Children, cn)
		}
	}
	// Aggregates and group-by columns.
	for _, a := range n.Aggregates {
		an, err := e.aggNode(a, b)
		if err != nil {
			return nil, err
		}
		node.Children = append(node.Children, an)
	}
	for _, gb := range n.GroupBy {
		cn, err := e.columnNode(gb, b)
		if err != nil {
			return nil, err
		}
		node.Children = append(node.Children, cn)
	}
	return b.g.add(node), nil
}

func (e *PlanEncoder) tableNode(table string, b *encBuild) (*GNode, error) {
	tm := e.sch.Table(table)
	if tm == nil {
		return nil, fmt.Errorf("encoding: unknown table %s", table)
	}
	n := b.newNode(TableNode, TableFeatDim, 0)
	n.Feat[0] = logScale(float64(tm.RowCount))
	n.Feat[1] = logScale(float64(tm.PageCount))
	n.Feat[2] = logScale(float64(tm.RowWidth()))
	return b.g.add(n), nil
}

func (e *PlanEncoder) columnNode(ref query.ColumnRef, b *encBuild) (*GNode, error) {
	key := ref.String()
	if n, ok := b.cols[key]; ok {
		return n, nil
	}
	tm := e.sch.Table(ref.Table)
	if tm == nil {
		return nil, fmt.Errorf("encoding: unknown table %s", ref.Table)
	}
	cm := tm.Column(ref.Column)
	if cm == nil {
		return nil, fmt.Errorf("encoding: unknown column %s", ref)
	}
	n := b.newNode(ColumnNode, ColumnFeatDim, 0)
	n.Feat[int(cm.Type)] = 1
	n.Feat[schema.NumDataTypes] = logScale(float64(cm.DistinctCount))
	n.Feat[schema.NumDataTypes+1] = cm.NullFrac
	n.Feat[schema.NumDataTypes+2] = float64(cm.Type.Width()) / 16
	b.cols[key] = n
	return b.g.add(n), nil
}

func (e *PlanEncoder) predNode(f query.Filter, b *encBuild) (*GNode, error) {
	cn, err := e.columnNode(f.Col, b)
	if err != nil {
		return nil, err
	}
	n := b.newNode(PredNode, PredFeatDim, 1)
	n.Feat[int(f.Op)] = 1
	n.Children = append(n.Children, cn)
	return b.g.add(n), nil
}

func (e *PlanEncoder) aggNode(agg query.Aggregate, b *encBuild) (*GNode, error) {
	childCap := 0
	if agg.Col.Table != "" {
		childCap = 1
	}
	n := b.newNode(AggNode, AggFeatDim, childCap)
	n.Feat[int(agg.Func)] = 1
	if agg.Col.Table != "" {
		cn, err := e.columnNode(agg.Col, b)
		if err != nil {
			return nil, err
		}
		n.Children = append(n.Children, cn)
	}
	return b.g.add(n), nil
}
