package encoding

import (
	"math"
	"sort"

	"github.com/zeroshot-db/zeroshot/internal/plan"
	"github.com/zeroshot-db/zeroshot/internal/query"
	"github.com/zeroshot-db/zeroshot/internal/schema"
	"github.com/zeroshot-db/zeroshot/internal/stats"
)

// Fixed one-hot vocabulary sizes. The caps make feature dimensions
// identical across databases so that a model trained on one database can
// be *mechanically applied* to another — producing the semantically
// inconsistent encodings (position i means different columns on different
// databases) whose failure to generalize the paper demonstrates.
const (
	MaxVocabTables  = 16
	MaxVocabColumns = 128
	MaxVocabJoins   = 32
)

// Vocab maps a schema's tables, columns and FK joins to one-hot positions.
type Vocab struct {
	tableIdx map[string]int
	colIdx   map[string]int
	joinIdx  map[string]int
}

// NewVocab builds the vocabulary of one schema, assigning positions in
// sorted-name order (deterministic).
func NewVocab(sch *schema.Schema) *Vocab {
	v := &Vocab{
		tableIdx: map[string]int{},
		colIdx:   map[string]int{},
		joinIdx:  map[string]int{},
	}
	names := sch.TableNames()
	for i, t := range names {
		v.tableIdx[t] = i % MaxVocabTables
	}
	ci := 0
	for _, t := range names {
		tm := sch.Table(t)
		cols := make([]string, len(tm.Columns))
		for i, c := range tm.Columns {
			cols[i] = c.Name
		}
		sort.Strings(cols)
		for _, c := range cols {
			v.colIdx[t+"."+c] = ci % MaxVocabColumns
			ci++
		}
	}
	joins := make([]string, 0, len(sch.ForeignKeys))
	for _, fk := range sch.ForeignKeys {
		joins = append(joins, fk.FromTable+"."+fk.FromColumn+"="+fk.ToTable+"."+fk.ToColumn)
	}
	sort.Strings(joins)
	for i, j := range joins {
		v.joinIdx[j] = i % MaxVocabJoins
	}
	return v
}

// TableSlot returns the one-hot position of a table (0 if unknown — the
// mechanical cross-database fallback).
func (v *Vocab) TableSlot(table string) int { return v.tableIdx[table] }

// ColumnSlot returns the one-hot position of table.column.
func (v *Vocab) ColumnSlot(table, column string) int { return v.colIdx[table+"."+column] }

// JoinSlot returns the one-hot position of a join condition, trying both
// orientations.
func (v *Vocab) JoinSlot(j query.Join) int {
	k1 := j.Left.Table + "." + j.Left.Column + "=" + j.Right.Table + "." + j.Right.Column
	if i, ok := v.joinIdx[k1]; ok {
		return i
	}
	k2 := j.Right.Table + "." + j.Right.Column + "=" + j.Left.Table + "." + j.Left.Column
	return v.joinIdx[k2] // 0 if unknown
}

// MSCNPredDim is the width of one MSCN predicate vector: column one-hot,
// operator one-hot, normalized literal.
const MSCNPredDim = MaxVocabColumns + query.NumCmpOps + 1

// MSCNFeatures is the set-based featurization of MSCN (Kipf et al.):
// one vector per table, join and predicate.
type MSCNFeatures struct {
	Tables [][]float64
	Joins  [][]float64
	Preds  [][]float64
}

// MSCNFeaturizer featurizes logical queries the MSCN way, using a vocab
// (from the training database) and statistics for literal normalization.
type MSCNFeaturizer struct {
	vocab *Vocab
	st    *stats.DBStats
}

// NewMSCNFeaturizer creates a featurizer with the given vocabulary and the
// statistics of the database the queries run on.
func NewMSCNFeaturizer(vocab *Vocab, st *stats.DBStats) *MSCNFeaturizer {
	return &MSCNFeaturizer{vocab: vocab, st: st}
}

// normLiteral maps a literal into [0,1] within the column's value range.
func normLiteral(st *stats.DBStats, col query.ColumnRef, val float64) float64 {
	cs := st.Column(col.Table, col.Column)
	if cs == nil || cs.Max <= cs.Min {
		return 0.5
	}
	x := (val - cs.Min) / (cs.Max - cs.Min)
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Featurize encodes one query.
func (f *MSCNFeaturizer) Featurize(q *query.Query) *MSCNFeatures {
	out := &MSCNFeatures{}
	for _, t := range q.Tables {
		vec := make([]float64, MaxVocabTables)
		vec[f.vocab.TableSlot(t)] = 1
		out.Tables = append(out.Tables, vec)
	}
	for _, j := range q.Joins {
		vec := make([]float64, MaxVocabJoins)
		vec[f.vocab.JoinSlot(j)] = 1
		out.Joins = append(out.Joins, vec)
	}
	for _, p := range q.Filters {
		vec := make([]float64, MSCNPredDim)
		vec[f.vocab.ColumnSlot(p.Col.Table, p.Col.Column)] = 1
		vec[MaxVocabColumns+int(p.Op)] = 1
		vec[MaxVocabColumns+query.NumCmpOps] = normLiteral(f.st, p.Col, p.Value)
		out.Preds = append(out.Preds, vec)
	}
	return out
}

// E2ENodeDim is the per-node feature width of the E2E plan featurization:
// operator one-hot, table one-hot, pooled predicate encoding (column
// one-hot + operator one-hot + literal), log estimated cardinality, log
// width.
const E2ENodeDim = plan.NumOperators + MaxVocabTables + MSCNPredDim + 2

// E2ENode is one node of the E2E tree featurization.
type E2ENode struct {
	Feat     []float64
	Children []*E2ENode
}

// E2EFeaturizer featurizes physical plans the E2E way (Sun & Li): a tree
// of one-hot node vectors including estimated cardinalities and literal
// values — the end-to-end learning the paper contrasts with.
type E2EFeaturizer struct {
	vocab *Vocab
	st    *stats.DBStats
}

// NewE2EFeaturizer creates a featurizer with the given vocabulary and
// statistics.
func NewE2EFeaturizer(vocab *Vocab, st *stats.DBStats) *E2EFeaturizer {
	return &E2EFeaturizer{vocab: vocab, st: st}
}

// Featurize encodes one optimizer-produced plan tree.
func (f *E2EFeaturizer) Featurize(p *plan.Node) *E2ENode {
	n := &E2ENode{Feat: make([]float64, E2ENodeDim)}
	n.Feat[int(p.Op)] = 1
	off := plan.NumOperators
	if p.Table != "" {
		n.Feat[off+f.vocab.TableSlot(p.Table)] = 1
	}
	off += MaxVocabTables
	// Sum-pool predicate encodings into the node vector.
	for _, pr := range p.Filters {
		n.Feat[off+f.vocab.ColumnSlot(pr.Col.Table, pr.Col.Column)] += 1
		n.Feat[off+MaxVocabColumns+int(pr.Op)] += 1
		n.Feat[off+MaxVocabColumns+query.NumCmpOps] += normLiteral(f.st, pr.Col, pr.Value)
	}
	off += MSCNPredDim
	n.Feat[off] = math.Log1p(math.Max(p.EstRows, 0)) / 10
	n.Feat[off+1] = math.Log1p(math.Max(p.Width, 0)) / 10
	for _, c := range p.Children {
		n.Children = append(n.Children, f.Featurize(c))
	}
	return n
}
