package engine

import (
	"fmt"
	"math"
	"sort"

	"github.com/zeroshot-db/zeroshot/internal/plan"
	"github.com/zeroshot-db/zeroshot/internal/query"
	"github.com/zeroshot-db/zeroshot/internal/storage"
)

// aggState accumulates one aggregate function over one group.
type aggState struct {
	fn    query.AggFunc
	count float64
	sum   float64
	min   float64
	max   float64
	any   bool
}

func newAggState(fn query.AggFunc) *aggState {
	return &aggState{fn: fn, min: math.Inf(1), max: math.Inf(-1)}
}

func (s *aggState) update(v float64, isNull bool) {
	if s.fn == query.AggCount {
		s.count++ // COUNT(*) counts rows regardless of nulls
		return
	}
	if isNull {
		return
	}
	s.any = true
	s.count++
	s.sum += v
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
}

func (s *aggState) value() float64 {
	switch s.fn {
	case query.AggCount:
		return s.count
	case query.AggSum:
		if !s.any {
			return 0
		}
		return s.sum
	case query.AggAvg:
		if s.count == 0 {
			return 0
		}
		return s.sum / s.count
	case query.AggMin:
		if !s.any {
			return 0
		}
		return s.min
	case query.AggMax:
		if !s.any {
			return 0
		}
		return s.max
	default:
		return 0
	}
}

// execAggregate evaluates grouped or scalar aggregates over the child
// batch, records the resulting group values on the executor, and returns a
// batch with one (empty) tuple per group so that cardinalities propagate.
func (e *Executor) execAggregate(n *plan.Node) (*batch, error) {
	child, err := e.exec(n.Children[0])
	if err != nil {
		return nil, err
	}
	// Resolve aggregate input columns.
	type aggCol struct {
		col *storage.ColumnData
		pos int // position of the table in the child batch
	}
	aggCols := make([]aggCol, len(n.Aggregates))
	for i, a := range n.Aggregates {
		if a.Func == query.AggCount && a.Col.Table == "" {
			aggCols[i] = aggCol{pos: -1}
			continue
		}
		pos, ok := child.pos[a.Col.Table]
		if !ok {
			return nil, fmt.Errorf("engine: aggregate %s references table outside plan", a)
		}
		col := e.db.Table(a.Col.Table).Col(a.Col.Column)
		if col == nil {
			return nil, fmt.Errorf("engine: aggregate %s references unknown column", a)
		}
		aggCols[i] = aggCol{col: col, pos: pos}
	}
	// Resolve group-by columns.
	type grpCol struct {
		col *storage.ColumnData
		pos int
	}
	grpCols := make([]grpCol, len(n.GroupBy))
	for i, g := range n.GroupBy {
		pos, ok := child.pos[g.Table]
		if !ok {
			return nil, fmt.Errorf("engine: group by %s references table outside plan", g)
		}
		col := e.db.Table(g.Table).Col(g.Column)
		if col == nil {
			return nil, fmt.Errorf("engine: group by %s references unknown column", g)
		}
		grpCols[i] = grpCol{col: col, pos: pos}
	}

	groups := map[string][]*aggState{}
	var keyOrder []string
	keyBuf := make([]float64, len(grpCols))
	updates := 0.0
	for _, tuple := range child.rows {
		for i, gc := range grpCols {
			r := int(tuple[gc.pos])
			if gc.col.IsNull(r) {
				keyBuf[i] = math.NaN()
			} else {
				keyBuf[i] = gc.col.AsFloat(r)
			}
		}
		key := groupKey(keyBuf)
		states, ok := groups[key]
		if !ok {
			states = make([]*aggState, len(n.Aggregates))
			for i, a := range n.Aggregates {
				states[i] = newAggState(a.Func)
			}
			groups[key] = states
			keyOrder = append(keyOrder, key)
		}
		for i, ac := range aggCols {
			updates++
			if ac.pos < 0 {
				states[i].update(0, false)
				continue
			}
			r := int(tuple[ac.pos])
			states[i].update(ac.col.AsFloat(r), ac.col.IsNull(r))
		}
	}
	// Scalar aggregates over empty input still produce one output row.
	if len(grpCols) == 0 && len(groups) == 0 {
		states := make([]*aggState, len(n.Aggregates))
		for i, a := range n.Aggregates {
			states[i] = newAggState(a.Func)
		}
		groups[""] = states
		keyOrder = append(keyOrder, "")
	}
	sort.Strings(keyOrder)
	e.aggValues = make([][]float64, 0, len(groups))
	for _, key := range keyOrder {
		states := groups[key]
		row := make([]float64, len(states))
		for i, s := range states {
			row[i] = s.value()
		}
		e.aggValues = append(e.aggValues, row)
	}

	out := newBatch() // aggregate output carries no base-table row ids
	out.rows = make([][]int32, len(groups))
	n.Work = plan.Counters{
		TuplesIn:   float64(len(child.rows)),
		TuplesOut:  float64(len(groups)),
		AggUpdates: updates,
		Groups:     float64(len(groups)),
		BytesOut:   float64(len(groups)) * n.Width,
	}
	n.TrueRows = float64(len(groups))
	return out, nil
}

// groupKey serializes group-by values into a map key.
func groupKey(vals []float64) string {
	buf := make([]byte, 0, len(vals)*8)
	for _, v := range vals {
		bits := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			buf = append(buf, byte(bits>>uint(s)))
		}
	}
	return string(buf)
}
