package engine

import (
	"testing"

	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/optimizer"
	"github.com/zeroshot-db/zeroshot/internal/plan"
	"github.com/zeroshot-db/zeroshot/internal/query"
	"github.com/zeroshot-db/zeroshot/internal/stats"
)

func benchPlan(b *testing.B, q *query.Query) (*Executor, *plan.Node) {
	b.Helper()
	db, err := datagen.IMDBLike(0.1)
	if err != nil {
		b.Fatal(err)
	}
	st := stats.Collect(db, stats.DefaultBuckets, stats.DefaultMCVs)
	opt := optimizer.New(db.Schema, st, nil, optimizer.DefaultCostParams())
	p, err := opt.Plan(q)
	if err != nil {
		b.Fatal(err)
	}
	return New(db, Config{}), p
}

func BenchmarkExecuteSeqScan(b *testing.B) {
	ex, p := benchPlan(b, &query.Query{
		Tables:     []string{"cast_info"},
		Filters:    []query.Filter{{Col: query.ColumnRef{Table: "cast_info", Column: "nr_order"}, Op: query.OpGt, Value: 5}},
		Aggregates: []query.Aggregate{{Func: query.AggCount}},
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Execute(p.Clone()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecuteTwoWayHashJoin(b *testing.B) {
	ex, p := benchPlan(b, &query.Query{
		Tables: []string{"title", "movie_companies"},
		Joins: []query.Join{{
			Left:  query.ColumnRef{Table: "movie_companies", Column: "movie_id"},
			Right: query.ColumnRef{Table: "title", Column: "id"},
		}},
		Aggregates: []query.Aggregate{{Func: query.AggCount}},
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Execute(p.Clone()); err != nil {
			b.Fatal(err)
		}
	}
}
