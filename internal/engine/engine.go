// Package engine executes physical plans over the storage layer.
//
// Execution serves three purposes in the reproduction pipeline:
//
//  1. It produces the *true* output cardinality of every plan operator
//     (plan.Node.TrueRows), which is both the paper's "exact cardinalities"
//     model input and the reference for evaluating estimates.
//  2. It records work counters (pages read, tuples processed, hash probes,
//     index descents, ...) that the hardware simulator converts into the
//     simulated runtimes acting as the paper's measured query runtimes.
//  3. It computes actual aggregate results, which the test suite verifies
//     against brute-force evaluation — keeping the whole substrate honest.
package engine

import (
	"errors"
	"fmt"
	"math"

	"github.com/zeroshot-db/zeroshot/internal/plan"
	"github.com/zeroshot-db/zeroshot/internal/query"
	"github.com/zeroshot-db/zeroshot/internal/schema"
	"github.com/zeroshot-db/zeroshot/internal/storage"
)

// ErrTooLarge is returned when an intermediate result exceeds the
// configured tuple limit; callers (the training-data collector) skip such
// queries, as one would discard runaway training queries in practice.
var ErrTooLarge = errors.New("engine: intermediate result exceeds tuple limit")

// Config bounds execution.
type Config struct {
	// MaxIntermediate caps the tuple count of any intermediate result.
	// Zero means DefaultMaxIntermediate.
	MaxIntermediate int
}

// DefaultMaxIntermediate is the default intermediate-result cap.
const DefaultMaxIntermediate = 20_000_000

// Executor runs plans against one database. Executors are not safe for
// concurrent use; create one per goroutine.
type Executor struct {
	db  *storage.Database
	max int
	// aggValues holds the aggregate outputs of the most recently executed
	// HashAggregate (exec passes row-id batches only).
	aggValues [][]float64
}

// New creates an executor for the database.
func New(db *storage.Database, cfg Config) *Executor {
	max := cfg.MaxIntermediate
	if max <= 0 {
		max = DefaultMaxIntermediate
	}
	return &Executor{db: db, max: max}
}

// Result summarizes one plan execution.
type Result struct {
	// Rows is the number of tuples the root operator emitted.
	Rows int
	// Aggregates holds, per output group, the computed aggregate values in
	// the order of the plan's aggregate list. Empty for non-aggregate plans.
	Aggregates [][]float64
}

// batch is a materialized intermediate result: for each involved base
// table, the row ids contributing to each output tuple.
type batch struct {
	tables []string       // base tables in this batch
	pos    map[string]int // table -> column position in rows
	rows   [][]int32      // rows[i][j] = row id of tables[j] in tuple i
}

func newBatch(tables ...string) *batch {
	b := &batch{tables: tables, pos: map[string]int{}}
	for i, t := range tables {
		b.pos[t] = i
	}
	return b
}

// Execute runs the plan, filling TrueRows and Work on every node, and
// returns the root result. The plan must come from the optimizer (scans
// carry their filters; nested-loop inners are lookup index scans).
func (e *Executor) Execute(p *plan.Node) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	b, err := e.exec(p)
	if err != nil {
		return nil, err
	}
	res := &Result{Rows: len(b.rows)}
	if p.Op == plan.HashAggregate {
		res.Aggregates = e.aggValues
		e.aggValues = nil
	}
	return res, nil
}

func (e *Executor) exec(n *plan.Node) (*batch, error) {
	switch n.Op {
	case plan.SeqScan:
		return e.execSeqScan(n)
	case plan.IndexScan:
		if n.LookupJoin {
			return nil, errors.New("engine: lookup index scan executed outside nested-loop join")
		}
		return e.execIndexScan(n)
	case plan.HashJoin:
		return e.execHashJoin(n)
	case plan.NestedLoopJoin:
		return e.execNLJoin(n)
	case plan.HashAggregate:
		return e.execAggregate(n)
	default:
		return nil, fmt.Errorf("engine: unknown operator %v", n.Op)
	}
}

// evalFilter applies one predicate to a base-table row.
func evalFilter(col *storage.ColumnData, row int, f query.Filter) bool {
	if col.IsNull(row) {
		return false
	}
	v := col.AsFloat(row)
	switch f.Op {
	case query.OpEq:
		return v == f.Value
	case query.OpNeq:
		return v != f.Value
	case query.OpLt:
		return v < f.Value
	case query.OpLe:
		return v <= f.Value
	case query.OpGt:
		return v > f.Value
	case query.OpGe:
		return v >= f.Value
	default:
		return false
	}
}

func (e *Executor) execSeqScan(n *plan.Node) (*batch, error) {
	tab := e.db.Table(n.Table)
	if tab == nil {
		return nil, fmt.Errorf("engine: unknown table %s", n.Table)
	}
	cols := make([]*storage.ColumnData, len(n.Filters))
	for i, f := range n.Filters {
		cols[i] = tab.Col(f.Col.Column)
		if cols[i] == nil {
			return nil, fmt.Errorf("engine: unknown column %s", f.Col)
		}
	}
	out := newBatch(n.Table)
	rows := tab.Rows()
	evals := 0.0
	for r := 0; r < rows; r++ {
		match := true
		for i, f := range n.Filters {
			evals++
			if !evalFilter(cols[i], r, f) {
				match = false
				break
			}
		}
		if match {
			out.rows = append(out.rows, []int32{int32(r)})
		}
	}
	n.Work = plan.Counters{
		PagesRead: float64(tab.Meta.PageCount),
		TuplesIn:  float64(rows),
		TuplesOut: float64(len(out.rows)),
		PredEvals: evals,
		BytesOut:  float64(len(out.rows)) * n.Width,
	}
	n.TrueRows = float64(len(out.rows))
	return out, nil
}

// execIndexScan runs a constant-range index scan: the first filter is on
// the index column (optimizer convention) and drives the index range; all
// filters are then re-checked as residuals for exactness.
func (e *Executor) execIndexScan(n *plan.Node) (*batch, error) {
	tab := e.db.Table(n.Table)
	if tab == nil {
		return nil, fmt.Errorf("engine: unknown table %s", n.Table)
	}
	ix, err := e.db.EnsureIndex(n.Table, n.IndexColumn)
	if err != nil {
		return nil, err
	}
	if len(n.Filters) == 0 || n.Filters[0].Col.Column != n.IndexColumn {
		return nil, fmt.Errorf("engine: index scan on %s.%s without driving predicate", n.Table, n.IndexColumn)
	}
	lead := n.Filters[0]
	var cand []int32
	switch lead.Op {
	case query.OpEq:
		cand = ix.Lookup(lead.Value)
	case query.OpLt, query.OpLe:
		cand = ix.Range(math.Inf(-1), lead.Value)
	case query.OpGt, query.OpGe:
		cand = ix.Range(lead.Value, math.Inf(1))
	default: // OpNeq cannot use the index range; scan all entries
		cand = ix.Range(math.Inf(-1), math.Inf(1))
	}
	cols := make([]*storage.ColumnData, len(n.Filters))
	for i, f := range n.Filters {
		cols[i] = tab.Col(f.Col.Column)
		if cols[i] == nil {
			return nil, fmt.Errorf("engine: unknown column %s", f.Col)
		}
	}
	out := newBatch(n.Table)
	evals := 0.0
	pages := map[int32]struct{}{}
	rowsPerPage := int32(schema.PageSize / tab.Meta.RowWidth())
	if rowsPerPage < 1 {
		rowsPerPage = 1
	}
	for _, r := range cand {
		match := true
		for i, f := range n.Filters {
			evals++
			if !evalFilter(cols[i], int(r), f) {
				match = false
				break
			}
		}
		if match {
			out.rows = append(out.rows, []int32{r})
			pages[r/rowsPerPage] = struct{}{}
		}
	}
	n.Work = plan.Counters{
		PagesRead:    float64(len(pages)) + float64(ix.EstimateHeight()),
		TuplesIn:     float64(len(cand)),
		TuplesOut:    float64(len(out.rows)),
		PredEvals:    evals,
		IndexLookups: 1,
		IndexEntries: float64(len(cand)),
		BytesOut:     float64(len(out.rows)) * n.Width,
	}
	n.TrueRows = float64(len(out.rows))
	return out, nil
}

// joinKey returns the join value of a tuple for the side of the condition
// belonging to the batch, and whether it is non-null.
func joinValue(db *storage.Database, b *batch, tuple []int32, side query.ColumnRef) (float64, bool) {
	pos, ok := b.pos[side.Table]
	if !ok {
		return 0, false
	}
	col := db.Table(side.Table).Col(side.Column)
	r := int(tuple[pos])
	if col.IsNull(r) {
		return 0, false
	}
	return col.AsFloat(r), true
}

// sides orients the join condition: returns the ColumnRef belonging to
// batch a and the one belonging to batch b.
func sides(j *query.Join, a, b *batch) (query.ColumnRef, query.ColumnRef, error) {
	if _, ok := a.pos[j.Left.Table]; ok {
		if _, ok2 := b.pos[j.Right.Table]; ok2 {
			return j.Left, j.Right, nil
		}
	}
	if _, ok := a.pos[j.Right.Table]; ok {
		if _, ok2 := b.pos[j.Left.Table]; ok2 {
			return j.Right, j.Left, nil
		}
	}
	return query.ColumnRef{}, query.ColumnRef{}, fmt.Errorf("engine: join %s does not connect its inputs", j)
}

func concatTuple(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return out
}

func (e *Executor) execHashJoin(n *plan.Node) (*batch, error) {
	probe, err := e.exec(n.Children[0])
	if err != nil {
		return nil, err
	}
	build, err := e.exec(n.Children[1])
	if err != nil {
		return nil, err
	}
	probeSide, buildSide, err := sides(n.Join, probe, build)
	if err != nil {
		return nil, err
	}
	ht := make(map[float64][]int, len(build.rows))
	for i, tuple := range build.rows {
		v, ok := joinValue(e.db, build, tuple, buildSide)
		if !ok {
			continue
		}
		ht[v] = append(ht[v], i)
	}
	out := newBatch(append(append([]string{}, probe.tables...), build.tables...)...)
	for _, tuple := range probe.rows {
		v, ok := joinValue(e.db, probe, tuple, probeSide)
		if !ok {
			continue
		}
		for _, bi := range ht[v] {
			out.rows = append(out.rows, concatTuple(tuple, build.rows[bi]))
			if len(out.rows) > e.max {
				return nil, ErrTooLarge
			}
		}
	}
	n.Work = plan.Counters{
		TuplesIn:   float64(len(probe.rows) + len(build.rows)),
		TuplesOut:  float64(len(out.rows)),
		HashBuild:  float64(len(build.rows)),
		HashProbes: float64(len(probe.rows)),
		BytesOut:   float64(len(out.rows)) * n.Width,
	}
	n.TrueRows = float64(len(out.rows))
	return out, nil
}

// execNLJoin runs an index-nested-loop join: per outer tuple, descend the
// inner index on the join key and apply the inner's residual filters.
func (e *Executor) execNLJoin(n *plan.Node) (*batch, error) {
	outer, err := e.exec(n.Children[0])
	if err != nil {
		return nil, err
	}
	inner := n.Children[1]
	if inner.Op != plan.IndexScan || !inner.LookupJoin {
		return nil, errors.New("engine: nested-loop inner must be a lookup index scan")
	}
	tab := e.db.Table(inner.Table)
	if tab == nil {
		return nil, fmt.Errorf("engine: unknown table %s", inner.Table)
	}
	ix, err := e.db.EnsureIndex(inner.Table, inner.IndexColumn)
	if err != nil {
		return nil, err
	}
	outerSide, innerSide, err := sidesNL(n.Join, outer, inner.Table)
	if err != nil {
		return nil, err
	}
	if innerSide.Column != inner.IndexColumn {
		return nil, fmt.Errorf("engine: lookup index on %s but join column is %s", inner.IndexColumn, innerSide.Column)
	}
	cols := make([]*storage.ColumnData, len(inner.Filters))
	for i, f := range inner.Filters {
		cols[i] = tab.Col(f.Col.Column)
		if cols[i] == nil {
			return nil, fmt.Errorf("engine: unknown column %s", f.Col)
		}
	}
	out := newBatch(append(append([]string{}, outer.tables...), inner.Table)...)
	lookups, entries, evals := 0.0, 0.0, 0.0
	pages := map[int32]struct{}{}
	rowsPerPage := int32(schema.PageSize / tab.Meta.RowWidth())
	if rowsPerPage < 1 {
		rowsPerPage = 1
	}
	innerOut := 0.0
	for _, tuple := range outer.rows {
		v, ok := joinValue(e.db, outer, tuple, outerSide)
		if !ok {
			continue
		}
		lookups++
		matches := ix.Lookup(v)
		entries += float64(len(matches))
		for _, r := range matches {
			ok := true
			for i, f := range inner.Filters {
				evals++
				if !evalFilter(cols[i], int(r), f) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			innerOut++
			pages[r/rowsPerPage] = struct{}{}
			out.rows = append(out.rows, concatTuple(tuple, []int32{r}))
			if len(out.rows) > e.max {
				return nil, ErrTooLarge
			}
		}
	}
	inner.Work = plan.Counters{
		PagesRead:    float64(len(pages)) + lookups*float64(ix.EstimateHeight())*0.1,
		TuplesIn:     entries,
		TuplesOut:    innerOut,
		PredEvals:    evals,
		IndexLookups: lookups,
		IndexEntries: entries,
		BytesOut:     innerOut * inner.Width,
	}
	inner.TrueRows = innerOut / math.Max(lookups, 1)
	n.Work = plan.Counters{
		TuplesIn:  float64(len(outer.rows)) + innerOut,
		TuplesOut: float64(len(out.rows)),
		BytesOut:  float64(len(out.rows)) * n.Width,
	}
	n.TrueRows = float64(len(out.rows))
	return out, nil
}

// sidesNL orients a join for a nested-loop whose inner is a base table.
func sidesNL(j *query.Join, outer *batch, innerTable string) (query.ColumnRef, query.ColumnRef, error) {
	if j.Left.Table == innerTable {
		if _, ok := outer.pos[j.Right.Table]; !ok {
			return query.ColumnRef{}, query.ColumnRef{}, fmt.Errorf("engine: join %s does not connect outer", j)
		}
		return j.Right, j.Left, nil
	}
	if j.Right.Table == innerTable {
		if _, ok := outer.pos[j.Left.Table]; !ok {
			return query.ColumnRef{}, query.ColumnRef{}, fmt.Errorf("engine: join %s does not connect outer", j)
		}
		return j.Left, j.Right, nil
	}
	return query.ColumnRef{}, query.ColumnRef{}, fmt.Errorf("engine: join %s does not involve inner table %s", j, innerTable)
}
