package engine

import (
	"errors"
	"math"
	"testing"

	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/optimizer"
	"github.com/zeroshot-db/zeroshot/internal/plan"
	"github.com/zeroshot-db/zeroshot/internal/query"
	"github.com/zeroshot-db/zeroshot/internal/schema"
	"github.com/zeroshot-db/zeroshot/internal/stats"
	"github.com/zeroshot-db/zeroshot/internal/storage"
)

// bruteForce evaluates a query by nested-loop enumeration over base tables,
// returning the number of qualifying pre-aggregation tuples. It is the
// independent reference implementation the engine is validated against.
func bruteForce(db *storage.Database, q *query.Query) int {
	// Materialize per-table matching rows.
	matching := make([][]int32, len(q.Tables))
	for ti, tname := range q.Tables {
		tab := db.Table(tname)
		for r := 0; r < tab.Rows(); r++ {
			ok := true
			for _, f := range q.FiltersOn(tname) {
				col := tab.Col(f.Col.Column)
				if !evalFilter(col, r, f) {
					ok = false
					break
				}
			}
			if ok {
				matching[ti] = append(matching[ti], int32(r))
			}
		}
	}
	pos := map[string]int{}
	for i, tname := range q.Tables {
		pos[tname] = i
	}
	count := 0
	current := make([]int32, len(q.Tables))
	var rec func(depth int)
	rec = func(depth int) {
		if depth == len(q.Tables) {
			count++
			return
		}
		tname := q.Tables[depth]
		tab := db.Table(tname)
	next:
		for _, r := range matching[depth] {
			current[depth] = r
			// Check join conditions whose both sides are bound.
			for _, j := range q.Joins {
				li, ri := pos[j.Left.Table], pos[j.Right.Table]
				if li > depth || ri > depth {
					continue
				}
				lcol := db.Table(j.Left.Table).Col(j.Left.Column)
				rcol := db.Table(j.Right.Table).Col(j.Right.Column)
				lr, rr := int(current[li]), int(current[ri])
				if lcol.IsNull(lr) || rcol.IsNull(rr) {
					continue next
				}
				if lcol.AsFloat(lr) != rcol.AsFloat(rr) {
					continue next
				}
			}
			rec(depth + 1)
		}
		_ = tab
	}
	rec(0)
	return count
}

func testSetup(t *testing.T) (*storage.Database, *optimizer.Optimizer, *Executor) {
	t.Helper()
	db, err := datagen.IMDBLike(0.02)
	if err != nil {
		t.Fatal(err)
	}
	st := stats.Collect(db, stats.DefaultBuckets, stats.DefaultMCVs)
	opt := optimizer.New(db.Schema, st, nil, optimizer.DefaultCostParams())
	return db, opt, New(db, Config{})
}

func TestEngineMatchesBruteForceOnRandomQueries(t *testing.T) {
	db, opt, ex := testSetup(t)
	qs, err := query.Synthetic(db, 60, 17)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if len(q.Tables) > 3 {
			continue // keep brute force tractable
		}
		p, err := opt.Plan(q)
		if err != nil {
			t.Fatalf("plan %q: %v", q.SQL(), err)
		}
		if _, err := ex.Execute(p); err != nil {
			t.Fatalf("execute %q: %v", q.SQL(), err)
		}
		want := bruteForce(db, q)
		// The pre-aggregation cardinality is the root's child (or the root
		// itself for plans without aggregation).
		node := p
		if p.Op == plan.HashAggregate {
			node = p.Children[0]
		}
		if int(node.TrueRows) != want {
			t.Fatalf("query %q: engine rows %v, brute force %d\n%s", q.SQL(), node.TrueRows, want, p.Explain())
		}
	}
}

func TestEngineWithIndexesMatchesBruteForce(t *testing.T) {
	db, _, _ := testSetup(t)
	st := stats.Collect(db, stats.DefaultBuckets, stats.DefaultMCVs)
	idx := optimizer.IndexSet{
		optimizer.Key("movie_companies", "movie_id"):        true,
		optimizer.Key("title", "production_year"):           true,
		optimizer.Key("cast_info", "movie_id"):              true,
		optimizer.Key("movie_info", "movie_id"):             true,
		optimizer.Key("movie_companies", "note_len"):        true,
		optimizer.Key("movie_info_idx", "movie_id"):         true,
		optimizer.Key("movie_keyword", "movie_id"):          true,
		optimizer.Key("movie_info_idx", "rating"):           true,
		optimizer.Key("cast_info", "nr_order"):              true,
		optimizer.Key("movie_info", "info_len"):             true,
		optimizer.Key("movie_keyword", "keyword_id"):        true,
		optimizer.Key("movie_companies", "company_type_id"): true,
	}
	opt := optimizer.New(db.Schema, st, idx, optimizer.DefaultCostParams())
	ex := New(db, Config{})
	qs, err := query.Synthetic(db, 60, 23)
	if err != nil {
		t.Fatal(err)
	}
	indexPlans := 0
	for _, q := range qs {
		if len(q.Tables) > 3 {
			continue
		}
		p, err := opt.Plan(q)
		if err != nil {
			t.Fatalf("plan %q: %v", q.SQL(), err)
		}
		usesIndex := false
		p.Walk(func(n *plan.Node) {
			if n.Op == plan.IndexScan {
				usesIndex = true
			}
		})
		if usesIndex {
			indexPlans++
		}
		if _, err := ex.Execute(p); err != nil {
			t.Fatalf("execute %q: %v\n%s", q.SQL(), err, p.Explain())
		}
		want := bruteForce(db, q)
		node := p
		if p.Op == plan.HashAggregate {
			node = p.Children[0]
		}
		if int(node.TrueRows) != want {
			t.Fatalf("query %q: engine rows %v, brute force %d\n%s", q.SQL(), node.TrueRows, want, p.Explain())
		}
	}
	if indexPlans == 0 {
		t.Fatal("no query used an index; test exercises nothing new")
	}
}

func TestAggregateValuesMatchBruteForce(t *testing.T) {
	db, opt, ex := testSetup(t)
	q := &query.Query{
		Tables: []string{"title"},
		Filters: []query.Filter{
			{Col: query.ColumnRef{Table: "title", Column: "kind_id"}, Op: query.OpEq, Value: 0},
		},
		Aggregates: []query.Aggregate{
			{Func: query.AggCount},
			{Func: query.AggMin, Col: query.ColumnRef{Table: "title", Column: "production_year"}},
			{Func: query.AggMax, Col: query.ColumnRef{Table: "title", Column: "production_year"}},
			// AVG exercised in the sum test below; 3 aggregates is the cap.
		},
	}
	p, err := opt.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 1 || len(res.Aggregates) != 1 {
		t.Fatalf("scalar aggregate returned %d rows", res.Rows)
	}
	// Brute force.
	tab := db.Table("title")
	kind := tab.Col("kind_id")
	year := tab.Col("production_year")
	count, minV, maxV := 0.0, math.Inf(1), math.Inf(-1)
	for r := 0; r < tab.Rows(); r++ {
		if kind.IsNull(r) || kind.AsFloat(r) != 0 {
			continue
		}
		count++
		if !year.IsNull(r) {
			v := year.AsFloat(r)
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
	}
	got := res.Aggregates[0]
	if got[0] != count {
		t.Fatalf("COUNT = %v, want %v", got[0], count)
	}
	if count > 0 && (got[1] != minV || got[2] != maxV) {
		t.Fatalf("MIN/MAX = %v/%v, want %v/%v", got[1], got[2], minV, maxV)
	}
}

func TestSumAvgOverJoin(t *testing.T) {
	db, opt, ex := testSetup(t)
	q := &query.Query{
		Tables: []string{"title", "movie_companies"},
		Joins: []query.Join{{
			Left:  query.ColumnRef{Table: "movie_companies", Column: "movie_id"},
			Right: query.ColumnRef{Table: "title", Column: "id"},
		}},
		Aggregates: []query.Aggregate{
			{Func: query.AggSum, Col: query.ColumnRef{Table: "movie_companies", Column: "note_len"}},
			{Func: query.AggAvg, Col: query.ColumnRef{Table: "movie_companies", Column: "note_len"}},
		},
	}
	p, err := opt.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force: every mc row with a valid title contributes note_len.
	mc := db.Table("movie_companies")
	movieID := mc.Col("movie_id")
	noteLen := mc.Col("note_len")
	titleRows := db.Table("title").Rows()
	sum, cnt := 0.0, 0.0
	for r := 0; r < mc.Rows(); r++ {
		if movieID.IsNull(r) {
			continue
		}
		v := movieID.Int(r)
		if v < 0 || v >= int64(titleRows) {
			continue
		}
		if noteLen.IsNull(r) {
			continue
		}
		sum += noteLen.AsFloat(r)
		cnt++
	}
	got := res.Aggregates[0]
	if math.Abs(got[0]-sum) > 1e-6*math.Abs(sum)+1e-9 {
		t.Fatalf("SUM = %v, want %v", got[0], sum)
	}
	wantAvg := sum / cnt
	if math.Abs(got[1]-wantAvg) > 1e-9*math.Abs(wantAvg)+1e-9 {
		t.Fatalf("AVG = %v, want %v", got[1], wantAvg)
	}
}

func TestGroupByCountsMatchBruteForce(t *testing.T) {
	db, opt, ex := testSetup(t)
	q := &query.Query{
		Tables:     []string{"title"},
		Aggregates: []query.Aggregate{{Func: query.AggCount}},
		GroupBy:    []query.ColumnRef{{Table: "title", Column: "kind_id"}},
	}
	p, err := opt.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force group count.
	tab := db.Table("title")
	kind := tab.Col("kind_id")
	groups := map[float64]float64{}
	nullGroup := 0.0
	for r := 0; r < tab.Rows(); r++ {
		if kind.IsNull(r) {
			nullGroup++
			continue
		}
		groups[kind.AsFloat(r)]++
	}
	wantGroups := len(groups)
	if nullGroup > 0 {
		wantGroups++
	}
	if res.Rows != wantGroups {
		t.Fatalf("groups = %d, want %d", res.Rows, wantGroups)
	}
	total := 0.0
	for _, row := range res.Aggregates {
		total += row[0]
	}
	if total != float64(tab.Rows()) {
		t.Fatalf("sum of group counts = %v, want %d", total, tab.Rows())
	}
}

func TestWorkCountersPopulated(t *testing.T) {
	_, opt, ex := testSetup(t)
	p, err := opt.Plan(&query.Query{
		Tables: []string{"title", "movie_companies"},
		Joins: []query.Join{{
			Left:  query.ColumnRef{Table: "movie_companies", Column: "movie_id"},
			Right: query.ColumnRef{Table: "title", Column: "id"},
		}},
		Aggregates: []query.Aggregate{{Func: query.AggCount}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Execute(p); err != nil {
		t.Fatal(err)
	}
	p.Walk(func(n *plan.Node) {
		if n.TrueRows < 0 {
			t.Errorf("node %v has unset TrueRows", n.Op)
		}
		switch n.Op {
		case plan.SeqScan:
			if n.Work.PagesRead <= 0 || n.Work.TuplesIn <= 0 {
				t.Errorf("seq scan counters empty: %+v", n.Work)
			}
		case plan.HashJoin:
			if n.Work.HashBuild <= 0 || n.Work.HashProbes <= 0 {
				t.Errorf("hash join counters empty: %+v", n.Work)
			}
		case plan.HashAggregate:
			if n.Work.Groups != 1 {
				t.Errorf("scalar aggregate groups = %v", n.Work.Groups)
			}
		}
	})
}

func TestScalarAggregateOverEmptyInput(t *testing.T) {
	_, opt, ex := testSetup(t)
	p, err := opt.Plan(&query.Query{
		Tables: []string{"title"},
		Filters: []query.Filter{
			{Col: query.ColumnRef{Table: "title", Column: "production_year"}, Op: query.OpGt, Value: 1e18},
		},
		Aggregates: []query.Aggregate{{Func: query.AggCount}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 1 || res.Aggregates[0][0] != 0 {
		t.Fatalf("COUNT over empty input: rows=%d aggs=%v", res.Rows, res.Aggregates)
	}
}

func TestIntermediateCapReturnsErrTooLarge(t *testing.T) {
	db, opt, _ := testSetup(t)
	ex := New(db, Config{MaxIntermediate: 10})
	p, err := opt.Plan(&query.Query{
		Tables: []string{"title", "movie_companies"},
		Joins: []query.Join{{
			Left:  query.ColumnRef{Table: "movie_companies", Column: "movie_id"},
			Right: query.ColumnRef{Table: "title", Column: "id"},
		}},
		Aggregates: []query.Aggregate{{Func: query.AggCount}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Execute(p); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestNullJoinKeysDoNotMatch(t *testing.T) {
	// Hand-built database where child FK values include NULLs; NULL keys
	// must not match in joins.
	db := makeNullDB()
	st := stats.Collect(db, 8, 4)
	opt := optimizer.New(db.Schema, st, nil, optimizer.DefaultCostParams())
	ex := New(db, Config{})
	q := &query.Query{
		Tables: []string{"p", "c"},
		Joins: []query.Join{{
			Left:  query.ColumnRef{Table: "c", Column: "p_id"},
			Right: query.ColumnRef{Table: "p", Column: "id"},
		}},
	}
	p, err := opt.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	// c has 4 rows; row 1 and 3 have NULL p_id and must not join.
	if res.Rows != 2 {
		t.Fatalf("join rows = %d, want 2 (NULL keys must not match)", res.Rows)
	}
}

// makeNullDB builds parent p(id) with 2 rows and child c(id, p_id) with 4
// rows of which rows 1 and 3 have NULL p_id.
func makeNullDB() *storage.Database {
	pm := &schema.Table{
		Name:     "p",
		Columns:  []schema.Column{{Name: "id", Type: schema.TypeInt, DistinctCount: 2, PrimaryKey: true}},
		RowCount: 2,
	}
	pm.ComputePages()
	cm := &schema.Table{
		Name: "c",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TypeInt, DistinctCount: 4, PrimaryKey: true},
			{Name: "p_id", Type: schema.TypeInt, DistinctCount: 2, NullFrac: 0.5},
		},
		RowCount: 4,
	}
	cm.ComputePages()
	sch := &schema.Schema{
		Name:   "nulljoin",
		Tables: []*schema.Table{pm, cm},
		ForeignKeys: []schema.ForeignKey{
			{FromTable: "c", FromColumn: "p_id", ToTable: "p", ToColumn: "id"},
		},
	}
	db := storage.NewDatabase(sch)
	pt := storage.NewTable(pm)
	pt.Cols[0].Ints = []int64{0, 1}
	db.AddTable(pt)
	ct := storage.NewTable(cm)
	ct.Cols[0].Ints = []int64{0, 1, 2, 3}
	ct.Cols[1].Ints = []int64{0, 0, 1, 0}
	ct.Cols[1].Nulls = []bool{false, true, false, true}
	db.AddTable(ct)
	return db
}

func TestIndexScanWithNeqLeadFilterFallsBackToFullRange(t *testing.T) {
	// The optimizer rarely chooses this plan, but the engine must execute
	// it correctly: a <> lead predicate cannot bound the index range.
	db, _, _ := testSetup(t)
	n := plan.NewNode(plan.IndexScan)
	n.Table = "title"
	n.IndexColumn = "kind_id"
	n.Filters = []query.Filter{
		{Col: query.ColumnRef{Table: "title", Column: "kind_id"}, Op: query.OpNeq, Value: 0},
	}
	n.EstRows = 1
	n.Width = 10
	ex := New(db, Config{})
	if _, err := ex.Execute(n); err != nil {
		t.Fatal(err)
	}
	// Cross-check against a sequential count.
	tab := db.Table("title")
	col := tab.Col("kind_id")
	want := 0
	for r := 0; r < tab.Rows(); r++ {
		if !col.IsNull(r) && col.AsFloat(r) != 0 {
			want++
		}
	}
	if int(n.TrueRows) != want {
		t.Fatalf("neq index scan rows %v, want %d", n.TrueRows, want)
	}
}

func TestIndexScanRequiresDrivingPredicate(t *testing.T) {
	db, _, _ := testSetup(t)
	n := plan.NewNode(plan.IndexScan)
	n.Table = "title"
	n.IndexColumn = "kind_id"
	n.Filters = []query.Filter{
		{Col: query.ColumnRef{Table: "title", Column: "production_year"}, Op: query.OpGt, Value: 1},
	}
	if _, err := New(db, Config{}).Execute(n); err == nil {
		t.Fatal("accepted index scan whose first filter is not on the index column")
	}
}

func TestSelectStarPlansAndExecutes(t *testing.T) {
	db, opt, ex := testSetup(t)
	q := &query.Query{
		Tables: []string{"title"},
		Filters: []query.Filter{
			{Col: query.ColumnRef{Table: "title", Column: "production_year"}, Op: query.OpGt, Value: 50},
		},
	}
	p, err := opt.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Op != plan.SeqScan {
		t.Fatalf("root of SELECT * plan is %v", p.Op)
	}
	res, err := ex.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != bruteForce(db, q) {
		t.Fatalf("SELECT * rows %d, want %d", res.Rows, bruteForce(db, q))
	}
	if len(res.Aggregates) != 0 {
		t.Fatal("SELECT * produced aggregate values")
	}
}

func TestExecutorReusableAcrossQueries(t *testing.T) {
	db, opt, ex := testSetup(t)
	qs, err := query.Synthetic(db, 10, 99)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		p, err := opt.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ex.Execute(p); err != nil {
			t.Fatal(err)
		}
	}
	// Re-execute the first query; results must be identical run to run.
	p1, _ := opt.Plan(qs[0])
	p2, _ := opt.Plan(qs[0])
	r1, err := ex.Execute(p1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ex.Execute(p2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Rows != r2.Rows {
		t.Fatalf("re-execution differs: %d vs %d", r1.Rows, r2.Rows)
	}
}
