package experiments

import (
	"fmt"
	"strings"

	"github.com/zeroshot-db/zeroshot/internal/baselines"
	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/metrics"
	"github.com/zeroshot-db/zeroshot/internal/stats"
	"github.com/zeroshot-db/zeroshot/internal/zeroshot"
)

// AblationResult holds median Q-errors on the held-out database (synthetic
// workload) for each ablated variant against the full zero-shot model.
type AblationResult struct {
	// ZeroShot is the full model (message passing, transferable encoding,
	// exact cardinalities).
	ZeroShot metrics.Summary
	// OneHot (A1) trains an E2E-style one-hot model on the multi-database
	// corpus: same training data as the zero-shot model, non-transferable
	// encoding.
	OneHot metrics.Summary
	// FlatSum (A2) disables message passing.
	FlatSum metrics.Summary
	// EstCard and NoCard (A3) degrade the cardinality input.
	EstCard metrics.Summary
	NoCard  metrics.Summary
}

// Ablations runs A1-A3 on a prepared environment.
func Ablations(env *Env) (*AblationResult, error) {
	res := &AblationResult{}

	evalSummary := func(m *zeroshot.Model, card encoding.CardSource) (metrics.Summary, error) {
		preds, actuals, err := env.evalZeroShot(m, WorkloadSynthetic, card)
		if err != nil {
			return metrics.Summary{}, err
		}
		return metrics.Summarize(preds, actuals)
	}

	full, err := env.trainZeroShot(encoding.CardExact, false)
	if err != nil {
		return nil, err
	}
	if res.ZeroShot, err = evalSummary(full, encoding.CardExact); err != nil {
		return nil, err
	}

	// A2: flat sum (no message passing).
	cfgFlat := env.Cfg.Model
	cfgFlat.FlatSum = true
	samples, err := env.zeroShotSamples(encoding.CardExact, false, 0)
	if err != nil {
		return nil, err
	}
	flat := zeroshot.New(cfgFlat)
	if _, err := flat.Train(samples); err != nil {
		return nil, err
	}
	if res.FlatSum, err = evalSummary(flat, encoding.CardExact); err != nil {
		return nil, err
	}

	// A3: estimated / no cardinalities (trained and evaluated consistently).
	est, err := env.trainZeroShot(encoding.CardEstimated, false)
	if err != nil {
		return nil, err
	}
	if res.EstCard, err = evalSummary(est, encoding.CardEstimated); err != nil {
		return nil, err
	}
	none, err := env.trainZeroShot(encoding.CardNone, false)
	if err != nil {
		return nil, err
	}
	if res.NoCard, err = evalSummary(none, encoding.CardNone); err != nil {
		return nil, err
	}

	// A1: one-hot (E2E) model trained on the SAME multi-database corpus —
	// every training database featurized with its own vocabulary, then
	// mechanically applied to the held-out database with its vocabulary.
	var e2eSamples []baselines.E2ESample
	for i, db := range env.TrainDBs {
		st := stats.Collect(db, stats.DefaultBuckets, stats.DefaultMCVs)
		f := encoding.NewE2EFeaturizer(encoding.NewVocab(db.Schema), st)
		for _, r := range env.TrainRecords[i] {
			e2eSamples = append(e2eSamples, baselines.E2ESample{
				Root:       f.Featurize(r.Plan),
				RuntimeSec: r.RuntimeSec,
			})
		}
	}
	oneHot := baselines.NewE2E(env.Cfg.E2E)
	if err := oneHot.Train(e2eSamples); err != nil {
		return nil, err
	}
	stEval := stats.Collect(env.EvalDB, stats.DefaultBuckets, stats.DefaultMCVs)
	fEval := encoding.NewE2EFeaturizer(encoding.NewVocab(env.EvalDB.Schema), stEval)
	var preds, actuals []float64
	for _, r := range env.EvalRecords[WorkloadSynthetic] {
		preds = append(preds, oneHot.Predict(fEval.Featurize(r.Plan)))
		actuals = append(actuals, r.RuntimeSec)
	}
	if res.OneHot, err = metrics.Summarize(preds, actuals); err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints the ablation table.
func (r *AblationResult) Render() string {
	var b strings.Builder
	b.WriteString("== ablations: q-errors on unseen database (synthetic) ==\n")
	fmt.Fprintf(&b, "%-42s %7s %7s %7s\n", "", "median", "95th", "max")
	row := func(name string, s metrics.Summary) {
		fmt.Fprintf(&b, "%-42s %7.2f %7.2f %7.2f\n", name, s.Median, s.P95, s.Max)
	}
	row("zero-shot (full)", r.ZeroShot)
	row("A1 one-hot encoding (multi-DB trained)", r.OneHot)
	row("A2 no message passing (flat sum)", r.FlatSum)
	row("A3 estimated cardinalities", r.EstCard)
	row("A3 no cardinalities", r.NoCard)
	return b.String()
}
