package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/zeroshot-db/zeroshot/internal/costmodel"
	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/metrics"
)

// AblationResult holds median Q-errors on the held-out database (synthetic
// workload) for each ablated variant against the full zero-shot model.
type AblationResult struct {
	// ZeroShot is the full model (message passing, transferable encoding,
	// exact cardinalities).
	ZeroShot metrics.Summary
	// OneHot (A1) trains an E2E-style one-hot model on the multi-database
	// corpus: same training data as the zero-shot model, non-transferable
	// encoding.
	OneHot metrics.Summary
	// FlatSum (A2) disables message passing.
	FlatSum metrics.Summary
	// EstCard and NoCard (A3) degrade the cardinality input.
	EstCard metrics.Summary
	NoCard  metrics.Summary
}

// Ablations runs A1-A3 on a prepared environment.
func Ablations(env *Env) (*AblationResult, error) {
	ctx := context.Background()
	res := &AblationResult{}

	full, err := env.fitZeroShot(encoding.CardExact, false)
	if err != nil {
		return nil, err
	}
	if res.ZeroShot, err = env.evalSummary(full, WorkloadSynthetic); err != nil {
		return nil, err
	}

	// A2: flat sum (no message passing) — the same registry estimator with
	// the FlatSum option flipped.
	flatOpts, err := env.estimatorOptions(costmodel.NameZeroShot, encoding.CardExact)
	if err != nil {
		return nil, err
	}
	flatOpts.FlatSum = true
	flat, err := costmodel.New(costmodel.NameZeroShot, flatOpts)
	if err != nil {
		return nil, err
	}
	if _, err := flat.Fit(ctx, env.trainingSamples(false, 0)); err != nil {
		return nil, err
	}
	if res.FlatSum, err = env.evalSummary(flat, WorkloadSynthetic); err != nil {
		return nil, err
	}

	// A3: estimated / no cardinalities (trained and evaluated consistently).
	est, err := env.fitZeroShot(encoding.CardEstimated, false)
	if err != nil {
		return nil, err
	}
	if res.EstCard, err = env.evalSummary(est, WorkloadSynthetic); err != nil {
		return nil, err
	}
	none, err := env.fitZeroShot(encoding.CardNone, false)
	if err != nil {
		return nil, err
	}
	if res.NoCard, err = env.evalSummary(none, WorkloadSynthetic); err != nil {
		return nil, err
	}

	// A1: one-hot (E2E) model trained on the SAME multi-database corpus.
	// The adapter featurizes every sample with its own database's
	// vocabulary, then mechanically applies the held-out database's
	// vocabulary at evaluation — exactly the cross-database failure mode
	// the paper demonstrates.
	oneHot, err := env.NewEstimator(costmodel.NameE2E, encoding.CardEstimated)
	if err != nil {
		return nil, err
	}
	if _, err := oneHot.Fit(ctx, env.trainingSamples(false, 0)); err != nil {
		return nil, err
	}
	if res.OneHot, err = env.evalSummary(oneHot, WorkloadSynthetic); err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints the ablation table.
func (r *AblationResult) Render() string {
	var b strings.Builder
	b.WriteString("== ablations: q-errors on unseen database (synthetic) ==\n")
	fmt.Fprintf(&b, "%-42s %7s %7s %7s\n", "", "median", "95th", "max")
	row := func(name string, s metrics.Summary) {
		fmt.Fprintf(&b, "%-42s %7.2f %7.2f %7.2f\n", name, s.Median, s.P95, s.Max)
	}
	row("zero-shot (full)", r.ZeroShot)
	row("A1 one-hot encoding (multi-DB trained)", r.OneHot)
	row("A2 no message passing (flat sum)", r.FlatSum)
	row("A3 estimated cardinalities", r.EstCard)
	row("A3 no cardinalities", r.NoCard)
	return b.String()
}
