// Package experiments implements the end-to-end reproduction harness for
// every table and figure of the paper's evaluation:
//
//   - E1/E2 (Figure 3): estimation errors of workload-driven models vs
//     training-set size, compared with zero-shot models, plus the
//     training-data collection time panel.
//   - E3/E4 (Table 1): Q-error summaries of zero-shot models with exact vs
//     estimated cardinalities on scale/synthetic/JOB-light, and the what-if
//     index-tuning row.
//   - E5: holdout error vs number of training databases ("after 19
//     databases the performance stagnated").
//   - E6: few-shot fine-tuning vs training workload-driven models from
//     scratch.
//   - A1-A3: ablations (one-hot vs transferable encoding, message passing
//     vs flat sum, cardinality input quality).
//
// DESIGN.md maps each experiment to its bench target.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"github.com/zeroshot-db/zeroshot/internal/baselines"
	"github.com/zeroshot-db/zeroshot/internal/collect"
	"github.com/zeroshot-db/zeroshot/internal/costmodel"
	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/metrics"
	"github.com/zeroshot-db/zeroshot/internal/query"
	"github.com/zeroshot-db/zeroshot/internal/serving"
	"github.com/zeroshot-db/zeroshot/internal/storage"
	"github.com/zeroshot-db/zeroshot/internal/zeroshot"
)

// Workload names used throughout the harness (the paper's three evaluation
// workloads plus the index what-if workload).
const (
	WorkloadScale     = "scale"
	WorkloadSynthetic = "synthetic"
	WorkloadJOBLight  = "job-light"
	WorkloadIndex     = "index"
)

// EvalWorkloads lists the three non-index evaluation workloads in the
// paper's presentation order.
var EvalWorkloads = []string{WorkloadScale, WorkloadSynthetic, WorkloadJOBLight}

// Config sizes an experiment run. The paper's scale (19 databases x 5000
// queries, baselines up to 50000 queries) is reachable via FullConfig;
// SmallConfig keeps the complete suite in CPU-minutes.
type Config struct {
	// TrainDBs is the number of synthetic training databases.
	TrainDBs int
	// QueriesPerDB is the number of training queries per database.
	QueriesPerDB int
	// EvalQueries is the evaluation workload size per benchmark.
	EvalQueries int
	// BaselineSizes are the training-set sizes swept in Figure 3.
	BaselineSizes []int
	// Seed drives every random choice.
	Seed int64
	// IMDBScale scales the held-out evaluation database.
	IMDBScale float64
	// Model, MSCN and E2E hyperparameters.
	Model zeroshot.Config
	MSCN  baselines.MSCNConfig
	E2E   baselines.E2EConfig
	// DatagenCfg bounds the synthetic training databases.
	DatagenCfg datagen.Config
}

// SmallConfig returns a configuration that runs the full suite in a few
// CPU-minutes (used by tests and testing.B benches).
func SmallConfig() Config {
	model := zeroshot.DefaultConfig()
	model.Hidden = 24
	model.Epochs = 12
	mscn := baselines.DefaultMSCNConfig()
	mscn.Epochs = 12
	e2e := baselines.DefaultE2EConfig()
	e2e.Epochs = 12
	dg := datagen.DefaultConfig()
	dg.MaxRows = 15000
	return Config{
		TrainDBs:      8,
		QueriesPerDB:  150,
		EvalQueries:   80,
		BaselineSizes: []int{100, 400, 1200},
		Seed:          1,
		IMDBScale:     0.08,
		Model:         model,
		MSCN:          mscn,
		E2E:           e2e,
		DatagenCfg:    dg,
	}
}

// FullConfig returns the paper-scale configuration (19 databases, 5000
// queries each, baseline sweep to 50000). Expect hours of CPU time.
func FullConfig() Config {
	cfg := SmallConfig()
	cfg.TrainDBs = 19
	cfg.QueriesPerDB = 5000
	cfg.EvalQueries = 500
	cfg.BaselineSizes = []int{100, 500, 2500, 10000, 50000}
	cfg.IMDBScale = 0.2
	cfg.Model = zeroshot.DefaultConfig()
	cfg.MSCN = baselines.DefaultMSCNConfig()
	cfg.E2E = baselines.DefaultE2EConfig()
	return cfg
}

// Env holds the shared prepared state of an experiment run: training
// corpora, the held-out evaluation database, and collected records.
type Env struct {
	Cfg Config
	// TrainDBs are the synthetic training databases (the held-out
	// evaluation database is never among them).
	TrainDBs []*storage.Database
	// TrainRecords holds executed training queries per training database
	// (parallel to TrainDBs), collected without secondary indexes.
	TrainRecords [][]collect.Record
	// IndexTrainRecords holds executed training queries per training
	// database collected under that database's random fixed index set —
	// the paper's index-tuning training setup (Section 4.1).
	IndexTrainRecords [][]collect.Record
	// EvalDB is the held-out IMDB-like database.
	EvalDB *storage.Database
	// EvalRecords maps workload name to executed evaluation queries on
	// EvalDB (the index workload's records run under random hypothetical
	// indexes).
	EvalRecords map[string][]collect.Record

	sessOnce sync.Once
	sess     *serving.Session
}

// Session returns the run's serving session (built lazily): every
// experiment's predictions drain through the same serving predict stage
// and metrics as production traffic, instead of hand-wiring estimator
// calls. No database is attached — evaluation inputs carry executed
// plans, so the harness owns the pre-predict pipeline stages.
func (env *Env) Session() *serving.Session {
	env.sessOnce.Do(func() {
		env.sess = serving.NewSession(serving.Config{})
	})
	return env.sess
}

// workloadFunc maps a workload name to its generator.
func workloadFunc(name string) (collect.WorkloadFunc, error) {
	switch name {
	case WorkloadScale:
		return query.Scale, nil
	case WorkloadSynthetic, WorkloadIndex:
		return query.Synthetic, nil
	case WorkloadJOBLight:
		return query.JOBLight, nil
	default:
		return nil, fmt.Errorf("experiments: unknown workload %q", name)
	}
}

// Prepare builds the environment: generates databases, collects training
// records (with and without indexes) and evaluation records.
func Prepare(cfg Config) (*Env, error) {
	if cfg.TrainDBs <= 0 || cfg.QueriesPerDB <= 0 || cfg.EvalQueries <= 0 {
		return nil, fmt.Errorf("experiments: non-positive sizes in config")
	}
	env := &Env{Cfg: cfg, EvalRecords: map[string][]collect.Record{}}
	dbs, err := datagen.TrainingCorpus(cfg.TrainDBs, cfg.Seed, cfg.DatagenCfg)
	if err != nil {
		return nil, err
	}
	env.TrainDBs = dbs
	env.TrainRecords = make([][]collect.Record, len(dbs))
	env.IndexTrainRecords = make([][]collect.Record, len(dbs))

	// Collection per database is independent; run them concurrently with a
	// bounded worker pool. Results land at fixed indices, so the output is
	// identical to the sequential version.
	workers := runtime.GOMAXPROCS(0)
	if workers > len(dbs) {
		workers = len(dbs)
	}
	sem := make(chan struct{}, workers)
	errs := make([]error, len(dbs))
	var wg sync.WaitGroup
	for i, db := range dbs {
		wg.Add(1)
		go func(i int, db *storage.Database) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			recs, err := collect.Run(db, collect.Options{
				Queries: cfg.QueriesPerDB,
				Seed:    cfg.Seed + int64(i*1000),
			})
			if err != nil {
				errs[i] = fmt.Errorf("experiments: training collection on %s: %w", db.Schema.Name, err)
				return
			}
			env.TrainRecords[i] = recs

			idx := collect.RandomIndexes(db, cfg.Seed+int64(i*77), 0.7, 0.25)
			idxRecs, err := collect.Run(db, collect.Options{
				Queries: cfg.QueriesPerDB,
				Seed:    cfg.Seed + int64(i*1000) + 500,
				Indexes: idx,
			})
			if err != nil {
				errs[i] = fmt.Errorf("experiments: index training collection on %s: %w", db.Schema.Name, err)
				return
			}
			env.IndexTrainRecords[i] = idxRecs
		}(i, db)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	evalDB, err := datagen.IMDBLike(cfg.IMDBScale)
	if err != nil {
		return nil, err
	}
	env.EvalDB = evalDB
	for wi, w := range EvalWorkloads {
		wf, err := workloadFunc(w)
		if err != nil {
			return nil, err
		}
		recs, err := collect.Run(evalDB, collect.Options{
			Queries:  cfg.EvalQueries,
			Seed:     cfg.Seed + 90000 + int64(wi*13),
			Workload: wf,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: eval collection %s: %w", w, err)
		}
		env.EvalRecords[w] = recs
	}
	// Index workload: random hypothetical indexes on the unseen database.
	evalIdx := collect.RandomIndexes(evalDB, cfg.Seed+4242, 0.7, 0.25)
	idxRecs, err := collect.Run(evalDB, collect.Options{
		Queries:  cfg.EvalQueries,
		Seed:     cfg.Seed + 95001,
		Workload: query.Synthetic,
		Indexes:  evalIdx,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: eval index collection: %w", err)
	}
	env.EvalRecords[WorkloadIndex] = idxRecs
	return env, nil
}

// trainingSamples gathers costmodel samples from the first maxDBs training
// databases (0 = all). withIndexes selects the index-workload training
// records instead of the plain ones. Featurization happens inside the
// estimator adapters, so the same samples feed every registry estimator.
func (env *Env) trainingSamples(withIndexes bool, maxDBs int) []costmodel.Sample {
	if maxDBs <= 0 || maxDBs > len(env.TrainDBs) {
		maxDBs = len(env.TrainDBs)
	}
	var out []costmodel.Sample
	for i := 0; i < maxDBs; i++ {
		recs := env.TrainRecords[i]
		if withIndexes {
			recs = env.IndexTrainRecords[i]
		}
		out = append(out, costmodel.FromRecords(env.TrainDBs[i], recs)...)
	}
	return out
}

// estimatorOptions maps the run config's hyperparameters onto registry
// options for one estimator kind.
func (env *Env) estimatorOptions(name string, card encoding.CardSource) (costmodel.Options, error) {
	switch name {
	case costmodel.NameZeroShot:
		m := env.Cfg.Model
		return costmodel.Options{
			Hidden: m.Hidden, Epochs: m.Epochs, BatchSize: m.BatchSize,
			LR: m.LR, Seed: m.Seed, HuberDelta: m.HuberDelta,
			FlatSum: m.FlatSum, Card: card,
		}, nil
	case costmodel.NameMSCN:
		c := env.Cfg.MSCN
		return costmodel.Options{Hidden: c.Hidden, Epochs: c.Epochs, BatchSize: c.BatchSize, LR: c.LR, Seed: c.Seed}, nil
	case costmodel.NameE2E:
		c := env.Cfg.E2E
		return costmodel.Options{Hidden: c.Hidden, Epochs: c.Epochs, BatchSize: c.BatchSize, LR: c.LR, Seed: c.Seed}, nil
	case costmodel.NameScaledCost:
		return costmodel.Options{}, nil
	default:
		return costmodel.Options{}, fmt.Errorf("experiments: no options mapping for estimator %q", name)
	}
}

// NewEstimator builds a fresh registry estimator sized by the run config.
func (env *Env) NewEstimator(name string, card encoding.CardSource) (costmodel.Estimator, error) {
	opts, err := env.estimatorOptions(name, card)
	if err != nil {
		return nil, err
	}
	return costmodel.New(name, opts)
}

// fitZeroShot trains a fresh zero-shot estimator on the training corpus
// with the given cardinality source.
func (env *Env) fitZeroShot(card encoding.CardSource, withIndexes bool) (costmodel.Estimator, error) {
	est, err := env.NewEstimator(costmodel.NameZeroShot, card)
	if err != nil {
		return nil, err
	}
	if _, err := est.Fit(context.Background(), env.trainingSamples(withIndexes, 0)); err != nil {
		return nil, err
	}
	return est, nil
}

// evalInputs returns a workload's evaluation records as prediction inputs
// plus the measured runtimes.
func (env *Env) evalInputs(workload string) ([]costmodel.PlanInput, []float64, error) {
	recs, ok := env.EvalRecords[workload]
	if !ok {
		return nil, nil, fmt.Errorf("experiments: no eval records for %q", workload)
	}
	ins := make([]costmodel.PlanInput, len(recs))
	actuals := make([]float64, len(recs))
	for i, r := range recs {
		ins[i] = costmodel.FromRecord(env.EvalDB, r).PlanInput
		actuals[i] = r.RuntimeSec
	}
	return ins, actuals, nil
}

// evalEstimator batch-predicts a workload with any estimator and returns
// (predictions, actuals). Predictions route through the serving session's
// predict stage: evaluation inputs carry executed plans (exact
// cardinalities), so the earlier pipeline stages stay with the harness
// while the inference path is the production one.
func (env *Env) evalEstimator(est costmodel.Estimator, workload string) ([]float64, []float64, error) {
	ins, actuals, err := env.evalInputs(workload)
	if err != nil {
		return nil, nil, err
	}
	preds, err := env.Session().PredictPlanned(context.Background(), est, ins)
	if err != nil {
		return nil, nil, err
	}
	return preds, actuals, nil
}

// evalSummary evaluates an estimator on a workload and summarizes the
// q-errors — the one eval path every experiment shares.
func (env *Env) evalSummary(est costmodel.Estimator, workload string) (metrics.Summary, error) {
	preds, actuals, err := env.evalEstimator(est, workload)
	if err != nil {
		return metrics.Summary{}, err
	}
	return metrics.Summarize(preds, actuals)
}
