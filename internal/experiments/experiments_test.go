package experiments

import (
	"strings"
	"sync"
	"testing"

	"github.com/zeroshot-db/zeroshot/internal/baselines"
	"github.com/zeroshot-db/zeroshot/internal/costmodel"
	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/metrics"
	"github.com/zeroshot-db/zeroshot/internal/zeroshot"
)

// tinyConfig keeps every experiment test in CPU-seconds while preserving
// the paper's qualitative shapes (calibrated against larger probe runs).
func tinyConfig() Config {
	model := zeroshot.DefaultConfig()
	model.Hidden = 24
	model.Epochs = 12
	mscn := baselines.DefaultMSCNConfig()
	mscn.Epochs = 12
	e2e := baselines.DefaultE2EConfig()
	e2e.Epochs = 12
	dg := datagen.DefaultConfig()
	dg.MaxRows = 15000
	return Config{
		TrainDBs:      4,
		QueriesPerDB:  100,
		EvalQueries:   50,
		BaselineSizes: []int{50, 200, 500},
		Seed:          2,
		IMDBScale:     0.08,
		Model:         model,
		MSCN:          mscn,
		E2E:           e2e,
		DatagenCfg:    dg,
	}
}

// sharedEnv prepares one environment reused by all tests in this package.
var (
	envOnce sync.Once
	envVal  *Env
	envErr  error
)

func sharedEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		envVal, envErr = Prepare(tinyConfig())
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envVal
}

func TestPrepareBuildsCompleteEnv(t *testing.T) {
	env := sharedEnv(t)
	if len(env.TrainDBs) != env.Cfg.TrainDBs || len(env.TrainRecords) != env.Cfg.TrainDBs || len(env.IndexTrainRecords) != env.Cfg.TrainDBs {
		t.Fatalf("train corpus incomplete: %d dbs, %d record sets, %d index sets",
			len(env.TrainDBs), len(env.TrainRecords), len(env.IndexTrainRecords))
	}
	for _, recs := range env.TrainRecords {
		if len(recs) != env.Cfg.QueriesPerDB {
			t.Fatalf("record set has %d records, want %d", len(recs), env.Cfg.QueriesPerDB)
		}
	}
	for _, w := range append(append([]string{}, EvalWorkloads...), WorkloadIndex) {
		if len(env.EvalRecords[w]) != env.Cfg.EvalQueries {
			t.Fatalf("workload %s has %d records, want %d", w, len(env.EvalRecords[w]), env.Cfg.EvalQueries)
		}
	}
	// The evaluation database is never a training database.
	for _, db := range env.TrainDBs {
		if db.Schema.Name == env.EvalDB.Schema.Name {
			t.Fatal("evaluation database appears in training corpus")
		}
	}
}

// TestNewEstimatorCoversRegistry checks the experiments layer can size
// every registered estimator from its config — the guarantee that lets
// Figure3 and the ablations iterate over registry names instead of
// hand-wiring model types.
func TestNewEstimatorCoversRegistry(t *testing.T) {
	env := &Env{Cfg: tinyConfig()}
	for _, name := range costmodel.Names() {
		est, err := env.NewEstimator(name, encoding.CardExact)
		if err != nil {
			t.Fatalf("NewEstimator(%q): %v", name, err)
		}
		if est.Name() != name {
			t.Fatalf("NewEstimator(%q).Name() = %q", name, est.Name())
		}
	}
	if _, err := env.NewEstimator("no-such-estimator", encoding.CardExact); err == nil {
		t.Fatal("NewEstimator accepted an unknown name")
	}
	for _, name := range BaselineEstimators {
		found := false
		for _, reg := range costmodel.Names() {
			if name == reg {
				found = true
			}
		}
		if !found {
			t.Fatalf("BaselineEstimators names %q, not in registry %v", name, costmodel.Names())
		}
	}
}

func TestPrepareRejectsBadConfig(t *testing.T) {
	cfg := tinyConfig()
	cfg.TrainDBs = 0
	if _, err := Prepare(cfg); err == nil {
		t.Fatal("accepted zero training databases")
	}
}

func TestFigure3ShapesHold(t *testing.T) {
	env := sharedEnv(t)
	res, err := Figure3(env)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range EvalWorkloads {
		curve := res.Curves[w]
		if len(curve) != len(env.Cfg.BaselineSizes) {
			t.Fatalf("%s: %d points, want %d", w, len(curve), len(env.Cfg.BaselineSizes))
		}
		for _, p := range curve {
			if len(p.Median) != len(BaselineEstimators) {
				t.Fatalf("%s point at n=%d has %d estimators, want %d",
					w, p.TrainQueries, len(p.Median), len(BaselineEstimators))
			}
			for name, v := range p.Median {
				if v < 1 {
					t.Fatalf("%s %s q-error %v < 1", w, name, v)
				}
			}
		}
		if res.ZeroShotExact[w] < 1 || res.ZeroShotEst[w] < 1 {
			t.Fatalf("%s zero-shot q-errors below 1", w)
		}
		// Core paper shapes. Zero-shot (exact) — which needed no queries on
		// the evaluation database — is at least competitive with MSCN and
		// the scaled optimizer cost at every training size...
		zs := res.ZeroShotExact[w]
		for _, p := range curve {
			if zs > p.Median[costmodel.NameMSCN]*1.1 {
				t.Errorf("%s: zero-shot exact %.2f clearly worse than MSCN %.2f at n=%d",
					w, zs, p.Median[costmodel.NameMSCN], p.TrainQueries)
			}
			if zs > p.Median[costmodel.NameScaledCost]*1.1 {
				t.Errorf("%s: zero-shot exact %.2f clearly worse than scaled cost %.2f at n=%d",
					w, zs, p.Median[costmodel.NameScaledCost], p.TrainQueries)
			}
		}
		// ...and strictly better than every workload-driven model at the
		// smallest training budget (the regime the paper motivates).
		small := curve[0]
		if zs > small.Median[costmodel.NameMSCN] || zs > small.Median[costmodel.NameE2E]*1.05 {
			t.Errorf("%s: zero-shot exact %.2f not ahead at n=%d (MSCN %.2f, E2E %.2f)",
				w, zs, small.TrainQueries, small.Median[costmodel.NameMSCN], small.Median[costmodel.NameE2E])
		}
	}
	// Collection time grows with training-set size.
	prev := -1.0
	for _, n := range env.Cfg.BaselineSizes {
		h := res.CollectionHours[n]
		if h <= prev {
			t.Fatalf("collection hours not increasing: %v then %v", prev, h)
		}
		prev = h
	}
	out := res.Render()
	for _, want := range []string{"scale", "synthetic", "job-light", "zero-shot", "collection time"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() missing %q", want)
		}
	}
}

func TestTable1ShapesHold(t *testing.T) {
	env := sharedEnv(t)
	res, err := Table1(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(res.Rows))
	}
	if res.Rows[3].Workload != WorkloadIndex {
		t.Fatalf("last row is %s, want index", res.Rows[3].Workload)
	}
	maxOtherMedian := 0.0
	for _, row := range res.Rows {
		for _, s := range []float64{row.Exact.Median, row.Exact.P95, row.Exact.Max, row.Est.Median, row.Est.P95, row.Est.Max} {
			if s < 1 {
				t.Fatalf("row %s has q-error %v < 1", row.Workload, s)
			}
		}
		if row.Exact.Median > row.Exact.P95 || row.Exact.P95 > row.Exact.Max {
			t.Fatalf("row %s summary not ordered", row.Workload)
		}
		if row.Workload != WorkloadIndex {
			// Paper shape (Table 1): exact cardinalities tighten the tail
			// relative to estimated cardinalities.
			if row.Exact.P95 > row.Est.P95*1.05 {
				t.Errorf("row %s: exact p95 %.2f worse than estimated p95 %.2f",
					row.Workload, row.Exact.P95, row.Est.P95)
			}
			if row.Exact.Median > maxOtherMedian {
				maxOtherMedian = row.Exact.Median
			}
		}
	}
	// Paper shape: the what-if index row has clearly larger errors than the
	// plain cost-estimation rows.
	idx := res.Rows[3]
	if idx.Exact.Median < maxOtherMedian*0.9 {
		t.Errorf("index row median %.2f not elevated vs plain rows (max %.2f)",
			idx.Exact.Median, maxOtherMedian)
	}
	out := res.Render()
	if !strings.Contains(out, "index") || !strings.Contains(out, "Zero-Shot") {
		t.Errorf("Render() = %q", out)
	}
}

func TestDBCountSweep(t *testing.T) {
	env := sharedEnv(t)
	res, err := DBCountSweep(env, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("%d points", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Median < 1 {
			t.Fatalf("median %v < 1", p.Median)
		}
	}
	if res.Points[0].TrainDBs != 1 || res.Points[1].TrainDBs != 4 {
		t.Fatalf("points out of order: %+v", res.Points)
	}
	// Section 3.2 shape: more training databases do not hurt holdout error.
	if res.Points[1].Median > res.Points[0].Median*1.1 {
		t.Errorf("more databases made the model clearly worse: %.2f -> %.2f",
			res.Points[0].Median, res.Points[1].Median)
	}
	if _, err := DBCountSweep(env, []int{99}); err == nil {
		t.Fatal("accepted count beyond corpus")
	}
	if !strings.Contains(res.Render(), "databases") {
		t.Error("Render() missing label")
	}
}

func TestFewShot(t *testing.T) {
	env := sharedEnv(t)
	res, err := FewShot(env, []int{10, 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("%d points", len(res.Points))
	}
	if res.ZeroShotBaseline < 1 {
		t.Fatal("baseline q-error < 1")
	}
	// Core claim: with few queries, few-shot beats from-scratch.
	p := res.Points[0]
	if p.FewShot > p.FromScratch*1.05 {
		t.Errorf("few-shot %.2f worse than from-scratch %.2f at k=%d (claim E6 violated)",
			p.FewShot, p.FromScratch, p.TargetQueries)
	}
	if !strings.Contains(res.Render(), "few-shot") {
		t.Error("Render() missing label")
	}
}

// TestOnlineAdaptation streams an unseen database's workload through a
// Session with feedback: every chunk must produce a curve point, every
// full chunk must attempt an adaptation, and accepted swaps must be
// visible as generation bumps.
func TestOnlineAdaptation(t *testing.T) {
	env := sharedEnv(t)
	res, err := OnlineAdaptation(env, 60, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("%d points for 60 queries at chunk 20", len(res.Points))
	}
	for i, p := range res.Points {
		if p.Median < 1 {
			t.Fatalf("point %d median q-error %v < 1", i, p.Median)
		}
		if p.Generation < 1 {
			t.Fatalf("point %d generation %d", i, p.Generation)
		}
	}
	// Every full chunk triggers a fine-tune; each either swaps or is
	// rejected by the shadow eval.
	if got := res.SwapsAccepted + res.SwapsRejected; got != 3 {
		t.Fatalf("swap attempts = %d (accepted %d rejected %d), want 3",
			got, res.SwapsAccepted, res.SwapsRejected)
	}
	last := res.Points[len(res.Points)-1]
	if want := res.SwapsAccepted + 1; last.Generation != want {
		t.Fatalf("final generation %d, want %d (1 + %d accepted swaps)",
			last.Generation, want, res.SwapsAccepted)
	}
	if !strings.Contains(res.Render(), "online adaptation") {
		t.Error("Render() missing label")
	}
	// Bad stream sizing is rejected.
	if _, err := OnlineAdaptation(env, 10, 20); err == nil {
		t.Fatal("stream shorter than one chunk accepted")
	}
}

// TestWhatIfAdvisor runs E10 at test scale: the sweep must price the
// whole cross product in one batch-shaped pass, the ranking must be
// verifiable against executed ground truth, and the report must carry
// the throughput and agreement numbers EXPERIMENTS.md records.
func TestWhatIfAdvisor(t *testing.T) {
	env := sharedEnv(t)
	res, err := WhatIfAdvisor(env, 24)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != 24 || res.Candidates == 0 {
		t.Fatalf("sweep sized %d statements x %d candidates", res.Workload, res.Candidates)
	}
	if want := (res.Candidates + 1) * res.Workload; res.Items != want {
		t.Fatalf("Items = %d, want %d", res.Items, want)
	}
	if len(res.Variants) != res.Candidates {
		t.Fatalf("%d outcomes for %d candidates", len(res.Variants), res.Candidates)
	}
	if res.NsPerItem <= 0 {
		t.Fatalf("ns/item = %v", res.NsPerItem)
	}
	if res.Baseline.PredictedSec <= 0 || res.Baseline.ActualSec <= 0 {
		t.Fatalf("baseline = %+v", res.Baseline)
	}
	for i, o := range res.Variants {
		if o.PredictedSec <= 0 || o.ActualSec <= 0 {
			t.Fatalf("outcome %d = %+v", i, o)
		}
		if i > 0 && res.Variants[i-1].PredictedSec > o.PredictedSec {
			t.Fatal("outcomes not in predicted ranking order")
		}
	}
	if res.RankCorr < -1 || res.RankCorr > 1 {
		t.Fatalf("rank correlation %v out of range", res.RankCorr)
	}
	if res.Recommendation != "" && res.Recommendation != res.Variants[0].Name {
		t.Fatalf("recommendation %q is not the top-ranked variant %q", res.Recommendation, res.Variants[0].Name)
	}
	if !strings.Contains(res.Render(), "what-if advisor") {
		t.Error("Render() missing label")
	}
}

func TestAblations(t *testing.T) {
	env := sharedEnv(t)
	res, err := Ablations(env)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]metrics.Summary{
		"zeroshot": res.ZeroShot, "onehot": res.OneHot,
		"flatsum": res.FlatSum, "estcard": res.EstCard, "nocard": res.NoCard,
	} {
		if v.Median < 1 || v.P95 < v.Median || v.Max < v.P95 {
			t.Fatalf("%s summary malformed: %+v", name, v)
		}
	}
	// A1: the transferable encoding must beat one-hot on the unseen DB.
	if res.ZeroShot.Median > res.OneHot.Median {
		t.Errorf("zero-shot %.2f worse than one-hot %.2f on unseen db (A1 shape violated)",
			res.ZeroShot.Median, res.OneHot.Median)
	}
	// A3: cardinalities help (at least in the median).
	if res.ZeroShot.Median > res.NoCard.Median {
		t.Errorf("full model %.2f worse than no-card %.2f (A3 shape violated)",
			res.ZeroShot.Median, res.NoCard.Median)
	}
	if !strings.Contains(res.Render(), "ablations") {
		t.Error("Render() missing label")
	}
}
