package experiments

import (
	"fmt"
	"sort"
	"strings"

	"github.com/zeroshot-db/zeroshot/internal/baselines"
	"github.com/zeroshot-db/zeroshot/internal/collect"
	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/hwsim"
	"github.com/zeroshot-db/zeroshot/internal/metrics"
	"github.com/zeroshot-db/zeroshot/internal/stats"
)

// Figure3Point is one (training-set size, model) measurement of one
// workload panel.
type Figure3Point struct {
	TrainQueries int
	// Median Q-error per model.
	MSCN       float64
	E2E        float64
	ScaledCost float64
}

// Figure3Result reproduces the paper's Figure 3: per workload, the
// workload-driven error curve over training-set size; the flat zero-shot
// lines (which need no queries on the evaluation database); and the
// training-data collection time panel.
type Figure3Result struct {
	// Curves maps workload name to baseline measurements per training size.
	Curves map[string][]Figure3Point
	// ZeroShotExact and ZeroShotEst map workload name to the median
	// Q-error of the zero-shot model with exact / estimated cardinalities.
	ZeroShotExact map[string]float64
	ZeroShotEst   map[string]float64
	// CollectionHours maps training-set size to the simulated hours of
	// workload execution needed to collect it on the evaluation database
	// (panel 4).
	CollectionHours map[int]float64
}

// Figure3 runs experiment E1+E2.
func Figure3(env *Env) (*Figure3Result, error) {
	cfg := env.Cfg
	res := &Figure3Result{
		Curves:          map[string][]Figure3Point{},
		ZeroShotExact:   map[string]float64{},
		ZeroShotEst:     map[string]float64{},
		CollectionHours: map[int]float64{},
	}

	// Zero-shot models: trained once on other databases, never on EvalDB.
	zsExact, err := env.trainZeroShot(encoding.CardExact, false)
	if err != nil {
		return nil, err
	}
	zsEst, err := env.trainZeroShot(encoding.CardEstimated, false)
	if err != nil {
		return nil, err
	}
	for _, w := range EvalWorkloads {
		preds, actuals, err := env.evalZeroShot(zsExact, w, encoding.CardExact)
		if err != nil {
			return nil, err
		}
		s, err := metrics.Summarize(preds, actuals)
		if err != nil {
			return nil, err
		}
		res.ZeroShotExact[w] = s.Median

		preds, actuals, err = env.evalZeroShot(zsEst, w, encoding.CardEstimated)
		if err != nil {
			return nil, err
		}
		s, err = metrics.Summarize(preds, actuals)
		if err != nil {
			return nil, err
		}
		res.ZeroShotEst[w] = s.Median
	}

	// Workload-driven baselines: per training size, collect that many
	// training queries ON the evaluation database (the cost the paper
	// charges them), train, evaluate per workload.
	maxSize := 0
	for _, n := range cfg.BaselineSizes {
		if n > maxSize {
			maxSize = n
		}
	}
	trainPool, err := collect.Run(env.EvalDB, collect.Options{
		Queries: maxSize,
		Seed:    cfg.Seed + 777_000,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: baseline training pool: %w", err)
	}
	st := stats.Collect(env.EvalDB, stats.DefaultBuckets, stats.DefaultMCVs)
	vocab := encoding.NewVocab(env.EvalDB.Schema)
	mscnF := encoding.NewMSCNFeaturizer(vocab, st)
	e2eF := encoding.NewE2EFeaturizer(vocab, st)

	sizes := append([]int(nil), cfg.BaselineSizes...)
	sort.Ints(sizes)
	for _, n := range sizes {
		pool := trainPool[:n]
		// Panel 4: hours of workload execution to collect n queries.
		rts := make([]float64, n)
		for i, r := range pool {
			rts[i] = r.RuntimeSec
		}
		res.CollectionHours[n] = hwsim.CollectionHours(rts)

		// MSCN.
		mscnSamples := make([]baselines.MSCNSample, n)
		for i, r := range pool {
			mscnSamples[i] = baselines.MSCNSample{Feats: mscnF.Featurize(r.Query), RuntimeSec: r.RuntimeSec}
		}
		mscn := baselines.NewMSCN(cfg.MSCN)
		if err := mscn.Train(mscnSamples); err != nil {
			return nil, err
		}
		// E2E.
		e2eSamples := make([]baselines.E2ESample, n)
		for i, r := range pool {
			e2eSamples[i] = baselines.E2ESample{Root: e2eF.Featurize(r.Plan), RuntimeSec: r.RuntimeSec}
		}
		e2e := baselines.NewE2E(cfg.E2E)
		if err := e2e.Train(e2eSamples); err != nil {
			return nil, err
		}
		// Scaled optimizer cost.
		costs := make([]float64, n)
		for i, r := range pool {
			costs[i] = r.OptimizerCost
		}
		var sc baselines.ScaledCost
		if err := sc.Fit(costs, rts); err != nil {
			return nil, err
		}

		for _, w := range EvalWorkloads {
			recs := env.EvalRecords[w]
			var mP, eP, sP, actuals []float64
			for _, r := range recs {
				mP = append(mP, mscn.Predict(mscnF.Featurize(r.Query)))
				eP = append(eP, e2e.Predict(e2eF.Featurize(r.Plan)))
				sP = append(sP, sc.Predict(r.OptimizerCost))
				actuals = append(actuals, r.RuntimeSec)
			}
			mS, err := metrics.Summarize(mP, actuals)
			if err != nil {
				return nil, err
			}
			eS, _ := metrics.Summarize(eP, actuals)
			sS, _ := metrics.Summarize(sP, actuals)
			res.Curves[w] = append(res.Curves[w], Figure3Point{
				TrainQueries: n,
				MSCN:         mS.Median,
				E2E:          eS.Median,
				ScaledCost:   sS.Median,
			})
		}
	}
	return res, nil
}

// Render prints the result in the layout of the paper's figure: one block
// per workload panel plus the collection-time panel.
func (r *Figure3Result) Render() string {
	var b strings.Builder
	for _, w := range EvalWorkloads {
		fmt.Fprintf(&b, "== %s: median q-error vs #training queries ==\n", w)
		fmt.Fprintf(&b, "%12s %8s %8s %12s\n", "#queries", "MSCN", "E2E", "ScaledCost")
		for _, p := range r.Curves[w] {
			fmt.Fprintf(&b, "%12d %8.2f %8.2f %12.2f\n", p.TrainQueries, p.MSCN, p.E2E, p.ScaledCost)
		}
		fmt.Fprintf(&b, "%12s %8.2f (exact card., trained on other DBs only)\n", "zero-shot", r.ZeroShotExact[w])
		fmt.Fprintf(&b, "%12s %8.2f (est. card., trained on other DBs only)\n", "zero-shot", r.ZeroShotEst[w])
	}
	b.WriteString("== training-data collection time (panel 4) ==\n")
	var sizes []int
	for n := range r.CollectionHours {
		sizes = append(sizes, n)
	}
	sort.Ints(sizes)
	for _, n := range sizes {
		fmt.Fprintf(&b, "%12d queries: %7.2f h of executed workload\n", n, r.CollectionHours[n])
	}
	b.WriteString("zero-shot: 0.00 h on the unseen database (no training queries needed)\n")
	return b.String()
}
