package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"github.com/zeroshot-db/zeroshot/internal/collect"
	"github.com/zeroshot-db/zeroshot/internal/costmodel"
	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/hwsim"
	"github.com/zeroshot-db/zeroshot/internal/metrics"
)

// BaselineEstimators lists the workload-driven registry estimators of the
// paper's Figure 3 in presentation order. Adding a registered estimator
// here is all it takes to sweep a new baseline through E1.
var BaselineEstimators = []string{costmodel.NameMSCN, costmodel.NameE2E, costmodel.NameScaledCost}

// Figure3Point is one (training-set size) measurement of one workload
// panel: the median q-error of every swept estimator at that size.
type Figure3Point struct {
	TrainQueries int
	// Median maps estimator name to median q-error.
	Median map[string]float64
}

// Figure3Result reproduces the paper's Figure 3: per workload, the
// workload-driven error curve over training-set size; the flat zero-shot
// lines (which need no queries on the evaluation database); and the
// training-data collection time panel.
type Figure3Result struct {
	// Curves maps workload name to baseline measurements per training size.
	Curves map[string][]Figure3Point
	// ZeroShotExact and ZeroShotEst map workload name to the median
	// Q-error of the zero-shot model with exact / estimated cardinalities.
	ZeroShotExact map[string]float64
	ZeroShotEst   map[string]float64
	// CollectionHours maps training-set size to the simulated hours of
	// workload execution needed to collect it on the evaluation database
	// (panel 4).
	CollectionHours map[int]float64
}

// Figure3 runs experiment E1+E2.
func Figure3(env *Env) (*Figure3Result, error) {
	ctx := context.Background()
	cfg := env.Cfg
	res := &Figure3Result{
		Curves:          map[string][]Figure3Point{},
		ZeroShotExact:   map[string]float64{},
		ZeroShotEst:     map[string]float64{},
		CollectionHours: map[int]float64{},
	}

	// Zero-shot models: trained once on other databases, never on EvalDB.
	zsExact, err := env.fitZeroShot(encoding.CardExact, false)
	if err != nil {
		return nil, err
	}
	zsEst, err := env.fitZeroShot(encoding.CardEstimated, false)
	if err != nil {
		return nil, err
	}
	for _, w := range EvalWorkloads {
		s, err := env.evalSummary(zsExact, w)
		if err != nil {
			return nil, err
		}
		res.ZeroShotExact[w] = s.Median
		if s, err = env.evalSummary(zsEst, w); err != nil {
			return nil, err
		}
		res.ZeroShotEst[w] = s.Median
	}

	// Workload-driven baselines: per training size, collect that many
	// training queries ON the evaluation database (the cost the paper
	// charges them), then fit and evaluate every registry baseline.
	maxSize := 0
	for _, n := range cfg.BaselineSizes {
		if n > maxSize {
			maxSize = n
		}
	}
	trainPool, err := collect.Run(env.EvalDB, collect.Options{
		Queries: maxSize,
		Seed:    cfg.Seed + 777_000,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: baseline training pool: %w", err)
	}
	poolSamples := costmodel.FromRecords(env.EvalDB, trainPool)

	sizes := append([]int(nil), cfg.BaselineSizes...)
	sort.Ints(sizes)
	for _, n := range sizes {
		// Panel 4: hours of workload execution to collect n queries.
		rts := make([]float64, n)
		for i, r := range trainPool[:n] {
			rts[i] = r.RuntimeSec
		}
		res.CollectionHours[n] = hwsim.CollectionHours(rts)

		fitted := make(map[string]costmodel.Estimator, len(BaselineEstimators))
		for _, name := range BaselineEstimators {
			est, err := env.NewEstimator(name, encoding.CardEstimated)
			if err != nil {
				return nil, err
			}
			if _, err := est.Fit(ctx, poolSamples[:n]); err != nil {
				return nil, fmt.Errorf("experiments: fit %s at n=%d: %w", name, n, err)
			}
			fitted[name] = est
		}
		for _, w := range EvalWorkloads {
			point := Figure3Point{TrainQueries: n, Median: map[string]float64{}}
			for name, est := range fitted {
				var s metrics.Summary
				if s, err = env.evalSummary(est, w); err != nil {
					return nil, err
				}
				point.Median[name] = s.Median
			}
			res.Curves[w] = append(res.Curves[w], point)
		}
	}
	return res, nil
}

// Render prints the result in the layout of the paper's figure: one block
// per workload panel plus the collection-time panel.
func (r *Figure3Result) Render() string {
	var b strings.Builder
	for _, w := range EvalWorkloads {
		fmt.Fprintf(&b, "== %s: median q-error vs #training queries ==\n", w)
		fmt.Fprintf(&b, "%12s", "#queries")
		for _, name := range BaselineEstimators {
			fmt.Fprintf(&b, " %12s", name)
		}
		b.WriteString("\n")
		for _, p := range r.Curves[w] {
			fmt.Fprintf(&b, "%12d", p.TrainQueries)
			for _, name := range BaselineEstimators {
				fmt.Fprintf(&b, " %12.2f", p.Median[name])
			}
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "%12s %12.2f (exact card., trained on other DBs only)\n", "zero-shot", r.ZeroShotExact[w])
		fmt.Fprintf(&b, "%12s %12.2f (est. card., trained on other DBs only)\n", "zero-shot", r.ZeroShotEst[w])
	}
	b.WriteString("== training-data collection time (panel 4) ==\n")
	var sizes []int
	for n := range r.CollectionHours {
		sizes = append(sizes, n)
	}
	sort.Ints(sizes)
	for _, n := range sizes {
		fmt.Fprintf(&b, "%12d queries: %7.2f h of executed workload\n", n, r.CollectionHours[n])
	}
	b.WriteString("zero-shot: 0.00 h on the unseen database (no training queries needed)\n")
	return b.String()
}
