package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/zeroshot-db/zeroshot/internal/adapt"
	"github.com/zeroshot-db/zeroshot/internal/collect"
	"github.com/zeroshot-db/zeroshot/internal/costmodel"
	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/metrics"
	"github.com/zeroshot-db/zeroshot/internal/serving"
)

// OnlinePoint is one chunk of the streamed workload: the median q-error
// of the predictions served during the chunk and the estimator
// generation in place after the chunk's adaptation sweep.
type OnlinePoint struct {
	Queries    int     // queries streamed so far
	Median     float64 // median q-error of this chunk's served predictions
	Generation int64   // serving generation after the chunk's sweep
}

// OnlineResult is the online-adaptation experiment (E7): the q-error
// over time of a serving Session on an unseen database whose observed
// runtimes feed the adaptation loop — the serving-time analogue of the
// paper's few-shot experiment (E6), which fine-tunes offline.
type OnlineResult struct {
	Points        []OnlinePoint
	SwapsAccepted int64
	SwapsRejected int64
}

// First and Last return the opening and closing chunk medians — the
// "before adaptation" and "after adaptation" ends of the curve.
func (r *OnlineResult) First() float64 { return r.Points[0].Median }
func (r *OnlineResult) Last() float64  { return r.Points[len(r.Points)-1].Median }

// OnlineAdaptation streams an unseen database's workload through a
// serving Session with feedback enabled: every query is predicted
// through the full SQL pipeline (estimated cardinalities — serve-time
// plans are never executed), its simulated true runtime is fed back,
// and after every chunk the adaptation loop sweeps — fine-tuning a
// clone on the buffered window and hot-swapping it only when the shadow
// eval improves. queries and chunk default to 120 and 24.
func OnlineAdaptation(env *Env, queries, chunk int) (*OnlineResult, error) {
	if chunk <= 0 {
		chunk = 24
	}
	if queries <= 0 {
		queries = 5 * chunk
	}
	if queries < chunk {
		return nil, fmt.Errorf("experiments: online stream of %d shorter than one chunk of %d", queries, chunk)
	}
	ctx := context.Background()

	// The pretrained zero-shot model: trained on the multi-database
	// corpus only, never on the evaluation database. Estimated
	// cardinalities — the serving pipeline plans but does not execute.
	est, err := env.fitZeroShot(encoding.CardEstimated, false)
	if err != nil {
		return nil, err
	}
	// The streamed workload: fresh executions on the unseen database,
	// disjoint from every other experiment's records by seed. Their
	// simulated runtimes are the feedback ground truth.
	recs, err := collect.Run(env.EvalDB, collect.Options{
		Queries: queries,
		Seed:    env.Cfg.Seed + 777_000,
	})
	if err != nil {
		return nil, err
	}

	sess := serving.NewSession(serving.Config{})
	defer sess.Close()
	if err := sess.AttachDatabase("target", env.EvalDB); err != nil {
		return nil, err
	}
	if err := sess.AttachModel(est); err != nil {
		return nil, err
	}
	loop, err := adapt.New(sess, adapt.Config{
		Model:        costmodel.NameZeroShot,
		WindowSize:   chunk,
		MinSamples:   chunk / 2,
		FreshTrigger: chunk, // every full chunk adapts, drifting or not
		Epochs:       6,
		Backoff:      1, // a rejected chunk must not block the next one
	})
	if err != nil {
		return nil, err
	}
	defer loop.Close()

	res := &OnlineResult{}
	var chunkQ []float64
	for i, r := range recs {
		p, err := sess.Predict(ctx, "target", "", r.Query.SQL())
		if err != nil {
			return nil, fmt.Errorf("experiments: online predict %d: %w", i, err)
		}
		chunkQ = append(chunkQ, metrics.QError(p.RuntimeSec, r.RuntimeSec))
		if err := loop.Feedback(ctx, "target", p.Fingerprint, r.RuntimeSec); err != nil {
			return nil, fmt.Errorf("experiments: online feedback %d: %w", i, err)
		}
		if len(chunkQ) == chunk {
			loop.Sweep(ctx)
			gen, _, err := sess.ModelGeneration(costmodel.NameZeroShot)
			if err != nil {
				return nil, err
			}
			res.Points = append(res.Points, OnlinePoint{
				Queries:    i + 1,
				Median:     metrics.Median(chunkQ),
				Generation: gen,
			})
			chunkQ = chunkQ[:0]
		}
	}
	st := loop.Status()
	res.SwapsAccepted = st.SwapsAccepted
	res.SwapsRejected = st.SwapsRejected
	return res, nil
}

// Render prints the q-error-over-time curve.
func (r *OnlineResult) Render() string {
	var b strings.Builder
	b.WriteString("== online adaptation: q-error over the served stream (unseen db) ==\n")
	fmt.Fprintf(&b, "%10s %16s %12s\n", "#queries", "chunk median", "generation")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%10d %16.2f %12d\n", p.Queries, p.Median, p.Generation)
	}
	fmt.Fprintf(&b, "hot-swaps: %d accepted, %d rejected\n", r.SwapsAccepted, r.SwapsRejected)
	return b.String()
}
