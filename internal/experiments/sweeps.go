package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"github.com/zeroshot-db/zeroshot/internal/collect"
	"github.com/zeroshot-db/zeroshot/internal/costmodel"
	"github.com/zeroshot-db/zeroshot/internal/encoding"
)

// SweepPoint is one measurement of the training-database-count sweep (E5).
type SweepPoint struct {
	TrainDBs int
	// Median Q-error on the held-out database (synthetic workload,
	// exact cardinalities).
	Median float64
}

// DBCountSweepResult reproduces the Section 3.2 claim that holdout
// performance stagnates after a moderate number of training databases.
type DBCountSweepResult struct {
	Points []SweepPoint
}

// DBCountSweep trains zero-shot models on growing prefixes of the training
// corpus and evaluates each on the held-out database. counts defaults to
// 1..len(TrainDBs) in doubling steps when nil.
func DBCountSweep(env *Env, counts []int) (*DBCountSweepResult, error) {
	ctx := context.Background()
	if len(counts) == 0 {
		for n := 1; n < len(env.TrainDBs); n *= 2 {
			counts = append(counts, n)
		}
		counts = append(counts, len(env.TrainDBs))
	}
	sort.Ints(counts)
	res := &DBCountSweepResult{}
	for _, n := range counts {
		if n <= 0 || n > len(env.TrainDBs) {
			return nil, fmt.Errorf("experiments: sweep count %d outside 1..%d", n, len(env.TrainDBs))
		}
		est, err := env.NewEstimator(costmodel.NameZeroShot, encoding.CardExact)
		if err != nil {
			return nil, err
		}
		if _, err := est.Fit(ctx, env.trainingSamples(false, n)); err != nil {
			return nil, err
		}
		s, err := env.evalSummary(est, WorkloadSynthetic)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, SweepPoint{TrainDBs: n, Median: s.Median})
	}
	return res, nil
}

// Render prints the sweep.
func (r *DBCountSweepResult) Render() string {
	var b strings.Builder
	b.WriteString("== holdout median q-error vs #training databases ==\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%4d databases: median q-error %.2f\n", p.TrainDBs, p.Median)
	}
	return b.String()
}

// FewShotPoint is one measurement of the few-shot experiment (E6).
type FewShotPoint struct {
	TargetQueries int
	// FewShot is the median Q-error of the pretrained zero-shot model
	// fine-tuned on TargetQueries queries of the evaluation database.
	FewShot float64
	// FromScratch is the median Q-error of an E2E model trained from
	// scratch on the same queries.
	FromScratch float64
}

// FewShotResult reproduces the Section 4.3 claim: adapting a zero-shot
// model needs far fewer target-database queries than training a
// workload-driven model from scratch.
type FewShotResult struct {
	ZeroShotBaseline float64 // median q-error with no fine-tuning
	Points           []FewShotPoint
}

// FewShot runs experiment E6 over the given target-query counts.
func FewShot(env *Env, ks []int) (*FewShotResult, error) {
	ctx := context.Background()
	if len(ks) == 0 {
		ks = []int{10, 50, 100}
	}
	sort.Ints(ks)
	maxK := ks[len(ks)-1]
	// Fine-tuning pool collected on the evaluation database, disjoint from
	// evaluation records by seed.
	pool, err := collect.Run(env.EvalDB, collect.Options{
		Queries: maxK,
		Seed:    env.Cfg.Seed + 555_000,
	})
	if err != nil {
		return nil, err
	}
	poolSamples := costmodel.FromRecords(env.EvalDB, pool)

	base, err := env.fitZeroShot(encoding.CardExact, false)
	if err != nil {
		return nil, err
	}
	baseSum, err := env.evalSummary(base, WorkloadSynthetic)
	if err != nil {
		return nil, err
	}
	res := &FewShotResult{ZeroShotBaseline: baseSum.Median}

	for _, k := range ks {
		if k > len(poolSamples) {
			return nil, fmt.Errorf("experiments: few-shot k=%d exceeds pool %d", k, len(poolSamples))
		}
		// Few-shot: retrain a fresh copy from the multi-DB corpus, then
		// fine-tune (training mutates the model, so rebuild).
		fs, err := env.fitZeroShot(encoding.CardExact, false)
		if err != nil {
			return nil, err
		}
		tuner, ok := fs.(costmodel.FineTuner)
		if !ok {
			return nil, fmt.Errorf("experiments: %s estimator does not support fine-tuning", fs.Name())
		}
		if _, err := tuner.FineTune(ctx, poolSamples[:k], 10, 0); err != nil {
			return nil, err
		}
		fsSum, err := env.evalSummary(fs, WorkloadSynthetic)
		if err != nil {
			return nil, err
		}

		// From scratch: E2E on the same k queries.
		scratch, err := env.NewEstimator(costmodel.NameE2E, encoding.CardEstimated)
		if err != nil {
			return nil, err
		}
		if _, err := scratch.Fit(ctx, poolSamples[:k]); err != nil {
			return nil, err
		}
		sSum, err := env.evalSummary(scratch, WorkloadSynthetic)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, FewShotPoint{
			TargetQueries: k,
			FewShot:       fsSum.Median,
			FromScratch:   sSum.Median,
		})
	}
	return res, nil
}

// Render prints the few-shot comparison.
func (r *FewShotResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== few-shot vs from-scratch (median q-error, synthetic workload) ==\n")
	fmt.Fprintf(&b, "zero-shot, no target queries: %.2f\n", r.ZeroShotBaseline)
	fmt.Fprintf(&b, "%10s %10s %13s\n", "#queries", "few-shot", "from-scratch")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%10d %10.2f %13.2f\n", p.TargetQueries, p.FewShot, p.FromScratch)
	}
	return b.String()
}
