package experiments

import (
	"fmt"
	"strings"

	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/metrics"
	"github.com/zeroshot-db/zeroshot/internal/zeroshot"
)

// Table1Row is one workload row of the paper's Table 1.
type Table1Row struct {
	Workload string
	Exact    metrics.Summary // zero-shot with exact cardinalities
	Est      metrics.Summary // zero-shot with estimated cardinalities
}

// Table1Result reproduces Table 1: zero-shot Q-error summaries per
// workload, with the index what-if row last.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 runs experiments E3 (rows 1-3) and E4 (the index row). The index
// row uses a model additionally trained on index workloads of the training
// databases, mirroring Section 4.1.
func Table1(env *Env) (*Table1Result, error) {
	zsExact, err := env.trainZeroShot(encoding.CardExact, false)
	if err != nil {
		return nil, err
	}
	zsEst, err := env.trainZeroShot(encoding.CardEstimated, false)
	if err != nil {
		return nil, err
	}

	res := &Table1Result{}
	for _, w := range EvalWorkloads {
		row := Table1Row{Workload: w}
		preds, actuals, err := env.evalZeroShot(zsExact, w, encoding.CardExact)
		if err != nil {
			return nil, err
		}
		if row.Exact, err = metrics.Summarize(preds, actuals); err != nil {
			return nil, err
		}
		preds, actuals, err = env.evalZeroShot(zsEst, w, encoding.CardEstimated)
		if err != nil {
			return nil, err
		}
		if row.Est, err = metrics.Summarize(preds, actuals); err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}

	// Index row: models trained on plain + index workloads so they learn
	// how index scans change runtimes.
	wiExact, err := trainWhatIf(env, encoding.CardExact)
	if err != nil {
		return nil, err
	}
	wiEst, err := trainWhatIf(env, encoding.CardEstimated)
	if err != nil {
		return nil, err
	}
	row := Table1Row{Workload: WorkloadIndex}
	preds, actuals, err := env.evalZeroShot(wiExact, WorkloadIndex, encoding.CardExact)
	if err != nil {
		return nil, err
	}
	if row.Exact, err = metrics.Summarize(preds, actuals); err != nil {
		return nil, err
	}
	preds, actuals, err = env.evalZeroShot(wiEst, WorkloadIndex, encoding.CardEstimated)
	if err != nil {
		return nil, err
	}
	if row.Est, err = metrics.Summarize(preds, actuals); err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, row)
	return res, nil
}

// trainWhatIf trains a zero-shot model on the union of plain and
// index-workload training records.
func trainWhatIf(env *Env, card encoding.CardSource) (*zeroshot.Model, error) {
	plain, err := env.zeroShotSamples(card, false, 0)
	if err != nil {
		return nil, err
	}
	indexed, err := env.zeroShotSamples(card, true, 0)
	if err != nil {
		return nil, err
	}
	m := zeroshot.New(env.Cfg.Model)
	if _, err := m.Train(append(plain, indexed...)); err != nil {
		return nil, err
	}
	return m, nil
}

// Render prints the result in the layout of the paper's Table 1.
func (r *Table1Result) Render() string {
	var b strings.Builder
	b.WriteString("            Zero-Shot (Exact Card.)        Zero-Shot (Estimated Card.)\n")
	fmt.Fprintf(&b, "%-11s %7s %7s %7s    %7s %7s %7s\n",
		"Workload", "median", "95th", "max", "median", "95th", "max")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-11s %7.2f %7.2f %7.2f    %7.2f %7.2f %7.2f\n",
			row.Workload, row.Exact.Median, row.Exact.P95, row.Exact.Max,
			row.Est.Median, row.Est.P95, row.Est.Max)
	}
	return b.String()
}
