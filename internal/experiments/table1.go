package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/zeroshot-db/zeroshot/internal/costmodel"
	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/metrics"
)

// Table1Row is one workload row of the paper's Table 1.
type Table1Row struct {
	Workload string
	Exact    metrics.Summary // zero-shot with exact cardinalities
	Est      metrics.Summary // zero-shot with estimated cardinalities
}

// Table1Result reproduces Table 1: zero-shot Q-error summaries per
// workload, with the index what-if row last.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 runs experiments E3 (rows 1-3) and E4 (the index row). The index
// row uses a model additionally trained on index workloads of the training
// databases, mirroring Section 4.1.
func Table1(env *Env) (*Table1Result, error) {
	zsExact, err := env.fitZeroShot(encoding.CardExact, false)
	if err != nil {
		return nil, err
	}
	zsEst, err := env.fitZeroShot(encoding.CardEstimated, false)
	if err != nil {
		return nil, err
	}

	res := &Table1Result{}
	for _, w := range EvalWorkloads {
		row := Table1Row{Workload: w}
		if row.Exact, err = env.evalSummary(zsExact, w); err != nil {
			return nil, err
		}
		if row.Est, err = env.evalSummary(zsEst, w); err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}

	// Index row: models trained on plain + index workloads so they learn
	// how index scans change runtimes.
	wiExact, err := trainWhatIf(env, encoding.CardExact)
	if err != nil {
		return nil, err
	}
	wiEst, err := trainWhatIf(env, encoding.CardEstimated)
	if err != nil {
		return nil, err
	}
	row := Table1Row{Workload: WorkloadIndex}
	if row.Exact, err = env.evalSummary(wiExact, WorkloadIndex); err != nil {
		return nil, err
	}
	if row.Est, err = env.evalSummary(wiEst, WorkloadIndex); err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, row)
	return res, nil
}

// trainWhatIf trains a zero-shot estimator on the union of plain and
// index-workload training records.
func trainWhatIf(env *Env, card encoding.CardSource) (costmodel.Estimator, error) {
	est, err := env.NewEstimator(costmodel.NameZeroShot, card)
	if err != nil {
		return nil, err
	}
	samples := append(env.trainingSamples(false, 0), env.trainingSamples(true, 0)...)
	if _, err := est.Fit(context.Background(), samples); err != nil {
		return nil, err
	}
	return est, nil
}

// Render prints the result in the layout of the paper's Table 1.
func (r *Table1Result) Render() string {
	var b strings.Builder
	b.WriteString("            Zero-Shot (Exact Card.)        Zero-Shot (Estimated Card.)\n")
	fmt.Fprintf(&b, "%-11s %7s %7s %7s    %7s %7s %7s\n",
		"Workload", "median", "95th", "max", "median", "95th", "max")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-11s %7.2f %7.2f %7.2f    %7.2f %7.2f %7.2f\n",
			row.Workload, row.Exact.Median, row.Exact.P95, row.Exact.Max,
			row.Est.Median, row.Est.P95, row.Est.Max)
	}
	return b.String()
}
