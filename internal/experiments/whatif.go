package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/engine"
	"github.com/zeroshot-db/zeroshot/internal/hwsim"
	"github.com/zeroshot-db/zeroshot/internal/optimizer"
	"github.com/zeroshot-db/zeroshot/internal/query"
	"github.com/zeroshot-db/zeroshot/internal/stats"
	"github.com/zeroshot-db/zeroshot/internal/whatif"
)

// WhatIfOutcome is one variant's predicted vs executed workload runtime.
type WhatIfOutcome struct {
	Name         string
	PredictedSec float64
	ActualSec    float64
}

// WhatIfResult is the advisor experiment (E10): a full what-if sweep on
// the unseen database — candidates enumerated from the workload, every
// (variant × statement) pair priced through one fused batch — verified
// against the executed ground truth of the same variants.
type WhatIfResult struct {
	// Workload and Candidates size the sweep; Items is the fused batch
	// ((candidates+1) × workload).
	Workload   int
	Candidates int
	Items      int
	// NsPerItem is the steady-state sweep cost per (variant × statement)
	// pair on a warm catalog — directly comparable to E9's fused ns/item.
	NsPerItem float64
	// Baseline and Variants hold predicted and executed workload
	// runtimes; Variants keeps the sweep's predicted ranking order.
	Baseline WhatIfOutcome
	Variants []WhatIfOutcome
	// Recommendation is the sweep's top-ranked variant (empty if nothing
	// beats the baseline).
	Recommendation string
	// Top1Agrees reports whether the predicted winner is also the
	// executed winner; RankCorr is the Spearman correlation between the
	// predicted and executed variant rankings (1 = identical order).
	Top1Agrees bool
	RankCorr   float64
}

// WhatIfAdvisor runs E10: the Section 4.1 advisor as the whatif
// subsystem serves it. A zero-shot model trained on plain AND
// index-workload plans of the training databases (never the evaluation
// database) sweeps an unseen-database workload over enumerated index
// candidates; the predicted ranking is then verified by materializing
// each candidate and executing the workload under it. queries defaults
// to 32, sized so the fused sweep batch reaches 256 items with the
// schema's candidate count.
func WhatIfAdvisor(env *Env, queries int) (*WhatIfResult, error) {
	if queries <= 0 {
		queries = 32
	}
	ctx := context.Background()

	// Estimated cardinalities: advise-time plans are never executed.
	est, err := trainWhatIf(env, encoding.CardEstimated)
	if err != nil {
		return nil, err
	}
	qs, err := query.Synthetic(env.EvalDB, queries, env.Cfg.Seed+880_000)
	if err != nil {
		return nil, err
	}
	cands, err := whatif.Enumerate(env.EvalDB.Schema, qs, nil, 0)
	if err != nil {
		return nil, err
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("experiments: whatif workload proposed no candidates")
	}
	variants := make([]whatif.Variant, len(cands))
	for i, c := range cands {
		variants[i] = whatif.Variant{Name: c.Index, Indexes: []string{c.Index}}
	}

	st := stats.Collect(env.EvalDB, stats.DefaultBuckets, stats.DefaultMCVs)
	cat := whatif.NewCatalog(env.EvalDB, st, optimizer.DefaultCostParams(), 0)
	stmts := whatif.Statements(qs)

	// One cold sweep fills the prepared-plan cache; the timed sweeps then
	// measure the steady-state fused pricing path (the shape repeated
	// advise traffic sees, and the number comparable to E9).
	rep, err := cat.Sweep(ctx, est, stmts, variants)
	if err != nil {
		return nil, err
	}
	const reps = 3
	start := time.Now()
	for i := 0; i < reps; i++ {
		if rep, err = cat.Sweep(ctx, est, stmts, variants); err != nil {
			return nil, err
		}
	}
	elapsed := time.Since(start)

	res := &WhatIfResult{
		Workload:       len(stmts),
		Candidates:     len(cands),
		Items:          rep.Items,
		NsPerItem:      float64(elapsed.Nanoseconds()) / float64(reps*rep.Items),
		Recommendation: rep.Recommendation,
	}

	// Executed ground truth: plan the workload under each variant's
	// hypothetical IndexSet and actually execute it (materializing the
	// index). Execution only ever adds index structures — plan choice
	// depends on each optimizer's advice set, never on what storage has
	// materialized — so truth runs cannot leak into one another.
	execute := func(indexes []string) (float64, error) {
		idx := optimizer.IndexSet{}
		for _, k := range indexes {
			idx[k] = true
		}
		opt := optimizer.New(env.EvalDB.Schema, st, idx, optimizer.DefaultCostParams())
		ex := engine.New(env.EvalDB, engine.Config{})
		sim := hwsim.New(hwsim.DefaultProfile(), 1)
		total := 0.0
		for _, q := range qs {
			p, err := opt.Plan(q)
			if err != nil {
				return 0, err
			}
			if _, err := ex.Execute(p); err != nil {
				return 0, err
			}
			total += sim.RuntimeNoiseless(p)
		}
		return total, nil
	}
	actual, err := execute(nil)
	if err != nil {
		return nil, err
	}
	res.Baseline = WhatIfOutcome{Name: rep.Baseline.Name, PredictedSec: rep.Baseline.TotalSec, ActualSec: actual}
	for _, vr := range rep.Variants {
		if vr.Errors > 0 {
			return nil, fmt.Errorf("experiments: whatif variant %s had %d pricing errors", vr.Name, vr.Errors)
		}
		if actual, err = execute(vr.Indexes); err != nil {
			return nil, err
		}
		res.Variants = append(res.Variants, WhatIfOutcome{Name: vr.Name, PredictedSec: vr.TotalSec, ActualSec: actual})
	}

	best := 0
	for i, o := range res.Variants {
		if o.ActualSec < res.Variants[best].ActualSec {
			best = i
		}
	}
	res.Top1Agrees = best == 0
	res.RankCorr = spearman(res.Variants)
	return res, nil
}

// spearman computes the Spearman rank correlation between the predicted
// order (the slice order) and the executed order of the outcomes.
func spearman(outcomes []WhatIfOutcome) float64 {
	n := len(outcomes)
	if n < 2 {
		return 1
	}
	byActual := make([]int, n)
	for i := range byActual {
		byActual[i] = i
	}
	sort.SliceStable(byActual, func(a, b int) bool {
		return outcomes[byActual[a]].ActualSec < outcomes[byActual[b]].ActualSec
	})
	actualRank := make([]int, n)
	for rank, i := range byActual {
		actualRank[i] = rank
	}
	sum := 0.0
	for predRank, rank := range actualRank {
		d := float64(predRank - rank)
		sum += d * d
	}
	return 1 - 6*sum/float64(n*(n*n-1))
}

// Render prints the predicted-vs-executed ranking table.
func (r *WhatIfResult) Render() string {
	var b strings.Builder
	b.WriteString("== what-if advisor: fused sweep vs executed ground truth (unseen db) ==\n")
	fmt.Fprintf(&b, "sweep: %d statements x %d candidates (+baseline) = %d items, %.0f ns/item warm\n",
		r.Workload, r.Candidates, r.Items, r.NsPerItem)
	fmt.Fprintf(&b, "%-34s %14s %14s\n", "variant", "predicted (s)", "executed (s)")
	fmt.Fprintf(&b, "%-34s %14.2f %14.2f\n", "(baseline)", r.Baseline.PredictedSec, r.Baseline.ActualSec)
	for _, o := range r.Variants {
		fmt.Fprintf(&b, "%-34s %14.2f %14.2f\n", o.Name, o.PredictedSec, o.ActualSec)
	}
	rec := r.Recommendation
	if rec == "" {
		rec = "(keep baseline)"
	}
	fmt.Fprintf(&b, "recommendation: %s   top-1 agrees: %v   rank correlation: %.2f\n",
		rec, r.Top1Agrees, r.RankCorr)
	return b.String()
}
