// Package hwsim converts the execution engine's work counters into
// simulated query runtimes.
//
// It substitutes for the paper's physical testbed (PostgreSQL on real
// hardware with measured wall-clock runtimes). The simulator computes a
// runtime per plan operator from its work counters using per-unit costs of
// a machine profile, applies two nonlinearities that real hardware exhibits
// (hash tables spilling out of cache, working sets exceeding the buffer
// pool) and multiplies log-normal noise onto the total.
//
// The crucial property for the reproduction: the learned models never see
// the simulator's internals — only plan features and cardinalities — so
// runtime remains a noisy nonlinear function of quantities derivable from
// transferable features, exactly the setting the zero-shot model exploits.
package hwsim

import (
	"math"
	"math/rand"

	"github.com/zeroshot-db/zeroshot/internal/plan"
)

// Profile holds the per-unit costs of one simulated machine, in
// nanoseconds per unit of work.
type Profile struct {
	Name string

	SeqPageNS    float64 // sequential page read
	RandPageNS   float64 // random page read
	TupleNS      float64 // per processed tuple
	PredNS       float64 // per predicate evaluation
	HashBuildNS  float64 // per hash table insert
	HashProbeNS  float64 // per hash table probe
	IndexDescNS  float64 // per index descent
	IndexEntryNS float64 // per scanned index entry
	AggUpdateNS  float64 // per aggregate-state update
	OutputByteNS float64 // per emitted byte
	OperatorNS   float64 // fixed startup per operator
	QueryNS      float64 // fixed per-query overhead (parse, plan, client)

	// CacheBytes is the effective cache size: hash tables larger than this
	// probe more slowly (CacheMissFactor).
	CacheBytes      float64
	CacheMissFactor float64
	// BufferPoolPages is the page budget: plans touching more pages pay
	// BufferMissFactor on the excess pages.
	BufferPoolPages  float64
	BufferMissFactor float64

	// NoiseSigma is the sigma of the multiplicative log-normal noise.
	NoiseSigma float64
}

// DefaultProfile returns the reference machine used by all experiments.
// Constants are sized so typical benchmark queries take tens of
// milliseconds to seconds — the regime where the paper's training-data
// collection takes hours.
func DefaultProfile() Profile {
	return Profile{
		Name:             "reference",
		SeqPageNS:        6_000_000,
		RandPageNS:       32_000_000,
		TupleNS:          45_000,
		PredNS:           12_000,
		HashBuildNS:      70_000,
		HashProbeNS:      35_000,
		IndexDescNS:      150_000,
		IndexEntryNS:     18_000,
		AggUpdateNS:      25_000,
		OutputByteNS:     100,
		OperatorNS:       2_000_000,
		QueryNS:          20_000_000,
		CacheBytes:       512 << 10,
		CacheMissFactor:  3.0,
		BufferPoolPages:  512,
		BufferMissFactor: 3.5,
		NoiseSigma:       0.10,
	}
}

// FastProfile returns a machine roughly 4x faster than the reference, used
// by tests that exercise cross-hardware behaviour.
func FastProfile() Profile {
	p := DefaultProfile()
	p.Name = "fast"
	p.SeqPageNS /= 4
	p.RandPageNS /= 4
	p.TupleNS /= 4
	p.PredNS /= 4
	p.HashBuildNS /= 4
	p.HashProbeNS /= 4
	p.IndexDescNS /= 4
	p.IndexEntryNS /= 4
	p.AggUpdateNS /= 4
	p.QueryNS /= 2
	p.CacheBytes *= 4
	return p
}

// Simulator produces runtimes for executed plans.
type Simulator struct {
	prof Profile
	rng  *rand.Rand
}

// New creates a simulator with the profile and noise seed.
func New(prof Profile, seed int64) *Simulator {
	return &Simulator{prof: prof, rng: rand.New(rand.NewSource(seed))}
}

// Profile returns the simulator's machine profile.
func (s *Simulator) Profile() Profile { return s.prof }

// nodeTime computes one operator's time in nanoseconds from its counters.
func (p Profile) nodeTime(n *plan.Node) float64 {
	w := n.Work
	t := p.OperatorNS
	t += w.TuplesIn * p.TupleNS
	t += w.PredEvals * p.PredNS
	t += w.IndexLookups * p.IndexDescNS
	t += w.IndexEntries * p.IndexEntryNS
	t += w.AggUpdates * p.AggUpdateNS
	t += w.BytesOut * p.OutputByteNS

	// Hash operators slow down once their table spills out of cache.
	probeNS := p.HashProbeNS
	buildNS := p.HashBuildNS
	tableBytes := w.HashBuild * math.Max(n.Width, 16)
	if n.Op == plan.HashAggregate {
		tableBytes = w.Groups * math.Max(n.Width, 16)
	}
	if tableBytes > p.CacheBytes && p.CacheBytes > 0 {
		probeNS *= p.CacheMissFactor
		buildNS *= p.CacheMissFactor
	}
	t += w.HashBuild * buildNS
	t += w.HashProbes * probeNS

	// Page reads: sequential for seq scans, random for index access.
	pageNS := p.SeqPageNS
	if n.Op == plan.IndexScan {
		pageNS = p.RandPageNS
	}
	t += w.PagesRead * pageNS
	return t
}

// RuntimeNoiseless returns the deterministic runtime in seconds of an
// executed plan (work counters must be filled by the engine).
func (s *Simulator) RuntimeNoiseless(root *plan.Node) float64 {
	totalNS := s.prof.QueryNS
	totalPages := 0.0
	root.Walk(func(n *plan.Node) {
		totalNS += s.prof.nodeTime(n)
		totalPages += n.Work.PagesRead
	})
	// Buffer-pool pressure: pages beyond the pool budget are re-read from
	// slower storage.
	if s.prof.BufferPoolPages > 0 && totalPages > s.prof.BufferPoolPages {
		excess := totalPages - s.prof.BufferPoolPages
		totalNS += excess * s.prof.SeqPageNS * (s.prof.BufferMissFactor - 1)
	}
	return totalNS / 1e9
}

// Runtime returns the runtime in seconds with multiplicative log-normal
// noise applied, modelling run-to-run variance of real measurements.
func (s *Simulator) Runtime(root *plan.Node) float64 {
	base := s.RuntimeNoiseless(root)
	if s.prof.NoiseSigma <= 0 {
		return base
	}
	noise := math.Exp(s.rng.NormFloat64() * s.prof.NoiseSigma)
	return base * noise
}

// CollectionHours converts a set of per-query runtimes (seconds) into the
// total workload-execution time in hours — the paper's Figure 3 panel 4
// metric for the cost of collecting training data.
func CollectionHours(runtimes []float64) float64 {
	total := 0.0
	for _, r := range runtimes {
		total += r
	}
	return total / 3600
}

// PeakMemoryBytes estimates the peak working-set size of an executed plan
// from its work counters: the hash tables of joins and aggregates that are
// live simultaneously (summed, since build sides coexist up the pipeline)
// plus the largest materialized intermediate. This is the resource target
// of the paper's Section 4.3 extension ("predict not only the runtime but
// also other aspects such as resource consumption").
func PeakMemoryBytes(root *plan.Node) float64 {
	tables := 0.0
	maxIntermediate := 0.0
	root.Walk(func(n *plan.Node) {
		w := math.Max(n.Width, 16)
		switch n.Op {
		case plan.HashJoin:
			tables += n.Work.HashBuild * w
		case plan.HashAggregate:
			tables += n.Work.Groups * w
		}
		if n.Work.BytesOut > maxIntermediate {
			maxIntermediate = n.Work.BytesOut
		}
	})
	const fixedOverhead = 1 << 20 // executor bookkeeping
	return tables + maxIntermediate + fixedOverhead
}

// SlowProfile returns a machine roughly 2.5x slower than the reference
// with a smaller cache, the third point of the cross-hardware experiments.
func SlowProfile() Profile {
	p := DefaultProfile()
	p.Name = "slow"
	p.SeqPageNS *= 2.5
	p.RandPageNS *= 2.5
	p.TupleNS *= 2.5
	p.PredNS *= 2.5
	p.HashBuildNS *= 2.5
	p.HashProbeNS *= 2.5
	p.IndexDescNS *= 2.5
	p.IndexEntryNS *= 2.5
	p.AggUpdateNS *= 2.5
	p.CacheBytes /= 2
	return p
}

// Descriptor returns the transferable relative features of the profile
// versus the reference machine: speeds as reference/this ratios (1 = equal,
// 2 = twice as fast) and capacities in absolute units. These feed the
// encoding's hardware extension for cross-hardware predictions.
func (p Profile) Descriptor() (relCPU, relSeqIO, relRandIO, cacheMB, poolPages float64) {
	ref := DefaultProfile()
	return ref.TupleNS / p.TupleNS,
		ref.SeqPageNS / p.SeqPageNS,
		ref.RandPageNS / p.RandPageNS,
		p.CacheBytes / (1 << 20),
		p.BufferPoolPages
}
