package hwsim

import (
	"math"
	"testing"

	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/engine"
	"github.com/zeroshot-db/zeroshot/internal/optimizer"
	"github.com/zeroshot-db/zeroshot/internal/plan"
	"github.com/zeroshot-db/zeroshot/internal/query"
	"github.com/zeroshot-db/zeroshot/internal/stats"
)

func executedPlan(t *testing.T, sql string) *plan.Node {
	t.Helper()
	db, err := datagen.IMDBLike(0.05)
	if err != nil {
		t.Fatal(err)
	}
	st := stats.Collect(db, stats.DefaultBuckets, stats.DefaultMCVs)
	opt := optimizer.New(db.Schema, st, nil, optimizer.DefaultCostParams())
	q := &query.Query{
		Tables: []string{"title", "movie_companies"},
		Joins: []query.Join{{
			Left:  query.ColumnRef{Table: "movie_companies", Column: "movie_id"},
			Right: query.ColumnRef{Table: "title", Column: "id"},
		}},
		Aggregates: []query.Aggregate{{Func: query.AggCount}},
	}
	p, err := opt.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.New(db, engine.Config{}).Execute(p); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRuntimePositiveAndDeterministic(t *testing.T) {
	p := executedPlan(t, "")
	sim := New(DefaultProfile(), 1)
	r1 := sim.RuntimeNoiseless(p)
	r2 := sim.RuntimeNoiseless(p)
	if r1 <= 0 {
		t.Fatalf("runtime = %v", r1)
	}
	if r1 != r2 {
		t.Fatalf("noiseless runtime not deterministic: %v vs %v", r1, r2)
	}
}

func TestNoiseIsBoundedAndNonDegenerate(t *testing.T) {
	p := executedPlan(t, "")
	sim := New(DefaultProfile(), 7)
	base := sim.RuntimeNoiseless(p)
	varied := false
	for i := 0; i < 50; i++ {
		r := sim.Runtime(p)
		ratio := r / base
		if ratio < 0.5 || ratio > 2.0 {
			t.Fatalf("noise ratio %v outside plausible band", ratio)
		}
		if math.Abs(ratio-1) > 1e-6 {
			varied = true
		}
	}
	if !varied {
		t.Fatal("noise never varied")
	}
}

func TestZeroSigmaMeansNoNoise(t *testing.T) {
	p := executedPlan(t, "")
	prof := DefaultProfile()
	prof.NoiseSigma = 0
	sim := New(prof, 3)
	if sim.Runtime(p) != sim.RuntimeNoiseless(p) {
		t.Fatal("sigma=0 still noisy")
	}
}

func TestMoreWorkTakesLonger(t *testing.T) {
	p := executedPlan(t, "")
	sim := New(DefaultProfile(), 1)
	base := sim.RuntimeNoiseless(p)
	// Inflate the root's tuple counter; runtime must increase.
	bigger := p.Clone()
	bigger.Work.TuplesIn += 1e6
	if got := sim.RuntimeNoiseless(bigger); got <= base {
		t.Fatalf("inflated plan not slower: %v <= %v", got, base)
	}
}

func TestFastProfileFaster(t *testing.T) {
	p := executedPlan(t, "")
	slow := New(DefaultProfile(), 1).RuntimeNoiseless(p)
	fast := New(FastProfile(), 1).RuntimeNoiseless(p)
	if fast >= slow {
		t.Fatalf("fast profile not faster: %v >= %v", fast, slow)
	}
}

func TestCacheSpillSlowsHashJoin(t *testing.T) {
	prof := DefaultProfile()
	n := plan.NewNode(plan.HashJoin)
	n.Width = 64
	n.Work = plan.Counters{HashBuild: 1000, HashProbes: 1000}
	small := prof.nodeTime(n)
	// Same per-tuple work but a table far beyond cache.
	big := plan.NewNode(plan.HashJoin)
	big.Width = 64
	big.Work = plan.Counters{HashBuild: 1000, HashProbes: 1000}
	prof.CacheBytes = 1000 // force spill
	spilled := prof.nodeTime(big)
	if spilled <= small {
		t.Fatalf("cache spill did not slow hash join: %v <= %v", spilled, small)
	}
}

func TestBufferPoolPressure(t *testing.T) {
	prof := DefaultProfile()
	prof.BufferPoolPages = 10
	sim := New(prof, 1)
	n := plan.NewNode(plan.SeqScan)
	n.Table = "t"
	n.Work = plan.Counters{PagesRead: 1000}
	withPressure := sim.RuntimeNoiseless(n)
	prof2 := DefaultProfile()
	prof2.BufferPoolPages = 1e9
	sim2 := New(prof2, 1)
	without := sim2.RuntimeNoiseless(n)
	if withPressure <= without {
		t.Fatalf("buffer pressure did not slow query: %v <= %v", withPressure, without)
	}
}

func TestCollectionHours(t *testing.T) {
	if got := CollectionHours([]float64{3600, 1800}); got != 1.5 {
		t.Fatalf("CollectionHours = %v, want 1.5", got)
	}
	if got := CollectionHours(nil); got != 0 {
		t.Fatalf("CollectionHours(nil) = %v", got)
	}
}

func TestPeakMemoryBytesReflectsHashWork(t *testing.T) {
	small := plan.NewNode(plan.HashJoin)
	small.Width = 64
	small.Work = plan.Counters{HashBuild: 100, BytesOut: 1000}
	big := plan.NewNode(plan.HashJoin)
	big.Width = 64
	big.Work = plan.Counters{HashBuild: 100000, BytesOut: 1000}
	if PeakMemoryBytes(big) <= PeakMemoryBytes(small) {
		t.Fatal("larger hash build did not increase peak memory")
	}
	// Aggregates contribute via group count.
	agg := plan.NewNode(plan.HashAggregate)
	agg.Width = 32
	agg.Work = plan.Counters{Groups: 50000}
	if PeakMemoryBytes(agg) <= PeakMemoryBytes(plan.NewNode(plan.SeqScan)) {
		t.Fatal("aggregate groups did not increase peak memory")
	}
}

func TestSlowProfileSlower(t *testing.T) {
	p := executedPlan(t, "")
	ref := New(DefaultProfile(), 1).RuntimeNoiseless(p)
	slow := New(SlowProfile(), 1).RuntimeNoiseless(p)
	if slow <= ref {
		t.Fatalf("slow profile not slower: %v <= %v", slow, ref)
	}
}

func TestDescriptorRelativeSpeeds(t *testing.T) {
	relCPU, relSeq, relRand, cacheMB, pool := DefaultProfile().Descriptor()
	if relCPU != 1 || relSeq != 1 || relRand != 1 {
		t.Fatalf("reference descriptor not unity: %v %v %v", relCPU, relSeq, relRand)
	}
	if cacheMB <= 0 || pool <= 0 {
		t.Fatalf("capacities not positive: %v %v", cacheMB, pool)
	}
	fCPU, fSeq, _, _, _ := FastProfile().Descriptor()
	if fCPU <= 1 || fSeq <= 1 {
		t.Fatalf("fast profile not faster in descriptor: %v %v", fCPU, fSeq)
	}
	sCPU, _, _, _, _ := SlowProfile().Descriptor()
	if sCPU >= 1 {
		t.Fatalf("slow profile not slower in descriptor: %v", sCPU)
	}
}
