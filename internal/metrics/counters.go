package metrics

import (
	"sync"
	"sync/atomic"
	"time"
)

// This file holds the serving-side observability primitives: cheap,
// goroutine-safe counters the prediction service aggregates into its
// /v1/stats endpoint. They are deliberately simple — atomic counters and a
// bounded reservoir of recent latencies — so recording on the request hot
// path costs nanoseconds.

// Counter is a goroutine-safe monotonic event counter.
type Counter struct {
	n atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.n.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// HitCounter tracks a hit/miss ratio (e.g. a cache's).
type HitCounter struct {
	hits   atomic.Int64
	misses atomic.Int64
}

// Hit records one hit.
func (h *HitCounter) Hit() { h.hits.Add(1) }

// HitN records n hits in one atomic add — for call sites that resolve a
// whole batch to the same outcome.
func (h *HitCounter) HitN(n int64) { h.hits.Add(n) }

// Miss records one miss.
func (h *HitCounter) Miss() { h.misses.Add(1) }

// HitRate summarizes a HitCounter.
type HitRate struct {
	Hits   int64   `json:"hits"`
	Misses int64   `json:"misses"`
	Rate   float64 `json:"rate"`
}

// Snapshot returns the current hit/miss totals and rate (0 when empty).
func (h *HitCounter) Snapshot() HitRate {
	hits, misses := h.hits.Load(), h.misses.Load()
	r := HitRate{Hits: hits, Misses: misses}
	if total := hits + misses; total > 0 {
		r.Rate = float64(hits) / float64(total)
	}
	return r
}

// latencyWindow bounds the reservoir of recent observations a
// LatencyRecorder keeps for quantile estimates. Totals (count, sum, max)
// cover the recorder's whole lifetime.
const latencyWindow = 1024

// LatencyRecorder records operation latencies: lifetime count/mean/max
// plus p50/p95 over a sliding Window of the most recent observations.
// The zero value is ready to use.
type LatencyRecorder struct {
	mu    sync.Mutex
	w     *Window // reservoir for the quantiles, allocated on first use
	count int64
	sum   float64
	max   float64
}

// Observe records one operation latency.
func (l *LatencyRecorder) Observe(d time.Duration) {
	sec := d.Seconds()
	l.mu.Lock()
	if l.w == nil {
		l.w = NewWindow(latencyWindow)
	}
	w := l.w
	l.count++
	l.sum += sec
	if sec > l.max {
		l.max = sec
	}
	l.mu.Unlock()
	w.Observe(sec)
}

// LatencySummary is a point-in-time view of a LatencyRecorder, in
// milliseconds (the natural unit of serving latencies).
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// Snapshot summarizes the recorder. Quantiles come from the recent
// window; count, mean and max cover all observations ever recorded.
func (l *LatencyRecorder) Snapshot() LatencySummary {
	l.mu.Lock()
	w, count, sum, max := l.w, l.count, l.sum, l.max
	l.mu.Unlock()
	if count == 0 {
		return LatencySummary{}
	}
	ws := w.Snapshot()
	const toMs = 1e3
	return LatencySummary{
		Count:  count,
		MeanMs: sum / float64(count) * toMs,
		P50Ms:  ws.P50 * toMs,
		P95Ms:  ws.P95 * toMs,
		P99Ms:  ws.P99 * toMs,
		MaxMs:  max * toMs,
	}
}
