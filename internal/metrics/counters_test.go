package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Inc()
			}
			c.Add(2)
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8*102 {
		t.Fatalf("counter = %d, want %d", got, 8*102)
	}
}

func TestHitCounter(t *testing.T) {
	var h HitCounter
	if r := h.Snapshot(); r.Rate != 0 || r.Hits != 0 || r.Misses != 0 {
		t.Fatalf("empty snapshot = %+v", r)
	}
	h.Hit()
	h.HitN(2)
	h.Miss()
	r := h.Snapshot()
	if r.Hits != 3 || r.Misses != 1 || math.Abs(r.Rate-0.75) > 1e-12 {
		t.Fatalf("snapshot = %+v, want 3 hits / 1 miss / rate 0.75", r)
	}
}

func TestLatencyRecorder(t *testing.T) {
	var l LatencyRecorder
	if s := l.Snapshot(); s.Count != 0 || s.P95Ms != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
	// 100 observations of 1ms..100ms.
	for i := 1; i <= 100; i++ {
		l.Observe(time.Duration(i) * time.Millisecond)
	}
	s := l.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if math.Abs(s.P50Ms-50) > 1 || math.Abs(s.P95Ms-95) > 1 {
		t.Fatalf("p50 = %.2fms p95 = %.2fms, want ~50/~95", s.P50Ms, s.P95Ms)
	}
	if math.Abs(s.MaxMs-100) > 1e-9 || math.Abs(s.MeanMs-50.5) > 1e-9 {
		t.Fatalf("max = %.2fms mean = %.2fms, want 100/50.5", s.MaxMs, s.MeanMs)
	}
}

// TestLatencyRecorderWindow checks that quantiles track the recent window
// while count and max stay lifetime-wide.
func TestLatencyRecorderWindow(t *testing.T) {
	var l LatencyRecorder
	l.Observe(10 * time.Second) // ancient outlier
	for i := 0; i < latencyWindow; i++ {
		l.Observe(time.Millisecond)
	}
	s := l.Snapshot()
	if s.Count != latencyWindow+1 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.P95Ms > 2 {
		t.Fatalf("p95 = %.2fms should reflect the recent 1ms window", s.P95Ms)
	}
	if math.Abs(s.MaxMs-10000) > 1e-6 {
		t.Fatalf("max = %.2fms should keep the lifetime outlier", s.MaxMs)
	}
}

func TestLatencyRecorderConcurrent(t *testing.T) {
	var l LatencyRecorder
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				l.Observe(time.Microsecond)
				_ = l.Snapshot()
			}
		}()
	}
	wg.Wait()
	if s := l.Snapshot(); s.Count != 8*200 {
		t.Fatalf("count = %d, want %d", s.Count, 8*200)
	}
}
