package metrics

import (
	"sort"
	"sync"
)

// LabelledCounter is a set of named monotonic counters — one Counter
// per dynamically created label. The cluster router counts per-replica
// requests, failures and failovers this way: labels are replica names
// that appear (and may disappear from reporting concern, though counts
// are never dropped) as backends register. Incrementing an existing
// label is lock-free after the first touch; creating a label takes a
// short write lock once.
type LabelledCounter struct {
	mu sync.RWMutex
	m  map[string]*Counter
}

// counter returns (creating on first use) the label's counter.
func (l *LabelledCounter) counter(label string) *Counter {
	l.mu.RLock()
	c, ok := l.m[label]
	l.mu.RUnlock()
	if ok {
		return c
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if c, ok = l.m[label]; ok {
		return c
	}
	if l.m == nil {
		l.m = map[string]*Counter{}
	}
	c = &Counter{}
	l.m[label] = c
	return c
}

// Inc increments the label's counter by one.
func (l *LabelledCounter) Inc(label string) { l.counter(label).Inc() }

// Add increments the label's counter by d.
func (l *LabelledCounter) Add(label string, d int64) { l.counter(label).Add(d) }

// Value returns the label's current count (0 for a label never
// incremented).
func (l *LabelledCounter) Value(label string) int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if c, ok := l.m[label]; ok {
		return c.Value()
	}
	return 0
}

// Snapshot returns every label's current count.
func (l *LabelledCounter) Snapshot() map[string]int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make(map[string]int64, len(l.m))
	for label, c := range l.m {
		out[label] = c.Value()
	}
	return out
}

// Labels returns the labels ever incremented, sorted.
func (l *LabelledCounter) Labels() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]string, 0, len(l.m))
	for label := range l.m {
		out = append(out, label)
	}
	sort.Strings(out)
	return out
}
