package metrics

import (
	"fmt"
	"sync"
	"testing"
)

func TestLabelledCounterBasics(t *testing.T) {
	var c LabelledCounter
	if got := c.Value("r0"); got != 0 {
		t.Fatalf("zero-value counter Value = %d", got)
	}
	c.Inc("r0")
	c.Inc("r0")
	c.Add("r1", 5)
	if got := c.Value("r0"); got != 2 {
		t.Fatalf("r0 = %d, want 2", got)
	}
	if got := c.Value("r1"); got != 5 {
		t.Fatalf("r1 = %d, want 5", got)
	}
	snap := c.Snapshot()
	if len(snap) != 2 || snap["r0"] != 2 || snap["r1"] != 5 {
		t.Fatalf("snapshot = %v", snap)
	}
	labels := c.Labels()
	if len(labels) != 2 || labels[0] != "r0" || labels[1] != "r1" {
		t.Fatalf("labels = %v, want sorted [r0 r1]", labels)
	}
}

// TestLabelledCounterConcurrent hammers label creation and increments
// from many goroutines; run under -race in CI.
func TestLabelledCounterConcurrent(t *testing.T) {
	var c LabelledCounter
	const workers, perWorker, labels = 8, 500, 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc(fmt.Sprintf("replica-%d", (w+i)%labels))
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, v := range c.Snapshot() {
		total += v
	}
	if total != workers*perWorker {
		t.Fatalf("total = %d, want %d", total, workers*perWorker)
	}
	if got := len(c.Labels()); got != labels {
		t.Fatalf("label count = %d, want %d", got, labels)
	}
}
