// Package metrics implements the evaluation metrics of the paper:
// the Q-error ("the factor the predicted runtime deviates from the true
// runtime") and its summary statistics (median, 95th percentile, max).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// QError returns max(pred/actual, actual/pred), the symmetric relative
// error factor; always >= 1 for positive inputs. Non-positive inputs are
// clamped to a tiny epsilon so degenerate predictions yield huge (not
// NaN) errors.
func QError(pred, actual float64) float64 {
	const eps = 1e-9
	if pred < eps {
		pred = eps
	}
	if actual < eps {
		actual = eps
	}
	q := pred / actual
	if q < 1 {
		q = 1 / q
	}
	return q
}

// Percentile returns the p-quantile (0 <= p <= 1) of xs using nearest-rank
// on a sorted copy. It panics on empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("metrics: percentile of empty slice")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 0.5) }

// Max returns the maximum.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("metrics: max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("metrics: mean of empty slice")
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Summary bundles the Q-error statistics the paper reports (Table 1).
type Summary struct {
	Median float64
	P95    float64
	Max    float64
	Mean   float64
	N      int
}

// Summarize computes the Q-error summary of prediction/actual pairs.
func Summarize(preds, actuals []float64) (Summary, error) {
	if len(preds) != len(actuals) {
		return Summary{}, fmt.Errorf("metrics: %d predictions vs %d actuals", len(preds), len(actuals))
	}
	if len(preds) == 0 {
		return Summary{}, fmt.Errorf("metrics: empty evaluation set")
	}
	qs := make([]float64, len(preds))
	for i := range preds {
		qs[i] = QError(preds[i], actuals[i])
	}
	return Summary{
		Median: Median(qs),
		P95:    Percentile(qs, 0.95),
		Max:    Max(qs),
		Mean:   Mean(qs),
		N:      len(qs),
	}, nil
}

// String renders the summary like the paper's tables.
func (s Summary) String() string {
	return fmt.Sprintf("median=%.2f p95=%.2f max=%.2f (n=%d)", s.Median, s.P95, s.Max, s.N)
}
