package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQErrorBasics(t *testing.T) {
	cases := []struct {
		pred, actual, want float64
	}{
		{1, 1, 1},
		{2, 1, 2},
		{1, 2, 2},
		{10, 2.5, 4},
		{0.5, 5, 10},
	}
	for _, c := range cases {
		if got := QError(c.pred, c.actual); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("QError(%v,%v) = %v, want %v", c.pred, c.actual, got, c.want)
		}
	}
}

func TestQErrorAlwaysAtLeastOne(t *testing.T) {
	f := func(p, a float64) bool {
		q := QError(math.Abs(p), math.Abs(a))
		return q >= 1 && !math.IsNaN(q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQErrorSymmetric(t *testing.T) {
	f := func(pRaw, aRaw uint32) bool {
		p := float64(pRaw%10000) + 1
		a := float64(aRaw%10000) + 1
		return math.Abs(QError(p, a)-QError(a, p)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQErrorHandlesZero(t *testing.T) {
	if q := QError(0, 1); math.IsNaN(q) || math.IsInf(q, 0) {
		t.Fatalf("QError(0,1) = %v", q)
	}
	if q := QError(1, 0); q < 1e6 {
		t.Fatalf("QError(1,0) = %v, want huge", q)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if got := Median(xs); got != 3 {
		t.Fatalf("Median = %v", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("P0 = %v", got)
	}
	if got := Percentile(xs, 1); got != 5 {
		t.Fatalf("P100 = %v", got)
	}
	if got := Percentile(xs, 0.95); got != 5 {
		t.Fatalf("P95 = %v", got)
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentileWithinBoundsProperty(t *testing.T) {
	f := func(raw []float64, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) {
				return true
			}
		}
		p := float64(pRaw) / 255
		v := Percentile(raw, p)
		return v >= Percentile(raw, 0) && v <= Percentile(raw, 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	preds := []float64{1, 2, 4}
	actuals := []float64{1, 1, 1}
	s, err := Summarize(preds, actuals)
	if err != nil {
		t.Fatal(err)
	}
	if s.Median != 2 || s.Max != 4 || s.N != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if _, err := Summarize([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("accepted mismatched lengths")
	}
	if _, err := Summarize(nil, nil); err == nil {
		t.Fatal("accepted empty input")
	}
}

func TestMeanAndMax(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
	if Max([]float64{1, 7, 3}) != 7 {
		t.Fatal("max wrong")
	}
}

func TestSummaryString(t *testing.T) {
	s := Summary{Median: 1.5, P95: 2.25, Max: 3, N: 10}
	if got := s.String(); got != "median=1.50 p95=2.25 max=3.00 (n=10)" {
		t.Fatalf("String() = %q", got)
	}
}
