package metrics

import "sync"

// Window is a bounded sliding window of float64 observations with
// quantile snapshots — the drift-monitor primitive of the adaptation
// subsystem: each feedback sample's q-error lands in a per-database
// Window, and the adaptation trigger reads its p50/p95. Like
// LatencyRecorder it keeps lifetime totals (count, max) alongside the
// bounded reservoir the quantiles come from. Safe for concurrent use.
type Window struct {
	mu     sync.Mutex
	buf    []float64 // ring buffer
	next   int       // ring write position
	filled int       // valid entries
	count  int64     // lifetime observations
	max    float64   // lifetime maximum
}

// DefaultWindowSize bounds a Window when the caller passes a
// non-positive capacity.
const DefaultWindowSize = 256

// NewWindow returns an empty window holding at most capacity recent
// observations (DefaultWindowSize if capacity <= 0).
func NewWindow(capacity int) *Window {
	if capacity <= 0 {
		capacity = DefaultWindowSize
	}
	return &Window{buf: make([]float64, capacity)}
}

// Observe records one observation.
func (w *Window) Observe(x float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf[w.next] = x
	w.next = (w.next + 1) % len(w.buf)
	if w.filled < len(w.buf) {
		w.filled++
	}
	// The lifetime max seeds from the FIRST observation rather than the
	// zero value: an all-negative series (log-space residuals) would
	// otherwise report a Max of 0 that was never observed.
	if w.count == 0 || x > w.max {
		w.max = x
	}
	w.count++
}

// Reset empties the reservoir so quantiles restart from fresh
// observations; lifetime count and max are kept. The adaptation loop
// resets a database's window after draining it — post-swap drift must be
// measured against the new generation, not the errors that triggered the
// swap.
func (w *Window) Reset() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.next = 0
	w.filled = 0
}

// WindowSummary is a point-in-time view of a Window.
type WindowSummary struct {
	// Count is the lifetime observation count; Size is the current
	// reservoir occupancy the quantiles are computed over.
	Count int64   `json:"count"`
	Size  int     `json:"size"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// Snapshot summarizes the window. Quantiles cover the current reservoir;
// count and max cover all observations ever recorded. An empty reservoir
// yields zero quantiles.
func (w *Window) Snapshot() WindowSummary {
	w.mu.Lock()
	defer w.mu.Unlock()
	s := WindowSummary{Count: w.count, Size: w.filled, Max: w.max}
	if w.filled == 0 {
		return s
	}
	recent := make([]float64, w.filled)
	copy(recent, w.buf[:w.filled])
	s.P50 = Median(recent)
	s.P95 = Percentile(recent, 0.95)
	s.P99 = Percentile(recent, 0.99)
	return s
}
