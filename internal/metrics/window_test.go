package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestWindowQuantiles(t *testing.T) {
	w := NewWindow(100)
	if s := w.Snapshot(); s.Count != 0 || s.Size != 0 || s.P50 != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
	for i := 1; i <= 100; i++ {
		w.Observe(float64(i))
	}
	s := w.Snapshot()
	if s.Count != 100 || s.Size != 100 {
		t.Fatalf("count/size = %d/%d", s.Count, s.Size)
	}
	if math.Abs(s.P50-50) > 1 || math.Abs(s.P95-95) > 1 {
		t.Fatalf("p50 = %.2f p95 = %.2f, want ~50/~95", s.P50, s.P95)
	}
	if s.Max != 100 {
		t.Fatalf("max = %.2f", s.Max)
	}
}

// TestWindowSlides checks quantiles track the recent reservoir while
// count and max stay lifetime-wide.
func TestWindowSlides(t *testing.T) {
	w := NewWindow(8)
	w.Observe(1000) // ancient outlier
	for i := 0; i < 8; i++ {
		w.Observe(1)
	}
	s := w.Snapshot()
	if s.Count != 9 || s.Size != 8 {
		t.Fatalf("count/size = %d/%d", s.Count, s.Size)
	}
	if s.P95 != 1 {
		t.Fatalf("p95 = %.2f should reflect the recent window", s.P95)
	}
	if s.Max != 1000 {
		t.Fatalf("max = %.2f should keep the lifetime outlier", s.Max)
	}
}

func TestWindowReset(t *testing.T) {
	w := NewWindow(4)
	for i := 0; i < 4; i++ {
		w.Observe(9)
	}
	w.Reset()
	if s := w.Snapshot(); s.Size != 0 || s.P50 != 0 || s.Count != 4 || s.Max != 9 {
		t.Fatalf("post-reset snapshot = %+v (reservoir should empty, lifetime stats stay)", s)
	}
	w.Observe(2)
	if s := w.Snapshot(); s.Size != 1 || s.P50 != 2 {
		t.Fatalf("post-reset observe = %+v", s)
	}
}

func TestWindowDefaultCapacity(t *testing.T) {
	w := NewWindow(0)
	if len(w.buf) != DefaultWindowSize {
		t.Fatalf("capacity = %d, want %d", len(w.buf), DefaultWindowSize)
	}
}

func TestWindowConcurrent(t *testing.T) {
	w := NewWindow(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				w.Observe(float64(i))
				_ = w.Snapshot()
			}
		}()
	}
	wg.Wait()
	if s := w.Snapshot(); s.Count != 8*200 || s.Size != 64 {
		t.Fatalf("snapshot = %+v", s)
	}
}
