package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestWindowQuantiles(t *testing.T) {
	w := NewWindow(100)
	if s := w.Snapshot(); s.Count != 0 || s.Size != 0 || s.P50 != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
	for i := 1; i <= 100; i++ {
		w.Observe(float64(i))
	}
	s := w.Snapshot()
	if s.Count != 100 || s.Size != 100 {
		t.Fatalf("count/size = %d/%d", s.Count, s.Size)
	}
	if math.Abs(s.P50-50) > 1 || math.Abs(s.P95-95) > 1 {
		t.Fatalf("p50 = %.2f p95 = %.2f, want ~50/~95", s.P50, s.P95)
	}
	if s.Max != 100 {
		t.Fatalf("max = %.2f", s.Max)
	}
}

// TestWindowSlides checks quantiles track the recent reservoir while
// count and max stay lifetime-wide.
func TestWindowSlides(t *testing.T) {
	w := NewWindow(8)
	w.Observe(1000) // ancient outlier
	for i := 0; i < 8; i++ {
		w.Observe(1)
	}
	s := w.Snapshot()
	if s.Count != 9 || s.Size != 8 {
		t.Fatalf("count/size = %d/%d", s.Count, s.Size)
	}
	if s.P95 != 1 {
		t.Fatalf("p95 = %.2f should reflect the recent window", s.P95)
	}
	if s.Max != 1000 {
		t.Fatalf("max = %.2f should keep the lifetime outlier", s.Max)
	}
}

func TestWindowReset(t *testing.T) {
	w := NewWindow(4)
	for i := 0; i < 4; i++ {
		w.Observe(9)
	}
	w.Reset()
	if s := w.Snapshot(); s.Size != 0 || s.P50 != 0 || s.Count != 4 || s.Max != 9 {
		t.Fatalf("post-reset snapshot = %+v (reservoir should empty, lifetime stats stay)", s)
	}
	w.Observe(2)
	if s := w.Snapshot(); s.Size != 1 || s.P50 != 2 {
		t.Fatalf("post-reset observe = %+v", s)
	}
}

// TestWindowLifetimeMax pins the lifetime max against series that never
// cross zero: the max must seed from the first observation, not from
// the zero value — an all-negative window (e.g. log-space residuals)
// previously reported a Max of 0 that was never observed.
func TestWindowLifetimeMax(t *testing.T) {
	cases := []struct {
		name string
		obs  []float64
		want float64
	}{
		{"negative-only", []float64{-3.5, -1.25, -9, -1.25}, -1.25},
		{"single-negative", []float64{-7}, -7},
		{"single-positive", []float64{4.5}, 4.5},
		{"single-zero", []float64{0}, 0},
		{"descending-negative", []float64{-1, -2, -3}, -1},
		{"crosses-zero", []float64{-2, 0.5, -4}, 0.5},
		{"positive-only", []float64{1, 8, 3}, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := NewWindow(4)
			for _, x := range tc.obs {
				w.Observe(x)
			}
			if s := w.Snapshot(); s.Max != tc.want {
				t.Fatalf("max = %v, want %v (observations %v)", s.Max, tc.want, tc.obs)
			}
		})
	}

	// Reset keeps the lifetime max even when it is negative.
	w := NewWindow(4)
	w.Observe(-2)
	w.Reset()
	if s := w.Snapshot(); s.Max != -2 {
		t.Fatalf("post-reset max = %v, want -2", s.Max)
	}
}

func TestWindowDefaultCapacity(t *testing.T) {
	w := NewWindow(0)
	if len(w.buf) != DefaultWindowSize {
		t.Fatalf("capacity = %d, want %d", len(w.buf), DefaultWindowSize)
	}
}

func TestWindowConcurrent(t *testing.T) {
	w := NewWindow(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				w.Observe(float64(i))
				_ = w.Snapshot()
			}
		}()
	}
	wg.Wait()
	if s := w.Snapshot(); s.Count != 8*200 || s.Size != 64 {
		t.Fatalf("snapshot = %+v", s)
	}
}
