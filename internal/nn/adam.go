package nn

import "math"

// Adam implements the Adam optimizer over a fixed parameter set.
type Adam struct {
	params []*Param
	LR     float64
	Beta1  float64
	Beta2  float64
	Eps    float64
	// ClipNorm, when positive, rescales the global gradient norm to at
	// most this value before stepping.
	ClipNorm float64
	t        int
}

// NewAdam creates an Adam optimizer with standard hyperparameters.
func NewAdam(params []*Param, lr float64) *Adam {
	return &Adam{params: params, LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, ClipNorm: 5}
}

// ZeroGrad clears all parameter gradients; call after each Step.
func (a *Adam) ZeroGrad() {
	for _, p := range a.params {
		p.Grad.Zero()
	}
}

// GradNorm returns the global L2 norm of all parameter gradients.
func (a *Adam) GradNorm() float64 {
	s := 0.0
	for _, p := range a.params {
		for _, g := range p.Grad.Data {
			s += g * g
		}
	}
	return math.Sqrt(s)
}

// Step applies one Adam update from the accumulated gradients. scale
// divides the gradients first (pass the batch size for mean-gradient
// semantics).
func (a *Adam) Step(scale float64) {
	if scale <= 0 {
		scale = 1
	}
	inv := 1 / scale
	if a.ClipNorm > 0 {
		norm := a.GradNorm() * inv
		if norm > a.ClipNorm {
			inv *= a.ClipNorm / norm
		}
	}
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range a.params {
		for i, g := range p.Grad.Data {
			g *= inv
			p.m.Data[i] = a.Beta1*p.m.Data[i] + (1-a.Beta1)*g
			p.v.Data[i] = a.Beta2*p.v.Data[i] + (1-a.Beta2)*g*g
			mHat := p.m.Data[i] / c1
			vHat := p.v.Data[i] / c2
			p.Val.Data[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
		}
	}
}
