package nn

import (
	"math/rand"
	"testing"
)

func BenchmarkMatMul32x32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := NewTensor(1, 32)
	x.XavierInit(rng)
	w := NewTensor(32, 32)
	w.XavierInit(rng)
	dst := NewTensor(1, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.Zero()
		MatMulInto(dst, x, w)
	}
}

func BenchmarkMLPForward(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	mlp := NewMLP(rng, 16, 32, 32, 1)
	x := NewTensor(1, 16)
	x.XavierInit(rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp := NewTape()
		mlp.Apply(tp, tp.Const(x))
	}
}

func BenchmarkMLPTrainStep(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	mlp := NewMLP(rng, 16, 32, 32, 1)
	opt := NewAdam(mlp.Params(), 1e-3)
	x := NewTensor(1, 16)
	x.XavierInit(rng)
	target := FromSlice([]float64{0.5})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp := NewTape()
		out := mlp.Apply(tp, tp.Const(x))
		loss := tp.HuberLoss(out, target, 1)
		tp.Backward(loss)
		opt.Step(1)
		opt.ZeroGrad()
	}
}
