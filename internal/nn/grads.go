package nn

// GradSet is a private gradient-accumulation buffer set mirroring a
// parameter list: one zeroed tensor per parameter, shape-matched. It is
// the unit of data-parallel training — each worker accumulates its
// shard's gradients into its own set (bound to the worker's tape via
// Tape.RemapGrads), and the trainer reduces completed sets into the
// shared parameter gradients in a fixed shard order. Because every
// per-shard accumulation and the final reduce run in an order that
// depends only on the shard layout — never on which goroutine computed
// what, or when — the reduced gradients are bitwise identical for any
// worker count.
type GradSet struct {
	grads []*Tensor
	remap map[*Tensor]*Tensor
}

// NewGradSet allocates zeroed buffers mirroring params. The set is tied
// to these exact parameters: AddTo must be called with the same list.
func NewGradSet(params []*Param) *GradSet {
	gs := &GradSet{
		grads: make([]*Tensor, len(params)),
		remap: make(map[*Tensor]*Tensor, len(params)),
	}
	for i, p := range params {
		gs.grads[i] = NewTensor(p.Grad.Rows, p.Grad.Cols)
		gs.remap[p.Grad] = gs.grads[i]
	}
	return gs
}

// Remap returns the Leaf-gradient redirection table for Tape.RemapGrads:
// each shared parameter gradient maps to this set's private buffer.
func (gs *GradSet) Remap() map[*Tensor]*Tensor { return gs.remap }

// Zero clears every buffer; call before reusing a pooled set.
func (gs *GradSet) Zero() {
	for _, g := range gs.grads {
		g.Zero()
	}
}

// AddTo reduces the set into the shared parameter gradients:
// params[i].Grad += buffer[i]. params must be the NewGradSet list.
func (gs *GradSet) AddTo(params []*Param) {
	if len(params) != len(gs.grads) {
		panic("nn: GradSet.AddTo parameter list does not match the set")
	}
	for i, p := range params {
		p.Grad.AddInPlace(gs.grads[i])
	}
}
