package nn

import "sync"

// Inference is an inference-only execution context: forward passes run
// directly on tensors with no tape, no backward closures and no gradient
// allocation. Scratch tensors are recycled across calls, so a context
// that serves same-shaped batches reaches a steady state of zero heap
// allocations per forward pass — the property the serving hot path is
// built on.
//
// An Inference is NOT safe for concurrent use; obtain one per goroutine
// from GetInference and return it with Release. Tensors handed out by
// Tensor are owned by the context and must not be retained across
// Release.
type Inference struct {
	tensors []*Tensor
	used    int
}

var inferencePool = sync.Pool{New: func() any { return new(Inference) }}

// GetInference returns a reusable inference context from the shared
// pool. Pair with Release.
func GetInference() *Inference { return inferencePool.Get().(*Inference) }

// Release resets the context and returns it to the shared pool. Any
// tensor obtained from it becomes invalid.
func (inf *Inference) Release() {
	inf.used = 0
	inferencePool.Put(inf)
}

// Reset invalidates every tensor handed out so far, making their storage
// reusable by subsequent Tensor calls without going back to the pool.
func (inf *Inference) Reset() { inf.used = 0 }

// Tensor returns a zeroed rows x cols scratch tensor owned by the
// context. Storage is recycled from earlier passes when large enough;
// otherwise the slot grows (and keeps the larger capacity for next
// time), so per-call allocations vanish once the context has seen its
// steady-state shapes.
func (inf *Inference) Tensor(rows, cols int) *Tensor {
	t := inf.TensorUninit(rows, cols)
	for i := range t.Data {
		t.Data[i] = 0
	}
	return t
}

// TensorUninit is Tensor without the zeroing: recycled storage keeps
// whatever the previous pass left in it. Only for destinations every
// row of which is fully overwritten before being read (MatMulInto
// output, gather/scatter staging) — it skips the memclr that would be
// pure waste there.
func (inf *Inference) TensorUninit(rows, cols int) *Tensor {
	if rows <= 0 || cols <= 0 {
		panic("nn: invalid inference tensor shape")
	}
	if inf.used == len(inf.tensors) {
		inf.tensors = append(inf.tensors, &Tensor{})
	}
	t := inf.tensors[inf.used]
	inf.used++
	n := rows * cols
	if cap(t.Data) < n {
		t.Data = make([]float64, n)
	} else {
		t.Data = t.Data[:n]
	}
	t.Rows, t.Cols = rows, cols
	return t
}

// Infer runs the layer forward-only on a batch of row vectors: every
// row of x maps to the corresponding row of the result, bitwise
// identical to applying the tape path row by row (same matmul inner
// order, same bias additions).
func (l *Linear) Infer(inf *Inference, x *Tensor) *Tensor {
	out := inf.TensorUninit(x.Rows, l.Out) // MatMulInto overwrites every row
	MatMulInto(out, x, l.W.Val)
	out.AddRowBroadcast(l.B.Val)
	return out
}

// Infer runs the MLP forward-only on a batch of row vectors (ReLU
// between layers, linear final layer — the exact shape of Apply, minus
// the tape).
func (m *MLP) Infer(inf *Inference, x *Tensor) *Tensor {
	h := x
	for i, l := range m.Layers {
		h = l.Infer(inf, h)
		if i+1 < len(m.Layers) {
			h.ReLUInPlace()
		}
	}
	return h
}
