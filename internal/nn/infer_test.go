package nn

import (
	"math/rand"
	"testing"
)

// TestInferMatchesTapeRowByRow pins the inference-only MLP forward pass
// bitwise to the tape path: running a batch of rows through Infer must
// produce exactly the float64s the tape produces per row. This is the
// nn-level half of the fused-inference equivalence guarantee.
func TestInferMatchesTapeRowByRow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMLP(rng, 9, 16, 16, 3)
	const rows = 13
	x := NewTensor(rows, 9)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	inf := GetInference()
	defer inf.Release()
	got := m.Infer(inf, x)
	if got.Rows != rows || got.Cols != 3 {
		t.Fatalf("Infer shape %dx%d, want %dx3", got.Rows, got.Cols, rows)
	}
	for r := 0; r < rows; r++ {
		tp := NewTape()
		row := FromSlice(x.Data[r*9 : (r+1)*9])
		want := m.Apply(tp, tp.Const(row))
		for j := 0; j < 3; j++ {
			if got.At(r, j) != want.Val.At(0, j) {
				t.Fatalf("row %d col %d: infer %v != tape %v", r, j, got.At(r, j), want.Val.At(0, j))
			}
		}
	}
}

// TestInferenceTensorRecyclingZeroes checks scratch tensors come back
// zeroed after a Reset (consumers that accumulate into scratch rely on
// it) and that a slot grows when a larger shape is requested.
func TestInferenceTensorRecyclingZeroes(t *testing.T) {
	inf := GetInference()
	defer inf.Release()
	a := inf.Tensor(2, 3)
	for i := range a.Data {
		a.Data[i] = 42
	}
	inf.Reset()
	b := inf.Tensor(2, 3)
	if b != a {
		t.Fatal("Reset did not recycle the tensor slot")
	}
	for i, v := range b.Data {
		if v != 0 {
			t.Fatalf("recycled tensor not zeroed at %d: %v", i, v)
		}
	}
	inf.Reset()
	c := inf.Tensor(4, 5)
	if c.Rows != 4 || c.Cols != 5 || len(c.Data) != 20 {
		t.Fatalf("grown tensor shape %dx%d len %d", c.Rows, c.Cols, len(c.Data))
	}
	for i, v := range c.Data {
		if v != 0 {
			t.Fatalf("grown tensor not zeroed at %d: %v", i, v)
		}
	}
}

// TestInferSteadyStateAllocations checks the inference context reaches
// zero allocations per forward pass once its buffers are warm — the
// property the serving hot path depends on.
func TestInferSteadyStateAllocations(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP(rng, 8, 32, 32, 1)
	x := NewTensor(16, 8)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	inf := GetInference()
	defer inf.Release()
	m.Infer(inf, x) // warm the slots
	inf.Reset()
	allocs := testing.AllocsPerRun(50, func() {
		m.Infer(inf, x)
		inf.Reset()
	})
	if allocs > 0 {
		t.Fatalf("warm Infer allocates %v objects per pass, want 0", allocs)
	}
}

// TestInferenceRepeatedPassesStable checks two passes over the same
// input through the same recycled buffers agree exactly.
func TestInferenceRepeatedPassesStable(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMLP(rng, 6, 12, 2)
	x := NewTensor(7, 6)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	inf := GetInference()
	defer inf.Release()
	first := m.Infer(inf, x).Clone()
	inf.Reset()
	second := m.Infer(inf, x)
	for i := range first.Data {
		if first.Data[i] != second.Data[i] {
			t.Fatalf("pass 2 diverged at %d: %v vs %v", i, second.Data[i], first.Data[i])
		}
	}
}

func TestWrapAndBroadcastShapePanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("Wrap", func() { Wrap(2, 3, make([]float64, 5)) })
	mustPanic("AddRowBroadcast", func() {
		NewTensor(2, 3).AddRowBroadcast(NewTensor(1, 4))
	})
	mustPanic("Inference.Tensor", func() {
		inf := GetInference()
		defer inf.Release()
		inf.Tensor(0, 3)
	})
}
