package nn

import (
	"math/rand"
)

// Param is one trainable parameter: value, accumulated gradient, and Adam
// moment state.
type Param struct {
	Val  *Tensor
	Grad *Tensor
	m, v *Tensor
}

// NewParam allocates a parameter of the given shape with zeroed state.
func NewParam(rows, cols int) *Param {
	return &Param{
		Val:  NewTensor(rows, cols),
		Grad: NewTensor(rows, cols),
		m:    NewTensor(rows, cols),
		v:    NewTensor(rows, cols),
	}
}

// Linear is a fully connected layer y = x @ W + b for row-vector inputs.
type Linear struct {
	W, B *Param
	In   int
	Out  int
}

// NewLinear creates a Glorot-initialized linear layer.
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	l := &Linear{W: NewParam(in, out), B: NewParam(1, out), In: in, Out: out}
	l.W.Val.XavierInit(rng)
	return l
}

// Apply runs the layer on the tape.
func (l *Linear) Apply(tp *Tape, x *Var) *Var {
	w := tp.Leaf(l.W.Val, l.W.Grad)
	b := tp.Leaf(l.B.Val, l.B.Grad)
	return tp.Add(tp.MatMul(x, w), b)
}

// Params returns the layer's trainable parameters.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// MLP is a multilayer perceptron with ReLU activations between layers and a
// linear final layer.
type MLP struct {
	Layers []*Linear
}

// NewMLP builds an MLP with the given layer sizes, e.g. NewMLP(rng, 16, 32,
// 32, 1) is 16 -> 32 -> 32 -> 1.
func NewMLP(rng *rand.Rand, sizes ...int) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least input and output size")
	}
	m := &MLP{}
	for i := 0; i+1 < len(sizes); i++ {
		m.Layers = append(m.Layers, NewLinear(sizes[i], sizes[i+1], rng))
	}
	return m
}

// Apply runs the MLP on the tape.
func (m *MLP) Apply(tp *Tape, x *Var) *Var {
	h := x
	for i, l := range m.Layers {
		h = l.Apply(tp, h)
		if i+1 < len(m.Layers) {
			h = tp.ReLU(h)
		}
	}
	return h
}

// Params returns all trainable parameters.
func (m *MLP) Params() []*Param {
	var ps []*Param
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}
