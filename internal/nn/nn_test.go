package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// numericalGrad perturbs one parameter element and measures the loss
// difference, for gradient checking.
func numericalGrad(build func() float64, elem *float64) float64 {
	const h = 1e-6
	orig := *elem
	*elem = orig + h
	up := build()
	*elem = orig - h
	down := build()
	*elem = orig
	return (up - down) / (2 * h)
}

// TestGradCheckMLP verifies reverse-mode gradients against numerical
// differentiation for an MLP with all ops in play.
func TestGradCheckMLP(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mlp := NewMLP(rng, 4, 8, 3, 1)
	x := FromSlice([]float64{0.3, -1.2, 0.8, 2.0})
	target := FromSlice([]float64{0.7})

	forward := func() float64 {
		tp := NewTape()
		out := mlp.Apply(tp, tp.Const(x))
		loss := tp.MSE(out, target)
		return loss.Val.Data[0]
	}

	// Analytical gradients.
	tp := NewTape()
	out := mlp.Apply(tp, tp.Const(x))
	loss := tp.MSE(out, target)
	tp.Backward(loss)

	for li, layer := range mlp.Layers {
		for pi, p := range layer.Params() {
			for i := range p.Val.Data {
				want := numericalGrad(forward, &p.Val.Data[i])
				got := p.Grad.Data[i]
				if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
					t.Fatalf("layer %d param %d elem %d: grad %v, numerical %v", li, pi, i, got, want)
				}
			}
		}
	}
}

// TestGradCheckGraphOps verifies gradients through Sum, Concat, ScaleVar
// and Huber — the ops the DAG message passing uses.
func TestGradCheckGraphOps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	enc := NewLinear(3, 4, rng)
	comb := NewLinear(8, 1, rng)
	x1 := FromSlice([]float64{0.5, -0.3, 1.1})
	x2 := FromSlice([]float64{-0.9, 0.2, 0.4})
	target := FromSlice([]float64{2.0})

	forward := func() float64 {
		tp := NewTape()
		h1 := tp.ReLU(enc.Apply(tp, tp.Const(x1)))
		h2 := tp.ReLU(enc.Apply(tp, tp.Const(x2)))
		summed := tp.Sum(h1, h2)
		scaled := tp.ScaleVar(summed, 0.5)
		cat := tp.Concat(scaled, h1)
		out := comb.Apply(tp, cat)
		loss := tp.HuberLoss(out, target, 1.0)
		return loss.Val.Data[0]
	}

	tp := NewTape()
	h1 := tp.ReLU(enc.Apply(tp, tp.Const(x1)))
	h2 := tp.ReLU(enc.Apply(tp, tp.Const(x2)))
	summed := tp.Sum(h1, h2)
	scaled := tp.ScaleVar(summed, 0.5)
	cat := tp.Concat(scaled, h1)
	out := comb.Apply(tp, cat)
	loss := tp.HuberLoss(out, target, 1.0)
	tp.Backward(loss)

	for _, p := range append(enc.Params(), comb.Params()...) {
		for i := range p.Val.Data {
			want := numericalGrad(forward, &p.Val.Data[i])
			got := p.Grad.Data[i]
			if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
				t.Fatalf("elem %d: grad %v, numerical %v", i, got, want)
			}
		}
	}
}

func TestMatMulCorrectness(t *testing.T) {
	a := NewTensor(2, 3)
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	b := NewTensor(3, 2)
	copy(b.Data, []float64{7, 8, 9, 10, 11, 12})
	dst := NewTensor(2, 2)
	MatMulInto(dst, a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if dst.Data[i] != v {
			t.Fatalf("matmul[%d] = %v, want %v", i, dst.Data[i], v)
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on shape mismatch")
		}
	}()
	MatMulInto(NewTensor(2, 2), NewTensor(2, 3), NewTensor(2, 2))
}

func TestAdamConvergesOnRegression(t *testing.T) {
	// y = 2*x0 - 3*x1 + 1, learnable by a linear layer.
	rng := rand.New(rand.NewSource(3))
	l := NewLinear(2, 1, rng)
	opt := NewAdam(l.Params(), 0.05)
	for epoch := 0; epoch < 400; epoch++ {
		x0, x1 := rng.Float64()*2-1, rng.Float64()*2-1
		target := FromSlice([]float64{2*x0 - 3*x1 + 1})
		tp := NewTape()
		out := l.Apply(tp, tp.Const(FromSlice([]float64{x0, x1})))
		loss := tp.MSE(out, target)
		tp.Backward(loss)
		opt.Step(1)
		opt.ZeroGrad()
	}
	if math.Abs(l.W.Val.Data[0]-2) > 0.1 || math.Abs(l.W.Val.Data[1]+3) > 0.1 || math.Abs(l.B.Val.Data[0]-1) > 0.1 {
		t.Fatalf("did not converge: W=%v B=%v", l.W.Val.Data, l.B.Val.Data)
	}
}

func TestAdamClipBoundsUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := NewLinear(2, 1, rng)
	opt := NewAdam(l.Params(), 0.01)
	opt.ClipNorm = 1
	// Enormous gradient.
	for i := range l.W.Grad.Data {
		l.W.Grad.Data[i] = 1e9
	}
	before := l.W.Val.Clone()
	opt.Step(1)
	for i := range l.W.Val.Data {
		if math.Abs(l.W.Val.Data[i]-before.Data[i]) > 0.1 {
			t.Fatalf("clipped update still huge: %v", l.W.Val.Data[i]-before.Data[i])
		}
	}
}

func TestMLPDeterministicForward(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mlp := NewMLP(rng, 3, 8, 1)
	x := FromSlice([]float64{1, 2, 3})
	run := func() float64 {
		tp := NewTape()
		return mlp.Apply(tp, tp.Const(x)).Val.Data[0]
	}
	if run() != run() {
		t.Fatal("forward not deterministic")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	src := NewMLP(rng, 4, 6, 1)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	dst := NewMLP(rand.New(rand.NewSource(99)), 4, 6, 1)
	if err := LoadParams(&buf, dst.Params()); err != nil {
		t.Fatal(err)
	}
	x := FromSlice([]float64{0.1, 0.2, 0.3, 0.4})
	tp1, tp2 := NewTape(), NewTape()
	a := src.Apply(tp1, tp1.Const(x)).Val.Data[0]
	b := dst.Apply(tp2, tp2.Const(x)).Val.Data[0]
	if a != b {
		t.Fatalf("loaded model differs: %v vs %v", a, b)
	}
}

func TestLoadParamsRejectsShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := NewMLP(rng, 4, 6, 1)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	other := NewMLP(rng, 4, 7, 1)
	if err := LoadParams(&buf, other.Params()); err == nil {
		t.Fatal("accepted mismatched architecture")
	}
}

func TestConcatShapesProperty(t *testing.T) {
	f := func(n1, n2 uint8) bool {
		a, b := int(n1%16)+1, int(n2%16)+1
		tp := NewTape()
		v1 := tp.Const(NewTensor(1, a))
		v2 := tp.Const(NewTensor(1, b))
		out := tp.Concat(v1, v2)
		return out.Val.Cols == a+b && out.Val.Rows == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBackwardPanicsOnNonScalar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Backward accepted non-scalar loss")
		}
	}()
	tp := NewTape()
	v := tp.Const(NewTensor(1, 3))
	tp.Backward(v)
}

func TestReLUZeroesNegatives(t *testing.T) {
	tp := NewTape()
	x := tp.Const(FromSlice([]float64{-2, 0, 3}))
	out := tp.ReLU(x)
	want := []float64{0, 0, 3}
	for i, v := range want {
		if out.Val.Data[i] != v {
			t.Fatalf("relu[%d] = %v, want %v", i, out.Val.Data[i], v)
		}
	}
}

func TestAddShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add accepted mismatched shapes")
		}
	}()
	tp := NewTape()
	tp.Add(tp.Const(NewTensor(1, 2)), tp.Const(NewTensor(1, 3)))
}

func TestSumEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sum accepted no arguments")
		}
	}()
	NewTape().Sum()
}

func TestAdamZeroGradClearsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	l := NewLinear(3, 2, rng)
	opt := NewAdam(l.Params(), 0.01)
	for _, p := range l.Params() {
		for i := range p.Grad.Data {
			p.Grad.Data[i] = 1
		}
	}
	if opt.GradNorm() == 0 {
		t.Fatal("grad norm zero before ZeroGrad")
	}
	opt.ZeroGrad()
	if opt.GradNorm() != 0 {
		t.Fatal("grads survive ZeroGrad")
	}
}

func TestGradientAccumulationAcrossSamples(t *testing.T) {
	// Two backward passes without ZeroGrad must accumulate (the batching
	// contract the training loops rely on).
	rng := rand.New(rand.NewSource(10))
	l := NewLinear(2, 1, rng)
	x := FromSlice([]float64{1, 2})
	target := FromSlice([]float64{5})
	run := func() {
		tp := NewTape()
		out := l.Apply(tp, tp.Const(x))
		tp.Backward(tp.MSE(out, target))
	}
	run()
	once := l.W.Grad.Clone()
	run()
	for i := range once.Data {
		if math.Abs(l.W.Grad.Data[i]-2*once.Data[i]) > 1e-12 {
			t.Fatalf("gradient did not accumulate: %v vs 2*%v", l.W.Grad.Data[i], once.Data[i])
		}
	}
}

func TestXavierInitBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	w := NewTensor(64, 64)
	w.XavierInit(rng)
	limit := math.Sqrt(6.0 / 128)
	for _, v := range w.Data {
		if v < -limit || v > limit {
			t.Fatalf("xavier value %v outside [-%v, %v]", v, limit, limit)
		}
	}
	if w.L2Norm() == 0 {
		t.Fatal("xavier produced all zeros")
	}
}
