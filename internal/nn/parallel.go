package nn

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Coarse-grained row parallelism for batch inference. A caller splits
// independent work items (graphs of a fused batch, rows of a huge
// matmul) into contiguous blocks that run concurrently on a persistent
// worker pool. Blocks execute the identical serial per-item code, so
// results are bitwise independent of the split and of scheduling.

// maxWorkers caps row-parallel fan-out. 0 (the default) means "use
// GOMAXPROCS at call time".
var maxWorkers atomic.Int32

// SetMaxWorkers caps the number of concurrent workers RowParallel may
// use and returns the previous cap. n <= 0 restores the default
// (GOMAXPROCS at call time); n == 1 forces fully serial execution —
// what benchmarks use to measure the single-threaded baseline on a
// multi-core box.
func SetMaxWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(maxWorkers.Swap(int32(n)))
}

func workerCap() int {
	if n := int(maxWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

type rowJob struct {
	fn func(lo, hi int)
	wg sync.WaitGroup
}

type rowTask struct {
	job    *rowJob
	lo, hi int
}

var (
	jobPool  = sync.Pool{New: func() any { return new(rowJob) }}
	taskPool = sync.Pool{New: func() any { return new(rowTask) }}
	taskCh   chan *rowTask
	poolOnce sync.Once
)

// startWorkers spawns the persistent pool — one goroutine per CPU,
// idling on the channel for the process lifetime.
func startWorkers() {
	n := runtime.NumCPU()
	taskCh = make(chan *rowTask, 4*n)
	for i := 0; i < n; i++ {
		go func() {
			for t := range taskCh {
				j, lo, hi := t.job, t.lo, t.hi
				taskPool.Put(t)
				j.fn(lo, hi)
				j.wg.Done()
			}
		}()
	}
}

// RowParallel runs fn(lo, hi) over disjoint contiguous blocks covering
// [0, rows): one block per worker, the caller's block inline, the rest
// on the pool, returning once every block is done. grain is the minimum
// rows per block — below 2*grain (or with workers capped to one) fn
// runs serially inline as fn(0, rows).
//
// fn must treat rows independently, and MUST NOT call RowParallel
// itself: a nested dispatch from a pool worker can wait on tasks no
// free worker is left to run.
func RowParallel(rows, grain int, fn func(lo, hi int)) {
	if grain < 1 {
		grain = 1
	}
	w := workerCap()
	if mw := rows / grain; mw < w {
		w = mw
	}
	if w <= 1 {
		fn(0, rows)
		return
	}
	poolOnce.Do(startWorkers)
	j := jobPool.Get().(*rowJob)
	j.fn = fn
	block := (rows + w - 1) / w
	j.wg.Add(w - 1)
	lo := block // block 0 runs inline below
	for i := 1; i < w; i++ {
		hi := lo + block
		if hi > rows {
			hi = rows
		}
		t := taskPool.Get().(*rowTask)
		t.job, t.lo, t.hi = j, lo, hi
		taskCh <- t
		lo = hi
	}
	fn(0, block)
	j.wg.Wait()
	j.fn = nil
	jobPool.Put(j)
}
