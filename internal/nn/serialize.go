package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// savedTensor is the gob wire form of one parameter tensor.
type savedTensor struct {
	Rows, Cols int
	Data       []float64
}

// SaveParams writes parameter values (not optimizer state) to w in gob
// encoding, in slice order. Models serialize by passing their Params() in
// a stable order and deserialize into a freshly constructed model of the
// same architecture.
func SaveParams(w io.Writer, params []*Param) error {
	out := make([]savedTensor, len(params))
	for i, p := range params {
		out[i] = savedTensor{Rows: p.Val.Rows, Cols: p.Val.Cols, Data: p.Val.Data}
	}
	return gob.NewEncoder(w).Encode(out)
}

// LoadParams reads parameter values from r into params; shapes must match
// the saved model exactly.
func LoadParams(r io.Reader, params []*Param) error {
	var in []savedTensor
	if err := gob.NewDecoder(r).Decode(&in); err != nil {
		return fmt.Errorf("nn: decode params: %w", err)
	}
	if len(in) != len(params) {
		return fmt.Errorf("nn: saved model has %d tensors, model expects %d", len(in), len(params))
	}
	for i, st := range in {
		p := params[i]
		if st.Rows != p.Val.Rows || st.Cols != p.Val.Cols {
			return fmt.Errorf("nn: tensor %d shape %dx%d, model expects %dx%d",
				i, st.Rows, st.Cols, p.Val.Rows, p.Val.Cols)
		}
		copy(p.Val.Data, st.Data)
	}
	return nil
}
