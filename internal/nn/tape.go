package nn

import "math"

// Var is one node of the dynamic computation graph: a value tensor and its
// gradient. Vars are created through Tape operations.
type Var struct {
	Val  *Tensor
	Grad *Tensor
}

// Tape records operations for reverse-mode differentiation. Build the
// forward computation through Tape methods, then call Backward on the
// scalar loss. A Tape is built fresh per training sample, because plan
// graphs differ from sample to sample.
type Tape struct {
	backward []func()
}

// NewTape creates an empty tape.
func NewTape() *Tape { return &Tape{} }

// newVar allocates a Var with a zeroed gradient of matching shape.
func newVar(val *Tensor) *Var {
	return &Var{Val: val, Grad: NewTensor(val.Rows, val.Cols)}
}

// Leaf wraps a tensor as a graph input whose gradient accumulates into the
// provided grad tensor (pass the persistent parameter gradient to train, or
// a scratch tensor for constants).
func (tp *Tape) Leaf(val, grad *Tensor) *Var {
	sameShape(val, grad, "leaf")
	return &Var{Val: val, Grad: grad}
}

// Const wraps a tensor whose gradient is discarded.
func (tp *Tape) Const(val *Tensor) *Var { return newVar(val) }

// MatMul returns a @ b.
func (tp *Tape) MatMul(a, b *Var) *Var {
	out := newVar(NewTensor(a.Val.Rows, b.Val.Cols))
	MatMulInto(out.Val, a.Val, b.Val)
	tp.backward = append(tp.backward, func() {
		// dA += dOut @ B^T ; dB += A^T @ dOut
		for i := 0; i < a.Val.Rows; i++ {
			for k := 0; k < a.Val.Cols; k++ {
				g := 0.0
				for j := 0; j < b.Val.Cols; j++ {
					g += out.Grad.At(i, j) * b.Val.At(k, j)
				}
				a.Grad.Data[i*a.Val.Cols+k] += g
			}
		}
		for k := 0; k < b.Val.Rows; k++ {
			for j := 0; j < b.Val.Cols; j++ {
				g := 0.0
				for i := 0; i < a.Val.Rows; i++ {
					g += a.Val.At(i, k) * out.Grad.At(i, j)
				}
				b.Grad.Data[k*b.Val.Cols+j] += g
			}
		}
	})
	return out
}

// Add returns a + b (same shape).
func (tp *Tape) Add(a, b *Var) *Var {
	sameShape(a.Val, b.Val, "Add")
	out := newVar(a.Val.Clone())
	out.Val.AddInPlace(b.Val)
	tp.backward = append(tp.backward, func() {
		a.Grad.AddInPlace(out.Grad)
		b.Grad.AddInPlace(out.Grad)
	})
	return out
}

// Sum returns the elementwise sum of one or more same-shaped Vars.
func (tp *Tape) Sum(vs ...*Var) *Var {
	if len(vs) == 0 {
		panic("nn: Sum of nothing")
	}
	out := newVar(vs[0].Val.Clone())
	for _, v := range vs[1:] {
		out.Val.AddInPlace(v.Val)
	}
	tp.backward = append(tp.backward, func() {
		for _, v := range vs {
			v.Grad.AddInPlace(out.Grad)
		}
	})
	return out
}

// ReLU returns max(x, 0) elementwise.
func (tp *Tape) ReLU(x *Var) *Var {
	out := newVar(x.Val.Clone())
	for i, v := range out.Val.Data {
		if v < 0 {
			out.Val.Data[i] = 0
		}
	}
	tp.backward = append(tp.backward, func() {
		for i := range x.Grad.Data {
			if x.Val.Data[i] > 0 {
				x.Grad.Data[i] += out.Grad.Data[i]
			}
		}
	})
	return out
}

// Concat concatenates row vectors (1 x n each) into one 1 x sum(n) vector.
func (tp *Tape) Concat(vs ...*Var) *Var {
	total := 0
	for _, v := range vs {
		if v.Val.Rows != 1 {
			panic("nn: Concat expects row vectors")
		}
		total += v.Val.Cols
	}
	out := newVar(NewTensor(1, total))
	off := 0
	for _, v := range vs {
		copy(out.Val.Data[off:off+v.Val.Cols], v.Val.Data)
		off += v.Val.Cols
	}
	tp.backward = append(tp.backward, func() {
		off := 0
		for _, v := range vs {
			for i := 0; i < v.Val.Cols; i++ {
				v.Grad.Data[i] += out.Grad.Data[off+i]
			}
			off += v.Val.Cols
		}
	})
	return out
}

// ScaleVar returns x * s for a constant scalar s.
func (tp *Tape) ScaleVar(x *Var, s float64) *Var {
	out := newVar(x.Val.Clone())
	out.Val.Scale(s)
	tp.backward = append(tp.backward, func() {
		for i := range x.Grad.Data {
			x.Grad.Data[i] += out.Grad.Data[i] * s
		}
	})
	return out
}

// MSE returns the scalar 0.5*(pred - target)^2 summed over elements, as a
// 1x1 Var. target is a constant.
func (tp *Tape) MSE(pred *Var, target *Tensor) *Var {
	sameShape(pred.Val, target, "MSE")
	out := newVar(NewTensor(1, 1))
	loss := 0.0
	for i, p := range pred.Val.Data {
		d := p - target.Data[i]
		loss += 0.5 * d * d
	}
	out.Val.Data[0] = loss
	tp.backward = append(tp.backward, func() {
		g := out.Grad.Data[0]
		for i, p := range pred.Val.Data {
			pred.Grad.Data[i] += g * (p - target.Data[i])
		}
	})
	return out
}

// HuberLoss returns the scalar Huber loss (delta=1) of pred vs target as a
// 1x1 Var; more robust to runtime outliers than MSE.
func (tp *Tape) HuberLoss(pred *Var, target *Tensor, delta float64) *Var {
	sameShape(pred.Val, target, "Huber")
	out := newVar(NewTensor(1, 1))
	loss := 0.0
	for i, p := range pred.Val.Data {
		d := p - target.Data[i]
		if math.Abs(d) <= delta {
			loss += 0.5 * d * d
		} else {
			loss += delta * (math.Abs(d) - 0.5*delta)
		}
	}
	out.Val.Data[0] = loss
	tp.backward = append(tp.backward, func() {
		g := out.Grad.Data[0]
		for i, p := range pred.Val.Data {
			d := p - target.Data[i]
			switch {
			case d > delta:
				pred.Grad.Data[i] += g * delta
			case d < -delta:
				pred.Grad.Data[i] -= g * delta
			default:
				pred.Grad.Data[i] += g * d
			}
		}
	})
	return out
}

// Backward seeds the loss gradient with 1 and replays the tape in reverse.
// loss must be a 1x1 Var produced by this tape.
func (tp *Tape) Backward(loss *Var) {
	if loss.Val.Rows != 1 || loss.Val.Cols != 1 {
		panic("nn: Backward expects a scalar loss")
	}
	loss.Grad.Data[0] = 1
	for i := len(tp.backward) - 1; i >= 0; i-- {
		tp.backward[i]()
	}
}
