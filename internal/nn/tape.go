package nn

import "math"

// Var is one node of the dynamic computation graph: a value tensor and its
// gradient. Vars are created through Tape operations.
type Var struct {
	Val  *Tensor
	Grad *Tensor
}

// Tape records operations for reverse-mode differentiation. Build the
// forward computation through Tape methods, then call Backward on the
// scalar loss. A Tape is built fresh per training sample, because plan
// graphs differ from sample to sample — but "fresh" does not have to
// mean "heap-allocated": Reset recycles every Var and Tensor struct and
// the float64 slab behind them, so a tape reused across samples reaches
// a steady state where the only per-sample allocations left are the
// backward closures themselves.
type Tape struct {
	backward []func()

	// Recycled scratch (see Reset): Var and Tensor structs plus one
	// float64 slab, reused across Reset cycles. used counters index the
	// next free struct; slabNeed records the total floats requested this
	// cycle so Reset can size the slab for the next one.
	vars     []*Var
	varsUsed int
	tensors  []*Tensor
	tensUsed int
	slab     []float64
	slabOff  int
	slabNeed int

	// gradRemap redirects Leaf gradient accumulation (see RemapGrads).
	gradRemap map[*Tensor]*Tensor
}

// NewTape creates an empty tape.
func NewTape() *Tape { return &Tape{} }

// Reset recycles the tape for the next sample: backward closures are
// dropped and every Var, Tensor and slab float handed out so far
// becomes reusable. Values produced by earlier operations are invalid
// after Reset. The gradient remap table survives — a worker binds its
// private buffers once and resets per sample.
func (tp *Tape) Reset() {
	tp.backward = tp.backward[:0]
	tp.varsUsed = 0
	tp.tensUsed = 0
	if tp.slabNeed > len(tp.slab) {
		tp.slab = make([]float64, tp.slabNeed)
	}
	tp.slabOff = 0
	tp.slabNeed = 0
}

// RemapGrads redirects Leaf gradient accumulation: a Leaf whose grad
// tensor appears as a key accumulates into the mapped tensor instead.
// This is how a data-parallel training worker binds shared parameters
// to its private GradSet buffers. The mapping persists across Reset;
// pass nil to clear it.
func (tp *Tape) RemapGrads(m map[*Tensor]*Tensor) { tp.gradRemap = m }

// scratch returns a zeroed length-n slice from the tape's slab, falling
// back to the heap when the slab is exhausted (Reset sizes the next
// slab from this cycle's total demand, so the fallback disappears at
// steady state).
func (tp *Tape) scratch(n int) []float64 {
	tp.slabNeed += n
	if tp.slabOff+n <= len(tp.slab) {
		s := tp.slab[tp.slabOff : tp.slabOff+n : tp.slabOff+n]
		tp.slabOff += n
		for i := range s {
			s[i] = 0
		}
		return s
	}
	return make([]float64, n)
}

// tensorStruct returns a recycled (or new) Tensor shell with no shape.
func (tp *Tape) tensorStruct() *Tensor {
	if tp.tensUsed < len(tp.tensors) {
		t := tp.tensors[tp.tensUsed]
		tp.tensUsed++
		return t
	}
	t := new(Tensor)
	tp.tensors = append(tp.tensors, t)
	tp.tensUsed++
	return t
}

// tensor returns a zeroed rows x cols tensor backed by tape scratch.
func (tp *Tape) tensor(rows, cols int) *Tensor {
	t := tp.tensorStruct()
	t.Rows, t.Cols = rows, cols
	t.Data = tp.scratch(rows * cols)
	return t
}

// cloneOf returns a tape-scratch copy of src.
func (tp *Tape) cloneOf(src *Tensor) *Tensor {
	t := tp.tensor(src.Rows, src.Cols)
	copy(t.Data, src.Data)
	return t
}

// varStruct returns a recycled (or new) Var shell.
func (tp *Tape) varStruct() *Var {
	if tp.varsUsed < len(tp.vars) {
		v := tp.vars[tp.varsUsed]
		tp.varsUsed++
		return v
	}
	v := new(Var)
	tp.vars = append(tp.vars, v)
	tp.varsUsed++
	return v
}

// newVar wraps val with a zeroed tape-scratch gradient of matching shape.
func (tp *Tape) newVar(val *Tensor) *Var {
	v := tp.varStruct()
	v.Val = val
	v.Grad = tp.tensor(val.Rows, val.Cols)
	return v
}

// Leaf wraps a tensor as a graph input whose gradient accumulates into the
// provided grad tensor (pass the persistent parameter gradient to train, or
// a scratch tensor for constants). An active RemapGrads table may redirect
// the accumulation into a worker-private buffer.
func (tp *Tape) Leaf(val, grad *Tensor) *Var {
	if pg, ok := tp.gradRemap[grad]; ok {
		grad = pg
	}
	sameShape(val, grad, "leaf")
	v := tp.varStruct()
	v.Val, v.Grad = val, grad
	return v
}

// Const wraps a tensor whose gradient is discarded.
func (tp *Tape) Const(val *Tensor) *Var { return tp.newVar(val) }

// ConstRow wraps data as a 1 x len(data) constant Var without copying —
// the zero-copy bridge from encoded feature vectors into the graph. The
// caller must not mutate data until Backward completes; tape operations
// never write through Val.
func (tp *Tape) ConstRow(data []float64) *Var {
	t := tp.tensorStruct()
	t.Rows, t.Cols, t.Data = 1, len(data), data
	return tp.newVar(t)
}

// MatMul returns a @ b.
func (tp *Tape) MatMul(a, b *Var) *Var {
	out := tp.newVar(tp.tensor(a.Val.Rows, b.Val.Cols))
	MatMulInto(out.Val, a.Val, b.Val)
	tp.backward = append(tp.backward, func() {
		// dA += dOut @ B^T ; dB += A^T @ dOut
		for i := 0; i < a.Val.Rows; i++ {
			for k := 0; k < a.Val.Cols; k++ {
				g := 0.0
				for j := 0; j < b.Val.Cols; j++ {
					g += out.Grad.At(i, j) * b.Val.At(k, j)
				}
				a.Grad.Data[i*a.Val.Cols+k] += g
			}
		}
		for k := 0; k < b.Val.Rows; k++ {
			for j := 0; j < b.Val.Cols; j++ {
				g := 0.0
				for i := 0; i < a.Val.Rows; i++ {
					g += a.Val.At(i, k) * out.Grad.At(i, j)
				}
				b.Grad.Data[k*b.Val.Cols+j] += g
			}
		}
	})
	return out
}

// Add returns a + b (same shape).
func (tp *Tape) Add(a, b *Var) *Var {
	sameShape(a.Val, b.Val, "Add")
	out := tp.newVar(tp.cloneOf(a.Val))
	out.Val.AddInPlace(b.Val)
	tp.backward = append(tp.backward, func() {
		a.Grad.AddInPlace(out.Grad)
		b.Grad.AddInPlace(out.Grad)
	})
	return out
}

// Sum returns the elementwise sum of one or more same-shaped Vars.
func (tp *Tape) Sum(vs ...*Var) *Var {
	if len(vs) == 0 {
		panic("nn: Sum of nothing")
	}
	out := tp.newVar(tp.cloneOf(vs[0].Val))
	for _, v := range vs[1:] {
		out.Val.AddInPlace(v.Val)
	}
	tp.backward = append(tp.backward, func() {
		for _, v := range vs {
			v.Grad.AddInPlace(out.Grad)
		}
	})
	return out
}

// ReLU returns max(x, 0) elementwise.
func (tp *Tape) ReLU(x *Var) *Var {
	out := tp.newVar(tp.cloneOf(x.Val))
	for i, v := range out.Val.Data {
		if v < 0 {
			out.Val.Data[i] = 0
		}
	}
	tp.backward = append(tp.backward, func() {
		for i := range x.Grad.Data {
			if x.Val.Data[i] > 0 {
				x.Grad.Data[i] += out.Grad.Data[i]
			}
		}
	})
	return out
}

// Concat concatenates row vectors (1 x n each) into one 1 x sum(n) vector.
func (tp *Tape) Concat(vs ...*Var) *Var {
	total := 0
	for _, v := range vs {
		if v.Val.Rows != 1 {
			panic("nn: Concat expects row vectors")
		}
		total += v.Val.Cols
	}
	out := tp.newVar(tp.tensor(1, total))
	off := 0
	for _, v := range vs {
		copy(out.Val.Data[off:off+v.Val.Cols], v.Val.Data)
		off += v.Val.Cols
	}
	tp.backward = append(tp.backward, func() {
		off := 0
		for _, v := range vs {
			for i := 0; i < v.Val.Cols; i++ {
				v.Grad.Data[i] += out.Grad.Data[off+i]
			}
			off += v.Val.Cols
		}
	})
	return out
}

// ScaleVar returns x * s for a constant scalar s.
func (tp *Tape) ScaleVar(x *Var, s float64) *Var {
	out := tp.newVar(tp.cloneOf(x.Val))
	out.Val.Scale(s)
	tp.backward = append(tp.backward, func() {
		for i := range x.Grad.Data {
			x.Grad.Data[i] += out.Grad.Data[i] * s
		}
	})
	return out
}

// MSE returns the scalar 0.5*(pred - target)^2 summed over elements, as a
// 1x1 Var. target is a constant.
func (tp *Tape) MSE(pred *Var, target *Tensor) *Var {
	sameShape(pred.Val, target, "MSE")
	out := tp.newVar(tp.tensor(1, 1))
	loss := 0.0
	for i, p := range pred.Val.Data {
		d := p - target.Data[i]
		loss += 0.5 * d * d
	}
	out.Val.Data[0] = loss
	tp.backward = append(tp.backward, func() {
		g := out.Grad.Data[0]
		for i, p := range pred.Val.Data {
			pred.Grad.Data[i] += g * (p - target.Data[i])
		}
	})
	return out
}

// HuberLoss returns the scalar Huber loss (delta=1) of pred vs target as a
// 1x1 Var; more robust to runtime outliers than MSE.
func (tp *Tape) HuberLoss(pred *Var, target *Tensor, delta float64) *Var {
	sameShape(pred.Val, target, "Huber")
	out := tp.newVar(tp.tensor(1, 1))
	loss := 0.0
	for i, p := range pred.Val.Data {
		d := p - target.Data[i]
		if math.Abs(d) <= delta {
			loss += 0.5 * d * d
		} else {
			loss += delta * (math.Abs(d) - 0.5*delta)
		}
	}
	out.Val.Data[0] = loss
	tp.backward = append(tp.backward, func() {
		g := out.Grad.Data[0]
		for i, p := range pred.Val.Data {
			d := p - target.Data[i]
			switch {
			case d > delta:
				pred.Grad.Data[i] += g * delta
			case d < -delta:
				pred.Grad.Data[i] -= g * delta
			default:
				pred.Grad.Data[i] += g * d
			}
		}
	})
	return out
}

// Backward seeds the loss gradient with 1 and replays the tape in reverse.
// loss must be a 1x1 Var produced by this tape.
func (tp *Tape) Backward(loss *Var) {
	if loss.Val.Rows != 1 || loss.Val.Cols != 1 {
		panic("nn: Backward expects a scalar loss")
	}
	loss.Grad.Data[0] = 1
	for i := len(tp.backward) - 1; i >= 0; i-- {
		tp.backward[i]()
	}
}
