package nn

import (
	"math/rand"
	"testing"
)

// runMLPSample builds one forward+backward pass for x on tp against the
// MLP and returns the loss value. Gradients accumulate into the MLP's
// parameter gradients (possibly remapped).
func runMLPSample(tp *Tape, m *MLP, x, target []float64) float64 {
	out := m.Apply(tp, tp.ConstRow(x))
	loss := tp.MSE(out, FromSlice(target))
	tp.Backward(loss)
	return loss.Val.Data[0]
}

// TestTapeResetBitwiseEqualsFresh pins the tape-pooling contract: a tape
// recycled with Reset across samples produces bitwise-identical losses
// and parameter gradients to a fresh tape per sample.
func runSamples(m *MLP, fresh bool) ([]float64, []*Tensor) {
	rng := rand.New(rand.NewSource(7))
	xs := make([][]float64, 6)
	ts := make([][]float64, 6)
	for i := range xs {
		xs[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		ts[i] = []float64{rng.Float64()}
	}
	var losses []float64
	tp := NewTape()
	for i := range xs {
		if fresh {
			tp = NewTape()
		} else {
			tp.Reset()
		}
		losses = append(losses, runMLPSample(tp, m, xs[i], ts[i]))
	}
	var grads []*Tensor
	for _, p := range m.Params() {
		grads = append(grads, p.Grad.Clone())
		p.Grad.Zero()
	}
	return losses, grads
}

func TestTapeResetBitwiseEqualsFresh(t *testing.T) {
	m := NewMLP(rand.New(rand.NewSource(1)), 3, 8, 1)
	freshLoss, freshGrads := runSamples(m, true)
	poolLoss, poolGrads := runSamples(m, false)
	for i := range freshLoss {
		if freshLoss[i] != poolLoss[i] {
			t.Fatalf("sample %d: pooled-tape loss %v != fresh-tape loss %v", i, poolLoss[i], freshLoss[i])
		}
	}
	for i := range freshGrads {
		for j := range freshGrads[i].Data {
			if freshGrads[i].Data[j] != poolGrads[i].Data[j] {
				t.Fatalf("param %d elem %d: pooled grad %v != fresh grad %v",
					i, j, poolGrads[i].Data[j], freshGrads[i].Data[j])
			}
		}
	}
}

// TestTapeResetSteadyStateCutsAllocations: after the first sample sizes
// the slab, a Reset cycle allocates a small fraction of what a fresh
// tape costs (the remaining allocations are the backward closures).
func TestTapeResetSteadyStateCutsAllocations(t *testing.T) {
	m := NewMLP(rand.New(rand.NewSource(2)), 16, 32, 32, 1)
	x := make([]float64, 16)
	tgt := []float64{0.5}
	for i := range x {
		x[i] = float64(i) * 0.1
	}
	freshAllocs := testing.AllocsPerRun(50, func() {
		runMLPSample(NewTape(), m, x, tgt)
	})
	tp := NewTape()
	runMLPSample(tp, m, x, tgt) // warm the slab and struct pools
	pooledAllocs := testing.AllocsPerRun(50, func() {
		tp.Reset()
		runMLPSample(tp, m, x, tgt)
	})
	t.Logf("fresh tape: %.0f allocs/sample; pooled tape: %.0f", freshAllocs, pooledAllocs)
	if pooledAllocs*3 > freshAllocs {
		t.Fatalf("tape pooling cut allocations only %.1fx (fresh %.0f, pooled %.0f); want >= 3x",
			freshAllocs/pooledAllocs, freshAllocs, pooledAllocs)
	}
}

// TestRemapGradsRoutesIntoGradSet: with a remap installed, Leaf
// gradients land in the private GradSet buffers and the shared
// parameter gradients stay untouched; AddTo then reproduces the direct
// accumulation bitwise.
func TestRemapGradsRoutesIntoGradSet(t *testing.T) {
	m := NewMLP(rand.New(rand.NewSource(3)), 4, 6, 1)
	params := m.Params()
	x := []float64{0.1, -0.2, 0.3, 0.4}
	tgt := []float64{1.0}

	// Reference: direct accumulation into the shared gradients.
	runMLPSample(NewTape(), m, x, tgt)
	var want []*Tensor
	for _, p := range params {
		want = append(want, p.Grad.Clone())
		p.Grad.Zero()
	}

	gs := NewGradSet(params)
	tp := NewTape()
	tp.RemapGrads(gs.Remap())
	runMLPSample(tp, m, x, tgt)
	for i, p := range params {
		for _, v := range p.Grad.Data {
			if v != 0 {
				t.Fatalf("param %d: shared gradient touched despite remap", i)
			}
		}
	}
	gs.AddTo(params)
	for i, p := range params {
		for j := range p.Grad.Data {
			if p.Grad.Data[j] != want[i].Data[j] {
				t.Fatalf("param %d elem %d: remapped+reduced grad %v != direct grad %v",
					i, j, p.Grad.Data[j], want[i].Data[j])
			}
		}
	}

	// Remap survives Reset; clearing it restores direct accumulation.
	gs.Zero()
	tp.Reset()
	runMLPSample(tp, m, x, tgt)
	allZero := true
	for _, g := range gs.Remap() {
		for _, v := range g.Data {
			if v != 0 {
				allZero = false
			}
		}
	}
	if allZero {
		t.Fatal("remap did not survive Reset")
	}
	for _, p := range params {
		p.Grad.Zero()
	}
	tp.RemapGrads(nil)
	tp.Reset()
	runMLPSample(tp, m, x, tgt)
	touched := false
	for _, p := range params {
		for _, v := range p.Grad.Data {
			if v != 0 {
				touched = true
			}
		}
	}
	if !touched {
		t.Fatal("clearing the remap did not restore direct accumulation")
	}
}

// TestGradSetAddToChecksLength guards the params/set pairing.
func TestGradSetAddToChecksLength(t *testing.T) {
	m := NewMLP(rand.New(rand.NewSource(4)), 2, 2, 1)
	gs := NewGradSet(m.Params())
	defer func() {
		if recover() == nil {
			t.Fatal("AddTo accepted a mismatched parameter list")
		}
	}()
	gs.AddTo(m.Params()[:1])
}
