// Package nn is a small neural-network library built for this reproduction:
// dense float64 tensors, tape-based reverse-mode automatic differentiation,
// linear layers and MLPs, the Adam optimizer, and gob model serialization.
//
// It substitutes for the PyTorch stack the paper's prototype uses ("no GNN
// training ecosystem" exists for offline stdlib-only Go). The dynamic tape
// is what makes the zero-shot model possible: every query plan is a
// different DAG, so the computation graph must be rebuilt per sample, and
// gradients must flow through whatever structure was built.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major matrix of float64.
type Tensor struct {
	Rows, Cols int
	Data       []float64
}

// NewTensor allocates a zeroed rows x cols tensor.
func NewTensor(rows, cols int) *Tensor {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("nn: invalid tensor shape %dx%d", rows, cols))
	}
	return &Tensor{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice builds a 1 x len(v) row vector copying v.
func FromSlice(v []float64) *Tensor {
	t := NewTensor(1, len(v))
	copy(t.Data, v)
	return t
}

// Wrap builds a rows x cols tensor viewing data without copying — the
// zero-copy bridge from externally packed feature matrices (e.g. an
// encoding.BatchGraph slab) into tensor operations. The caller keeps
// ownership of data.
func Wrap(rows, cols int, data []float64) *Tensor {
	if rows <= 0 || cols <= 0 || len(data) != rows*cols {
		panic(fmt.Sprintf("nn: Wrap shape %dx%d does not fit %d values", rows, cols, len(data)))
	}
	return &Tensor{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at (r, c).
func (t *Tensor) At(r, c int) float64 { return t.Data[r*t.Cols+c] }

// Set assigns the element at (r, c).
func (t *Tensor) Set(r, c int, v float64) { t.Data[r*t.Cols+c] = v }

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	c := NewTensor(t.Rows, t.Cols)
	copy(c.Data, t.Data)
	return c
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// sameShape panics unless a and b have identical shapes; shape mismatches
// are programming errors, not runtime conditions.
func sameShape(a, b *Tensor, op string) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("nn: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// AddInPlace accumulates other into t.
func (t *Tensor) AddInPlace(other *Tensor) {
	sameShape(t, other, "add")
	for i, v := range other.Data {
		t.Data[i] += v
	}
}

// Scale multiplies every element by s.
func (t *Tensor) Scale(s float64) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// AddRowBroadcast adds the 1 x Cols row vector to every row of t — the
// inference-mode bias addition (the tape path adds the bias to one row
// at a time; per element the operation is identical).
func (t *Tensor) AddRowBroadcast(row *Tensor) {
	if row.Rows != 1 || row.Cols != t.Cols {
		panic(fmt.Sprintf("nn: broadcast add %dx%d onto %dx%d", row.Rows, row.Cols, t.Rows, t.Cols))
	}
	for r := 0; r < t.Rows; r++ {
		d := t.Data[r*t.Cols : (r+1)*t.Cols]
		for j, v := range row.Data {
			d[j] += v
		}
	}
}

// ReLUInPlace clamps negative elements to zero.
func (t *Tensor) ReLUInPlace() {
	for i, v := range t.Data {
		if v < 0 {
			t.Data[i] = 0
		}
	}
}

// MatMulInto computes dst = a @ b, overwriting dst (which may hold
// arbitrary prior contents — each output row is zeroed before its
// accumulation, so uninitialized scratch is a valid destination). dst
// must be preallocated a.Rows x b.Cols.
func MatMulInto(dst, a, b *Tensor) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("nn: matmul shape mismatch %dx%d @ %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		drow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for j := range drow {
			drow[j] = 0
		}
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// XavierInit fills the tensor with Glorot-uniform random values.
func (t *Tensor) XavierInit(rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(t.Rows+t.Cols))
	for i := range t.Data {
		t.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// L2Norm returns the Euclidean norm of all elements.
func (t *Tensor) L2Norm() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v * v
	}
	return math.Sqrt(s)
}
