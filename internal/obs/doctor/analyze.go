package doctor

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Status is one check's verdict. Worst-of aggregation makes a bundle's
// overall verdict the worst finding in it.
type Status string

const (
	Pass Status = "pass"
	Warn Status = "warn"
	Fail Status = "fail"
	// Skip marks a check whose subsystem is disabled or absent — not a
	// problem, just not applicable.
	Skip Status = "skip"
)

// severity orders statuses for worst-of aggregation.
func severity(s Status) int {
	switch s {
	case Fail:
		return 3
	case Warn:
		return 2
	case Pass:
		return 1
	default:
		return 0
	}
}

// Finding is one check's result against one target (or the whole
// bundle, when Target is empty).
type Finding struct {
	Check  string `json:"check"`
	Status Status `json:"status"`
	Target string `json:"target,omitempty"`
	Detail string `json:"detail"`
}

// Limits are the analyzer thresholds. Zero values select defaults via
// DefaultLimits, so callers tune only what they care about.
type Limits struct {
	// QErrorWarn / QErrorFail bound the median q-error of an adaptation
	// drift window before it is flagged.
	QErrorWarn float64
	QErrorFail float64
	// QErrorMinSamples is the window occupancy below which drift is not
	// judged (cold windows have meaningless medians).
	QErrorMinSamples int
	// CacheMinTraffic is the lookups floor below which hit rates are not
	// judged; CacheHitFloor is the plan/what-if cache hit rate below
	// which a warm database warns.
	CacheMinTraffic int64
	CacheHitFloor   float64
	// P99WarnMs / P99FailMs bound the predict p99 latency.
	P99WarnMs float64
	P99FailMs float64
	// BundleLagWarn / BundleLagFail bound how many revisions a replica
	// may trail the store head.
	BundleLagWarn int64
	BundleLagFail int64
	// ClockSkewWarn bounds the spread of collected_at stamps across the
	// fleet.
	ClockSkewWarn time.Duration
}

// DefaultLimits returns the stock thresholds.
func DefaultLimits() Limits {
	return Limits{
		QErrorWarn:       1.5,
		QErrorFail:       3.0,
		QErrorMinSamples: 10,
		CacheMinTraffic:  50,
		CacheHitFloor:    0.2,
		P99WarnMs:        250,
		P99FailMs:        1000,
		BundleLagWarn:    1,
		BundleLagFail:    2,
		ClockSkewWarn:    30 * time.Second,
	}
}

func (l Limits) withDefaults() Limits {
	d := DefaultLimits()
	if l.QErrorWarn <= 0 {
		l.QErrorWarn = d.QErrorWarn
	}
	if l.QErrorFail <= 0 {
		l.QErrorFail = d.QErrorFail
	}
	if l.QErrorMinSamples <= 0 {
		l.QErrorMinSamples = d.QErrorMinSamples
	}
	if l.CacheMinTraffic <= 0 {
		l.CacheMinTraffic = d.CacheMinTraffic
	}
	if l.CacheHitFloor <= 0 {
		l.CacheHitFloor = d.CacheHitFloor
	}
	if l.P99WarnMs <= 0 {
		l.P99WarnMs = d.P99WarnMs
	}
	if l.P99FailMs <= 0 {
		l.P99FailMs = d.P99FailMs
	}
	if l.BundleLagWarn <= 0 {
		l.BundleLagWarn = d.BundleLagWarn
	}
	if l.BundleLagFail <= 0 {
		l.BundleLagFail = d.BundleLagFail
	}
	if l.ClockSkewWarn <= 0 {
		l.ClockSkewWarn = d.ClockSkewWarn
	}
	return l
}

// ---- tolerant document views -------------------------------------------
//
// The views mirror only the fields the analyzers read, so additive
// server-side changes never break offline analysis of old bundles.

type latencyView struct {
	Count int64   `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
}

type windowView struct {
	Count int64   `json:"count"`
	Size  int     `json:"size"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	Max   float64 `json:"max"`
}

type cacheView struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

func (c cacheView) lookups() int64 { return c.Hits + c.Misses }
func (c cacheView) rate() float64 {
	if t := c.lookups(); t > 0 {
		return float64(c.Hits) / float64(t)
	}
	return 0
}

type schedulerView struct {
	Batches       int64      `json:"batches"`
	Items         int64      `json:"items"`
	MeanBatchSize float64    `json:"mean_batch_size"`
	MaxBatchSize  int64      `json:"max_batch_size"`
	Fallbacks     int64      `json:"fallbacks"`
	BatchSizes    windowView `json:"batch_sizes"`
}

type databaseView struct {
	Database    string     `json:"db"`
	PlanCache   cacheView  `json:"plan_cache"`
	WhatIfCache *cacheView `json:"whatif_cache"`
}

// servingView is one session's /v1/stats core, shared by the
// single-session body and each cluster replica's nested serving field.
type servingView struct {
	CollectedAt time.Time      `json:"collected_at"`
	UptimeSec   float64        `json:"uptime_sec"`
	Requests    int64          `json:"requests"`
	Errors      int64          `json:"errors"`
	Predict     latencyView    `json:"predict"`
	Scheduler   schedulerView  `json:"scheduler"`
	Databases   []databaseView `json:"databases"`
}

type replicaStatsView struct {
	Name    string       `json:"name"`
	Healthy bool         `json:"healthy"`
	Error   string       `json:"error,omitempty"`
	Serving *servingView `json:"serving"`
}

// statsDoc covers both /v1/stats bodies: the single-session form
// (embedded servingView fields at top level) and the cluster form
// (replicas array).
type statsDoc struct {
	servingView
	Replicas []replicaStatsView          `json:"replicas"`
	Bundles  map[string]bundleStatusView `json:"bundles"`
}

type clusterDoc struct {
	Replicas []string            `json:"replicas"`
	Healthy  map[string]bool     `json:"healthy"`
	Owners   map[string]string   `json:"owners"`
	Routes   map[string][]string `json:"routes"`
}

type adaptWindowView struct {
	Database string     `json:"db"`
	QError   windowView `json:"qerror"`
}

type adaptStatusView struct {
	Model   string            `json:"model"`
	Windows []adaptWindowView `json:"windows"`
}

// adaptDoc covers both /v1/adapt/status bodies: the single-session form
// (one status) and the cluster form ({"replicas": {name: status}}).
type adaptDoc struct {
	adaptStatusView
	Replicas map[string]adaptStatusView `json:"replicas"`
}

type bundleStatusView struct {
	Revision  int64  `json:"revision"`
	LastError string `json:"last_error"`
}

type manifestView struct {
	Revision int64 `json:"revision"`
}

type bundlesDoc struct {
	Estimator string                      `json:"estimator"`
	Revisions []manifestView              `json:"revisions"`
	Replicas  map[string]bundleStatusView `json:"replicas"`
}

type eventView struct {
	Seq  int64  `json:"seq"`
	Type string `json:"type"`
}

type eventsDoc struct {
	Head   int64       `json:"head"`
	Events []eventView `json:"events"`
}

// node is one serving session's normalized view: the single session of
// a lone serve process, or one replica of a cluster.
type node struct {
	Name    string
	Serving *servingView
}

// parseDoc unmarshals one captured document into v; false when the
// document is absent, failed, or malformed.
func parseDoc(c *Capture, name string, v any) bool {
	d := c.Doc(name)
	if !d.OK() {
		return false
	}
	return json.Unmarshal(d.Body, v) == nil
}

// nodes flattens a capture's stats document into per-session views.
func nodes(c *Capture) []node {
	var sd statsDoc
	if !parseDoc(c, "stats", &sd) {
		return nil
	}
	if len(sd.Replicas) == 0 {
		sv := sd.servingView
		return []node{{Name: c.Target.Name, Serving: &sv}}
	}
	out := make([]node, 0, len(sd.Replicas))
	for _, r := range sd.Replicas {
		if r.Serving != nil {
			out = append(out, node{Name: c.Target.Name + "/" + r.Name, Serving: r.Serving})
		}
	}
	return out
}

// ---- analyzers ----------------------------------------------------------

// AnalyzeAll runs the whole check catalog over a bundle and returns the
// findings, grouped by check. It never touches the network: the same
// bundle always yields the same findings.
func AnalyzeAll(b *Bundle, lim Limits) []Finding {
	lim = lim.withDefaults()
	var out []Finding
	for _, fn := range []func(*Bundle, Limits) []Finding{
		analyzeCollection,
		analyzeReplicaHealth,
		analyzeRingAgreement,
		analyzeBundleGenerations,
		analyzeQErrorDrift,
		analyzeCacheHitRates,
		analyzeBatchSizes,
		analyzeEventGaps,
		analyzeLatencySLO,
		analyzeClockSkew,
	} {
		out = append(out, fn(b, lim)...)
	}
	return out
}

// Verdict is the worst finding's status (Pass for an empty list — but
// AnalyzeAll always emits at least the collection check).
func Verdict(findings []Finding) Status {
	v := Pass
	for _, f := range findings {
		if f.Status == Skip {
			continue
		}
		if severity(f.Status) > severity(v) {
			v = f.Status
		}
	}
	return v
}

// analyzeCollection fails for any target whose core stats document was
// not captured — an unreachable target makes every other verdict
// partial, and that must be loud.
func analyzeCollection(b *Bundle, _ Limits) []Finding {
	var out []Finding
	for i := range b.Captures {
		c := &b.Captures[i]
		d := c.Doc("stats")
		switch {
		case d.OK():
			out = append(out, Finding{Check: "collection", Status: Pass, Target: c.Target.Name,
				Detail: "stats captured"})
		case d == nil:
			out = append(out, Finding{Check: "collection", Status: Fail, Target: c.Target.Name,
				Detail: "stats never collected"})
		default:
			out = append(out, Finding{Check: "collection", Status: Fail, Target: c.Target.Name,
				Detail: fmt.Sprintf("stats unavailable (HTTP %d): %s", d.Code, d.Err)})
		}
	}
	return out
}

// analyzeReplicaHealth reads the cluster view's health map (and the
// stats replicas as fallback): every replica must be up.
func analyzeReplicaHealth(b *Bundle, _ Limits) []Finding {
	var out []Finding
	for i := range b.Captures {
		c := &b.Captures[i]
		var cd clusterDoc
		if parseDoc(c, "cluster", &cd) {
			var down []string
			for _, name := range cd.Replicas {
				if !cd.Healthy[name] {
					down = append(down, name)
				}
			}
			sort.Strings(down)
			if len(down) > 0 {
				out = append(out, Finding{Check: "replica-health", Status: Fail, Target: c.Target.Name,
					Detail: fmt.Sprintf("%d/%d replicas down: %s", len(down), len(cd.Replicas), strings.Join(down, ", "))})
			} else {
				out = append(out, Finding{Check: "replica-health", Status: Pass, Target: c.Target.Name,
					Detail: fmt.Sprintf("%d/%d replicas healthy", len(cd.Replicas), len(cd.Replicas))})
			}
			continue
		}
		var sd statsDoc
		if parseDoc(c, "stats", &sd) && len(sd.Replicas) == 0 {
			out = append(out, Finding{Check: "replica-health", Status: Pass, Target: c.Target.Name,
				Detail: "single session, no ring"})
		}
	}
	if len(out) == 0 {
		out = append(out, Finding{Check: "replica-health", Status: Skip, Detail: "no cluster view captured"})
	}
	return out
}

// analyzeRingAgreement checks the cluster view's internal consistency:
// every database's owner must head its failover route, and routes may
// name only registered replicas.
func analyzeRingAgreement(b *Bundle, _ Limits) []Finding {
	var out []Finding
	for i := range b.Captures {
		c := &b.Captures[i]
		var cd clusterDoc
		if !parseDoc(c, "cluster", &cd) {
			continue
		}
		known := map[string]bool{}
		for _, r := range cd.Replicas {
			known[r] = true
		}
		var problems []string
		dbs := make([]string, 0, len(cd.Owners))
		for db := range cd.Owners {
			dbs = append(dbs, db)
		}
		sort.Strings(dbs)
		for _, db := range dbs {
			route := cd.Routes[db]
			switch {
			case len(route) == 0:
				problems = append(problems, fmt.Sprintf("%s has no route", db))
			case route[0] != cd.Owners[db]:
				problems = append(problems, fmt.Sprintf("%s owned by %s but routed first to %s", db, cd.Owners[db], route[0]))
			}
			for _, r := range route {
				if !known[r] {
					problems = append(problems, fmt.Sprintf("%s routes through unregistered replica %s", db, r))
				}
			}
		}
		if len(problems) > 0 {
			out = append(out, Finding{Check: "ring-agreement", Status: Fail, Target: c.Target.Name,
				Detail: strings.Join(problems, "; ")})
		} else {
			out = append(out, Finding{Check: "ring-agreement", Status: Pass, Target: c.Target.Name,
				Detail: fmt.Sprintf("owners head their routes for %d databases", len(cd.Owners))})
		}
	}
	if len(out) == 0 {
		out = append(out, Finding{Check: "ring-agreement", Status: Skip, Detail: "no cluster view captured"})
	}
	return out
}

// analyzeBundleGenerations checks that no replica trails the bundle
// store head by more than the allowed revision lag.
func analyzeBundleGenerations(b *Bundle, lim Limits) []Finding {
	var out []Finding
	for i := range b.Captures {
		c := &b.Captures[i]
		var bd bundlesDoc
		if !parseDoc(c, "bundles", &bd) {
			continue
		}
		var head int64
		for _, m := range bd.Revisions {
			if m.Revision > head {
				head = m.Revision
			}
		}
		if head == 0 {
			out = append(out, Finding{Check: "bundle-generations", Status: Pass, Target: c.Target.Name,
				Detail: "store empty, nothing to lag behind"})
			continue
		}
		names := make([]string, 0, len(bd.Replicas))
		for name := range bd.Replicas {
			names = append(names, name)
		}
		sort.Strings(names)
		worst, verdict := int64(0), Pass
		var lagged []string
		for _, name := range names {
			st := bd.Replicas[name]
			lag := head - st.Revision
			if lag <= 0 {
				continue
			}
			lagged = append(lagged, fmt.Sprintf("%s at rev %d (head %d)", name, st.Revision, head))
			if lag > worst {
				worst = lag
			}
		}
		switch {
		case worst >= lim.BundleLagFail:
			verdict = Fail
		case worst >= lim.BundleLagWarn:
			verdict = Warn
		}
		if verdict == Pass {
			out = append(out, Finding{Check: "bundle-generations", Status: Pass, Target: c.Target.Name,
				Detail: fmt.Sprintf("all %d replicas at head revision %d", len(bd.Replicas), head)})
		} else {
			out = append(out, Finding{Check: "bundle-generations", Status: verdict, Target: c.Target.Name,
				Detail: strings.Join(lagged, "; ")})
		}
	}
	if len(out) == 0 {
		out = append(out, Finding{Check: "bundle-generations", Status: Skip, Detail: "bundle distribution disabled"})
	}
	return out
}

// analyzeQErrorDrift judges each adaptation drift window's median
// q-error against the accuracy bounds.
func analyzeQErrorDrift(b *Bundle, lim Limits) []Finding {
	var out []Finding
	for i := range b.Captures {
		c := &b.Captures[i]
		var ad adaptDoc
		if !parseDoc(c, "adapt", &ad) {
			continue
		}
		statuses := ad.Replicas
		if len(statuses) == 0 && ad.Model != "" {
			statuses = map[string]adaptStatusView{c.Target.Name: ad.adaptStatusView}
		}
		names := make([]string, 0, len(statuses))
		for name := range statuses {
			names = append(names, name)
		}
		sort.Strings(names)
		emitted := false
		for _, name := range names {
			for _, w := range statuses[name].Windows {
				if w.QError.Size < lim.QErrorMinSamples {
					continue
				}
				emitted = true
				f := Finding{Check: "qerror-drift", Target: c.Target.Name,
					Detail: fmt.Sprintf("%s/%s median q-error %.2f over %d samples", name, w.Database, w.QError.P50, w.QError.Size)}
				switch {
				case w.QError.P50 >= lim.QErrorFail:
					f.Status = Fail
				case w.QError.P50 >= lim.QErrorWarn:
					f.Status = Warn
				default:
					f.Status = Pass
				}
				out = append(out, f)
			}
		}
		if !emitted {
			out = append(out, Finding{Check: "qerror-drift", Status: Pass, Target: c.Target.Name,
				Detail: "no drift window has enough feedback to judge"})
		}
	}
	if len(out) == 0 {
		out = append(out, Finding{Check: "qerror-drift", Status: Skip, Detail: "online adaptation disabled"})
	}
	return out
}

// analyzeCacheHitRates warns for any database whose plan (or what-if)
// cache hit rate sits below the floor despite real traffic.
func analyzeCacheHitRates(b *Bundle, lim Limits) []Finding {
	var out []Finding
	for i := range b.Captures {
		for _, n := range nodes(&b.Captures[i]) {
			for _, db := range n.Serving.Databases {
				caches := []struct {
					label string
					c     cacheView
				}{{"plan cache", db.PlanCache}}
				if db.WhatIfCache != nil {
					caches = append(caches, struct {
						label string
						c     cacheView
					}{"what-if cache", *db.WhatIfCache})
				}
				for _, cc := range caches {
					f := Finding{Check: "cache-hit-rate", Target: n.Name}
					switch {
					case cc.c.lookups() < lim.CacheMinTraffic:
						f.Status = Pass
						f.Detail = fmt.Sprintf("%s/%s: %d lookups, too few to judge", db.Database, cc.label, cc.c.lookups())
					case cc.c.rate() < lim.CacheHitFloor:
						f.Status = Warn
						f.Detail = fmt.Sprintf("%s/%s hit rate %.0f%% below %.0f%% floor over %d lookups",
							db.Database, cc.label, 100*cc.c.rate(), 100*lim.CacheHitFloor, cc.c.lookups())
					default:
						f.Status = Pass
						f.Detail = fmt.Sprintf("%s/%s hit rate %.0f%% over %d lookups",
							db.Database, cc.label, 100*cc.c.rate(), cc.c.lookups())
					}
					out = append(out, f)
				}
			}
		}
	}
	if len(out) == 0 {
		out = append(out, Finding{Check: "cache-hit-rate", Status: Skip, Detail: "no serving stats captured"})
	}
	return out
}

// analyzeBatchSizes sanity-checks the micro-batch scheduler counters:
// items and batches must cohere, and the size distribution must stay
// within the observed maximum.
func analyzeBatchSizes(b *Bundle, _ Limits) []Finding {
	var out []Finding
	for i := range b.Captures {
		for _, n := range nodes(&b.Captures[i]) {
			s := n.Serving.Scheduler
			f := Finding{Check: "batch-sizes", Target: n.Name}
			switch {
			case s.Batches == 0 && s.Items == 0:
				f.Status = Pass
				f.Detail = "no batched traffic yet"
			case s.Batches == 0 || s.Items < s.Batches:
				f.Status = Fail
				f.Detail = fmt.Sprintf("impossible counters: %d items across %d batches", s.Items, s.Batches)
			case s.MeanBatchSize < 1 || float64(s.MaxBatchSize) < s.MeanBatchSize:
				f.Status = Fail
				f.Detail = fmt.Sprintf("mean batch size %.2f outside [1, max %d]", s.MeanBatchSize, s.MaxBatchSize)
			case s.BatchSizes.Max > float64(s.MaxBatchSize):
				f.Status = Fail
				f.Detail = fmt.Sprintf("size window max %.0f exceeds lifetime max %d", s.BatchSizes.Max, s.MaxBatchSize)
			default:
				f.Status = Pass
				f.Detail = fmt.Sprintf("mean %.2f, max %d over %d batches", s.MeanBatchSize, s.MaxBatchSize, s.Batches)
			}
			out = append(out, f)
		}
	}
	if len(out) == 0 {
		out = append(out, Finding{Check: "batch-sizes", Status: Skip, Detail: "no serving stats captured"})
	}
	return out
}

// analyzeEventGaps checks event-ring continuity: within one snapshot
// the sequence numbers must be consecutive — a hole means events were
// dropped, not merely evicted (eviction trims the oldest edge).
func analyzeEventGaps(b *Bundle, _ Limits) []Finding {
	var out []Finding
	for i := range b.Captures {
		c := &b.Captures[i]
		var ed eventsDoc
		if !parseDoc(c, "events", &ed) {
			continue
		}
		f := Finding{Check: "event-gaps", Status: Pass, Target: c.Target.Name,
			Detail: fmt.Sprintf("%d events contiguous through seq %d", len(ed.Events), ed.Head)}
		for j := 1; j < len(ed.Events); j++ {
			if ed.Events[j].Seq != ed.Events[j-1].Seq+1 {
				f.Status = Fail
				f.Detail = fmt.Sprintf("sequence gap: %d then %d", ed.Events[j-1].Seq, ed.Events[j].Seq)
				break
			}
		}
		if f.Status == Pass && len(ed.Events) > 0 && ed.Events[len(ed.Events)-1].Seq > ed.Head {
			f.Status = Fail
			f.Detail = fmt.Sprintf("event seq %d beyond advertised head %d", ed.Events[len(ed.Events)-1].Seq, ed.Head)
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		out = append(out, Finding{Check: "event-gaps", Status: Skip, Detail: "no event log captured"})
	}
	return out
}

// analyzeLatencySLO judges each session's predict p99 against the
// latency objective.
func analyzeLatencySLO(b *Bundle, lim Limits) []Finding {
	var out []Finding
	for i := range b.Captures {
		for _, n := range nodes(&b.Captures[i]) {
			p := n.Serving.Predict
			f := Finding{Check: "latency-slo", Target: n.Name}
			switch {
			case p.Count == 0:
				f.Status = Pass
				f.Detail = "no predictions yet"
			case p.P99Ms >= lim.P99FailMs:
				f.Status = Fail
				f.Detail = fmt.Sprintf("predict p99 %.1fms breaches %.0fms", p.P99Ms, lim.P99FailMs)
			case p.P99Ms >= lim.P99WarnMs:
				f.Status = Warn
				f.Detail = fmt.Sprintf("predict p99 %.1fms above %.0fms objective", p.P99Ms, lim.P99WarnMs)
			default:
				f.Status = Pass
				f.Detail = fmt.Sprintf("predict p99 %.1fms (p50 %.1fms) over %d requests", p.P99Ms, p.P50Ms, p.Count)
			}
			out = append(out, f)
		}
	}
	if len(out) == 0 {
		out = append(out, Finding{Check: "latency-slo", Status: Skip, Detail: "no serving stats captured"})
	}
	return out
}

// analyzeClockSkew warns when the spread of collected_at stamps across
// the fleet exceeds the bound — stats that disagree about "now" cannot
// be compared as one moment.
func analyzeClockSkew(b *Bundle, lim Limits) []Finding {
	var stamps []time.Time
	for i := range b.Captures {
		for _, n := range nodes(&b.Captures[i]) {
			if !n.Serving.CollectedAt.IsZero() {
				stamps = append(stamps, n.Serving.CollectedAt)
			}
		}
	}
	if len(stamps) < 2 {
		return []Finding{{Check: "clock-skew", Status: Skip, Detail: "fewer than two timestamped sessions"}}
	}
	lo, hi := stamps[0], stamps[0]
	for _, t := range stamps[1:] {
		if t.Before(lo) {
			lo = t
		}
		if t.After(hi) {
			hi = t
		}
	}
	spread := hi.Sub(lo)
	if spread > lim.ClockSkewWarn {
		return []Finding{{Check: "clock-skew", Status: Warn,
			Detail: fmt.Sprintf("collected_at stamps spread %v across %d sessions", spread.Round(time.Millisecond), len(stamps))}}
	}
	return []Finding{{Check: "clock-skew", Status: Pass,
		Detail: fmt.Sprintf("stamps within %v across %d sessions", spread.Round(time.Millisecond), len(stamps))}}
}

// RenderTable formats findings as the `zsdb doctor` verdict table.
func RenderTable(findings []Finding) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-4s  %-20s  %-24s  %s\n", "", "CHECK", "TARGET", "DETAIL")
	for _, f := range findings {
		mark := map[Status]string{Pass: "ok", Warn: "WARN", Fail: "FAIL", Skip: "-"}[f.Status]
		fmt.Fprintf(&sb, "%-4s  %-20s  %-24s  %s\n", mark, f.Check, f.Target, f.Detail)
	}
	fmt.Fprintf(&sb, "verdict: %s\n", Verdict(findings))
	return sb.String()
}
