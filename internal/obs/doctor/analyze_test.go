package doctor

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"
)

// mkCapture builds a capture whose named docs hold the marshaled
// bodies; endpoints not named are recorded as disabled (404).
func mkCapture(t *testing.T, name string, docs map[string]any) Capture {
	t.Helper()
	c := Capture{Target: Target{Name: name, BaseURL: "http://" + name}, Docs: map[string]*Doc{}}
	for _, ep := range Endpoints {
		if v, ok := docs[ep.Name]; ok {
			body, err := json.Marshal(v)
			if err != nil {
				t.Fatal(err)
			}
			c.Docs[ep.Name] = &Doc{Name: ep.Name, Code: 200, Body: body}
		} else {
			c.Docs[ep.Name] = &Doc{Name: ep.Name, Code: 404, Err: "disabled"}
		}
	}
	return c
}

// healthyStats is a minimal single-session stats body that passes every
// serving-level check.
func healthyStats(collected time.Time) map[string]any {
	return map[string]any{
		"collected_at": collected,
		"uptime_sec":   12.5,
		"requests":     1000,
		"errors":       0,
		"predict":      map[string]any{"count": 1000, "p50_ms": 1.0, "p95_ms": 2.0, "p99_ms": 3.0},
		"scheduler": map[string]any{
			"batches": 400, "items": 1000, "mean_batch_size": 2.5, "max_batch_size": 8,
			"batch_sizes": map[string]any{"count": 400, "size": 64, "p50": 2, "p95": 6, "max": 8},
		},
		"databases": []map[string]any{{
			"db":         "imdb",
			"plan_cache": map[string]any{"hits": 900, "misses": 100},
		}},
	}
}

func findingsFor(fs []Finding, check string) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Check == check {
			out = append(out, f)
		}
	}
	return out
}

func wantStatus(t *testing.T, fs []Finding, check string, want Status) {
	t.Helper()
	got := findingsFor(fs, check)
	if len(got) == 0 {
		t.Fatalf("no findings for check %q in %+v", check, fs)
	}
	worst := Skip
	for _, f := range got {
		if severity(f.Status) > severity(worst) {
			worst = f.Status
		}
	}
	if worst != want {
		t.Fatalf("check %q worst status = %s, want %s (findings: %+v)", check, worst, want, got)
	}
}

func TestAnalyzeHealthySingleNode(t *testing.T) {
	b := &Bundle{
		Meta: Meta{Targets: []Target{{Name: "server"}}},
		Captures: []Capture{mkCapture(t, "server", map[string]any{
			"stats":  healthyStats(time.Now()),
			"events": map[string]any{"head": 3, "events": []map[string]any{{"seq": 1}, {"seq": 2}, {"seq": 3}}},
		})},
	}
	fs := AnalyzeAll(b, Limits{})
	if v := Verdict(fs); v != Pass {
		t.Fatalf("verdict = %s, want pass\n%s", v, RenderTable(fs))
	}
	wantStatus(t, fs, "collection", Pass)
	wantStatus(t, fs, "latency-slo", Pass)
	wantStatus(t, fs, "cache-hit-rate", Pass)
	wantStatus(t, fs, "batch-sizes", Pass)
	wantStatus(t, fs, "event-gaps", Pass)
	// Disabled subsystems skip rather than judge.
	wantStatus(t, fs, "bundle-generations", Skip)
	wantStatus(t, fs, "qerror-drift", Skip)
}

func TestAnalyzeUnreachableTargetFails(t *testing.T) {
	c := Capture{Target: Target{Name: "dead"}, Docs: map[string]*Doc{}}
	for _, ep := range Endpoints {
		c.Docs[ep.Name] = &Doc{Name: ep.Name, Err: "dial tcp: connection refused"}
	}
	b := &Bundle{Meta: Meta{Targets: []Target{c.Target}}, Captures: []Capture{c}}
	fs := AnalyzeAll(b, Limits{})
	wantStatus(t, fs, "collection", Fail)
	if Verdict(fs) != Fail {
		t.Fatalf("verdict = %s, want fail", Verdict(fs))
	}
}

func TestAnalyzeRingAgreement(t *testing.T) {
	good := map[string]any{
		"replicas": []string{"r0", "r1"},
		"healthy":  map[string]bool{"r0": true, "r1": true},
		"owners":   map[string]string{"imdb": "r0"},
		"routes":   map[string][]string{"imdb": {"r0", "r1"}},
	}
	b := &Bundle{Captures: []Capture{mkCapture(t, "router", map[string]any{"cluster": good})}}
	wantStatus(t, AnalyzeAll(b, Limits{}), "ring-agreement", Pass)

	// A route whose head disagrees with the owner is a torn ring view.
	bad := map[string]any{
		"replicas": []string{"r0", "r1"},
		"healthy":  map[string]bool{"r0": true, "r1": true},
		"owners":   map[string]string{"imdb": "r0"},
		"routes":   map[string][]string{"imdb": {"r1", "r0"}},
	}
	b = &Bundle{Captures: []Capture{mkCapture(t, "router", map[string]any{"cluster": bad})}}
	fs := AnalyzeAll(b, Limits{})
	wantStatus(t, fs, "ring-agreement", Fail)
	if d := findingsFor(fs, "ring-agreement")[0].Detail; !strings.Contains(d, "imdb") {
		t.Fatalf("detail should name the database: %q", d)
	}
}

func TestAnalyzeBundleGenerationLag(t *testing.T) {
	mk := func(r0, r1 int64) *Bundle {
		doc := map[string]any{
			"estimator": "zeroshot",
			"revisions": []map[string]any{{"revision": 1}, {"revision": 2}, {"revision": 3}},
			"replicas": map[string]any{
				"r0": map[string]any{"revision": r0},
				"r1": map[string]any{"revision": r1},
			},
		}
		return &Bundle{Captures: []Capture{mkCapture(t, "server", map[string]any{"bundles": doc})}}
	}
	wantStatus(t, AnalyzeAll(mk(3, 3), Limits{}), "bundle-generations", Pass)
	wantStatus(t, AnalyzeAll(mk(3, 2), Limits{}), "bundle-generations", Warn)
	wantStatus(t, AnalyzeAll(mk(3, 1), Limits{}), "bundle-generations", Fail)
}

func TestAnalyzeQErrorDrift(t *testing.T) {
	mk := func(p50 float64, size int) *Bundle {
		doc := map[string]any{
			"model": "zeroshot",
			"windows": []map[string]any{{
				"db":     "imdb",
				"qerror": map[string]any{"count": size, "size": size, "p50": p50, "p95": p50 * 2, "max": p50 * 3},
			}},
		}
		return &Bundle{Captures: []Capture{mkCapture(t, "server", map[string]any{"adapt": doc})}}
	}
	wantStatus(t, AnalyzeAll(mk(1.2, 50), Limits{}), "qerror-drift", Pass)
	wantStatus(t, AnalyzeAll(mk(2.0, 50), Limits{}), "qerror-drift", Warn)
	wantStatus(t, AnalyzeAll(mk(5.0, 50), Limits{}), "qerror-drift", Fail)
	// A cold window is not judged at all.
	wantStatus(t, AnalyzeAll(mk(5.0, 3), Limits{}), "qerror-drift", Pass)
}

func TestAnalyzeCacheHitRateFloor(t *testing.T) {
	mk := func(hits, misses int64) *Bundle {
		st := healthyStats(time.Now())
		st["databases"] = []map[string]any{{
			"db":         "imdb",
			"plan_cache": map[string]any{"hits": hits, "misses": misses},
		}}
		return &Bundle{Captures: []Capture{mkCapture(t, "server", map[string]any{"stats": st})}}
	}
	wantStatus(t, AnalyzeAll(mk(90, 10), Limits{}), "cache-hit-rate", Pass)
	wantStatus(t, AnalyzeAll(mk(5, 95), Limits{}), "cache-hit-rate", Warn)
	// Too little traffic to judge: a cold cache is not a sick cache.
	wantStatus(t, AnalyzeAll(mk(0, 10), Limits{}), "cache-hit-rate", Pass)
}

func TestAnalyzeBatchSizeSanity(t *testing.T) {
	st := healthyStats(time.Now())
	st["scheduler"] = map[string]any{
		"batches": 100, "items": 40, "mean_batch_size": 0.4, "max_batch_size": 8,
		"batch_sizes": map[string]any{},
	}
	b := &Bundle{Captures: []Capture{mkCapture(t, "server", map[string]any{"stats": st})}}
	wantStatus(t, AnalyzeAll(b, Limits{}), "batch-sizes", Fail)
}

func TestAnalyzeEventGap(t *testing.T) {
	doc := map[string]any{"head": 9, "events": []map[string]any{{"seq": 4}, {"seq": 5}, {"seq": 8}, {"seq": 9}}}
	b := &Bundle{Captures: []Capture{mkCapture(t, "server", map[string]any{
		"stats":  healthyStats(time.Now()),
		"events": doc,
	})}}
	fs := AnalyzeAll(b, Limits{})
	wantStatus(t, fs, "event-gaps", Fail)
}

func TestAnalyzeLatencySLO(t *testing.T) {
	mk := func(p99 float64) *Bundle {
		st := healthyStats(time.Now())
		st["predict"] = map[string]any{"count": 1000, "p50_ms": 1.0, "p95_ms": 2.0, "p99_ms": p99}
		return &Bundle{Captures: []Capture{mkCapture(t, "server", map[string]any{"stats": st})}}
	}
	wantStatus(t, AnalyzeAll(mk(3), Limits{}), "latency-slo", Pass)
	wantStatus(t, AnalyzeAll(mk(400), Limits{}), "latency-slo", Warn)
	wantStatus(t, AnalyzeAll(mk(2000), Limits{}), "latency-slo", Fail)
}

func TestAnalyzeClockSkew(t *testing.T) {
	now := time.Now()
	b := &Bundle{Captures: []Capture{
		mkCapture(t, "a", map[string]any{"stats": healthyStats(now)}),
		mkCapture(t, "b", map[string]any{"stats": healthyStats(now.Add(2 * time.Minute))}),
	}}
	wantStatus(t, AnalyzeAll(b, Limits{}), "clock-skew", Warn)

	b = &Bundle{Captures: []Capture{
		mkCapture(t, "a", map[string]any{"stats": healthyStats(now)}),
		mkCapture(t, "b", map[string]any{"stats": healthyStats(now.Add(time.Second))}),
	}}
	wantStatus(t, AnalyzeAll(b, Limits{}), "clock-skew", Pass)
}

// TestArchiveRoundTrip pins the offline-analysis contract: a bundle
// written and re-read yields the identical findings.
func TestArchiveRoundTrip(t *testing.T) {
	b := &Bundle{
		Meta: Meta{Tool: "zsdb doctor", CollectedAt: time.Now().UTC(), Targets: []Target{{Name: "server", BaseURL: "http://server"}}},
		Captures: []Capture{mkCapture(t, "server", map[string]any{
			"stats":  healthyStats(time.Now()),
			"events": map[string]any{"head": 2, "events": []map[string]any{{"seq": 1}, {"seq": 2}}},
		})},
	}
	var buf bytes.Buffer
	if err := WriteArchive(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadArchive(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := AnalyzeAll(b, Limits{})
	have := AnalyzeAll(got, Limits{})
	if fmt.Sprintf("%+v", want) != fmt.Sprintf("%+v", have) {
		t.Fatalf("findings diverge after round trip:\nlive:    %+v\noffline: %+v", want, have)
	}
	if got.Meta.Tool != "zsdb doctor" || len(got.Captures) != 1 {
		t.Fatalf("meta lost in round trip: %+v", got.Meta)
	}
	// 404-captured docs survive as status without bodies.
	d := got.Captures[0].Doc("adapt")
	if d == nil || d.Code != 404 || d.Body != nil {
		t.Fatalf("disabled doc not preserved: %+v", d)
	}
}
