package doctor

import (
	"archive/tar"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"path"
	"strings"
)

// archiveMeta is the on-disk meta.json: the manifest plus every
// document's capture status, so an archive is self-describing even for
// the documents that have no body member.
type archiveMeta struct {
	Meta
	// Docs records each capture attempt: Docs[target][doc].
	Docs map[string]map[string]*Doc `json:"docs"`
}

// WriteArchive streams the bundle as a gzip'd tar: meta.json first,
// then targets/<target>/<doc>.json for every successfully captured
// document.
func WriteArchive(w io.Writer, b *Bundle) error {
	gz := gzip.NewWriter(w)
	tw := tar.NewWriter(gz)

	am := archiveMeta{Meta: b.Meta, Docs: map[string]map[string]*Doc{}}
	for i := range b.Captures {
		cap := &b.Captures[i]
		am.Docs[cap.Target.Name] = cap.Docs
	}
	meta, err := json.MarshalIndent(am, "", "  ")
	if err != nil {
		return err
	}
	if err := writeMember(tw, "meta.json", meta); err != nil {
		return err
	}
	for i := range b.Captures {
		cap := &b.Captures[i]
		for _, ep := range Endpoints {
			d := cap.Docs[ep.Name]
			if d == nil || d.Body == nil {
				continue
			}
			name := path.Join("targets", cap.Target.Name, ep.Name+".json")
			if err := writeMember(tw, name, d.Body); err != nil {
				return err
			}
		}
	}
	if err := tw.Close(); err != nil {
		return err
	}
	return gz.Close()
}

func writeMember(tw *tar.Writer, name string, body []byte) error {
	hdr := &tar.Header{Name: name, Mode: 0o644, Size: int64(len(body))}
	if err := tw.WriteHeader(hdr); err != nil {
		return err
	}
	_, err := tw.Write(body)
	return err
}

// ReadArchive reconstructs a bundle from a saved archive. Analysis of
// the result is byte-identical to analyzing the live collection the
// archive was written from.
func ReadArchive(r io.Reader) (*Bundle, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("doctor: open archive: %w", err)
	}
	defer gz.Close()
	tr := tar.NewReader(gz)

	var am *archiveMeta
	bodies := map[string]map[string][]byte{} // target -> doc -> body
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("doctor: read archive: %w", err)
		}
		data, err := io.ReadAll(io.LimitReader(tr, maxDocBytes))
		if err != nil {
			return nil, fmt.Errorf("doctor: read %s: %w", hdr.Name, err)
		}
		switch {
		case hdr.Name == "meta.json":
			am = &archiveMeta{}
			if err := json.Unmarshal(data, am); err != nil {
				return nil, fmt.Errorf("doctor: parse meta.json: %w", err)
			}
		case strings.HasPrefix(hdr.Name, "targets/"):
			parts := strings.Split(hdr.Name, "/")
			if len(parts) != 3 || !strings.HasSuffix(parts[2], ".json") {
				continue // not a document member
			}
			target, doc := parts[1], strings.TrimSuffix(parts[2], ".json")
			if bodies[target] == nil {
				bodies[target] = map[string][]byte{}
			}
			bodies[target][doc] = data
		}
	}
	if am == nil {
		return nil, fmt.Errorf("doctor: archive has no meta.json")
	}

	b := &Bundle{Meta: am.Meta}
	for _, t := range am.Meta.Targets {
		cap := Capture{Target: t, Docs: map[string]*Doc{}}
		for name, d := range am.Docs[t.Name] {
			if d.Name == "" {
				d.Name = name
			}
			if body, ok := bodies[t.Name][name]; ok {
				d.Body = body
			}
			cap.Docs[name] = d
		}
		b.Captures = append(b.Captures, cap)
	}
	return b, nil
}
