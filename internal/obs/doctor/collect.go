package doctor

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// maxDocBytes bounds one document read — a support bundle should never
// balloon because a trace ring or event log grew hostile.
const maxDocBytes = 16 << 20

// Collect snapshots every endpoint of every target into one bundle.
// Failures are captured, not returned: a dead replica's documents carry
// the transport error, a disabled subsystem carries its 404 — both are
// analyzer input. The only error is having nothing to collect.
func Collect(ctx context.Context, client *http.Client, targets []Target) (*Bundle, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("doctor: no targets to collect from")
	}
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	b := &Bundle{Meta: Meta{
		Tool:        "zsdb doctor",
		CollectedAt: time.Now().UTC(),
		Targets:     targets,
	}}
	for _, t := range targets {
		cap := Capture{Target: t, Docs: make(map[string]*Doc, len(Endpoints))}
		for _, ep := range Endpoints {
			cap.Docs[ep.Name] = fetchDoc(ctx, client, t, ep)
		}
		b.Captures = append(b.Captures, cap)
	}
	return b, nil
}

// fetchDoc GETs one endpoint and wraps the outcome as a Doc.
func fetchDoc(ctx context.Context, client *http.Client, t Target, ep Endpoint) *Doc {
	d := &Doc{Name: ep.Name}
	url := strings.TrimRight(t.BaseURL, "/") + ep.Path
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		d.Err = err.Error()
		return d
	}
	resp, err := client.Do(req)
	if err != nil {
		d.Err = err.Error()
		return d
	}
	defer resp.Body.Close()
	d.Code = resp.StatusCode
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxDocBytes))
	if err != nil {
		d.Err = fmt.Sprintf("read body: %v", err)
		return d
	}
	if resp.StatusCode != http.StatusOK {
		// Keep error bodies short: they are prose for meta.json, not
		// documents.
		msg := strings.TrimSpace(string(body))
		if len(msg) > 512 {
			msg = msg[:512]
		}
		d.Err = msg
		return d
	}
	d.Body = body
	return d
}
