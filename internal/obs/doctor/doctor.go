// Package doctor collects and analyzes support bundles for zsdb serving
// fleets: the implementation behind `zsdb doctor`.
//
// A support bundle is one gzip'd tar archive holding every diagnostic
// document a set of targets exposes — /v1/stats, /v1/adapt/status,
// /v1/cluster, /v1/models, /v1/bundles, /v1/debug/traces, /v1/events —
// plus a meta.json manifest recording what was collected, from where,
// and what failed. Collection is best-effort by design: a crashed
// replica or a disabled subsystem yields a recorded error or 404, never
// an aborted bundle, because an incomplete view of a sick fleet is
// exactly what the analyzers are for.
//
// Analysis is a pure function of the bundle: AnalyzeAll parses the raw
// documents and runs a fixed catalog of pass/warn/fail checks (replica
// health, ring agreement, bundle generation lag, q-error drift, cache
// hit rates, batch-size sanity, event-ring continuity, latency SLO,
// clock skew). Because analyzers never touch the network, `zsdb doctor
// analyze` reproduces the verdict offline from a saved archive — the
// bundle a user attaches to a report is the bundle the maintainer
// debugs.
package doctor

import (
	"encoding/json"
	"time"
)

// Target is one collection endpoint: a zsdb serve or route base URL.
type Target struct {
	Name    string `json:"name"`
	BaseURL string `json:"base_url"`
}

// Endpoint names one diagnostic document and the path it is served at.
type Endpoint struct {
	Name string
	Path string
}

// Endpoints is the fixed catalog of documents a bundle captures per
// target. Optional subsystems (adaptation, clustering, bundles) answer
// 404 when disabled; the capture records that rather than omitting the
// document, so "disabled" and "unreachable" stay distinguishable.
var Endpoints = []Endpoint{
	{Name: "stats", Path: "/v1/stats"},
	{Name: "adapt", Path: "/v1/adapt/status"},
	{Name: "cluster", Path: "/v1/cluster"},
	{Name: "models", Path: "/v1/models"},
	{Name: "bundles", Path: "/v1/bundles"},
	{Name: "traces", Path: "/v1/debug/traces"},
	{Name: "events", Path: "/v1/events"},
}

// Doc is one endpoint's capture from one target.
type Doc struct {
	// Name is the document name from Endpoints.
	Name string `json:"name"`
	// Code is the HTTP status (0 when the transport itself failed).
	Code int `json:"code,omitempty"`
	// Err records a transport failure or a non-200 error body.
	Err string `json:"error,omitempty"`
	// Body is the raw JSON payload (nil unless Code is 200). It is
	// stored as its own archive member, not inside meta.json.
	Body json.RawMessage `json:"-"`
}

// OK reports whether the document was captured successfully.
func (d *Doc) OK() bool { return d != nil && d.Code == 200 && d.Err == "" }

// Capture is everything collected from one target.
type Capture struct {
	Target Target
	Docs   map[string]*Doc // keyed by Endpoint.Name
}

// Doc returns the named document (nil if never attempted).
func (c *Capture) Doc(name string) *Doc { return c.Docs[name] }

// Meta is the bundle manifest, stored as meta.json.
type Meta struct {
	Tool        string    `json:"tool"`
	CollectedAt time.Time `json:"collected_at"`
	Targets     []Target  `json:"targets"`
}

// Bundle is one whole support bundle: the manifest plus every capture.
type Bundle struct {
	Meta     Meta
	Captures []Capture
}

// Capture returns the named target's capture (nil if absent).
func (b *Bundle) Capture(name string) *Capture {
	for i := range b.Captures {
		if b.Captures[i].Target.Name == name {
			return &b.Captures[i]
		}
	}
	return nil
}
