package doctor_test

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"github.com/zeroshot-db/zeroshot/internal/cluster/sim"
	"github.com/zeroshot-db/zeroshot/internal/obs/doctor"
)

// simDatabases is the fixed key population the fault-schedule tests
// route over — wide enough that every replica owns something.
var simDatabases = []string{"imdb", "ssb", "tpch", "accounts", "web", "sensors"}

// bundleFromSim snapshots a live simulated cluster into a support
// bundle, exactly the documents `zsdb doctor` would collect over HTTP:
// the router's aggregated stats and its ring/health view. Optional
// subsystems are captured as disabled, matching a fleet that runs
// without -adapt or -bundle-dir.
func bundleFromSim(t *testing.T, ctx context.Context, s *sim.Sim) *doctor.Bundle {
	t.Helper()
	router := s.Router()
	cap := doctor.Capture{
		Target: doctor.Target{Name: "router", BaseURL: "http://router"},
		Docs:   map[string]*doctor.Doc{},
	}
	for _, ep := range doctor.Endpoints {
		cap.Docs[ep.Name] = &doctor.Doc{Name: ep.Name, Code: 404, Err: "disabled"}
	}

	st, err := router.Stats(ctx)
	if err != nil {
		t.Fatalf("router stats: %v", err)
	}
	stats, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	cap.Docs["stats"] = &doctor.Doc{Name: "stats", Code: 200, Body: stats}

	view := map[string]any{
		"replicas": router.Replicas(),
		"healthy":  router.Healthy(),
		"owners":   map[string]string{},
		"routes":   map[string][]string{},
	}
	owners, routes := view["owners"].(map[string]string), view["routes"].(map[string][]string)
	for _, db := range simDatabases {
		owners[db] = router.Owner(db)
		routes[db] = router.Route(db)
	}
	clusterBody, err := json.Marshal(view)
	if err != nil {
		t.Fatal(err)
	}
	cap.Docs["cluster"] = &doctor.Doc{Name: "cluster", Code: 200, Body: clusterBody}

	return &doctor.Bundle{
		Meta:     doctor.Meta{Tool: "zsdb doctor", Targets: []doctor.Target{cap.Target}},
		Captures: []doctor.Capture{cap},
	}
}

func worstFor(fs []doctor.Finding, check string) doctor.Status {
	worst := doctor.Skip
	for _, f := range fs {
		if f.Check != check {
			continue
		}
		switch {
		case f.Status == doctor.Fail:
			return doctor.Fail
		case f.Status == doctor.Warn && worst != doctor.Fail:
			worst = doctor.Warn
		case f.Status == doctor.Pass && worst == doctor.Skip:
			worst = doctor.Pass
		}
	}
	return worst
}

// TestDoctorCleanClusterAllPass drives a fault-free schedule and pins
// that the doctor finds nothing wrong: every applicable check passes,
// none warns or fails.
func TestDoctorCleanClusterAllPass(t *testing.T) {
	ctx := context.Background()
	s, err := sim.New(sim.Config{Replicas: 3, Databases: simDatabases, Requests: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Step(ctx, 60)
	b := bundleFromSim(t, ctx, s)
	res := s.Finish(ctx)
	if len(res.Violations) != 0 {
		t.Fatalf("sim itself violated invariants: %v", res.Violations)
	}

	fs := doctor.AnalyzeAll(b, doctor.Limits{})
	if v := doctor.Verdict(fs); v != doctor.Pass {
		t.Fatalf("clean cluster verdict = %s, want pass\n%s", v, doctor.RenderTable(fs))
	}
	for _, check := range []string{"collection", "replica-health", "ring-agreement"} {
		if got := worstFor(fs, check); got != doctor.Pass {
			t.Fatalf("check %s = %s on a clean cluster\n%s", check, got, doctor.RenderTable(fs))
		}
	}
}

// TestDoctorCrashedReplicaFails crashes one replica mid-run and pins
// that the doctor's replica-health check deterministically fails,
// naming the crashed replica.
func TestDoctorCrashedReplicaFails(t *testing.T) {
	ctx := context.Background()
	s, err := sim.New(sim.Config{
		Replicas:  3,
		Databases: simDatabases,
		Requests:  60,
		Seed:      2,
		Schedule:  []sim.Event{{Step: 20, Action: sim.Crash, Replica: "s1"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Step(ctx, 60)
	b := bundleFromSim(t, ctx, s)
	s.Finish(ctx)

	fs := doctor.AnalyzeAll(b, doctor.Limits{})
	if got := worstFor(fs, "replica-health"); got != doctor.Fail {
		t.Fatalf("replica-health = %s with s1 crashed, want fail\n%s", got, doctor.RenderTable(fs))
	}
	named := false
	for _, f := range fs {
		if f.Check == "replica-health" && f.Status == doctor.Fail {
			named = named || strings.Contains(f.Detail, "s1")
		}
	}
	if !named {
		t.Fatalf("failure does not name the crashed replica\n%s", doctor.RenderTable(fs))
	}
	if v := doctor.Verdict(fs); v != doctor.Fail {
		t.Fatalf("overall verdict = %s, want fail", v)
	}
}

// TestDoctorPartitionedReplicaFails partitions a replica — unreachable
// but not crashed — and pins the same deterministic health failure. A
// recovery heals the verdict back to pass.
func TestDoctorPartitionedReplicaFails(t *testing.T) {
	ctx := context.Background()
	s, err := sim.New(sim.Config{Replicas: 3, Databases: simDatabases, Requests: 90, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s.Step(ctx, 30)
	if err := s.Fault(ctx, "s2", sim.Partition); err != nil {
		t.Fatal(err)
	}
	s.Step(ctx, 30)

	fs := doctor.AnalyzeAll(bundleFromSim(t, ctx, s), doctor.Limits{})
	if got := worstFor(fs, "replica-health"); got != doctor.Fail {
		t.Fatalf("replica-health = %s with s2 partitioned, want fail\n%s", got, doctor.RenderTable(fs))
	}

	if err := s.Fault(ctx, "s2", sim.Recover); err != nil {
		t.Fatal(err)
	}
	s.Step(ctx, 30)
	fs = doctor.AnalyzeAll(bundleFromSim(t, ctx, s), doctor.Limits{})
	s.Finish(ctx)
	if got := worstFor(fs, "replica-health"); got != doctor.Pass {
		t.Fatalf("replica-health = %s after recovery, want pass\n%s", got, doctor.RenderTable(fs))
	}
}

// TestDoctorGenerationLaggedDistributor injects a bundles document
// where one replica trails the store head — the generation-skew
// condition the distributor tier is meant to close — and pins the
// warn-at-one / fail-at-two ladder.
func TestDoctorGenerationLaggedDistributor(t *testing.T) {
	ctx := context.Background()
	s, err := sim.New(sim.Config{Replicas: 3, Databases: simDatabases, Requests: 30, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	s.Step(ctx, 30)
	b := bundleFromSim(t, ctx, s)
	s.Finish(ctx)

	inject := func(lagged int64) {
		doc := map[string]any{
			"estimator": "zeroshot",
			"revisions": []map[string]any{{"revision": 3}, {"revision": 4}, {"revision": 5}},
			"replicas": map[string]any{
				"s0": map[string]any{"revision": 5},
				"s1": map[string]any{"revision": 5},
				"s2": map[string]any{"revision": lagged},
			},
		}
		body, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		b.Captures[0].Docs["bundles"] = &doctor.Doc{Name: "bundles", Code: 200, Body: body}
	}

	inject(5)
	if got := worstFor(doctor.AnalyzeAll(b, doctor.Limits{}), "bundle-generations"); got != doctor.Pass {
		t.Fatalf("in-sync fleet = %s, want pass", got)
	}
	inject(4)
	if got := worstFor(doctor.AnalyzeAll(b, doctor.Limits{}), "bundle-generations"); got != doctor.Warn {
		t.Fatalf("one-behind replica = %s, want warn", got)
	}
	inject(2)
	fs := doctor.AnalyzeAll(b, doctor.Limits{})
	if got := worstFor(fs, "bundle-generations"); got != doctor.Fail {
		t.Fatalf("three-behind replica = %s, want fail", got)
	}
	if v := doctor.Verdict(fs); v != doctor.Fail {
		t.Fatalf("overall verdict = %s, want fail", v)
	}
}
