// Package obs is the observability layer: request tracing for the
// serving pipeline and a structured event log for the control plane.
//
// It has two halves, both bounded and both safe for concurrent use:
//
//   - Tracer — a sampling-gated span recorder. The serving pipeline,
//     the micro-batch scheduler, and the cluster router thread a *Trace
//     through one request's life and record named spans into it; the
//     tracer keeps recent sampled traces and an always-on slow-query
//     ring, served at GET /v1/debug/traces and rendered by `zsdb
//     trace`. Every method is nil-safe on both the tracer and the
//     trace, so instrumented code calls unconditionally — with no
//     tracer configured (or sampling off) the hot path performs zero
//     additional allocations, pinned by a steady-state allocs test in
//     internal/serving.
//
//   - Log — a bounded ring of structured control-plane events (model
//     hot-swap accept/reject, drift triggers, bundle publish/activate/
//     rollback, replica health transitions, failover rescues) with
//     monotonic sequence numbers, served at GET /v1/events?since=N.
//     This is the decision-log analogue for the adaptation loop: every
//     consequential control-plane decision leaves one ordered record.
//
// See DESIGN.md's "Observability" section for the sampling model, the
// event-ring semantics, and the support-bundle format consumed by the
// obs/doctor analyzers.
package obs

import (
	"sync"
	"time"
)

// Control-plane event types. The prefix names the subsystem that
// recorded the event; Fields carry the specifics.
const (
	// Adaptation loop (internal/adapt).
	EventDriftTriggered   = "adapt.drift_triggered"
	EventSwapAccepted     = "adapt.swap_accepted"
	EventSwapRejected     = "adapt.swap_rejected"
	EventFineTuneStarted  = "adapt.finetune_started"
	EventFineTuneFinished = "adapt.finetune_finished"

	// Model distribution (internal/bundle).
	EventBundlePublished = "bundle.published"
	EventBundleActivated = "bundle.activated"
	EventBundleRollback  = "bundle.rollback"

	// Cluster router (internal/cluster).
	EventReplicaDown    = "cluster.replica_down"
	EventReplicaUp      = "cluster.replica_up"
	EventFailoverRescue = "cluster.failover_rescue"
)

// Event is one control-plane decision record. Seq is assigned by the
// Log at record time and increases by exactly one per event, so a
// consumer holding events N and N+2 knows it missed one — the
// event-gap analyzer in obs/doctor checks exactly this.
type Event struct {
	Seq    int64             `json:"seq"`
	Time   time.Time         `json:"time"`
	Type   string            `json:"type"`
	Origin string            `json:"origin,omitempty"`
	Fields map[string]string `json:"fields,omitempty"`
}

// DefaultLogSize bounds a Log when the caller passes a non-positive
// capacity.
const DefaultLogSize = 512

// Log is a bounded ring of control-plane events with monotonic
// sequence numbers. The zero value is NOT ready to use — construct
// with NewLog — but a nil *Log is: every method no-ops, so subsystems
// accept an optional Log and record unconditionally.
type Log struct {
	mu   sync.Mutex
	buf  []Event
	next int // ring write position
	n    int // valid entries
	seq  int64
}

// NewLog returns an empty event log holding at most capacity recent
// events (DefaultLogSize if capacity <= 0).
func NewLog(capacity int) *Log {
	if capacity <= 0 {
		capacity = DefaultLogSize
	}
	return &Log{buf: make([]Event, capacity)}
}

// Record appends one event, assigning it the next sequence number.
// The fields map is retained as-is; callers must not mutate it after
// recording. Safe to call on a nil Log (no-op).
func (l *Log) Record(typ, origin string, fields map[string]string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.seq++
	l.buf[l.next] = Event{Seq: l.seq, Time: time.Now(), Type: typ, Origin: origin, Fields: fields}
	l.next = (l.next + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
	l.mu.Unlock()
}

// Head returns the sequence number of the most recent event (0 when
// empty). Pollers pass it back as Since's after argument.
func (l *Log) Head() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Since returns up to max events with Seq > after, oldest first (all
// of them if max <= 0). Events older than the ring's capacity are
// gone; the caller observes that as the first returned Seq jumping
// past after+1.
func (l *Log) Since(after int64, max int) []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.n == 0 || l.seq <= after {
		return nil
	}
	// Oldest retained event sits n slots behind the write position.
	start := (l.next - l.n + len(l.buf)) % len(l.buf)
	out := make([]Event, 0, l.n)
	for i := 0; i < l.n; i++ {
		ev := l.buf[(start+i)%len(l.buf)]
		if ev.Seq <= after {
			continue
		}
		out = append(out, ev)
	}
	if max > 0 && len(out) > max {
		// Keep the oldest max so pollers can page forward by resuming
		// from the last returned Seq.
		out = out[:max]
	}
	return out
}
