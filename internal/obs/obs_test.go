package obs

import (
	"errors"
	"testing"
	"time"
)

func TestLogSequenceAndSince(t *testing.T) {
	l := NewLog(4)
	for i := 0; i < 3; i++ {
		l.Record(EventSwapAccepted, "r0", map[string]string{"model": "zeroshot"})
	}
	if got := l.Head(); got != 3 {
		t.Fatalf("Head = %d, want 3", got)
	}
	evs := l.Since(0, 0)
	if len(evs) != 3 {
		t.Fatalf("Since(0) returned %d events, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != int64(i+1) {
			t.Fatalf("event %d has Seq %d, want %d", i, ev.Seq, i+1)
		}
		if ev.Type != EventSwapAccepted || ev.Origin != "r0" {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
	if got := l.Since(2, 0); len(got) != 1 || got[0].Seq != 3 {
		t.Fatalf("Since(2) = %+v, want just seq 3", got)
	}
	if got := l.Since(3, 0); got != nil {
		t.Fatalf("Since(head) = %+v, want nil", got)
	}
}

func TestLogRingEvictsOldest(t *testing.T) {
	l := NewLog(4)
	for i := 0; i < 10; i++ {
		l.Record(EventReplicaDown, "router", nil)
	}
	evs := l.Since(0, 0)
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	// The oldest retained event's Seq jumps past 1 — that is how a
	// consumer observes truncation.
	if evs[0].Seq != 7 || evs[3].Seq != 10 {
		t.Fatalf("retained seqs %d..%d, want 7..10", evs[0].Seq, evs[3].Seq)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("gap inside ring: %d -> %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestLogSincePagesForward(t *testing.T) {
	l := NewLog(8)
	for i := 0; i < 6; i++ {
		l.Record(EventBundlePublished, "pub", nil)
	}
	page := l.Since(0, 2)
	if len(page) != 2 || page[0].Seq != 1 || page[1].Seq != 2 {
		t.Fatalf("first page = %+v, want seqs 1,2", page)
	}
	page = l.Since(page[len(page)-1].Seq, 2)
	if len(page) != 2 || page[0].Seq != 3 {
		t.Fatalf("second page = %+v, want seqs 3,4", page)
	}
}

func TestLogNilSafe(t *testing.T) {
	var l *Log
	l.Record(EventSwapRejected, "x", nil) // must not panic
	if l.Head() != 0 || l.Since(0, 0) != nil {
		t.Fatal("nil Log should be empty")
	}
}

func TestTracerSamplingCadence(t *testing.T) {
	tr := NewTracer(TraceConfig{SampleEvery: 3, RingSize: 16})
	sampled := 0
	for i := 0; i < 9; i++ {
		sp, begin := tr.Begin()
		if sp != nil {
			sampled++
			sp.Span("parse", begin)
		}
		tr.Finish(sp, "predict", "imdb", "zeroshot", "SELECT 1", begin, nil)
	}
	if sampled != 3 {
		t.Fatalf("sampled %d of 9 at 1-in-3, want 3", sampled)
	}
	snap := tr.Snapshot(0)
	if snap.Sampled != 3 || len(snap.Recent) != 3 {
		t.Fatalf("snapshot sampled=%d recent=%d, want 3/3", snap.Sampled, len(snap.Recent))
	}
	got := snap.Recent[0]
	if !got.Sampled || got.Op != "predict" || got.DB != "imdb" || len(got.Spans) != 1 {
		t.Fatalf("sealed trace = %+v", got)
	}
	// Newest first: IDs descend.
	if len(snap.Recent) > 1 && snap.Recent[0].ID < snap.Recent[1].ID {
		t.Fatalf("recent not newest-first: %d then %d", snap.Recent[0].ID, snap.Recent[1].ID)
	}
}

func TestTracerSlowLogWithoutSampling(t *testing.T) {
	tr := NewTracer(TraceConfig{SlowThreshold: time.Microsecond, RingSize: 8})
	sp, begin := tr.Begin()
	if sp != nil {
		t.Fatal("sampling is off; Begin should return nil")
	}
	time.Sleep(2 * time.Millisecond)
	tr.Finish(sp, "predict", "imdb", "", "SELECT 1", begin, errors.New("boom"))
	snap := tr.Snapshot(0)
	if len(snap.Recent) != 0 {
		t.Fatalf("unsampled request leaked into recent ring: %+v", snap.Recent)
	}
	if snap.Slow != 1 || len(snap.SlowQueries) != 1 {
		t.Fatalf("slow ring has %d entries (counter %d), want 1", len(snap.SlowQueries), snap.Slow)
	}
	got := snap.SlowQueries[0]
	if !got.Slow || got.Sampled || got.Err != "boom" || len(got.Spans) != 0 {
		t.Fatalf("slow envelope = %+v", got)
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	sp, begin := tr.Begin()
	if sp != nil {
		t.Fatal("nil tracer sampled a trace")
	}
	sp.Span("parse", begin)
	sp.SetBatch(4, time.Millisecond)
	sp.SetPlanCached()
	tr.Finish(sp, "predict", "", "", "", begin, nil)
	if snap := tr.Snapshot(0); snap.Recent != nil || snap.SlowQueries != nil {
		t.Fatalf("nil tracer snapshot = %+v", snap)
	}
}

func TestTracerOffPathAllocs(t *testing.T) {
	tr := NewTracer(TraceConfig{}) // sampling off, no slow log
	allocs := testing.AllocsPerRun(200, func() {
		sp, begin := tr.Begin()
		tr.Finish(sp, "predict", "imdb", "zeroshot", "SELECT 1", begin, nil)
	})
	if allocs != 0 {
		t.Fatalf("tracing off allocated %.1f per request, want 0", allocs)
	}
}

func TestTracerBatchAttribution(t *testing.T) {
	tr := NewTracer(TraceConfig{SampleEvery: 1, RingSize: 4})
	sp, begin := tr.Begin()
	if sp == nil {
		t.Fatal("1-in-1 sampling returned nil")
	}
	sp.SetBatch(7, 250*time.Microsecond)
	sp.SetPlanCached()
	tr.Finish(sp, "predict", "imdb", "zeroshot", "SELECT 1", begin, nil)
	got := tr.Snapshot(1).Recent[0]
	if got.BatchSize != 7 || got.CoalesceUs != 250 || !got.PlanCached {
		t.Fatalf("attribution = %+v", got)
	}
}
