package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Span is one named, timed step inside a trace. Offsets are relative
// to the trace's begin time so spans order and nest without clock
// arithmetic.
type Span struct {
	Name    string `json:"name"`
	StartUs int64  `json:"start_us"`
	DurUs   int64  `json:"dur_us"`
}

// Trace is one request's recorded life. The instrumented goroutine
// appends spans while the request runs; the scheduler's flush
// goroutine sets the batch attribution just before answering (the
// result-channel send orders that write before the requester's reads);
// Finish seals the trace and publishes it into the tracer's rings,
// after which it is immutable.
type Trace struct {
	ID   int64     `json:"id"`
	Time time.Time `json:"time"`
	// Op is the traced operation: "predict" (serving pipeline) or
	// "route" (cluster router attempt chain).
	Op    string `json:"op"`
	DB    string `json:"db,omitempty"`
	Model string `json:"model,omitempty"`
	Query string `json:"query,omitempty"`
	// TotalUs is the end-to-end duration; Sampled and Slow report which
	// ring(s) the trace landed in.
	TotalUs int64  `json:"total_us"`
	Err     string `json:"error,omitempty"`
	Sampled bool   `json:"sampled"`
	Slow    bool   `json:"slow,omitempty"`
	// PlanCached reports that the prepare stages were short-circuited
	// by a plan-cache hit (so parse/optimize/featurize spans are
	// legitimately absent).
	PlanCached bool `json:"plan_cached,omitempty"`
	// BatchSize and CoalesceUs are the scheduler's attribution: how
	// large the micro-batch this request flushed in was, and how long
	// the request waited in the queue before its batch drained.
	BatchSize  int    `json:"batch_size,omitempty"`
	CoalesceUs int64  `json:"coalesce_us,omitempty"`
	Spans      []Span `json:"spans,omitempty"`

	start time.Time
}

// Span records one completed step that started at start and ends now.
// Nil-safe: unsampled requests carry a nil trace and pay nothing.
func (tr *Trace) Span(name string, start time.Time) {
	if tr == nil {
		return
	}
	tr.Spans = append(tr.Spans, Span{
		Name:    name,
		StartUs: start.Sub(tr.start).Microseconds(),
		DurUs:   time.Since(start).Microseconds(),
	})
}

// SetBatch records the scheduler's flush attribution. Nil-safe.
func (tr *Trace) SetBatch(size int, wait time.Duration) {
	if tr == nil {
		return
	}
	tr.BatchSize = size
	tr.CoalesceUs = wait.Microseconds()
}

// SetPlanCached marks the trace as having skipped the prepare stages.
// Nil-safe.
func (tr *Trace) SetPlanCached() {
	if tr == nil {
		return
	}
	tr.PlanCached = true
}

// TraceConfig sizes a Tracer. The zero value samples nothing and keeps
// no slow log — a Tracer built from it is inert but safe.
type TraceConfig struct {
	// SampleEvery records every Nth request as a full span trace
	// (<= 0 disables sampling).
	SampleEvery int
	// SlowThreshold always records requests at least this slow into
	// the slow-query ring, sampled or not (<= 0 disables the slow log).
	// Unsampled slow requests carry no spans — only the envelope.
	SlowThreshold time.Duration
	// RingSize bounds both the recent-traces and slow-query rings
	// (DefaultTraceRingSize if <= 0).
	RingSize int
}

// DefaultTraceRingSize bounds the trace rings when TraceConfig leaves
// RingSize zero.
const DefaultTraceRingSize = 64

// Tracer is a sampling-gated span recorder with bounded recent-trace
// and slow-query rings. All methods are nil-safe so instrumented code
// never branches on whether tracing is configured; with sampling off,
// Begin returns a nil trace and the request path allocates nothing.
type Tracer struct {
	sampleEvery int64
	slowNs      int64

	reqs    atomic.Int64 // sampling counter (only advanced while sampling is on)
	ids     atomic.Int64
	sampled atomic.Int64
	slowN   atomic.Int64

	mu     sync.Mutex
	recent ring
	slow   ring
}

// NewTracer builds a tracer from cfg.
func NewTracer(cfg TraceConfig) *Tracer {
	size := cfg.RingSize
	if size <= 0 {
		size = DefaultTraceRingSize
	}
	t := &Tracer{
		sampleEvery: int64(cfg.SampleEvery),
		slowNs:      cfg.SlowThreshold.Nanoseconds(),
	}
	t.recent.buf = make([]*Trace, size)
	t.slow.buf = make([]*Trace, size)
	return t
}

// Begin starts timing one request. The returned trace is non-nil only
// when this request is sampled; the returned begin time feeds Finish
// either way (the always-on slow log needs the duration even for
// unsampled requests). Nil-safe: a nil tracer returns (nil, zero).
func (t *Tracer) Begin() (*Trace, time.Time) {
	if t == nil {
		return nil, time.Time{}
	}
	now := time.Now()
	if t.sampleEvery > 0 && t.reqs.Add(1)%t.sampleEvery == 0 {
		return &Trace{start: now, Spans: make([]Span, 0, 8)}, now
	}
	return nil, now
}

// Finish seals one request's trace and publishes it. With a nil trace
// and a duration under the slow threshold this is a no-op (and
// allocation-free); a nil-traced request over the threshold gets a
// span-less envelope in the slow ring. The resolved names may differ
// from the request's (empty names default); callers pass what they
// know.
func (t *Tracer) Finish(tr *Trace, op, db, model, query string, begin time.Time, err error) {
	if t == nil {
		return
	}
	dur := time.Since(begin)
	slow := t.slowNs > 0 && dur.Nanoseconds() >= t.slowNs
	if tr == nil {
		if !slow {
			return
		}
		tr = &Trace{start: begin}
	} else {
		tr.Sampled = true
	}
	tr.ID = t.ids.Add(1)
	tr.Time = begin
	tr.Op = op
	tr.DB = db
	tr.Model = model
	tr.Query = query
	tr.TotalUs = dur.Microseconds()
	tr.Slow = slow
	if err != nil {
		tr.Err = err.Error()
	}
	t.mu.Lock()
	if tr.Sampled {
		t.sampled.Add(1)
		t.recent.push(tr)
	}
	if slow {
		t.slowN.Add(1)
		t.slow.push(tr)
	}
	t.mu.Unlock()
}

// ring is a bounded newest-wins ring of sealed traces; the tracer's
// mutex guards both rings.
type ring struct {
	buf  []*Trace
	next int
	n    int
}

func (r *ring) push(tr *Trace) {
	r.buf[r.next] = tr
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// newestFirst copies out up to max traces, most recent first.
func (r *ring) newestFirst(max int) []*Trace {
	n := r.n
	if max > 0 && n > max {
		n = max
	}
	out := make([]*Trace, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.buf[(r.next-1-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// TraceSnapshot is the /v1/debug/traces payload: the tracer's
// configuration and counters plus the current contents of both rings,
// newest first.
type TraceSnapshot struct {
	SampleEvery     int      `json:"sample_every"`
	SlowThresholdMs float64  `json:"slow_threshold_ms"`
	Sampled         int64    `json:"sampled"`
	Slow            int64    `json:"slow"`
	Recent          []*Trace `json:"recent"`
	SlowQueries     []*Trace `json:"slow_queries"`
}

// Snapshot returns up to max traces from each ring (all of them if
// max <= 0), newest first. Nil-safe: a nil tracer yields an empty
// snapshot.
func (t *Tracer) Snapshot(max int) TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	s := TraceSnapshot{
		SampleEvery:     int(t.sampleEvery),
		SlowThresholdMs: float64(t.slowNs) / 1e6,
		Sampled:         t.sampled.Load(),
		Slow:            t.slowN.Load(),
	}
	t.mu.Lock()
	s.Recent = t.recent.newestFirst(max)
	s.SlowQueries = t.slow.newestFirst(max)
	t.mu.Unlock()
	return s
}
