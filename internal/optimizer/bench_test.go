package optimizer

import (
	"testing"

	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/query"
	"github.com/zeroshot-db/zeroshot/internal/stats"
)

// BenchmarkPlanFiveWayJoin measures DP planning latency for the largest
// queries of the paper's workload envelope.
func BenchmarkPlanFiveWayJoin(b *testing.B) {
	db, err := datagen.IMDBLike(0.05)
	if err != nil {
		b.Fatal(err)
	}
	st := stats.Collect(db, stats.DefaultBuckets, stats.DefaultMCVs)
	opt := New(db.Schema, st, nil, DefaultCostParams())
	q := &query.Query{
		Tables: []string{"title", "movie_companies", "cast_info", "movie_info", "movie_keyword"},
		Joins: []query.Join{
			{Left: query.ColumnRef{Table: "movie_companies", Column: "movie_id"}, Right: query.ColumnRef{Table: "title", Column: "id"}},
			{Left: query.ColumnRef{Table: "cast_info", Column: "movie_id"}, Right: query.ColumnRef{Table: "title", Column: "id"}},
			{Left: query.ColumnRef{Table: "movie_info", Column: "movie_id"}, Right: query.ColumnRef{Table: "title", Column: "id"}},
			{Left: query.ColumnRef{Table: "movie_keyword", Column: "movie_id"}, Right: query.ColumnRef{Table: "title", Column: "id"}},
		},
		Filters: []query.Filter{
			{Col: query.ColumnRef{Table: "title", Column: "production_year"}, Op: query.OpGt, Value: 100},
		},
		Aggregates: []query.Aggregate{{Func: query.AggCount}},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.Plan(q); err != nil {
			b.Fatal(err)
		}
	}
}
