// Package optimizer implements a cost-based query optimizer: access-path
// selection, dynamic-programming join enumeration over connected subgraphs,
// join-algorithm choice and aggregate placement.
//
// It substitutes for the PostgreSQL planner in the paper's prototype. Its
// three outputs are exactly what the paper's pipeline consumes: physical
// plans, per-operator estimated cardinalities, and a total optimizer cost
// (the input of the Scaled Optimizer Cost baseline). Hypothetical indexes
// make the planner "what-if"-capable for the index-tuning experiment.
package optimizer

import (
	"math"

	"github.com/zeroshot-db/zeroshot/internal/plan"
)

// CostParams are the abstract cost-unit constants of the analytical cost
// model. Defaults mirror PostgreSQL's planner constants.
type CostParams struct {
	SeqPage    float64 // cost of a sequentially fetched page
	RandomPage float64 // cost of a randomly fetched page
	CPUTuple   float64 // cost of processing one tuple
	CPUIndex   float64 // cost of processing one index entry
	CPUOper    float64 // cost of one operator/predicate evaluation
	// HeapFetchFrac discounts per-match random heap fetches of index scans
	// for buffer caching.
	HeapFetchFrac float64
}

// DefaultCostParams returns PostgreSQL's default planner constants.
func DefaultCostParams() CostParams {
	return CostParams{
		SeqPage:       1.0,
		RandomPage:    4.0,
		CPUTuple:      0.01,
		CPUIndex:      0.005,
		CPUOper:       0.0025,
		HeapFetchFrac: 0.2,
	}
}

// btreeHeight estimates the descent depth of a B-tree with n entries
// (fanout 256), matching storage.Index.EstimateHeight.
func btreeHeight(n float64) float64 {
	if n <= 1 {
		return 1
	}
	h := math.Ceil(math.Log(n) / math.Log(256))
	if h < 1 {
		h = 1
	}
	return h
}

// costSeqScan returns the cost of scanning `pages` pages of `rows` tuples
// and evaluating `nFilters` predicates per tuple.
func (p CostParams) costSeqScan(pages, rows float64, nFilters int) float64 {
	return pages*p.SeqPage + rows*p.CPUTuple + rows*float64(nFilters)*p.CPUOper
}

// costIndexScan returns the cost of an index range scan matching
// `matched` of `total` entries, then applying `remFilters` residual
// predicates per fetched row.
func (p CostParams) costIndexScan(total, matched float64, remFilters int) float64 {
	descent := btreeHeight(total) * p.RandomPage
	entries := matched * p.CPUIndex
	heap := matched * p.RandomPage * p.HeapFetchFrac
	resid := matched * float64(remFilters) * p.CPUOper
	return descent + entries + heap + resid + matched*p.CPUTuple
}

// costIndexLookup returns the per-execution cost of a parameterized index
// lookup (inner side of a nested-loop join) expecting `avgMatches` matches
// from an index of `total` entries.
func (p CostParams) costIndexLookup(total, avgMatches float64, remFilters int) float64 {
	descent := btreeHeight(total) * p.CPUOper * 4
	perMatch := avgMatches * (p.CPUIndex + p.RandomPage*p.HeapFetchFrac + float64(remFilters)*p.CPUOper + p.CPUTuple)
	return descent + perMatch
}

// costHashJoin returns the cost of building on `buildRows` and probing with
// `probeRows`, emitting `outRows`.
func (p CostParams) costHashJoin(buildRows, probeRows, outRows float64) float64 {
	build := buildRows * (p.CPUOper*1.5 + p.CPUTuple)
	probe := probeRows * p.CPUOper
	emit := outRows * p.CPUTuple
	return build + probe + emit
}

// costAggregate returns the cost of aggregating `inRows` into `groups`
// groups with `nAggs` aggregate expressions.
func (p CostParams) costAggregate(inRows, groups float64, nAggs int) float64 {
	if nAggs < 1 {
		nAggs = 1
	}
	return inRows*float64(nAggs)*p.CPUOper + inRows*p.CPUOper + groups*p.CPUTuple
}

// TotalCost returns the plan's root cumulative cost estimate; exposed for
// the Scaled Optimizer Cost baseline.
func TotalCost(root *plan.Node) float64 { return root.EstCost }
