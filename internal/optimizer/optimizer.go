package optimizer

import (
	"fmt"
	"math"
	"sort"

	"github.com/zeroshot-db/zeroshot/internal/plan"
	"github.com/zeroshot-db/zeroshot/internal/query"
	"github.com/zeroshot-db/zeroshot/internal/schema"
	"github.com/zeroshot-db/zeroshot/internal/stats"
)

// IndexSet names the secondary indexes visible to the planner, keyed
// "table.column". Hypothetical ("what-if") indexes are expressed by simply
// adding keys that do not exist in storage; the engine materializes them on
// demand when such a plan is executed.
type IndexSet map[string]bool

// Key builds the canonical IndexSet key.
func Key(table, column string) string { return table + "." + column }

// Has reports whether table.column is indexed.
func (s IndexSet) Has(table, column string) bool { return s[Key(table, column)] }

// Optimizer plans queries against one database's schema and statistics.
type Optimizer struct {
	sch     *schema.Schema
	stats   *stats.DBStats
	indexes IndexSet
	params  CostParams
}

// New creates an optimizer. indexes may be nil (no secondary indexes).
func New(sch *schema.Schema, st *stats.DBStats, indexes IndexSet, params CostParams) *Optimizer {
	if indexes == nil {
		indexes = IndexSet{}
	}
	return &Optimizer{sch: sch, stats: st, indexes: indexes, params: params}
}

// Plan produces the cheapest physical plan for the query under the
// analytical cost model. The returned plan carries estimated
// cardinalities, widths and cumulative costs on every node.
func (o *Optimizer) Plan(q *query.Query) (*plan.Node, error) {
	return o.plan(q, nil)
}

// PlanWith plans with an external cost function ranking candidate join
// subplans — the paper's Section 4.2 "naïve approach": use the zero-shot
// cost model to evaluate candidate plans and steer the optimizer. Access
// paths are still chosen analytically; join order and join algorithm are
// ranked by costFn.
func (o *Optimizer) PlanWith(q *query.Query, costFn func(*plan.Node) float64) (*plan.Node, error) {
	if costFn == nil {
		return nil, fmt.Errorf("optimizer: PlanWith requires a cost function")
	}
	return o.plan(q, costFn)
}

func (o *Optimizer) plan(q *query.Query, costFn func(*plan.Node) float64) (*plan.Node, error) {
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("optimizer: %w", err)
	}
	if len(q.Tables) > 20 {
		return nil, fmt.Errorf("optimizer: %d tables exceed DP limit", len(q.Tables))
	}
	tables := append([]string(nil), q.Tables...)
	sort.Strings(tables) // canonical order for the bitmask DP

	tableIdx := map[string]int{}
	for i, t := range tables {
		tableIdx[t] = i
	}

	key := func(n *plan.Node) float64 {
		if costFn == nil {
			return n.EstCost
		}
		return costFn(n)
	}

	// Best plan (and its ranking key) per connected table subset.
	type entry struct {
		node *plan.Node
		key  float64
	}
	best := map[uint32]entry{}
	for i, t := range tables {
		ap := o.bestAccessPath(t, q.FiltersOn(t))
		best[1<<uint(i)] = entry{node: ap, key: key(ap)}
	}

	n := len(tables)
	full := uint32(1)<<uint(n) - 1
	// DP over subset sizes. For each subset, try every split into two
	// connected halves joined by at least one join condition.
	for size := 2; size <= n; size++ {
		for s := uint32(1); s <= full; s++ {
			if popcount(s) != size {
				continue
			}
			// Enumerate proper non-empty subsets l of s (r = s \ l).
			for l := (s - 1) & s; l > 0; l = (l - 1) & s {
				r := s &^ l
				if r == 0 || l > r { // each unordered split once; orders tried below
					continue
				}
				pl, okL := best[l]
				pr, okR := best[r]
				if !okL || !okR {
					continue
				}
				joins := connectingJoins(q, tableIdx, l, r)
				if len(joins) == 0 {
					continue
				}
				for _, cand := range o.joinCandidates(q, pl.node, pr.node, joins[0], joins) {
					k := key(cand)
					if cur, ok := best[s]; !ok || k < cur.key {
						best[s] = entry{node: cand, key: k}
					}
				}
			}
		}
	}

	rootEntry, ok := best[full]
	if !ok {
		return nil, fmt.Errorf("optimizer: no plan connects all tables of %q", q.SQL())
	}
	root := o.addAggregate(rootEntry.node, q)
	if err := root.Validate(); err != nil {
		return nil, fmt.Errorf("optimizer: produced invalid plan: %w", err)
	}
	return root, nil
}

// bestAccessPath picks the cheaper of a sequential scan and any applicable
// index scan for a base table with its pushed-down filters.
func (o *Optimizer) bestAccessPath(table string, filters []query.Filter) *plan.Node {
	tm := o.sch.Table(table)
	rows := float64(tm.RowCount)
	pages := float64(tm.PageCount)
	width := float64(tm.RowWidth())
	sel := o.stats.ScanSelectivity(filters)
	outRows := math.Max(rows*sel, 1)

	seq := plan.NewNode(plan.SeqScan)
	seq.Table = table
	seq.Filters = filters
	seq.EstRows = outRows
	seq.Width = width
	seq.EstCost = o.params.costSeqScan(pages, rows, len(filters))

	bestPlan := seq
	// Try an index scan per filter whose column is indexed. The indexed
	// predicate drives the range; remaining filters are residual.
	for i, f := range filters {
		if !o.indexes.Has(table, f.Col.Column) {
			continue
		}
		idxSel := o.stats.FilterSelectivity(f)
		matched := math.Max(rows*idxSel, 1)
		ix := plan.NewNode(plan.IndexScan)
		ix.Table = table
		ix.IndexColumn = f.Col.Column
		// Order filters so the index-driving predicate comes first; the
		// engine relies on this convention.
		ix.Filters = append([]query.Filter{f}, removeFilter(filters, i)...)
		ix.EstRows = outRows
		ix.Width = width
		ix.EstCost = o.params.costIndexScan(rows, matched, len(filters)-1)
		if ix.EstCost < bestPlan.EstCost {
			bestPlan = ix
		}
	}
	return bestPlan
}

func removeFilter(fs []query.Filter, i int) []query.Filter {
	out := make([]query.Filter, 0, len(fs)-1)
	out = append(out, fs[:i]...)
	out = append(out, fs[i+1:]...)
	return out
}

// connectingJoins returns the query joins with one side in subset l and the
// other in subset r.
func connectingJoins(q *query.Query, tableIdx map[string]int, l, r uint32) []query.Join {
	var out []query.Join
	for _, j := range q.Joins {
		li, ri := uint32(1)<<uint(tableIdx[j.Left.Table]), uint32(1)<<uint(tableIdx[j.Right.Table])
		if (li&l != 0 && ri&r != 0) || (li&r != 0 && ri&l != 0) {
			out = append(out, j)
		}
	}
	return out
}

// joinCandidates builds the physical join alternatives for combining two
// subplans: hash joins in both orders, and index-nested-loop joins when one
// side is a base-table scan with an index on its join column.
func (o *Optimizer) joinCandidates(q *query.Query, a, b *plan.Node, j query.Join, all []query.Join) []*plan.Node {
	outRows := o.joinOutputRows(a, b, all)
	width := a.Width + b.Width

	var cands []*plan.Node
	for _, ord := range [][2]*plan.Node{{a, b}, {b, a}} {
		probe, build := ord[0], ord[1]
		hj := plan.NewNode(plan.HashJoin)
		cond := j
		hj.Join = &cond
		hj.Children = []*plan.Node{probe, build}
		hj.EstRows = outRows
		hj.Width = width
		hj.EstCost = probe.EstCost + build.EstCost +
			o.params.costHashJoin(build.EstRows, probe.EstRows, outRows)
		cands = append(cands, hj)

		// Index nested-loop: inner must be a bare scan of one table with an
		// index on its join-side column.
		inner := build
		var innerCol string
		switch {
		case inner.Op != plan.SeqScan && inner.Op != plan.IndexScan:
			continue
		case j.Left.Table == inner.Table:
			innerCol = j.Left.Column
		case j.Right.Table == inner.Table:
			innerCol = j.Right.Column
		default:
			continue
		}
		if !o.indexes.Has(inner.Table, innerCol) {
			continue
		}
		innerRows := float64(o.sch.Table(inner.Table).RowCount)
		lookup := plan.NewNode(plan.IndexScan)
		lookup.Table = inner.Table
		lookup.IndexColumn = innerCol
		lookup.LookupJoin = true
		lookup.Filters = inner.Filters
		avgMatches := outRows / math.Max(probe.EstRows, 1)
		lookup.EstRows = math.Max(avgMatches, 1)
		lookup.Width = inner.Width
		lookup.EstCost = o.params.costIndexLookup(innerRows, avgMatches, len(inner.Filters))

		nl := plan.NewNode(plan.NestedLoopJoin)
		cond2 := j
		nl.Join = &cond2
		nl.Children = []*plan.Node{probe, lookup}
		nl.EstRows = outRows
		nl.Width = width
		nl.EstCost = probe.EstCost + probe.EstRows*lookup.EstCost + outRows*o.params.CPUTuple
		cands = append(cands, nl)
	}
	return cands
}

// joinOutputRows estimates the join result size: product of input
// cardinalities times the selectivity of every connecting join condition.
func (o *Optimizer) joinOutputRows(a, b *plan.Node, joins []query.Join) float64 {
	rows := a.EstRows * b.EstRows
	for _, j := range joins {
		rows *= o.stats.JoinSelectivity(j)
	}
	return math.Max(rows, 1)
}

// addAggregate wraps the join tree in a HashAggregate if the query
// aggregates.
func (o *Optimizer) addAggregate(child *plan.Node, q *query.Query) *plan.Node {
	if len(q.Aggregates) == 0 && len(q.GroupBy) == 0 {
		return child
	}
	agg := plan.NewNode(plan.HashAggregate)
	agg.Aggregates = q.Aggregates
	agg.GroupBy = q.GroupBy
	agg.Children = []*plan.Node{child}
	groups := o.stats.EstimateGroupCount(q.GroupBy, child.EstRows)
	agg.EstRows = groups
	agg.Width = float64(16 * (len(q.Aggregates) + len(q.GroupBy)))
	agg.EstCost = child.EstCost + o.params.costAggregate(child.EstRows, groups, len(q.Aggregates))
	return agg
}

func popcount(x uint32) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}
