package optimizer

import (
	"math"
	"testing"

	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/plan"
	"github.com/zeroshot-db/zeroshot/internal/query"
	"github.com/zeroshot-db/zeroshot/internal/stats"
	"github.com/zeroshot-db/zeroshot/internal/storage"
)

func imdbOptimizer(t *testing.T, indexes IndexSet) (*Optimizer, *storage.Database) {
	t.Helper()
	db, err := datagen.IMDBLike(0.05)
	if err != nil {
		t.Fatal(err)
	}
	st := stats.Collect(db, stats.DefaultBuckets, stats.DefaultMCVs)
	return New(db.Schema, st, indexes, DefaultCostParams()), db
}

func twoWayJoin() *query.Query {
	return &query.Query{
		Tables: []string{"title", "movie_companies"},
		Joins: []query.Join{{
			Left:  query.ColumnRef{Table: "movie_companies", Column: "movie_id"},
			Right: query.ColumnRef{Table: "title", Column: "id"},
		}},
		Filters: []query.Filter{
			{Col: query.ColumnRef{Table: "title", Column: "production_year"}, Op: query.OpGt, Value: 500},
		},
		Aggregates: []query.Aggregate{{Func: query.AggCount}},
	}
}

func TestPlanSingleTable(t *testing.T) {
	opt, _ := imdbOptimizer(t, nil)
	q := &query.Query{
		Tables:     []string{"title"},
		Filters:    []query.Filter{{Col: query.ColumnRef{Table: "title", Column: "production_year"}, Op: query.OpGt, Value: 100}},
		Aggregates: []query.Aggregate{{Func: query.AggCount}},
	}
	p, err := opt.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Op != plan.HashAggregate {
		t.Fatalf("root op = %v, want Aggregate", p.Op)
	}
	if p.Children[0].Op != plan.SeqScan {
		t.Fatalf("child op = %v, want Seq Scan", p.Children[0].Op)
	}
	if p.EstCost <= 0 || p.EstRows <= 0 {
		t.Fatalf("missing annotations: cost=%v rows=%v", p.EstCost, p.EstRows)
	}
}

func TestPlanJoinValidAndCosted(t *testing.T) {
	opt, _ := imdbOptimizer(t, nil)
	p, err := opt.Plan(twoWayJoin())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	joinSeen := false
	p.Walk(func(n *plan.Node) {
		if n.Op == plan.HashJoin || n.Op == plan.NestedLoopJoin {
			joinSeen = true
		}
		if n.EstRows < 1 {
			t.Errorf("node %v has EstRows %v < 1", n.Op, n.EstRows)
		}
		if n.EstCost <= 0 {
			t.Errorf("node %v has non-positive cost", n.Op)
		}
	})
	if !joinSeen {
		t.Fatal("no join operator in join query plan")
	}
	// Both tables must be scanned exactly once.
	tabs := p.Tables()
	if !tabs["title"] || !tabs["movie_companies"] {
		t.Fatalf("plan scans %v", tabs)
	}
}

func TestIndexScanChosenForSelectivePredicate(t *testing.T) {
	idx := IndexSet{Key("title", "production_year"): true}
	opt, _ := imdbOptimizer(t, idx)
	// Highly selective equality predicate: index scan must win.
	q := &query.Query{
		Tables:     []string{"title"},
		Filters:    []query.Filter{{Col: query.ColumnRef{Table: "title", Column: "production_year"}, Op: query.OpEq, Value: 7}},
		Aggregates: []query.Aggregate{{Func: query.AggCount}},
	}
	p, err := opt.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	scan := p.Children[0]
	if scan.Op != plan.IndexScan {
		t.Fatalf("scan op = %v, want Index Scan\n%s", scan.Op, p.Explain())
	}
	if scan.IndexColumn != "production_year" {
		t.Fatalf("index column = %s", scan.IndexColumn)
	}
	if len(scan.Filters) == 0 || scan.Filters[0].Col.Column != "production_year" {
		t.Fatal("driving predicate not first in index scan filters")
	}
}

func TestSeqScanChosenWithoutIndex(t *testing.T) {
	opt, _ := imdbOptimizer(t, nil)
	q := &query.Query{
		Tables:     []string{"title"},
		Filters:    []query.Filter{{Col: query.ColumnRef{Table: "title", Column: "production_year"}, Op: query.OpEq, Value: 7}},
		Aggregates: []query.Aggregate{{Func: query.AggCount}},
	}
	p, err := opt.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Children[0].Op != plan.SeqScan {
		t.Fatalf("scan op = %v, want Seq Scan", p.Children[0].Op)
	}
}

func TestWhatIfIndexChangesPlan(t *testing.T) {
	// The same query planned with and without a hypothetical index on the
	// join column must differ — this is the what-if mechanism of E4.
	without, _ := imdbOptimizer(t, nil)
	with, _ := imdbOptimizer(t, IndexSet{Key("movie_companies", "movie_id"): true})
	q := &query.Query{
		Tables: []string{"title", "movie_companies"},
		Joins: []query.Join{{
			Left:  query.ColumnRef{Table: "movie_companies", Column: "movie_id"},
			Right: query.ColumnRef{Table: "title", Column: "id"},
		}},
		Filters: []query.Filter{
			// Selective filter on title so the outer side is tiny and the
			// nested-loop index join is attractive.
			{Col: query.ColumnRef{Table: "title", Column: "production_year"}, Op: query.OpEq, Value: 3},
		},
		Aggregates: []query.Aggregate{{Func: query.AggCount}},
	}
	p1, err := without.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := with.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	hasNL := false
	p2.Walk(func(n *plan.Node) {
		if n.Op == plan.NestedLoopJoin {
			hasNL = true
		}
	})
	if !hasNL {
		t.Fatalf("hypothetical index did not enable nested-loop join\n%s", p2.Explain())
	}
	if p2.EstCost >= p1.EstCost {
		t.Fatalf("index plan not cheaper: %v >= %v", p2.EstCost, p1.EstCost)
	}
}

func TestDPFindsConnectedPlanForFiveWayJoin(t *testing.T) {
	opt, db := imdbOptimizer(t, nil)
	qs, err := query.JOBLight(db, 50, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		p, err := opt.Plan(q)
		if err != nil {
			t.Fatalf("plan %q: %v", q.SQL(), err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("invalid plan for %q: %v", q.SQL(), err)
		}
		// Every table scanned exactly once.
		count := map[string]int{}
		p.Walk(func(n *plan.Node) {
			if n.Op == plan.SeqScan || n.Op == plan.IndexScan {
				count[n.Table]++
			}
		})
		for _, tname := range q.Tables {
			if count[tname] != 1 {
				t.Fatalf("table %s scanned %d times in plan for %q", tname, count[tname], q.SQL())
			}
		}
	}
}

func TestPlanRejectsInvalidQuery(t *testing.T) {
	opt, _ := imdbOptimizer(t, nil)
	q := &query.Query{Tables: []string{"title", "movie_companies"}} // disconnected
	if _, err := opt.Plan(q); err == nil {
		t.Fatal("planned a disconnected query")
	}
}

func TestCostModelPrefersCheaperBuildSide(t *testing.T) {
	opt, _ := imdbOptimizer(t, nil)
	p, err := opt.Plan(twoWayJoin())
	if err != nil {
		t.Fatal(err)
	}
	var hj *plan.Node
	p.Walk(func(n *plan.Node) {
		if n.Op == plan.HashJoin {
			hj = n
		}
	})
	if hj == nil {
		t.Skip("optimizer chose a non-hash join")
	}
	// The build side (child 1) should not be vastly larger than the probe
	// side; with both orders considered, DP keeps the cheaper one.
	build, probe := hj.Children[1].EstRows, hj.Children[0].EstRows
	if build > probe*10 {
		t.Fatalf("build side %v much larger than probe side %v", build, probe)
	}
}

func TestBtreeHeightMonotone(t *testing.T) {
	if btreeHeight(1) != 1 {
		t.Fatal("height(1) != 1")
	}
	prev := 0.0
	for _, n := range []float64{10, 1000, 1e5, 1e7, 1e9} {
		h := btreeHeight(n)
		if h < prev {
			t.Fatalf("height not monotone at %v", n)
		}
		prev = h
	}
}

func TestGroupByPlans(t *testing.T) {
	opt, _ := imdbOptimizer(t, nil)
	q := &query.Query{
		Tables:     []string{"title"},
		Aggregates: []query.Aggregate{{Func: query.AggCount}},
		GroupBy:    []query.ColumnRef{{Table: "title", Column: "kind_id"}},
	}
	p, err := opt.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Op != plan.HashAggregate || len(p.GroupBy) != 1 {
		t.Fatalf("bad aggregate node: %s", p.Explain())
	}
	if p.EstRows <= 1 || math.IsNaN(p.EstRows) {
		t.Fatalf("group-by EstRows = %v, want > 1", p.EstRows)
	}
}

func TestPlanWithExternalCostFunction(t *testing.T) {
	opt, _ := imdbOptimizer(t, nil)
	q := twoWayJoin()
	// Mirroring the analytical cost must reproduce the analytical plan.
	analytical, err := opt.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	mirrored, err := opt.PlanWith(q, func(n *plan.Node) float64 { return n.EstCost })
	if err != nil {
		t.Fatal(err)
	}
	if analytical.Explain() != mirrored.Explain() {
		t.Fatalf("mirrored cost produced different plan:\n%s\nvs\n%s", analytical.Explain(), mirrored.Explain())
	}
	// An adversarial cost function (prefer expensive plans) must still
	// produce a valid plan covering all tables.
	worst, err := opt.PlanWith(q, func(n *plan.Node) float64 { return -n.EstCost })
	if err != nil {
		t.Fatal(err)
	}
	if err := worst.Validate(); err != nil {
		t.Fatal(err)
	}
	tabs := worst.Tables()
	if !tabs["title"] || !tabs["movie_companies"] {
		t.Fatalf("adversarial plan scans %v", tabs)
	}
}

func TestPlanWithRejectsNilCost(t *testing.T) {
	opt, _ := imdbOptimizer(t, nil)
	if _, err := opt.PlanWith(twoWayJoin(), nil); err == nil {
		t.Fatal("accepted nil cost function")
	}
}
