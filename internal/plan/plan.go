// Package plan defines physical query plans: operator trees annotated with
// estimated and true cardinalities, widths and optimizer costs.
//
// Plans are produced by the optimizer, executed by the engine (which fills
// in true cardinalities and work counters), and featurized by the encoders.
// Physical — not logical — operators are what the paper's zero-shot model
// consumes: "each node in this graph represents a physical operator ... to
// capture the differences in runtime complexity" (Section 3.1).
package plan

import (
	"fmt"
	"strings"

	"github.com/zeroshot-db/zeroshot/internal/query"
)

// Operator enumerates physical operators.
type Operator int

const (
	// SeqScan reads a full table, applying pushed-down filters.
	SeqScan Operator = iota
	// IndexScan reads rows via a secondary index, either over a constant
	// range (from a pushed-down predicate) or parameterized by a join key
	// when it is the inner side of a nested-loop join.
	IndexScan
	// HashJoin builds a hash table on the right child and probes with the
	// left child.
	HashJoin
	// NestedLoopJoin iterates the left child and, per row, re-evaluates the
	// right child (which is an index lookup in all optimizer-produced
	// plans).
	NestedLoopJoin
	// HashAggregate computes grouped or scalar aggregates over its child.
	HashAggregate
)

// NumOperators is the number of physical operator kinds; featurizers size
// their one-hot segments with it.
const NumOperators = 5

// String returns the EXPLAIN-style operator name.
func (o Operator) String() string {
	switch o {
	case SeqScan:
		return "Seq Scan"
	case IndexScan:
		return "Index Scan"
	case HashJoin:
		return "Hash Join"
	case NestedLoopJoin:
		return "Nested Loop"
	case HashAggregate:
		return "Aggregate"
	default:
		return fmt.Sprintf("Operator(%d)", int(o))
	}
}

// Counters records the work an operator actually performed during
// execution. The hardware simulator converts counters into runtimes; the
// learned models never see them.
type Counters struct {
	// PagesRead is the number of table/index pages fetched.
	PagesRead float64
	// TuplesIn is the number of input tuples consumed (sum over children
	// for joins).
	TuplesIn float64
	// TuplesOut is the number of tuples emitted.
	TuplesOut float64
	// PredEvals is the number of predicate evaluations performed.
	PredEvals float64
	// HashBuild is the number of tuples inserted into hash tables.
	HashBuild float64
	// HashProbes is the number of hash table probes.
	HashProbes float64
	// IndexLookups is the number of index descents.
	IndexLookups float64
	// IndexEntries is the number of index entries scanned.
	IndexEntries float64
	// AggUpdates is the number of aggregate-state updates.
	AggUpdates float64
	// Groups is the number of output groups of an aggregate.
	Groups float64
	// BytesOut is the number of bytes emitted.
	BytesOut float64
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.PagesRead += other.PagesRead
	c.TuplesIn += other.TuplesIn
	c.TuplesOut += other.TuplesOut
	c.PredEvals += other.PredEvals
	c.HashBuild += other.HashBuild
	c.HashProbes += other.HashProbes
	c.IndexLookups += other.IndexLookups
	c.IndexEntries += other.IndexEntries
	c.AggUpdates += other.AggUpdates
	c.Groups += other.Groups
	c.BytesOut += other.BytesOut
}

// Node is one operator of a physical plan tree.
type Node struct {
	Op Operator

	// Table is the scanned table for scan operators.
	Table string
	// IndexColumn is the indexed column used by IndexScan.
	IndexColumn string
	// LookupJoin marks an IndexScan that is parameterized by the enclosing
	// nested-loop join's outer key instead of a constant predicate.
	LookupJoin bool
	// Filters are the predicates applied at this node (pushed down to scans).
	Filters []query.Filter
	// Join is the equi-join condition for join operators.
	Join *query.Join
	// Aggregates and GroupBy describe a HashAggregate.
	Aggregates []query.Aggregate
	GroupBy    []query.ColumnRef

	// Children are the input operators (0 for scans, 2 for joins, 1 for
	// aggregates).
	Children []*Node

	// EstRows is the optimizer's output-cardinality estimate.
	EstRows float64
	// TrueRows is the observed output cardinality (filled by the engine;
	// -1 until executed).
	TrueRows float64
	// Width is the output tuple width in bytes.
	Width float64
	// EstCost is the optimizer's cumulative cost estimate.
	EstCost float64
	// Work holds the execution work counters (filled by the engine).
	Work Counters
}

// NewNode creates a node with TrueRows marked unknown.
func NewNode(op Operator) *Node {
	return &Node{Op: op, TrueRows: -1}
}

// Walk visits the tree bottom-up (post-order), calling fn on every node.
func (n *Node) Walk(fn func(*Node)) {
	for _, c := range n.Children {
		c.Walk(fn)
	}
	fn(n)
}

// Count returns the number of nodes in the subtree.
func (n *Node) Count() int {
	count := 0
	n.Walk(func(*Node) { count++ })
	return count
}

// Tables returns the set of base tables scanned in the subtree.
func (n *Node) Tables() map[string]bool {
	out := map[string]bool{}
	n.Walk(func(m *Node) {
		if m.Op == SeqScan || m.Op == IndexScan {
			out[m.Table] = true
		}
	})
	return out
}

// Clone deep-copies the subtree (annotations included).
func (n *Node) Clone() *Node {
	c := *n
	c.Filters = append([]query.Filter(nil), n.Filters...)
	c.Aggregates = append([]query.Aggregate(nil), n.Aggregates...)
	c.GroupBy = append([]query.ColumnRef(nil), n.GroupBy...)
	if n.Join != nil {
		j := *n.Join
		c.Join = &j
	}
	c.Children = make([]*Node, len(n.Children))
	for i, ch := range n.Children {
		c.Children[i] = ch.Clone()
	}
	return &c
}

// Validate checks structural plan invariants: child counts per operator,
// scans have tables, index scans have index columns, joins have conditions.
func (n *Node) Validate() error {
	var err error
	n.Walk(func(m *Node) {
		if err != nil {
			return
		}
		switch m.Op {
		case SeqScan, IndexScan:
			if len(m.Children) != 0 {
				err = fmt.Errorf("plan: scan with %d children", len(m.Children))
				return
			}
			if m.Table == "" {
				err = fmt.Errorf("plan: scan without table")
				return
			}
			if m.Op == IndexScan && m.IndexColumn == "" {
				err = fmt.Errorf("plan: index scan on %s without index column", m.Table)
				return
			}
		case HashJoin, NestedLoopJoin:
			if len(m.Children) != 2 {
				err = fmt.Errorf("plan: %s with %d children", m.Op, len(m.Children))
				return
			}
			if m.Join == nil {
				err = fmt.Errorf("plan: %s without join condition", m.Op)
				return
			}
		case HashAggregate:
			if len(m.Children) != 1 {
				err = fmt.Errorf("plan: aggregate with %d children", len(m.Children))
				return
			}
		default:
			err = fmt.Errorf("plan: unknown operator %d", int(m.Op))
		}
	})
	return err
}

// Explain renders the plan EXPLAIN-style with estimated and true rows.
func (n *Node) Explain() string {
	var b strings.Builder
	n.explain(&b, 0)
	return b.String()
}

func (n *Node) explain(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.Op.String())
	if n.Table != "" {
		fmt.Fprintf(b, " on %s", n.Table)
	}
	if n.IndexColumn != "" {
		fmt.Fprintf(b, " using idx(%s)", n.IndexColumn)
		if n.LookupJoin {
			b.WriteString(" [lookup]")
		}
	}
	if n.Join != nil {
		fmt.Fprintf(b, " (%s)", n.Join)
	}
	for _, f := range n.Filters {
		fmt.Fprintf(b, " [%s]", f)
	}
	if len(n.Aggregates) > 0 {
		parts := make([]string, len(n.Aggregates))
		for i, a := range n.Aggregates {
			parts[i] = a.String()
		}
		fmt.Fprintf(b, " {%s}", strings.Join(parts, ", "))
	}
	fmt.Fprintf(b, "  (est=%.0f true=%.0f cost=%.1f)\n", n.EstRows, n.TrueRows, n.EstCost)
	for _, c := range n.Children {
		c.explain(b, depth+1)
	}
}
