package plan

import (
	"strings"
	"testing"

	"github.com/zeroshot-db/zeroshot/internal/query"
)

func samplePlan() *Node {
	scanT := NewNode(SeqScan)
	scanT.Table = "title"
	scanT.Filters = []query.Filter{{Col: query.ColumnRef{Table: "title", Column: "production_year"}, Op: query.OpGt, Value: 1990}}
	scanT.EstRows = 100
	scanT.EstCost = 10

	scanMC := NewNode(IndexScan)
	scanMC.Table = "movie_companies"
	scanMC.IndexColumn = "movie_id"
	scanMC.LookupJoin = true
	scanMC.EstRows = 2
	scanMC.EstCost = 1

	join := NewNode(NestedLoopJoin)
	join.Join = &query.Join{
		Left:  query.ColumnRef{Table: "movie_companies", Column: "movie_id"},
		Right: query.ColumnRef{Table: "title", Column: "id"},
	}
	join.Children = []*Node{scanT, scanMC}
	join.EstRows = 200
	join.EstCost = 30

	agg := NewNode(HashAggregate)
	agg.Aggregates = []query.Aggregate{{Func: query.AggCount}}
	agg.Children = []*Node{join}
	agg.EstRows = 1
	agg.EstCost = 32
	return agg
}

func TestValidateAcceptsWellFormedPlan(t *testing.T) {
	if err := samplePlan().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsMalformedPlans(t *testing.T) {
	p := samplePlan()
	p.Children[0].Join = nil
	if p.Validate() == nil {
		t.Error("accepted join without condition")
	}

	p = samplePlan()
	p.Children[0].Children = p.Children[0].Children[:1]
	if p.Validate() == nil {
		t.Error("accepted join with one child")
	}

	p = samplePlan()
	p.Children[0].Children[0].Table = ""
	if p.Validate() == nil {
		t.Error("accepted scan without table")
	}

	p = samplePlan()
	p.Children[0].Children[1].IndexColumn = ""
	if p.Validate() == nil {
		t.Error("accepted index scan without index column")
	}

	p = samplePlan()
	p.Children = nil
	if p.Validate() == nil {
		t.Error("accepted aggregate without child")
	}

	bad := NewNode(Operator(99))
	if bad.Validate() == nil {
		t.Error("accepted unknown operator")
	}
}

func TestWalkIsPostOrder(t *testing.T) {
	p := samplePlan()
	var ops []Operator
	p.Walk(func(n *Node) { ops = append(ops, n.Op) })
	want := []Operator{SeqScan, IndexScan, NestedLoopJoin, HashAggregate}
	if len(ops) != len(want) {
		t.Fatalf("visited %d nodes, want %d", len(ops), len(want))
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("visit order %v, want %v", ops, want)
		}
	}
}

func TestCountAndTables(t *testing.T) {
	p := samplePlan()
	if p.Count() != 4 {
		t.Fatalf("Count() = %d", p.Count())
	}
	tabs := p.Tables()
	if !tabs["title"] || !tabs["movie_companies"] || len(tabs) != 2 {
		t.Fatalf("Tables() = %v", tabs)
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := samplePlan()
	c := p.Clone()
	c.Children[0].Join.Left.Column = "changed"
	c.Children[0].Children[0].Filters[0].Value = -1
	c.Children[0].Children[0].Table = "other"
	if p.Children[0].Join.Left.Column == "changed" {
		t.Error("join condition shared after Clone")
	}
	if p.Children[0].Children[0].Filters[0].Value == -1 {
		t.Error("filters shared after Clone")
	}
	if p.Children[0].Children[0].Table == "other" {
		t.Error("children shared after Clone")
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{PagesRead: 1, TuplesIn: 2, TuplesOut: 3, PredEvals: 4, HashBuild: 5,
		HashProbes: 6, IndexLookups: 7, IndexEntries: 8, AggUpdates: 9, Groups: 10, BytesOut: 11}
	b := a
	b.Add(a)
	if b.PagesRead != 2 || b.TuplesIn != 4 || b.BytesOut != 22 || b.Groups != 20 {
		t.Fatalf("Add wrong: %+v", b)
	}
}

func TestExplainMentionsStructure(t *testing.T) {
	out := samplePlan().Explain()
	for _, want := range []string{"Aggregate", "Nested Loop", "Seq Scan on title", "Index Scan on movie_companies", "[lookup]", "COUNT(*)", "production_year > 1990"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain() missing %q:\n%s", want, out)
		}
	}
}

func TestOperatorStrings(t *testing.T) {
	names := map[Operator]string{
		SeqScan: "Seq Scan", IndexScan: "Index Scan", HashJoin: "Hash Join",
		NestedLoopJoin: "Nested Loop", HashAggregate: "Aggregate",
	}
	for op, want := range names {
		if op.String() != want {
			t.Errorf("%d.String() = %q", int(op), op.String())
		}
	}
	if !strings.Contains(Operator(42).String(), "42") {
		t.Error("unknown operator String()")
	}
}

func TestNewNodeMarksTrueRowsUnknown(t *testing.T) {
	if NewNode(SeqScan).TrueRows != -1 {
		t.Fatal("TrueRows not initialized to -1")
	}
}
