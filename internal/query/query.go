// Package query defines the logical query model — select-project-join-
// aggregate queries over foreign-key join graphs — and the workload
// generators used for training-data collection and evaluation.
//
// The query shape matches the workloads of the paper's case study: up to
// five-way joins, up to five numerical and categorical predicates and up to
// three aggregates (Section 3.2).
package query

import (
	"fmt"
	"sort"
	"strings"
)

// ColumnRef names a column of a specific table.
type ColumnRef struct {
	Table  string
	Column string
}

// String returns "table.column".
func (c ColumnRef) String() string { return c.Table + "." + c.Column }

// CmpOp is a comparison operator in a filter predicate.
type CmpOp int

const (
	OpEq CmpOp = iota
	OpLt
	OpLe
	OpGt
	OpGe
	OpNeq
)

// NumCmpOps is the number of comparison operators; featurizers size their
// one-hot segments with it.
const NumCmpOps = 6

// String returns the SQL spelling of the operator.
func (o CmpOp) String() string {
	switch o {
	case OpEq:
		return "="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpNeq:
		return "<>"
	default:
		return fmt.Sprintf("CmpOp(%d)", int(o))
	}
}

// Filter is a single-column predicate "col op literal". Literals are stored
// as float64; for integer and categorical columns the value is the int64
// code converted to float.
type Filter struct {
	Col   ColumnRef
	Op    CmpOp
	Value float64
}

// String renders the filter as SQL.
func (f Filter) String() string {
	return fmt.Sprintf("%s %s %v", f.Col, f.Op, f.Value)
}

// Join is an equi-join between two columns, always along a foreign key in
// generated workloads.
type Join struct {
	Left  ColumnRef
	Right ColumnRef
}

// String renders the join condition as SQL.
func (j Join) String() string { return fmt.Sprintf("%s = %s", j.Left, j.Right) }

// AggFunc enumerates aggregate functions.
type AggFunc int

const (
	AggCount AggFunc = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

// NumAggFuncs is the number of aggregate functions.
const NumAggFuncs = 5

// String returns the SQL name of the aggregate function.
func (a AggFunc) String() string {
	switch a {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(a))
	}
}

// Aggregate is one output aggregate. COUNT ignores Col (COUNT(*)).
type Aggregate struct {
	Func AggFunc
	Col  ColumnRef // zero value for COUNT(*)
}

// String renders the aggregate as SQL.
func (a Aggregate) String() string {
	if a.Func == AggCount && a.Col.Table == "" {
		return "COUNT(*)"
	}
	return fmt.Sprintf("%s(%s)", a.Func, a.Col)
}

// Query is a logical select-project-join-aggregate query.
type Query struct {
	// Tables lists the involved tables (no duplicates).
	Tables []string
	// Joins holds the equi-join conditions connecting Tables.
	Joins []Join
	// Filters holds the single-column predicates.
	Filters []Filter
	// Aggregates holds the output aggregates; empty means SELECT * (the
	// engine still counts output tuples).
	Aggregates []Aggregate
	// GroupBy optionally groups the aggregates.
	GroupBy []ColumnRef
}

// HasTable reports whether the query involves the named table.
func (q *Query) HasTable(name string) bool {
	for _, t := range q.Tables {
		if t == name {
			return true
		}
	}
	return false
}

// FiltersOn returns the filters whose column belongs to the named table.
func (q *Query) FiltersOn(table string) []Filter {
	var out []Filter
	for _, f := range q.Filters {
		if f.Col.Table == table {
			out = append(out, f)
		}
	}
	return out
}

// Validate checks internal consistency: tables unique, joins and filters
// reference involved tables, and the join graph connects all tables.
func (q *Query) Validate() error {
	if len(q.Tables) == 0 {
		return fmt.Errorf("query: no tables")
	}
	seen := map[string]bool{}
	for _, t := range q.Tables {
		if seen[t] {
			return fmt.Errorf("query: duplicate table %s", t)
		}
		seen[t] = true
	}
	for _, j := range q.Joins {
		if !seen[j.Left.Table] || !seen[j.Right.Table] {
			return fmt.Errorf("query: join %s references table outside FROM", j)
		}
		if j.Left.Table == j.Right.Table {
			return fmt.Errorf("query: self join %s not supported", j)
		}
	}
	for _, f := range q.Filters {
		if !seen[f.Col.Table] {
			return fmt.Errorf("query: filter %s references table outside FROM", f)
		}
	}
	for _, a := range q.Aggregates {
		if a.Col.Table != "" && !seen[a.Col.Table] {
			return fmt.Errorf("query: aggregate %s references table outside FROM", a)
		}
	}
	for _, g := range q.GroupBy {
		if !seen[g.Table] {
			return fmt.Errorf("query: group by %s references table outside FROM", g)
		}
	}
	if len(q.Tables) > 1 {
		if !q.connected() {
			return fmt.Errorf("query: join graph does not connect all tables")
		}
	}
	return nil
}

// connected reports whether the join conditions connect all tables.
func (q *Query) connected() bool {
	adj := map[string][]string{}
	for _, j := range q.Joins {
		adj[j.Left.Table] = append(adj[j.Left.Table], j.Right.Table)
		adj[j.Right.Table] = append(adj[j.Right.Table], j.Left.Table)
	}
	visited := map[string]bool{q.Tables[0]: true}
	stack := []string{q.Tables[0]}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, n := range adj[cur] {
			if !visited[n] {
				visited[n] = true
				stack = append(stack, n)
			}
		}
	}
	return len(visited) == len(q.Tables)
}

// SQL renders the query as a SQL string for logging and debugging.
func (q *Query) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if len(q.Aggregates) == 0 {
		b.WriteString("*")
	} else {
		parts := make([]string, len(q.Aggregates))
		for i, a := range q.Aggregates {
			parts[i] = a.String()
		}
		b.WriteString(strings.Join(parts, ", "))
	}
	tables := append([]string(nil), q.Tables...)
	sort.Strings(tables)
	b.WriteString(" FROM ")
	b.WriteString(strings.Join(tables, ", "))
	var conds []string
	for _, j := range q.Joins {
		conds = append(conds, j.String())
	}
	for _, f := range q.Filters {
		conds = append(conds, f.String())
	}
	if len(conds) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(strings.Join(conds, " AND "))
	}
	if len(q.GroupBy) > 0 {
		parts := make([]string, len(q.GroupBy))
		for i, g := range q.GroupBy {
			parts[i] = g.String()
		}
		b.WriteString(" GROUP BY ")
		b.WriteString(strings.Join(parts, ", "))
	}
	b.WriteString(";")
	return b.String()
}
