package query

import (
	"strings"
	"testing"

	"github.com/zeroshot-db/zeroshot/internal/datagen"
)

func TestValidateCatchesProblems(t *testing.T) {
	base := func() *Query {
		return &Query{
			Tables: []string{"a", "b"},
			Joins: []Join{{
				Left:  ColumnRef{Table: "a", Column: "b_id"},
				Right: ColumnRef{Table: "b", Column: "id"},
			}},
			Filters:    []Filter{{Col: ColumnRef{Table: "a", Column: "x"}, Op: OpGt, Value: 3}},
			Aggregates: []Aggregate{{Func: AggCount}},
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}

	q := base()
	q.Tables = nil
	if q.Validate() == nil {
		t.Error("accepted empty FROM")
	}

	q = base()
	q.Tables = []string{"a", "a"}
	if q.Validate() == nil {
		t.Error("accepted duplicate table")
	}

	q = base()
	q.Joins[0].Right.Table = "c"
	if q.Validate() == nil {
		t.Error("accepted join to table outside FROM")
	}

	q = base()
	q.Filters[0].Col.Table = "zzz"
	if q.Validate() == nil {
		t.Error("accepted filter on table outside FROM")
	}

	q = base()
	q.Joins = nil
	if q.Validate() == nil {
		t.Error("accepted disconnected join graph")
	}

	q = base()
	q.Aggregates = append(q.Aggregates, Aggregate{Func: AggSum, Col: ColumnRef{Table: "zzz", Column: "v"}})
	if q.Validate() == nil {
		t.Error("accepted aggregate on table outside FROM")
	}

	q = base()
	q.GroupBy = []ColumnRef{{Table: "zzz", Column: "v"}}
	if q.Validate() == nil {
		t.Error("accepted group by on table outside FROM")
	}
}

func TestSQLRendering(t *testing.T) {
	q := &Query{
		Tables: []string{"title", "movie_companies"},
		Joins: []Join{{
			Left:  ColumnRef{Table: "movie_companies", Column: "movie_id"},
			Right: ColumnRef{Table: "title", Column: "id"},
		}},
		Filters: []Filter{
			{Col: ColumnRef{Table: "title", Column: "production_year"}, Op: OpGt, Value: 1990},
		},
		Aggregates: []Aggregate{
			{Func: AggMin, Col: ColumnRef{Table: "title", Column: "production_year"}},
			{Func: AggCount},
		},
	}
	sql := q.SQL()
	for _, want := range []string{
		"SELECT MIN(title.production_year), COUNT(*)",
		"FROM movie_companies, title",
		"movie_companies.movie_id = title.id",
		"title.production_year > 1990",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL() = %q missing %q", sql, want)
		}
	}
}

func TestOpAndAggStrings(t *testing.T) {
	ops := map[CmpOp]string{OpEq: "=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=", OpNeq: "<>"}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%d.String() = %q want %q", int(op), op.String(), want)
		}
	}
	aggs := map[AggFunc]string{AggCount: "COUNT", AggSum: "SUM", AggAvg: "AVG", AggMin: "MIN", AggMax: "MAX"}
	for a, want := range aggs {
		if a.String() != want {
			t.Errorf("agg %d.String() = %q want %q", int(a), a.String(), want)
		}
	}
}

func TestGeneratorProducesValidQueries(t *testing.T) {
	db, err := datagen.IMDBLike(0.05)
	if err != nil {
		t.Fatal(err)
	}
	gen := NewGenerator(db, DefaultGenConfig(), 1)
	qs, err := gen.Generate(200)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 200 {
		t.Fatalf("got %d queries", len(qs))
	}
	for _, q := range qs {
		if err := q.Validate(); err != nil {
			t.Fatalf("invalid query %q: %v", q.SQL(), err)
		}
		if len(q.Tables) > 5 {
			t.Fatalf("query exceeds 5 tables: %q", q.SQL())
		}
		if len(q.Filters) > 5 {
			t.Fatalf("query exceeds 5 filters: %q", q.SQL())
		}
		if len(q.Aggregates) > 3 {
			t.Fatalf("query exceeds 3 aggregates: %q", q.SQL())
		}
		for _, tname := range q.Tables {
			if db.Schema.Table(tname) == nil {
				t.Fatalf("query references unknown table %s", tname)
			}
		}
		for _, f := range q.Filters {
			if db.Schema.Table(f.Col.Table).Column(f.Col.Column) == nil {
				t.Fatalf("query filters unknown column %s", f.Col)
			}
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	db, _ := datagen.IMDBLike(0.05)
	a, _ := NewGenerator(db, DefaultGenConfig(), 5).Generate(20)
	b, _ := NewGenerator(db, DefaultGenConfig(), 5).Generate(20)
	for i := range a {
		if a[i].SQL() != b[i].SQL() {
			t.Fatalf("query %d differs:\n%s\n%s", i, a[i].SQL(), b[i].SQL())
		}
	}
}

func TestGeneratorCoversJoinSizes(t *testing.T) {
	db, _ := datagen.IMDBLike(0.05)
	qs, _ := NewGenerator(db, DefaultGenConfig(), 2).Generate(300)
	sizes := map[int]int{}
	for _, q := range qs {
		sizes[len(q.Tables)]++
	}
	for k := 1; k <= 3; k++ {
		if sizes[k] == 0 {
			t.Errorf("no queries with %d tables generated (distribution %v)", k, sizes)
		}
	}
}

func TestJOBLightIsCountStarEqHeavy(t *testing.T) {
	db, _ := datagen.IMDBLike(0.05)
	qs, err := JOBLight(db, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	ranges := 0
	total := 0
	for _, q := range qs {
		if len(q.Aggregates) != 1 || q.Aggregates[0].Func != AggCount {
			t.Fatalf("JOB-light query has aggregates %v", q.Aggregates)
		}
		for _, f := range q.Filters {
			total++
			if f.Op != OpEq && f.Op != OpNeq {
				ranges++
			}
		}
	}
	if total > 0 && float64(ranges)/float64(total) > 0.3 {
		t.Fatalf("JOB-light has %d/%d range predicates, want rare", ranges, total)
	}
}

func TestScaleAndSyntheticWorkloads(t *testing.T) {
	db, _ := datagen.IMDBLike(0.05)
	for name, f := range map[string]func() ([]*Query, error){
		"scale":     func() ([]*Query, error) { return Scale(db, 50, 4) },
		"synthetic": func() ([]*Query, error) { return Synthetic(db, 50, 4) },
	} {
		qs, err := f()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(qs) != 50 {
			t.Fatalf("%s: got %d queries", name, len(qs))
		}
		for _, q := range qs {
			if err := q.Validate(); err != nil {
				t.Fatalf("%s: invalid query: %v", name, err)
			}
		}
	}
}

func TestFiltersOnAndHasTable(t *testing.T) {
	q := &Query{
		Tables: []string{"a"},
		Filters: []Filter{
			{Col: ColumnRef{Table: "a", Column: "x"}, Op: OpEq, Value: 1},
			{Col: ColumnRef{Table: "a", Column: "y"}, Op: OpGt, Value: 2},
		},
	}
	if !q.HasTable("a") || q.HasTable("b") {
		t.Fatal("HasTable wrong")
	}
	if got := q.FiltersOn("a"); len(got) != 2 {
		t.Fatalf("FiltersOn(a) = %d filters", len(got))
	}
	if got := q.FiltersOn("b"); len(got) != 0 {
		t.Fatalf("FiltersOn(b) = %d filters", len(got))
	}
}
